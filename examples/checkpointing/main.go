// Checkpointing: the paper's motivation — checkpoint writes are becoming
// the bottleneck for failure-prone large machines. This example connects
// the reproduced I/O results to application goodput: how much useful
// compute a 1,024-rank simulation retains under different file system
// configurations, using Young's optimal checkpoint interval.
package main

import (
	"fmt"
	"log"

	"pfsim"
	"pfsim/internal/workload"
)

func main() {
	app := workload.Checkpoint{
		Ranks:          1024,
		StateMBPerRank: 400,       // the Table II volume
		ComputeSeconds: 3600,      // an hour of compute per checkpoint era
		MTBFSeconds:    24 * 3600, // one failure a day
	}
	plat := pfsim.Cab()

	fmt.Printf("Checkpointing app: %d ranks × %.0f MB state, MTBF %.0f h\n\n",
		app.Ranks, app.StateMBPerRank, app.MTBFSeconds/3600)

	configs := []struct {
		name string
		cfg  pfsim.IORConfig
	}{
		{"default (ad_ufs, 2×1MB)", func() pfsim.IORConfig {
			c := pfsim.PaperIOR(1024)
			c.API = pfsim.DriverUFS
			return c
		}()},
		{"tuned (ad_lustre, 160×128MB)", pfsim.TunedIOR(1024)},
		{"PLFS (ad_plfs)", func() pfsim.IORConfig {
			c := pfsim.PaperIOR(1024)
			c.API = pfsim.DriverPLFS
			return c
		}()},
	}

	// The three configurations are independent simulations; the Runner
	// fans them across the machine's cores.
	runner := pfsim.NewRunner(pfsim.WithoutSlowdowns())
	var scs []pfsim.Scenario
	for _, tc := range configs {
		cfg := tc.cfg
		cfg.Label = "ckpt-" + tc.name[:7]
		cfg.Reps = 3
		scs = append(scs, pfsim.NewScenario(cfg.Label,
			pfsim.ScenarioJob{Workload: pfsim.IORWorkload(cfg)}))
	}
	out, err := runner.RunScenarios(plat, scs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("config                          MB/s     ckpt time   Young interval   goodput")
	for i, tc := range configs {
		bw := out[i].Jobs[0].WriteMBs()
		fmt.Printf("%-30s  %-7.0f  %-10.0fs  %-15.0fs  %.1f%%\n",
			tc.name, bw, app.WriteSeconds(bw), app.YoungInterval(bw),
			100*app.GoodputFraction(bw))
	}

	// New with the Scenario API: run the checkpointer as a periodic
	// workload (write, compute, write, ...) next to a noisy neighbour and
	// see what contention does to its achieved checkpoint bandwidth.
	noisy := pfsim.TunedIOR(1024)
	noisy.Label = "neighbour"
	noisy.Reps = 5
	res, err := pfsim.NewRunner().RunScenario(plat, pfsim.NewScenario("shared-machine",
		pfsim.ScenarioJob{Workload: pfsim.CheckpointWorkload(app, pfsim.TunedHints(), 3)},
		pfsim.ScenarioJob{Workload: pfsim.IORWorkload(noisy)},
	))
	if err != nil {
		log.Fatal(err)
	}
	ck := res.Jobs[0]
	fmt.Printf("\nWith a tuned 1,024-rank neighbour, checkpoints run at %.0f MB/s "+
		"(%.2fx slower than alone),\nshifting goodput from %.1f%% to %.1f%%.\n",
		ck.WriteMBs(), ck.Slowdown,
		100*app.GoodputFraction(ck.SoloMBs), 100*app.GoodputFraction(ck.WriteMBs()))

	fmt.Println("\nFaster checkpoints permit shorter intervals and waste less work per")
	fmt.Println("failure — the paper's 49× I/O tuning translates directly into goodput.")
}
