// Autotune: find an optimal Lustre configuration for an IOR workload by
// exhaustive parameter sweep, as in Section IV of the paper (Figure 1),
// and check how much of the gain survives when neighbours contend.
package main

import (
	"fmt"
	"log"

	"pfsim"
)

func main() {
	plat := pfsim.Cab()

	// Sweep stripe count × stripe size for a 256-process IOR job, fanned
	// across every core. (The paper sweeps 1,024 processes; smaller here
	// to keep the example snappy — try 1024 yourself.)
	const tasks = 256
	runner := pfsim.NewRunner()
	fmt.Printf("Sweeping stripe count × size for %d processes on %s...\n", tasks, plat.Name)
	best, err := runner.Autotune(plat, tasks, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  optimum: %d stripes × %g MB = %.0f MB/s\n",
		best.StripeCount, best.StripeSizeMB, best.MBs)

	// How does the tuned configuration hold up against three neighbours
	// running the same thing? (Section V's warning about auto-tuning
	// without regard for QoS.) The Runner reports slowdown vs the solo
	// baseline for every job in one call.
	cfg := pfsim.PaperIOR(tasks)
	cfg.Hints.StripingFactor = best.StripeCount
	cfg.Hints.StripingUnitMB = best.StripeSizeMB
	cfg.Reps = 3
	res, err := runner.RunScenario(plat,
		pfsim.UniformScenario("autotuned", pfsim.IORWorkload(cfg), 4))
	if err != nil {
		log.Fatal(err)
	}
	agg := res.Aggregate()
	fmt.Printf("\nTuned job alone:          %.0f MB/s\n", res.Jobs[0].SoloMBs)
	fmt.Printf("Same job, 4 contending:   %.0f MB/s per job (%.1f× slower)\n",
		agg.MeanMBs, agg.MeanSlowdown)
	fmt.Printf("Predicted OST load with 4 jobs: %.2f\n",
		pfsim.Dload(plat.OSTs, best.StripeCount, 4))
}
