// Multitenant: several independent Lustre file systems under one engine —
// the shared-nothing deployment shape behind "millions of users": many
// installations, one simulation. Four tenants run side by side, each on
// its own file-system shard (own MDS, OSTs, jitter draws) over one shared
// fluid solver: a tuned collective writer farm, a PLFS logger, a periodic
// checkpointer, and a file-per-process burst. Shard link sets are
// disjoint, so the component-partitioned solver keeps every shard its own
// connected component: an arrival or completion in one tenant's traffic
// re-solves and settles only that tenant's flows — per-event cost tracks
// the touched shard, not the whole deployment.
//
// The example runs the deployment three ways — the partitioned solver
// serial, the partitioned solver with every core solving independent
// components concurrently (SetSolveParallelism via RunOptions), and the
// monolithic reference solver — and cross-checks the physics bit for bit:
// makespan, every job's finish time and bandwidth, and the deterministic
// work counters, which parallelism must not move. It then shows the cost
// counters that differ between partitioned and reference (per-solve
// populations, link visits) and the isolation counters that do not
// (accrual settles).
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"runtime"

	"pfsim"
	"pfsim/internal/lustre"
	"pfsim/internal/report"
	"pfsim/internal/workload"
)

func tenants() []pfsim.Scenario {
	writer := pfsim.TunedIOR(128)
	writer.Label = "writer-farm"
	writer.SegmentCount = 10
	writer.Reps = 1

	burst := pfsim.PaperIOR(64)
	burst.Label = "burst"
	burst.FilePerProc = true
	burst.Collective = false
	burst.SegmentCount = 4
	burst.Reps = 1

	return []pfsim.Scenario{
		pfsim.NewScenario("tenant-ior", pfsim.ScenarioJob{Workload: pfsim.IORWorkload(writer)}),
		pfsim.NewScenario("tenant-plfs", pfsim.ScenarioJob{Workload: pfsim.PLFSWorkload(128, 40)}),
		pfsim.NewScenario("tenant-ckpt", pfsim.ScenarioJob{Workload: pfsim.CheckpointWorkload(
			pfsim.Checkpoint{Ranks: 64, StateMBPerRank: 20, ComputeSeconds: 5}, pfsim.TunedHints(), 3)}),
		pfsim.NewScenario("tenant-burst", pfsim.ScenarioJob{Workload: pfsim.IORWorkload(burst)}),
	}
}

func main() {
	plat := pfsim.Cab()
	shards := tenants()
	run := func(reference bool, par int) *pfsim.ShardedResult {
		res, err := workload.RunShardedWith(plat, shards,
			workload.RunOptions{Parallelism: par},
			func(i int, sys *lustre.System) {
				if i == 0 { // the net is shared: one toggle switches the whole run
					sys.Net().UseReferenceSolver(reference)
				}
			})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	inc := run(false, 1)
	// At least 4 workers even on small machines, so the concurrent solve
	// path really runs and the cross-check means something everywhere.
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	par := run(false, workers)
	ref := run(true, 1)

	// All three runs must tell the same physical story, bit for bit.
	for _, other := range []*pfsim.ShardedResult{par, ref} {
		if math.Float64bits(inc.Makespan) != math.Float64bits(other.Makespan) {
			log.Fatalf("solver modes diverged: makespan %v vs %v", inc.Makespan, other.Makespan)
		}
		for i := range inc.Shards {
			for j := range inc.Shards[i].Jobs {
				a, b := inc.Shards[i].Jobs[j], other.Shards[i].Jobs[j]
				if math.Float64bits(a.FinishedAt) != math.Float64bits(b.FinishedAt) ||
					math.Float64bits(a.WriteMBs()) != math.Float64bits(b.WriteMBs()) {
					log.Fatalf("shard %d job %s diverged between solver modes", i, a.Label)
				}
			}
		}
	}
	// Parallel component solving is a pure wall-clock optimisation: even
	// the deterministic work counters are identical to the serial run.
	if inc.Solver != par.Solver {
		log.Fatalf("parallel solve moved the work counters:\nserial   %+v\nparallel %+v",
			inc.Solver, par.Solver)
	}

	t := report.NewTable("Four tenants, four file systems, one simulation",
		"Tenant", "Job", "MB/s", "Finished (s)")
	for i, sh := range inc.Shards {
		for j := range sh.Jobs {
			jr := &sh.Jobs[j]
			t.AddRow(fmt.Sprintf("fs%d", i), jr.Label, jr.WriteMBs(), jr.FinishedAt)
		}
	}
	t.Fprint(os.Stdout)

	is, rs := inc.Solver, ref.Solver
	fmt.Printf("\nmakespan: %.1f s — identical across serial, %d-worker and reference solves, bit for bit\n",
		inc.Makespan, workers)
	fmt.Printf("\nsolver cost (partitioned vs reference):\n")
	fmt.Printf("  flows per solve:  %9.1f  vs %11.1f  (each solve touches one tenant, not the deployment)\n",
		float64(is.ComponentFlowsScanned)/float64(is.ComponentsSolved),
		float64(rs.ComponentFlowsScanned)/float64(rs.ComponentsSolved))
	fmt.Printf("  link visits:      %9d  vs %11d  (%.0fx fewer)\n",
		is.LinkVisits, rs.LinkVisits, float64(rs.LinkVisits)/float64(is.LinkVisits))
	fmt.Printf("  flows scanned:    %9d  vs %11d\n", is.FlowsScanned, rs.FlowsScanned)
	fmt.Printf("  accrual settles:  %9d  vs %11d  (identical: settles are physics, not solver mode)\n",
		is.FlowsSettled, rs.FlowsSettled)
}
