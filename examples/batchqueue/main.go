// Batchqueue: a multi-tenant day on the machine. Jobs with mixed sizes
// arrive at a batch scheduler; every running job contends for the same
// OSTs. The example compares two site policies — "everyone tunes to the
// maximum 160 stripes" versus "the site caps requests at 64 stripes" —
// and reports both application bandwidth and queueing behaviour, the
// QoS question at the heart of the paper's Section V.
package main

import (
	"fmt"
	"log"

	"pfsim"
	"pfsim/internal/ior"
	"pfsim/internal/sched"
	"pfsim/internal/stats"
)

func main() {
	for _, policy := range []struct {
		name    string
		stripes int
	}{
		{"greedy: every job requests 160 stripes", 160},
		{"capped: site limits requests to 64 stripes", 64},
	} {
		fmt.Printf("== %s ==\n", policy.name)
		runDay(policy.stripes)
		fmt.Println()
	}
}

func runDay(stripes int) {
	plat := pfsim.Cab()
	plat.Nodes = 256 // a partition of the machine

	// A randomised stream of jobs: sizes 128-1024 ranks, arriving over
	// ten minutes of virtual time.
	rng := stats.NewRNG(2015)
	sizes := []int{128, 256, 512, 1024}
	var subs []sched.Submission
	for i := 0; i < 10; i++ {
		cfg := ior.PaperConfig(sizes[rng.IntN(len(sizes))])
		cfg.Label = fmt.Sprintf("job%02d", i)
		cfg.Reps = 1
		cfg.Hints.StripingFactor = stripes
		cfg.Hints.StripingUnitMB = 128
		subs = append(subs, sched.Submission{
			Cfg:      cfg,
			SubmitAt: float64(i) * 60 * rng.Float64(),
		})
	}

	done, makespan, err := sched.Run(plat, subs, sched.Options{Backfill: true})
	if err != nil {
		log.Fatal(err)
	}
	var bw stats.Sample
	for _, c := range done {
		bw.Add(c.Result.Write.Mean())
	}
	sum := sched.Summarise(done, makespan)
	fmt.Printf("jobs:            %d\n", len(done))
	fmt.Printf("mean job BW:     %.0f MB/s\n", bw.Mean())
	fmt.Printf("worst job BW:    %.0f MB/s\n", bw.Min())
	fmt.Printf("makespan:        %.0f s\n", sum.Makespan)
	fmt.Printf("mean wait:       %.0f s   mean slowdown: %.2f\n", sum.MeanWait, sum.MeanSlowdown)
	fmt.Printf("predicted load with 4 such jobs: %.2f\n",
		pfsim.Dload(plat.OSTs, stripes, 4))

	// What does the 256-node partition itself cost? Replay the same job
	// stream as a Scenario on the full machine: every job starts at its
	// submit time on its own nodes, so only file-system contention — not
	// node scarcity — remains.
	wide := pfsim.Cab()
	sc := pfsim.Scenario{Name: fmt.Sprintf("day-r%d", stripes)}
	for _, s := range subs {
		sc = sc.Add(pfsim.ScenarioJob{
			Workload: pfsim.IORWorkload(s.Cfg),
			StartAt:  s.SubmitAt,
		})
	}
	res, err := pfsim.NewRunner(pfsim.WithoutSlowdowns()).RunScenario(wide, sc)
	if err != nil {
		log.Fatal(err)
	}
	agg := res.Aggregate()
	fmt.Printf("same stream, no node queueing: mean BW %.0f MB/s, makespan %.0f s\n",
		agg.MeanMBs, res.Makespan)
}
