// Heterogeneous: the interference case the paper never measures. A
// 1,024-rank PLFS application logs through ad_plfs — flooding every OST
// with per-rank log appends (load ≈ 4.3, Equation 6) — while a 1,024-rank
// collective writer striped over 160 OSTs shares the file system. One
// Runner call executes the mixed scenario and reports each job's slowdown
// against running alone.
package main

import (
	"fmt"
	"log"

	"pfsim"
)

func main() {
	plat := pfsim.Cab()

	writer := pfsim.TunedIOR(1024)
	writer.Label = "collective-writer"
	writer.Reps = 2

	// The writer starts 30 s in, once the logger is past its open storm
	// and into its data phase.
	sc := pfsim.NewScenario("mixed-tenants",
		pfsim.ScenarioJob{Workload: pfsim.IORWorkload(writer), StartAt: 30},
		pfsim.ScenarioJob{Workload: pfsim.PLFSWorkload(1024, 400)},
	)

	runner := pfsim.NewRunner()
	res, err := runner.RunScenario(plat, sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Two tenants on %s:\n\n", plat.Name)
	fmt.Println("job                 contended MB/s   solo MB/s   slowdown   finished")
	for i := range res.Jobs {
		jr := &res.Jobs[i]
		fmt.Printf("%-19s %-16.0f %-11.0f %-10.2f %.0f s\n",
			jr.Label, jr.WriteMBs(), jr.SoloMBs, jr.Slowdown, jr.FinishedAt)
	}
	agg := res.Aggregate()
	fmt.Printf("\nfile system delivered %.0f MB/s total; worst slowdown %.2fx\n",
		agg.TotalMBs, agg.MaxSlowdown)

	// The analytic metrics explain the damage: the logger alone drives
	// every OST to ~4 concurrent streams, so the writer's 160 OSTs are
	// all shared.
	fmt.Printf("\nPLFS logger load (Equation 6):      %.2f per OST\n",
		pfsim.PLFSLoad(plat.OSTs, 1024))
	fmt.Printf("writer OSTs shared with the logger: all %d (Dinuse, Equation 5: %.0f)\n",
		160, pfsim.PLFSDinuse(plat.OSTs, 1024))
}
