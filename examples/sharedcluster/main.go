// Sharedcluster: the paper's Section V scenario as a capacity-planning
// exercise — four I/O-intensive jobs share lscratchc, and the operator
// must pick a per-job stripe request that balances bandwidth against
// quality of service for everyone else.
package main

import (
	"fmt"
	"log"

	"pfsim"
)

func main() {
	plat := pfsim.Cab()
	fs := pfsim.Lscratchc()
	const jobs = 4

	fmt.Printf("%d simultaneous IOR jobs (1,024 procs each) on %s\n\n", jobs, plat.Name)
	fmt.Println("R      per-job MB/s   total MB/s   Dload   free OSTs")
	type row struct {
		r      int
		perJob float64
		load   float64
		free   float64
	}
	// Every stripe request is an independent four-job scenario; the
	// Runner fans the five of them across the machine's cores.
	requests := []int{32, 64, 96, 128, 160}
	var scs []pfsim.Scenario
	for _, r := range requests {
		cfg := pfsim.PaperIOR(1024)
		cfg.Label = fmt.Sprintf("shared-r%d", r)
		cfg.Hints.StripingFactor = r
		cfg.Hints.StripingUnitMB = 128
		cfg.Reps = 3
		scs = append(scs, pfsim.UniformScenario(cfg.Label, pfsim.IORWorkload(cfg), jobs))
	}
	runner := pfsim.NewRunner(pfsim.WithoutSlowdowns())
	out, err := runner.RunScenarios(plat, scs)
	if err != nil {
		log.Fatal(err)
	}
	var rows []row
	for i, r := range requests {
		mean := out[i].Aggregate().MeanMBs
		q := pfsim.Availability(fs, r, jobs)
		rows = append(rows, row{r, mean, q.Load, q.FreeOSTs})
		fmt.Printf("%-6d %-14.0f %-12.0f %-7.2f %.0f\n", r, mean, mean*float64(jobs), q.Load, q.FreeOSTs)
	}

	// The paper's observation: backing off from 160 stripes costs little
	// bandwidth but frees substantial resources.
	full := rows[len(rows)-1]
	half := rows[1] // R=64
	fmt.Printf("\nDropping from R=%d to R=%d: %.0f%% bandwidth loss, %.0f more free OSTs\n",
		full.r, half.r, 100*(1-half.perJob/full.perJob), half.free-full.free)

	// Ask the metrics for the smallest request that keeps average OST
	// load below 1.25 with four tenants.
	rec := pfsim.RecommendRequest(fs, jobs, 1.25, []int{32, 64, 96, 128, 160})
	fmt.Printf("Smallest request keeping Dload <= 1.25: %d stripes\n", rec)
}
