// Sharedcluster: the paper's Section V scenario as a capacity-planning
// exercise — four I/O-intensive jobs share lscratchc, and the operator
// must pick a per-job stripe request that balances bandwidth against
// quality of service for everyone else.
package main

import (
	"fmt"
	"log"

	"pfsim"
)

func main() {
	plat := pfsim.Cab()
	fs := pfsim.Lscratchc()
	const jobs = 4

	fmt.Printf("%d simultaneous IOR jobs (1,024 procs each) on %s\n\n", jobs, plat.Name)
	fmt.Println("R      per-job MB/s   total MB/s   Dload   free OSTs")
	type row struct {
		r      int
		perJob float64
		load   float64
		free   float64
	}
	var rows []row
	for _, r := range []int{32, 64, 96, 128, 160} {
		cfg := pfsim.PaperIOR(1024)
		cfg.Label = fmt.Sprintf("shared-r%d", r)
		cfg.Hints.StripingFactor = r
		cfg.Hints.StripingUnitMB = 128
		cfg.Reps = 3
		results, err := pfsim.RunContended(plat, cfg, jobs)
		if err != nil {
			log.Fatal(err)
		}
		mean := 0.0
		for _, res := range results {
			mean += res.Write.Mean()
		}
		mean /= jobs
		q := pfsim.Availability(fs, r, jobs)
		rows = append(rows, row{r, mean, q.Load, q.FreeOSTs})
		fmt.Printf("%-6d %-14.0f %-12.0f %-7.2f %.0f\n", r, mean, mean*jobs, q.Load, q.FreeOSTs)
	}

	// The paper's observation: backing off from 160 stripes costs little
	// bandwidth but frees substantial resources.
	full := rows[len(rows)-1]
	half := rows[1] // R=64
	fmt.Printf("\nDropping from R=%d to R=%d: %.0f%% bandwidth loss, %.0f more free OSTs\n",
		full.r, half.r, 100*(1-half.perJob/full.perJob), half.free-full.free)

	// Ask the metrics for the smallest request that keeps average OST
	// load below 1.25 with four tenants.
	rec := pfsim.RecommendRequest(fs, jobs, 1.25, []int{32, 64, 96, 128, 160})
	fmt.Printf("Smallest request keeping Dload <= 1.25: %d stripes\n", rec)
}
