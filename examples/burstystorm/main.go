// Burstystorm: a thousand staggered short writers — the worst case for
// completion rescheduling. Every hundredth of a second of virtual time
// another single-rank job opens its private two-stripe file, writes a
// burst and leaves, so arrivals pile onto a population that is already
// draining: the solver sees constant churn of admissions and completions
// over thousands of concurrent flows. All writers share one backbone, so
// almost every event moves most rates and the completion heap takes its
// wholesale-rebuild path (~one heap op per moved flow per solve) rather
// than the O(1)-re-key regime of disjoint paths — this is the heap's
// stress case, not its showcase, and it still undercuts the reference
// solver's per-event rescans. The example runs the same storm under the
// incremental and the reference solver, confirms the physics — makespan,
// per-job finish times, peak concurrency — is identical, and shows the
// cost counters that differ (the numbers the CI bench gate watches).
package main

import (
	"fmt"
	"log"

	"pfsim"
	"pfsim/internal/lustre"
	"pfsim/internal/trace"
	"pfsim/internal/workload"
)

const writers = 1000

func buildStorm() pfsim.Scenario {
	sc := pfsim.Scenario{Name: "burstystorm"}
	for i := 0; i < writers; i++ {
		cfg := pfsim.PaperIOR(1)
		cfg.Label = fmt.Sprintf("w%04d", i)
		cfg.FilePerProc = true
		cfg.Collective = false
		cfg.SegmentCount = 100 // a 400 MB burst per writer
		cfg.Reps = 1
		sc = sc.Add(pfsim.ScenarioJob{
			Workload: pfsim.IORWorkload(cfg),
			StartAt:  0.01 * float64(i),
		})
	}
	return sc
}

func main() {
	sc := buildStorm()
	results := map[bool]*pfsim.ScenarioResult{}
	recorders := map[bool]*trace.Recorder{}
	for _, reference := range []bool{false, true} {
		rec := &trace.Recorder{}
		res, err := workload.RunScenario(pfsim.Cab(), sc, 0, func(sys *lustre.System) {
			sys.Net().UseReferenceSolver(reference)
			rec.Attach(sys.Net())
		})
		if err != nil {
			log.Fatal(err)
		}
		results[reference] = res
		recorders[reference] = rec
	}
	inc, ref := results[false], results[true]

	// Both solvers must tell the same physical story, bit for bit — down
	// to the peak-concurrency telemetry, which is sampled at instant
	// boundaries precisely so it cannot depend on the solver mode.
	if inc.Makespan != ref.Makespan {
		log.Fatalf("solver modes diverged: makespan %v vs %v", inc.Makespan, ref.Makespan)
	}
	for i := range inc.Jobs {
		if inc.Jobs[i].FinishedAt != ref.Jobs[i].FinishedAt {
			log.Fatalf("job %s diverged: %v vs %v",
				inc.Jobs[i].Label, inc.Jobs[i].FinishedAt, ref.Jobs[i].FinishedAt)
		}
	}
	if recorders[false].MaxConcurrent() != recorders[true].MaxConcurrent() {
		log.Fatalf("peak concurrency diverged: %d vs %d",
			recorders[false].MaxConcurrent(), recorders[true].MaxConcurrent())
	}

	agg := inc.Aggregate()
	fmt.Printf("%d staggered writers, one arrival every 10 ms\n", writers)
	fmt.Printf("peak concurrent flows: %d (identical in both solver modes)\n",
		recorders[false].MaxConcurrent())
	fmt.Printf("makespan:              %.1f s\n", inc.Makespan)
	fmt.Printf("mean writer BW:        %.0f MB/s   total delivered: %.0f MB/s\n",
		agg.MeanMBs, agg.TotalMBs)

	is, rs := inc.Solver, ref.Solver
	fmt.Printf("\nsolver cost (incremental vs reference):\n")
	fmt.Printf("  solves:          %9d  vs %11d\n", is.Solves, rs.Solves)
	fmt.Printf("  link visits:     %9d  vs %11d  (%.0fx fewer)\n",
		is.LinkVisits, rs.LinkVisits, float64(rs.LinkVisits)/float64(is.LinkVisits))
	fmt.Printf("  flows scanned:   %9d  vs %11d\n", is.FlowsScanned, rs.FlowsScanned)
	fmt.Printf("  heap ops:        %9d  (reference: 0 — it rescans every active flow instead)\n", is.HeapOps)
	fmt.Printf("  heap ops/solve:  %9.1f  (a pre-heap completion scan paid ~%d flow touches per solve)\n",
		float64(is.HeapOps)/float64(is.Solves),
		recorders[false].MaxConcurrent())
}
