// Quickstart: compute the paper's contention metrics for a file system
// and run one simulated IOR job on the Cab/lscratchc model.
package main

import (
	"fmt"
	"log"

	"pfsim"
)

func main() {
	// 1. Analytic metrics (no simulation needed). lscratchc exposes 480
	// OSTs; suppose four jobs each stripe across 160 of them — the
	// worst-case scenario of the paper's Section V.
	fs := pfsim.Lscratchc()
	fmt.Println("Four tuned jobs on lscratchc (Equations 2-4):")
	fmt.Printf("  OSTs in use (Dinuse):   %.2f of %d\n", pfsim.Dinuse(fs.TotalOSTs, 160, 4), fs.TotalOSTs)
	fmt.Printf("  Average OST load:       %.2f jobs per OST\n", pfsim.Dload(fs.TotalOSTs, 160, 4))
	q := pfsim.Availability(fs, 160, 4)
	fmt.Printf("  Free OSTs:              %.0f (%.0f%%)\n", q.FreeOSTs, 100*q.FreeFraction)
	fmt.Printf("  P(shared OST):          %.2f\n", q.CollisionProb)

	// 2. Simulate the paper's headline IOR run: 1,024 processes writing
	// 400 MB each through the tuned ad_lustre configuration.
	plat := pfsim.Cab()
	tuned := pfsim.TunedIOR(1024)
	tuned.Reps = 3
	res, err := pfsim.RunIOR(plat, tuned)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := res.Write.CI95()
	fmt.Printf("\nTuned IOR (160 stripes × 128 MB), 1,024 processes:\n")
	fmt.Printf("  write bandwidth: %.0f MB/s  95%% CI (%.0f, %.0f)\n", res.Write.Mean(), lo, hi)

	// 3. Compare with the default configuration (ad_ufs, 2 × 1 MB).
	def := pfsim.PaperIOR(1024)
	def.API = pfsim.DriverUFS
	def.Reps = 3
	defRes, err := pfsim.RunIOR(plat, def)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  default config:  %.0f MB/s  →  tuning gains %.0f×\n",
		defRes.Write.Mean(), res.Write.Mean()/defRes.Write.Mean())
}
