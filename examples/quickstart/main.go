// Quickstart: compute the paper's contention metrics for a file system
// and run one simulated IOR job on the Cab/lscratchc model.
package main

import (
	"fmt"
	"log"

	"pfsim"
)

func main() {
	// 1. Analytic metrics (no simulation needed). lscratchc exposes 480
	// OSTs; suppose four jobs each stripe across 160 of them — the
	// worst-case scenario of the paper's Section V.
	fs := pfsim.Lscratchc()
	fmt.Println("Four tuned jobs on lscratchc (Equations 2-4):")
	fmt.Printf("  OSTs in use (Dinuse):   %.2f of %d\n", pfsim.Dinuse(fs.TotalOSTs, 160, 4), fs.TotalOSTs)
	fmt.Printf("  Average OST load:       %.2f jobs per OST\n", pfsim.Dload(fs.TotalOSTs, 160, 4))
	q := pfsim.Availability(fs, 160, 4)
	fmt.Printf("  Free OSTs:              %.0f (%.0f%%)\n", q.FreeOSTs, 100*q.FreeFraction)
	fmt.Printf("  P(shared OST):          %.2f\n", q.CollisionProb)

	// 2. Simulate the paper's headline IOR run: 1,024 processes writing
	// 400 MB each through the tuned ad_lustre configuration, next to the
	// default configuration (ad_ufs, 2 × 1 MB). The Runner fans the two
	// independent simulations across the machine's cores.
	plat := pfsim.Cab()
	tuned := pfsim.TunedIOR(1024)
	tuned.Reps = 3
	def := pfsim.PaperIOR(1024)
	def.Label = "default"
	def.API = pfsim.DriverUFS
	def.Reps = 3

	runner := pfsim.NewRunner(pfsim.WithoutSlowdowns())
	out, err := runner.RunScenarios(plat, []pfsim.Scenario{
		pfsim.NewScenario("tuned", pfsim.ScenarioJob{Workload: pfsim.IORWorkload(tuned)}),
		pfsim.NewScenario("default", pfsim.ScenarioJob{Workload: pfsim.IORWorkload(def)}),
	})
	if err != nil {
		log.Fatal(err)
	}
	res, defRes := out[0].Jobs[0].IOR, out[1].Jobs[0].IOR
	lo, hi := res.Write.CI95()
	fmt.Printf("\nTuned IOR (160 stripes × 128 MB), 1,024 processes:\n")
	fmt.Printf("  write bandwidth: %.0f MB/s  95%% CI (%.0f, %.0f)\n", res.Write.Mean(), lo, hi)
	fmt.Printf("  default config:  %.0f MB/s  →  tuning gains %.0f×\n",
		defRes.Write.Mean(), res.Write.Mean()/defRes.Write.Mean())
}
