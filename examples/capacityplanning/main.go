// Capacityplanning: the paper's conclusion suggests using the contention
// metrics for purchasing decisions — "the number of OSTs can be increased
// in order to reduce the OST load for a theoretically average I/O
// workload". This example sizes a file system for a target workload and
// checks the choice by simulation.
package main

import (
	"fmt"
	"log"

	"pfsim"
)

func main() {
	// Target workload: at any moment, 8 concurrent jobs each striping
	// over 64 OSTs; the site wants the average OST load kept at 1.25.
	const (
		jobs    = 8
		request = 64
		maxLoad = 1.25
	)
	need := pfsim.MinOSTsForLoad(request, jobs, maxLoad)
	fmt.Printf("Workload: %d jobs × %d stripes, target load <= %.2f\n", jobs, request, maxLoad)
	fmt.Printf("Required OSTs: %d (lscratchc has 480)\n\n", need)

	fmt.Println("Dtotal   Dload    free OSTs")
	for _, dtotal := range []int{480, 720, need, 1440} {
		load := pfsim.Dload(dtotal, request, jobs)
		free := float64(dtotal) - pfsim.Dinuse(dtotal, request, jobs)
		marker := ""
		if dtotal == need {
			marker = "  <- sized for target"
		}
		fmt.Printf("%-8d %-8.2f %-9.0f%s\n", dtotal, load, free, marker)
	}

	// Validate by simulation: run the 8-job workload on a platform scaled
	// to the recommended OST count and compare per-job bandwidth with the
	// 480-OST baseline. OSS count scales with the storage. The Runner
	// reports each job's slowdown vs running alone.
	fmt.Println("\nSimulating 8 contending jobs (256 procs each):")
	runner := pfsim.NewRunner()
	for _, dtotal := range []int{480, need} {
		plat := pfsim.Cab()
		plat.OSTs = dtotal
		plat.OSSs = dtotal / 15
		plat.BackboneMBs *= float64(dtotal) / 480 // backbone grows with the I/O network
		cfg := pfsim.PaperIOR(256)
		cfg.Label = fmt.Sprintf("plan-%d", dtotal)
		cfg.Hints.StripingFactor = request
		cfg.Hints.StripingUnitMB = 128
		cfg.Reps = 3
		res, err := runner.RunScenario(plat,
			pfsim.UniformScenario(cfg.Label, pfsim.IORWorkload(cfg), jobs))
		if err != nil {
			log.Fatal(err)
		}
		agg := res.Aggregate()
		fmt.Printf("  %4d OSTs: %.0f MB/s per job, slowdown %.2fx vs solo (predicted load %.2f)\n",
			dtotal, agg.MeanMBs, agg.MeanSlowdown, pfsim.Dload(dtotal, request, jobs))
	}
}
