// Plfsstudy: Section VI of the paper — PLFS transforms an N-to-1 write
// into N two-stripe logs, so a single application self-contends at scale.
// This example sweeps the rank count, comparing PLFS against the tuned
// Lustre driver and explaining the collapse with Equations 5-6.
package main

import (
	"fmt"
	"log"

	"pfsim"
)

func main() {
	plat := pfsim.Cab()
	fmt.Printf("PLFS vs tuned ad_lustre on %s (write-only IOR, 400 MB/rank)\n\n", plat.Name)
	fmt.Println("ranks   lustre MB/s   plfs MB/s   plfs Dload (Eq. 6)   winner")

	// Ten independent simulations (five scales × two drivers): one
	// RunScenarios call fans them across the machine's cores.
	rankCounts := []int{64, 256, 512, 1024, 2048}
	var scs []pfsim.Scenario
	for _, ranks := range rankCounts {
		lustre := pfsim.TunedIOR(ranks)
		lustre.Label = fmt.Sprintf("study-lustre-%d", ranks)
		lustre.Reps = 2
		plfs := pfsim.PaperIOR(ranks)
		plfs.Label = fmt.Sprintf("study-plfs-%d", ranks)
		plfs.API = pfsim.DriverPLFS
		plfs.Reps = 2
		scs = append(scs,
			pfsim.NewScenario(lustre.Label, pfsim.ScenarioJob{Workload: pfsim.IORWorkload(lustre)}),
			pfsim.NewScenario(plfs.Label, pfsim.ScenarioJob{Workload: pfsim.IORWorkload(plfs)}))
	}
	out, err := pfsim.NewRunner(pfsim.WithoutSlowdowns()).RunScenarios(pfsim.Cab(), scs)
	if err != nil {
		log.Fatal(err)
	}
	for i, ranks := range rankCounts {
		lbw := out[2*i].Jobs[0].WriteMBs()
		pbw := out[2*i+1].Jobs[0].WriteMBs()
		winner := "lustre"
		if pbw > lbw {
			winner = "plfs"
		}
		fmt.Printf("%-7d %-13.0f %-11.0f %-20.2f %s\n",
			ranks, lbw, pbw, pfsim.PLFSLoad(plat.OSTs, ranks), winner)
	}

	// Where does PLFS stop being "good"? The paper calls 3 tasks per OST
	// the threshold, reached at 688 cores on lscratchc.
	be := pfsim.PLFSBreakEvenRanks(plat.OSTs, 3)
	fmt.Printf("\nPLFS exceeds 3 logs/OST beyond %d ranks (paper: 688)\n", be)

	// Inspect one realised backend layout: the assignment of a 512-rank
	// run and its collision profile.
	a := pfsim.AssignOSTs(42, plat.OSTs, 2, 512)
	h := a.CollisionHistogram()
	fmt.Printf("\n512-rank backend layout: %d OSTs in use, load %.2f\n", a.InUse(), a.Load())
	fmt.Println("collisions -> OST count:")
	for c, n := range h.Counts() {
		if n > 0 {
			fmt.Printf("  %d: %d\n", c, n)
		}
	}
}
