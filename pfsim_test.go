package pfsim

import (
	"math"
	"testing"
)

// The facade tests exercise the public API end to end; deep behaviour is
// covered by the internal package suites.

func TestFacadeMetrics(t *testing.T) {
	if got := Dinuse(480, 160, 4); math.Abs(got-385.19) > 0.01 {
		t.Errorf("Dinuse = %v", got)
	}
	if got := Dload(480, 160, 4); math.Abs(got-1.66) > 0.01 {
		t.Errorf("Dload = %v", got)
	}
	if got := PLFSLoad(480, 4096); math.Abs(got-17.07) > 0.01 {
		t.Errorf("PLFSLoad = %v", got)
	}
	rec := DinuseRecurrence(480, []int{160, 160})
	if math.Abs(rec[1]-266.67) > 0.01 {
		t.Errorf("recurrence = %v", rec)
	}
	rows := LoadTable(Lscratchc(), 160, 10)
	if len(rows) != 10 || rows[9].Dreq != 1600 {
		t.Errorf("LoadTable wrong: %+v", rows[len(rows)-1])
	}
}

func TestFacadePlanning(t *testing.T) {
	if r := RecommendRequest(Lscratchc(), 4, 1.2, []int{32, 64, 160}); r != 32 {
		t.Errorf("RecommendRequest = %d", r)
	}
	if n := MinOSTsForLoad(160, 4, 1.66); n < 470 || n > 490 {
		t.Errorf("MinOSTsForLoad = %d", n)
	}
	if n := PLFSBreakEvenRanks(480, 3); n < 660 || n > 720 {
		t.Errorf("PLFSBreakEvenRanks = %d", n)
	}
	q := Availability(Lscratchc(), 64, 4)
	if q.FreeOSTs <= 0 || q.Load < 1 {
		t.Errorf("Availability = %+v", q)
	}
}

func TestFacadeRunIOR(t *testing.T) {
	plat := Cab()
	plat.JitterCV = 0
	cfg := TunedIOR(256)
	cfg.SegmentCount = 10
	cfg.Reps = 1
	res, err := RunIOR(plat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Write.Mean() <= 0 {
		t.Error("no bandwidth")
	}
	if cfg.Hints != TunedHints() {
		t.Error("TunedIOR hints mismatch")
	}
}

func TestFacadeRunContended(t *testing.T) {
	plat := Cab()
	plat.JitterCV = 0
	cfg := TunedIOR(64)
	cfg.SegmentCount = 5
	cfg.Reps = 1
	results, err := RunContended(plat, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("jobs = %d", len(results))
	}
}

func TestFacadeAssignOSTs(t *testing.T) {
	a := AssignOSTs(1, 480, 160, 4)
	if len(a.JobOSTs) != 4 || a.InUse() == 0 {
		t.Errorf("assignment wrong")
	}
	b := AssignOSTs(1, 480, 160, 4)
	if a.InUse() != b.InUse() {
		t.Error("same seed should reproduce the assignment")
	}
}

func TestFacadeExperimentLookup(t *testing.T) {
	if len(ExperimentIDs()) != 11 {
		t.Errorf("experiment ids = %v", ExperimentIDs())
	}
	if len(ExtraExperimentIDs()) != 5 {
		t.Errorf("extra ids = %v", ExtraExperimentIDs())
	}
	if _, err := Experiment("nope", nil, true); err == nil {
		t.Error("unknown experiment accepted")
	} else if _, ok := err.(*UnknownExperimentError); !ok {
		t.Errorf("wrong error type: %T", err)
	}
	out, err := Experiment("table3", nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != "table3" || len(out.Tables) == 0 {
		t.Error("table3 outcome malformed")
	}
}

func TestFacadeAutotune(t *testing.T) {
	plat := Cab()
	plat.JitterCV = 0
	// Full-space autotune on a reduced workload would be slow in tests;
	// this exercises the wiring with the real entry point at small scale.
	best, err := Autotune(plat, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best.StripeCount <= 0 || best.MBs <= 0 {
		t.Errorf("autotune returned %+v", best)
	}
}

func TestDriverConstants(t *testing.T) {
	if DriverUFS.String() != "ad_ufs" || DriverLustre.String() != "ad_lustre" || DriverPLFS.String() != "ad_plfs" {
		t.Error("driver re-exports broken")
	}
}
