package pfsim

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"
)

// fastIOR keeps runner tests quick.
func fastIOR(label string, tasks int) IORConfig {
	cfg := TunedIOR(tasks)
	cfg.Label = label
	cfg.SegmentCount = 5
	cfg.Reps = 1
	return cfg
}

func TestRunnerHeterogeneousScenario(t *testing.T) {
	plat := Cab()
	plat.JitterCV = 0 // isolate contention from service noise
	// The interference case the paper never measures: a 1,024-rank PLFS
	// logger floods every OST (load ≈ 4.3, Equation 6) while a 1,024-rank
	// 160-stripe collective writer — OST-bound at this scale — shares the
	// file system. The writer starts at t=30s so it lands in the logger's
	// data phase (the PLFS open storm occupies the first seconds) and must
	// report a strong slowdown.
	writer := fastIOR("striped", 1024)
	writer.SegmentCount = 10
	sc := NewScenario("hetero",
		ScenarioJob{Workload: IORWorkload(writer), Stripes: 160, StripeSizeMB: 128, StartAt: 30},
		ScenarioJob{Workload: PLFSWorkload(1024, 400)},
	)
	res, err := NewRunner().RunScenario(plat, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	for i := range res.Jobs {
		if res.Jobs[i].WriteMBs() <= 0 {
			t.Errorf("job %d: no bandwidth", i)
		}
		if res.Jobs[i].SoloMBs <= 0 || res.Jobs[i].Slowdown <= 0 {
			t.Errorf("job %d: slowdown not reported (solo=%v slowdown=%v)",
				i, res.Jobs[i].SoloMBs, res.Jobs[i].Slowdown)
		}
	}
	if sd := res.Job("striped").Slowdown; sd < 2 {
		t.Errorf("striped writer slowdown = %v, want heavy degradation from the logger", sd)
	}
	agg := res.Aggregate()
	if agg.MaxSlowdown < agg.MeanSlowdown || agg.MeanSlowdown <= 0 {
		t.Errorf("aggregate slowdowns wrong: %+v", agg)
	}
}

func TestRunnerScenarioDeterministicForSeed(t *testing.T) {
	plat := Cab() // jitter on: determinism must survive randomness
	sc := NewScenario("det",
		ScenarioJob{Workload: IORWorkload(fastIOR("a", 64))},
		ScenarioJob{Workload: PLFSWorkload(128, 10)},
	)
	run := func(par int) *ScenarioResult {
		res, err := NewRunner(WithSeed(42), WithParallelism(par)).RunScenario(plat, sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	for i := range a.Jobs {
		av, bv := a.Jobs[i].IOR.Write.Values(), b.Jobs[i].IOR.Write.Values()
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("job %d rep %d: parallelism changed the result (%v != %v)",
					i, j, av[j], bv[j])
			}
		}
		if a.Jobs[i].Slowdown != b.Jobs[i].Slowdown {
			t.Fatalf("job %d: slowdown differs across parallelism", i)
		}
	}
}

func TestRunnerSweepParallelismInvariant(t *testing.T) {
	plat := Cab()
	base := fastIOR("sweep", 256)
	opt := SweepOptions{Tasks: 256, Reps: 1, Base: &base}
	counts := []int{8, 32, 64, 160}
	sizes := []float64{1, 64, 128}
	serial, err := NewRunner(WithParallelism(1)).Sweep(plat, counts, sizes, opt)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(WithParallelism(8)).Sweep(plat, counts, sizes, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		for j := range sizes {
			if serial.MBs[i][j] != parallel.MBs[i][j] {
				t.Fatalf("grid[%d][%d]: serial %v != parallel %v",
					i, j, serial.MBs[i][j], parallel.MBs[i][j])
			}
		}
	}
	if serial.Best() != parallel.Best() {
		t.Error("best points differ")
	}
}

func TestRunnerSweepHonoursSeed(t *testing.T) {
	plat := Cab()
	base := fastIOR("seeded", 64)
	opt := SweepOptions{Tasks: 64, Reps: 1, Base: &base}
	counts, sizes := []int{8, 32}, []float64{64}
	a, err := NewRunner(WithSeed(11)).Sweep(plat, counts, sizes, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(WithSeed(11)).Sweep(plat, counts, sizes, opt)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRunner(WithSeed(12)).Sweep(plat, counts, sizes, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.MBs[0][0] != b.MBs[0][0] || a.MBs[1][0] != b.MBs[1][0] {
		t.Error("same seed must reproduce the grid")
	}
	if a.MBs[0][0] == c.MBs[0][0] && a.MBs[1][0] == c.MBs[1][0] {
		t.Error("WithSeed had no effect on the sweep")
	}
}

func TestRunnerContextCancelsSweep(t *testing.T) {
	plat := Cab()
	base := fastIOR("cancel", 64)
	ctx, cancel := context.WithCancel(context.Background())
	points := 0
	r := NewRunner(WithContext(ctx), WithParallelism(1), WithProgress(func(done, total int) {
		points = done
		if done == 1 {
			cancel()
		}
	}))
	counts := []int{8, 16, 32, 64, 128, 160}
	sizes := []float64{1, 32, 64, 128, 256}
	start := time.Now()
	_, err := r.Sweep(plat, counts, sizes, SweepOptions{Tasks: 64, Reps: 1, Base: &base})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if points >= len(counts)*len(sizes)-1 {
		t.Errorf("cancellation not prompt: %d of %d points ran", points, len(counts)*len(sizes))
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancel took %v", elapsed)
	}
	// A pre-cancelled context refuses scenario work immediately.
	if _, err := r.RunScenario(plat, UniformScenario("x", IORWorkload(base), 2)); !errors.Is(err, context.Canceled) {
		t.Errorf("RunScenario on cancelled ctx: %v", err)
	}
	if _, err := r.RunIOR(plat, base); !errors.Is(err, context.Canceled) {
		t.Errorf("RunIOR on cancelled ctx: %v", err)
	}
}

func TestRunnerWrappersMatchClassicPaths(t *testing.T) {
	plat := Cab()
	cfg := fastIOR("wrap", 64)
	a, err := RunIOR(plat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(WithParallelism(8), WithoutSlowdowns()).RunIOR(plat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Write.Mean() != b.Write.Mean() {
		t.Errorf("wrapper diverges from Runner path: %v != %v", a.Write.Mean(), b.Write.Mean())
	}
	jobs, err := RunContended(plat, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("contended jobs = %d", len(jobs))
	}
	for i, j := range jobs {
		if j.Write.Mean() <= 0 {
			t.Errorf("job %d: no bandwidth", i)
		}
	}
}

func TestRunnerProgress(t *testing.T) {
	plat := Cab()
	base := fastIOR("prog", 64)
	var calls []int
	var lastTotal int
	r := NewRunner(WithParallelism(1), WithProgress(func(done, total int) {
		calls = append(calls, done)
		lastTotal = total
	}))
	if _, err := r.Sweep(plat, []int{8, 16}, []float64{64}, SweepOptions{Tasks: 64, Reps: 1, Base: &base}); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[len(calls)-1] != 2 || lastTotal != 2 {
		t.Errorf("progress calls = %v (total %d), want [1 2] of 2", calls, lastTotal)
	}
}

func TestRunnerRepeat(t *testing.T) {
	plat := Cab()
	sc := UniformScenario("rep", IORWorkload(fastIOR("r", 64)), 2)
	run := func(par int) []*ScenarioResult {
		out, err := NewRunner(WithParallelism(par), WithoutSlowdowns()).Repeat(plat, sc, 3)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(1), run(8)
	if len(a) != 3 {
		t.Fatalf("replicas = %d", len(a))
	}
	for i := range a {
		if a[i].Jobs[0].WriteMBs() != b[i].Jobs[0].WriteMBs() {
			t.Fatalf("replica %d differs across parallelism", i)
		}
	}
	// Replicas use distinct seeds, so their draws must differ.
	if a[0].Jobs[0].WriteMBs() == a[1].Jobs[0].WriteMBs() {
		t.Error("replicas identical; seeds not advancing")
	}
	if _, err := NewRunner().Repeat(plat, sc, 0); err == nil {
		t.Error("zero repetitions accepted")
	}
}

func TestRunnerRunScenarios(t *testing.T) {
	plat := Cab()
	scs := []Scenario{
		UniformScenario("two", IORWorkload(fastIOR("u", 64)), 2),
		NewScenario("one", ScenarioJob{Workload: PLFSWorkload(64, 10)}),
	}
	out, err := NewRunner(WithoutSlowdowns(), WithParallelism(4)).RunScenarios(plat, scs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || len(out[0].Jobs) != 2 || len(out[1].Jobs) != 1 {
		t.Fatalf("shape wrong: %d scenarios", len(out))
	}
}

func TestRunnerProgressMonotonicAcrossPhases(t *testing.T) {
	// One Runner call spans two internal phases: the contended scenario
	// pass and the solo-baseline pass. Progress must be one monotonic
	// (done, total) series over the combined units — an earlier revision
	// restarted the count at each phase, so bars jumped backwards.
	plat := Cab()
	scs := []Scenario{
		NewScenario("p1", ScenarioJob{Workload: IORWorkload(fastIOR("pa", 32))}),
		NewScenario("p2", ScenarioJob{Workload: IORWorkload(fastIOR("pb", 64))}),
	}
	type call struct{ done, total int }
	var calls []call
	r := NewRunner(WithParallelism(1), WithProgress(func(done, total int) {
		calls = append(calls, call{done, total})
	}))
	if _, err := r.RunScenarios(plat, scs); err != nil {
		t.Fatal(err)
	}
	// 2 scenario units + 2 distinct solo baselines = 4 units.
	if len(calls) != 4 {
		t.Fatalf("progress calls = %v, want 4 entries", calls)
	}
	for i, c := range calls {
		if c.done != i+1 {
			t.Errorf("call %d: done = %d, want %d (monotonic)", i, c.done, i+1)
		}
		if c.done > c.total {
			t.Errorf("call %d: done %d exceeds total %d", i, c.done, c.total)
		}
	}
	if last := calls[len(calls)-1]; last.done != last.total {
		t.Errorf("final call %+v: done != total", last)
	}
}

func TestRunnerRunScenarioProgressIncludesBaselines(t *testing.T) {
	plat := Cab()
	sc := NewScenario("single", ScenarioJob{Workload: IORWorkload(fastIOR("solo", 32))})
	var dones []int
	lastTotal := 0
	r := NewRunner(WithParallelism(1), WithProgress(func(done, total int) {
		dones = append(dones, done)
		lastTotal = total
	}))
	if _, err := r.RunScenario(plat, sc); err != nil {
		t.Fatal(err)
	}
	// 1 scenario + 1 baseline, counted as one series.
	if len(dones) != 2 || dones[0] != 1 || dones[1] != 2 || lastTotal != 2 {
		t.Errorf("progress = %v (total %d), want [1 2] of 2", dones, lastTotal)
	}
}

// TestRunnerCancelMidSweepDrainsWorkers cancels a parallel sweep from
// inside its progress callback and asserts the Runner honours the
// contract WithContext documents: the partial grid is discarded (no
// result object escapes), the worker pool drains before Sweep returns
// (no goroutines leak), and the same Runner refuses further work while
// its context stays cancelled.
func TestRunnerCancelMidSweepDrainsWorkers(t *testing.T) {
	plat := Cab()
	base := fastIOR("drain", 64)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	before := runtime.NumGoroutine()
	r := NewRunner(WithContext(ctx), WithParallelism(4), WithProgress(func(done, total int) {
		if done == 2 {
			cancel()
		}
	}))
	counts := []int{8, 16, 32, 64, 128, 160}
	sizes := []float64{1, 32, 64, 128, 256}
	grid, err := r.Sweep(plat, counts, sizes, SweepOptions{Tasks: 64, Reps: 1, Base: &base})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if grid != nil {
		t.Fatal("cancelled sweep returned a partial grid as if complete")
	}
	// pool.Run waits for its workers before returning, so the goroutine
	// count must fall back to the pre-sweep baseline. Poll briefly: the
	// runtime needs a moment to reap exited goroutines.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("worker pool leaked goroutines: %d before sweep, %d after cancellation", before, g)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	// The cancelled context sticks to the Runner: later calls refuse work
	// rather than returning partial results.
	if _, err := r.RunIOR(plat, base); !errors.Is(err, context.Canceled) {
		t.Errorf("RunIOR after cancellation: err = %v, want context.Canceled", err)
	}
	// A fresh Runner on a live context is unaffected by the drained pool.
	if _, err := NewRunner(WithParallelism(2)).RunIOR(plat, base); err != nil {
		t.Errorf("fresh Runner after drain: %v", err)
	}
}

// TestRunnerCancelMidRepeatDiscardsPartial covers the Repeat path: replicas
// completed before the cancellation must not leak out as a short slice.
func TestRunnerCancelMidRepeatDiscardsPartial(t *testing.T) {
	plat := Cab()
	base := fastIOR("repeat-cancel", 64)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := NewRunner(WithContext(ctx), WithParallelism(2), WithoutSlowdowns(),
		WithProgress(func(done, total int) {
			if done == 1 {
				cancel()
			}
		}))
	res, err := r.Repeat(plat, UniformScenario("rc", IORWorkload(base), 1), 8)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled Repeat returned partial replicas")
	}
}

func TestRunnerRunSharded(t *testing.T) {
	plat, shards := SolverShardedScenario(8, 3)
	var ticks int
	r := NewRunner(WithParallelism(1), WithProgress(func(done, total int) { ticks++ }))
	res, err := r.RunSharded(plat, shards)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 3 || res.Makespan <= 0 {
		t.Fatalf("sharded result malformed: %d shards, makespan %v", len(res.Shards), res.Makespan)
	}
	if ticks == 0 {
		t.Error("progress callback never fired")
	}
	// All shards run the same workload on identical (but independent)
	// file-system shards differing only by RNG stream: bandwidths must be
	// close but the layouts independent.
	for i, sh := range res.Shards {
		if sh.Jobs[0].WriteMBs() <= 0 {
			t.Fatalf("shard %d has no bandwidth", i)
		}
	}
	if res.Solver.ComponentsSolved == 0 || res.Solver.ComponentFlowsScanned == 0 {
		t.Error("solver counters missing from sharded result")
	}
	// The per-solve population must track the shard (16 flows), not the
	// whole 48-flow simulation.
	per := float64(res.Solver.ComponentFlowsScanned) / float64(res.Solver.ComponentsSolved)
	if per > 16 {
		t.Errorf("per-solve scan %.1f flows; want <= shard population 16", per)
	}
}

func TestRunnerRunShardedCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	plat, shards := SolverShardedScenario(4, 2)
	if _, err := NewRunner(WithContext(ctx)).RunSharded(plat, shards); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunnerRunShardedParallelismBitIdentical: RunSharded spends the
// Runner's pool width inside the shared solver (one simulation, many
// components); any width must reproduce the serial run bit for bit,
// solver work counters included.
func TestRunnerRunShardedParallelismBitIdentical(t *testing.T) {
	plat, shards := SolverShardedScenario(32, 4)
	serial, err := NewRunner(WithParallelism(1)).RunSharded(plat, shards)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := NewRunner(WithParallelism(8)).RunSharded(plat, shards)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(serial.Makespan) != math.Float64bits(wide.Makespan) {
		t.Fatalf("makespan diverged: serial %v vs parallel %v", serial.Makespan, wide.Makespan)
	}
	for i := range serial.Shards {
		a, b := serial.Shards[i].Jobs[0], wide.Shards[i].Jobs[0]
		if math.Float64bits(a.WriteMBs()) != math.Float64bits(b.WriteMBs()) {
			t.Errorf("shard %d bandwidth diverged: %v vs %v", i, a.WriteMBs(), b.WriteMBs())
		}
	}
	if serial.Solver != wide.Solver {
		t.Errorf("solver counters diverged:\nserial   %+v\nparallel %+v", serial.Solver, wide.Solver)
	}
}
