module pfsim

go 1.24
