package pfsim

import (
	"pfsim/internal/pool"
	"pfsim/internal/scenariofile"
)

// ScenarioFile is a parsed declarative scenario: platform selection, a
// fleet of workloads (hand-listed or generator-expanded), a timed
// fault/chaos timeline, and a self-checking assertion block. Files are
// YAML (a deterministic subset) or JSON; see the README's "Declarative
// scenarios" section for the schema.
type ScenarioFile = scenariofile.File

// ScenarioFileResult is the outcome of running a ScenarioFile: the
// simulation results plus the assertion verdict (Passed / Failures).
type ScenarioFileResult = scenariofile.Result

// LoadScenarioFile reads, parses and statically validates a scenario
// file. Malformed documents — unknown keys, negative or NaN event
// times, events past the horizon, health factors outside [0, 1] — are
// rejected here, before any simulation runs.
func LoadScenarioFile(path string) (*ScenarioFile, error) {
	return scenariofile.Load(path)
}

// ParseScenarioFile parses an in-memory scenario document; name labels
// the document in error messages.
func ParseScenarioFile(data []byte, name string) (*ScenarioFile, error) {
	return scenariofile.Parse(data, name)
}

// RunScenarioFile executes a declarative scenario file: the fleet is
// expanded and simulated with the fault timeline compiled onto engine
// hooks, solo baselines run when an assertion needs slowdown figures,
// and the assertion block is evaluated. The Runner's seed, context and
// parallelism apply; parallelism is spent inside the fluid solver for
// the contended run and across the worker pool for baselines, with
// byte-identical results at any width. Whether baselines run is the
// file's choice (its `baselines` key, or automatically when an
// assertion reads slowdowns) — WithoutSlowdowns does not override it.
// An error means the file failed to validate or simulate; assertion
// failures are reported in the result, not as errors.
func (r *Runner) RunScenarioFile(f *ScenarioFile) (*ScenarioFileResult, error) {
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	return scenariofile.Run(f, scenariofile.RunOptions{
		Seed:        r.seed,
		Parallelism: pool.Workers(r.parallelism),
		Ctx:         r.ctx,
	})
}
