// Benchmarks regenerating every table and figure of Wright & Jarvis,
// "Quantifying the Effects of Contention on Parallel File Systems"
// (IPDPSW 2015). Each benchmark runs the corresponding experiment in
// quick mode, reports its headline value as a custom metric, and (under
// -v) logs the regenerated rows next to the paper's numbers.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
package pfsim

import (
	"fmt"
	"runtime"
	"testing"

	"pfsim/internal/experiments"
	"pfsim/internal/flow"
	"pfsim/internal/lustre"
	"pfsim/internal/workload"
)

// benchExperiment runs one registered experiment per iteration, reporting
// the named comparison as paper-vs-measured metrics.
func benchExperiment(b *testing.B, id string, headline string) {
	b.Helper()
	run, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var out *experiments.Outcome
	for i := 0; i < b.N; i++ {
		var err error
		out, err = run(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range out.Comparisons {
		if c.Metric == headline {
			b.ReportMetric(c.Measured, "measured")
			b.ReportMetric(c.Paper, "paper")
		}
	}
	logOutcome(b, out)
}

func logOutcome(b *testing.B, out *experiments.Outcome) {
	b.Helper()
	for _, t := range out.Tables {
		b.Logf("\n%s", t.String())
	}
	b.Logf("\n%s", out.ComparisonTable().String())
	for _, n := range out.Notes {
		b.Logf("note: %s", n)
	}
}

// BenchmarkFigure1ParameterSweep regenerates Figure 1: the stripe count ×
// stripe size sweep over 1,024 processes, its 160×128MB optimum and the
// ~49× improvement over the default configuration.
func BenchmarkFigure1ParameterSweep(b *testing.B) {
	benchExperiment(b, "figure1", "speed-up over default")
}

// BenchmarkTable3LoadR160 regenerates Table III: Dinuse/Dreq/Dload on
// lscratchc for 1..10 jobs of 160 stripes.
func BenchmarkTable3LoadR160(b *testing.B) {
	benchExperiment(b, "table3", "Dload at n=10")
}

// BenchmarkTable4LoadR64 regenerates Table IV (R = 64).
func BenchmarkTable4LoadR64(b *testing.B) {
	benchExperiment(b, "table4", "Dload at n=10")
}

// BenchmarkFigure2OSTContention regenerates Figure 2: per-process
// bandwidth of 1..16 writers pinned to a single OST, against the scaled
// ideal band.
func BenchmarkFigure2OSTContention(b *testing.B) {
	benchExperiment(b, "figure2", "single-writer MB/s")
}

// BenchmarkFigure3FourContendedJobs regenerates Figure 3: four
// simultaneous tuned IOR tasks × five repetitions (~4,500 MB/s each,
// 3.44× below the solo peak).
func BenchmarkFigure3FourContendedJobs(b *testing.B) {
	benchExperiment(b, "figure3", "per-task MB/s")
}

// BenchmarkTable5StripeReduction regenerates Table V / Figure 4: the
// bandwidth/availability trade-off as per-job requests shrink 160 → 32.
func BenchmarkTable5StripeReduction(b *testing.B) {
	benchExperiment(b, "table5", "avg BW at R=160")
}

// BenchmarkTable6Stampede regenerates Table VI: predicted load on
// Stampede's 160-OST file system with 128-stripe jobs.
func BenchmarkTable6Stampede(b *testing.B) {
	benchExperiment(b, "table6", "Dload at n=10")
}

// BenchmarkFigure5LustreVsPLFS regenerates Figure 5: tuned ad_lustre vs
// ad_plfs from 16 to 4,096 processes, with PLFS peaking near 512 and
// collapsing by 4,096.
func BenchmarkFigure5LustreVsPLFS(b *testing.B) {
	benchExperiment(b, "figure5", "PLFS MB/s at 4096")
}

// BenchmarkTable7ScalingData regenerates Table VII (the numeric Figure 5
// data with 95% confidence intervals).
func BenchmarkTable7ScalingData(b *testing.B) {
	benchExperiment(b, "table7", "PLFS@512")
}

// BenchmarkTable8PLFSCollisions512 regenerates Table VIII: PLFS backend
// collision statistics at 512 processes (load ≈ 2.4).
func BenchmarkTable8PLFSCollisions512(b *testing.B) {
	benchExperiment(b, "table8", "mean Dload")
}

// BenchmarkTable9PLFSCollisions4096 regenerates Table IX: collision
// statistics at 4,096 processes (every OST in use, load 17.07).
func BenchmarkTable9PLFSCollisions4096(b *testing.B) {
	benchExperiment(b, "table9", "mean Dload")
}

// BenchmarkAblationAggregatorCap probes the calibrated aggregator
// dispatch rate, the constant behind the Figure 1 optimum.
func BenchmarkAblationAggregatorCap(b *testing.B) {
	benchExperiment(b, "ablation-aggcap", "tuned BW halves when dispatch halves (ratio)")
}

// BenchmarkAblationThrash disables log-append thrash to show it — not the
// open storm alone — drives the PLFS collapse.
func BenchmarkAblationThrash(b *testing.B) {
	benchExperiment(b, "ablation-thrash", "no-thrash/with-thrash BW ratio (>1.5 expected)")
}

// BenchmarkExtensionGATuner compares the Behzad-style genetic autotuner
// against the exhaustive sweep.
func BenchmarkExtensionGATuner(b *testing.B) {
	benchExperiment(b, "extension-ga", "GA best vs exhaustive best (ratio)")
}

// BenchmarkExtensionReadback checks the Polte et al. read-back claim: data
// written through PLFS reads back faster than the tuned shared file.
func BenchmarkExtensionReadback(b *testing.B) {
	benchExperiment(b, "extension-readback", "PLFS read gain over tuned Lustre read (>1 expected)")
}

// BenchmarkExtensionWideStriping lifts the Lustre 2.4.2 stripe limit (the
// conclusion's Exascale discussion): modest solo gains, amplified QoS
// damage under contention.
func BenchmarkExtensionWideStriping(b *testing.B) {
	benchExperiment(b, "extension-widestriping", "solo 480-stripe gain over 160 (ratio)")
}

// BenchmarkEquationKernels measures the raw analytic metric kernels —
// the costs a monitoring tool would pay calling them per job submission.
func BenchmarkEquationKernels(b *testing.B) {
	b.Run("Dinuse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Dinuse(480, 160, 10)
		}
	})
	b.Run("LoadTable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = LoadTable(Lscratchc(), 160, 10)
		}
	})
	b.Run("Availability", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Availability(Lscratchc(), 160, 4)
		}
	})
	b.Run("Assignment", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := AssignOSTs(uint64(i), 480, 160, 4)
			if a.InUse() == 0 {
				b.Fatal("empty assignment")
			}
		}
	})
}

// BenchmarkSweepExhaustive measures the Section IV parameter sweep on the
// Runner's worker pool: "serial" pins one worker, "parallel" uses every
// core. Each grid point is an isolated deterministic simulation, so the
// parallel grid is byte-identical to the serial one — the speedup on
// multi-core machines is free.
func BenchmarkSweepExhaustive(b *testing.B) {
	plat := Cab()
	base := TunedIOR(256)
	base.Label = "bench-sweep"
	base.SegmentCount = 10
	base.Reps = 1
	counts := []int{8, 32, 64, 128, 160}
	sizes := []float64{1, 32, 64, 128, 256}
	for _, bc := range []struct {
		name string
		par  int
	}{
		{"serial", 1},
		{fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			r := NewRunner(WithParallelism(bc.par))
			var grid *SweepGrid
			for i := 0; i < b.N; i++ {
				var err error
				grid, err = r.Sweep(plat, counts, sizes,
					SweepOptions{Tasks: 256, Reps: 1, Base: &base})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(counts)*len(sizes))/b.Elapsed().Seconds()*float64(b.N), "points/s")
			b.ReportMetric(grid.Best().MBs, "bestMBs")
		})
	}
}

// BenchmarkScenarioHeterogeneous measures the mixed-workload engine: a
// 256-rank collective writer next to a 256-rank PLFS logger on one
// simulated system, slowdown baselines included.
func BenchmarkScenarioHeterogeneous(b *testing.B) {
	plat := Cab()
	writer := TunedIOR(256)
	writer.Label = "bench-hetero-writer"
	writer.SegmentCount = 10
	writer.Reps = 1
	sc := NewScenario("bench-hetero",
		ScenarioJob{Workload: IORWorkload(writer)},
		ScenarioJob{Workload: PLFSWorkload(256, 40)},
	)
	r := NewRunner()
	for i := 0; i < b.N; i++ {
		res, err := r.RunScenario(plat, sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Jobs) != 2 || res.Jobs[0].Slowdown <= 0 {
			b.Fatal("scenario result malformed")
		}
	}
}

// reportSolverStats emits the machine-independent solver cost metrics:
// the number of link and flow records the solver examined per simulated
// run, completion-heap element operations (zero in reference mode, which
// rescans every active flow per solve instead), per-component pass counts
// and accrual settles. compflowspersolve/op is the headline partitioning
// metric: the average population one progressive-filling pass touches —
// ~the component size under partitioning, the whole active population
// without it.
func reportSolverStats(b *testing.B, stats flow.Stats) {
	b.Helper()
	b.ReportMetric(float64(stats.Solves), "solves/op")
	b.ReportMetric(float64(stats.LinkVisits), "linkvisits/op")
	b.ReportMetric(float64(stats.Rounds), "rounds/op")
	b.ReportMetric(float64(stats.FlowsScanned), "flowsscanned/op")
	b.ReportMetric(float64(stats.HeapOps), "heapops/op")
	b.ReportMetric(float64(stats.ComponentsSolved), "componentssolved/op")
	b.ReportMetric(float64(stats.ComponentFlowsScanned), "compflowsscanned/op")
	b.ReportMetric(float64(stats.FlowsSettled), "flowssettled/op")
	if stats.ComponentsSolved > 0 {
		b.ReportMetric(float64(stats.ComponentFlowsScanned)/float64(stats.ComponentsSolved), "compflowspersolve/op")
	}
}

// benchSolver measures the max-min solver on a (2 × ranks)-flow
// SolverStressScenario — the shape the BENCH_solver.json gate and
// pfsim-metrics -solver-writers share —
// in both solver modes:
//
//   - incremental: component partitioning, per-flow accrual anchors,
//     same-instant recompute coalescing, unfixed-flow lists and the
//     completion heap (the default);
//   - reference: the naive behaviour — a full progressive-filling pass
//     over every link on every flow arrival and completion, and a linear
//     scan for the next completion.
//
// Results are byte-identical across modes (the property tests enforce
// it); only the solver work differs. This scenario shares one backbone,
// so it is a single component: the partitioning win shows up in
// BenchmarkSolverSharded4096x16, the counters here guard against the
// partitioned machinery regressing the monolithic case.
func benchSolver(b *testing.B, ranks int) {
	for _, bc := range []struct {
		name      string
		reference bool
	}{
		{"incremental", false},
		{"reference", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			plat, sc := SolverStressScenario(ranks)
			var stats flow.Stats
			for i := 0; i < b.N; i++ {
				var captured *lustre.System
				res, err := workload.RunScenario(plat, sc, 0, func(sys *lustre.System) {
					sys.Net().UseReferenceSolver(bc.reference)
					captured = sys
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Makespan <= 0 {
					b.Fatal("empty run")
				}
				stats = captured.Net().Stats()
			}
			reportSolverStats(b, stats)
		})
	}
}

// BenchmarkSolverSharded4096x16 is the component-partitioning stress: the
// BenchmarkSolver4096Flows population (4,096 concurrent flows) split
// across 16 disjoint file systems under one engine and one solver
// (SolverShardedScenario). Every shard is its own link-connectivity
// component, so the partitioned solver's per-solve scan cost
// (compflowspersolve/op) must track the 256-flow shard, not the 4,096-flow
// population — roughly a 16× drop against the reference's global passes —
// and accrual settles (flowssettled/op) charge only the touched shard's
// flows per instant.
//
// The incremental-par4 variant solves the components each instant
// dirties on 4 concurrent workers (Net.SetSolveParallelism). Results and
// every counter are byte-identical across all three variants — the gate
// pins the parallel counters to the serial baselines — and the
// parallel/serial ns/op ratio is the wall-clock win of exploiting the
// partition's structural independence.
func BenchmarkSolverSharded4096x16(b *testing.B) {
	const writers, shards = 128, 16
	for _, bc := range []struct {
		name      string
		reference bool
		par       int
	}{
		{"incremental", false, 1},
		{"incremental-par4", false, 4},
		{"reference", true, 1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			plat, scs := SolverShardedScenario(writers, shards)
			var stats flow.Stats
			for i := 0; i < b.N; i++ {
				res, err := workload.RunShardedWith(plat, scs,
					workload.RunOptions{Parallelism: bc.par},
					func(i int, sys *lustre.System) {
						if i == 0 {
							sys.Net().UseReferenceSolver(bc.reference)
						}
					})
				if err != nil {
					b.Fatal(err)
				}
				if res.Makespan <= 0 || len(res.Shards) != shards {
					b.Fatal("sharded run malformed")
				}
				stats = res.Solver
			}
			reportSolverStats(b, stats)
		})
	}
}

// BenchmarkSolver1024Flows is the PR-2 solver-stress scenario: 512
// file-per-process writers, 1,024 concurrent flows.
func BenchmarkSolver1024Flows(b *testing.B) { benchSolver(b, 512) }

// BenchmarkSolver4096Flows scales the solver stress 4×: 2,048
// file-per-process writers, 4,096 concurrent flows — the population where
// per-event linear rescans dominated before the completion heap and
// unfixed-flow lists.
func BenchmarkSolver4096Flows(b *testing.B) { benchSolver(b, 2048) }

// BenchmarkSimulatorThroughput measures the simulator itself: simulated
// MB of I/O processed per wall-clock second for a tuned 1,024-process
// write.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := TunedIOR(1024)
	cfg.Reps = 1
	cfg.Label = "bench-simthroughput"
	totalMB := cfg.TotalMB()
	for i := 0; i < b.N; i++ {
		res, err := RunIOR(Cab(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Write.Mean() <= 0 {
			b.Fatal("no bandwidth")
		}
	}
	b.SetBytes(int64(totalMB * 1e6))
}

func ExampleDinuse() {
	// Three jobs of 160 stripes on lscratchc's 480 OSTs.
	fmt.Printf("%.2f\n", Dinuse(480, 160, 3))
	// Output: 337.78
}

func ExamplePLFSLoad() {
	// A 4,096-rank PLFS run loads every OST with ~17 stripe streams.
	fmt.Printf("%.2f\n", PLFSLoad(480, 4096))
	// Output: 17.07
}
