package pfsim

import (
	"strings"
	"testing"
)

const scenarioDoc = `
name: public-surface
platform:
  preset: cab
  nodes: 64
  osts: 8
  osss: 2
fleet:
  - ior:
      label: w
      tasks: 8
      segments: 4
    count: 2
    stripes: 4
timeline:
  - at: 2
    ost_health:
      ost: 1
      factor: 0.5
  - at: 6
    ost_recover:
      ost: 1
assert:
  total_mbs:
    min: 1
`

func TestRunScenarioFile(t *testing.T) {
	f, err := ParseScenarioFile([]byte(scenarioDoc), "public.yaml")
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewRunner().RunScenarioFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("assertions failed: %v", res.Failures)
	}
	if res.Mono == nil || len(res.Mono.Jobs) != 2 {
		t.Fatalf("unexpected result shape")
	}
}

func TestParseScenarioFileRejectsBadTimes(t *testing.T) {
	bad := strings.Replace(scenarioDoc, "at: 2", "at: -2", 1)
	if _, err := ParseScenarioFile([]byte(bad), "bad.yaml"); err == nil {
		t.Fatal("negative event time accepted")
	}
}
