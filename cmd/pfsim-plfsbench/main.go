// pfsim-plfsbench reproduces the Section VI PLFS study: the Lustre-vs-PLFS
// scaling comparison (Figure 5 / Table VII) and the backend collision
// statistics (Tables VIII and IX).
//
// Usage:
//
//	pfsim-plfsbench                  # Figure 5 + Tables VIII and IX
//	pfsim-plfsbench -only figure5
//	pfsim-plfsbench -quick
package main

import (
	"flag"
	"fmt"
	"os"

	"pfsim/internal/experiments"
)

func main() {
	only := flag.String("only", "", "figure5 | table7 | table8 | table9")
	quick := flag.Bool("quick", false, "fewer repetitions")
	parallel := flag.Int("parallel", 0, "worker pool width (0 = all cores, 1 = serial)")
	flag.Parse()

	ids := []string{"figure5", "table8", "table9"}
	if *only != "" {
		ids = []string{*only}
	}
	opt := experiments.Options{Quick: *quick, Parallelism: *parallel}
	for _, id := range ids {
		run, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "pfsim-plfsbench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		out, err := run(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfsim-plfsbench:", err)
			os.Exit(1)
		}
		fmt.Printf("== %s: %s ==\n", out.ID, out.Title)
		for _, t := range out.Tables {
			t.Fprint(os.Stdout)
			fmt.Println()
		}
		out.ComparisonTable().Fprint(os.Stdout)
		for _, n := range out.Notes {
			fmt.Println("note:", n)
		}
		fmt.Println()
	}
}
