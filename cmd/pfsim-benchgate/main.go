// pfsim-benchgate gates CI on the solver's machine-independent cost
// counters. It parses `go test -bench` output, looks up each gated
// benchmark's counters in the committed BENCH_solver.json baseline, and
// fails (exit 1) when any counter regressed by more than the baseline's
// allowance. The counters are deterministic simulation counts — link
// visits, flows scanned, heap operations, solves — so a regression is a
// real behaviour change, never timing noise.
//
// Usage:
//
//	go test -bench=BenchmarkSolver -benchtime=1x -run='^$' . | tee bench.out
//	pfsim-benchgate -baseline BENCH_solver.json bench.out
//	pfsim-benchgate -baseline BENCH_solver.json -update bench.out
//
// With no positional argument the benchmark output is read from stdin.
// -update rewrites the baseline's gated counter values in place from the
// given benchmark output — the sanctioned way to refresh baselines
// alongside an intentional solver change. Which (benchmark, counter)
// pairs are gated, the allowance and every other field are preserved.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineFile is the part of BENCH_solver.json the gate consumes.
type baselineFile struct {
	Gate gate `json:"gate"`
}

// gate names the benchmarks and counters under regression control.
type gate struct {
	MaxRegressionPct float64 `json:"max_regression_pct"`
	// Allowances overrides the regression allowance (in percent) for
	// specific counters by metric name, wherever they are gated. The
	// deterministic simulation counters stay on the tight default; this
	// exists for the inherently noisy metrics a gate still wants bounded —
	// ns/op and peak goroutine counts on the fleet benchmark, where the
	// regressions being guarded against (goroutine-per-writer dispatch)
	// are order-of-magnitude, not percent-level.
	Allowances map[string]float64            `json:"allowances,omitempty"`
	Counters   map[string]map[string]float64 `json:"counters"`
}

// allowancePct returns the regression allowance for a counter: its
// per-metric override when one is configured, the shared default otherwise.
func (g gate) allowancePct(counter string) float64 {
	if pct, ok := g.Allowances[counter]; ok {
		return pct
	}
	return g.MaxRegressionPct
}

// benchResult is one parsed benchmark line: its name (GOMAXPROCS suffix
// stripped) and every reported metric, ns/op included.
type benchResult struct {
	name    string
	metrics map[string]float64
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark result lines from `go test -bench` output.
// A result line is "BenchmarkName[-P] N value unit [value unit]...".
func parseBench(r io.Reader) ([]benchResult, error) {
	var out []benchResult
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		res := benchResult{
			name:    gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
			metrics: map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: %s: bad value %q for %q", res.name, fields[i], fields[i+1])
			}
			res.metrics[fields[i+1]] = v
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// check compares parsed results against the gate. It returns one line per
// gated (benchmark, counter) pair and whether every pair passed. Missing
// benchmarks or counters fail: a gate that silently skips is no gate.
func check(g gate, results []benchResult) (lines []string, ok bool) {
	if len(g.Counters) == 0 {
		return []string{"benchgate: baseline gates no counters"}, false
	}
	byName := map[string]benchResult{}
	for _, r := range results {
		byName[r.name] = r
	}
	ok = true
	names := make([]string, 0, len(g.Counters))
	for name := range g.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res, found := byName[name]
		if !found {
			lines = append(lines, fmt.Sprintf("FAIL %s: benchmark missing from output", name))
			ok = false
			continue
		}
		counters := make([]string, 0, len(g.Counters[name]))
		for c := range g.Counters[name] {
			counters = append(counters, c)
		}
		sort.Strings(counters)
		for _, counter := range counters {
			base := g.Counters[name][counter]
			pct := g.allowancePct(counter)
			limit := base * (1 + pct/100)
			got, found := res.metrics[counter]
			switch {
			case !found:
				lines = append(lines, fmt.Sprintf("FAIL %s %s: counter missing from output", name, counter))
				ok = false
			case got > limit:
				lines = append(lines, fmt.Sprintf("FAIL %s %s: %.0f exceeds baseline %.0f by %+.1f%% (allowed %+.1f%%)",
					name, counter, got, base, 100*(got/base-1), pct))
				ok = false
			default:
				note := ""
				if base > 0 && got < base*(1-pct/100) {
					note = " (improved: consider refreshing the baseline)"
				}
				lines = append(lines, fmt.Sprintf("ok   %s %s: %.0f vs baseline %.0f (%+.1f%%)%s",
					name, counter, got, base, 100*(got/base-1), note))
			}
		}
	}
	return lines, ok
}

func run(baselinePath string, bench io.Reader, out io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var bl baselineFile
	if err := json.Unmarshal(raw, &bl); err != nil {
		return fmt.Errorf("benchgate: parsing %s: %w", baselinePath, err)
	}
	results, err := parseBench(bench)
	if err != nil {
		return err
	}
	lines, ok := check(bl.Gate, results)
	for _, l := range lines {
		fmt.Fprintln(out, l)
	}
	if !ok {
		return fmt.Errorf("benchgate: gated counters regressed beyond their allowances in %s", baselinePath)
	}
	return nil
}

// fmtCounter renders a counter value exactly, without scientific notation
// or rounding: integers print as integers, ratios keep their decimals.
func fmtCounter(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// baselineDoc mirrors BENCH_solver.json's canonical field order, so an
// -update rewrite changes only the gated counter values: the description
// header, command, environment and the whole history-record array pass
// through as raw JSON, byte order intact (MarshalIndent re-indents raw
// content but never reorders its keys). Counter keys within a benchmark
// are written sorted — the one canonicalisation -update applies.
type baselineDoc struct {
	Description json.RawMessage `json:"description,omitempty"`
	Command     json.RawMessage `json:"command,omitempty"`
	CPU         json.RawMessage `json:"cpu,omitempty"`
	Go          json.RawMessage `json:"go,omitempty"`
	Records     json.RawMessage `json:"records,omitempty"`
	Gate        gateDoc         `json:"gate"`
}

// gateDoc is the gate section with its surroundings preserved raw.
type gateDoc struct {
	Comment          json.RawMessage               `json:"comment,omitempty"`
	MaxRegressionPct json.RawMessage               `json:"max_regression_pct,omitempty"`
	Allowances       json.RawMessage               `json:"allowances,omitempty"`
	Counters         map[string]map[string]float64 `json:"counters"`
}

// checkKnownFields refuses to rewrite a baseline containing fields outside
// the baselineDoc/gateDoc schema: the typed round-trip would silently drop
// them. Extending the file format means extending those structs first.
func checkKnownFields(raw []byte) error {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		return err
	}
	known := map[string]bool{"description": true, "command": true, "cpu": true, "go": true, "records": true, "gate": true}
	for k := range top {
		if !known[k] {
			return fmt.Errorf("unknown top-level field %q; -update would drop it — teach cmd/pfsim-benchgate the field first", k)
		}
	}
	var gate map[string]json.RawMessage
	if err := json.Unmarshal(top["gate"], &gate); err != nil {
		return err
	}
	knownGate := map[string]bool{"comment": true, "max_regression_pct": true, "allowances": true, "counters": true}
	for k := range gate {
		if !knownGate[k] {
			return fmt.Errorf("unknown gate field %q; -update would drop it — teach cmd/pfsim-benchgate the field first", k)
		}
	}
	return nil
}

// update rewrites the baseline file's gate counters from the benchmark
// output: every gated (benchmark, counter) pair takes the freshly measured
// value. Which pairs are gated, the allowance, the description and the
// history records survive untouched; a missing measurement or a baseline
// field the schema does not know fails rather than silently dropping
// anything.
func update(baselinePath string, bench io.Reader, out io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var doc baselineDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("benchgate: parsing %s: %w", baselinePath, err)
	}
	if err := checkKnownFields(raw); err != nil {
		return fmt.Errorf("benchgate: %s: %w", baselinePath, err)
	}
	if len(doc.Gate.Counters) == 0 {
		return fmt.Errorf("benchgate: %s gates no counters", baselinePath)
	}
	results, err := parseBench(bench)
	if err != nil {
		return err
	}
	byName := map[string]benchResult{}
	for _, r := range results {
		byName[r.name] = r
	}
	names := make([]string, 0, len(doc.Gate.Counters))
	for name := range doc.Gate.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res, found := byName[name]
		if !found {
			return fmt.Errorf("benchgate: benchmark %s missing from output; refusing a partial baseline update", name)
		}
		cs := doc.Gate.Counters[name]
		cnames := make([]string, 0, len(cs))
		for c := range cs {
			cnames = append(cnames, c)
		}
		sort.Strings(cnames)
		for _, counter := range cnames {
			got, found := res.metrics[counter]
			if !found {
				return fmt.Errorf("benchgate: counter %s %s missing from output; refusing a partial baseline update", name, counter)
			}
			old := cs[counter]
			cs[counter] = got
			fmt.Fprintf(out, "set  %s %s: %s (was %s)\n", name, counter, fmtCounter(got), fmtCounter(old))
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false) // keep '<' and friends readable in prose fields
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return os.WriteFile(baselinePath, buf.Bytes(), 0o644)
}

func main() {
	baseline := flag.String("baseline", "BENCH_solver.json", "baseline JSON with the gate section")
	doUpdate := flag.Bool("update", false, "rewrite the baseline's gated counters from the benchmark output instead of checking")
	flag.Parse()
	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	if *doUpdate {
		if err := update(*baseline, in, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := run(*baseline, in, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
