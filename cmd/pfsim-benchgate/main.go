// pfsim-benchgate gates CI on the solver's machine-independent cost
// counters. It parses `go test -bench` output, looks up each gated
// benchmark's counters in the committed BENCH_solver.json baseline, and
// fails (exit 1) when any counter regressed by more than the baseline's
// allowance. The counters are deterministic simulation counts — link
// visits, flows scanned, heap operations, solves — so a regression is a
// real behaviour change, never timing noise.
//
// Usage:
//
//	go test -bench=BenchmarkSolver -benchtime=1x -run='^$' . | tee bench.out
//	pfsim-benchgate -baseline BENCH_solver.json bench.out
//
// With no positional argument the benchmark output is read from stdin.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineFile is the part of BENCH_solver.json the gate consumes.
type baselineFile struct {
	Gate gate `json:"gate"`
}

// gate names the benchmarks and counters under regression control.
type gate struct {
	MaxRegressionPct float64                       `json:"max_regression_pct"`
	Counters         map[string]map[string]float64 `json:"counters"`
}

// benchResult is one parsed benchmark line: its name (GOMAXPROCS suffix
// stripped) and every reported metric, ns/op included.
type benchResult struct {
	name    string
	metrics map[string]float64
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark result lines from `go test -bench` output.
// A result line is "BenchmarkName[-P] N value unit [value unit]...".
func parseBench(r io.Reader) ([]benchResult, error) {
	var out []benchResult
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		res := benchResult{
			name:    gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
			metrics: map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: %s: bad value %q for %q", res.name, fields[i], fields[i+1])
			}
			res.metrics[fields[i+1]] = v
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// check compares parsed results against the gate. It returns one line per
// gated (benchmark, counter) pair and whether every pair passed. Missing
// benchmarks or counters fail: a gate that silently skips is no gate.
func check(g gate, results []benchResult) (lines []string, ok bool) {
	if len(g.Counters) == 0 {
		return []string{"benchgate: baseline gates no counters"}, false
	}
	byName := map[string]benchResult{}
	for _, r := range results {
		byName[r.name] = r
	}
	ok = true
	names := make([]string, 0, len(g.Counters))
	for name := range g.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res, found := byName[name]
		if !found {
			lines = append(lines, fmt.Sprintf("FAIL %s: benchmark missing from output", name))
			ok = false
			continue
		}
		counters := make([]string, 0, len(g.Counters[name]))
		for c := range g.Counters[name] {
			counters = append(counters, c)
		}
		sort.Strings(counters)
		for _, counter := range counters {
			base := g.Counters[name][counter]
			limit := base * (1 + g.MaxRegressionPct/100)
			got, found := res.metrics[counter]
			switch {
			case !found:
				lines = append(lines, fmt.Sprintf("FAIL %s %s: counter missing from output", name, counter))
				ok = false
			case got > limit:
				lines = append(lines, fmt.Sprintf("FAIL %s %s: %.0f exceeds baseline %.0f by %+.1f%% (allowed %+.1f%%)",
					name, counter, got, base, 100*(got/base-1), g.MaxRegressionPct))
				ok = false
			default:
				note := ""
				if base > 0 && got < base*(1-g.MaxRegressionPct/100) {
					note = " (improved: consider refreshing the baseline)"
				}
				lines = append(lines, fmt.Sprintf("ok   %s %s: %.0f vs baseline %.0f (%+.1f%%)%s",
					name, counter, got, base, 100*(got/base-1), note))
			}
		}
	}
	return lines, ok
}

func run(baselinePath string, bench io.Reader, out io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var bl baselineFile
	if err := json.Unmarshal(raw, &bl); err != nil {
		return fmt.Errorf("benchgate: parsing %s: %w", baselinePath, err)
	}
	results, err := parseBench(bench)
	if err != nil {
		return err
	}
	lines, ok := check(bl.Gate, results)
	for _, l := range lines {
		fmt.Fprintln(out, l)
	}
	if !ok {
		return fmt.Errorf("benchgate: solver cost counters regressed beyond %+.1f%% of %s", bl.Gate.MaxRegressionPct, baselinePath)
	}
	return nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_solver.json", "baseline JSON with the gate section")
	flag.Parse()
	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	if err := run(*baseline, in, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
