package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: pfsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSolver1024Flows/incremental-8         	       1	  42385671 ns/op	    420350 flowsscanned/op	     37999 heapops/op	   3181153 linkvisits/op	      5903 rounds/op	      1268 solves/op
BenchmarkSolver1024Flows/reference             	       1	  75017714 ns/op	    588242 flowsscanned/op	         0 heapops/op	  36238097 linkvisits/op	      7996 rounds/op	      1780 solves/op
PASS
ok  	pfsim	0.121s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	// The GOMAXPROCS suffix is stripped; metrics are keyed by unit.
	if results[0].name != "BenchmarkSolver1024Flows/incremental" {
		t.Errorf("name = %q", results[0].name)
	}
	if got := results[0].metrics["linkvisits/op"]; got != 3181153 {
		t.Errorf("linkvisits = %v", got)
	}
	if got := results[1].metrics["heapops/op"]; got != 0 {
		t.Errorf("reference heapops = %v", got)
	}
}

func TestParseBenchBadValue(t *testing.T) {
	_, err := parseBench(strings.NewReader("BenchmarkX 1 abc ns/op\n"))
	if err == nil {
		t.Fatal("no error for unparseable metric value")
	}
}

func testGate() gate {
	return gate{
		MaxRegressionPct: 10,
		Counters: map[string]map[string]float64{
			"BenchmarkSolver1024Flows/incremental": {
				"linkvisits/op":   3181153,
				"flowsscanned/op": 420350,
			},
		},
	}
}

func TestCheckPasses(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	lines, ok := check(testGate(), results)
	if !ok {
		t.Fatalf("gate failed on matching counters:\n%s", strings.Join(lines, "\n"))
	}
	if len(lines) != 2 {
		t.Errorf("report lines = %d, want 2", len(lines))
	}
}

func TestCheckWithinAllowancePasses(t *testing.T) {
	g := testGate()
	results := []benchResult{{
		name: "BenchmarkSolver1024Flows/incremental",
		metrics: map[string]float64{
			"linkvisits/op":   3181153 * 1.09, // +9% < 10% allowance
			"flowsscanned/op": 420350,
		},
	}}
	if lines, ok := check(g, results); !ok {
		t.Errorf("+9%% should pass:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCheckRegressionFails(t *testing.T) {
	g := testGate()
	results := []benchResult{{
		name: "BenchmarkSolver1024Flows/incremental",
		metrics: map[string]float64{
			"linkvisits/op":   3181153 * 1.11, // +11% > 10% allowance
			"flowsscanned/op": 420350,
		},
	}}
	lines, ok := check(g, results)
	if ok {
		t.Fatal("gate passed an +11% regression")
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "FAIL BenchmarkSolver1024Flows/incremental linkvisits/op") {
		t.Errorf("missing failure line:\n%s", joined)
	}
	if !strings.Contains(joined, "ok   BenchmarkSolver1024Flows/incremental flowsscanned/op") {
		t.Errorf("passing counter not reported:\n%s", joined)
	}
}

// TestCheckAllowanceOverride: a per-counter allowance loosens (or
// tightens) the shared default for that metric only — ns/op-style noisy
// metrics can be gated wide while the deterministic counters stay tight.
func TestCheckAllowanceOverride(t *testing.T) {
	g := testGate()
	g.Allowances = map[string]float64{"ns/op": 100}
	g.Counters["BenchmarkSolver1024Flows/incremental"]["ns/op"] = 1000
	pass := []benchResult{{
		name: "BenchmarkSolver1024Flows/incremental",
		metrics: map[string]float64{
			"ns/op":           1900, // +90% < the 100% ns/op allowance
			"linkvisits/op":   3181153,
			"flowsscanned/op": 420350,
		},
	}}
	if lines, ok := check(g, pass); !ok {
		t.Errorf("+90%% ns/op should pass its 100%% allowance:\n%s", strings.Join(lines, "\n"))
	}
	fail := []benchResult{{
		name: "BenchmarkSolver1024Flows/incremental",
		metrics: map[string]float64{
			"ns/op":           2100, // +110% > the 100% ns/op allowance
			"linkvisits/op":   3181153 * 1.05,
			"flowsscanned/op": 420350,
		},
	}}
	lines, ok := check(g, fail)
	if ok {
		t.Fatal("gate passed a +110% ns/op regression against a 100% allowance")
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "FAIL BenchmarkSolver1024Flows/incremental ns/op") ||
		!strings.Contains(joined, "allowed +100.0%") {
		t.Errorf("ns/op failure should cite its own allowance:\n%s", joined)
	}
	// The default-allowance counters are untouched by the override.
	if !strings.Contains(joined, "ok   BenchmarkSolver1024Flows/incremental linkvisits/op") {
		t.Errorf("+5%% linkvisits should still pass the 10%% default:\n%s", joined)
	}
}

// TestUpdatePreservesAllowances: -update must round-trip the allowances
// section untouched.
func TestUpdatePreservesAllowances(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	orig := `{"gate": {"max_regression_pct": 10, "allowances": {"ns/op": 100}, "counters": {
	  "BenchmarkSolver1024Flows/incremental": {"linkvisits/op": 1}
	}}}`
	if err := os.WriteFile(path, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := update(path, strings.NewReader(sampleOutput), &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"ns/op": 100`) {
		t.Errorf("update dropped the allowances section:\n%s", raw)
	}
}

func TestCheckMissingBenchmarkFails(t *testing.T) {
	if _, ok := check(testGate(), nil); ok {
		t.Fatal("gate passed with no benchmark output")
	}
}

func TestCheckMissingCounterFails(t *testing.T) {
	results := []benchResult{{
		name:    "BenchmarkSolver1024Flows/incremental",
		metrics: map[string]float64{"linkvisits/op": 1},
	}}
	lines, ok := check(testGate(), results)
	if ok {
		t.Fatal("gate passed with a gated counter missing from output")
	}
	if !strings.Contains(strings.Join(lines, "\n"), "counter missing") {
		t.Errorf("missing-counter not reported:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCheckEmptyGateFails(t *testing.T) {
	if _, ok := check(gate{MaxRegressionPct: 10}, nil); ok {
		t.Fatal("empty gate must fail loudly")
	}
}

func TestImprovementNoted(t *testing.T) {
	results := []benchResult{{
		name: "BenchmarkSolver1024Flows/incremental",
		metrics: map[string]float64{
			"linkvisits/op":   3181153 * 0.5,
			"flowsscanned/op": 420350,
		},
	}}
	lines, ok := check(testGate(), results)
	if !ok {
		t.Fatalf("improvement failed the gate:\n%s", strings.Join(lines, "\n"))
	}
	if !strings.Contains(strings.Join(lines, "\n"), "refreshing the baseline") {
		t.Errorf("large improvement not flagged:\n%s", strings.Join(lines, "\n"))
	}
}

// TestRunAgainstCommittedBaseline exercises the full path — baseline JSON
// decode, output parse, comparison — against the repository's committed
// BENCH_solver.json, using that file's own gate values as the measured
// output. This keeps the tool honest about the committed schema.
func TestRunAgainstCommittedBaseline(t *testing.T) {
	baseline := filepath.Join("..", "..", "BENCH_solver.json")
	if _, err := os.Stat(baseline); err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	synthetic := `BenchmarkSolver1024Flows/incremental 1 1 ns/op 3181153 linkvisits/op 420350 flowsscanned/op 22042 heapops/op 1268 solves/op 1267 componentssolved/op 317714 compflowsscanned/op 83688 allocs/op 15281480 B/op
BenchmarkSolver4096Flows/incremental 1 1 ns/op 15619020 linkvisits/op 2240351 flowsscanned/op 94800 heapops/op 5089 solves/op 5088 componentssolved/op 1441101 compflowsscanned/op 315995 allocs/op 64660768 B/op
BenchmarkSolverSharded4096x16/incremental 1 1 ns/op 5296518 linkvisits/op 853482 flowsscanned/op 81316 heapops/op 2908 solves/op 4812 componentssolved/op 597830 compflowsscanned/op 72245 flowssettled/op 124.2 compflowspersolve/op 435453 allocs/op 50778112 B/op
BenchmarkSolverSharded4096x16/incremental-par4 1 1 ns/op 5296518 linkvisits/op 853482 flowsscanned/op 81316 heapops/op 2908 solves/op 4812 componentssolved/op 597830 compflowsscanned/op 72245 flowssettled/op 124.2 compflowspersolve/op 436574 allocs/op 50926456 B/op
BenchmarkEngineFleet/tasks 1 653758233 ns/op 3 peakgoroutines 90810384 B/op 1999835 allocs/op
`
	var report strings.Builder
	if err := run(baseline, strings.NewReader(synthetic), &report); err != nil {
		t.Fatalf("run against committed baseline: %v\n%s", err, report.String())
	}
	if !strings.Contains(report.String(), "ok   BenchmarkSolver4096Flows/incremental linkvisits/op") {
		t.Errorf("4096-flow gate line missing:\n%s", report.String())
	}
}

func TestUpdateRewritesGatedCounters(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	orig := `{
  "description": "keep me",
  "records": [{"pr": 2, "note": "history"}],
  "gate": {
    "max_regression_pct": 10,
    "counters": {
      "BenchmarkSolver1024Flows/incremental": {
        "linkvisits/op": 1,
        "flowsscanned/op": 2
      }
    }
  }
}`
	if err := os.WriteFile(path, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := update(path, strings.NewReader(sampleOutput), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "set  BenchmarkSolver1024Flows/incremental linkvisits/op: 3181153 (was 1)") {
		t.Errorf("update log missing rewrite line:\n%s", out.String())
	}
	// The rewritten file must gate the measured values and keep the rest.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"description": "keep me"`) ||
		!strings.Contains(string(raw), `"note": "history"`) {
		t.Errorf("update dropped unrelated fields:\n%s", raw)
	}
	var check strings.Builder
	if err := run(path, strings.NewReader(sampleOutput), &check); err != nil {
		t.Errorf("freshly updated baseline does not pass its own gate: %v\n%s", err, check.String())
	}
}

func TestUpdateRefusesPartialOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	orig := `{"gate": {"max_regression_pct": 10, "counters": {
	  "BenchmarkSolver1024Flows/incremental": {"linkvisits/op": 1},
	  "BenchmarkMissing": {"linkvisits/op": 1}
	}}}`
	if err := os.WriteFile(path, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := update(path, strings.NewReader(sampleOutput), &out); err == nil ||
		!strings.Contains(err.Error(), "BenchmarkMissing") {
		t.Fatalf("partial update not refused: %v", err)
	}
	// Refusal must leave the baseline untouched.
	raw, _ := os.ReadFile(path)
	if string(raw) != orig {
		t.Error("refused update still modified the baseline")
	}
}

func TestUpdateRefusesUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	orig := `{"notes": "extra", "gate": {"max_regression_pct": 10, "counters": {
	  "BenchmarkSolver1024Flows/incremental": {"linkvisits/op": 1}
	}}}`
	if err := os.WriteFile(path, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := update(path, strings.NewReader(sampleOutput), &out); err == nil ||
		!strings.Contains(err.Error(), `"notes"`) {
		t.Fatalf("unknown top-level field not refused: %v", err)
	}
	orig2 := `{"gate": {"updated_at": "now", "max_regression_pct": 10, "counters": {
	  "BenchmarkSolver1024Flows/incremental": {"linkvisits/op": 1}
	}}}`
	if err := os.WriteFile(path, []byte(orig2), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := update(path, strings.NewReader(sampleOutput), &out); err == nil ||
		!strings.Contains(err.Error(), `"updated_at"`) {
		t.Fatalf("unknown gate field not refused: %v", err)
	}
	// Refusal leaves the file untouched.
	raw, _ := os.ReadFile(path)
	if string(raw) != orig2 {
		t.Error("refused update still modified the baseline")
	}
}

// TestUpdateRoundTrip pins the -update contract the alloc gate leans on:
// history records keep their order and their free-form fields (the
// improvement notes are prose the schema never modelled), gated alloc
// counters take the measured values, and a second update from the same
// output is byte-identical — -update is idempotent, so rerunning it in a
// dirty tree never churns the diff.
func TestUpdateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	orig := `{
  "description": "alloc-aware baseline",
  "records": [
    {"pr": 2, "note": "oldest", "improvement": {"free_form": "kept"}},
    {"pr": 5, "note": "middle"},
    {"pr": 7, "note": "newest", "benchmarks": {"BenchmarkSolver1024Flows": {"allocs_per_op": 1}}}
  ],
  "gate": {
    "max_regression_pct": 10,
    "counters": {
      "BenchmarkSolver1024Flows/incremental": {
        "allocs/op": 1,
        "B/op": 2,
        "linkvisits/op": 3
      }
    }
  }
}`
	if err := os.WriteFile(path, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}
	const bench = "BenchmarkSolver1024Flows/incremental 1 1 ns/op 3181153 linkvisits/op 75433 allocs/op 14347336 B/op\n"
	if err := update(path, strings.NewReader(bench), &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(first)
	for _, want := range []string{
		`"allocs/op": 75433`,
		`"B/op": 14347336`,
		`"linkvisits/op": 3181153`,
		`"free_form": "kept"`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("updated baseline missing %s:\n%s", want, got)
		}
	}
	// Record order: the history array must stay oldest-first.
	if o, m, n := strings.Index(got, `"oldest"`), strings.Index(got, `"middle"`), strings.Index(got, `"newest"`); o < 0 || !(o < m && m < n) {
		t.Errorf("record order not preserved (offsets %d, %d, %d):\n%s", o, m, n, got)
	}
	if err := update(path, strings.NewReader(bench), &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(second) != string(first) {
		t.Errorf("-update is not idempotent:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	var report strings.Builder
	if err := run(path, strings.NewReader(bench), &report); err != nil {
		t.Errorf("round-tripped baseline fails its own gate: %v\n%s", err, report.String())
	}
}
