package main

import (
	"bytes"
	"strings"
	"testing"
)

// goldenRun is the exact output of `run -v` over the pass and fail
// files. The simulation and the report are deterministic, so any drift
// here is a real behaviour change in the scenario runtime or the CLI
// formatting.
const goldenRun = `=== FAIL testdata/fail.yaml (cli-fail)
    jobs 1  makespan 2.9s  total 44.6 MB/s  mean 44.6 MB/s  asserts 1
    job w                              44.6 MB/s  finished 2.9s
    assert failed: assert.total_mbs: total bandwidth = 44.56 below min 1e+12
=== ok   testdata/pass.yaml (cli-pass)
    jobs 2  makespan 3.3s  total 79.3 MB/s  mean 39.6 MB/s  asserts 2
    job w                              39.1 MB/s  finished 3.3s
    job w-job1                         40.2 MB/s  finished 3.2s

1 passed, 1 failed, 2 total
`

func TestRunGolden(t *testing.T) {
	var out, errOut bytes.Buffer
	code := cmdMain([]string{"run", "-v", "testdata/pass.yaml", "testdata/fail.yaml"}, &out, &errOut)
	if code != 1 {
		t.Errorf("exit = %d, want 1 (one file fails)", code)
	}
	if out.String() != goldenRun {
		t.Errorf("run output drifted:\n--- got ---\n%s--- want ---\n%s", out.String(), goldenRun)
	}
	if errOut.Len() != 0 {
		t.Errorf("stderr = %q", errOut.String())
	}
}

// goldenRunDir covers /... directory expansion: the invalid file fails
// at validate time with a positioned error, not a mid-run panic.
const goldenRunDir = `=== FAIL testdata/fail.yaml (cli-fail)
    jobs 1  makespan 2.9s  total 44.6 MB/s  mean 44.6 MB/s  asserts 1
    assert failed: assert.total_mbs: total bandwidth = 44.56 below min 1e+12
=== FAIL testdata/invalid.yaml (cli-invalid)
    testdata/invalid.yaml: timeline[0]: OST 99 out of range [0,8)
=== ok   testdata/pass.yaml (cli-pass)
    jobs 2  makespan 3.3s  total 79.3 MB/s  mean 39.6 MB/s  asserts 2

1 passed, 2 failed, 3 total
`

func TestRunDirGolden(t *testing.T) {
	var out, errOut bytes.Buffer
	code := cmdMain([]string{"run", "testdata/..."}, &out, &errOut)
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if out.String() != goldenRunDir {
		t.Errorf("run output drifted:\n--- got ---\n%s--- want ---\n%s", out.String(), goldenRunDir)
	}
}

const goldenValidate = `valid    testdata/fail.yaml (cli-fail)
invalid  testdata/invalid.yaml
    testdata/invalid.yaml: timeline[0]: OST 99 out of range [0,8)
valid    testdata/pass.yaml (cli-pass)

1 of 3 files invalid
`

func TestValidateGolden(t *testing.T) {
	var out, errOut bytes.Buffer
	code := cmdMain([]string{"validate", "testdata"}, &out, &errOut)
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if out.String() != goldenValidate {
		t.Errorf("validate output drifted:\n--- got ---\n%s--- want ---\n%s", out.String(), goldenValidate)
	}
}

func TestValidateAllValid(t *testing.T) {
	var out, errOut bytes.Buffer
	code := cmdMain([]string{"validate", "testdata/pass.yaml", "testdata/fail.yaml"}, &out, &errOut)
	if code != 0 {
		t.Errorf("exit = %d, want 0 (assertion bounds are not validation errors): %s", code, out.String())
	}
	if !strings.Contains(out.String(), "all 2 files valid") {
		t.Errorf("missing summary: %s", out.String())
	}
}

const goldenList = `testdata/fail.yaml                       cli-fail                 monolithic events 0   asserts 1   impossible bandwidth bound
testdata/invalid.yaml                    cli-invalid              monolithic events 1   asserts 0   OST index out of range
testdata/pass.yaml                       cli-pass                 monolithic events 2   asserts 2   two writers, one OST brownout
`

func TestListGolden(t *testing.T) {
	var out, errOut bytes.Buffer
	code := cmdMain([]string{"list", "testdata"}, &out, &errOut)
	if code != 0 {
		t.Errorf("exit = %d, want 0", code)
	}
	if out.String() != goldenList {
		t.Errorf("list output drifted:\n--- got ---\n%s--- want ---\n%s", out.String(), goldenList)
	}
}

func TestUsageAndErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := cmdMain(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit = %d, want 2", code)
	}
	if code := cmdMain([]string{"bogus"}, &out, &errOut); code != 2 {
		t.Errorf("unknown command: exit = %d, want 2", code)
	}
	if code := cmdMain([]string{"run", "does-not-exist.yaml"}, &out, &errOut); code != 2 {
		t.Errorf("missing path: exit = %d, want 2", code)
	}
	out.Reset()
	if code := cmdMain([]string{"help"}, &out, &errOut); code != 0 || !strings.Contains(out.String(), "usage:") {
		t.Errorf("help: exit = %d, out = %q", code, out.String())
	}
}
