// pfsim-scenario drives declarative scenario files: YAML/JSON documents
// describing a platform, a workload fleet, a timed fault/chaos timeline
// and a self-checking assertion block. It is the CI entry point that
// turns every file under scenarios/ into a regression test.
//
// Usage:
//
//	pfsim-scenario run scenarios/...        # run a corpus, assertions gate
//	pfsim-scenario run -v file.yaml         # one file, per-job detail
//	pfsim-scenario validate scenarios/...   # static + platform checks only
//	pfsim-scenario list scenarios/...       # index the corpus
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pfsim/internal/pool"
	"pfsim/internal/scenariofile"
	"pfsim/internal/workload"
)

func main() {
	os.Exit(cmdMain(os.Args[1:], os.Stdout, os.Stderr))
}

// cmdMain is the testable entry point: argv in, exit code out.
func cmdMain(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "run":
		return cmdRun(rest, stdout, stderr)
	case "validate":
		return cmdValidate(rest, stdout, stderr)
	case "list":
		return cmdList(rest, stdout, stderr)
	case "-h", "--help", "help":
		usage(stdout)
		return 0
	}
	fmt.Fprintf(stderr, "pfsim-scenario: unknown command %q\n", sub)
	usage(stderr)
	return 2
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: pfsim-scenario <command> [flags] <path>...

commands:
  run        execute scenario files; assertion blocks gate the exit code
  validate   parse and validate without simulating
  list       index scenario files (name, shape, assertions)

paths may be files, directories, or dir/... (recursive); directories
collect every .yaml, .yml and .json file beneath them, sorted.

run flags:
  -seed N    override the platform seed
  -par N     solver/baseline parallelism (0 = all cores)
  -v         per-job detail for every file
`)
}

// expandPaths resolves path arguments to a sorted list of scenario
// files. A trailing /... is accepted (and equivalent to naming the
// directory): both walk recursively.
func expandPaths(args []string) ([]string, error) {
	var out []string
	for _, arg := range args {
		arg = strings.TrimSuffix(arg, "/...")
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				return nil
			}
			switch filepath.Ext(p) {
			case ".yaml", ".yml", ".json":
				out = append(out, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scenario files found")
	}
	sort.Strings(out)
	return out, nil
}

// cmdRun executes every file and reports pass/fail per file plus a
// corpus summary. Exit code 1 when any file fails (to load, validate,
// simulate, or assert).
func cmdRun(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("run", flag.ContinueOnError)
	fl.SetOutput(stderr)
	seed := fl.Uint64("seed", 0, "override the platform seed")
	par := fl.Int("par", 0, "solver/baseline parallelism (0 = all cores)")
	verbose := fl.Bool("v", false, "per-job detail")
	if err := fl.Parse(args); err != nil {
		return 2
	}
	paths, err := expandPaths(fl.Args())
	if err != nil {
		fmt.Fprintln(stderr, "pfsim-scenario:", err)
		return 2
	}
	passed, failed := 0, 0
	for _, path := range paths {
		ok := runOne(path, *seed, *par, *verbose, stdout)
		if ok {
			passed++
		} else {
			failed++
		}
	}
	fmt.Fprintf(stdout, "\n%d passed, %d failed, %d total\n", passed, failed, passed+failed)
	if failed > 0 {
		return 1
	}
	return 0
}

// runOne executes one file, printing its verdict; false on any failure.
func runOne(path string, seed uint64, par int, verbose bool, w io.Writer) bool {
	f, err := scenariofile.Load(path)
	if err != nil {
		fmt.Fprintf(w, "=== FAIL %s\n    %v\n", path, err)
		return false
	}
	res, err := scenariofile.Run(f, scenariofile.RunOptions{
		Seed:        seed,
		Parallelism: pool.Workers(par),
	})
	if err != nil {
		fmt.Fprintf(w, "=== FAIL %s (%s)\n    %v\n", path, f.Name, err)
		return false
	}
	verdict := "ok  "
	if !res.Passed() {
		verdict = "FAIL"
	}
	agg := res.Aggregate()
	jobs := 0
	res.EachJob(func(int, *workload.JobResult) { jobs++ })
	fmt.Fprintf(w, "=== %s %s (%s)\n", verdict, path, f.Name)
	fmt.Fprintf(w, "    jobs %d  makespan %.1fs  total %.1f MB/s  mean %.1f MB/s  asserts %d\n",
		jobs, res.Makespan(), agg.TotalMBs, agg.MeanMBs, f.Assert.Count())
	if verbose {
		res.EachJob(func(shard int, jr *workload.JobResult) {
			loc := ""
			if shard >= 0 {
				loc = fmt.Sprintf("fs%d/", shard)
			}
			line := fmt.Sprintf("    job %s%-24s %10.1f MB/s  finished %.1fs", loc, jr.Label, jr.WriteMBs(), jr.FinishedAt)
			if jr.Slowdown > 0 {
				line += fmt.Sprintf("  slowdown %.2f", jr.Slowdown)
			}
			fmt.Fprintln(w, line)
		})
	}
	for _, fail := range res.Failures {
		fmt.Fprintf(w, "    assert failed: %s\n", fail)
	}
	return res.Passed()
}

// cmdValidate checks every file without simulating.
func cmdValidate(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("validate", flag.ContinueOnError)
	fl.SetOutput(stderr)
	if err := fl.Parse(args); err != nil {
		return 2
	}
	paths, err := expandPaths(fl.Args())
	if err != nil {
		fmt.Fprintln(stderr, "pfsim-scenario:", err)
		return 2
	}
	bad := 0
	for _, path := range paths {
		f, err := scenariofile.Load(path)
		if err == nil {
			err = f.Validate()
		}
		if err != nil {
			fmt.Fprintf(stdout, "invalid  %s\n    %v\n", path, err)
			bad++
			continue
		}
		fmt.Fprintf(stdout, "valid    %s (%s)\n", path, f.Name)
	}
	if bad > 0 {
		fmt.Fprintf(stdout, "\n%d of %d files invalid\n", bad, len(paths))
		return 1
	}
	fmt.Fprintf(stdout, "\nall %d files valid\n", len(paths))
	return 0
}

// cmdList indexes the corpus: one line per file with its shape.
func cmdList(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("list", flag.ContinueOnError)
	fl.SetOutput(stderr)
	if err := fl.Parse(args); err != nil {
		return 2
	}
	paths, err := expandPaths(fl.Args())
	if err != nil {
		fmt.Fprintln(stderr, "pfsim-scenario:", err)
		return 2
	}
	for _, path := range paths {
		f, err := scenariofile.Load(path)
		if err != nil {
			fmt.Fprintf(stdout, "%-40s (unreadable: %v)\n", path, err)
			continue
		}
		shape := "monolithic"
		if f.Sharded() {
			shape = fmt.Sprintf("%d shards", f.ShardCount())
		}
		fmt.Fprintf(stdout, "%-40s %-24s %-10s events %-3d asserts %-3d %s\n",
			path, f.Name, shape, len(f.Timeline), f.Assert.Count(), f.Description)
	}
	return 0
}
