// pfsim-metrics prints the paper's analytic contention metrics: the load
// tables (Tables III, IV and VI), predictions for arbitrary file systems,
// and PLFS self-contention estimates (Equations 5-6). It can also report
// the fluid solver's own cost counters for a stress scenario, the
// simulation-side metric the CI bench gate watches.
//
// Usage:
//
//	pfsim-metrics                     # reproduce Tables III, IV and VI
//	pfsim-metrics -dtotal 480 -r 96 -jobs 8
//	pfsim-metrics -plfs-ranks 2048    # PLFS load at a rank count
//	pfsim-metrics -solver-writers 512 # solver work for a 1,024-flow storm
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pfsim"
	"pfsim/internal/flow"
	"pfsim/internal/lustre"
	"pfsim/internal/report"
	"pfsim/internal/workload"
)

func main() {
	dtotal := flag.Int("dtotal", 480, "number of OSTs exposed by the file system")
	r := flag.Int("r", 0, "per-job stripe request; 0 prints the paper's tables")
	jobs := flag.Int("jobs", 10, "maximum number of concurrent jobs")
	plfsRanks := flag.Int("plfs-ranks", 0, "PLFS application rank count (Equations 5-6)")
	maxLoad := flag.Float64("maxload", 0, "recommend the smallest request keeping load <= maxload")
	solverWriters := flag.Int("solver-writers", 0,
		"simulate this many file-per-process writers and print the solver's work counters")
	solverPar := flag.Int("solver-parallelism", 1,
		"solver workers for -solver-writers (results and counters are byte-identical at any setting)")
	flag.Parse()

	switch {
	case *solverWriters > 0:
		if err := printSolverStats(os.Stdout, *solverWriters, *solverPar); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case *plfsRanks > 0:
		printPLFS(*dtotal, *plfsRanks)
	case *r > 0:
		printCustom(*dtotal, *r, *jobs, *maxLoad)
	default:
		printPaperTables()
	}
}

// printSolverStats runs pfsim.SolverStressScenario — the exact workload
// behind BenchmarkSolver*Flows and the BENCH_solver.json gate — once per
// solver mode and prints the Net.Stats counters side by side. The
// counters are deterministic, so the output doubles as a quick local
// check against the committed baselines. par is the incremental run's
// solver worker count; the report echoes the value the net actually
// configured, and the counters must not move with it — parallel solving
// is a pure wall-clock optimisation.
func printSolverStats(w io.Writer, writers, par int) error {
	plat, sc := pfsim.SolverStressScenario(writers)
	var inc, ref flow.Stats
	configuredPar := 1
	for _, reference := range []bool{false, true} {
		res, err := workload.RunScenarioWith(plat, sc,
			workload.RunOptions{Parallelism: par},
			func(sys *lustre.System) {
				sys.Net().UseReferenceSolver(reference)
				if !reference {
					configuredPar = sys.Net().SolveParallelism()
				}
			})
		if err != nil {
			return err
		}
		if reference {
			ref = res.Solver
		} else {
			inc = res.Solver
		}
	}
	t := report.NewTable(
		fmt.Sprintf("Solver work: %d file-per-process writers (%d flows)", writers, 2*writers),
		"Counter", "Incremental", "Reference")
	t.AddRow("solves", inc.Solves, ref.Solves)
	t.AddRow("components solved", inc.ComponentsSolved, ref.ComponentsSolved)
	t.AddRow("component flows scanned", inc.ComponentFlowsScanned, ref.ComponentFlowsScanned)
	t.AddRow("link visits", inc.LinkVisits, ref.LinkVisits)
	t.AddRow("rate-fixing rounds", inc.Rounds, ref.Rounds)
	t.AddRow("flows scanned", inc.FlowsScanned, ref.FlowsScanned)
	t.AddRow("flows settled", inc.FlowsSettled, ref.FlowsSettled)
	t.AddRow("heap ops", inc.HeapOps, ref.HeapOps)
	t.AddRow("coalesced recomputes", inc.Coalesced, ref.Coalesced)
	t.Fprint(w)
	fmt.Fprintf(w, "\nflows scanned per round: %.1f incremental vs %.1f reference (full rescan would pay %d)\n",
		float64(inc.FlowsScanned)/float64(inc.Rounds),
		float64(ref.FlowsScanned)/float64(ref.Rounds), 2*writers)
	fmt.Fprintf(w, "flows per component solve: %.1f incremental vs %.1f reference (the whole population)\n",
		float64(inc.ComponentFlowsScanned)/float64(inc.ComponentsSolved),
		float64(ref.ComponentFlowsScanned)/float64(ref.ComponentsSolved))
	fmt.Fprintf(w, "heap ops per solve: %.1f (the pre-heap completion scan paid %d flow touches per solve)\n",
		float64(inc.HeapOps)/float64(inc.Solves), 2*writers)
	fmt.Fprintf(w, "solve parallelism: %d (counters are byte-identical at any setting; only wall-clock changes)\n",
		configuredPar)
	return nil
}

func printPaperTables() {
	for _, tc := range []struct {
		title string
		fs    pfsim.FileSystem
		r     int
	}{
		{"Table III: lscratchc, R=160", pfsim.Lscratchc(), 160},
		{"Table IV: lscratchc, R=64", pfsim.Lscratchc(), 64},
		{"Table VI: Stampede, R=128", pfsim.StampedeFS(), 128},
	} {
		printLoadTable(tc.title, tc.fs, tc.r, 10)
		fmt.Println()
	}
}

func printLoadTable(title string, fs pfsim.FileSystem, r, jobs int) {
	t := report.NewTable(title, "Jobs", "Dinuse", "Dreq", "Dload")
	for _, row := range pfsim.LoadTable(fs, r, jobs) {
		t.AddRow(row.Jobs, row.Dinuse, row.Dreq, row.Dload)
	}
	t.Fprint(os.Stdout)
}

func printCustom(dtotal, r, jobs int, maxLoad float64) {
	fs := pfsim.FileSystem{Name: "custom", TotalOSTs: dtotal, MaxStripeCount: dtotal}
	if err := fs.Validate(r); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	printLoadTable(fmt.Sprintf("Dtotal=%d, R=%d", dtotal, r), fs, r, jobs)
	q := pfsim.Availability(fs, r, jobs)
	fmt.Printf("\nWith %d jobs: %.1f OSTs free (%.0f%%), collision probability %.2f, expected max sharers %.1f\n",
		jobs, q.FreeOSTs, 100*q.FreeFraction, q.CollisionProb, q.ExpectedMaxSharers)
	if maxLoad > 0 {
		candidates := []int{}
		for c := 8; c <= dtotal; c *= 2 {
			candidates = append(candidates, c)
		}
		if rec := pfsim.RecommendRequest(fs, jobs, maxLoad, candidates); rec > 0 {
			fmt.Printf("Smallest power-of-two request keeping load <= %.2f: %d stripes (load %.2f)\n",
				maxLoad, rec, pfsim.Dload(dtotal, rec, jobs))
		} else {
			fmt.Printf("No request keeps load <= %.2f with %d jobs on %d OSTs\n", maxLoad, jobs, dtotal)
		}
	}
}

func printPLFS(dtotal, ranks int) {
	fmt.Printf("PLFS on %d OSTs with %d ranks (R=2 per rank):\n", dtotal, ranks)
	fmt.Printf("  Dinuse (Eq. 5): %.2f\n", pfsim.PLFSDinuse(dtotal, ranks))
	fmt.Printf("  Dload  (Eq. 6): %.2f\n", pfsim.PLFSLoad(dtotal, ranks))
	be := pfsim.PLFSBreakEvenRanks(dtotal, 3)
	fmt.Printf("  Load exceeds 3 tasks/OST (the paper's \"good\" threshold) beyond %d ranks\n", be)
}
