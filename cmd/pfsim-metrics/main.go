// pfsim-metrics prints the paper's analytic contention metrics: the load
// tables (Tables III, IV and VI), predictions for arbitrary file systems,
// and PLFS self-contention estimates (Equations 5-6).
//
// Usage:
//
//	pfsim-metrics                     # reproduce Tables III, IV and VI
//	pfsim-metrics -dtotal 480 -r 96 -jobs 8
//	pfsim-metrics -plfs-ranks 2048    # PLFS load at a rank count
package main

import (
	"flag"
	"fmt"
	"os"

	"pfsim"
	"pfsim/internal/report"
)

func main() {
	dtotal := flag.Int("dtotal", 480, "number of OSTs exposed by the file system")
	r := flag.Int("r", 0, "per-job stripe request; 0 prints the paper's tables")
	jobs := flag.Int("jobs", 10, "maximum number of concurrent jobs")
	plfsRanks := flag.Int("plfs-ranks", 0, "PLFS application rank count (Equations 5-6)")
	maxLoad := flag.Float64("maxload", 0, "recommend the smallest request keeping load <= maxload")
	flag.Parse()

	switch {
	case *plfsRanks > 0:
		printPLFS(*dtotal, *plfsRanks)
	case *r > 0:
		printCustom(*dtotal, *r, *jobs, *maxLoad)
	default:
		printPaperTables()
	}
}

func printPaperTables() {
	for _, tc := range []struct {
		title string
		fs    pfsim.FileSystem
		r     int
	}{
		{"Table III: lscratchc, R=160", pfsim.Lscratchc(), 160},
		{"Table IV: lscratchc, R=64", pfsim.Lscratchc(), 64},
		{"Table VI: Stampede, R=128", pfsim.StampedeFS(), 128},
	} {
		printLoadTable(tc.title, tc.fs, tc.r, 10)
		fmt.Println()
	}
}

func printLoadTable(title string, fs pfsim.FileSystem, r, jobs int) {
	t := report.NewTable(title, "Jobs", "Dinuse", "Dreq", "Dload")
	for _, row := range pfsim.LoadTable(fs, r, jobs) {
		t.AddRow(row.Jobs, row.Dinuse, row.Dreq, row.Dload)
	}
	t.Fprint(os.Stdout)
}

func printCustom(dtotal, r, jobs int, maxLoad float64) {
	fs := pfsim.FileSystem{Name: "custom", TotalOSTs: dtotal, MaxStripeCount: dtotal}
	if err := fs.Validate(r); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	printLoadTable(fmt.Sprintf("Dtotal=%d, R=%d", dtotal, r), fs, r, jobs)
	q := pfsim.Availability(fs, r, jobs)
	fmt.Printf("\nWith %d jobs: %.1f OSTs free (%.0f%%), collision probability %.2f, expected max sharers %.1f\n",
		jobs, q.FreeOSTs, 100*q.FreeFraction, q.CollisionProb, q.ExpectedMaxSharers)
	if maxLoad > 0 {
		candidates := []int{}
		for c := 8; c <= dtotal; c *= 2 {
			candidates = append(candidates, c)
		}
		if rec := pfsim.RecommendRequest(fs, jobs, maxLoad, candidates); rec > 0 {
			fmt.Printf("Smallest power-of-two request keeping load <= %.2f: %d stripes (load %.2f)\n",
				maxLoad, rec, pfsim.Dload(dtotal, rec, jobs))
		} else {
			fmt.Printf("No request keeps load <= %.2f with %d jobs on %d OSTs\n", maxLoad, jobs, dtotal)
		}
	}
}

func printPLFS(dtotal, ranks int) {
	fmt.Printf("PLFS on %d OSTs with %d ranks (R=2 per rank):\n", dtotal, ranks)
	fmt.Printf("  Dinuse (Eq. 5): %.2f\n", pfsim.PLFSDinuse(dtotal, ranks))
	fmt.Printf("  Dload  (Eq. 6): %.2f\n", pfsim.PLFSLoad(dtotal, ranks))
	be := pfsim.PLFSBreakEvenRanks(dtotal, 3)
	fmt.Printf("  Load exceeds 3 tasks/OST (the paper's \"good\" threshold) beyond %d ranks\n", be)
}
