package main

import (
	"strings"
	"testing"
)

// golden64 is the exact -solver-writers 64 output. The simulation and its
// counters are deterministic, so any drift here is a real solver
// behaviour change — the same property the CI bench gate relies on.
const golden64 = `Solver work: 64 file-per-process writers (128 flows)
  Counter               Incremental  Reference
  --------------------  -----------  ---------
  solves                148          212
  link visits           92833        2513264
  rate-fixing rounds    437          609
  flows scanned         14469        38997
  heap ops              3326         0
  coalesced recomputes  64           0

flows scanned per round: 33.1 incremental vs 64.0 reference (full rescan would pay 128)
heap ops per solve: 22.5 (the pre-heap completion scan paid 128 flow touches per solve)
`

func TestSolverStatsGolden(t *testing.T) {
	var b strings.Builder
	if err := printSolverStats(&b, 64); err != nil {
		t.Fatal(err)
	}
	if b.String() != golden64 {
		t.Errorf("solver stats output drifted.\n--- got ---\n%s--- want ---\n%s", b.String(), golden64)
	}
}
