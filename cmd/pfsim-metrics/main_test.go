package main

import (
	"strings"
	"testing"
)

// golden64 is the exact -solver-writers 64 output. The simulation and its
// counters are deterministic, so any drift here is a real solver
// behaviour change — the same property the CI bench gate relies on.
const golden64 = `Solver work: 64 file-per-process writers (128 flows)
  Counter                  Incremental  Reference
  -----------------------  -----------  ---------
  solves                   148          212
  components solved        147          212
  component flows scanned  9148         13046
  link visits              92833        2513264
  rate-fixing rounds       437          609
  flows scanned            14469        38997
  flows settled            2095         2095
  heap ops                 2485         0
  coalesced recomputes     108          0

flows scanned per round: 33.1 incremental vs 64.0 reference (full rescan would pay 128)
flows per component solve: 62.2 incremental vs 61.5 reference (the whole population)
heap ops per solve: 16.8 (the pre-heap completion scan paid 128 flow touches per solve)
solve parallelism: 1 (counters are byte-identical at any setting; only wall-clock changes)
`

func TestSolverStatsGolden(t *testing.T) {
	var b strings.Builder
	if err := printSolverStats(&b, 64, 1); err != nil {
		t.Fatal(err)
	}
	if b.String() != golden64 {
		t.Errorf("solver stats output drifted.\n--- got ---\n%s--- want ---\n%s", b.String(), golden64)
	}
}

// TestSolverStatsParallelismOnlyChangesReportedWidth: running the same
// stress with 4 solver workers must reproduce the golden output except
// for the reported parallelism line. This covers the flag plumbing and
// the reporting contract; it does not exercise concurrent solves — the
// monolithic stress is a single component, which the solver always
// solves serially. Bit-exactness of the concurrent path itself is
// property-tested in internal/flow and internal/workload on
// multi-component schedules.
func TestSolverStatsParallelismOnlyChangesReportedWidth(t *testing.T) {
	var b strings.Builder
	if err := printSolverStats(&b, 64, 4); err != nil {
		t.Fatal(err)
	}
	want := strings.Replace(golden64,
		"solve parallelism: 1 (", "solve parallelism: 4 (", 1)
	if b.String() != want {
		t.Errorf("parallel solver stats drifted beyond the parallelism line.\n--- got ---\n%s--- want ---\n%s",
			b.String(), want)
	}
}
