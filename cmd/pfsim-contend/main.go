// pfsim-contend reproduces the Section V contention experiments:
//
//	pfsim-contend -experiment figure2   # single-OST contention curve
//	pfsim-contend -experiment figure3   # 4 tuned jobs × 5 repetitions
//	pfsim-contend -experiment table5    # stripe-request trade-off
//	pfsim-contend -jobs 6 -r 96         # custom contended run
package main

import (
	"flag"
	"fmt"
	"os"

	"pfsim/internal/cluster"
	"pfsim/internal/core"
	"pfsim/internal/experiments"
	"pfsim/internal/ior"
)

func main() {
	exp := flag.String("experiment", "", "figure2 | figure3 | table5 (paper artefacts)")
	jobs := flag.Int("jobs", 4, "simultaneous jobs for a custom run")
	r := flag.Int("r", 160, "stripes per job for a custom run")
	sizeMB := flag.Float64("stripesize", 128, "stripe size (MB) for a custom run")
	tasks := flag.Int("tasks", 1024, "tasks per job")
	reps := flag.Int("reps", 5, "repetitions per job")
	quick := flag.Bool("quick", false, "fewer repetitions / volume for paper artefacts")
	flag.Parse()

	if *exp != "" {
		run, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "pfsim-contend: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		out, err := run(experiments.Options{Quick: *quick})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfsim-contend:", err)
			os.Exit(1)
		}
		for _, t := range out.Tables {
			t.Fprint(os.Stdout)
			fmt.Println()
		}
		out.ComparisonTable().Fprint(os.Stdout)
		for _, n := range out.Notes {
			fmt.Println("note:", n)
		}
		return
	}

	plat := cluster.Cab()
	base := ior.PaperConfig(*tasks)
	base.Label = "contend"
	base.Reps = *reps
	base.Hints.StripingFactor = *r
	base.Hints.StripingUnitMB = *sizeMB
	results, err := ior.RunContended(plat, base, *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfsim-contend:", err)
		os.Exit(1)
	}
	total := 0.0
	for j, res := range results {
		lo, hi := res.Write.CI95()
		fmt.Printf("job %d: %.0f MB/s  95%% CI (%.0f, %.0f)\n", j, res.Write.Mean(), lo, hi)
		total += res.Write.Mean()
	}
	fmt.Printf("total: %.0f MB/s\n\n", total)
	fmt.Printf("predicted Dinuse %.2f, Dload %.2f (Equations 2-4)\n",
		core.Dinuse(plat.OSTs, *r, *jobs), core.Dload(plat.OSTs, *r, *jobs))
	q := core.Availability(core.FileSystem{Name: plat.Name, TotalOSTs: plat.OSTs, MaxStripeCount: plat.MaxStripeCount}, *r, *jobs)
	fmt.Printf("availability: %.0f OSTs free (%.0f%%), collision probability %.2f\n",
		q.FreeOSTs, 100*q.FreeFraction, q.CollisionProb)
}
