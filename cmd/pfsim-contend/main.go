// pfsim-contend reproduces the Section V contention experiments and runs
// custom contention scenarios on the Scenario/Runner API:
//
//	pfsim-contend -experiment figure2      # single-OST contention curve
//	pfsim-contend -experiment figure3      # 4 tuned jobs × 5 repetitions
//	pfsim-contend -experiment table5       # stripe-request trade-off
//	pfsim-contend -jobs 6 -r 96            # custom contended run
//	pfsim-contend -jobs 2 -plfs 1024       # striped jobs + a PLFS logger
package main

import (
	"flag"
	"fmt"
	"os"

	"pfsim"
	"pfsim/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "", "figure2 | figure3 | table5 (paper artefacts)")
	jobs := flag.Int("jobs", 4, "simultaneous striped jobs for a custom run")
	r := flag.Int("r", 160, "stripes per job for a custom run")
	sizeMB := flag.Float64("stripesize", 128, "stripe size (MB) for a custom run")
	tasks := flag.Int("tasks", 1024, "tasks per job")
	reps := flag.Int("reps", 5, "repetitions per job")
	plfsRanks := flag.Int("plfs", 0, "add an n-rank PLFS logger to the scenario (heterogeneous mix)")
	quick := flag.Bool("quick", false, "fewer repetitions / volume for paper artefacts")
	parallel := flag.Int("parallel", 0, "worker pool width (0 = all cores)")
	flag.Parse()

	if *exp != "" {
		run, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "pfsim-contend: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		out, err := run(experiments.Options{Quick: *quick, Parallelism: *parallel})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfsim-contend:", err)
			os.Exit(1)
		}
		for _, t := range out.Tables {
			t.Fprint(os.Stdout)
			fmt.Println()
		}
		out.ComparisonTable().Fprint(os.Stdout)
		for _, n := range out.Notes {
			fmt.Println("note:", n)
		}
		return
	}

	plat := pfsim.Cab()
	base := pfsim.PaperIOR(*tasks)
	base.Label = "contend"
	base.Reps = *reps
	base.Hints.StripingFactor = *r
	base.Hints.StripingUnitMB = *sizeMB

	sc := pfsim.UniformScenario("contend", pfsim.IORWorkload(base), *jobs)
	if *plfsRanks > 0 {
		sc = sc.Add(pfsim.ScenarioJob{Workload: pfsim.PLFSWorkload(*plfsRanks, 0)})
	}
	runner := pfsim.NewRunner(pfsim.WithParallelism(*parallel))
	res, err := runner.RunScenario(plat, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfsim-contend:", err)
		os.Exit(1)
	}
	for j := range res.Jobs {
		jr := &res.Jobs[j]
		lo, hi := jr.IOR.Write.CI95()
		fmt.Printf("%-14s %.0f MB/s  95%% CI (%.0f, %.0f)  slowdown %.2fx vs solo\n",
			jr.Label+":", jr.WriteMBs(), lo, hi, jr.Slowdown)
	}
	agg := res.Aggregate()
	fmt.Printf("total: %.0f MB/s, makespan %.0f s\n\n", agg.TotalMBs, res.Makespan)

	fmt.Printf("predicted Dinuse %.2f, Dload %.2f (Equations 2-4)\n",
		pfsim.Dinuse(plat.OSTs, *r, *jobs), pfsim.Dload(plat.OSTs, *r, *jobs))
	q := pfsim.Availability(pfsim.FileSystem{
		Name: plat.Name, TotalOSTs: plat.OSTs, MaxStripeCount: plat.MaxStripeCount,
	}, *r, *jobs)
	fmt.Printf("availability: %.0f OSTs free (%.0f%%), collision probability %.2f\n",
		q.FreeOSTs, 100*q.FreeFraction, q.CollisionProb)
	if *plfsRanks > 0 {
		fmt.Printf("PLFS logger load (Equation 6): %.2f across all OSTs\n",
			pfsim.PLFSLoad(plat.OSTs, *plfsRanks))
	}
}
