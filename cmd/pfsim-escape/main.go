// Command pfsim-escape cross-checks the //pfsim:hotpath allocation
// discipline against the compiler's own escape analysis. The hotalloc
// analyzer works on the AST, which is heuristic in both directions: a
// flagged composite literal may in fact stay on the stack, and a
// clean-looking expression may still be decided heap by the compiler.
// This tool parses `go build -a -gcflags=-m` diagnostics ("escapes to
// heap", "moved to heap") and fails when one lands inside the hot
// call-graph closure — the same closure hotalloc computes: functions
// whose doc comment carries //pfsim:hotpath, everything they reach
// (interface dispatch and method sets included), minus functions pruned
// by a doc-level //pfsim:allocok. Line-level //pfsim:allocok directives
// suppress individual diagnostics exactly as they do for hotalloc, so
// one annotation satisfies both layers.
//
// Usage:
//
//	pfsim-escape [-dir d] [-diag file] [packages]
//
// Packages default to ./... resolved from -dir (default "."). -diag
// reads canned compiler diagnostics from a file instead of invoking the
// go command (the unit tests' hook; it also lets CI split the slow
// forced rebuild from the matching). The forced rebuild (-a) is what
// makes the run deterministic: a warm build cache suppresses -m output
// entirely, which would pass vacuously. Exit status is 0 when every
// hot-region escape is annotated, 1 when any is not, and 2 on a usage
// or load error.
package main

import (
	"flag"
	"fmt"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"pfsim/internal/analysis/framework"
)

func main() {
	dir := flag.String("dir", ".", "directory to resolve package patterns from")
	diag := flag.String("diag", "", "read compiler diagnostics from this file instead of running go build -a -gcflags=-m")
	flag.Parse()

	findings, err := run(os.Stdout, *dir, *diag, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfsim-escape:", err)
		os.Exit(2)
	}
	if findings > 0 {
		os.Exit(1)
	}
}

// region is one hot function's line span in a file.
type region struct {
	start, end int
	fn, root   string
}

// run loads the packages, computes the hot regions, and matches the
// compiler's escape diagnostics against them; it returns the number of
// unannotated hot escapes. Split from main for the tests.
func run(w io.Writer, dir, diagFile string, patterns []string) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return 0, err
	}
	pkgs, err := framework.Load(absDir, patterns)
	if err != nil {
		return 0, err
	}

	regions := map[string][]region{}              // absolute filename -> hot spans
	dirsFor := map[string]*framework.Directives{} // absolute filename -> its package's directives
	hotPkgs := 0
	for _, pkg := range pkgs {
		cg := framework.NewCallGraph(pkg.Files, pkg.Types, pkg.Info)
		dirs := framework.NewDirectives(pkg.Fset, pkg.Files)
		hot := hotRegions(pkg, cg)
		if len(hot) > 0 {
			hotPkgs++
		}
		for file, rs := range hot {
			regions[file] = append(regions[file], rs...)
			dirsFor[file] = dirs
		}
	}
	if hotPkgs == 0 {
		// No annotated roots in the loaded set is a usage error: the
		// cross-check would pass vacuously, exactly the failure mode the
		// forced rebuild exists to prevent.
		return 0, fmt.Errorf("no //pfsim:hotpath roots found in %s", strings.Join(patterns, " "))
	}

	lines, err := diagnostics(absDir, diagFile, patterns)
	if err != nil {
		return 0, err
	}

	type finding struct {
		file      string
		line, col int
		msg       string
		r         region
	}
	var findings []finding
	for _, dl := range lines {
		m := diagRE.FindStringSubmatch(dl)
		if m == nil {
			continue
		}
		file := filepath.FromSlash(strings.TrimPrefix(m[1], "./"))
		if !filepath.IsAbs(file) {
			file = filepath.Join(absDir, file)
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		r, ok := enclosing(regions[file], line)
		if !ok {
			continue
		}
		if d := dirsFor[file]; d != nil && d.HasAt(file, line, "allocok") {
			continue
		}
		findings = append(findings, finding{file, line, col, m[4], r})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.col < b.col
	})
	for _, f := range findings {
		name := f.file
		if rel, err := filepath.Rel(absDir, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
		fmt.Fprintf(w, "%s:%d:%d: %s inside //pfsim:hotpath region %s (reached from %s); annotate //pfsim:allocok <why> or move the allocation off the hot path\n",
			name, f.line, f.col, f.msg, f.r.fn, f.r.root)
	}
	return len(findings), nil
}

// diagRE matches the compiler escape diagnostics worth cross-checking.
// "escapes to heap" marks an allocation the compiler decided heap;
// "moved to heap" marks a local variable forced off the stack. Inline
// reports, leak annotations and package headers don't match.
var diagRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// hotRegions computes one package's hot-closure line spans per file.
func hotRegions(pkg *framework.Package, cg *framework.CallGraph) map[string][]region {
	var roots []*types.Func
	for _, fn := range cg.Funcs() {
		if len(framework.DocDirectives(cg.DeclOf(fn).Doc, "hotpath")) > 0 {
			roots = append(roots, fn)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	prune := func(fn *types.Func) bool {
		d := cg.DeclOf(fn)
		return d != nil && len(framework.DocDirectives(d.Doc, "allocok")) > 0
	}
	reached := cg.Reachable(roots, prune)
	out := map[string][]region{}
	for _, fn := range cg.Funcs() {
		root, ok := reached[fn]
		if !ok {
			continue
		}
		decl := cg.DeclOf(fn)
		start := pkg.Fset.Position(decl.Pos())
		end := pkg.Fset.Position(decl.End())
		out[start.Filename] = append(out[start.Filename], region{
			start: start.Line,
			end:   end.Line,
			fn:    framework.FuncName(fn),
			root:  framework.FuncName(root),
		})
	}
	return out
}

// enclosing finds the hot region covering a diagnostic line.
func enclosing(rs []region, line int) (region, bool) {
	for _, r := range rs {
		if r.start <= line && line <= r.end {
			return r, true
		}
	}
	return region{}, false
}

// diagnostics returns the compiler diagnostic lines: canned from a file
// when diagFile is set, otherwise from a forced rebuild of the patterns
// with -gcflags=-m.
func diagnostics(absDir, diagFile string, patterns []string) ([]string, error) {
	if diagFile != "" {
		b, err := os.ReadFile(diagFile)
		if err != nil {
			return nil, err
		}
		return strings.Split(string(b), "\n"), nil
	}
	args := append([]string{"build", "-a", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = absDir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out)
	}
	return strings.Split(string(out), "\n"), nil
}
