// Package hot carries one unannotated heap escape inside a hot region,
// one annotated escape, and one cold escape, so the canned-diagnostic
// tests pin pfsim-escape's matching and suppression.
package hot

// Records is the fixture's reused pool.
var Records []*Record

// Record is the pooled record type.
type Record struct{ N int }

// Grow is the fixture's hot entry point.
//
//pfsim:hotpath
func Grow(n int) *Record {
	r := &Record{N: n}
	ok := &Record{N: n + 1} //pfsim:allocok audited pool fill
	Records = append(Records, ok)
	fill(r)
	return r
}

// fill is reached from Grow: its escapes are hot too.
func fill(r *Record) {
	r.N++
}

// Cold allocates off the hot path: never flagged.
func Cold(n int) *Record { return &Record{N: n} }
