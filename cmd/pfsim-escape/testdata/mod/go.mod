module escfixture

go 1.24
