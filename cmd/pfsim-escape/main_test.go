package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEscapeCanned: the canned diagnostics carry three escapes — one in
// the hot region (line 16, unannotated: reported), one suppressed by a
// line //pfsim:allocok (line 17), one in a cold function (line 29) —
// plus inline and leak chatter the matcher must ignore.
func TestEscapeCanned(t *testing.T) {
	var b strings.Builder
	findings, err := run(&b, "testdata/mod", "testdata/diag.txt", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if findings != 1 {
		t.Errorf("findings = %d, want 1:\n%s", findings, b.String())
	}
	const want = "hot/hot.go:16:7: &Record{...} escapes to heap inside //pfsim:hotpath region Grow (reached from Grow); annotate //pfsim:allocok <why> or move the allocation off the hot path\n"
	if b.String() != want {
		t.Errorf("output drifted.\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestEscapeHotCallee: a diagnostic inside a function reached from a
// root (not itself annotated) still lands in a hot region, attributed
// to the root it was reached from.
func TestEscapeHotCallee(t *testing.T) {
	var b strings.Builder
	findings, err := run(&b, "testdata/mod",
		writeDiag(t, "hot/hot.go:25:2: new(int) escapes to heap\n"), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if findings != 1 || !strings.Contains(b.String(), "region fill (reached from Grow)") {
		t.Errorf("findings = %d, output:\n%s", findings, b.String())
	}
}

// TestEscapeNoRoots: a package set without //pfsim:hotpath roots must
// error (exit 2 in main) instead of passing vacuously.
func TestEscapeNoRoots(t *testing.T) {
	_, err := run(&strings.Builder{}, "../pfsim-lint/testdata/mod", "testdata/diag.txt", []string{"./clean"})
	if err == nil || !strings.Contains(err.Error(), "no //pfsim:hotpath roots") {
		t.Errorf("want no-roots error, got %v", err)
	}
}

// writeDiag stores canned diagnostics in a temp file.
func writeDiag(t *testing.T, content string) string {
	t.Helper()
	f := filepath.Join(t.TempDir(), "diag.txt")
	if err := os.WriteFile(f, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}
