// pfsim-sweep reproduces the Section IV parameter search (Figure 1): an
// exhaustive sweep of stripe count × stripe size for an IOR workload on
// the simulated platform, fanned across a worker pool, optionally
// followed by the genetic autotuner.
//
// Usage:
//
//	pfsim-sweep                 # full Figure 1 grid, 1,024 tasks, all cores
//	pfsim-sweep -tasks 256 -reps 3 -parallel 1
//	pfsim-sweep -ga             # add the Behzad-style GA comparison
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pfsim"
	"pfsim/internal/report"
	"pfsim/internal/sweep"
)

func main() {
	tasks := flag.Int("tasks", 1024, "IOR task count")
	reps := flag.Int("reps", 2, "repetitions per configuration")
	countsArg := flag.String("counts", "", "comma-separated stripe counts (default: Figure 1 axis)")
	sizesArg := flag.String("sizes", "1,32,64,128,256", "comma-separated stripe sizes in MB")
	ga := flag.Bool("ga", false, "also run the genetic autotuner")
	csv := flag.Bool("csv", false, "emit the grid as CSV")
	parallel := flag.Int("parallel", 0, "worker pool width (0 = all cores, 1 = serial)")
	progress := flag.Bool("progress", false, "report sweep progress on stderr")
	flag.Parse()

	plat := pfsim.Cab()
	counts := pfsim.SweepCounts(plat)
	if *countsArg != "" {
		counts = parseInts(*countsArg)
	}
	sizes := parseFloats(*sizesArg)

	opts := []pfsim.RunnerOption{pfsim.WithParallelism(*parallel)}
	if *progress {
		opts = append(opts, pfsim.WithProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d points", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	}
	runner := pfsim.NewRunner(opts...)
	grid, err := runner.Sweep(plat, counts, sizes, pfsim.SweepOptions{Tasks: *tasks, Reps: *reps})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfsim-sweep:", err)
		os.Exit(1)
	}
	headers := []string{"OSTs"}
	for _, s := range sizes {
		headers = append(headers, fmt.Sprintf("%gM", s))
	}
	t := report.NewTable(fmt.Sprintf("Write bandwidth (MB/s), %d tasks", *tasks), headers...)
	for i, c := range grid.Counts {
		row := []any{c}
		for j := range sizes {
			row = append(row, grid.MBs[i][j])
		}
		t.AddRow(row...)
	}
	if *csv {
		t.CSV(os.Stdout)
	} else {
		t.Fprint(os.Stdout)
	}
	best := grid.Best()
	fmt.Printf("\noptimum: %d stripes × %g MB = %.0f MB/s\n",
		best.StripeCount, best.StripeSizeMB, best.MBs)

	if *ga {
		res, err := sweep.Genetic(plat, sweep.GAOptions{
			Options: sweep.Options{Tasks: *tasks, Reps: *reps, Parallelism: *parallel},
			Seed:    plat.Seed,
			Counts:  counts,
			SizesMB: sizes,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfsim-sweep:", err)
			os.Exit(1)
		}
		fmt.Printf("genetic:  %d stripes × %g MB = %.0f MB/s after %d evaluations (grid: %d)\n",
			res.Best.StripeCount, res.Best.StripeSizeMB, res.Best.MBs,
			res.Evaluations, len(counts)*len(sizes))
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfsim-sweep: bad count %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfsim-sweep: bad size %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
