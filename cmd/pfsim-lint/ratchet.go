package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"pfsim/internal/analysis/framework"
)

// A baseline is the committed ratchet state: analyzer name → package
// import path → allowed finding count. The mechanism is generic — any
// analyzer named in the file is compared — but only the analyzers in
// ratchetedDefault are recorded by -ratchet-update, because a ratchet
// is for findings that are *inventory* (existing debt being paid down)
// rather than regressions: procshim findings enumerate the remaining
// Proc shim callers ROADMAP item 2 still has to convert, and the
// baseline is the audit trail of that deferral.
type baseline map[string]map[string]int

// ratchetedDefault lists the analyzers -ratchet-update records.
var ratchetedDefault = []string{"procshim"}

// ratchetAuto is the -ratchet default: use <dir>/ratchet.json when it
// exists, otherwise run unratcheted (so trees without a baseline — the
// golden-test fixture module — report ratcheted analyzers' findings
// directly).
const ratchetAuto = "auto"

// resolveRatchet maps the -ratchet flag value to a concrete path and
// loads the baseline. A relative path resolves against -dir, like the
// package patterns. An explicitly named file must exist unless
// -ratchet-update is about to create it; the auto default tolerates
// absence. Empty path disables the ratchet entirely.
func resolveRatchet(absDir, path string, update bool) (string, baseline, error) {
	if path == "" {
		return "", nil, nil
	}
	auto := path == ratchetAuto
	p := path
	if auto {
		p = "ratchet.json"
	}
	if !filepath.IsAbs(p) {
		p = filepath.Join(absDir, p)
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		if auto || update {
			return p, nil, nil
		}
		return "", nil, fmt.Errorf("ratchet baseline %s does not exist (run -ratchet-update to create it)", path)
	}
	if err != nil {
		return "", nil, fmt.Errorf("ratchet baseline: %w", err)
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return "", nil, fmt.Errorf("ratchet baseline %s: %w", path, err)
	}
	return p, b, nil
}

// formatBaseline renders a baseline byte-deterministically: JSON object
// keys are marshaled in sorted order, two-space indent, trailing
// newline — so -ratchet-update on an unchanged tree is byte-idempotent
// and the committed file diffs minimally.
func formatBaseline(b baseline) []byte {
	if len(b) == 0 {
		return []byte("{}\n")
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		panic(err) // map[string]map[string]int cannot fail to marshal
	}
	return append(data, '\n')
}

// compareRatchet diffs current counts for one analyzer against the
// baseline, printing growth as violations (with the offending findings)
// and shrinkage as a note inviting a baseline update. It returns the
// number of violations charged to the exit status.
func compareRatchet(w io.Writer, name string, base map[string]int, counts map[string]int,
	byPkg map[string][]framework.Finding, print func(framework.Finding)) int {
	pkgs := map[string]bool{}
	for pkg := range base {
		pkgs[pkg] = true
	}
	for pkg := range counts {
		pkgs[pkg] = true
	}
	var order []string
	for pkg := range pkgs {
		order = append(order, pkg)
	}
	sort.Strings(order)
	violations := 0
	for _, pkg := range order {
		cur, allowed := counts[pkg], base[pkg]
		switch {
		case cur > allowed:
			fmt.Fprintf(w, "ratchet: %s: %s grew %d -> %d; the budget only shrinks — convert the new callers, or audit and run -ratchet-update\n",
				name, pkg, allowed, cur)
			for _, f := range byPkg[pkg] {
				print(f)
				violations++
			}
		case cur < allowed:
			fmt.Fprintf(w, "ratchet: %s: %s shrank %d -> %d; run -ratchet-update to lock in the smaller budget\n",
				name, pkg, allowed, cur)
		}
	}
	return violations
}
