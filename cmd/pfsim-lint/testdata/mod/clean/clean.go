// Package clean is violation-free; it keeps the golden run proving
// that silence is the default.
package clean

func Sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
