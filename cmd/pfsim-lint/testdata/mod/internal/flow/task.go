package flow

import "lintfixture/internal/sim"

// WaitDone parks a continuation that illegally blocks on a real
// channel — the seeded taskctx violation for the golden test.
func WaitDone(s *sim.Signal, t *sim.Task, ch chan int) {
	s.Await(t, func() {
		<-ch
	})
}
