// Package flow carries one deliberate violation per clock/map rule so
// the golden test pins pfsim-lint's output format and ordering.
package flow

import "time"

// Stats is a counter set whose merge forgets a field.
type Stats struct {
	Solves  int64
	Rounds  int64
	HeapOps int64
}

// merge drops HeapOps.
func (s *Stats) merge(o *Stats) {
	s.Solves += o.Solves
	s.Rounds += o.Rounds
}

func slowest(loads map[string]float64) string {
	worst, at := 0.0, ""
	for name, v := range loads {
		if v > worst {
			worst, at = v, name
		}
	}
	_ = time.Now()
	return at
}

// solveRound is the fixture's hot entry point; the make below is the
// deliberate hotalloc violation.
//
//pfsim:hotpath
func solveRound(rates []float64) []float64 {
	out := make([]float64, len(rates))
	copy(out, rates)
	return out
}
