// Package workload carries the goroutine and aggregate violations for
// the golden test.
package workload

// Agg summarises a run.
type Agg struct {
	MeanMBs float64
	MaxMBs  float64
}

// Result is one run's outcome.
type Result struct{ mbs []float64 }

// Aggregate drops MaxMBs.
func (r *Result) Aggregate() Agg {
	var a Agg
	for _, v := range r.mbs {
		a.MeanMBs += v
	}
	return a
}

func launch(jobs []func()) {
	for _, j := range jobs {
		go j()
	}
}
