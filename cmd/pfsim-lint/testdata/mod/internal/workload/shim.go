package workload

import "lintfixture/internal/sim"

// LegacySpawn still drives the goroutine-backed shim — the seeded
// procshim violations for the golden test (spawn call, Proc type
// reference, Proc method call).
func LegacySpawn(e *sim.Engine, s *sim.Signal) {
	e.Spawn("w", func(p *sim.Proc) {
		p.Wait(s)
	})
}
