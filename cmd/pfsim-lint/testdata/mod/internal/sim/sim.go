// Package sim is a miniature engine surface for the lint fixtures: an
// annotated CPS primitive for the taskctx violation and the shim Proc
// API for the procshim violation. As the shim's home package it must
// itself be finding-free.
package sim

type Engine struct{ procs int }

type Task struct{ eng *Engine }

type Proc struct{ eng *Engine }

type Signal struct{ fired bool }

// Await runs k once the signal fires; k is a task continuation.
//
//pfsim:taskctx
func (s *Signal) Await(t *Task, k func()) {
	if s.fired {
		k()
	}
}

// Spawn starts a goroutine-backed shim process.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	e.procs++
	return &Proc{eng: e}
}

// Wait blocks the shim process until the signal fires.
func (p *Proc) Wait(s *Signal) {}
