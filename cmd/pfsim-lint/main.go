// Command pfsim-lint runs the determinism lint suite: the custom
// analyzers under internal/analysis that enforce the simulator's
// byte-identical reproducibility invariants at the source level
// (see the README's "Determinism rules" section).
//
// Usage:
//
//	pfsim-lint [-dir d] [-run names] [-list] [packages]
//
// Packages default to ./... resolved from -dir (default "."). The exit
// status is 0 when the tree is clean, 1 when any analyzer reported a
// finding, and 2 on a usage or load error — so CI can distinguish
// "violations" from "broken build".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pfsim/internal/analysis/barego"
	"pfsim/internal/analysis/framework"
	"pfsim/internal/analysis/hotalloc"
	"pfsim/internal/analysis/maporder"
	"pfsim/internal/analysis/statsmerge"
	"pfsim/internal/analysis/wallclock"
)

// suite is the full lint suite (determinism plus allocation
// discipline), sorted by name; -run selects a subset.
var suite = []*framework.Analyzer{
	barego.Analyzer,
	hotalloc.Analyzer,
	maporder.Analyzer,
	statsmerge.Analyzer,
	wallclock.Analyzer,
}

func main() {
	dir := flag.String("dir", ".", "directory to resolve package patterns from")
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the suite's analyzers and exit")
	flag.Parse()

	findings, err := run(os.Stdout, *dir, *runList, *list, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfsim-lint:", err)
		os.Exit(2)
	}
	if findings > 0 {
		os.Exit(1)
	}
}

// run executes the selected analyzers over the patterns and prints one
// line per finding; it returns the finding count. Split from main for
// the golden tests.
func run(w io.Writer, dir, runList string, list bool, patterns []string) (int, error) {
	analyzers, err := selectAnalyzers(runList)
	if err != nil {
		return 0, err
	}
	if list {
		for _, a := range analyzers {
			fmt.Fprintf(w, "%-10s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0, nil
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return 0, err
	}
	pkgs, err := framework.Load(absDir, patterns)
	if err != nil {
		return 0, err
	}
	findings, err := framework.Run(analyzers, pkgs)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		name := f.Position.Filename
		if rel, err := filepath.Rel(absDir, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
		fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n",
			name, f.Position.Line, f.Position.Column, f.Message, f.Analyzer.Name)
	}
	return len(findings), nil
}

// selectAnalyzers resolves the -run list against the suite (empty
// selects everything), preserving the suite's name order.
func selectAnalyzers(runList string) ([]*framework.Analyzer, error) {
	if runList == "" {
		return suite, nil
	}
	wanted := map[string]bool{}
	for _, name := range strings.Split(runList, ",") {
		if name = strings.TrimSpace(name); name != "" {
			wanted[name] = true
		}
	}
	var out []*framework.Analyzer
	for _, a := range suite {
		if wanted[a.Name] {
			out = append(out, a)
			delete(wanted, a.Name)
		}
	}
	if len(wanted) > 0 {
		// A typo in a CI config must fail loudly (exit 2) and name the
		// valid choices, never silently run a reduced suite.
		var unknown, valid []string
		for name := range wanted {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		for _, a := range suite {
			valid = append(valid, a.Name)
		}
		return nil, fmt.Errorf("unknown analyzer(s): %s; valid analyzers: %s",
			strings.Join(unknown, ", "), strings.Join(valid, ", "))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers (use -list)")
	}
	return out, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
