// Command pfsim-lint runs the determinism and concurrency-discipline
// lint suite: the custom analyzers under internal/analysis that enforce
// the simulator's byte-identical reproducibility invariants and the
// task-context discipline at the source level (see the README's
// "Determinism rules" and "Concurrency discipline" sections).
//
// Usage:
//
//	pfsim-lint [-dir d] [-run names] [-list] [-ratchet file] [-ratchet-update] [packages]
//
// Packages default to ./... resolved from -dir (default "."). The exit
// status is 0 when the tree is clean, 1 when any analyzer reported a
// finding, and 2 on a usage or load error — so CI can distinguish
// "violations" from "broken build".
//
// Ratcheted analyzers (procshim) inventory existing debt rather than
// regressions: their findings are compared per package against the
// committed baseline named by -ratchet (default: <dir>/ratchet.json
// when present) and only *growth* fails the run. -ratchet-update
// rewrites the baseline from the current tree, byte-idempotently.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pfsim/internal/analysis/barego"
	"pfsim/internal/analysis/framework"
	"pfsim/internal/analysis/hotalloc"
	"pfsim/internal/analysis/maporder"
	"pfsim/internal/analysis/procshim"
	"pfsim/internal/analysis/statsmerge"
	"pfsim/internal/analysis/taskctx"
	"pfsim/internal/analysis/wallclock"
)

// suite is the full lint suite (determinism, allocation discipline,
// concurrency discipline), sorted by name; -run selects a subset.
var suite = []*framework.Analyzer{
	barego.Analyzer,
	hotalloc.Analyzer,
	maporder.Analyzer,
	procshim.Analyzer,
	statsmerge.Analyzer,
	taskctx.Analyzer,
	wallclock.Analyzer,
}

func main() {
	dir := flag.String("dir", ".", "directory to resolve package patterns from")
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the suite's analyzers and exit")
	ratchet := flag.String("ratchet", ratchetAuto,
		"ratchet baseline file (relative to -dir); \"auto\" uses <dir>/ratchet.json when present, \"\" disables")
	ratchetUpdate := flag.Bool("ratchet-update", false,
		"rewrite the ratchet baseline from the current tree instead of comparing")
	flag.Parse()

	findings, err := run(os.Stdout, *dir, *runList, *list, *ratchet, *ratchetUpdate, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfsim-lint:", err)
		os.Exit(2)
	}
	if findings > 0 {
		os.Exit(1)
	}
}

// run executes the selected analyzers over the patterns and prints one
// line per finding; it returns the violation count charged to the exit
// status. Ratcheted analyzers' findings are absorbed into the baseline
// comparison instead of printing directly (unless no baseline is in
// play). Split from main for the golden tests.
func run(w io.Writer, dir, runList string, list bool, ratchet string, ratchetUpdate bool, patterns []string) (int, error) {
	analyzers, err := selectAnalyzers(runList)
	if err != nil {
		return 0, err
	}
	if list {
		for _, a := range analyzers {
			fmt.Fprintf(w, "%-10s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0, nil
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return 0, err
	}
	ratchetPath, base, err := resolveRatchet(absDir, ratchet, ratchetUpdate)
	if err != nil {
		return 0, err
	}
	pkgs, err := framework.Load(absDir, patterns)
	if err != nil {
		return 0, err
	}
	findings, err := framework.Run(analyzers, pkgs)
	if err != nil {
		return 0, err
	}
	print := func(f framework.Finding) {
		name := f.Position.Filename
		if rel, err := filepath.Rel(absDir, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
		fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n",
			name, f.Position.Line, f.Position.Column, f.Message, f.Analyzer.Name)
	}

	// Which analyzers are under the ratchet for this run: the recorded
	// set when updating, the baseline's keys when comparing, none when
	// no baseline is in play (their findings then print directly).
	ratcheted := map[string]bool{}
	switch {
	case ratchetUpdate && ratchetPath != "":
		for _, name := range ratchetedDefault {
			ratcheted[name] = true
		}
	case base != nil:
		for name := range base {
			ratcheted[name] = true
		}
	}

	counts := map[string]map[string]int{}
	grouped := map[string]map[string][]framework.Finding{}
	violations := 0
	for _, f := range findings {
		name := f.Analyzer.Name
		if !ratcheted[name] {
			print(f)
			violations++
			continue
		}
		if counts[name] == nil {
			counts[name] = map[string]int{}
			grouped[name] = map[string][]framework.Finding{}
		}
		counts[name][f.Package.ImportPath]++
		grouped[name][f.Package.ImportPath] = append(grouped[name][f.Package.ImportPath], f)
	}

	if ratchetUpdate && ratchetPath != "" {
		b := baseline{}
		for _, a := range analyzers {
			if ratcheted[a.Name] && len(counts[a.Name]) > 0 {
				b[a.Name] = counts[a.Name]
			}
		}
		if err := os.WriteFile(ratchetPath, formatBaseline(b), 0o644); err != nil {
			return 0, fmt.Errorf("ratchet baseline: %w", err)
		}
		return violations, nil
	}
	if base != nil {
		var names []string
		for name := range base {
			names = append(names, name)
		}
		sort.Strings(names)
		selected := map[string]bool{}
		for _, a := range analyzers {
			selected[a.Name] = true
		}
		for _, name := range names {
			if !selected[name] {
				continue // not run: nothing to compare
			}
			violations += compareRatchet(w, name, base[name], counts[name], grouped[name], print)
		}
	}
	return violations, nil
}

// selectAnalyzers resolves the -run list against the suite (empty
// selects everything), preserving the suite's name order.
func selectAnalyzers(runList string) ([]*framework.Analyzer, error) {
	if runList == "" {
		return suite, nil
	}
	wanted := map[string]bool{}
	for _, name := range strings.Split(runList, ",") {
		if name = strings.TrimSpace(name); name != "" {
			wanted[name] = true
		}
	}
	var out []*framework.Analyzer
	for _, a := range suite {
		if wanted[a.Name] {
			out = append(out, a)
			delete(wanted, a.Name)
		}
	}
	if len(wanted) > 0 {
		// A typo in a CI config must fail loudly (exit 2) and name the
		// valid choices, never silently run a reduced suite.
		var unknown, valid []string
		for name := range wanted {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		for _, a := range suite {
			valid = append(valid, a.Name)
		}
		return nil, fmt.Errorf("unknown analyzer(s): %s; valid analyzers: %s",
			strings.Join(unknown, ", "), strings.Join(valid, ", "))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers (use -list)")
	}
	return out, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
