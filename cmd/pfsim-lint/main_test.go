package main

import (
	"strings"
	"testing"
)

// goldenAll is the exact full-suite output over the fixture module: one
// deliberate violation per analyzer plus a clean package, sorted by
// file, line, column. Any drift is a real change in the suite's
// findings, positions or message wording.
const goldenAll = `internal/flow/flow.go:15:17: merge method "merge" does not touch field(s) HeapOps of flow.Stats; a field missing from the fold is silently dropped at parallelism > 1 or in shard aggregation — merge it, or annotate the field //pfsim:nomerge (statsmerge)
internal/flow/flow.go:22:2: range over map loads iterates in nondeterministic order inside a sim-critical package; iterate sorted keys, or audit the loop as order-insensitive and annotate //pfsim:orderok (maporder)
internal/flow/flow.go:27:6: time.Now reads or waits on the wall clock; simulated time must come from the engine's virtual clock in a sim-critical package; annotate //pfsim:wallclockok only for audited non-semantic uses (wallclock)
internal/flow/flow.go:36:9: make allocates on the hot path (reached from //pfsim:hotpath solveRound); preallocate or reuse scratch, or annotate //pfsim:allocok <why> (hotalloc)
internal/workload/w.go:15:18: aggregate function "Aggregate" does not touch field(s) MaxMBs of workload.Agg; a field missing from the fold is silently dropped at parallelism > 1 or in shard aggregation — merge it, or annotate the field //pfsim:nomerge (statsmerge)
internal/workload/w.go:25:3: bare go statement outside internal/pool and internal/sim escapes Engine.Drain and pool ownership; use pool.Fan, or audit the spawn and annotate //pfsim:goroutineok (barego)
`

func TestLintGolden(t *testing.T) {
	var b strings.Builder
	findings, err := run(&b, "testdata/mod", "", false, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if findings != 6 {
		t.Errorf("findings = %d, want 6 (one per analyzer plus both statsmerge shapes)", findings)
	}
	if b.String() != goldenAll {
		t.Errorf("lint output drifted.\n--- got ---\n%s--- want ---\n%s", b.String(), goldenAll)
	}
}

// TestLintRunSelection: -run restricts the suite; only the selected
// analyzer's findings survive, format unchanged.
func TestLintRunSelection(t *testing.T) {
	var b strings.Builder
	findings, err := run(&b, "testdata/mod", "maporder", false, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if findings != 1 {
		t.Errorf("findings = %d, want 1", findings)
	}
	for _, want := range []string{"internal/flow/flow.go:22:2:", "(maporder)"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("selected output missing %q:\n%s", want, b.String())
		}
	}
}

// TestLintCleanPackage: a violation-free package yields no findings and
// no output — the exit-0 contract CI relies on.
func TestLintCleanPackage(t *testing.T) {
	var b strings.Builder
	findings, err := run(&b, "testdata/mod", "", false, []string{"./clean"})
	if err != nil {
		t.Fatal(err)
	}
	if findings != 0 || b.String() != "" {
		t.Errorf("clean package produced findings=%d output=%q", findings, b.String())
	}
}

// TestLintUnknownAnalyzer: a typo in -run must error (main exits 2)
// with the exact valid-name list, never silently run a reduced suite —
// the message is golden so CI configs get a copy-pasteable fix.
func TestLintUnknownAnalyzer(t *testing.T) {
	_, err := run(&strings.Builder{}, "testdata/mod", "maporder,nosuch", false, []string{"./..."})
	const want = "unknown analyzer(s): nosuch; valid analyzers: barego, hotalloc, maporder, statsmerge, wallclock"
	if err == nil || err.Error() != want {
		t.Errorf("unknown-analyzer error = %v, want %q", err, want)
	}
}

// TestLintEmptyRunList: -run with only separators selects nothing and
// must error rather than lint zero analyzers and exit 0.
func TestLintEmptyRunList(t *testing.T) {
	_, err := run(&strings.Builder{}, "testdata/mod", " , ", false, []string{"./..."})
	if err == nil || !strings.Contains(err.Error(), "selected no analyzers") {
		t.Errorf("want no-analyzers error, got %v", err)
	}
}

func TestLintList(t *testing.T) {
	var b strings.Builder
	if _, err := run(&b, ".", "", true, nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("-list printed %d lines, want 5:\n%s", len(lines), b.String())
	}
	for i, name := range []string{"barego", "hotalloc", "maporder", "statsmerge", "wallclock"} {
		if !strings.HasPrefix(lines[i], name) {
			t.Errorf("-list line %d = %q, want prefix %q", i, lines[i], name)
		}
	}
}
