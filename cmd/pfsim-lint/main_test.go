package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// suiteNames is the expected -list order; goldens below depend on it.
var suiteNames = []string{"barego", "hotalloc", "maporder", "procshim", "statsmerge", "taskctx", "wallclock"}

// goldenAll is the exact full-suite output over the fixture module: one
// deliberate violation per analyzer plus a clean package, sorted by
// file, line, column. Any drift is a real change in the suite's
// findings, positions or message wording. No ratchet baseline exists in
// the fixture module, so the seeded procshim violations print (and
// exit 1) directly — the "Proc caller count increase fails" contract.
const goldenAll = `internal/flow/flow.go:15:17: merge method "merge" does not touch field(s) HeapOps of flow.Stats; a field missing from the fold is silently dropped at parallelism > 1 or in shard aggregation — merge it, or annotate the field //pfsim:nomerge (statsmerge)
internal/flow/flow.go:22:2: range over map loads iterates in nondeterministic order inside a sim-critical package; iterate sorted keys, or audit the loop as order-insensitive and annotate //pfsim:orderok (maporder)
internal/flow/flow.go:27:6: time.Now reads or waits on the wall clock; simulated time must come from the engine's virtual clock in a sim-critical package; annotate //pfsim:wallclockok only for audited non-semantic uses (wallclock)
internal/flow/flow.go:36:9: make allocates on the hot path (reached from //pfsim:hotpath solveRound); preallocate or reuse scratch, or annotate //pfsim:allocok <why> (hotalloc)
internal/flow/task.go:9:3: channel receive in task context (reachable from Signal.Await continuation at task.go:8); the event loop must not block — restructure in continuation-passing style or annotate //pfsim:taskctxok with an audit note (taskctx)
internal/workload/shim.go:9:2: shim Proc API call sim.Engine.Spawn outside internal/sim; new code must use the inline task forms (budgeted by the procshim ratchet) (procshim)
internal/workload/shim.go:9:27: shim type sim.Proc referenced outside internal/sim; new code must use the inline task forms (budgeted by the procshim ratchet) (procshim)
internal/workload/shim.go:10:3: shim Proc API call sim.Proc.Wait outside internal/sim; new code must use the inline task forms (budgeted by the procshim ratchet) (procshim)
internal/workload/w.go:15:18: aggregate function "Aggregate" does not touch field(s) MaxMBs of workload.Agg; a field missing from the fold is silently dropped at parallelism > 1 or in shard aggregation — merge it, or annotate the field //pfsim:nomerge (statsmerge)
internal/workload/w.go:25:3: bare go statement outside internal/pool and internal/sim escapes Engine.Drain and pool ownership; use pool.Fan, or audit the spawn and annotate //pfsim:goroutineok (barego)
`

func TestLintGolden(t *testing.T) {
	var b strings.Builder
	findings, err := run(&b, "testdata/mod", "", false, ratchetAuto, false, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if findings != 10 {
		t.Errorf("findings = %d, want 10 (at least one per analyzer plus the multi-finding shapes)", findings)
	}
	if b.String() != goldenAll {
		t.Errorf("lint output drifted.\n--- got ---\n%s--- want ---\n%s", b.String(), goldenAll)
	}
}

// TestLintRunSelection: -run restricts the suite; only the selected
// analyzer's findings survive, format unchanged.
func TestLintRunSelection(t *testing.T) {
	var b strings.Builder
	findings, err := run(&b, "testdata/mod", "maporder", false, ratchetAuto, false, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if findings != 1 {
		t.Errorf("findings = %d, want 1", findings)
	}
	for _, want := range []string{"internal/flow/flow.go:22:2:", "(maporder)"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("selected output missing %q:\n%s", want, b.String())
		}
	}
}

// TestLintCleanPackage: a violation-free package yields no findings and
// no output — the exit-0 contract CI relies on.
func TestLintCleanPackage(t *testing.T) {
	var b strings.Builder
	findings, err := run(&b, "testdata/mod", "", false, ratchetAuto, false, []string{"./clean"})
	if err != nil {
		t.Fatal(err)
	}
	if findings != 0 || b.String() != "" {
		t.Errorf("clean package produced findings=%d output=%q", findings, b.String())
	}
}

// TestLintUnknownAnalyzer: unknown -run names must error (main exits 2)
// with every unknown name and the exact valid-name list in one message
// — a typo'd CI config never silently runs a reduced suite, and a mix
// of known and unknown names reports all unknowns at once.
func TestLintUnknownAnalyzer(t *testing.T) {
	const valid = "valid analyzers: barego, hotalloc, maporder, procshim, statsmerge, taskctx, wallclock"
	for _, tc := range []struct{ runList, want string }{
		{"maporder,nosuch", "unknown analyzer(s): nosuch; " + valid},
		{"zzz,maporder,nosuch,taskctx", "unknown analyzer(s): nosuch, zzz; " + valid},
	} {
		_, err := run(&strings.Builder{}, "testdata/mod", tc.runList, false, ratchetAuto, false, []string{"./..."})
		if err == nil || err.Error() != tc.want {
			t.Errorf("-run %q error = %v, want %q", tc.runList, err, tc.want)
		}
	}
}

// TestLintEmptyRunList: -run with only separators selects nothing and
// must error rather than lint zero analyzers and exit 0.
func TestLintEmptyRunList(t *testing.T) {
	_, err := run(&strings.Builder{}, "testdata/mod", " , ", false, ratchetAuto, false, []string{"./..."})
	if err == nil || !strings.Contains(err.Error(), "selected no analyzers") {
		t.Errorf("want no-analyzers error, got %v", err)
	}
}

func TestLintList(t *testing.T) {
	var b strings.Builder
	if _, err := run(&b, ".", "", true, ratchetAuto, false, nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != len(suiteNames) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(suiteNames), b.String())
	}
	for i, name := range suiteNames {
		if !strings.HasPrefix(lines[i], name) {
			t.Errorf("-list line %d = %q, want prefix %q", i, lines[i], name)
		}
	}
}

// TestLintRatchetRoundTrip drives the full ratchet lifecycle against
// the fixture module's seeded procshim violations: -ratchet-update
// creates the baseline (absorbing the findings), a second update is
// byte-idempotent, comparing against it is clean, a doctored smaller
// budget makes the same tree fail as growth, and a doctored larger
// budget passes with a shrink note.
func TestLintRatchetRoundTrip(t *testing.T) {
	rp := filepath.Join(t.TempDir(), "ratchet.json")

	var b strings.Builder
	findings, err := run(&b, "testdata/mod", "procshim", false, rp, true, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if findings != 0 || b.String() != "" {
		t.Fatalf("update run: findings=%d output=%q, want silent success", findings, b.String())
	}
	first, err := os.ReadFile(rp)
	if err != nil {
		t.Fatal(err)
	}
	var base map[string]map[string]int
	if err := json.Unmarshal(first, &base); err != nil {
		t.Fatal(err)
	}
	if got := base["procshim"]["lintfixture/internal/workload"]; got != 3 {
		t.Errorf("baseline count for internal/workload = %d, want 3\n%s", got, first)
	}

	if _, err := run(&strings.Builder{}, "testdata/mod", "procshim", false, rp, true, []string{"./..."}); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(rp)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("-ratchet-update is not byte-idempotent:\n--- first ---\n%s--- second ---\n%s", first, second)
	}

	b.Reset()
	findings, err = run(&b, "testdata/mod", "procshim", false, rp, false, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if findings != 0 || b.String() != "" {
		t.Errorf("within-budget run: findings=%d output=%q, want silent success", findings, b.String())
	}

	// Growth: shrink the committed budget below the tree's count — the
	// same tree must now fail, printing the header and the findings.
	base["procshim"]["lintfixture/internal/workload"] = 2
	writeBaseline(t, rp, base)
	b.Reset()
	findings, err = run(&b, "testdata/mod", "procshim", false, rp, false, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if findings != 3 {
		t.Errorf("growth run: findings = %d, want 3 (the package's findings are charged)", findings)
	}
	for _, want := range []string{"ratchet: procshim: lintfixture/internal/workload grew 2 -> 3", "internal/workload/shim.go:9:2:"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("growth output missing %q:\n%s", want, b.String())
		}
	}

	// Shrink: a larger budget passes with a note inviting an update.
	base["procshim"]["lintfixture/internal/workload"] = 5
	writeBaseline(t, rp, base)
	b.Reset()
	findings, err = run(&b, "testdata/mod", "procshim", false, rp, false, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if findings != 0 {
		t.Errorf("shrink run: findings = %d, want 0", findings)
	}
	if !strings.Contains(b.String(), "shrank 5 -> 3") {
		t.Errorf("shrink output missing note:\n%s", b.String())
	}
}

// TestLintRatchetMissingExplicit: an explicitly named baseline that
// does not exist is a usage error (exit 2), not a silent unratcheted
// run.
func TestLintRatchetMissingExplicit(t *testing.T) {
	_, err := run(&strings.Builder{}, "testdata/mod", "procshim", false,
		filepath.Join(t.TempDir(), "nope.json"), false, []string{"./..."})
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("want missing-baseline error, got %v", err)
	}
}

func writeBaseline(t *testing.T, path string, b map[string]map[string]int) {
	t.Helper()
	if err := os.WriteFile(path, formatBaseline(b), 0o644); err != nil {
		t.Fatal(err)
	}
}
