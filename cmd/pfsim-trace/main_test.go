package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenSmall is the exact output of a small two-job contended trace
// (-np 8 -s 2 -stripes 4 -stripesize 1 -jobs 2 -slowest 3). The
// simulation, the recorder and the table renderer are deterministic, so
// any drift here is a real behaviour change in the traced physics or the
// report formatting.
const goldenSmall = `trace (ad_lustre, 8 tasks): 42 MB/s, finished at 1.54 s
trace-job1 (ad_lustre, 8 tasks): 39 MB/s, finished at 1.63 s

transfers: 8 (peak concurrency 8), 128 MB moved
makespan:  1.63 s (0.00 .. 1.63)

3 slowest transfers
  Name                        Start  End   MB  MB/s
  --------------------------  -----  ----  --  ----
  cw:trace-job1.rep0:a0:o219  0.00   1.63  16  9.83
  cw:trace-job1.rep0:a0:o246  0.00   1.63  16  9.83
  cw:trace-job1.rep0:a0:o358  0.00   1.63  16  9.83

aggregate throughput timeline (MB/s)
  t00  ######################################## 80.21
  t01  ######################################## 80.97
  t02  ######################################## 80.97
  t03  ######################################## 80.97
  t04  ######################################## 80.97
  t05  ######################################## 80.97
  t06  ######################################## 80.97
  t07  ######################################## 80.97
  t08  ######################################## 80.97
  t09  ######################################## 80.97
  t10  ######################################## 80.97
  t11  ######################################## 80.97
  t12  ######################################## 80.97
  t13  ######################################## 80.97
  t14  ######################################## 80.97
  t15  ######################################## 80.97
  t16  ######################################## 80.97
  t17  ######################################## 80.97
  t18  ###################################### 76.41
  t19  ################### 39.33
  t20   0.25
`

func smallOpts() options {
	return options{
		np:           8,
		api:          "lustre",
		stripes:      4,
		stripeSizeMB: 1,
		segments:     2,
		jobs:         2,
		slowest:      3,
	}
}

func TestTraceGolden(t *testing.T) {
	var b strings.Builder
	if err := run(&b, smallOpts()); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenSmall {
		t.Errorf("trace output drifted.\n--- got ---\n%s--- want ---\n%s", b.String(), goldenSmall)
	}
}

func TestTraceCSVExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	o := smallOpts()
	o.csvPath = path
	var b strings.Builder
	if err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if lines[0] != "name,start_s,end_s,size_mb,mean_mbs" {
		t.Errorf("csv header = %q", lines[0])
	}
	// 2 jobs x 8 tasks collective -> 8 aggregated stripe transfers.
	if len(lines) != 9 {
		t.Errorf("csv has %d records, want 8", len(lines)-1)
	}
	if !strings.Contains(b.String(), "trace written to") {
		t.Error("csv path not reported")
	}
}

func TestTraceBadAPI(t *testing.T) {
	o := smallOpts()
	o.api = "gpfs"
	var b strings.Builder
	if err := run(&b, o); err == nil {
		t.Fatal("unknown api accepted")
	}
}
