// pfsim-trace runs a simulated contention scenario with the I/O tracer
// attached and reports what happened inside: per-transfer records, the
// slowest streams (the stragglers that set each job's bandwidth), and an
// aggregate throughput timeline. Use -csv to dump the raw trace.
//
// Usage:
//
//	pfsim-trace -np 1024 -stripes 160 -stripesize 128
//	pfsim-trace -np 512 -api plfs -csv trace.csv
//	pfsim-trace -np 1024 -jobs 4              # trace Section V contention
//	pfsim-trace -np 1024 -plfs 1024           # trace a heterogeneous mix
package main

import (
	"flag"
	"fmt"
	"os"

	"pfsim/internal/cluster"
	"pfsim/internal/ior"
	"pfsim/internal/lustre"
	"pfsim/internal/mpiio"
	"pfsim/internal/report"
	"pfsim/internal/trace"
	"pfsim/internal/workload"
)

func main() {
	np := flag.Int("np", 1024, "number of MPI tasks")
	api := flag.String("api", "lustre", "driver: ufs | lustre | plfs")
	stripes := flag.Int("stripes", 160, "striping_factor hint")
	stripeSize := flag.Float64("stripesize", 128, "striping_unit hint (MB)")
	segments := flag.Int("s", 100, "segment count")
	jobs := flag.Int("jobs", 1, "simultaneous copies of the job (contended scenario)")
	plfsRanks := flag.Int("plfs", 0, "add an n-rank PLFS logger to the scenario")
	csvPath := flag.String("csv", "", "write the raw transfer trace to this file")
	slowest := flag.Int("slowest", 5, "how many straggler transfers to list")
	flag.Parse()

	plat := cluster.Cab()
	cfg := ior.PaperConfig(*np)
	cfg.Label = "trace"
	cfg.Reps = 1
	cfg.SegmentCount = *segments
	cfg.Hints.StripingFactor = *stripes
	cfg.Hints.StripingUnitMB = *stripeSize
	switch *api {
	case "ufs":
		cfg.API = mpiio.DriverUFS
	case "lustre":
		cfg.API = mpiio.DriverLustre
	case "plfs":
		cfg.API = mpiio.DriverPLFS
	default:
		fmt.Fprintf(os.Stderr, "pfsim-trace: unknown api %q\n", *api)
		os.Exit(2)
	}

	sc := workload.UniformScenario("trace", workload.IORJob{Cfg: cfg}, *jobs)
	if *plfsRanks > 0 {
		sc = sc.Add(workload.Job{Workload: workload.PLFSLogger{Ranks: *plfsRanks}})
	}

	rec := &trace.Recorder{}
	res, err := workload.RunScenario(plat, sc, 0, func(sys *lustre.System) {
		rec.Attach(sys.Net())
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfsim-trace:", err)
		os.Exit(1)
	}

	for i := range res.Jobs {
		jr := &res.Jobs[i]
		fmt.Printf("%s (%s, %d tasks): %.0f MB/s, finished at %.2f s\n",
			jr.Label, jr.Config.API, jr.Config.NumTasks, jr.WriteMBs(), jr.FinishedAt)
	}
	fmt.Printf("\ntransfers: %d (peak concurrency %d), %.0f MB moved\n",
		rec.Len(), rec.MaxConcurrent(), rec.TotalMB())
	start, end := rec.Makespan()
	fmt.Printf("makespan:  %.2f s (%.2f .. %.2f)\n\n", end-start, start, end)

	t := report.NewTable(fmt.Sprintf("%d slowest transfers", *slowest),
		"Name", "Start", "End", "MB", "MB/s")
	for _, r := range rec.Slowest(*slowest) {
		t.AddRow(r.Name, r.Start, r.End, r.SizeMB, r.MeanMBs)
	}
	t.Fprint(os.Stdout)

	tl := rec.Timeline((end - start) / 20)
	labels := make([]string, len(tl))
	for i := range tl {
		labels[i] = fmt.Sprintf("t%02d", i)
	}
	fmt.Println()
	report.Bars(os.Stdout, "aggregate throughput timeline (MB/s)", labels, tl, 40)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfsim-trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "pfsim-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace written to %s\n", *csvPath)
	}
}
