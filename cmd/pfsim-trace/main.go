// pfsim-trace runs one simulated IOR execution with the I/O tracer
// attached and reports what happened inside: per-transfer records, the
// slowest streams (the stragglers that set the job's bandwidth), and an
// aggregate throughput timeline. Use -csv to dump the raw trace.
//
// Usage:
//
//	pfsim-trace -np 1024 -stripes 160 -stripesize 128
//	pfsim-trace -np 512 -api plfs -csv trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"pfsim/internal/cluster"
	"pfsim/internal/ior"
	"pfsim/internal/lustre"
	"pfsim/internal/mpiio"
	"pfsim/internal/report"
	"pfsim/internal/sim"
	"pfsim/internal/stats"
	"pfsim/internal/trace"
)

func main() {
	np := flag.Int("np", 1024, "number of MPI tasks")
	api := flag.String("api", "lustre", "driver: ufs | lustre | plfs")
	stripes := flag.Int("stripes", 160, "striping_factor hint")
	stripeSize := flag.Float64("stripesize", 128, "striping_unit hint (MB)")
	segments := flag.Int("s", 100, "segment count")
	csvPath := flag.String("csv", "", "write the raw transfer trace to this file")
	slowest := flag.Int("slowest", 5, "how many straggler transfers to list")
	flag.Parse()

	plat := cluster.Cab()
	cfg := ior.PaperConfig(*np)
	cfg.Label = "trace"
	cfg.Reps = 1
	cfg.SegmentCount = *segments
	cfg.Hints.StripingFactor = *stripes
	cfg.Hints.StripingUnitMB = *stripeSize
	switch *api {
	case "ufs":
		cfg.API = mpiio.DriverUFS
	case "lustre":
		cfg.API = mpiio.DriverLustre
	case "plfs":
		cfg.API = mpiio.DriverPLFS
	default:
		fmt.Fprintf(os.Stderr, "pfsim-trace: unknown api %q\n", *api)
		os.Exit(2)
	}

	eng := sim.NewEngine()
	sys, err := lustre.NewSystem(eng, plat, stats.NewRNG(plat.Seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfsim-trace:", err)
		os.Exit(1)
	}
	rec := &trace.Recorder{}
	rec.Attach(sys.Net())
	job, err := ior.StartJob(sys, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfsim-trace:", err)
		os.Exit(1)
	}
	if err := eng.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "pfsim-trace:", err)
		os.Exit(1)
	}
	if job.Err() != nil {
		fmt.Fprintln(os.Stderr, "pfsim-trace:", job.Err())
		os.Exit(1)
	}

	fmt.Printf("%s, %d tasks: %.0f MB/s\n\n", cfg.API, *np, job.Result.Write.Mean())
	fmt.Printf("transfers: %d (peak concurrency %d), %.0f MB moved\n",
		rec.Len(), rec.MaxConcurrent(), rec.TotalMB())
	start, end := rec.Makespan()
	fmt.Printf("makespan:  %.2f s (%.2f .. %.2f)\n\n", end-start, start, end)

	t := report.NewTable(fmt.Sprintf("%d slowest transfers", *slowest),
		"Name", "Start", "End", "MB", "MB/s")
	for _, r := range rec.Slowest(*slowest) {
		t.AddRow(r.Name, r.Start, r.End, r.SizeMB, r.MeanMBs)
	}
	t.Fprint(os.Stdout)

	tl := rec.Timeline((end - start) / 20)
	labels := make([]string, len(tl))
	for i := range tl {
		labels[i] = fmt.Sprintf("t%02d", i)
	}
	fmt.Println()
	report.Bars(os.Stdout, "aggregate throughput timeline (MB/s)", labels, tl, 40)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfsim-trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "pfsim-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace written to %s\n", *csvPath)
	}
}
