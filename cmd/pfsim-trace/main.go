// pfsim-trace runs a simulated contention scenario with the I/O tracer
// attached and reports what happened inside: per-transfer records, the
// slowest streams (the stragglers that set each job's bandwidth), and an
// aggregate throughput timeline. Use -csv to dump the raw trace.
//
// Usage:
//
//	pfsim-trace -np 1024 -stripes 160 -stripesize 128
//	pfsim-trace -np 512 -api plfs -csv trace.csv
//	pfsim-trace -np 1024 -jobs 4              # trace Section V contention
//	pfsim-trace -np 1024 -plfs 1024           # trace a heterogeneous mix
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pfsim/internal/cluster"
	"pfsim/internal/ior"
	"pfsim/internal/lustre"
	"pfsim/internal/mpiio"
	"pfsim/internal/report"
	"pfsim/internal/trace"
	"pfsim/internal/workload"
)

// options collects the command-line knobs; run is pure in (options, out),
// so the golden-output test drives it directly.
type options struct {
	np           int
	api          string
	stripes      int
	stripeSizeMB float64
	segments     int
	jobs         int
	plfsRanks    int
	csvPath      string
	slowest      int
}

func main() {
	var o options
	flag.IntVar(&o.np, "np", 1024, "number of MPI tasks")
	flag.StringVar(&o.api, "api", "lustre", "driver: ufs | lustre | plfs")
	flag.IntVar(&o.stripes, "stripes", 160, "striping_factor hint")
	flag.Float64Var(&o.stripeSizeMB, "stripesize", 128, "striping_unit hint (MB)")
	flag.IntVar(&o.segments, "s", 100, "segment count")
	flag.IntVar(&o.jobs, "jobs", 1, "simultaneous copies of the job (contended scenario)")
	flag.IntVar(&o.plfsRanks, "plfs", 0, "add an n-rank PLFS logger to the scenario")
	flag.StringVar(&o.csvPath, "csv", "", "write the raw transfer trace to this file")
	flag.IntVar(&o.slowest, "slowest", 5, "how many straggler transfers to list")
	flag.Parse()
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "pfsim-trace:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, o options) error {
	plat := cluster.Cab()
	cfg := ior.PaperConfig(o.np)
	cfg.Label = "trace"
	cfg.Reps = 1
	cfg.SegmentCount = o.segments
	cfg.Hints.StripingFactor = o.stripes
	cfg.Hints.StripingUnitMB = o.stripeSizeMB
	switch o.api {
	case "ufs":
		cfg.API = mpiio.DriverUFS
	case "lustre":
		cfg.API = mpiio.DriverLustre
	case "plfs":
		cfg.API = mpiio.DriverPLFS
	default:
		return fmt.Errorf("unknown api %q", o.api)
	}

	sc := workload.UniformScenario("trace", workload.IORJob{Cfg: cfg}, o.jobs)
	if o.plfsRanks > 0 {
		sc = sc.Add(workload.Job{Workload: workload.PLFSLogger{Ranks: o.plfsRanks}})
	}

	rec := &trace.Recorder{}
	res, err := workload.RunScenario(plat, sc, 0, func(sys *lustre.System) {
		rec.Attach(sys.Net())
	})
	if err != nil {
		return err
	}

	for i := range res.Jobs {
		jr := &res.Jobs[i]
		fmt.Fprintf(w, "%s (%s, %d tasks): %.0f MB/s, finished at %.2f s\n",
			jr.Label, jr.Config.API, jr.Config.NumTasks, jr.WriteMBs(), jr.FinishedAt)
	}
	fmt.Fprintf(w, "\ntransfers: %d (peak concurrency %d), %.0f MB moved\n",
		rec.Len(), rec.MaxConcurrent(), rec.TotalMB())
	start, end := rec.Makespan()
	fmt.Fprintf(w, "makespan:  %.2f s (%.2f .. %.2f)\n\n", end-start, start, end)

	t := report.NewTable(fmt.Sprintf("%d slowest transfers", o.slowest),
		"Name", "Start", "End", "MB", "MB/s")
	for _, r := range rec.Slowest(o.slowest) {
		t.AddRow(r.Name, r.Start, r.End, r.SizeMB, r.MeanMBs)
	}
	t.Fprint(w)

	tl := rec.Timeline((end - start) / 20)
	labels := make([]string, len(tl))
	for i := range tl {
		labels[i] = fmt.Sprintf("t%02d", i)
	}
	fmt.Fprintln(w)
	report.Bars(w, "aggregate throughput timeline (MB/s)", labels, tl, 40)

	if o.csvPath != "" {
		f, err := os.Create(o.csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			return err
		}
		fmt.Fprintf(w, "\ntrace written to %s\n", o.csvPath)
	}
	return nil
}
