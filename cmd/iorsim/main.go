// iorsim runs a single simulated IOR execution, mirroring the IOR command
// line options used in the paper (Table II defaults).
//
// Usage:
//
//	iorsim -np 1024 -api lustre -stripes 160 -stripesize 128
//	iorsim -np 512 -api plfs
//	iorsim -np 16 -fpp -stripes 1 -stripesize 1 -offset 7   # Figure 2 style
package main

import (
	"flag"
	"fmt"
	"os"

	"pfsim/internal/cluster"
	"pfsim/internal/ior"
	"pfsim/internal/mpiio"
)

func main() {
	np := flag.Int("np", 1024, "number of MPI tasks")
	api := flag.String("api", "lustre", "driver: ufs | lustre | plfs")
	block := flag.Float64("b", 4, "block size per segment (MB)")
	transfer := flag.Float64("t", 1, "transfer size (MB)")
	segments := flag.Int("s", 100, "segment count")
	stripes := flag.Int("stripes", 0, "striping_factor hint (0 = default)")
	stripeSize := flag.Float64("stripesize", 0, "striping_unit hint in MB (0 = default)")
	offset := flag.Int("offset", 0, "stripe_offset hint (>0 pins the first OST)")
	reps := flag.Int("i", 5, "repetitions")
	fpp := flag.Bool("fpp", false, "file per process")
	read := flag.Bool("r", false, "read the file back")
	jobs := flag.Int("jobs", 1, "simultaneous identical jobs (contended run)")
	seed := flag.Uint64("seed", 0, "override platform RNG seed")
	flag.Parse()

	plat := cluster.Cab()
	if *seed != 0 {
		plat.Seed = *seed
	}
	cfg := ior.Config{
		Label:          "iorsim",
		BlockSizeMB:    *block,
		TransferSizeMB: *transfer,
		SegmentCount:   *segments,
		NumTasks:       *np,
		WriteFile:      true,
		ReadFile:       *read,
		FilePerProc:    *fpp,
		Collective:     true,
		Reps:           *reps,
		Hints: mpiio.Hints{
			StripingFactor: *stripes,
			StripingUnitMB: *stripeSize,
			StripeOffset:   *offset,
		},
	}
	switch *api {
	case "ufs":
		cfg.API = mpiio.DriverUFS
	case "lustre":
		cfg.API = mpiio.DriverLustre
	case "plfs":
		cfg.API = mpiio.DriverPLFS
	default:
		fmt.Fprintf(os.Stderr, "iorsim: unknown api %q\n", *api)
		os.Exit(2)
	}

	if *jobs > 1 {
		results, err := ior.RunContended(plat, cfg, *jobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iorsim:", err)
			os.Exit(1)
		}
		total := 0.0
		for j, res := range results {
			lo, hi := res.Write.CI95()
			fmt.Printf("job %d: write %.2f MB/s  95%% CI (%.2f, %.2f)\n", j, res.Write.Mean(), lo, hi)
			total += res.Write.Mean()
		}
		fmt.Printf("total: %.2f MB/s across %d jobs\n", total, *jobs)
		return
	}

	res, err := ior.Run(plat, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iorsim:", err)
		os.Exit(1)
	}
	lo, hi := res.Write.CI95()
	fmt.Printf("%s, %d tasks, %.0f MB per task\n", cfg.API, *np, cfg.PerRankMB())
	fmt.Printf("write: %.2f MB/s  95%% CI (%.2f, %.2f)  reps %d\n",
		res.Write.Mean(), lo, hi, res.Write.N())
	if *read {
		rlo, rhi := res.Read.CI95()
		fmt.Printf("read:  %.2f MB/s  95%% CI (%.2f, %.2f)\n", res.Read.Mean(), rlo, rhi)
	}
	if len(res.PLFS) > 0 {
		a := res.PLFS[len(res.PLFS)-1]
		fmt.Printf("plfs backend: %d OSTs in use, load %.2f\n", a.InUse(), a.Load())
	}
}
