// iorsim runs a single simulated IOR execution, mirroring the IOR command
// line options used in the paper (Table II defaults). Contended runs go
// through the Scenario/Runner API and report per-job slowdown vs solo.
//
// Usage:
//
//	iorsim -np 1024 -api lustre -stripes 160 -stripesize 128
//	iorsim -np 512 -api plfs
//	iorsim -np 16 -fpp -stripes 1 -stripesize 1 -offset 7   # Figure 2 style
//	iorsim -np 1024 -jobs 4 -parallel 8                     # Section V
package main

import (
	"flag"
	"fmt"
	"os"

	"pfsim"
)

func main() {
	np := flag.Int("np", 1024, "number of MPI tasks")
	api := flag.String("api", "lustre", "driver: ufs | lustre | plfs")
	block := flag.Float64("b", 4, "block size per segment (MB)")
	transfer := flag.Float64("t", 1, "transfer size (MB)")
	segments := flag.Int("s", 100, "segment count")
	stripes := flag.Int("stripes", 0, "striping_factor hint (0 = default)")
	stripeSize := flag.Float64("stripesize", 0, "striping_unit hint in MB (0 = default)")
	offset := flag.Int("offset", 0, "stripe_offset hint (>0 pins the first OST)")
	reps := flag.Int("i", 5, "repetitions")
	fpp := flag.Bool("fpp", false, "file per process")
	read := flag.Bool("r", false, "read the file back")
	jobs := flag.Int("jobs", 1, "simultaneous identical jobs (contended run)")
	seed := flag.Uint64("seed", 0, "override platform RNG seed")
	parallel := flag.Int("parallel", 0, "worker pool width for baseline runs (0 = all cores)")
	flag.Parse()

	plat := pfsim.Cab()
	cfg := pfsim.IORConfig{
		Label:          "iorsim",
		BlockSizeMB:    *block,
		TransferSizeMB: *transfer,
		SegmentCount:   *segments,
		NumTasks:       *np,
		WriteFile:      true,
		ReadFile:       *read,
		FilePerProc:    *fpp,
		Collective:     true,
		Reps:           *reps,
		Hints: pfsim.Hints{
			StripingFactor: *stripes,
			StripingUnitMB: *stripeSize,
			StripeOffset:   *offset,
		},
	}
	switch *api {
	case "ufs":
		cfg.API = pfsim.DriverUFS
	case "lustre":
		cfg.API = pfsim.DriverLustre
	case "plfs":
		cfg.API = pfsim.DriverPLFS
	default:
		fmt.Fprintf(os.Stderr, "iorsim: unknown api %q\n", *api)
		os.Exit(2)
	}

	runner := pfsim.NewRunner(
		pfsim.WithSeed(*seed),
		pfsim.WithParallelism(*parallel),
	)

	if *jobs > 1 {
		res, err := runner.RunScenario(plat,
			pfsim.UniformScenario("iorsim", pfsim.IORWorkload(cfg), *jobs))
		if err != nil {
			fmt.Fprintln(os.Stderr, "iorsim:", err)
			os.Exit(1)
		}
		for j := range res.Jobs {
			jr := &res.Jobs[j]
			lo, hi := jr.IOR.Write.CI95()
			fmt.Printf("job %d: write %.2f MB/s  95%% CI (%.2f, %.2f)  slowdown %.2fx vs solo\n",
				j, jr.WriteMBs(), lo, hi, jr.Slowdown)
		}
		agg := res.Aggregate()
		fmt.Printf("total: %.2f MB/s across %d jobs (mean slowdown %.2fx)\n",
			agg.TotalMBs, *jobs, agg.MeanSlowdown)
		return
	}

	res, err := runner.RunIOR(plat, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iorsim:", err)
		os.Exit(1)
	}
	lo, hi := res.Write.CI95()
	fmt.Printf("%s, %d tasks, %.0f MB per task\n", cfg.API, *np, cfg.PerRankMB())
	fmt.Printf("write: %.2f MB/s  95%% CI (%.2f, %.2f)  reps %d\n",
		res.Write.Mean(), lo, hi, res.Write.N())
	if *read {
		rlo, rhi := res.Read.CI95()
		fmt.Printf("read:  %.2f MB/s  95%% CI (%.2f, %.2f)\n", res.Read.Mean(), rlo, rhi)
	}
	if len(res.PLFS) > 0 {
		a := res.PLFS[len(res.PLFS)-1]
		fmt.Printf("plfs backend: %d OSTs in use, load %.2f\n", a.InUse(), a.Load())
	}
}
