package pfsim

import (
	"fmt"

	"pfsim/internal/workload"
)

// Workload is one application in a contention Scenario. IORWorkload,
// PLFSWorkload and CheckpointWorkload cover the paper's application
// shapes; implement the interface directly for custom ones.
type Workload = workload.Workload

// ScenarioJob places one workload inside a Scenario: a start time, an
// optional pinned node range, and optional striping-hint overrides.
type ScenarioJob = workload.Job

// Scenario composes an arbitrary heterogeneous mix of workloads sharing
// one simulated file system — the generalisation of the paper's "n
// identical striped jobs" contention experiments.
type Scenario = workload.Scenario

// ScenarioResult is the outcome of one Scenario execution: per-job
// bandwidth, timing, slowdown vs a solo run, and aggregate statistics.
type ScenarioResult = workload.Result

// ScenarioJobResult is the per-job part of a ScenarioResult.
type ScenarioJobResult = workload.JobResult

// ScenarioAggregate summarises a scenario across its jobs.
type ScenarioAggregate = workload.Aggregate

// NewScenario returns a named scenario over the given jobs.
func NewScenario(name string, jobs ...ScenarioJob) Scenario {
	return workload.NewScenario(name, jobs...)
}

// UniformScenario returns n copies of one workload on disjoint
// auto-placed node ranges — the paper's Section V scenario as a special
// case of the heterogeneous API.
func UniformScenario(name string, w Workload, n int) Scenario {
	return workload.UniformScenario(name, w, n)
}

// IORWorkload wraps an IOR configuration as a scenario workload — the
// striped collective writers of Sections IV and V.
func IORWorkload(cfg IORConfig) Workload { return workload.IORJob{Cfg: cfg} }

// SolverStressScenario is the canonical solver-stress shape on the Cab
// platform: writers file-per-process ranks, each streaming a short
// two-segment burst to a private file with the default two-stripe layout
// — 2 × writers concurrent flows through one shared backbone. It is the
// single source for `BenchmarkSolver*Flows`, the BENCH_solver.json
// baselines the CI bench gate enforces, and `pfsim-metrics
// -solver-writers`, so the three always measure the same workload.
func SolverStressScenario(writers int) (*Platform, Scenario) {
	plat := Cab()
	name := fmt.Sprintf("bench-solver%d", 2*writers)
	cfg := PaperIOR(writers)
	cfg.Label = name
	cfg.FilePerProc = true
	cfg.Collective = false
	cfg.SegmentCount = 2
	cfg.Reps = 1
	return plat, NewScenario(name, ScenarioJob{Workload: IORWorkload(cfg)})
}

// ShardedResult is the outcome of a Runner.RunSharded execution: one
// scenario result per independent file system plus the shared solver's
// work counters.
type ShardedResult = workload.ShardedResult

// SolverShardedScenario is the sharded counterpart of
// SolverStressScenario: the same file-per-process stress traffic split
// across `shards` independent file systems running under one engine and
// one shared solver, with `writers` ranks (2 × writers flows) per shard.
// It is the source for `BenchmarkSolverSharded*`: the total flow
// population matches a monolithic stress run of shards × writers ranks,
// but each shard is a separate link-connectivity component, so the
// partitioned solver's per-solve scan cost must track the shard size,
// not the population — and independent components are what the parallel
// solve variants fan across workers.
func SolverShardedScenario(writers, shards int) (*Platform, []Scenario) {
	plat := Cab()
	out := make([]Scenario, shards)
	for i := 0; i < shards; i++ {
		name := fmt.Sprintf("bench-shard%d-solver%d", i, 2*writers)
		cfg := PaperIOR(writers)
		cfg.Label = name
		cfg.FilePerProc = true
		cfg.Collective = false
		cfg.SegmentCount = 2
		cfg.Reps = 1
		out[i] = NewScenario(name, ScenarioJob{Workload: IORWorkload(cfg)})
	}
	return plat, out
}

// PLFSWorkload returns an n-rank application logging through ad_plfs
// (Section VI): every rank appends to its own two-stripe log, so the job
// self-contends at scale. mbPerRank <= 0 selects the Table II volume
// (400 MB).
func PLFSWorkload(ranks int, mbPerRank float64) Workload {
	return workload.PLFSLogger{Ranks: ranks, MBPerRank: mbPerRank}
}

// CheckpointWorkload runs a periodically checkpointing application:
// checkpoints state dumps through the given hints, separated by the
// application's compute phase of virtual time.
func CheckpointWorkload(app Checkpoint, hints Hints, checkpoints int) Workload {
	return workload.Checkpointer{App: app, API: DriverLustre, Hints: hints, Checkpoints: checkpoints}
}

// contendedScenario is the RunContended shape on the new API: n copies of
// base on disjoint node ranges, all started at time zero.
func contendedScenario(base IORConfig, n int) Scenario {
	sc := Scenario{Name: base.Label}
	for i := 0; i < n; i++ {
		cfg := base
		cfg.Label = fmt.Sprintf("%s-job%d", base.Label, i)
		sc.Jobs = append(sc.Jobs, ScenarioJob{Workload: workload.IORJob{Cfg: cfg}})
	}
	return sc
}
