// Fleet-scale dispatch benchmarks: how much the engine itself costs per
// short-lived writer, and how many real goroutines a fleet holds. This is
// the PR-9 tentpole's measurement — inline task dispatch versus the
// goroutine-backed Proc shim on an identical simulation.
package pfsim

import (
	"runtime"
	"strconv"
	"testing"

	"pfsim/internal/flow"
	"pfsim/internal/sim"
)

// The fleet shape: writers arrive at a constant stagger, each doing a
// create (bounded-concurrency resource, the MDS pattern), one small
// rate-capped transfer on its backbone link, and retiring. The stagger
// and transfer time put a few hundred writers in flight at any instant
// regardless of the total count, so the benchmark measures steady-state
// churn — spawn, block, wake, retire — not a static population.
const (
	fleetLinks      = 64   // disjoint backbone links (writer i uses i mod 64)
	fleetMDSSlots   = 16   // create concurrency
	fleetCreateCost = 1e-4 // seconds per create
	fleetWriteMB    = 1.0  // transfer size
	fleetWriteRate  = 50.0 // per-writer rate cap (MB/s): solo transfer = 20 ms
	fleetStagger    = 5e-5 // seconds between writer starts (20k arrivals/s)
)

// runFleet simulates writers short-lived writers in task or shim mode and
// returns the peak goroutine count observed while the engine ran (sampled
// every few hundred fired events, which at this event density is many
// times per simulated writer lifetime).
func runFleet(tb testing.TB, writers int, useTasks bool) int {
	tb.Helper()
	e := sim.NewEngine()
	n := flow.NewNet(e)
	links := make([]*flow.Link, fleetLinks)
	for i := range links {
		links[i] = n.NewLink("fleet-pipe"+strconv.Itoa(i), flow.Const(1000))
	}
	mds := e.NewResource("fleet-mds", fleetMDSSlots)
	completed := 0
	for i := 0; i < writers; i++ {
		link := links[i%fleetLinks]
		if useTasks {
			e.StartTask(float64(i)*fleetStagger, "w", i, func(t *sim.Task) {
				mds.UseTask(t, fleetCreateCost, func() {
					n.TransferThen(t, "fleet-write", fleetWriteMB, fleetWriteRate, func(*flow.Flow) {
						completed++
						t.Finish()
					}, link)
				})
			})
		} else {
			e.SpawnIndexed(float64(i)*fleetStagger, "w", i, func(p *sim.Proc) {
				mds.Use(p, fleetCreateCost)
				f := n.Start("fleet-write", fleetWriteMB, fleetWriteRate, link)
				p.Wait(f.Done)
				completed++
			})
		}
	}
	peak := runtime.NumGoroutine()
	e.SetPoll(512, func() {
		if g := runtime.NumGoroutine(); g > peak {
			peak = g
		}
	})
	if err := e.Run(); err != nil {
		tb.Fatal(err)
	}
	if completed != writers {
		tb.Fatalf("%d of %d writers completed", completed, writers)
	}
	if e.LiveTasks() != 0 || e.LiveProcs() != 0 {
		tb.Fatalf("fleet not retired: %d tasks, %d procs live", e.LiveTasks(), e.LiveProcs())
	}
	return peak
}

// BenchmarkEngineFleet runs 100k short-lived writers through the engine.
// The tasks variant is the gated one (BENCH_solver.json): ns/op, B/op,
// allocs/op and the peak live goroutine count — O(1) in fleet size, as
// TestEngineFleetGoroutinesO1 asserts. The procs variant runs the same
// simulation on the goroutine-per-process shim for comparison: one stack
// per in-flight writer and two channel handoffs per blocking operation.
func BenchmarkEngineFleet(b *testing.B) {
	const writers = 100_000
	for _, bc := range []struct {
		name     string
		useTasks bool
	}{
		{"tasks", true},
		{"procs", false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			peak := 0
			for i := 0; i < b.N; i++ {
				peak = runFleet(b, writers, bc.useTasks)
			}
			b.ReportMetric(float64(peak), "peakgoroutines")
		})
	}
}

// TestEngineFleetGoroutinesO1: a task-mode fleet holds a constant number
// of goroutines however many writers pass through, while the shim's
// goroutine population tracks the in-flight writer count. The arrival and
// service rates put ~400 writers in flight at steady state, so the
// thresholds are far apart: tasks must stay within a few goroutines of
// the test baseline at any fleet size, and the shim must visibly scale.
func TestEngineFleetGoroutinesO1(t *testing.T) {
	base := runtime.NumGoroutine()
	small := runFleet(t, 1_000, true)
	large := runFleet(t, 20_000, true)
	if small > base+4 || large > base+4 {
		t.Errorf("task fleet grew the goroutine count: baseline %d, peak %d (1k writers) / %d (20k writers)",
			base, small, large)
	}
	if large > small+4 {
		t.Errorf("task-mode peak scales with fleet size: %d at 1k writers, %d at 20k", small, large)
	}
	shim := runFleet(t, 2_000, false)
	if shim < base+50 {
		t.Errorf("shim fleet peaked at %d goroutines (baseline %d); expected one per in-flight writer — is the shim still goroutine-backed?",
			shim, base)
	}
}
