// Package lustre simulates a Lustre parallel file system: a metadata
// server that assigns object storage targets (OSTs) to files at creation
// time, striped file layouts, and a fluid-network topology (client NICs →
// backbone → object storage servers → OSTs) whose OST links carry
// class-aware capacity models. It is the substrate on which the paper's
// contention experiments run.
package lustre

import (
	"fmt"

	"pfsim/internal/cluster"
	"pfsim/internal/flow"
	"pfsim/internal/sim"
	"pfsim/internal/stats"
)

// System is one simulated Lustre installation bound to an engine. Build a
// fresh System per experiment repetition: per-OST jitter is drawn at build
// time, which gives realistic run-to-run variance. Several Systems can
// share one engine and one fluid network (NewSharedSystem) — independent
// file systems under one simulation, each its own link-connectivity
// component of the shared solver.
type System struct {
	plat *cluster.Platform
	eng  *sim.Engine
	net  *flow.Net

	backbone *flow.Link
	nics     []*flow.Link
	osss     []*flow.Link
	osts     []*OST

	mds     *MDS
	rng     *stats.RNG
	prefix  string
	fileSeq int
	// rebuildSeq hands out negative synthetic file IDs for rebuild
	// streams (see StartRebuild); real files get positive IDs.
	rebuildSeq int
}

// NewSystem builds the simulated file system and network topology for plat
// on a private fluid network. The rng drives OST allocation and service
// jitter; fork it per repetition.
func NewSystem(eng *sim.Engine, plat *cluster.Platform, rng *stats.RNG) (*System, error) {
	return NewSharedSystem(eng, flow.NewNet(eng), plat, rng, "")
}

// NewSharedSystem builds a file system on an existing fluid network, so
// several independent installations ("shards") run under one engine and
// one solver. Their link sets are disjoint — traffic on one shard never
// shares a link with another — so the partitioned solver keeps each shard
// its own component and a change in one never scans the others. The
// prefix namespaces link and resource labels (e.g. "fs0/backbone") and
// must be unique per shared net: a reused prefix would alias the two
// shards' telemetry labels, so it is rejected here (flow.Net.NewLink
// additionally panics on any duplicate link name as a backstop).
func NewSharedSystem(eng *sim.Engine, net *flow.Net, plat *cluster.Platform, rng *stats.RNG, prefix string) (*System, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	if net.HasLink(prefix + "backbone") {
		return nil, fmt.Errorf("lustre: shard prefix %q already in use on this network (link %q exists)",
			prefix, prefix+"backbone")
	}
	s := &System{
		plat:   plat,
		eng:    eng,
		net:    net,
		rng:    rng,
		prefix: prefix,
	}
	s.backbone = net.NewLink(prefix+"backbone", flow.Const(plat.BackboneMBs))
	s.nics = make([]*flow.Link, plat.Nodes)
	for i := range s.nics {
		s.nics[i] = net.NewLink(fmt.Sprintf("%snic%d", prefix, i), flow.Const(plat.NICMBs))
	}
	s.osss = make([]*flow.Link, plat.OSSs)
	for i := range s.osss {
		s.osss[i] = net.NewLink(fmt.Sprintf("%soss%d", prefix, i), flow.Const(plat.OSSMBs))
	}
	s.osts = make([]*OST, plat.OSTs)
	for i := range s.osts {
		m := &ostModel{plat: plat, jitter: rng.Jitter(plat.JitterCV), health: 1}
		ost := &OST{id: i, oss: plat.OSSOf(i), model: m, sys: s}
		ost.link = net.NewLink(fmt.Sprintf("%sost%d", prefix, i), m)
		s.osts[i] = ost
	}
	s.mds = &MDS{
		sys: s,
		res: eng.NewResource(prefix+"mds", 1),
	}
	return s, nil
}

// MustNewSystem is NewSystem, panicking on configuration errors. Intended
// for tests and examples with known-good platforms.
func MustNewSystem(eng *sim.Engine, plat *cluster.Platform, rng *stats.RNG) *System {
	s, err := NewSystem(eng, plat, rng)
	if err != nil {
		panic(err)
	}
	return s
}

// Platform returns the platform description the system was built from.
func (s *System) Platform() *cluster.Platform { return s.plat }

// Prefix returns the label namespace the system was built with — "" for a
// private system, the shard prefix (e.g. "fs0/") for a shared one. Layers
// that create their own links on the shared net (e.g. mpiio aggregators)
// must include it in their link names, or identically labelled jobs on
// two shards would collide.
func (s *System) Prefix() string { return s.prefix }

// Engine returns the simulation engine.
func (s *System) Engine() *sim.Engine { return s.eng }

// Net returns the fluid network.
func (s *System) Net() *flow.Net { return s.net }

// MDS returns the metadata server.
func (s *System) MDS() *MDS { return s.mds }

// RNG returns the system's random source.
func (s *System) RNG() *stats.RNG { return s.rng }

// OST returns target i.
func (s *System) OST(i int) *OST { return s.osts[i] }

// NumOSTs returns the OST population (Dtotal).
func (s *System) NumOSTs() int { return len(s.osts) }

// NIC returns the injection link of a compute node. Out-of-range nodes are
// a caller bug (placement validation happens in ior.Config.Validate); an
// earlier revision silently wrapped them with a modulo, which aliased two
// distinct nodes onto one NIC and hid the error.
func (s *System) NIC(node int) *flow.Link {
	if node < 0 || node >= len(s.nics) {
		panic(fmt.Sprintf("lustre: node %d out of range [0,%d)", node, len(s.nics)))
	}
	return s.nics[node]
}

// Backbone returns the shared I/O network link.
func (s *System) Backbone() *flow.Link { return s.backbone }

// OSSLink returns the link of object storage server i.
func (s *System) OSSLink(i int) *flow.Link { return s.osss[i] }

// PathFromNode returns the link path for a transfer from a compute node to
// an OST: node NIC → backbone → hosting OSS → OST.
func (s *System) PathFromNode(node int, ost *OST) []*flow.Link {
	return []*flow.Link{s.NIC(node), s.backbone, s.osss[ost.oss], ost.link}
}

// OST is one object storage target.
type OST struct {
	id    int
	oss   int
	link  *flow.Link
	model *ostModel
	sys   *System
}

// ID returns the OST index (0..Dtotal-1).
func (o *OST) ID() int { return o.id }

// OSS returns the index of the hosting object storage server.
func (o *OST) OSS() int { return o.oss }

// Link returns the OST's network link.
func (o *OST) Link() *flow.Link { return o.link }

// ActiveJobs returns the number of distinct jobs (files) with streams
// currently open on this OST — the live counterpart of the paper's OST
// load.
func (o *OST) ActiveJobs() int { return o.model.totalJobs() }

// ActiveStreams returns the number of active streams on this OST.
func (o *OST) ActiveStreams() int { return o.model.totalStreams }

// SetHealth scales the OST's service capacity by factor (1 = healthy,
// 0.1 = badly degraded, 0 = failed). Degradation injection models ailing
// storage targets — RAID rebuilds, dying disks — whose effect on striped
// jobs the contention metrics otherwise miss. The change applies to
// in-flight transfers at the current instant: only the OST link's solver
// component is re-solved, so health churn on one file system never scans
// another's traffic.
func (o *OST) SetHealth(factor float64) {
	if factor < 0 {
		factor = 0
	}
	o.model.health = factor
	o.link.SetModel(o.model)
}

// Health returns the current health factor.
func (o *OST) Health() float64 { return o.model.health }

// ostModel implements flow.CapacityModel with class- and job-aware
// degradation:
//
//	capacity = jitter * meanEffBase / penalty(jobs)
//
// where meanEffBase averages each active stream's class base bandwidth
// scaled by its RPC-size efficiency, jobs counts distinct files with
// active streams (streams of one collective job are coordinated and do
// not self-interfere), and penalty blends each present class's thrash
// curve (see cluster.ClassParams.Penalty) weighted by its job share.
type ostModel struct {
	plat   *cluster.Platform
	jitter float64
	health float64 // degradation factor; 1 = healthy

	classJobs    [3]map[int]int // class → fileID → active stream count
	classStreams [3]int
	totalStreams int
	sumEffBase   float64
}

func (m *ostModel) totalJobs() int {
	n := 0
	for c := range m.classJobs {
		n += len(m.classJobs[c])
	}
	return n
}

// Capacity implements flow.CapacityModel. The streams argument (the link's
// raw flow count) is ignored in favour of the registered stream state,
// which carries class and job identity.
func (m *ostModel) Capacity(int) float64 {
	if m.totalStreams == 0 {
		// Idle link: report the best single-stream service rate; harmless
		// since no flow crosses the link.
		return m.health * m.jitter * m.plat.Class[cluster.ClassSequential].BaseMBs
	}
	meanBase := m.sumEffBase / float64(m.totalStreams)
	jobs := 0
	for c := range m.classJobs {
		jobs += len(m.classJobs[c])
	}
	denom := 0.0
	for c := range m.classJobs {
		jc := len(m.classJobs[c])
		if jc == 0 {
			continue
		}
		share := float64(jc) / float64(jobs)
		denom += share * m.plat.Class[c].Penalty(float64(jobs))
	}
	if denom < 1 {
		denom = 1
	}
	return m.health * m.jitter * meanBase / denom
}

// Stream is a registered I/O stream on an OST. Registration makes the
// OST's capacity model aware of the stream's class and owning job before
// its flow starts; Remove must be called when the transfer ends (the
// helpers in this package arrange that via flow completion callbacks).
type Stream struct {
	ost     *OST
	class   cluster.StreamClass
	fileID  int
	effBase float64
	removed bool
}

// AddStream registers a stream of the given class for file fileID writing
// RPCs of rpcMB to this OST. Callers must trigger a network recompute
// (starting a flow does so automatically).
func (o *OST) AddStream(class cluster.StreamClass, fileID int, rpcMB float64) *Stream {
	m := o.model
	if m.classJobs[class] == nil {
		m.classJobs[class] = make(map[int]int)
	}
	m.classJobs[class][fileID]++
	m.classStreams[class]++
	m.totalStreams++
	eff := m.plat.Class[class].BaseMBs * m.plat.Class[class].Efficiency(rpcMB)
	m.sumEffBase += eff
	return &Stream{ost: o, class: class, fileID: fileID, effBase: eff}
}

// Remove deregisters the stream; removing twice is a no-op.
func (st *Stream) Remove() {
	if st.removed {
		return
	}
	st.removed = true
	m := st.ost.model
	m.classJobs[st.class][st.fileID]--
	if m.classJobs[st.class][st.fileID] <= 0 {
		delete(m.classJobs[st.class], st.fileID)
	}
	m.classStreams[st.class]--
	m.totalStreams--
	m.sumEffBase -= st.effBase
	if m.totalStreams == 0 {
		m.sumEffBase = 0 // clear float residue
	}
}

// WriteOpts describes one OST-bound transfer stream.
type WriteOpts struct {
	// Node is the compute node issuing the transfer.
	Node int
	// Class is the stream class for the OST service model.
	Class cluster.StreamClass
	// FileID identifies the owning file (lock/job domain).
	FileID int
	// RPCMB is the request size seen by the OST.
	RPCMB float64
	// MaxRate optionally caps the stream (MB/s); <= 0 = uncapped.
	MaxRate float64
	// Via optionally prepends links to the path (e.g. an aggregator's
	// dispatch link).
	Via []*flow.Link
}

// StartWrite registers a stream on the OST and starts its flow; the stream
// deregisters automatically when the flow completes.
func (s *System) StartWrite(name string, sizeMB float64, ost *OST, opts WriteOpts) *flow.Flow {
	st := ost.AddStream(opts.Class, opts.FileID, opts.RPCMB)
	path := append(append([]*flow.Link{}, opts.Via...), s.PathFromNode(opts.Node, ost)...)
	return s.net.StartFunc(name, sizeMB, opts.MaxRate, st.Remove, path...)
}

// WriteReq describes one stream for StartWrites.
type WriteReq struct {
	// Name labels the flow.
	Name string
	// SizeMB is the transfer volume.
	SizeMB float64
	// OST is the target the stream writes to.
	OST *OST
	// Opts carries the stream attributes (node, class, file, RPC size).
	Opts WriteOpts
}

// StartWrites is the batched StartWrite: it registers every stream, then
// admits all flows through flow.Net.StartBatch so a collective that opens
// its stripe streams at once costs one coalesced rate solve instead of one
// per stream. Streams deregister automatically as their flows complete.
func (s *System) StartWrites(reqs []WriteReq) []*flow.Flow {
	specs := make([]flow.FlowSpec, len(reqs))
	for i := range reqs {
		rq := &reqs[i]
		st := rq.OST.AddStream(rq.Opts.Class, rq.Opts.FileID, rq.Opts.RPCMB)
		specs[i] = flow.FlowSpec{
			Name:    rq.Name,
			SizeMB:  rq.SizeMB,
			MaxRate: rq.Opts.MaxRate,
			OnDone:  st.Remove,
			Path:    append(append([]*flow.Link{}, rq.Opts.Via...), s.PathFromNode(rq.Opts.Node, rq.OST)...),
		}
	}
	return s.net.StartBatch(specs)
}

// StreamSnapshot reports, per OST, the number of distinct active jobs —
// used to derive live collision statistics during contended runs.
func (s *System) StreamSnapshot() []int {
	out := make([]int, len(s.osts))
	for i, o := range s.osts {
		out[i] = o.ActiveJobs()
	}
	return out
}
