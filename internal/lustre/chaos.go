package lustre

import (
	"fmt"
	"strconv"
	"strings"

	"pfsim/internal/cluster"
	"pfsim/internal/flow"
)

// This file holds the fault-injection hooks the declarative scenario
// timeline compiles onto: link lookup by stable name, whole-system
// health sweeps, and rebuild/resync traffic after an OST failure. The
// hooks are plain methods so hand-written experiments and the timeline
// compiler drive exactly the same primitives — which is what makes the
// byte-identity property test in internal/scenariofile meaningful.

// LinkByName resolves a topology link by its scenario-facing name:
// "backbone", "nic<i>" or "oss<i>". OST links are addressed through
// OST(i) and its health model rather than by name — swapping a raw
// capacity model onto an OST link would silently discard the class-aware
// service model, so LinkByName refuses "ost<i>".
func (s *System) LinkByName(name string) (*flow.Link, error) {
	if name == "backbone" {
		return s.backbone, nil
	}
	for _, g := range []struct {
		prefix string
		links  []*flow.Link
	}{{"nic", s.nics}, {"oss", s.osss}} {
		if !strings.HasPrefix(name, g.prefix) {
			continue
		}
		i, err := strconv.Atoi(name[len(g.prefix):])
		if err != nil {
			return nil, fmt.Errorf("lustre: bad link name %q", name)
		}
		if i < 0 || i >= len(g.links) {
			return nil, fmt.Errorf("lustre: link %q out of range [0,%d)", name, len(g.links))
		}
		return g.links[i], nil
	}
	if strings.HasPrefix(name, "ost") {
		return nil, fmt.Errorf("lustre: OST links carry the service model; use OST health, not a capacity swap, for %q", name)
	}
	return nil, fmt.Errorf("lustre: unknown link %q (backbone, nic<i>, oss<i>)", name)
}

// SetAllOSTHealth applies one health factor to every OST — a whole-shard
// brownout (factor near 0) or recovery (factor 1). Negative factors
// clamp to 0 like OST.SetHealth.
func (s *System) SetAllOSTHealth(factor float64) {
	for _, o := range s.osts {
		o.SetHealth(factor)
	}
}

// RebuildOpts shapes the background resync traffic started by
// StartRebuild.
type RebuildOpts struct {
	// SizeMB is the total volume to reconstruct onto the target.
	SizeMB float64
	// Streams is the rebuild concurrency (default 1): the volume is
	// split evenly across this many source→target flows.
	Streams int
	// RateMBs optionally caps each stream (<= 0 = uncapped), modelling a
	// throttled rebuild that deliberately yields to foreground I/O.
	RateMBs float64
	// Sources lists the OSTs the surviving replicas are read from. Empty
	// means the target's OSS-neighbour OSTs excluding the target itself,
	// round-robin.
	Sources []int
	// OnDone, when set, runs once after every rebuild stream finishes.
	OnDone func()
}

// StartRebuild injects rebuild/resync traffic toward OST target: reads
// from surviving source OSTs traverse source OST link → source OSS →
// backbone → target OSS → target OST, competing with foreground jobs on
// every shared hop. Streams register on both end OSTs with synthetic
// negative file IDs (the MDS hands out positive ones), so rebuild I/O
// participates in the class-aware contention model without colliding
// with any real file. Returns the started flows.
func (s *System) StartRebuild(target int, opts RebuildOpts) []*flow.Flow {
	if target < 0 || target >= len(s.osts) {
		panic(fmt.Sprintf("lustre: rebuild target %d out of range [0,%d)", target, len(s.osts)))
	}
	if opts.SizeMB <= 0 {
		panic(fmt.Sprintf("lustre: rebuild volume must be > 0, got %v", opts.SizeMB))
	}
	streams := opts.Streams
	if streams < 1 {
		streams = 1
	}
	sources := opts.Sources
	if len(sources) == 0 {
		tgt := s.osts[target]
		for _, o := range s.osts {
			if o.oss == tgt.oss && o.id != target {
				sources = append(sources, o.id)
			}
		}
		if len(sources) == 0 {
			// Single-OST OSS: pull across the backbone from the next OSS.
			for _, o := range s.osts {
				if o.id != target {
					sources = append(sources, o.id)
					break
				}
			}
		}
	}
	for _, src := range sources {
		if src < 0 || src >= len(s.osts) {
			panic(fmt.Sprintf("lustre: rebuild source %d out of range [0,%d)", src, len(s.osts)))
		}
		if src == target {
			panic(fmt.Sprintf("lustre: rebuild source %d is the target", src))
		}
	}
	tgt := s.osts[target]
	per := opts.SizeMB / float64(streams)
	pending := streams
	specs := make([]flow.FlowSpec, streams)
	const rebuildRPCMB = 1.0 // resync chunks stream in ~1 MB requests
	for i := 0; i < streams; i++ {
		src := s.osts[sources[i%len(sources)]]
		s.rebuildSeq--
		fileID := s.rebuildSeq
		rd := src.AddStream(cluster.ClassSequential, fileID, rebuildRPCMB)
		wr := tgt.AddStream(cluster.ClassSequential, fileID, rebuildRPCMB)
		done := opts.OnDone
		specs[i] = flow.FlowSpec{
			Name:    fmt.Sprintf("%srebuild/ost%d/s%d", s.prefix, target, i),
			SizeMB:  per,
			MaxRate: opts.RateMBs,
			OnDone: func() {
				rd.Remove()
				wr.Remove()
				pending--
				if pending == 0 && done != nil {
					done()
				}
			},
			Path: []*flow.Link{src.link, s.osss[src.oss], s.backbone, s.osss[tgt.oss], tgt.link},
		}
	}
	return s.net.StartBatch(specs)
}
