package lustre

import (
	"fmt"

	"pfsim/internal/sim"
)

// StripeSpec carries the layout parameters a file is created with —
// the knobs the ad_lustre MPI-IO driver exposes as hints.
type StripeSpec struct {
	// Count is the stripe count (striping_factor); 0 selects the system
	// default.
	Count int
	// SizeMB is the stripe size in MB (striping_unit); 0 selects the
	// system default.
	SizeMB float64
	// OffsetOST pins the first stripe to a specific OST (stripe_offset
	// hint); -1 requests random placement. With a pinned offset the
	// remaining stripes follow consecutively, matching Lustre's behaviour.
	OffsetOST int
}

// DefaultSpec returns the spec used when files are created without hints.
func DefaultSpec() StripeSpec { return StripeSpec{OffsetOST: -1} }

// Layout records the OSTs backing a file and its stripe size.
type Layout struct {
	OSTs   []int
	SizeMB float64
}

// StripeCount returns the number of OSTs in the layout.
func (l Layout) StripeCount() int { return len(l.OSTs) }

// OSTForStripe returns the OST holding stripe index i (round-robin).
func (l Layout) OSTForStripe(i int) int { return l.OSTs[i%len(l.OSTs)] }

// BytesPerOST distributes a file of totalMB across the layout in whole
// stripes, round-robin from stripe zero: the first (stripes mod count)
// OSTs carry one extra stripe, the final partial stripe lands after them.
// The returned slice is indexed like l.OSTs and sums to totalMB.
func (l Layout) BytesPerOST(totalMB float64) []float64 {
	n := len(l.OSTs)
	out := make([]float64, n)
	if totalMB <= 0 || n == 0 {
		return out
	}
	full := int(totalMB / l.SizeMB)
	rem := totalMB - float64(full)*l.SizeMB
	for i := 0; i < n; i++ {
		perOST := full / n
		if i < full%n {
			perOST++
		}
		out[i] = float64(perOST) * l.SizeMB
	}
	if rem > 0 {
		out[full%n] += rem
	}
	return out
}

// File is a created file with its layout.
type File struct {
	ID     int
	Name   string
	Layout Layout
}

// MDS is the metadata server: a single-service-point resource that
// allocates OSTs to new files. Allocation is random without replacement
// (lscratchc assigns targets "at random, based on current usage, to
// maintain an approximately even capacity"), or consecutive from a pinned
// offset when the stripe_offset hint is used.
type MDS struct {
	sys *System
	res *sim.Resource

	creates int
}

// Creates reports the number of files created (telemetry).
func (m *MDS) Creates() int { return m.creates }

// normalizeSpec fills system defaults into spec and validates it against
// the platform limits — the synchronous prefix shared by Create and
// CreateK, before any service time is charged.
func (m *MDS) normalizeSpec(spec StripeSpec) (StripeSpec, error) {
	plat := m.sys.plat
	if spec.Count == 0 {
		spec.Count = plat.DefaultStripeCount
	}
	if spec.SizeMB == 0 {
		spec.SizeMB = plat.DefaultStripeSizeMB
	}
	if spec.Count < 0 || spec.Count > plat.MaxStripeCount {
		return spec, fmt.Errorf("lustre: stripe count %d outside 1..%d", spec.Count, plat.MaxStripeCount)
	}
	if spec.SizeMB < 0 {
		return spec, fmt.Errorf("lustre: negative stripe size %v", spec.SizeMB)
	}
	if spec.OffsetOST >= plat.OSTs {
		return spec, fmt.Errorf("lustre: stripe offset %d beyond %d OSTs", spec.OffsetOST, plat.OSTs)
	}
	return spec, nil
}

// allocate draws the new file's layout. It must run only after the MDS
// service time has been charged: the RNG draw position in the run's
// deterministic stream is part of the simulated behaviour.
func (m *MDS) allocate(name string, spec StripeSpec) *File {
	plat := m.sys.plat
	var osts []int
	if spec.OffsetOST >= 0 {
		osts = make([]int, spec.Count)
		for i := range osts {
			osts[i] = (spec.OffsetOST + i) % plat.OSTs
		}
	} else {
		osts = m.sys.rng.SampleWithoutReplacement(plat.OSTs, spec.Count)
	}
	m.sys.fileSeq++
	m.creates++
	return &File{
		ID:     m.sys.fileSeq,
		Name:   name,
		Layout: Layout{OSTs: osts, SizeMB: spec.SizeMB},
	}
}

// Create allocates a layout for a new file, charging the caller the
// metadata service time. The spec is normalised against system defaults
// and validated against the platform's stripe limit.
func (m *MDS) Create(p *sim.Proc, name string, spec StripeSpec) (*File, error) {
	spec, err := m.normalizeSpec(spec)
	if err != nil {
		return nil, err
	}
	m.res.Use(p, m.sys.plat.MDSOpTime)
	return m.allocate(name, spec), nil
}

// CreateK is Create for task-mode callers: the file is delivered to k
// after the metadata service time. A spec error is delivered
// synchronously, before any service time is charged, exactly like
// Create's early return.
//
//pfsim:taskctx
func (m *MDS) CreateK(t *sim.Task, name string, spec StripeSpec, k func(*File, error)) {
	spec, err := m.normalizeSpec(spec)
	if err != nil {
		k(nil, err)
		return
	}
	m.res.UseTask(t, m.sys.plat.MDSOpTime, func() {
		k(m.allocate(name, spec), nil)
	})
}

// Stat models a cheap metadata query (open of an existing file, unlink,
// etc.), charging one metadata service time.
func (m *MDS) Stat(p *sim.Proc) {
	m.res.Use(p, m.sys.plat.MDSOpTime)
}

// StatK is Stat for task-mode callers: k runs after the service time.
//
//pfsim:taskctx
func (m *MDS) StatK(t *sim.Task, k func()) {
	m.res.UseTask(t, m.sys.plat.MDSOpTime, k)
}
