package lustre

import (
	"strings"
	"testing"

	"pfsim/internal/cluster"
)

func TestLinkByName(t *testing.T) {
	_, sys := newSys(t, testPlat())
	cases := []struct {
		name string
		want func() any
	}{
		{"backbone", func() any { return sys.Backbone() }},
		{"nic0", func() any { return sys.NIC(0) }},
		{"nic1199", func() any { return sys.NIC(1199) }},
		{"oss31", func() any { return sys.OSSLink(31) }},
	}
	for _, tc := range cases {
		l, err := sys.LinkByName(tc.name)
		if err != nil {
			t.Errorf("LinkByName(%q): %v", tc.name, err)
			continue
		}
		if any(l) != tc.want() {
			t.Errorf("LinkByName(%q) returned the wrong link", tc.name)
		}
	}
	bad := []struct{ name, want string }{
		{"nic1200", "out of range"},
		{"oss-1", "out of range"},
		{"nicx", "bad link name"},
		{"ost3", "use OST health"},
		{"mds", "unknown link"},
		{"", "unknown link"},
	}
	for _, tc := range bad {
		if _, err := sys.LinkByName(tc.name); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("LinkByName(%q) err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestSetAllOSTHealth(t *testing.T) {
	_, sys := newSys(t, testPlat())
	sys.SetAllOSTHealth(0.3)
	for i := 0; i < sys.NumOSTs(); i += 53 {
		if h := sys.OST(i).Health(); h != 0.3 {
			t.Fatalf("OST %d health = %v", i, h)
		}
	}
	sys.SetAllOSTHealth(-2) // clamps like OST.SetHealth
	if h := sys.OST(0).Health(); h != 0 {
		t.Fatalf("clamped health = %v", h)
	}
}

func TestStartRebuild(t *testing.T) {
	plat := testPlat()
	eng, sys := newSys(t, plat)
	doneAt := -1.0
	flows := sys.StartRebuild(7, RebuildOpts{
		SizeMB:  900,
		Streams: 3,
		OnDone:  func() { doneAt = eng.Now() },
	})
	if len(flows) != 3 {
		t.Fatalf("flows = %d", len(flows))
	}
	// Streams register on both ends with distinct synthetic jobs.
	if got := sys.OST(7).ActiveStreams(); got != 3 {
		t.Errorf("target streams = %d, want 3", got)
	}
	if got := sys.OST(7).ActiveJobs(); got != 3 {
		t.Errorf("target jobs = %d, want 3 (distinct rebuild file IDs)", got)
	}
	srcStreams := 0
	for i := 0; i < sys.NumOSTs(); i++ {
		if i != 7 {
			srcStreams += sys.OST(i).ActiveStreams()
		}
	}
	if srcStreams != 3 {
		t.Errorf("source streams = %d, want 3", srcStreams)
	}
	// Default sources stay on the target's OSS (same-OSS neighbours).
	tgtOSS := sys.OST(7).OSS()
	for i := 0; i < sys.NumOSTs(); i++ {
		if i != 7 && sys.OST(i).ActiveStreams() > 0 && sys.OST(i).OSS() != tgtOSS {
			t.Errorf("default source OST %d is on OSS %d, want %d", i, sys.OST(i).OSS(), tgtOSS)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt <= 0 {
		t.Fatalf("OnDone never fired (doneAt = %v)", doneAt)
	}
	if got := sys.OST(7).ActiveStreams(); got != 0 {
		t.Errorf("streams leaked after completion: %d", got)
	}
}

func TestStartRebuildExplicitSourcesAndCap(t *testing.T) {
	plat := testPlat()
	eng, sys := newSys(t, plat)
	flows := sys.StartRebuild(0, RebuildOpts{
		SizeMB:  100,
		Streams: 2,
		RateMBs: 50,
		Sources: []int{100, 200},
	})
	if sys.OST(100).ActiveStreams() != 1 || sys.OST(200).ActiveStreams() != 1 {
		t.Errorf("explicit sources not used: %d %d",
			sys.OST(100).ActiveStreams(), sys.OST(200).ActiveStreams())
	}
	for _, f := range flows {
		if r := f.Rate(); r > 50+1e-9 {
			t.Errorf("rate %v exceeds cap 50", r)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 100 MB over 2 streams capped at 50 MB/s each → exactly 1s.
	if now := eng.Now(); now < 1-1e-9 || now > 1+1e-9 {
		t.Errorf("capped rebuild finished at %v, want 1s", now)
	}
}

func TestStartRebuildPanics(t *testing.T) {
	_, sys := newSys(t, testPlat())
	cases := []struct {
		name string
		fn   func()
	}{
		{"target range", func() { sys.StartRebuild(480, RebuildOpts{SizeMB: 1}) }},
		{"volume", func() { sys.StartRebuild(0, RebuildOpts{SizeMB: 0}) }},
		{"self source", func() { sys.StartRebuild(0, RebuildOpts{SizeMB: 1, Sources: []int{0}}) }},
		{"source range", func() { sys.StartRebuild(0, RebuildOpts{SizeMB: 1, Sources: []int{-1}}) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

// TestRebuildCompetes checks rebuild traffic actually contends: a
// foreground write sharing the target OST runs slower than alone.
func TestRebuildCompetes(t *testing.T) {
	plat := testPlat()
	run := func(rebuild bool) float64 {
		eng, sys := newSys(t, plat)
		f := sys.StartWrite("fg", 400, sys.OST(7), WriteOpts{
			Node: 0, Class: cluster.ClassSequential, FileID: 1, RPCMB: 1,
		})
		if rebuild {
			sys.StartRebuild(7, RebuildOpts{SizeMB: 4000, Streams: 4})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return f.FinishedAt()
	}
	alone, contended := run(false), run(true)
	if contended <= alone {
		t.Errorf("foreground write not slowed by rebuild: alone %v, contended %v", alone, contended)
	}
}
