package lustre

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"pfsim/internal/cluster"
	"pfsim/internal/flow"
	"pfsim/internal/sim"
	"pfsim/internal/stats"
)

func testPlat() *cluster.Platform {
	p := cluster.Cab()
	p.JitterCV = 0 // deterministic capacities for exact assertions
	return p
}

func newSys(t *testing.T, plat *cluster.Platform) (*sim.Engine, *System) {
	t.Helper()
	eng := sim.NewEngine()
	sys, err := NewSystem(eng, plat, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	return eng, sys
}

func TestTopology(t *testing.T) {
	_, sys := newSys(t, testPlat())
	if sys.NumOSTs() != 480 {
		t.Fatalf("OSTs = %d", sys.NumOSTs())
	}
	// OST→OSS mapping matches the platform.
	for i := 0; i < 480; i += 37 {
		if got, want := sys.OST(i).OSS(), sys.Platform().OSSOf(i); got != want {
			t.Errorf("OST %d on OSS %d, want %d", i, got, want)
		}
	}
	path := sys.PathFromNode(3, sys.OST(100))
	if len(path) != 4 {
		t.Fatalf("path length = %d, want 4", len(path))
	}
	if path[0] != sys.NIC(3) || path[1] != sys.Backbone() {
		t.Errorf("path head wrong: %v %v", path[0].Name(), path[1].Name())
	}
}

func TestInvalidPlatformRejected(t *testing.T) {
	p := cluster.Cab()
	p.OSTs = 0
	if _, err := NewSystem(sim.NewEngine(), p, stats.NewRNG(1)); err == nil {
		t.Error("invalid platform accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewSystem should panic")
		}
	}()
	MustNewSystem(sim.NewEngine(), p, stats.NewRNG(1))
}

// mustCreate is the deleted MDS.MustCreate shim convenience, kept
// test-local: Create with validated specs, panicking on error.
func mustCreate(m *MDS, p *sim.Proc, name string, spec StripeSpec) *File {
	f, err := m.Create(p, name, spec)
	if err != nil {
		panic(err)
	}
	return f
}

func TestMDSCreateDefaults(t *testing.T) {
	eng, sys := newSys(t, testPlat())
	var f *File
	eng.Spawn("creator", func(p *sim.Proc) {
		f = mustCreate(sys.MDS(), p, "checkpoint", DefaultSpec())
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if f.Layout.StripeCount() != 2 || f.Layout.SizeMB != 1 {
		t.Errorf("default layout = %d × %v MB, want 2 × 1", f.Layout.StripeCount(), f.Layout.SizeMB)
	}
	if f.ID == 0 {
		t.Error("file ID not assigned")
	}
	if eng.Now() != sys.Platform().MDSOpTime {
		t.Errorf("create took %v, want %v", eng.Now(), sys.Platform().MDSOpTime)
	}
	if sys.MDS().Creates() != 1 {
		t.Errorf("creates = %d", sys.MDS().Creates())
	}
}

func TestMDSCreatePinnedOffset(t *testing.T) {
	eng, sys := newSys(t, testPlat())
	eng.Spawn("creator", func(p *sim.Proc) {
		f := mustCreate(sys.MDS(), p, "pinned", StripeSpec{Count: 4, SizeMB: 1, OffsetOST: 478})
		want := []int{478, 479, 0, 1} // wraps around
		for i, o := range f.Layout.OSTs {
			if o != want[i] {
				t.Errorf("pinned OST[%d] = %d, want %d", i, o, want[i])
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMDSCreateRandomDistinct(t *testing.T) {
	eng, sys := newSys(t, testPlat())
	eng.Spawn("creator", func(p *sim.Proc) {
		f := mustCreate(sys.MDS(), p, "wide", StripeSpec{Count: 160, SizeMB: 128, OffsetOST: -1})
		seen := map[int]bool{}
		for _, o := range f.Layout.OSTs {
			if o < 0 || o >= 480 || seen[o] {
				t.Fatalf("bad OST allocation: %v", f.Layout.OSTs)
			}
			seen[o] = true
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMDSCreateErrors(t *testing.T) {
	eng, sys := newSys(t, testPlat())
	eng.Spawn("creator", func(p *sim.Proc) {
		if _, err := sys.MDS().Create(p, "x", StripeSpec{Count: 161, OffsetOST: -1}); err == nil {
			t.Error("stripe count beyond limit accepted")
		}
		if _, err := sys.MDS().Create(p, "x", StripeSpec{Count: 2, SizeMB: -1, OffsetOST: -1}); err == nil {
			t.Error("negative stripe size accepted")
		}
		if _, err := sys.MDS().Create(p, "x", StripeSpec{Count: 2, OffsetOST: 480}); err == nil {
			t.Error("offset beyond population accepted")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMDSSerializes(t *testing.T) {
	eng, sys := newSys(t, testPlat())
	var finish []float64
	for i := 0; i < 3; i++ {
		eng.Spawn(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
			mustCreate(sys.MDS(), p, p.Name(), DefaultSpec())
			finish = append(finish, p.Now())
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	op := sys.Platform().MDSOpTime
	want := []float64{op, 2 * op, 3 * op}
	for i, w := range want {
		if math.Abs(finish[i]-w) > 1e-12 {
			t.Errorf("create %d finished at %v, want %v", i, finish[i], w)
		}
	}
}

func TestBytesPerOST(t *testing.T) {
	l := Layout{OSTs: []int{5, 6, 7}, SizeMB: 10}
	got := l.BytesPerOST(100) // 10 stripes: 4,3,3
	want := []float64{40, 30, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("BytesPerOST[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Partial final stripe: 95 MB = 9 full stripes + 5 MB on stripe 9 (ost 0).
	got = l.BytesPerOST(95)
	want = []float64{35, 30, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("partial BytesPerOST[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	sum := 0.0
	for _, v := range got {
		sum += v
	}
	if sum != 95 {
		t.Errorf("sum = %v, want 95", sum)
	}
	// Degenerate cases.
	if v := l.BytesPerOST(0); v[0] != 0 || v[1] != 0 || v[2] != 0 {
		t.Errorf("zero-size file should spread nothing: %v", v)
	}
	if l.OSTForStripe(4) != 6 {
		t.Errorf("OSTForStripe(4) = %d, want 6", l.OSTForStripe(4))
	}
}

func TestOSTModelSingleStream(t *testing.T) {
	_, sys := newSys(t, testPlat())
	ost := sys.OST(0)
	plat := sys.Platform()

	// Sequential stream at full efficiency.
	st := ost.AddStream(cluster.ClassSequential, 1, 1)
	if got := ost.model.Capacity(1); math.Abs(got-plat.Class[cluster.ClassSequential].BaseMBs) > 1e-9 {
		t.Errorf("sequential capacity = %v, want %v", got, plat.Class[cluster.ClassSequential].BaseMBs)
	}
	st.Remove()
	st.Remove() // idempotent
	if ost.ActiveStreams() != 0 || ost.ActiveJobs() != 0 {
		t.Errorf("OST not drained: %d streams, %d jobs", ost.ActiveStreams(), ost.ActiveJobs())
	}

	// Collective stream with 1 MB RPCs pays the RPC-efficiency cost.
	st = ost.AddStream(cluster.ClassCollective, 2, 1)
	coll := plat.Class[cluster.ClassCollective]
	want := coll.BaseMBs * coll.Efficiency(1)
	if got := ost.model.Capacity(1); math.Abs(got-want) > 1e-9 {
		t.Errorf("collective capacity = %v, want %v", got, want)
	}
	st.Remove()
}

func TestOSTModelIntraJobNoThrash(t *testing.T) {
	// Many streams of ONE collective job must not degrade capacity: the
	// driver coordinates them (stripe-aligned file domains).
	_, sys := newSys(t, testPlat())
	ost := sys.OST(1)
	plat := sys.Platform()
	coll := plat.Class[cluster.ClassCollective]
	var streams []*Stream
	for i := 0; i < 32; i++ {
		streams = append(streams, ost.AddStream(cluster.ClassCollective, 7, 16))
	}
	want := coll.BaseMBs * coll.Efficiency(16)
	if got := ost.model.Capacity(32); math.Abs(got-want) > 1e-9 {
		t.Errorf("32 same-job streams: capacity = %v, want %v (no thrash)", got, want)
	}
	if ost.ActiveJobs() != 1 {
		t.Errorf("ActiveJobs = %d, want 1", ost.ActiveJobs())
	}
	for _, st := range streams {
		st.Remove()
	}
}

func TestOSTModelCrossJobThrash(t *testing.T) {
	_, sys := newSys(t, testPlat())
	ost := sys.OST(2)
	plat := sys.Platform()
	coll := plat.Class[cluster.ClassCollective]

	// k independent collective jobs: capacity = base*eff/(1+γ(k-1)).
	var streams []*Stream
	for k := 1; k <= 4; k++ {
		streams = append(streams, ost.AddStream(cluster.ClassCollective, 100+k, 16))
		want := coll.BaseMBs * coll.Efficiency(16) / (1 + coll.ThrashGamma*float64(k-1))
		if got := ost.model.Capacity(k); math.Abs(got-want) > 1e-9 {
			t.Errorf("k=%d jobs: capacity = %v, want %v", k, got, want)
		}
	}
	if ost.ActiveJobs() != 4 {
		t.Errorf("ActiveJobs = %d, want 4", ost.ActiveJobs())
	}
	for _, st := range streams {
		st.Remove()
	}
}

func TestOSTModelLogAppendCollapse(t *testing.T) {
	// Log-append capacity must be flat up to the thrash onset and then
	// collapse superlinearly: ~8× down at 17 logs (the mean load of a
	// 4,096-rank PLFS run), ~23× at 30 logs (its hottest OST).
	_, sys := newSys(t, testPlat())
	ost := sys.OST(3)
	base := sys.Platform().Class[cluster.ClassLogAppend].BaseMBs
	var at6, at17, at30 float64
	for k := 1; k <= 30; k++ {
		ost.AddStream(cluster.ClassLogAppend, 200+k, 1)
		switch k {
		case 6:
			at6 = ost.model.Capacity(k)
		case 17:
			at17 = ost.model.Capacity(k)
		case 30:
			at30 = ost.model.Capacity(k)
		}
	}
	if math.Abs(at6-base) > 1e-9 {
		t.Errorf("6 logs: capacity = %v, want full base %v (below onset)", at6, base)
	}
	if at17 < base/6 || at17 > base/3 {
		t.Errorf("17 logs: capacity = %v, want ~%v (4× collapse)", at17, base/4.2)
	}
	if at30 < base/35 || at30 > base/15 {
		t.Errorf("30 logs: capacity = %v, want ~%v (23× collapse)", at30, base/23)
	}
}

func TestStartWriteLifecycle(t *testing.T) {
	eng, sys := newSys(t, testPlat())
	ost := sys.OST(4)
	var bw float64
	eng.Spawn("writer", func(p *sim.Proc) {
		start := p.Now()
		f := sys.StartWrite("w", 288, ost, WriteOpts{
			Node: 0, Class: cluster.ClassSequential, FileID: 9, RPCMB: 1,
		})
		if ost.ActiveStreams() != 1 {
			t.Errorf("stream not registered during flow")
		}
		p.Wait(f.Done)
		bw = 288 / (p.Now() - start)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 288 MB at 288 MB/s = 1 second.
	if math.Abs(bw-288) > 1e-6 {
		t.Errorf("bandwidth = %v, want 288", bw)
	}
	if ost.ActiveStreams() != 0 || ost.ActiveJobs() != 0 {
		t.Errorf("stream not deregistered after completion")
	}
}

func TestFigure2Shape(t *testing.T) {
	// k sequential writers pinned to ONE OST: per-writer bandwidth ≈
	// 288/k with mild thrash — the Figure 2 curve.
	for _, k := range []int{1, 2, 4, 8, 16} {
		eng, sys := newSys(t, testPlat())
		ost := sys.OST(0)
		var last float64
		for w := 0; w < k; w++ {
			w := w
			eng.Spawn(fmt.Sprintf("w%d", w), func(p *sim.Proc) {
				f := sys.StartWrite(p.Name(), 100, ost, WriteOpts{
					Node: 0, Class: cluster.ClassSequential, FileID: 1000 + w, RPCMB: 1,
				})
				p.Wait(f.Done)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		perProc := 100.0 / last
		ideal := 288.0 / float64(k)
		if perProc > ideal+1e-9 {
			t.Errorf("k=%d: per-proc %v exceeds ideal %v", k, perProc, ideal)
		}
		thrashed := 288.0 / (1 + 0.01*float64(k-1)) / float64(k)
		if math.Abs(perProc-thrashed) > 0.02*thrashed {
			t.Errorf("k=%d: per-proc %v, want ~%v", k, perProc, thrashed)
		}
	}
}

func TestJitterVariesAcrossSystems(t *testing.T) {
	plat := cluster.Cab() // JitterCV > 0
	capFor := func(seed uint64) float64 {
		sys := MustNewSystem(sim.NewEngine(), plat, stats.NewRNG(seed))
		ost := sys.OST(0)
		ost.AddStream(cluster.ClassSequential, 1, 1)
		return ost.model.Capacity(1)
	}
	a, b := capFor(1), capFor(2)
	if a == b {
		t.Errorf("different seeds gave identical jittered capacity %v", a)
	}
	if capFor(1) != capFor(1) {
		t.Error("same seed must reproduce identical capacity")
	}
}

func TestStreamSnapshot(t *testing.T) {
	_, sys := newSys(t, testPlat())
	sys.OST(10).AddStream(cluster.ClassLogAppend, 1, 1)
	sys.OST(10).AddStream(cluster.ClassLogAppend, 2, 1)
	sys.OST(20).AddStream(cluster.ClassCollective, 3, 16)
	snap := sys.StreamSnapshot()
	if snap[10] != 2 || snap[20] != 1 || snap[0] != 0 {
		t.Errorf("snapshot wrong: [10]=%d [20]=%d [0]=%d", snap[10], snap[20], snap[0])
	}
}

func TestOSTHealthDegradation(t *testing.T) {
	// Failure injection: a degraded OST serves its streams proportionally
	// slower, and the change applies to in-flight transfers.
	eng, sys := newSys(t, testPlat())
	ost := sys.OST(9)
	if ost.Health() != 1 {
		t.Fatalf("initial health = %v", ost.Health())
	}
	var finished float64
	eng.Spawn("writer", func(p *sim.Proc) {
		f := sys.StartWrite("w", 288, ost, WriteOpts{
			Node: 0, Class: cluster.ClassSequential, FileID: 5, RPCMB: 1,
		})
		p.Wait(f.Done)
		finished = p.Now()
	})
	// Halfway through (144 MB written at 288 MB/s), halve the capacity:
	// the remaining 144 MB takes 1 s instead of 0.5 s.
	eng.Schedule(0.5, func() { sys.OST(9).SetHealth(0.5) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(finished-1.5) > 1e-6 {
		t.Errorf("degraded write finished at %v, want 1.5", finished)
	}
	// Negative health clamps to zero (failed OST).
	ost.SetHealth(-3)
	if ost.Health() != 0 {
		t.Errorf("health after SetHealth(-3) = %v, want 0", ost.Health())
	}
}

func TestDegradedStragglerSlowsStripedJob(t *testing.T) {
	// A striped write across 4 OSTs is held back by one sick OST — the
	// tail effect that makes wide stripings fragile to ailing targets.
	eng, sys := newSys(t, testPlat())
	sys.OST(2).SetHealth(0.25)
	var finished float64
	eng.Spawn("writer", func(p *sim.Proc) {
		var dones []*sim.Signal
		for i := 0; i < 4; i++ {
			f := sys.StartWrite(fmt.Sprintf("w%d", i), 288, sys.OST(i), WriteOpts{
				Node: 0, Class: cluster.ClassSequential, FileID: 6, RPCMB: 1,
			})
			dones = append(dones, f.Done)
		}
		p.WaitAll(dones...)
		finished = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Healthy OSTs finish at 1 s; the degraded one needs 4 s.
	if math.Abs(finished-4.0) > 1e-6 {
		t.Errorf("straggler-bound job finished at %v, want 4", finished)
	}
}

func TestBytesPerOSTProperties(t *testing.T) {
	// Property: the distribution always sums to the total, never goes
	// negative, and whole-stripe counts differ by at most one across OSTs.
	f := func(nRaw, sRaw uint8, totRaw uint16) bool {
		n := int(nRaw)%16 + 1
		stripe := float64(sRaw%64) + 1
		total := float64(totRaw) / 4
		osts := make([]int, n)
		for i := range osts {
			osts[i] = i
		}
		l := Layout{OSTs: osts, SizeMB: stripe}
		shares := l.BytesPerOST(total)
		sum := 0.0
		minStripes, maxStripes := 1<<30, -1
		for _, mb := range shares {
			if mb < 0 {
				return false
			}
			sum += mb
			s := int(mb / stripe)
			if s < minStripes {
				minStripes = s
			}
			if s > maxStripes {
				maxStripes = s
			}
		}
		if maxStripes-minStripes > 1 {
			return false
		}
		return math.Abs(sum-total) < 1e-6*math.Max(1, total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMDSAllocationUniform(t *testing.T) {
	// Across many creates, every OST should be allocated roughly equally
	// — the approximate balance the MDS maintains on lscratchc.
	eng, sys := newSys(t, testPlat())
	counts := make([]int, sys.NumOSTs())
	eng.Spawn("creator", func(p *sim.Proc) {
		for i := 0; i < 600; i++ {
			f := mustCreate(sys.MDS(), p, fmt.Sprintf("f%d", i), StripeSpec{Count: 160, SizeMB: 1, OffsetOST: -1})
			for _, o := range f.Layout.OSTs {
				counts[o]++
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := 600.0 * 160 / 480 // 200 allocations per OST
	for o, c := range counts {
		if math.Abs(float64(c)-want) > 0.25*want {
			t.Errorf("OST %d allocated %d times, want ~%.0f", o, c, want)
		}
	}
}

func TestNICRejectsOutOfRangeNodes(t *testing.T) {
	_, sys := newSys(t, testPlat())
	for _, node := range []int{-1, sys.Platform().Nodes, sys.Platform().Nodes + 7} {
		node := node
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NIC(%d) did not panic; an earlier revision aliased it via modulo", node)
				}
			}()
			sys.NIC(node)
		}()
	}
	// In-range nodes still resolve.
	if sys.NIC(0) == nil || sys.NIC(sys.Platform().Nodes-1) == nil {
		t.Error("in-range NIC lookup failed")
	}
}

func TestStartWritesBatchMatchesSequential(t *testing.T) {
	// The batched stream API must reproduce the sequential StartWrite
	// path exactly: same completion times, same stream bookkeeping.
	run := func(batch bool) []float64 {
		eng, sys := newSys(t, testPlat())
		var reqs []WriteReq
		for i := 0; i < 8; i++ {
			reqs = append(reqs, WriteReq{
				Name:   fmt.Sprintf("w%d", i),
				SizeMB: float64(50 + 13*i),
				OST:    sys.OST(i % 4),
				Opts: WriteOpts{
					Node:   i,
					Class:  cluster.ClassSequential,
					FileID: i + 1,
					RPCMB:  1,
				},
			})
		}
		var times []float64
		if batch {
			flows := sys.StartWrites(reqs)
			if err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			for _, f := range flows {
				times = append(times, f.FinishedAt())
			}
		} else {
			var flows []interface{ FinishedAt() float64 }
			for _, rq := range reqs {
				flows = append(flows, sys.StartWrite(rq.Name, rq.SizeMB, rq.OST, rq.Opts))
			}
			if err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			for _, f := range flows {
				times = append(times, f.FinishedAt())
			}
		}
		for i := 0; i < 4; i++ {
			if sys.OST(i).ActiveStreams() != 0 {
				t.Errorf("OST %d still has %d streams after drain", i, sys.OST(i).ActiveStreams())
			}
		}
		return times
	}
	seq := run(false)
	bat := run(true)
	for i := range seq {
		if math.Float64bits(seq[i]) != math.Float64bits(bat[i]) {
			t.Errorf("flow %d: sequential %v vs batch %v", i, seq[i], bat[i])
		}
	}
}

func TestSharedSystemsOnOneNet(t *testing.T) {
	// Two independent file systems on one engine and one fluid network:
	// disjoint link sets, prefixed names, each its own solver component.
	plat := testPlat()
	eng := sim.NewEngine()
	net := flow.NewNet(eng)
	sysA, err := NewSharedSystem(eng, net, plat, stats.NewRNG(1), "fs0/")
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := NewSharedSystem(eng, net, plat, stats.NewRNG(2), "fs1/")
	if err != nil {
		t.Fatal(err)
	}
	if sysA.Net() != net || sysB.Net() != net {
		t.Fatal("shared systems must expose the shared net")
	}
	if got := sysA.Backbone().Name(); got != "fs0/backbone" {
		t.Errorf("backbone name %q, want fs0/backbone", got)
	}
	if got := sysB.OST(0).Link().Name(); got != "fs1/ost0" {
		t.Errorf("ost link name %q, want fs1/ost0", got)
	}
	fa := sysA.StartWrite("a", 1000, sysA.OST(0), WriteOpts{Node: 0, Class: cluster.ClassSequential, FileID: 1, RPCMB: 1})
	fb := sysB.StartWrite("b", 1000, sysB.OST(0), WriteOpts{Node: 0, Class: cluster.ClassSequential, FileID: 1, RPCMB: 1})
	net.Recompute()
	if got := net.Components(); got != 2 {
		t.Errorf("%d solver components, want 2 (one per file system)", got)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !fa.Finished() || !fb.Finished() {
		t.Fatal("shared-net writes did not drain")
	}
	// Identical platforms, zero jitter, same write: identical finish times,
	// and neither shard's traffic shows up on the other's links.
	if fa.FinishedAt() != fb.FinishedAt() {
		t.Errorf("isolated shards diverged: %v vs %v", fa.FinishedAt(), fb.FinishedAt())
	}
	if c := sysB.Backbone().Carried(); c != 1000 {
		t.Errorf("fs1 backbone carried %v, want 1000", c)
	}
}

func TestNewSystemIsPrivateNet(t *testing.T) {
	plat := testPlat()
	e1 := sim.NewEngine()
	s1, err := NewSystem(e1, plat, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	e2 := sim.NewEngine()
	s2, err := NewSystem(e2, plat, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Net() == s2.Net() {
		t.Fatal("independent systems share a net")
	}
	if got := s1.Backbone().Name(); got != "backbone" {
		t.Errorf("unprefixed backbone name %q", got)
	}
}

// TestSharedSystemRejectsDuplicatePrefix: two shards built with the same
// prefix on one net would alias every telemetry label (fs0/ost3 naming
// two different OSTs), so the second build must fail instead of silently
// sharing the namespace. Distinct prefixes keep working.
func TestSharedSystemRejectsDuplicatePrefix(t *testing.T) {
	eng := sim.NewEngine()
	net := flow.NewNet(eng)
	plat := testPlat()
	if _, err := NewSharedSystem(eng, net, plat, stats.NewRNG(1), "fs0/"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSharedSystem(eng, net, plat, stats.NewRNG(2), "fs0/"); err == nil {
		t.Fatal("duplicate prefix accepted")
	}
	if _, err := NewSharedSystem(eng, net, plat, stats.NewRNG(3), "fs1/"); err != nil {
		t.Fatalf("distinct prefix rejected: %v", err)
	}
}
