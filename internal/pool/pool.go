// Package pool runs a batch of independent work items across a bounded
// set of workers. It is the execution substrate behind the public Runner:
// every item is an isolated single-threaded simulation, so fanning items
// over GOMAXPROCS cores changes wall-clock time but never results.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalises a requested parallelism: values below one select
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Progress wraps a (done, total) callback with a counter for use from
// pool workers. Each invocation of the returned func counts one completed
// item and reports it; the callback runs under the counter's lock, so
// calls are serialised and arrive in done order. A nil fn yields a no-op.
func Progress(total int, fn func(done, total int)) func() {
	if fn == nil {
		return func() {}
	}
	var mu sync.Mutex
	done := 0
	return func() {
		mu.Lock()
		defer mu.Unlock()
		done++
		fn(done, total)
	}
}

// Fan executes fn(worker, 0), ..., fn(worker, n-1) across at most
// `workers` participants, the calling goroutine included: worker 0 is the
// caller, workers 1..workers-1 are spawned, and items are claimed from an
// atomic counter in index order. Fan returns when every item has run.
//
// Unlike Run there is no context or error plumbing and no per-call
// goroutine for the caller's share of the work: Fan is the fan-out for
// fine-grained hot paths — the flow solver dispatches every per-instant
// batch of independent component solves through it — where one spawn
// fewer and zero allocations per item matter. The worker index lets
// callers hand each participant its own scratch state; items must touch
// only state owned by item i or by worker w, under which contract the
// combined result is independent of the worker count.
//
//pfsim:hotpath
func Fan(workers, n int, fn func(worker, item int)) {
	if n <= 0 {
		return
	}
	if workers = Workers(workers); workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64 //pfsim:allocok shared with the spawned workers (escapes): parallel fan floor
	var wg sync.WaitGroup //pfsim:allocok shared with the spawned workers (escapes): parallel fan floor
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		//pfsim:allocok per-worker spawn closure: the parallel fan's fixed per-call floor
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	for {
		i := int(next.Add(1) - 1)
		if i >= n {
			break
		}
		fn(0, i)
	}
	wg.Wait()
}

// Run executes fn(0), ..., fn(n-1) with at most workers goroutines in
// flight. Each item runs exactly once unless an earlier error or a context
// cancellation is observed first, in which case unstarted items are
// skipped. Run returns ctx.Err() if the context was cancelled, otherwise
// the lowest-index error, otherwise nil. A nil ctx never cancels.
//
// Callers guarantee fn(i) touches only state owned by item i (or
// synchronises itself); under that contract the combined results are
// independent of workers, so parallel and serial runs are byte-identical.
func Run(ctx context.Context, workers, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	if workers = Workers(workers); workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() || ctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
