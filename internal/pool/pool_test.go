package pool

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllItems(t *testing.T) {
	for _, workers := range []int{1, 4, 32} {
		var hits [100]atomic.Int32
		if err := Run(context.Background(), workers, len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunNilContextAndEmptyBatch(t *testing.T) {
	if err := Run(nil, 4, 0, func(int) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := Run(nil, 1, 1, func(int) error { ran = true; return nil }); err != nil || !ran {
		t.Fatalf("err=%v ran=%v", err, ran)
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	wantA, wantB := errors.New("a"), errors.New("b")
	// Serial: fails fast at the first error.
	calls := 0
	err := Run(context.Background(), 1, 10, func(i int) error {
		calls++
		if i == 2 {
			return wantA
		}
		return nil
	})
	if err != wantA || calls != 3 {
		t.Fatalf("serial: err=%v calls=%d", err, calls)
	}
	// Parallel: whichever worker fails, the reported error has the lowest
	// index among recorded failures, and later work is skipped.
	err = Run(context.Background(), 4, 64, func(i int) error {
		if i == 5 {
			return wantA
		}
		if i == 40 {
			return wantB
		}
		return nil
	})
	if err == nil {
		t.Fatal("parallel: no error")
	}
	if err == wantB {
		// Possible only if item 40 failed before item 5 ran; item 5 must
		// then have been skipped. Either error is acceptable, but nil is
		// not, and wantA must win whenever both were recorded.
		t.Log("item 40's error won the race (item 5 skipped)")
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Run(ctx, 4, 8, func(int) error { t.Error("fn ran after cancel"); return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	err := Run(ctx, 2, 1000, func(i int) error {
		if started.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if n := started.Load(); n > 900 {
		t.Fatalf("cancellation not prompt: %d items ran", n)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit parallelism not honoured")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Error("defaulting broken")
	}
}

func TestFanRunsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 257
		var counts [n]atomic.Int32
		workerSeen := map[int]bool{}
		var mu sync.Mutex
		Fan(workers, n, func(w, i int) {
			counts[i].Add(1)
			mu.Lock()
			workerSeen[w] = true
			mu.Unlock()
		})
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, got)
			}
		}
		for w := range workerSeen {
			if w < 0 || w >= workers {
				t.Fatalf("workers=%d: worker id %d out of range", workers, w)
			}
		}
	}
}

// TestFanCallerIsWorkerZero: the calling goroutine participates as worker
// 0, so per-worker state indexed by the id needs no extra slot and a
// single-worker fan spawns nothing.
func TestFanCallerIsWorkerZero(t *testing.T) {
	ran := false
	Fan(1, 3, func(w, i int) {
		if w != 0 {
			t.Errorf("serial fan used worker %d", w)
		}
		ran = true
	})
	if !ran {
		t.Fatal("fan did not run")
	}
	Fan(4, 0, func(w, i int) { t.Error("empty fan ran an item") })
}
