// Package refdata records the numbers published in Wright & Jarvis,
// "Quantifying the Effects of Contention on Parallel File Systems"
// (IPDPSW 2015), so every reproduction can print paper-vs-measured
// comparisons. Values are transcribed from the paper's tables; figure
// values are the ones quoted in the text.
package refdata

// Figure1 headline numbers (Section IV).
var Figure1 = struct {
	DefaultMBs     float64 // stripe count 2, stripe size 1 MB
	SizeTunedMBs   float64 // best varying stripe size only
	CountTunedMBs  float64 // best varying stripe count only (160 × 1 MB)
	BestMBs        float64 // 160 stripes × 128 MB
	BestCount      int
	BestSizeMB     float64
	SpeedupFactor  float64
	SweepCounts    []int
	SweepSizesMB   []float64
	ProcessorCount int
}{
	DefaultMBs:     313,
	SizeTunedMBs:   395,
	CountTunedMBs:  4075,
	BestMBs:        15609,
	BestCount:      160,
	BestSizeMB:     128,
	SpeedupFactor:  49,
	SweepCounts:    []int{8, 16, 32, 64, 128, 160},
	SweepSizesMB:   []float64{32, 64, 128, 256},
	ProcessorCount: 1024,
}

// LoadRow is one row of the analytic load tables.
type LoadRow struct {
	Jobs   int
	Dinuse float64
	Dreq   int
	Dload  float64
}

// TableIII: lscratchc, R = 160.
var TableIII = []LoadRow{
	{1, 160.00, 160, 1.00}, {2, 266.67, 320, 1.20}, {3, 337.78, 480, 1.42},
	{4, 385.19, 640, 1.66}, {5, 416.79, 800, 1.92}, {6, 437.86, 960, 2.19},
	{7, 451.91, 1120, 2.48}, {8, 461.27, 1280, 2.78}, {9, 467.51, 1440, 3.08},
	{10, 471.68, 1600, 3.39},
}

// TableIV: lscratchc, R = 64.
var TableIV = []LoadRow{
	{1, 64.00, 64, 1.00}, {2, 119.47, 128, 1.07}, {3, 167.54, 192, 1.15},
	{4, 209.20, 256, 1.22}, {5, 245.31, 320, 1.30}, {6, 276.60, 384, 1.39},
	{7, 303.72, 448, 1.48}, {8, 327.22, 512, 1.57}, {9, 347.59, 576, 1.66},
	{10, 365.25, 640, 1.75},
}

// TableVI: Stampede (Dtotal = 160), R = 128.
var TableVI = []LoadRow{
	{1, 128.00, 128, 1.00}, {2, 153.60, 256, 1.67}, {3, 158.72, 384, 2.42},
	{4, 159.74, 512, 3.21}, {5, 159.95, 640, 4.00}, {6, 159.99, 768, 4.80},
	{7, 160.00, 896, 5.60}, {8, 160.00, 1024, 6.40}, {9, 160.00, 1152, 7.20},
	{10, 160.00, 1280, 8.00},
}

// TableVRow is one row of Table V: four contending jobs at stripe request
// R, with the empirical OST sharing histogram and predicted/actual
// Dinuse/Dload.
type TableVRow struct {
	R              int
	AvgMBs         float64 // mean per-job bandwidth
	TotalMBs       float64 // all four jobs
	Dreq           int
	Usage          [4]float64 // OSTs used by exactly 1..4 jobs (measured)
	PredictedInUse float64
	PredictedLoad  float64
	ActualInUse    float64
	ActualLoad     float64
}

// TableV: contended stripe-request sweep (five-repetition means).
var TableV = []TableVRow{
	{32, 3654.06, 14616.24, 128, [4]float64{103.2, 11.2, 0.8, 0.0}, 115.76, 1.11, 115.20, 1.11},
	{64, 3910.51, 15642.03, 256, [4]float64{172.6, 35.8, 3.4, 0.4}, 209.20, 1.22, 212.20, 1.21},
	{96, 4042.98, 16171.92, 384, [4]float64{199.4, 76.4, 9.8, 0.6}, 283.39, 1.36, 286.20, 1.34},
	{128, 4172.17, 16688.66, 512, [4]float64{211.6, 111.4, 22.4, 2.6}, 341.18, 1.50, 348.00, 1.47},
	{160, 4541.37, 18165.46, 640, [4]float64{191.8, 147.0, 41.8, 7.2}, 385.19, 1.66, 387.80, 1.65},
}

// Figure3MBs is the approximate per-task bandwidth of the four
// simultaneous tuned IOR tasks (Section V: "each individual application
// achieved approximately 4,500 MB/s — a 3.44× reduction").
const Figure3MBs = 4500

// Figure3ReductionFactor is the quoted reduction from the solo peak.
const Figure3ReductionFactor = 3.44

// TableVIIRow is one row of Table VII: IOR bandwidth through ad_lustre
// and ad_plfs with 95% confidence intervals.
type TableVIIRow struct {
	Procs                         int
	LustreMBs, LustreLo, LustreHi float64
	PLFSMBs, PLFSLo, PLFSHi       float64
}

// TableVII: the Figure 5 series.
var TableVII = []TableVIIRow{
	{16, 403.75, 390.73, 416.77, 752.96, 398.41, 1107.51},
	{32, 404.71, 393.09, 416.34, 727.33, 558.95, 895.70},
	{64, 857.35, 832.82, 881.88, 1776.70, 648.90, 2904.50},
	{128, 1987.51, 1908.24, 2066.78, 3814.62, 1375.19, 6254.05},
	{256, 4354.98, 4288.69, 4421.27, 7126.88, 4159.66, 10094.10},
	{512, 8985.14, 8777.61, 9192.66, 10723.42, 9947.06, 11499.77},
	{1024, 13859.58, 12582.68, 15136.47, 8575.13, 8474.06, 8676.21},
	{2048, 16200.16, 15441.57, 16958.74, 5696.41, 5604.86, 5787.97},
	{4096, 16917.11, 16291.58, 17542.64, 3069.05, 3052.82, 3085.28},
}

// CollisionTable holds one of the PLFS backend collision tables: for each
// of five experiments, counts[c] is the number of in-use OSTs with c
// collisions (c+1 resident stripes), plus the realised Dinuse/Dload and
// bandwidth.
type CollisionTable struct {
	Procs      int
	Collisions [][]float64 // [experiment][collision count]
	Dinuse     []float64
	Dload      []float64
	MBs        []float64
}

// TableVIII: PLFS at 512 processes.
var TableVIII = CollisionTable{
	Procs: 512,
	Collisions: [][]float64{
		{121, 134, 97, 49, 21, 6, 1, 0, 0},
		{135, 126, 88, 55, 22, 6, 1, 0, 0},
		{122, 134, 85, 56, 21, 6, 2, 0, 0},
		{116, 129, 94, 45, 20, 12, 1, 0, 1},
		{129, 133, 82, 54, 28, 2, 1, 1, 0},
	},
	Dinuse: []float64{429, 433, 426, 418, 430},
	Dload:  []float64{2.39, 2.36, 2.40, 2.45, 2.38},
	MBs:    []float64{12062.68, 10469.38, 10234.97, 9768.07, 11081.99},
}

// TableIXDload is the uniform realised load of the 4,096-process PLFS runs
// (all 480 OSTs in use; 8,192 stripes).
const TableIXDload = 17.07

// TableIXMBs are the bandwidths of the five 4,096-process experiments.
var TableIXMBs = []float64{3042.06, 3077.16, 3083.26, 3084.89, 3057.90}

// Figure2 describes the single-OST contention benchmark: per-process
// bandwidth starts at ~288 MB/s for one writer and follows just under the
// 1/k fair-share line; by three or more contended jobs the overhead is
// noticeable (Section V).
var Figure2 = struct {
	SingleWriterMBs float64
	MaxJobs         int
}{288, 16}

// PLFSGoodLoadThreshold is the OST load the paper still calls "good"
// performance for PLFS (3 tasks per OST, reached at 688 cores).
const PLFSGoodLoadThreshold = 3.0
