// Package sweep searches the Lustre configuration space for optimal IOR
// bandwidth: the exhaustive grid search used in Section IV of the paper
// (stripe count × stripe size, Figure 1) and, as an extension, the
// genetic-algorithm tuner of Behzad et al. [5] that the paper cites as
// its inspiration.
package sweep

import (
	"context"
	"fmt"
	"sort"

	"pfsim/internal/cluster"
	"pfsim/internal/ior"
	"pfsim/internal/pool"
	"pfsim/internal/stats"
)

// Point is one sampled configuration with its measured bandwidth.
type Point struct {
	StripeCount  int
	StripeSizeMB float64
	MBs          float64
}

// Grid is the result of an exhaustive sweep.
type Grid struct {
	Counts  []int
	SizesMB []float64
	// MBs[i][j] is the bandwidth at Counts[i] × SizesMB[j].
	MBs [][]float64
}

// Best returns the best-performing grid point.
func (g *Grid) Best() Point {
	best := Point{MBs: -1}
	for i, c := range g.Counts {
		for j, s := range g.SizesMB {
			if g.MBs[i][j] > best.MBs {
				best = Point{StripeCount: c, StripeSizeMB: s, MBs: g.MBs[i][j]}
			}
		}
	}
	return best
}

// At returns the bandwidth at a grid coordinate.
func (g *Grid) At(count int, sizeMB float64) (float64, bool) {
	for i, c := range g.Counts {
		if c != count {
			continue
		}
		for j, s := range g.SizesMB {
			if s == sizeMB {
				return g.MBs[i][j], true
			}
		}
	}
	return 0, false
}

// Options configures a sweep run.
type Options struct {
	// Tasks is the IOR process count (the paper uses 1,024).
	Tasks int
	// Reps per configuration (the sweep uses fewer than headline runs).
	Reps int
	// Base overrides the IOR workload (zero value: Table II settings).
	Base *ior.Config

	// Parallelism fans independent grid points across this many workers
	// (1 = serial; values below one select GOMAXPROCS). Every point is an
	// isolated deterministic simulation, so results are byte-identical at
	// any parallelism.
	Parallelism int
	// Ctx aborts the sweep between points when cancelled (nil = never).
	Ctx context.Context
	// Progress, when set, is called after each completed point with the
	// running and total point counts. Calls are serialised.
	Progress func(done, total int)
	// Seed overrides the platform RNG seed for every measurement (0 keeps
	// the platform seed).
	Seed uint64
}

func (o Options) baseConfig() ior.Config {
	if o.Base != nil {
		return *o.Base
	}
	cfg := ior.PaperConfig(o.Tasks)
	cfg.Reps = o.Reps
	return cfg
}

// Exhaustive measures every (count, size) combination — the search of
// Section IV. Each grid point is an independent deterministic simulation;
// with opt.Parallelism != 1 the points fan across a worker pool and the
// resulting grid is byte-identical to a serial sweep.
func Exhaustive(plat *cluster.Platform, counts []int, sizesMB []float64, opt Options) (*Grid, error) {
	if opt.Tasks <= 0 {
		return nil, fmt.Errorf("sweep: Tasks must be positive")
	}
	if opt.Reps <= 0 {
		opt.Reps = 1
	}
	g := &Grid{Counts: counts, SizesMB: sizesMB, MBs: make([][]float64, len(counts))}
	for i := range counts {
		g.MBs[i] = make([]float64, len(sizesMB))
	}
	total := len(counts) * len(sizesMB)
	if total == 0 {
		return g, nil
	}
	tick := pool.Progress(total, opt.Progress)
	err := pool.Run(opt.Ctx, opt.Parallelism, total, func(k int) error {
		i, j := k/len(sizesMB), k%len(sizesMB)
		bw, err := measure(plat, counts[i], sizesMB[j], opt)
		if err != nil {
			return err
		}
		g.MBs[i][j] = bw
		tick()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

func measure(plat *cluster.Platform, count int, sizeMB float64, opt Options) (float64, error) {
	if opt.Seed != 0 && opt.Seed != plat.Seed {
		reseeded := *plat
		reseeded.Seed = opt.Seed
		plat = &reseeded
	}
	cfg := opt.baseConfig()
	cfg.Reps = opt.Reps
	cfg.Label = fmt.Sprintf("sweep-c%d-s%g", count, sizeMB)
	cfg.Hints.StripingFactor = count
	cfg.Hints.StripingUnitMB = sizeMB
	res, err := ior.Run(plat, cfg)
	if err != nil {
		return 0, fmt.Errorf("sweep: %d×%gMB: %w", count, sizeMB, err)
	}
	return res.Write.Mean(), nil
}

// GAOptions tunes the genetic search.
type GAOptions struct {
	Options
	// Population size per generation (Behzad et al. use small populations
	// of tens of individuals).
	Population int
	// Generations to evolve.
	Generations int
	// MutationRate is the per-gene mutation probability.
	MutationRate float64
	// Seed makes the search deterministic.
	Seed uint64
	// Counts/SizesMB are the gene alphabets (defaults: powers of two up
	// to the platform limits).
	Counts  []int
	SizesMB []float64
}

func (o *GAOptions) defaults(plat *cluster.Platform) {
	if o.Population <= 0 {
		o.Population = 8
	}
	if o.Generations <= 0 {
		o.Generations = 5
	}
	if o.MutationRate <= 0 {
		o.MutationRate = 0.2
	}
	if len(o.Counts) == 0 {
		for c := 1; c <= plat.MaxStripeCount; c *= 2 {
			o.Counts = append(o.Counts, c)
		}
		if last := o.Counts[len(o.Counts)-1]; last != plat.MaxStripeCount {
			o.Counts = append(o.Counts, plat.MaxStripeCount)
		}
	}
	if len(o.SizesMB) == 0 {
		for s := 1.0; s <= 256; s *= 2 {
			o.SizesMB = append(o.SizesMB, s)
		}
	}
	if o.Reps <= 0 {
		o.Reps = 1
	}
}

// GAResult reports the evolved best point and the evaluation count, for
// comparing search cost against the exhaustive sweep.
type GAResult struct {
	Best        Point
	Evaluations int
	// History holds the best bandwidth after each generation.
	History []float64
}

// Genetic runs a small genetic algorithm over the configuration space, in
// the spirit of Behzad et al. [5]: tournament selection, single-point
// crossover on the (count, size) genome, per-gene mutation. Fitness
// evaluations are memoised, so Evaluations counts distinct simulated
// configurations.
func Genetic(plat *cluster.Platform, opt GAOptions) (*GAResult, error) {
	if opt.Tasks <= 0 {
		return nil, fmt.Errorf("sweep: Tasks must be positive")
	}
	opt.defaults(plat)
	rng := stats.NewRNG(opt.Seed + 0x6a)
	type genome struct{ ci, si int }
	cache := map[genome]float64{}
	evals := 0
	fitness := func(g genome) (float64, error) {
		if bw, ok := cache[g]; ok {
			return bw, nil
		}
		bw, err := measure(plat, opt.Counts[g.ci], opt.SizesMB[g.si], opt.Options)
		if err != nil {
			return 0, err
		}
		cache[g] = bw
		evals++
		return bw, nil
	}

	// evaluate fills the memo cache for every distinct unseen genome in
	// pop, fanning the independent simulations across the worker pool.
	// Cache contents (and so Evaluations) do not depend on ordering.
	evaluate := func(pop []genome) error {
		var fresh []genome
		seen := map[genome]bool{}
		for _, g := range pop {
			if _, ok := cache[g]; !ok && !seen[g] {
				seen[g] = true
				fresh = append(fresh, g)
			}
		}
		bws := make([]float64, len(fresh))
		err := pool.Run(opt.Ctx, opt.Parallelism, len(fresh), func(i int) error {
			bw, err := measure(plat, opt.Counts[fresh[i].ci], opt.SizesMB[fresh[i].si], opt.Options)
			if err != nil {
				return err
			}
			bws[i] = bw
			return nil
		})
		if err != nil {
			return err
		}
		for i, g := range fresh {
			cache[g] = bws[i]
			evals++
		}
		return nil
	}

	pop := make([]genome, opt.Population)
	for i := range pop {
		pop[i] = genome{rng.IntN(len(opt.Counts)), rng.IntN(len(opt.SizesMB))}
	}
	res := &GAResult{Best: Point{MBs: -1}}
	for gen := 0; gen < opt.Generations; gen++ {
		if err := evaluate(pop); err != nil {
			return nil, err
		}
		scores := make([]float64, len(pop))
		for i, g := range pop {
			bw, err := fitness(g)
			if err != nil {
				return nil, err
			}
			scores[i] = bw
			if bw > res.Best.MBs {
				res.Best = Point{
					StripeCount:  opt.Counts[g.ci],
					StripeSizeMB: opt.SizesMB[g.si],
					MBs:          bw,
				}
			}
		}
		res.History = append(res.History, res.Best.MBs)
		// Tournament selection + crossover + mutation.
		next := make([]genome, 0, len(pop))
		// Elitism: keep the best individual.
		bestIdx := 0
		for i, s := range scores {
			if s > scores[bestIdx] {
				bestIdx = i
			}
		}
		next = append(next, pop[bestIdx])
		tournament := func() genome {
			a, b := rng.IntN(len(pop)), rng.IntN(len(pop))
			if scores[a] >= scores[b] {
				return pop[a]
			}
			return pop[b]
		}
		for len(next) < len(pop) {
			pa, pb := tournament(), tournament()
			child := genome{pa.ci, pb.si} // single-point crossover
			if rng.Float64() < opt.MutationRate {
				child.ci = rng.IntN(len(opt.Counts))
			}
			if rng.Float64() < opt.MutationRate {
				child.si = rng.IntN(len(opt.SizesMB))
			}
			next = append(next, child)
		}
		pop = next
	}
	res.Evaluations = evals
	return res, nil
}

// CountsUpTo returns the paper's Figure 1 stripe-count axis for a
// platform: powers of two from 8, capped and terminated at the stripe
// limit.
func CountsUpTo(plat *cluster.Platform) []int {
	var out []int
	for c := 8; c < plat.MaxStripeCount; c *= 2 {
		out = append(out, c)
	}
	out = append(out, plat.MaxStripeCount)
	sort.Ints(out)
	return out
}
