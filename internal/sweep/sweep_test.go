package sweep

import (
	"context"
	"errors"
	"sync"
	"testing"

	"pfsim/internal/cluster"
	"pfsim/internal/ior"
)

func quietCab() *cluster.Platform {
	p := cluster.Cab()
	p.JitterCV = 0
	return p
}

// smallBase keeps sweep tests fast: fewer segments, fewer tasks.
func smallBase(tasks int) *ior.Config {
	cfg := ior.PaperConfig(tasks)
	cfg.SegmentCount = 10
	cfg.Reps = 1
	return &cfg
}

func TestExhaustiveFindsPaperOptimum(t *testing.T) {
	plat := quietCab()
	counts := []int{8, 32, 64, 128, 160}
	sizes := []float64{1, 32, 64, 128, 256}
	g, err := Exhaustive(plat, counts, sizes, Options{
		Tasks: 1024, Reps: 1, Base: smallBase(1024),
	})
	if err != nil {
		t.Fatal(err)
	}
	best := g.Best()
	if best.StripeCount != 160 || best.StripeSizeMB != 128 {
		t.Errorf("best = %d × %v MB, paper found 160 × 128 MB (%.0f MB/s grid)",
			best.StripeCount, best.StripeSizeMB, best.MBs)
	}
	// The 1 MB column must be far below the optimum at max stripe count.
	oneMB, ok := g.At(160, 1)
	if !ok {
		t.Fatal("grid missing 160×1")
	}
	if oneMB > best.MBs/2 {
		t.Errorf("160×1MB (%.0f) should trail the optimum (%.0f) badly", oneMB, best.MBs)
	}
}

func TestExhaustiveMonotoneInCount(t *testing.T) {
	plat := quietCab()
	g, err := Exhaustive(plat, []int{8, 16, 32, 64}, []float64{128}, Options{
		Tasks: 1024, Reps: 1, Base: smallBase(1024),
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, c := range g.Counts {
		if g.MBs[i][0] <= prev {
			t.Errorf("count %d: %.0f MB/s not above previous %.0f", c, g.MBs[i][0], prev)
		}
		prev = g.MBs[i][0]
	}
}

func TestGridAt(t *testing.T) {
	g := &Grid{Counts: []int{2, 4}, SizesMB: []float64{1, 2},
		MBs: [][]float64{{10, 20}, {30, 40}}}
	if v, ok := g.At(4, 2); !ok || v != 40 {
		t.Errorf("At(4,2) = %v,%v", v, ok)
	}
	if _, ok := g.At(3, 1); ok {
		t.Error("At(3,1) should miss")
	}
	if _, ok := g.At(2, 7); ok {
		t.Error("At(2,7) should miss")
	}
	best := g.Best()
	if best.StripeCount != 4 || best.StripeSizeMB != 2 || best.MBs != 40 {
		t.Errorf("Best = %+v", best)
	}
}

func TestExhaustiveValidation(t *testing.T) {
	if _, err := Exhaustive(quietCab(), []int{2}, []float64{1}, Options{}); err == nil {
		t.Error("zero tasks accepted")
	}
}

func TestExhaustiveParallelMatchesSerial(t *testing.T) {
	plat := cluster.Cab() // jitter on: identity must survive randomness
	counts := []int{8, 32, 64, 160}
	sizes := []float64{1, 64, 128}
	run := func(par int) *Grid {
		var mu sync.Mutex
		calls := 0
		g, err := Exhaustive(plat, counts, sizes, Options{
			Tasks: 256, Reps: 1, Base: smallBase(256), Parallelism: par,
			Progress: func(done, total int) {
				mu.Lock()
				calls++
				mu.Unlock()
				if total != len(counts)*len(sizes) {
					t.Errorf("progress total = %d", total)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if calls != len(counts)*len(sizes) {
			t.Errorf("progress calls = %d", calls)
		}
		return g
	}
	serial, parallel := run(1), run(8)
	for i := range counts {
		for j := range sizes {
			if serial.MBs[i][j] != parallel.MBs[i][j] {
				t.Fatalf("grid[%d][%d]: %v != %v", i, j, serial.MBs[i][j], parallel.MBs[i][j])
			}
		}
	}
}

func TestExhaustiveCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	_, err := Exhaustive(quietCab(), []int{8, 16, 32, 64}, []float64{1, 64}, Options{
		Tasks: 64, Reps: 1, Base: smallBase(64), Parallelism: 1, Ctx: ctx,
		Progress: func(done, total int) {
			ran = done
			if done == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran > 2 {
		t.Errorf("%d points ran after cancellation", ran)
	}
}

func TestGeneticParallelMatchesSerial(t *testing.T) {
	plat := quietCab()
	run := func(par int) *GAResult {
		res, err := Genetic(plat, GAOptions{
			Options:     Options{Tasks: 64, Reps: 1, Base: smallBase(64), Parallelism: par},
			Population:  4,
			Generations: 3,
			Seed:        7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	if serial.Best != parallel.Best || serial.Evaluations != parallel.Evaluations {
		t.Errorf("GA diverges under parallelism: %+v vs %+v", serial, parallel)
	}
}

func TestGeneticFindsGoodConfig(t *testing.T) {
	plat := quietCab()
	res, err := Genetic(plat, GAOptions{
		Options:     Options{Tasks: 256, Reps: 1, Base: smallBase(256)},
		Population:  6,
		Generations: 4,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The GA should find a configuration well above the default (~313) and
	// use fewer evaluations than the 13×9 full grid.
	if res.Best.MBs < 2000 {
		t.Errorf("GA best = %.0f MB/s, should comfortably beat the default", res.Best.MBs)
	}
	if res.Evaluations >= 13*9 {
		t.Errorf("GA used %d evaluations, should be below the full grid", res.Evaluations)
	}
	if len(res.History) != 4 {
		t.Errorf("history length = %d", len(res.History))
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1] {
			t.Error("GA best-so-far must be non-decreasing (elitism)")
		}
	}
}

func TestGeneticDeterministic(t *testing.T) {
	plat := quietCab()
	run := func() Point {
		res, err := Genetic(plat, GAOptions{
			Options:     Options{Tasks: 64, Reps: 1, Base: smallBase(64)},
			Population:  4,
			Generations: 2,
			Seed:        7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Best
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("GA not deterministic: %+v vs %+v", a, b)
	}
}

func TestGeneticValidation(t *testing.T) {
	if _, err := Genetic(quietCab(), GAOptions{}); err == nil {
		t.Error("zero tasks accepted")
	}
}

func TestCountsUpTo(t *testing.T) {
	got := CountsUpTo(quietCab())
	want := []int{8, 16, 32, 64, 128, 160}
	if len(got) != len(want) {
		t.Fatalf("counts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("counts[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
