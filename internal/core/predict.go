package core

import "math"

// This file extends the paper's metrics from load prediction (Equations
// 1-6) to bandwidth bounds. The paper stops at "load 3 begins to produce
// a noticeable overhead"; given a service curve for how an OST's
// aggregate capacity degrades with sharers, the same occupancy statistics
// yield upper and lower bounds on each job's achievable bandwidth. The
// simulator's measured values should fall between them — and the bounds
// themselves are useful standalone, e.g. for scheduler admission checks.

// ServiceCurve returns an OST's aggregate service capacity in MB/s when
// shared by k independent jobs.
type ServiceCurve func(k int) float64

// LinearThrashCurve builds the service curve used by pfsim's collective
// write class: base/(1+gamma*(k-1)).
func LinearThrashCurve(baseMBs, gamma float64) ServiceCurve {
	return func(k int) float64 {
		if k <= 1 {
			return baseMBs
		}
		return baseMBs / (1 + gamma*float64(k-1))
	}
}

// OnsetThrashCurve builds the superlinear curve of the log-append class:
// base/(1+gamma*max(0,k-onset)^exponent).
func OnsetThrashCurve(baseMBs, gamma, onset, exponent float64) ServiceCurve {
	return func(k int) float64 {
		x := float64(k) - onset
		if x <= 0 {
			return baseMBs
		}
		return baseMBs / (1 + gamma*math.Pow(x, exponent))
	}
}

// BandwidthBounds brackets a contended job's achievable bandwidth.
type BandwidthBounds struct {
	// UpperMBs assumes perfect overlap-tolerance: every one of the job's
	// OSTs delivers its expected fair share simultaneously and the job
	// pipelines across them (sum-of-shares), capped by the job's own
	// dispatch limit.
	UpperMBs float64
	// LowerMBs assumes strict convoy behaviour: the job drains at the
	// rate its most-contended OST sustains, scaled to the full stripe
	// width (tail-bound).
	LowerMBs float64
}

// PredictBandwidth bounds the bandwidth of one job striping over r of
// dtotal OSTs while n-1 identical jobs contend, given the OST service
// curve and the job's dispatch cap (<=0 for uncapped). The expectation
// over sharers uses the binomial occupancy of Equations 2-4.
func PredictBandwidth(dtotal, r, n int, curve ServiceCurve, jobCapMBs float64) BandwidthBounds {
	if r <= 0 || n <= 0 {
		return BandwidthBounds{}
	}
	p := float64(r) / float64(dtotal)
	// Sharer distribution of one of the job's OSTs: 1 + Binomial(n-1, p).
	expShare := 0.0
	for extra := 0; extra < n; extra++ {
		k := extra + 1
		prob := binomialPMF(n-1, extra, p)
		expShare += prob * curve(k) / float64(k)
	}
	upper := float64(r) * expShare
	// Tail: the worst OST among the job's r draws.
	kMax := expectedMaxSharersAmong(dtotal, r, n)
	lower := float64(r) * curve(kMax) / float64(kMax)
	if jobCapMBs > 0 {
		upper = math.Min(upper, jobCapMBs)
		lower = math.Min(lower, jobCapMBs)
	}
	if lower > upper {
		lower = upper
	}
	return BandwidthBounds{UpperMBs: upper, LowerMBs: lower}
}

// expectedMaxSharersAmong estimates the largest sharer count among the r
// OSTs of one job: the smallest k where the expected number of the job's
// OSTs with >= k sharers falls below one half.
func expectedMaxSharersAmong(dtotal, r, n int) int {
	p := float64(r) / float64(dtotal)
	for k := n; k >= 2; k-- {
		// P(one of the job's OSTs has >= k sharers) = P(Binomial(n-1,p) >= k-1).
		tail := 0.0
		for extra := k - 1; extra < n; extra++ {
			tail += binomialPMF(n-1, extra, p)
		}
		if float64(r)*tail >= 0.5 {
			return k
		}
	}
	return 1
}

// PredictPLFSBandwidth bounds an n-rank PLFS application's aggregate
// bandwidth: each rank is a 2-stripe job with a per-rank dispatch cap,
// and the application completes with its slowest rank (tail behaviour is
// not a bound but the expectation, per Section VI).
func PredictPLFSBandwidth(dtotal, ranks int, curve ServiceCurve, rankCapMBs float64) BandwidthBounds {
	if ranks <= 0 {
		return BandwidthBounds{}
	}
	perStreamCap := rankCapMBs / 2
	// Mean sharers per OST: Equation 6. Tail sharers: max over ~dtotal
	// Poisson-ish draws, approximated by mean + 3.2 sigma.
	mean := PLFSLoad(dtotal, ranks)
	sigma := math.Sqrt(mean)
	kTail := int(math.Ceil(mean + 3.2*sigma))
	if kTail < 1 {
		kTail = 1
	}
	kMean := int(math.Round(mean))
	if kMean < 1 {
		kMean = 1
	}
	streamAt := func(k int) float64 {
		s := curve(k) / float64(k)
		if perStreamCap > 0 && s > perStreamCap {
			s = perStreamCap
		}
		return s
	}
	// Aggregate = ranks × 2 streams × per-stream rate, evaluated at the
	// mean (upper) and tail (lower) sharer counts.
	upper := float64(ranks) * 2 * streamAt(kMean)
	lower := float64(ranks) * 2 * streamAt(kTail)
	return BandwidthBounds{UpperMBs: upper, LowerMBs: lower}
}
