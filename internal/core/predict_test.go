package core

import (
	"testing"
)

func TestServiceCurves(t *testing.T) {
	lin := LinearThrashCurve(200, 0.1)
	if lin(1) != 200 {
		t.Errorf("linear k=1: %v", lin(1))
	}
	if got := lin(3); !close2(got, 200/1.2, 1e-9) {
		t.Errorf("linear k=3: %v", got)
	}
	onset := OnsetThrashCurve(288, 0.008, 6, 2.5)
	if onset(6) != 288 || onset(3) != 288 {
		t.Errorf("onset curve should be flat below onset")
	}
	if got := onset(30); got > 20 || got < 5 {
		t.Errorf("onset k=30: %v, want collapse", got)
	}
	// Monotone non-increasing.
	prev := onset(1)
	for k := 2; k <= 40; k++ {
		if cur := onset(k); cur > prev+1e-9 {
			t.Errorf("curve increased at k=%d", k)
		} else {
			prev = cur
		}
	}
}

func TestPredictBandwidthSingleJob(t *testing.T) {
	curve := LinearThrashCurve(210, 0.1)
	// Alone (n=1): both bounds equal r*base, capped by the job limit.
	b := PredictBandwidth(480, 160, 1, curve, 16000)
	if !close2(b.UpperMBs, 16000, 1e-9) || !close2(b.LowerMBs, 16000, 1e-9) {
		t.Errorf("solo bounds = %+v, want cap 16000", b)
	}
	uncapped := PredictBandwidth(480, 160, 1, curve, 0)
	if !close2(uncapped.UpperMBs, 160*210, 1e-6) {
		t.Errorf("solo uncapped upper = %v", uncapped.UpperMBs)
	}
}

func TestPredictBandwidthContention(t *testing.T) {
	curve := LinearThrashCurve(210, 0.1)
	// Four contending 160-stripe jobs: bounds must bracket the paper's
	// ~4,541 MB/s per job... after the shared backbone cap, which the
	// analytic model doesn't know about. Check ordering and sanity
	// instead, then that the paper value respects the upper bound.
	b := PredictBandwidth(480, 160, 4, curve, 15609)
	if b.LowerMBs > b.UpperMBs {
		t.Errorf("bounds inverted: %+v", b)
	}
	if b.LowerMBs <= 0 {
		t.Errorf("lower bound not positive: %+v", b)
	}
	if b.UpperMBs < 4541 {
		t.Errorf("upper bound %v below the paper's measured 4541", b.UpperMBs)
	}
	// Lower (convoy) bound should sit below the measured value.
	if b.LowerMBs > 4541*1.6 {
		t.Errorf("lower bound %v implausibly high", b.LowerMBs)
	}
}

func TestPredictBandwidthMonotoneInJobs(t *testing.T) {
	curve := LinearThrashCurve(210, 0.1)
	prevU, prevL := 1e18, 1e18
	for n := 1; n <= 8; n++ {
		b := PredictBandwidth(480, 160, n, curve, 0)
		if b.UpperMBs > prevU+1e-6 || b.LowerMBs > prevL+1e-6 {
			t.Errorf("n=%d: bounds rose with more contention: %+v", n, b)
		}
		prevU, prevL = b.UpperMBs, b.LowerMBs
	}
}

func TestPredictBandwidthDegenerate(t *testing.T) {
	curve := LinearThrashCurve(210, 0.1)
	if b := PredictBandwidth(480, 0, 4, curve, 0); b.UpperMBs != 0 {
		t.Errorf("r=0 bounds = %+v", b)
	}
	if b := PredictBandwidth(480, 160, 0, curve, 0); b.UpperMBs != 0 {
		t.Errorf("n=0 bounds = %+v", b)
	}
}

func TestPredictPLFSBandwidth(t *testing.T) {
	curve := OnsetThrashCurve(288, 0.008, 6, 2.5)
	// 512 ranks: load ~2.4, well below onset — rank-capped on both sides.
	b512 := PredictPLFSBandwidth(480, 512, curve, 47)
	if !close2(b512.UpperMBs, 512*47, 1) {
		t.Errorf("512 upper = %v, want rank-capped %v", b512.UpperMBs, 512*47)
	}
	// 4,096 ranks: tail-bound collapse. The paper measures ~3,069; the
	// lower bound should land the same decade, far below rank-capped.
	b4096 := PredictPLFSBandwidth(480, 4096, curve, 47)
	if b4096.LowerMBs > 8000 || b4096.LowerMBs < 500 {
		t.Errorf("4096 lower = %v, want collapse ~1-8 GB/s", b4096.LowerMBs)
	}
	if b4096.UpperMBs <= b4096.LowerMBs {
		t.Errorf("bounds inverted: %+v", b4096)
	}
	if z := PredictPLFSBandwidth(480, 0, curve, 47); z.UpperMBs != 0 {
		t.Errorf("0 ranks = %+v", z)
	}
}

func TestExpectedMaxSharersAmong(t *testing.T) {
	// With 4 jobs of 160/480 stripes, Table V shows ~7 OSTs shared by all
	// four jobs, so a job's worst OST is essentially always 4-shared.
	if got := expectedMaxSharersAmong(480, 160, 4); got != 4 {
		t.Errorf("max sharers (R=160) = %d, want 4", got)
	}
	// With R=32 the quadruple overlap vanishes (Table V: 0.0 measured);
	// the typical worst case is 2-3 sharers.
	got := expectedMaxSharersAmong(480, 32, 4)
	if got < 2 || got > 3 {
		t.Errorf("max sharers (R=32) = %d, want 2-3", got)
	}
	if got := expectedMaxSharersAmong(480, 160, 1); got != 1 {
		t.Errorf("solo max sharers = %d", got)
	}
}
