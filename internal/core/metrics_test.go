package core

import (
	"math"
	"testing"
	"testing/quick"

	"pfsim/internal/stats"
)

func close2(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestTable3 checks Equation 2 against the paper's Table III
// (Dtotal=480, R=160).
func TestTable3(t *testing.T) {
	want := []struct {
		jobs   int
		dinuse float64
		dload  float64
	}{
		{1, 160.00, 1.00}, {2, 266.67, 1.20}, {3, 337.78, 1.42},
		{4, 385.19, 1.66}, {5, 416.79, 1.92}, {6, 437.86, 2.19},
		{7, 451.91, 2.48}, {8, 461.27, 2.78}, {9, 467.51, 3.08},
		{10, 471.68, 3.39},
	}
	rows := LoadTable(Lscratchc(), 160, 10)
	for i, w := range want {
		r := rows[i]
		if r.Jobs != w.jobs {
			t.Fatalf("row %d: jobs = %d, want %d", i, r.Jobs, w.jobs)
		}
		if !close2(r.Dinuse, w.dinuse, 0.005) {
			t.Errorf("n=%d: Dinuse = %.2f, want %.2f", w.jobs, r.Dinuse, w.dinuse)
		}
		if !close2(r.Dload, w.dload, 0.0075) {
			t.Errorf("n=%d: Dload = %.2f, want %.2f", w.jobs, r.Dload, w.dload)
		}
		if r.Dreq != 160*w.jobs {
			t.Errorf("n=%d: Dreq = %d, want %d", w.jobs, r.Dreq, 160*w.jobs)
		}
	}
}

// TestTable4 checks Table IV (Dtotal=480, R=64).
func TestTable4(t *testing.T) {
	want := []struct {
		jobs   int
		dinuse float64
		dload  float64
	}{
		{1, 64.00, 1.00}, {2, 119.47, 1.07}, {3, 167.54, 1.15},
		{4, 209.20, 1.22}, {5, 245.31, 1.30}, {6, 276.60, 1.39},
		{7, 303.72, 1.48}, {8, 327.22, 1.57}, {9, 347.59, 1.66},
		{10, 365.25, 1.75},
	}
	for _, w := range want {
		if got := Dinuse(480, 64, w.jobs); !close2(got, w.dinuse, 0.005) {
			t.Errorf("n=%d: Dinuse = %.2f, want %.2f", w.jobs, got, w.dinuse)
		}
		if got := Dload(480, 64, w.jobs); !close2(got, w.dload, 0.0075) {
			t.Errorf("n=%d: Dload = %.2f, want %.2f", w.jobs, got, w.dload)
		}
	}
}

// TestTable6 checks the Stampede prediction (Dtotal=160, R=128), Table VI.
func TestTable6(t *testing.T) {
	want := []struct {
		jobs   int
		dinuse float64
		dload  float64
	}{
		{1, 128.00, 1.00}, {2, 153.60, 1.67}, {3, 158.72, 2.42},
		{4, 159.74, 3.21}, {5, 159.95, 4.00}, {6, 159.99, 4.80},
		{7, 160.00, 5.60}, {8, 160.00, 6.40}, {9, 160.00, 7.20},
		{10, 160.00, 8.00},
	}
	rows := LoadTable(Stampede(), 128, 10)
	for i, w := range want {
		if !close2(rows[i].Dinuse, w.dinuse, 0.005) {
			t.Errorf("n=%d: Dinuse = %.2f, want %.2f", w.jobs, rows[i].Dinuse, w.dinuse)
		}
		if !close2(rows[i].Dload, w.dload, 0.005) {
			t.Errorf("n=%d: Dload = %.2f, want %.2f", w.jobs, rows[i].Dload, w.dload)
		}
	}
}

// TestTable5Predicted checks the "Predicted" Dinuse/Dload columns of
// Table V (4 jobs, varying R).
func TestTable5Predicted(t *testing.T) {
	want := []struct {
		r      int
		dinuse float64
		dload  float64
	}{
		{32, 115.76, 1.11}, {64, 209.20, 1.22}, {96, 283.39, 1.36},
		{128, 341.18, 1.50}, {160, 385.19, 1.66},
	}
	for _, w := range want {
		if got := Dinuse(480, w.r, 4); !close2(got, w.dinuse, 0.01) {
			t.Errorf("R=%d: Dinuse = %.2f, want %.2f", w.r, got, w.dinuse)
		}
		if got := Dload(480, w.r, 4); !close2(got, w.dload, 0.01) {
			t.Errorf("R=%d: Dload = %.2f, want %.2f", w.r, got, w.dload)
		}
	}
}

// TestPLFSLoads checks Equations 5-6 at the scales quoted in Section VI:
// load 2.4 at 512 cores, 3 per OST by 688 cores, 8.53 at 2,048 and 17.06 at
// 4,096.
func TestPLFSLoads(t *testing.T) {
	cases := []struct {
		ranks int
		load  float64
		tol   float64
	}{
		{512, 2.4, 0.05}, {688, 3.0, 0.05}, {2048, 8.53, 0.01}, {4096, 17.06, 0.015},
	}
	for _, c := range cases {
		if got := PLFSLoad(480, c.ranks); !close2(got, c.load, c.tol) {
			t.Errorf("PLFSLoad(480, %d) = %.3f, want %.2f", c.ranks, got, c.load)
		}
	}
	// Table VIII: Dinuse around 418-433 at 512 ranks.
	if got := PLFSDinuse(480, 512); got < 415 || got > 435 {
		t.Errorf("PLFSDinuse(480,512) = %.1f, want ~427", got)
	}
	// Table IX: all 480 OSTs in use at 4,096 ranks.
	if got := PLFSDinuse(480, 4096); got < 479.9 {
		t.Errorf("PLFSDinuse(480,4096) = %.2f, want ~480", got)
	}
}

// TestRecurrenceMatchesClosedForm: Equation 1 with equal requests must equal
// Equation 2 (property test).
func TestRecurrenceMatchesClosedForm(t *testing.T) {
	f := func(rRaw, nRaw, dRaw uint8) bool {
		dtotal := int(dRaw)%960 + 16
		r := int(rRaw)%dtotal + 1
		n := int(nRaw)%12 + 1
		reqs := make([]int, n)
		for i := range reqs {
			reqs[i] = r
		}
		rec := DinuseRecurrence(dtotal, reqs)
		for i := 1; i <= n; i++ {
			if !close2(rec[i-1], Dinuse(dtotal, r, i), 1e-6*float64(dtotal)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDinuseBounds: 0 <= Dinuse <= min(Dtotal, Dreq) and monotone in n.
func TestDinuseBounds(t *testing.T) {
	f := func(rRaw, dRaw uint8) bool {
		dtotal := int(dRaw)%960 + 16
		r := int(rRaw)%dtotal + 1
		prev := 0.0
		for n := 1; n <= 20; n++ {
			d := Dinuse(dtotal, r, n)
			if d < prev-1e-9 { // monotone non-decreasing
				return false
			}
			if d > float64(dtotal)+1e-9 || d > float64(r*n)+1e-9 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDloadAtLeastOne: average load of in-use OSTs is at least 1 and grows
// with n.
func TestDloadAtLeastOne(t *testing.T) {
	f := func(rRaw, dRaw uint8) bool {
		dtotal := int(dRaw)%960 + 16
		r := int(rRaw)%dtotal + 1
		prev := 0.0
		for n := 1; n <= 16; n++ {
			l := Dload(dtotal, r, n)
			if l < 1-1e-9 || l < prev-1e-9 {
				return false
			}
			prev = l
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestExpectedUsageMatchesTable5 compares the analytic occupancy
// distribution with the empirical "OST Usage" columns of Table V (means of
// five real experiments, so tolerances are loose).
func TestExpectedUsageMatchesTable5(t *testing.T) {
	cases := []struct {
		r     int
		usage [4]float64 // OSTs shared by exactly 1,2,3,4 jobs
	}{
		{32, [4]float64{103.2, 11.2, 0.8, 0.0}},
		{64, [4]float64{172.6, 35.8, 3.4, 0.4}},
		{96, [4]float64{199.4, 76.4, 9.8, 0.6}},
		{128, [4]float64{211.6, 111.4, 22.4, 2.6}},
		{160, [4]float64{191.8, 147.0, 41.8, 7.2}},
	}
	for _, c := range cases {
		dist := ExpectedUsageDistribution(480, c.r, 4)
		for m := 1; m <= 4; m++ {
			got := dist[m]
			want := c.usage[m-1]
			tol := 0.12*want + 4 // empirical columns carry sampling noise
			if math.Abs(got-want) > tol {
				t.Errorf("R=%d m=%d: expected usage %.1f, paper %.1f (tol %.1f)", c.r, m, got, want, tol)
			}
		}
	}
}

// TestUsageDistributionSums: the occupancy PMF must sum to Dtotal, and the
// in-use portion must equal Dinuse.
func TestUsageDistributionSums(t *testing.T) {
	f := func(rRaw, nRaw, dRaw uint8) bool {
		dtotal := int(dRaw)%960 + 16
		r := int(rRaw)%dtotal + 1
		n := int(nRaw)%10 + 1
		dist := ExpectedUsageDistribution(dtotal, r, n)
		sum, inUse, stripes := 0.0, 0.0, 0.0
		for m, v := range dist {
			sum += v
			if m > 0 {
				inUse += v
			}
			stripes += float64(m) * v
		}
		return close2(sum, float64(dtotal), 1e-6*float64(dtotal)) &&
			close2(inUse, Dinuse(dtotal, r, n), 1e-5*float64(dtotal)) &&
			close2(stripes, float64(r*n), 1e-5*float64(r*n)+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAssignmentProperties(t *testing.T) {
	rng := stats.NewRNG(42)
	a := Assign(rng, 480, 160, 4)
	if len(a.JobOSTs) != 4 {
		t.Fatalf("jobs = %d", len(a.JobOSTs))
	}
	for j, osts := range a.JobOSTs {
		if len(osts) != 160 {
			t.Fatalf("job %d has %d OSTs", j, len(osts))
		}
		seen := map[int]bool{}
		for _, o := range osts {
			if seen[o] {
				t.Fatalf("job %d repeats OST %d", j, o)
			}
			seen[o] = true
		}
	}
	inUse := a.InUse()
	if inUse < 160 || inUse > 480 {
		t.Errorf("InUse = %d out of range", inUse)
	}
	if got := a.Load(); !close2(got, 640.0/float64(inUse), 1e-9) {
		t.Errorf("Load = %v inconsistent with InUse", got)
	}
	// Histogram totals must agree with InUse and stripe count.
	h := a.UsageHistogram()
	if h.Total() != inUse {
		t.Errorf("usage histogram total %d != inUse %d", h.Total(), inUse)
	}
	stripes := 0
	for m, c := range h.Counts() {
		stripes += m * c
	}
	if stripes != 640 {
		t.Errorf("histogram stripes = %d, want 640", stripes)
	}
	ch := a.CollisionHistogram()
	if ch.Total() != inUse {
		t.Errorf("collision histogram total %d != inUse %d", ch.Total(), inUse)
	}
}

// TestMonteCarloMatchesAnalytic: the MC estimate of Dinuse/Dload and the
// per-sharers distribution should converge to the closed forms.
func TestMonteCarloMatchesAnalytic(t *testing.T) {
	rng := stats.NewRNG(7)
	inUse, load, bySharers := MonteCarloUsage(rng, 480, 160, 4, 400)
	if !close2(inUse, Dinuse(480, 160, 4), 2.5) {
		t.Errorf("MC Dinuse = %.2f, analytic %.2f", inUse, Dinuse(480, 160, 4))
	}
	if !close2(load, Dload(480, 160, 4), 0.02) {
		t.Errorf("MC Dload = %.3f, analytic %.3f", load, Dload(480, 160, 4))
	}
	dist := ExpectedUsageDistribution(480, 160, 4)
	for m := 0; m <= 4; m++ {
		if !close2(bySharers[m], dist[m], 0.05*dist[m]+2.5) {
			t.Errorf("MC sharers[%d] = %.2f, analytic %.2f", m, bySharers[m], dist[m])
		}
	}
}

// TestPLFSCollisionTable8 reproduces Table VIII's shape: 512-rank PLFS run,
// collision histogram close to the paper's five experiments.
func TestPLFSCollisionTable8(t *testing.T) {
	// Paper's five experiments, rows = collisions 0..8 (OSTs with c+1 stripes).
	paperMeans := []float64{124.6, 131.2, 89.2, 51.8, 22.4, 6.4, 1.2, 0.2, 0.2}
	var sums [9]float64
	const trials = 50
	rng := stats.NewRNG(99)
	for tr := 0; tr < trials; tr++ {
		a := PLFSAssignment(rng.Fork(uint64(tr)), 480, 512)
		h := a.CollisionHistogram()
		for c := 0; c < 9; c++ {
			sums[c] += float64(h.Count(c))
		}
	}
	for c, want := range paperMeans {
		got := sums[c] / trials
		tol := 0.15*want + 3
		if math.Abs(got-want) > tol {
			t.Errorf("collisions=%d: mean count %.1f, paper %.1f", c, got, want)
		}
	}
	// Load check: paper reports 2.36-2.45 across experiments.
	a := PLFSAssignment(stats.NewRNG(123), 480, 512)
	if l := a.Load(); l < 2.2 || l > 2.6 {
		t.Errorf("realised PLFS load = %.2f, want ~2.4", l)
	}
}

// TestPLFSCollisionTable9 reproduces Table IX: at 4,096 ranks every OST is
// in use, the load is exactly 17.07 (8192/480), and the histogram spans
// roughly collisions 5..30+ with its mode in the teens.
func TestPLFSCollisionTable9(t *testing.T) {
	a := PLFSAssignment(stats.NewRNG(5), 480, 4096)
	if got := a.InUse(); got != 480 {
		t.Fatalf("InUse = %d, want 480", got)
	}
	if l := a.Load(); !close2(l, 8192.0/480.0, 1e-9) {
		t.Errorf("Load = %v, want 17.07", l)
	}
	h := a.CollisionHistogram()
	if h.Count(0) > 2 || h.Count(1) > 2 {
		t.Errorf("unexpectedly many lightly-loaded OSTs: %v %v", h.Count(0), h.Count(1))
	}
	mode, best := -1, 0
	for c, n := range h.Counts() {
		if n > best {
			best, mode = n, c
		}
	}
	if mode < 12 || mode > 20 {
		t.Errorf("histogram mode at %d collisions, want mid-teens", mode)
	}
}

func TestAssignUneven(t *testing.T) {
	rng := stats.NewRNG(8)
	a := AssignUneven(rng, 480, []int{160, 64, 32})
	if len(a.JobOSTs[0]) != 160 || len(a.JobOSTs[1]) != 64 || len(a.JobOSTs[2]) != 32 {
		t.Errorf("uneven assignment sizes wrong: %d %d %d",
			len(a.JobOSTs[0]), len(a.JobOSTs[1]), len(a.JobOSTs[2]))
	}
	rec := DinuseRecurrence(480, []int{160, 64, 32})
	if rec[0] != 160 {
		t.Errorf("recurrence first = %v, want 160", rec[0])
	}
	// Expected in-use after all three: 480*(1-(1-1/3)(1-64/480)(1-32/480)) complement product.
	want := 480 * (1 - (1-160.0/480)*(1-64.0/480)*(1-32.0/480))
	if !close2(rec[2], want, 1e-9) {
		t.Errorf("recurrence final = %v, want %v", rec[2], want)
	}
}

func TestValidate(t *testing.T) {
	fs := Lscratchc()
	if err := fs.Validate(160); err != nil {
		t.Errorf("Validate(160) = %v", err)
	}
	if err := fs.Validate(161); err == nil {
		t.Errorf("Validate(161) should fail (stripe limit)")
	}
	if err := fs.Validate(0); err == nil {
		t.Errorf("Validate(0) should fail")
	}
	bad := FileSystem{Name: "empty"}
	if err := bad.Validate(1); err == nil {
		t.Errorf("empty fs should fail validation")
	}
	nolimit := FileSystem{Name: "big", TotalOSTs: 100}
	if err := nolimit.Validate(100); err != nil {
		t.Errorf("no-limit fs Validate(100) = %v", err)
	}
	if err := nolimit.Validate(101); err == nil {
		t.Errorf("overrequest should fail")
	}
}

func TestZeroJobEdgeCases(t *testing.T) {
	if got := Dload(480, 160, 0); got != 0 {
		t.Errorf("Dload(n=0) = %v", got)
	}
	if got := PLFSLoad(480, 0); got != 0 {
		t.Errorf("PLFSLoad(0) = %v", got)
	}
	if got := Dinuse(480, 160, 0); got != 0 {
		t.Errorf("Dinuse(n=0) = %v", got)
	}
	inUse, load, dist := MonteCarloUsage(stats.NewRNG(1), 480, 160, 4, 0)
	if inUse != 0 || load != 0 || dist != nil {
		t.Errorf("MC with 0 trials should be zero-valued")
	}
}
