// Package core implements the contention metrics that are the primary
// contribution of Wright & Jarvis, "Quantifying the Effects of Contention on
// Parallel File Systems" (IPDPSW 2015).
//
// A Lustre file system exposes Dtotal object storage targets (OSTs). When a
// job creates a striped file the metadata server assigns it R OSTs chosen
// effectively at random, so concurrent jobs collide on a predictable number
// of targets. The package provides:
//
//   - Equations 1-4: expected number of OSTs in use (Dinuse), total demand
//     (Dreq) and average OST load (Dload) for n concurrent jobs;
//   - Equations 5-6: the same metrics specialised to PLFS, which writes one
//     2-stripe file per rank and therefore behaves like n contending jobs;
//   - exact occupancy distributions and Monte-Carlo assignment simulation
//     for collision histograms (Tables V, VIII and IX of the paper);
//   - quality-of-service helpers that quantify the availability /
//     performance trade-off studied in Section V.
package core

import (
	"fmt"
	"math"

	"pfsim/internal/stats"
)

// FileSystem describes the OST population of a parallel file system for the
// purposes of the contention metrics.
type FileSystem struct {
	// Name identifies the system in reports (e.g. "lscratchc").
	Name string
	// TotalOSTs is Dtotal: the number of object storage targets exposed.
	TotalOSTs int
	// MaxStripeCount is the largest stripe count a single file may use
	// (160 under Lustre 2.4.2, the version limit discussed in the paper).
	MaxStripeCount int
}

// Lscratchc returns the lscratchc file system studied in the paper:
// 480 OSTs behind 32 I/O servers, 160-OST stripe limit.
func Lscratchc() FileSystem {
	return FileSystem{Name: "lscratchc", TotalOSTs: 480, MaxStripeCount: 160}
}

// Stampede returns the Stampede I/O configuration from Behzad et al. [5]
// used for Table VI: 160 OSTs across 58 OSSs.
func Stampede() FileSystem {
	return FileSystem{Name: "stampede", TotalOSTs: 160, MaxStripeCount: 160}
}

// DinuseRecurrence evaluates Equation 1: given the per-job OST request sizes
// requests[0..n-1], it returns the expected number of distinct OSTs in use
// after each job has started. Element i of the result corresponds to
// Dinuse(i+1). Each new job adds its request minus the expected collisions
// with OSTs already in use.
func DinuseRecurrence(dtotal int, requests []int) []float64 {
	out := make([]float64, len(requests))
	inUse := 0.0
	for i, r := range requests {
		rj := float64(r)
		inUse = inUse + (rj - inUse/float64(dtotal)*rj)
		out[i] = inUse
	}
	return out
}

// Dinuse evaluates Equation 2, the closed form of Equation 1 when every job
// requests the same number of OSTs R:
//
//	Dinuse = Dtotal - Dtotal*(1 - R/Dtotal)^n
func Dinuse(dtotal, r, n int) float64 {
	dt := float64(dtotal)
	return dt - dt*math.Pow(1-float64(r)/dt, float64(n))
}

// Dreq evaluates Equation 3: the total number of stripes requested by n jobs
// of R stripes each.
func Dreq(r, n int) int { return r * n }

// Dload evaluates Equation 4: the average load of each in-use OST — total
// requested stripes divided by the expected number of OSTs in use. A load of
// 1 means every in-use OST serves a single job; higher values quantify
// collisions.
func Dload(dtotal, r, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(Dreq(r, n)) / Dinuse(dtotal, r, n)
}

// PLFSDinuse evaluates Equation 5: PLFS creates one data file per rank, each
// striped over the Lustre default of 2 OSTs, so a single n-rank application
// behaves like n jobs with R = 2.
func PLFSDinuse(dtotal, ranks int) float64 { return Dinuse(dtotal, 2, ranks) }

// PLFSLoad evaluates Equation 6: the average OST load induced by an n-rank
// PLFS application.
func PLFSLoad(dtotal, ranks int) float64 {
	if ranks == 0 {
		return 0
	}
	return float64(2*ranks) / PLFSDinuse(dtotal, ranks)
}

// LoadRow is one line of the paper's load tables (Tables III, IV and VI):
// the metrics after n concurrent jobs have started.
type LoadRow struct {
	Jobs   int     // n
	Dinuse float64 // expected OSTs in use
	Dreq   int     // total stripes requested
	Dload  float64 // average load per in-use OST
}

// LoadTable computes rows for 1..maxJobs concurrent jobs each requesting r
// OSTs from fs, reproducing Tables III (R=160), IV (R=64) and VI (Stampede,
// R=128).
func LoadTable(fs FileSystem, r, maxJobs int) []LoadRow {
	rows := make([]LoadRow, 0, maxJobs)
	for n := 1; n <= maxJobs; n++ {
		rows = append(rows, LoadRow{
			Jobs:   n,
			Dinuse: Dinuse(fs.TotalOSTs, r, n),
			Dreq:   Dreq(r, n),
			Dload:  Dload(fs.TotalOSTs, r, n),
		})
	}
	return rows
}

// ExpectedUsageDistribution returns the expected number of OSTs used by
// exactly m of n jobs (m = 0..n) when each job independently receives r
// distinct OSTs out of dtotal. For a single OST the number of jobs using it
// is Binomial(n, r/dtotal); the result is that PMF scaled by dtotal. This is
// the analytic counterpart of the "OST Usage" columns of Table V.
func ExpectedUsageDistribution(dtotal, r, n int) []float64 {
	p := float64(r) / float64(dtotal)
	out := make([]float64, n+1)
	for m := 0; m <= n; m++ {
		out[m] = float64(dtotal) * binomialPMF(n, m, p)
	}
	return out
}

func binomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	// Use logarithms for numeric stability with large n (PLFS cases).
	lg := lnChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lg)
}

func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lgN, _ := math.Lgamma(float64(n + 1))
	lgK, _ := math.Lgamma(float64(k + 1))
	lgNK, _ := math.Lgamma(float64(n - k + 1))
	return lgN - lgK - lgNK
}

// Assignment is one concrete random layout: for each job, the set of OSTs
// the metadata server granted it.
type Assignment struct {
	Dtotal int
	// JobOSTs[j] lists the OSTs assigned to job j (distinct within a job).
	JobOSTs [][]int
}

// Assign simulates the MDS assignment policy: each of n jobs receives r
// distinct OSTs drawn uniformly at random, independently of other jobs
// (matching lscratchc's create-time random placement). It panics if
// r > dtotal.
func Assign(rng *stats.RNG, dtotal, r, n int) Assignment {
	a := Assignment{Dtotal: dtotal, JobOSTs: make([][]int, n)}
	for j := 0; j < n; j++ {
		a.JobOSTs[j] = rng.SampleWithoutReplacement(dtotal, r)
	}
	return a
}

// AssignUneven is Assign for heterogeneous requests, one entry per job.
func AssignUneven(rng *stats.RNG, dtotal int, requests []int) Assignment {
	a := Assignment{Dtotal: dtotal, JobOSTs: make([][]int, len(requests))}
	for j, r := range requests {
		a.JobOSTs[j] = rng.SampleWithoutReplacement(dtotal, r)
	}
	return a
}

// SharersPerOST returns, for every OST, how many jobs include it in their
// layout.
func (a Assignment) SharersPerOST() []int {
	sharers := make([]int, a.Dtotal)
	for _, osts := range a.JobOSTs {
		for _, o := range osts {
			sharers[o]++
		}
	}
	return sharers
}

// InUse returns the number of distinct OSTs used by at least one job.
func (a Assignment) InUse() int {
	n := 0
	for _, s := range a.SharersPerOST() {
		if s > 0 {
			n++
		}
	}
	return n
}

// Load returns the realised average load: total stripes over OSTs in use.
func (a Assignment) Load() float64 {
	inUse := a.InUse()
	if inUse == 0 {
		return 0
	}
	total := 0
	for _, osts := range a.JobOSTs {
		total += len(osts)
	}
	return float64(total) / float64(inUse)
}

// UsageHistogram returns an IntHistogram over the number of sharers per OST
// counting only in-use OSTs, i.e. bucket m holds the number of OSTs used by
// exactly m jobs (m >= 1).
func (a Assignment) UsageHistogram() *stats.IntHistogram {
	h := &stats.IntHistogram{}
	for _, s := range a.SharersPerOST() {
		if s > 0 {
			h.Add(s)
		}
	}
	return h
}

// CollisionHistogram returns the paper's "collision" histogram used in
// Tables VIII and IX: bucket c holds the number of in-use OSTs that
// experience c collisions, where an OST holding s stripes experiences s-1
// collisions.
func (a Assignment) CollisionHistogram() *stats.IntHistogram {
	h := &stats.IntHistogram{}
	for _, s := range a.SharersPerOST() {
		if s > 0 {
			h.Add(s - 1)
		}
	}
	return h
}

// MonteCarloUsage repeats Assign trials times and returns the mean realised
// Dinuse, mean realised Dload, and mean per-sharers OST counts (index m =
// number of jobs sharing, starting at 0). It reproduces the "Actual" columns
// of Table V.
func MonteCarloUsage(rng *stats.RNG, dtotal, r, n, trials int) (meanInUse, meanLoad float64, meanBySharers []float64) {
	if trials <= 0 {
		return 0, 0, nil
	}
	sums := make([]float64, n+1)
	for t := 0; t < trials; t++ {
		a := Assign(rng.Fork(uint64(t)), dtotal, r, n)
		inUse := a.InUse()
		meanInUse += float64(inUse)
		meanLoad += a.Load()
		counts := make([]int, n+1)
		for _, s := range a.SharersPerOST() {
			if s <= n {
				counts[s]++
			} else {
				counts[n]++
			}
		}
		for m := 0; m <= n; m++ {
			sums[m] += float64(counts[m])
		}
	}
	f := float64(trials)
	for m := range sums {
		sums[m] /= f
	}
	return meanInUse / f, meanLoad / f, sums
}

// PLFSAssignment simulates the backend layout of an n-rank PLFS run: each
// rank's data file receives 2 distinct OSTs at random (the system default
// layout observed in the paper).
func PLFSAssignment(rng *stats.RNG, dtotal, ranks int) Assignment {
	return Assign(rng, dtotal, 2, ranks)
}

// Validate reports an error if the file system description or request is
// inconsistent (non-positive sizes, request exceeding the stripe limit or
// the OST population).
func (fs FileSystem) Validate(r int) error {
	if fs.TotalOSTs <= 0 {
		return fmt.Errorf("core: %s has no OSTs", fs.Name)
	}
	if r <= 0 {
		return fmt.Errorf("core: request of %d OSTs is not positive", r)
	}
	if r > fs.TotalOSTs {
		return fmt.Errorf("core: request of %d OSTs exceeds population %d", r, fs.TotalOSTs)
	}
	if fs.MaxStripeCount > 0 && r > fs.MaxStripeCount {
		return fmt.Errorf("core: request of %d OSTs exceeds stripe limit %d", r, fs.MaxStripeCount)
	}
	return nil
}
