package core

import (
	"math"
	"testing"
)

func TestAvailabilityBasics(t *testing.T) {
	fs := Lscratchc()
	q1 := Availability(fs, 160, 1)
	if !close2(q1.FreeOSTs, 320, 1e-9) {
		t.Errorf("one job: free = %v, want 320", q1.FreeOSTs)
	}
	if !close2(q1.Load, 1, 1e-9) {
		t.Errorf("one job: load = %v, want 1", q1.Load)
	}
	if q1.CollisionProb != 0 {
		t.Errorf("one job: collision prob = %v, want 0", q1.CollisionProb)
	}

	q4 := Availability(fs, 160, 4)
	if q4.FreeOSTs >= q1.FreeOSTs {
		t.Errorf("more jobs should leave fewer free OSTs: %v >= %v", q4.FreeOSTs, q1.FreeOSTs)
	}
	if q4.CollisionProb <= 0 || q4.CollisionProb >= 1 {
		t.Errorf("collision prob = %v, want in (0,1)", q4.CollisionProb)
	}
	// Paper: with R=160 and 4 jobs, 7 OSTs are expected to be shared by all
	// four jobs, so the expected max sharers should be 4.
	if q4.ExpectedMaxSharers < 3.5 {
		t.Errorf("ExpectedMaxSharers = %v, want ~4", q4.ExpectedMaxSharers)
	}
}

func TestAvailabilityShrinkingRequests(t *testing.T) {
	// Section V: reducing R improves every availability metric.
	fs := Lscratchc()
	prev := Availability(fs, 160, 4)
	for _, r := range []int{128, 96, 64, 32} {
		cur := Availability(fs, r, 4)
		if cur.FreeOSTs <= prev.FreeOSTs {
			t.Errorf("R=%d: free OSTs %v not better than %v", r, cur.FreeOSTs, prev.FreeOSTs)
		}
		if cur.Load >= prev.Load {
			t.Errorf("R=%d: load %v not better than %v", r, cur.Load, prev.Load)
		}
		if cur.CollisionProb >= prev.CollisionProb {
			t.Errorf("R=%d: collision prob %v not better than %v", r, cur.CollisionProb, prev.CollisionProb)
		}
		prev = cur
	}
}

func TestRecommendRequest(t *testing.T) {
	fs := Lscratchc()
	// Paper: 32 stripes with 4 jobs gives load ~1.11; 160 gives 1.66.
	got := RecommendRequest(fs, 4, 1.2, []int{32, 64, 96, 128, 160})
	if got != 32 {
		t.Errorf("RecommendRequest(load<=1.2) = %d, want 32", got)
	}
	got = RecommendRequest(fs, 4, 1.7, []int{160, 128})
	if got != 160 {
		t.Errorf("RecommendRequest(load<=1.7) = %d, want 160", got)
	}
	if got := RecommendRequest(fs, 10, 1.0, []int{32, 64}); got != 0 {
		t.Errorf("impossible QoS should return 0, got %d", got)
	}
	// Invalid candidates are skipped.
	if got := RecommendRequest(fs, 1, 2.0, []int{0, 9999, 64}); got != 64 {
		t.Errorf("invalid candidates not skipped: got %d", got)
	}
}

func TestMinOSTsForLoad(t *testing.T) {
	// With maxLoad exactly the lscratchc load, the answer should be ~480.
	load := Dload(480, 160, 4)
	got := MinOSTsForLoad(160, 4, load)
	if got < 478 || got > 482 {
		t.Errorf("MinOSTsForLoad = %d, want ~480", got)
	}
	if l := Dload(got, 160, 4); l > load+1e-9 {
		t.Errorf("returned size violates load bound: %v > %v", l, load)
	}
	if got > 160 {
		if l := Dload(got-1, 160, 4); l <= load {
			t.Errorf("result not minimal: %d-1 also satisfies (load %v)", got, l)
		}
	}
	if MinOSTsForLoad(160, 4, 0.5) != -1 {
		t.Errorf("load < 1 must be unachievable")
	}
}

func TestPLFSBreakEvenRanks(t *testing.T) {
	// Paper: by 688 cores there are 3 tasks per OST on lscratchc.
	got := PLFSBreakEvenRanks(480, 3.0)
	if got < 660 || got > 720 {
		t.Errorf("PLFSBreakEvenRanks(480, 3) = %d, want ~688", got)
	}
	if l := PLFSLoad(480, got); l <= 3.0 {
		t.Errorf("load at break-even = %v, should exceed 3", l)
	}
	if l := PLFSLoad(480, got-1); l > 3.0 {
		t.Errorf("load just below break-even = %v, should be <= 3", l)
	}
}

func TestExpectedMaxSharersMonotone(t *testing.T) {
	fs := Lscratchc()
	prev := 0.0
	for n := 1; n <= 8; n++ {
		q := Availability(fs, 160, n)
		if q.ExpectedMaxSharers < prev-1e-9 {
			t.Errorf("n=%d: max sharers %v decreased from %v", n, q.ExpectedMaxSharers, prev)
		}
		if q.ExpectedMaxSharers > float64(n) {
			t.Errorf("n=%d: max sharers %v exceeds job count", n, q.ExpectedMaxSharers)
		}
		prev = q.ExpectedMaxSharers
	}
}

func TestTradeoffPointZeroValue(t *testing.T) {
	var p TradeoffPoint
	if p.Bandwidth != 0 || p.Request != 0 {
		t.Errorf("zero TradeoffPoint not zero")
	}
	if !math.IsNaN(p.QoS.Load) && p.QoS.Load != 0 {
		t.Errorf("zero QoS load = %v", p.QoS.Load)
	}
}
