package core

import "math"

// QoS bundles the availability-oriented metrics discussed in Section V of
// the paper: shrinking each job's stripe request frees OSTs for other users
// of a shared file system at little cost in bandwidth.
type QoS struct {
	// FreeOSTs is the expected number of OSTs not used by any of the n jobs.
	FreeOSTs float64
	// FreeFraction is FreeOSTs / Dtotal.
	FreeFraction float64
	// Load is the average load of in-use OSTs (Equation 4).
	Load float64
	// CollisionProb is the probability that a given in-use OST is shared by
	// at least two jobs.
	CollisionProb float64
	// ExpectedMaxSharers estimates the highest number of jobs sharing any
	// single OST — the straggler that bounds collective write performance.
	ExpectedMaxSharers float64
}

// Availability computes QoS metrics for n jobs each requesting r OSTs from
// fs.
func Availability(fs FileSystem, r, n int) QoS {
	dt := float64(fs.TotalOSTs)
	inUse := Dinuse(fs.TotalOSTs, r, n)
	free := dt - inUse
	dist := ExpectedUsageDistribution(fs.TotalOSTs, r, n)
	shared := 0.0
	for m := 2; m < len(dist); m++ {
		shared += dist[m]
	}
	collisionProb := 0.0
	if inUse > 0 {
		collisionProb = shared / inUse
	}
	return QoS{
		FreeOSTs:           free,
		FreeFraction:       free / dt,
		Load:               Dload(fs.TotalOSTs, r, n),
		CollisionProb:      collisionProb,
		ExpectedMaxSharers: expectedMaxSharers(fs.TotalOSTs, r, n),
	}
}

// expectedMaxSharers approximates E[max over OSTs of sharers]: the smallest
// m such that the expected number of OSTs with >= m sharers drops below 1/2,
// interpolated linearly between integer m for a smooth metric.
func expectedMaxSharers(dtotal, r, n int) float64 {
	dist := ExpectedUsageDistribution(dtotal, r, n)
	// tail[m] = expected #OSTs with >= m sharers
	prevTail := 0.0
	for m := n; m >= 1; m-- {
		tail := prevTail + dist[m]
		if tail >= 0.5 {
			// Between m (tail >= 0.5) and m+1 (prevTail < 0.5).
			if prevTail <= 0 {
				return float64(m)
			}
			// Log interpolation on the tail mass.
			f := (math.Log(tail) - math.Log(0.5)) / (math.Log(tail) - math.Log(prevTail))
			if f < 0 {
				f = 0
			} else if f > 1 {
				f = 1
			}
			return float64(m) + f
		}
		prevTail = tail
	}
	return 0
}

// TradeoffPoint captures one row of the bandwidth/availability trade-off
// (Table V and Figure 4): a per-job request size with its QoS metrics and,
// when measured, the achieved bandwidth.
type TradeoffPoint struct {
	Request   int
	QoS       QoS
	Bandwidth float64 // MB/s per job; 0 when not measured
}

// RecommendRequest returns the smallest per-job stripe request r (from
// candidates) whose predicted load stays at or below maxLoad with n
// concurrent jobs, the paper's prescription for preserving quality of
// service. It returns 0 if no candidate qualifies.
func RecommendRequest(fs FileSystem, n int, maxLoad float64, candidates []int) int {
	for _, r := range candidates {
		if fs.Validate(r) != nil {
			continue
		}
		if Dload(fs.TotalOSTs, r, n) <= maxLoad {
			return r
		}
	}
	return 0
}

// MinOSTsForLoad answers the purchasing question posed in the paper's
// conclusion: how many OSTs must a file system expose so that n jobs each
// striping over r targets experience average load at most maxLoad? It
// returns the smallest such Dtotal found by bisection, or -1 if maxLoad < 1
// (unachievable: load is at least 1 by definition).
func MinOSTsForLoad(r, n int, maxLoad float64) int {
	if maxLoad < 1 {
		return -1
	}
	lo, hi := r, r*n*64
	if Dload(hi, r, n) > maxLoad {
		return -1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if Dload(mid, r, n) <= maxLoad {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// PLFSBreakEvenRanks estimates the rank count at which an n-rank PLFS
// application drives the average OST load beyond maxLoad on a system with
// dtotal OSTs — e.g. the paper notes 3 tasks per OST (reached at 688 ranks
// on lscratchc) still provides "good" performance, while loads of 8.5+
// saturate the system. Returns the smallest rank count whose load exceeds
// maxLoad.
func PLFSBreakEvenRanks(dtotal int, maxLoad float64) int {
	lo, hi := 1, dtotal*1024
	if PLFSLoad(dtotal, hi) <= maxLoad {
		return hi
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if PLFSLoad(dtotal, mid) > maxLoad {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
