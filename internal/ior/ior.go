// Package ior reimplements the IOR benchmark over the simulated MPI-IO
// stack: segmented shared-file or file-per-process workloads, configurable
// block/transfer sizes and repetition counts, with bandwidth accounted the
// way IOR reports it (total bytes over the open-to-close span of the
// slowest rank). Table II of the paper is the PaperConfig preset.
package ior

import (
	"fmt"
	"math"

	"pfsim/internal/cluster"
	"pfsim/internal/core"
	"pfsim/internal/flow"
	"pfsim/internal/lustre"
	"pfsim/internal/mpi"
	"pfsim/internal/mpiio"
	"pfsim/internal/sim"
	"pfsim/internal/stats"
)

// Config describes one IOR execution.
type Config struct {
	// Label names the run in reports.
	Label string
	// API selects the MPI-IO driver.
	API mpiio.Driver
	// BlockSizeMB is the contiguous block each rank writes per segment.
	BlockSizeMB float64
	// TransferSizeMB is the size of each I/O request.
	TransferSizeMB float64
	// SegmentCount is the number of segments (blocks per rank).
	SegmentCount int
	// NumTasks is the number of MPI ranks.
	NumTasks int
	// WriteFile / ReadFile select the phases (Table II: write on, read off).
	WriteFile bool
	ReadFile  bool
	// FilePerProc gives every rank a private file written as a dedicated
	// sequential stream (the Figure 2 benchmark) instead of a shared file.
	FilePerProc bool
	// Collective uses collective buffering for shared files (default
	// true in the paper); false issues independent writes.
	Collective bool
	// Hints are the MPI-IO hints (ad_lustre tuning knobs).
	Hints mpiio.Hints
	// Reps is the number of repetitions; each recreates the file and so
	// redraws its OST layout.
	Reps int
	// ComputeSeconds inserts a compute phase of this many virtual seconds
	// between repetitions. Periodic checkpointers use it to space their
	// writes out in time instead of issuing them back to back.
	ComputeSeconds float64
	// FirstNode places the job on the cluster (jobs in contended
	// experiments occupy disjoint node ranges).
	FirstNode int
	// UseProcShim runs the job's ranks as goroutine-backed processes
	// (sim.Proc) instead of inline engine tasks. The two dispatch modes
	// are byte-identical — same event order, RNG draws, results and
	// solver counters — so this exists for the property tests that prove
	// that equivalence and as an escape hatch during the migration; the
	// zero value (inline tasks) is the fast path.
	UseProcShim bool
}

// PaperConfig returns the Table II configuration: MPI-IO, write-only,
// 4 MB blocks, 1 MB transfers, 100 segments, collective I/O.
func PaperConfig(tasks int) Config {
	return Config{
		Label:          fmt.Sprintf("ior-%d", tasks),
		API:            mpiio.DriverLustre,
		BlockSizeMB:    4,
		TransferSizeMB: 1,
		SegmentCount:   100,
		NumTasks:       tasks,
		WriteFile:      true,
		Collective:     true,
		Hints:          mpiio.NewHints(),
		Reps:           5,
	}
}

// TunedHints returns the optimal configuration found by the paper's
// parameter sweep: 160 stripes of 128 MB.
func TunedHints() mpiio.Hints {
	h := mpiio.NewHints()
	h.StripingFactor = 160
	h.StripingUnitMB = 128
	return h
}

// PerRankMB is the volume each rank writes per phase.
func (c Config) PerRankMB() float64 { return c.BlockSizeMB * float64(c.SegmentCount) }

// TotalMB is the volume the whole job writes per phase.
func (c Config) TotalMB() float64 { return c.PerRankMB() * float64(c.NumTasks) }

// Validate reports the first problem with the configuration for plat.
func (c Config) Validate(plat *cluster.Platform) error {
	switch {
	case c.NumTasks <= 0:
		return fmt.Errorf("ior: NumTasks %d must be positive", c.NumTasks)
	case c.BlockSizeMB <= 0 || c.TransferSizeMB <= 0:
		return fmt.Errorf("ior: block/transfer sizes must be positive")
	case c.TransferSizeMB > c.BlockSizeMB:
		return fmt.Errorf("ior: transfer %v exceeds block %v", c.TransferSizeMB, c.BlockSizeMB)
	case c.SegmentCount <= 0:
		return fmt.Errorf("ior: SegmentCount must be positive")
	case c.Reps <= 0:
		return fmt.Errorf("ior: Reps must be positive")
	case !c.WriteFile && !c.ReadFile:
		return fmt.Errorf("ior: nothing to do (write and read both off)")
	case c.FirstNode < 0:
		return fmt.Errorf("ior: FirstNode must be non-negative")
	case c.ComputeSeconds < 0 || math.IsNaN(c.ComputeSeconds):
		return fmt.Errorf("ior: ComputeSeconds %v must be non-negative", c.ComputeSeconds)
	}
	nodes := plat.NodesFor(c.NumTasks)
	if c.FirstNode+nodes > plat.Nodes {
		return fmt.Errorf("ior: job needs nodes %d..%d but platform has %d",
			c.FirstNode, c.FirstNode+nodes-1, plat.Nodes)
	}
	return nil
}

// Result aggregates the repetitions of one IOR execution.
type Result struct {
	Config Config
	// Write and Read hold per-repetition aggregate bandwidths (MB/s).
	Write *stats.Sample
	Read  *stats.Sample
	// LayoutOSTs records the shared file's OST layout per repetition
	// (nil entries for PLFS, which has per-rank layouts).
	LayoutOSTs [][]int
	// PLFS holds the realised per-rank backend assignment per repetition
	// for PLFS runs.
	PLFS []core.Assignment
}

// PerProcWrite returns write bandwidth divided by task count — the
// per-processor metric of Figure 2.
func (r *Result) PerProcWrite() *stats.Sample {
	out := &stats.Sample{}
	for _, bw := range r.Write.Values() {
		out.Add(bw / float64(r.Config.NumTasks))
	}
	return out
}

// Run executes the configuration on a fresh simulated system and returns
// per-repetition bandwidths. The run is deterministic for a given
// (platform seed, config) pair.
func Run(plat *cluster.Platform, cfg Config) (*Result, error) {
	if err := cfg.Validate(plat); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	sys, err := lustre.NewSystem(eng, plat, stats.NewRNG(plat.Seed).Fork(hashLabel(cfg.Label)))
	if err != nil {
		return nil, err
	}
	res := newResult(cfg)
	job := &job{sys: sys, cfg: cfg, res: res}
	job.launch()
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("ior: simulation failed: %w", err)
	}
	return res, job.err
}

// RunContended executes n simultaneous copies of base on one simulated
// system, each on a disjoint node range, all started at time zero — the
// Section V contention experiments. Jobs repeat their reps back-to-back
// and drift apart naturally, as on the real machine.
func RunContended(plat *cluster.Platform, base Config, n int) ([]*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ior: need at least one job")
	}
	eng := sim.NewEngine()
	sys, err := lustre.NewSystem(eng, plat, stats.NewRNG(plat.Seed).Fork(hashLabel(base.Label)+uint64(n)))
	if err != nil {
		return nil, err
	}
	nodes := plat.NodesFor(base.NumTasks)
	results := make([]*Result, n)
	jobs := make([]*job, n)
	for j := 0; j < n; j++ {
		cfg := base
		cfg.Label = fmt.Sprintf("%s-job%d", base.Label, j)
		cfg.FirstNode = j * nodes
		if err := cfg.Validate(plat); err != nil {
			return nil, err
		}
		results[j] = newResult(cfg)
		jobs[j] = &job{sys: sys, cfg: cfg, res: results[j]}
		jobs[j].launch()
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("ior: contended simulation failed: %w", err)
	}
	for _, jb := range jobs {
		if jb.err != nil {
			return nil, jb.err
		}
	}
	return results, nil
}

// RunJobs executes a heterogeneous set of configurations simultaneously
// on one simulated system. Unlike RunContended, the caller controls each
// job's shape and placement (configs typically come from
// workload.JobMix.Configs). Jobs must not overlap node ranges.
func RunJobs(plat *cluster.Platform, cfgs []Config) ([]*Result, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("ior: no jobs")
	}
	eng := sim.NewEngine()
	seed := hashLabel("runjobs")
	for _, cfg := range cfgs {
		seed ^= hashLabel(cfg.Label)
	}
	sys, err := lustre.NewSystem(eng, plat, stats.NewRNG(plat.Seed).Fork(seed))
	if err != nil {
		return nil, err
	}
	type span struct{ from, to int }
	var spans []span
	results := make([]*Result, len(cfgs))
	jobs := make([]*job, len(cfgs))
	for i, cfg := range cfgs {
		if err := cfg.Validate(plat); err != nil {
			return nil, err
		}
		s := span{cfg.FirstNode, cfg.FirstNode + plat.NodesFor(cfg.NumTasks) - 1}
		for _, other := range spans {
			if s.from <= other.to && other.from <= s.to {
				return nil, fmt.Errorf("ior: job %q overlaps another job's nodes", cfg.Label)
			}
		}
		spans = append(spans, s)
		results[i] = newResult(cfg)
		jobs[i] = &job{sys: sys, cfg: cfg, res: results[i]}
		jobs[i].launch()
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("ior: job-mix simulation failed: %w", err)
	}
	for _, jb := range jobs {
		if jb.err != nil {
			return nil, jb.err
		}
	}
	return results, nil
}

func newResult(cfg Config) *Result {
	return &Result{Config: cfg, Write: &stats.Sample{}, Read: &stats.Sample{}}
}

func hashLabel(s string) uint64 {
	// FNV-1a; labels seed per-run RNG streams deterministically.
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// HashLabel is the RNG-fork key Run derives from a config label. Scenario
// execution reuses it so a single-job scenario reproduces Run exactly.
func HashLabel(s string) uint64 { return hashLabel(s) }

// RunningJob is a job launched on a shared simulated system via StartJob.
type RunningJob struct {
	// Result fills in as repetitions complete.
	Result *Result
	// Done fires when every rank's body has returned.
	Done *sim.Signal
	j    *job
}

// Err reports a failure inside the job's ranks (nil while healthy).
func (r *RunningJob) Err() error { return r.j.err }

// StartJob launches cfg on an existing simulated system at the current
// virtual time. It is the building block for schedulers and custom
// multi-job scenarios; Run and RunContended remain the conveniences for
// one-shot executions.
func StartJob(sys *lustre.System, cfg Config) (*RunningJob, error) {
	if err := cfg.Validate(sys.Platform()); err != nil {
		return nil, err
	}
	res := newResult(cfg)
	j := &job{sys: sys, cfg: cfg, res: res}
	w := j.launch()
	return &RunningJob{Result: res, Done: w.Done(), j: j}, nil
}

// job drives one IOR execution inside a shared simulation.
type job struct {
	sys *lustre.System
	cfg Config
	res *Result
	err error
}

func (j *job) launch() *mpi.World {
	cfg := j.cfg
	w := mpi.NewWorld(j.sys.Engine(), cfg.NumTasks, j.sys.Platform().CoresPerNode, cfg.FirstNode)
	// Shared files are allocated up front so every rank of a repetition
	// uses the same handle; layouts are still drawn at Open time.
	files := make([]*mpiio.File, cfg.Reps)
	if !cfg.FilePerProc {
		for rep := range files {
			files[rep] = mpiio.NewFile(j.sys, w.Comm(),
				fmt.Sprintf("%s.rep%d", cfg.Label, rep), cfg.API, cfg.Hints)
		}
	}
	if cfg.UseProcShim {
		w.Launch(func(r *mpi.Rank) {
			for rep := 0; rep < cfg.Reps; rep++ {
				if rep > 0 && cfg.ComputeSeconds > 0 {
					r.Proc().Sleep(cfg.ComputeSeconds)
				}
				f := files[rep]
				if cfg.FilePerProc {
					sub := w.Comm().Split(r, r.ID(), 0)
					f = mpiio.NewFile(j.sys, sub,
						fmt.Sprintf("%s.rep%d.rank%d", cfg.Label, rep, r.ID()), cfg.API, cfg.Hints)
				}
				if err := j.phase(w, r, f, rep); err != nil && j.err == nil {
					j.err = err
					return
				}
			}
		})
		return w
	}
	w.LaunchTasks(func(r *mpi.Rank, done func()) {
		j.runRepK(w, r, files, 0, done)
	})
	return w
}

// runRepK runs repetition rep and then the next, matching the shim's rep
// loop exactly: the compute gap precedes every repetition but the first,
// a FilePerProc rank splits off its private communicator and file per
// repetition, and a phase error stops this rank only if it is the first
// error of the job.
func (j *job) runRepK(w *mpi.World, r *mpi.Rank, files []*mpiio.File, rep int, done func()) {
	cfg := j.cfg
	if rep >= cfg.Reps {
		done()
		return
	}
	run := func() {
		withFile := func(k func(*mpiio.File)) {
			if cfg.FilePerProc {
				w.Comm().SplitK(r, r.ID(), 0, func(sub *mpi.Comm) {
					k(mpiio.NewFile(j.sys, sub,
						fmt.Sprintf("%s.rep%d.rank%d", cfg.Label, rep, r.ID()), cfg.API, cfg.Hints))
				})
				return
			}
			k(files[rep])
		}
		withFile(func(f *mpiio.File) {
			j.phaseK(w, r, f, func(err error) {
				if err != nil && j.err == nil {
					j.err = err
					done()
					return
				}
				j.runRepK(w, r, files, rep+1, done)
			})
		})
	}
	if rep > 0 && cfg.ComputeSeconds > 0 {
		r.Task().Sleep(cfg.ComputeSeconds, run)
		return
	}
	run()
}

// phase runs the write (and optional read) phase of one repetition,
// recording aggregate bandwidth from rank 0.
func (j *job) phase(w *mpi.World, r *mpi.Rank, f *mpiio.File, rep int) error {
	cfg := j.cfg
	p := r.Proc()
	w.Comm().Barrier(r)
	if cfg.WriteFile {
		t0 := w.Comm().AllreduceMin(r, p.Now())
		if err := j.doOpen(r, f); err != nil {
			return err
		}
		if err := j.doWrite(r, f); err != nil {
			return err
		}
		j.doClose(r, f)
		t1 := w.Comm().AllreduceMax(r, p.Now())
		if w.Comm().RankOf(r) == 0 {
			j.record(j.res.Write, f, t1-t0)
		}
	}
	if cfg.ReadFile {
		w.Comm().Barrier(r)
		t0 := w.Comm().AllreduceMin(r, p.Now())
		if err := j.doRead(r, f); err != nil {
			return err
		}
		t1 := w.Comm().AllreduceMax(r, p.Now())
		if w.Comm().RankOf(r) == 0 {
			j.res.Read.Add(cfg.TotalMB() / (t1 - t0))
		}
	}
	return nil
}

// phaseK is phase for task-mode ranks: the same barrier/reduce brackets
// around open-write-close (and the optional read pass), with rank 0
// recording the aggregate bandwidths.
func (j *job) phaseK(w *mpi.World, r *mpi.Rank, f *mpiio.File, k func(error)) {
	cfg := j.cfg
	t := r.Task()
	readPhase := func() {
		if !cfg.ReadFile {
			k(nil)
			return
		}
		w.Comm().BarrierK(r, func() {
			w.Comm().AllreduceMinK(r, t.Now(), func(t0 float64) {
				f.ReadAllK(r, cfg.PerRankMB(), cfg.TransferSizeMB, func(err error) {
					if err != nil {
						k(err)
						return
					}
					w.Comm().AllreduceMaxK(r, t.Now(), func(t1 float64) {
						if w.Comm().RankOf(r) == 0 {
							j.res.Read.Add(cfg.TotalMB() / (t1 - t0))
						}
						k(nil)
					})
				})
			})
		})
	}
	w.Comm().BarrierK(r, func() {
		if !cfg.WriteFile {
			readPhase()
			return
		}
		w.Comm().AllreduceMinK(r, t.Now(), func(t0 float64) {
			f.OpenK(r, func(err error) {
				if err != nil {
					k(err)
					return
				}
				j.doWriteK(r, f, func(err error) {
					if err != nil {
						k(err)
						return
					}
					f.CloseK(r, func() {
						w.Comm().AllreduceMaxK(r, t.Now(), func(t1 float64) {
							if w.Comm().RankOf(r) == 0 {
								j.record(j.res.Write, f, t1-t0)
							}
							readPhase()
						})
					})
				})
			})
		})
	})
}

func (j *job) doOpen(r *mpi.Rank, f *mpiio.File) error {
	if j.cfg.FilePerProc {
		return f.Open(r) // single-member comm: no cross-rank waiting
	}
	return f.Open(r)
}

func (j *job) doWrite(r *mpi.Rank, f *mpiio.File) error {
	cfg := j.cfg
	per := cfg.PerRankMB()
	switch {
	case cfg.FilePerProc:
		return j.writeFilePerProc(r, f)
	case cfg.Collective:
		return f.WriteAll(r, per, cfg.TransferSizeMB)
	default:
		return f.WriteIndependent(r, per, cfg.TransferSizeMB)
	}
}

// doWriteK is doWrite for task-mode ranks.
func (j *job) doWriteK(r *mpi.Rank, f *mpiio.File, k func(error)) {
	cfg := j.cfg
	per := cfg.PerRankMB()
	switch {
	case cfg.FilePerProc:
		j.writeFilePerProcK(r, f, k)
	case cfg.Collective:
		f.WriteAllK(r, per, cfg.TransferSizeMB, k)
	default:
		f.WriteIndependentK(r, per, cfg.TransferSizeMB, k)
	}
}

// writeFilePerProc streams the rank's data to its private file as a
// dedicated sequential writer — the access pattern of the paper's
// single-OST contention benchmark.
func (j *job) writeFilePerProc(r *mpi.Rank, f *mpiio.File) error {
	layout := f.Layout()
	if layout == nil {
		// PLFS + FilePerProc degenerates to the same per-rank logs.
		return f.WriteAll(r, j.cfg.PerRankMB(), j.cfg.TransferSizeMB)
	}
	p := r.Proc()
	p.WaitAll(flow.Dones(j.sys.StartWrites(j.filePerProcReqs(r, f, layout)))...)
	return nil
}

// writeFilePerProcK is writeFilePerProc for task-mode ranks.
func (j *job) writeFilePerProcK(r *mpi.Rank, f *mpiio.File, k func(error)) {
	layout := f.Layout()
	if layout == nil {
		// PLFS + FilePerProc degenerates to the same per-rank logs.
		f.WriteAllK(r, j.cfg.PerRankMB(), j.cfg.TransferSizeMB, k)
		return
	}
	t := r.Task()
	sim.AwaitAll(t, flow.Dones(j.sys.StartWrites(j.filePerProcReqs(r, f, layout))), func() { k(nil) })
}

// filePerProcReqs builds the rank's dedicated sequential streams onto its
// private file's OSTs.
func (j *job) filePerProcReqs(r *mpi.Rank, f *mpiio.File, layout *lustre.Layout) []lustre.WriteReq {
	shares := layout.BytesPerOST(j.cfg.PerRankMB())
	var reqs []lustre.WriteReq
	for i, mb := range shares {
		if mb <= 0 {
			continue
		}
		ost := j.sys.OST(layout.OSTs[i])
		reqs = append(reqs, lustre.WriteReq{
			Name:   fmt.Sprintf("fpp:%s:r%d:o%d", j.cfg.Label, r.ID(), ost.ID()),
			SizeMB: mb,
			OST:    ost,
			Opts: lustre.WriteOpts{
				Node:   r.Node(),
				Class:  cluster.ClassSequential,
				FileID: fileIDOf(f, r),
				RPCMB:  j.cfg.TransferSizeMB,
			},
		})
	}
	return reqs
}

func fileIDOf(f *mpiio.File, r *mpi.Rank) int {
	if id := f.FileID(); id != 0 {
		return id
	}
	return r.ID() + 1
}

func (j *job) doRead(r *mpi.Rank, f *mpiio.File) error {
	return f.ReadAll(r, j.cfg.PerRankMB(), j.cfg.TransferSizeMB)
}

func (j *job) doClose(r *mpi.Rank, f *mpiio.File) {
	f.Close(r)
}

// record captures bandwidth and layout telemetry for one repetition.
func (j *job) record(sample *stats.Sample, f *mpiio.File, elapsed float64) {
	sample.Add(j.cfg.TotalMB() / elapsed)
	if c := f.Container(); c != nil {
		j.res.PLFS = append(j.res.PLFS, c.Assignment())
		j.res.LayoutOSTs = append(j.res.LayoutOSTs, nil)
		return
	}
	if l := f.Layout(); l != nil {
		osts := make([]int, len(l.OSTs))
		copy(osts, l.OSTs)
		j.res.LayoutOSTs = append(j.res.LayoutOSTs, osts)
	} else {
		j.res.LayoutOSTs = append(j.res.LayoutOSTs, nil)
	}
}
