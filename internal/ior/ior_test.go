package ior

import (
	"testing"

	"pfsim/internal/cluster"
	"pfsim/internal/core"
	"pfsim/internal/lustre"
	"pfsim/internal/mpiio"
	"pfsim/internal/sim"
	"pfsim/internal/stats"
)

func quietCab() *cluster.Platform {
	p := cluster.Cab()
	p.JitterCV = 0
	return p
}

func TestPaperConfig(t *testing.T) {
	cfg := PaperConfig(1024)
	if cfg.PerRankMB() != 400 {
		t.Errorf("per-rank = %v MB, want 400 (4 MB × 100 segments)", cfg.PerRankMB())
	}
	if cfg.TotalMB() != 409600 {
		t.Errorf("total = %v MB, want 409600", cfg.TotalMB())
	}
	if !cfg.WriteFile || cfg.ReadFile {
		t.Error("Table II is write-only")
	}
	if err := cfg.Validate(quietCab()); err != nil {
		t.Errorf("paper config invalid: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	plat := quietCab()
	bad := []func(*Config){
		func(c *Config) { c.NumTasks = 0 },
		func(c *Config) { c.BlockSizeMB = 0 },
		func(c *Config) { c.TransferSizeMB = 0 },
		func(c *Config) { c.TransferSizeMB = c.BlockSizeMB + 1 },
		func(c *Config) { c.SegmentCount = 0 },
		func(c *Config) { c.Reps = 0 },
		func(c *Config) { c.WriteFile = false },
		func(c *Config) { c.FirstNode = -1 },
		func(c *Config) { c.FirstNode = 1199 }, // 64-node job falls off the machine
		func(c *Config) { c.ComputeSeconds = -1 },
	}
	for i, mut := range bad {
		cfg := PaperConfig(1024)
		mut(&cfg)
		if err := cfg.Validate(plat); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestComputeSecondsSpacesReps(t *testing.T) {
	plat := quietCab()
	cfg := PaperConfig(32)
	cfg.Label = "spaced"
	cfg.SegmentCount = 5
	cfg.Reps = 3
	cfg.Hints = TunedHints()
	run := func(compute float64) (reps int, makespan float64) {
		c := cfg
		c.ComputeSeconds = compute
		eng := sim.NewEngine()
		sys := lustre.MustNewSystem(eng, plat, stats.NewRNG(plat.Seed))
		rj, err := StartJob(sys, c)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return rj.Result.Write.N(), eng.Now()
	}
	n0, t0 := run(0)
	n1, t1 := run(200)
	if n0 != 3 || n1 != 3 {
		t.Fatalf("reps = %d / %d, want 3", n0, n1)
	}
	// Two 200 s compute gaps between three reps.
	if got := t1 - t0; got < 399 || got > 401 {
		t.Errorf("compute gaps added %v s, want ~400", got)
	}
}

func TestRunTunedAnchor(t *testing.T) {
	cfg := PaperConfig(1024)
	cfg.Hints = TunedHints()
	cfg.Reps = 3
	res, err := Run(quietCab(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Write.N() != 3 {
		t.Fatalf("reps recorded = %d", res.Write.N())
	}
	mean := res.Write.Mean()
	if mean < 0.8*15609 || mean > 1.2*15609 {
		t.Errorf("tuned mean = %.0f MB/s, want ≈15609", mean)
	}
	// Every rep captured the 160-OST layout.
	if len(res.LayoutOSTs) != 3 {
		t.Fatalf("layouts = %d", len(res.LayoutOSTs))
	}
	for _, l := range res.LayoutOSTs {
		if len(l) != 160 {
			t.Errorf("layout size = %d, want 160", len(l))
		}
	}
}

func TestRunDefaultAnchor(t *testing.T) {
	cfg := PaperConfig(1024)
	cfg.API = mpiio.DriverUFS
	cfg.Reps = 2
	res, err := Run(quietCab(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := res.Write.Mean()
	if mean < 0.75*313 || mean > 1.25*313 {
		t.Errorf("default mean = %.0f MB/s, want ≈313", mean)
	}
}

func TestFilePerProcPinnedOST(t *testing.T) {
	// The Figure 2 benchmark: k writers, each with a private 1-stripe file
	// pinned to the same OST.
	for _, k := range []int{1, 4, 16} {
		cfg := Config{
			Label: "fig2", API: mpiio.DriverLustre,
			BlockSizeMB: 4, TransferSizeMB: 1, SegmentCount: 25,
			NumTasks: k, WriteFile: true, FilePerProc: true,
			Hints: mpiio.Hints{StripingFactor: 1, StripingUnitMB: 1, StripeOffset: 7},
			Reps:  2,
		}
		res, err := Run(quietCab(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		per := res.PerProcWrite().Mean()
		ideal := 288.0 / float64(k)
		if per > ideal*1.01 {
			t.Errorf("k=%d: per-proc %.1f exceeds ideal %.1f", k, per, ideal)
		}
		if per < ideal*0.8 {
			t.Errorf("k=%d: per-proc %.1f too far below ideal %.1f", k, per, ideal)
		}
	}
}

func TestContendedFourJobs(t *testing.T) {
	// Section V headline: four tuned jobs each reach ~4.5 GB/s, a 3-4×
	// drop from the 15.6 GB/s solo peak.
	base := PaperConfig(1024)
	base.Hints = TunedHints()
	base.Reps = 3
	results, err := RunContended(quietCab(), base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for j, res := range results {
		mean := res.Write.Mean()
		if mean < 2500 || mean > 7000 {
			t.Errorf("job %d mean = %.0f MB/s, want ~4500 (contended)", j, mean)
		}
		if mean > 15609.0/2 {
			t.Errorf("job %d mean = %.0f: contention should cost ≥2×", j, mean)
		}
	}
}

func TestContendedJobsOnDisjointNodes(t *testing.T) {
	base := PaperConfig(64)
	base.Reps = 1
	base.Hints = TunedHints()
	results, err := RunContended(quietCab(), base, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, res := range results {
		if seen[res.Config.FirstNode] {
			t.Errorf("jobs share FirstNode %d", res.Config.FirstNode)
		}
		seen[res.Config.FirstNode] = true
	}
}

func TestPLFSRunRecordsAssignment(t *testing.T) {
	cfg := PaperConfig(128)
	cfg.API = mpiio.DriverPLFS
	cfg.Reps = 2
	cfg.SegmentCount = 10 // keep the test fast
	res, err := Run(quietCab(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PLFS) != 2 {
		t.Fatalf("PLFS assignments = %d, want 2", len(res.PLFS))
	}
	for _, a := range res.PLFS {
		if len(a.JobOSTs) != 128 {
			t.Errorf("assignment ranks = %d", len(a.JobOSTs))
		}
		// Realised load should track Equation 6.
		want := core.PLFSLoad(480, 128)
		if got := a.Load(); got < want*0.9 || got > want*1.1 {
			t.Errorf("realised load = %.2f, want ≈%.2f", got, want)
		}
	}
}

func TestReadPhase(t *testing.T) {
	cfg := PaperConfig(64)
	cfg.ReadFile = true
	cfg.Reps = 2
	cfg.SegmentCount = 10
	cfg.Hints = TunedHints()
	res, err := Run(quietCab(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Read.N() != 2 {
		t.Fatalf("read reps = %d", res.Read.N())
	}
	if res.Read.Mean() <= 0 {
		t.Error("read bandwidth not positive")
	}
}

func TestIndependentMode(t *testing.T) {
	cfg := PaperConfig(64)
	cfg.Collective = false
	cfg.Reps = 1
	cfg.SegmentCount = 10
	cfg.Hints.StripingFactor = 64
	cfg.Hints.StripingUnitMB = 16
	res, err := Run(quietCab(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	coll := PaperConfig(64)
	coll.Reps = 1
	coll.SegmentCount = 10
	coll.Hints = cfg.Hints
	collRes, err := Run(quietCab(), coll)
	if err != nil {
		t.Fatal(err)
	}
	if res.Write.Mean() >= collRes.Write.Mean() {
		t.Errorf("independent (%.0f) should underperform collective (%.0f)",
			res.Write.Mean(), collRes.Write.Mean())
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := PaperConfig(128)
	cfg.Reps = 2
	cfg.SegmentCount = 20
	cfg.Hints = TunedHints()
	a, err := Run(quietCab(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quietCab(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	av, bv := a.Write.Values(), b.Write.Values()
	for i := range av {
		if av[i] != bv[i] {
			t.Errorf("rep %d differs: %v vs %v", i, av[i], bv[i])
		}
	}
}

func TestRepsRedrawLayouts(t *testing.T) {
	cfg := PaperConfig(64)
	cfg.Hints = TunedHints()
	cfg.Reps = 3
	cfg.SegmentCount = 5
	res, err := Run(quietCab(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 1; i < len(res.LayoutOSTs); i++ {
		if equalInts(res.LayoutOSTs[i], res.LayoutOSTs[0]) {
			same++
		}
	}
	if same == len(res.LayoutOSTs)-1 {
		t.Error("all repetitions drew identical layouts; files must be recreated")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRunJobsHeterogeneous(t *testing.T) {
	small := PaperConfig(64)
	small.Label = "mix-small"
	small.Reps = 1
	small.SegmentCount = 10
	small.Hints.StripingFactor = 32
	small.Hints.StripingUnitMB = 64
	big := PaperConfig(256)
	big.Label = "mix-big"
	big.Reps = 1
	big.SegmentCount = 10
	big.Hints = TunedHints()
	big.FirstNode = 4 // after the 4-node small job
	results, err := RunJobs(quietCab(), []Config{small, big})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for i, res := range results {
		if res.Write.Mean() <= 0 {
			t.Errorf("job %d produced no bandwidth", i)
		}
	}
	// The bigger, wider-striped job should achieve more bandwidth.
	if results[1].Write.Mean() <= results[0].Write.Mean() {
		t.Errorf("big job (%.0f) should beat small job (%.0f)",
			results[1].Write.Mean(), results[0].Write.Mean())
	}
}

func TestRunJobsRejectsOverlap(t *testing.T) {
	a := PaperConfig(64)
	a.Label = "a"
	a.Reps = 1
	b := PaperConfig(64)
	b.Label = "b"
	b.Reps = 1
	b.FirstNode = 2 // overlaps a's nodes 0-3
	if _, err := RunJobs(quietCab(), []Config{a, b}); err == nil {
		t.Error("overlapping jobs accepted")
	}
	if _, err := RunJobs(quietCab(), nil); err == nil {
		t.Error("empty job list accepted")
	}
}
