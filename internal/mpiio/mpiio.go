// Package mpiio simulates the MPI-IO layer (ROMIO) over the Lustre
// substrate. It provides a collective file API with hints and three ADIO
// drivers:
//
//   - DriverUFS: the generic POSIX driver (ad_ufs). Collective buffering
//     works, but the driver is striping-blind: layout hints are ignored, so
//     files keep the system default layout — the "default MPI-IO"
//     configuration that the paper's 49× improvement is measured against.
//   - DriverLustre: the Lustre driver (ad_lustre). striping_factor,
//     striping_unit and stripe_offset hints reach the MDS at create time
//     and aggregators are mapped group-cyclically onto OSTs.
//   - DriverPLFS: the PLFS driver (ad_plfs). The N-to-1 file becomes N
//     per-rank logs in a backend container (see package plfs).
//
// Collective writes use two-phase I/O: one aggregator per compute node,
// each with a calibrated dispatch capacity, writing stripe-aligned file
// domains. All ranks of the communicator must call the collective methods
// in the same order.
package mpiio

import (
	"fmt"

	"pfsim/internal/cluster"
	"pfsim/internal/flow"
	"pfsim/internal/lustre"
	"pfsim/internal/mpi"
	"pfsim/internal/plfs"
	"pfsim/internal/sim"
)

// Driver selects the ADIO driver backing a file.
type Driver int

const (
	// DriverUFS is the generic POSIX driver (ad_ufs): hints ignored.
	DriverUFS Driver = iota
	// DriverLustre is the Lustre driver (ad_lustre): hints honoured.
	DriverLustre
	// DriverPLFS is the PLFS driver (ad_plfs): per-rank logs.
	DriverPLFS
)

// String names the driver as in ROMIO.
func (d Driver) String() string {
	switch d {
	case DriverUFS:
		return "ad_ufs"
	case DriverLustre:
		return "ad_lustre"
	case DriverPLFS:
		return "ad_plfs"
	default:
		return fmt.Sprintf("driver(%d)", int(d))
	}
}

// Hints mirrors the MPI-IO hints the paper tunes.
type Hints struct {
	// StripingFactor is the stripe count (0 = file system default).
	StripingFactor int
	// StripingUnitMB is the stripe size in MB (0 = default).
	StripingUnitMB float64
	// StripeOffset pins the first OST when positive; zero or negative
	// requests random placement. (Real Lustre allows pinning to OST 0;
	// the simulator sacrifices that corner so the zero value of Hints is
	// safe.)
	StripeOffset int
	// CBNodes caps the number of collective-buffering aggregators
	// (0 = one per compute node, the configuration used in the paper).
	CBNodes int
	// CBBufferMB is the collective buffer size (0 = platform default,
	// 16 MB in the paper).
	CBBufferMB float64
}

// NewHints returns hints with random placement (StripeOffset -1) and all
// other values defaulted.
func NewHints() Hints { return Hints{StripeOffset: -1} }

// File is an open simulated MPI-IO file.
type File struct {
	sys    *lustre.System
	comm   *mpi.Comm
	name   string
	driver Driver
	hints  Hints

	// Lustre/UFS state.
	lf       *lustre.File
	aggLinks []*flow.Link
	aggNodes []int

	// PLFS state.
	container *plfs.Container
	logs      map[int]*plfs.RankLog

	openSig *sim.Signal
	opSeq   map[int]int
	opSigs  map[int]*sim.Signal
	opened  bool
	closed  bool
}

// NewFile prepares a file handle shared by a communicator. It performs no
// simulated work; every rank of comm must then call Open.
func NewFile(sys *lustre.System, comm *mpi.Comm, name string, driver Driver, hints Hints) *File {
	return &File{
		sys:     sys,
		comm:    comm,
		name:    name,
		driver:  driver,
		hints:   hints,
		logs:    make(map[int]*plfs.RankLog),
		openSig: sys.Engine().NewSignal("open:" + name),
		opSeq:   make(map[int]int),
		opSigs:  make(map[int]*sim.Signal),
	}
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Driver returns the backing driver.
func (f *File) Driver() Driver { return f.driver }

// Layout returns the Lustre layout (nil for PLFS files, which have one
// layout per rank log).
func (f *File) Layout() *lustre.Layout {
	if f.lf == nil {
		return nil
	}
	return &f.lf.Layout
}

// Container returns the PLFS container (nil for non-PLFS files).
func (f *File) Container() *plfs.Container { return f.container }

// spec translates hints to a create request, enforcing driver semantics:
// ad_ufs cannot pass striping hints through.
func (f *File) spec() lustre.StripeSpec {
	s := lustre.DefaultSpec()
	if f.driver == DriverLustre {
		s.Count = f.hints.StripingFactor
		s.SizeMB = f.hints.StripingUnitMB
		if f.hints.StripeOffset > 0 {
			s.OffsetOST = f.hints.StripeOffset
		}
	}
	return s
}

// Open opens the file collectively: rank 0 creates it (and, for PLFS, the
// container metadata), every PLFS rank creates its logs, and all ranks
// synchronise before returning — MPI_File_open semantics.
func (f *File) Open(r *mpi.Rank) error {
	p := r.Proc()
	isRoot := f.comm.RankOf(r) == 0
	switch f.driver {
	case DriverPLFS:
		if isRoot {
			f.container = plfs.NewContainer(f.sys, f.name)
			f.container.CreateMeta(p)
			f.openSig.Fire()
		}
		p.Wait(f.openSig)
		rl, err := f.container.OpenRank(p, r.ID())
		if err != nil {
			return err
		}
		f.logs[r.ID()] = rl
	default:
		if isRoot {
			lf, err := f.sys.MDS().Create(p, f.name, f.spec())
			if err != nil {
				return err
			}
			f.lf = lf
			f.buildAggregators()
			f.openSig.Fire()
		}
		p.Wait(f.openSig)
	}
	f.comm.Barrier(r)
	f.opened = true
	return nil
}

// OpenK is Open for task-mode ranks: the same create/fire/await/barrier
// sequence, with the result delivered to k.
func (f *File) OpenK(r *mpi.Rank, k func(error)) {
	t := r.Task()
	isRoot := f.comm.RankOf(r) == 0
	join := func() {
		f.comm.BarrierK(r, func() {
			f.opened = true
			k(nil)
		})
	}
	switch f.driver {
	case DriverPLFS:
		openLog := func() {
			f.openSig.Await(t, func() {
				f.container.OpenRankK(t, r.ID(), func(rl *plfs.RankLog, err error) {
					if err != nil {
						k(err)
						return
					}
					f.logs[r.ID()] = rl
					join()
				})
			})
		}
		if isRoot {
			f.container = plfs.NewContainer(f.sys, f.name)
			f.container.CreateMetaK(t, func() {
				f.openSig.Fire()
				openLog()
			})
			return
		}
		openLog()
	default:
		if isRoot {
			f.sys.MDS().CreateK(t, f.name, f.spec(), func(lf *lustre.File, err error) {
				if err != nil {
					k(err)
					return
				}
				f.lf = lf
				f.buildAggregators()
				f.openSig.Fire()
				join()
			})
			return
		}
		f.openSig.Await(t, join)
	}
}

// buildAggregators creates the collective-buffering dispatch links: one
// aggregator on each distinct compute node of the communicator, bounded by
// the cb_nodes hint. The stripe-aware ad_lustre driver additionally caps
// aggregators at the stripe count (each OST gets a dedicated owner when
// possible) and gains the RPC-pipelining factor for wide stripings; the
// generic ad_ufs driver always uses every node. Capacities carry the
// stripe-size dispatch efficiency and the system's run-to-run jitter.
func (f *File) buildAggregators() {
	plat := f.sys.Platform()
	seen := make(map[int]bool)
	var nodes []int
	for _, wr := range f.comm.WorldRanks() {
		n := f.comm.NodeOfWorldRank(wr)
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	if f.hints.CBNodes > 0 && f.hints.CBNodes < len(nodes) {
		nodes = nodes[:f.hints.CBNodes]
	}
	// The aggregator dispatches in chunks of at most the collective buffer,
	// so a small cb_buffer_size hint throttles dispatch like small stripes.
	chunk := f.lf.Layout.SizeMB
	if cb := f.cbBufferMB(); chunk > cb {
		// Stripes beyond the buffer still stream contiguously per OST; the
		// dirty-window term is governed by the stripe, the per-RPC term by
		// the buffer. Approximate with the buffer-limited chunk only when
		// the buffer is smaller than the platform default.
		if cb < plat.CollBufferMB {
			chunk = cb
		}
	}
	rate := plat.AggregatorMBs * plat.AggregatorEfficiency(chunk)
	if f.driver == DriverLustre {
		if r := f.lf.Layout.StripeCount(); r < len(nodes) {
			nodes = nodes[:r]
		}
		rate *= plat.AggregatorPipelineFactor(f.lf.Layout.StripeCount())
	}
	f.aggNodes = nodes
	f.aggLinks = make([]*flow.Link, len(nodes))
	for i, n := range nodes {
		cap := rate * f.sys.RNG().Jitter(plat.JitterCV)
		// The shard prefix keeps aggregator labels distinct when several
		// file systems with identically labelled jobs share one net.
		f.aggLinks[i] = f.sys.Net().NewLink(
			fmt.Sprintf("%sagg:%s:%d", f.sys.Prefix(), f.name, n), flow.Const(cap))
	}
}

// WriteAll performs a collective write: every rank contributes sizeMB. For
// Lustre/UFS the data moves through two-phase I/O; for PLFS each rank
// appends to its own logs. WriteAll returns when the operation completes
// on every rank.
func (f *File) WriteAll(r *mpi.Rank, sizeMB, transferMB float64) error {
	if err := f.checkWriteAll(sizeMB, transferMB); err != nil {
		return err
	}
	p := r.Proc()
	switch f.driver {
	case DriverPLFS:
		// Collective PLFS write: merge the symmetric per-rank log streams
		// into one flow per OST (see plfs.Container.BatchWrite). The
		// reduction both synchronises the ranks and yields the uniform
		// per-rank volume the merge assumes.
		total := f.comm.AllreduceSum(r, sizeMB)
		sig, idx := f.opSignal(r, "plfswrite")
		if f.comm.RankOf(r) == 0 {
			err := f.container.BatchWrite(p, total/float64(f.comm.Size()), transferMB)
			delete(f.opSigs, idx)
			sig.Fire()
			return err
		}
		p.Wait(sig)
		return nil
	default:
		total := f.comm.AllreduceSum(r, sizeMB)
		sig, idx := f.opSignal(r, "writeall")
		if f.comm.RankOf(r) == 0 {
			f.collectiveWrite(p, total)
			delete(f.opSigs, idx)
			sig.Fire()
			return nil
		}
		p.Wait(sig)
		return nil
	}
}

// WriteAllK is WriteAll for task-mode ranks: the same reduction, the same
// rank-0 rendezvous signal, the result delivered to k.
func (f *File) WriteAllK(r *mpi.Rank, sizeMB, transferMB float64, k func(error)) {
	if err := f.checkWriteAll(sizeMB, transferMB); err != nil {
		k(err)
		return
	}
	t := r.Task()
	switch f.driver {
	case DriverPLFS:
		f.comm.AllreduceSumK(r, sizeMB, func(total float64) {
			sig, idx := f.opSignal(r, "plfswrite")
			if f.comm.RankOf(r) == 0 {
				f.container.BatchWriteK(t, total/float64(f.comm.Size()), transferMB, func(err error) {
					delete(f.opSigs, idx)
					sig.Fire()
					k(err)
				})
				return
			}
			sig.Await(t, func() { k(nil) })
		})
	default:
		f.comm.AllreduceSumK(r, sizeMB, func(total float64) {
			sig, idx := f.opSignal(r, "writeall")
			if f.comm.RankOf(r) == 0 {
				f.collectiveWriteK(t, total, func() {
					delete(f.opSigs, idx)
					sig.Fire()
					k(nil)
				})
				return
			}
			sig.Await(t, func() { k(nil) })
		})
	}
}

func (f *File) checkWriteAll(sizeMB, transferMB float64) error {
	if !f.opened || f.closed {
		return fmt.Errorf("mpiio: WriteAll on %q before Open or after Close", f.name)
	}
	if sizeMB < 0 || transferMB <= 0 {
		return fmt.Errorf("mpiio: bad WriteAll size=%v transfer=%v", sizeMB, transferMB)
	}
	return nil
}

// opSignal returns the rendezvous signal for the rank's next rank-0-led
// collective operation, creating it on first arrival. All ranks issue
// their operations in the same order, so the per-rank sequence number
// matches arrivals of one operation across the communicator.
func (f *File) opSignal(r *mpi.Rank, kind string) (*sim.Signal, int) {
	idx := f.opSeq[r.ID()]
	f.opSeq[r.ID()]++
	sig := f.opSigs[idx]
	if sig == nil {
		sig = f.sys.Engine().NewSignal(fmt.Sprintf("%s:%s:%d", kind, f.name, idx))
		f.opSigs[idx] = sig
	}
	return sig, idx
}

// collectiveWrite launches the two-phase flows for one collective write of
// totalMB and blocks until they drain.
//
// ROMIO divides the file into equal-volume per-aggregator domains, so
// every aggregator carries total/A. With more aggregators than stripes
// (generic ad_ufs at the default 2-stripe layout), aggregator j's domain
// lands on OST j mod R; with at least as many stripes as aggregators
// (stripe-aware ad_lustre, A = min(nodes, R)), aggregator j owns OSTs
// {j, j+A, ...} group-cyclically and spreads its domain evenly across
// them.
func (f *File) collectiveWrite(p *sim.Proc, totalMB float64) {
	if totalMB <= 0 {
		return
	}
	p.WaitAll(flow.Dones(f.sys.StartWrites(f.collectiveReqs(totalMB)))...)
}

// collectiveWriteK is collectiveWrite for task-mode aggregor-root ranks:
// k runs when the two-phase flows drain.
func (f *File) collectiveWriteK(t *sim.Task, totalMB float64, k func()) {
	if totalMB <= 0 {
		k()
		return
	}
	sim.AwaitAll(t, flow.Dones(f.sys.StartWrites(f.collectiveReqs(totalMB))), k)
}

// collectiveReqs builds the per-aggregator two-phase write requests — the
// synchronous domain-decomposition body shared by both dispatch modes.
func (f *File) collectiveReqs(totalMB float64) []lustre.WriteReq {
	layout := f.lf.Layout
	A := len(f.aggLinks)
	R := layout.StripeCount()
	rpc := layout.SizeMB
	if cb := f.cbBufferMB(); rpc > cb {
		rpc = cb
	}
	// All per-aggregator stripe streams open at the same virtual instant,
	// so they are admitted as one batch: a single coalesced rate solve
	// instead of one per stream.
	var reqs []lustre.WriteReq
	add := func(agg int, ost *lustre.OST, mb float64) {
		reqs = append(reqs, lustre.WriteReq{
			Name:   fmt.Sprintf("cw:%s:a%d:o%d", f.name, agg, ost.ID()),
			SizeMB: mb,
			OST:    ost,
			Opts: lustre.WriteOpts{
				Node:   f.aggNodes[agg],
				Class:  cluster.ClassCollective,
				FileID: f.lf.ID,
				RPCMB:  rpc,
				Via:    []*flow.Link{f.aggLinks[agg]},
			},
		})
	}
	domain := totalMB / float64(A)
	if A >= R {
		for j := 0; j < A; j++ {
			add(j, f.sys.OST(layout.OSTs[j%R]), domain)
		}
	} else {
		for j := 0; j < A; j++ {
			owned := (R - j + A - 1) / A // OSTs {j, j+A, ...}
			share := domain / float64(owned)
			for k := j; k < R; k += A {
				add(j, f.sys.OST(layout.OSTs[k]), share)
			}
		}
	}
	return reqs
}

func (f *File) cbBufferMB() float64 {
	if f.hints.CBBufferMB > 0 {
		return f.hints.CBBufferMB
	}
	return f.sys.Platform().CollBufferMB
}

// ReadAll performs a collective read of sizeMB per rank. The fluid model
// is direction-agnostic, so reads exercise the same aggregator and OST
// service paths as writes; PLFS reads replay each rank's log through its
// index (see plfs.RankLog.Read).
func (f *File) ReadAll(r *mpi.Rank, sizeMB, transferMB float64) error {
	if err := f.checkReadAll(sizeMB, transferMB); err != nil {
		return err
	}
	p := r.Proc()
	if f.driver == DriverPLFS {
		rl := f.logs[r.ID()]
		if rl == nil {
			return fmt.Errorf("mpiio: rank %d has no PLFS log", r.ID())
		}
		if err := rl.Read(p, r.Node(), sizeMB); err != nil {
			return err
		}
		f.comm.Barrier(r)
		return nil
	}
	total := f.comm.AllreduceSum(r, sizeMB)
	sig, idx := f.opSignal(r, "readall")
	if f.comm.RankOf(r) == 0 {
		f.collectiveWrite(p, total)
		delete(f.opSigs, idx)
		sig.Fire()
		return nil
	}
	p.Wait(sig)
	return nil
}

// ReadAllK is ReadAll for task-mode ranks.
func (f *File) ReadAllK(r *mpi.Rank, sizeMB, transferMB float64, k func(error)) {
	if err := f.checkReadAll(sizeMB, transferMB); err != nil {
		k(err)
		return
	}
	t := r.Task()
	if f.driver == DriverPLFS {
		rl := f.logs[r.ID()]
		if rl == nil {
			k(fmt.Errorf("mpiio: rank %d has no PLFS log", r.ID()))
			return
		}
		rl.ReadK(t, r.Node(), sizeMB, func(err error) {
			if err != nil {
				k(err)
				return
			}
			f.comm.BarrierK(r, func() { k(nil) })
		})
		return
	}
	f.comm.AllreduceSumK(r, sizeMB, func(total float64) {
		sig, idx := f.opSignal(r, "readall")
		if f.comm.RankOf(r) == 0 {
			f.collectiveWriteK(t, total, func() {
				delete(f.opSigs, idx)
				sig.Fire()
				k(nil)
			})
			return
		}
		sig.Await(t, func() { k(nil) })
	})
}

func (f *File) checkReadAll(sizeMB, transferMB float64) error {
	if !f.opened {
		return fmt.Errorf("mpiio: ReadAll on %q before Open", f.name)
	}
	if sizeMB < 0 || transferMB <= 0 {
		return fmt.Errorf("mpiio: bad ReadAll size=%v transfer=%v", sizeMB, transferMB)
	}
	return nil
}

// FileID returns the backing Lustre file's identity (its lock domain), or
// 0 for PLFS files whose logs carry per-rank identities.
func (f *File) FileID() int {
	if f.lf == nil {
		return 0
	}
	return f.lf.ID
}

// WriteIndependent writes sizeMB from this rank without coordination
// (MPI_File_write_at): the rank's region spreads over the file's stripes,
// and because nothing aligns accesses, each writing rank forms its own
// lock domain on every OST it touches — the cross-client extent-lock
// conflicts collective buffering exists to avoid.
func (f *File) WriteIndependent(r *mpi.Rank, sizeMB, transferMB float64) error {
	if !f.opened || f.closed {
		return fmt.Errorf("mpiio: WriteIndependent on %q before Open or after Close", f.name)
	}
	if f.driver == DriverPLFS {
		rl := f.logs[r.ID()]
		if rl == nil {
			return fmt.Errorf("mpiio: rank %d has no PLFS log", r.ID())
		}
		return rl.Write(r.Proc(), r.Node(), sizeMB, transferMB)
	}
	if sizeMB <= 0 {
		return nil
	}
	p := r.Proc()
	p.WaitAll(flow.Dones(f.sys.StartWrites(f.independentReqs(r, sizeMB, transferMB)))...)
	return nil
}

// WriteIndependentK is WriteIndependent for task-mode ranks.
func (f *File) WriteIndependentK(r *mpi.Rank, sizeMB, transferMB float64, k func(error)) {
	if !f.opened || f.closed {
		k(fmt.Errorf("mpiio: WriteIndependent on %q before Open or after Close", f.name))
		return
	}
	t := r.Task()
	if f.driver == DriverPLFS {
		rl := f.logs[r.ID()]
		if rl == nil {
			k(fmt.Errorf("mpiio: rank %d has no PLFS log", r.ID()))
			return
		}
		rl.WriteK(t, r.Node(), sizeMB, transferMB, k)
		return
	}
	if sizeMB <= 0 {
		k(nil)
		return
	}
	sim.AwaitAll(t, flow.Dones(f.sys.StartWrites(f.independentReqs(r, sizeMB, transferMB))), func() { k(nil) })
}

// independentReqs builds the per-OST streams of one rank's uncoordinated
// write, each in its own lock domain.
func (f *File) independentReqs(r *mpi.Rank, sizeMB, transferMB float64) []lustre.WriteReq {
	layout := f.lf.Layout
	shares := layout.BytesPerOST(sizeMB)
	rpc := transferMB
	if rpc > layout.SizeMB {
		rpc = layout.SizeMB
	}
	// Distinct pseudo-file ID per rank: independent writers conflict.
	lockDomain := f.lf.ID*1_000_000 + r.ID() + 1
	var reqs []lustre.WriteReq
	for k, mb := range shares {
		if mb <= 0 {
			continue
		}
		reqs = append(reqs, lustre.WriteReq{
			Name:   fmt.Sprintf("iw:%s:r%d:o%d", f.name, r.ID(), layout.OSTs[k]),
			SizeMB: mb,
			OST:    f.sys.OST(layout.OSTs[k]),
			Opts: lustre.WriteOpts{
				Node:   r.Node(),
				Class:  cluster.ClassCollective,
				FileID: lockDomain,
				RPCMB:  rpc,
			},
		})
	}
	return reqs
}

// Close closes the file collectively: PLFS ranks flush their index logs,
// rank 0 performs the final metadata update, and all ranks synchronise.
func (f *File) Close(r *mpi.Rank) {
	p := r.Proc()
	if f.driver == DriverPLFS {
		if rl := f.logs[r.ID()]; rl != nil {
			rl.Close(p)
		}
	}
	f.comm.Barrier(r)
	if f.comm.RankOf(r) == 0 && !f.closed {
		f.sys.MDS().Stat(p)
		f.closed = true
	}
	f.comm.Barrier(r)
}

// CloseK is Close for task-mode ranks: log flush, barrier, root metadata
// update, final barrier, then k.
func (f *File) CloseK(r *mpi.Rank, k func()) {
	t := r.Task()
	barriers := func() {
		f.comm.BarrierK(r, func() {
			if f.comm.RankOf(r) == 0 && !f.closed {
				f.sys.MDS().StatK(t, func() {
					f.closed = true
					f.comm.BarrierK(r, k)
				})
				return
			}
			f.comm.BarrierK(r, k)
		})
	}
	if f.driver == DriverPLFS {
		if rl := f.logs[r.ID()]; rl != nil {
			rl.CloseK(t, barriers)
			return
		}
	}
	barriers()
}
