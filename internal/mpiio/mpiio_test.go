package mpiio

import (
	"math"
	"testing"

	"pfsim/internal/cluster"
	"pfsim/internal/lustre"
	"pfsim/internal/mpi"
	"pfsim/internal/sim"
	"pfsim/internal/stats"
)

func testSys(t *testing.T, seed uint64) (*sim.Engine, *lustre.System) {
	t.Helper()
	plat := cluster.Cab()
	plat.JitterCV = 0
	eng := sim.NewEngine()
	sys, err := lustre.NewSystem(eng, plat, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return eng, sys
}

// runJob opens a file, writes per-rank MB collectively, closes, and
// returns the achieved aggregate bandwidth (open-to-close, like IOR).
func runJob(t *testing.T, eng *sim.Engine, sys *lustre.System,
	procs int, driver Driver, hints Hints, perRankMB, transferMB float64) float64 {
	t.Helper()
	w := mpi.NewWorld(eng, procs, sys.Platform().CoresPerNode, 0)
	f := NewFile(sys, w.Comm(), "testfile", driver, hints)
	var start, end float64
	w.Launch(func(r *mpi.Rank) {
		w.Comm().Barrier(r)
		t0 := r.Proc().Now()
		if err := f.Open(r); err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if err := f.WriteAll(r, perRankMB, transferMB); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		f.Close(r)
		start = w.Comm().AllreduceMin(r, t0)
		end = w.Comm().AllreduceMax(r, r.Proc().Now())
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if end <= start {
		t.Fatal("no elapsed time")
	}
	return perRankMB * float64(procs) / (end - start)
}

func TestDriverString(t *testing.T) {
	if DriverUFS.String() != "ad_ufs" || DriverLustre.String() != "ad_lustre" ||
		DriverPLFS.String() != "ad_plfs" {
		t.Error("driver names wrong")
	}
	if Driver(9).String() != "driver(9)" {
		t.Error("unknown driver name wrong")
	}
}

// TestDefaultConfigAnchor: 1,024 processes through ad_ufs with the default
// layout (2 × 1 MB) must land near the paper's 313 MB/s baseline.
func TestDefaultConfigAnchor(t *testing.T) {
	eng, sys := testSys(t, 1)
	bw := runJob(t, eng, sys, 1024, DriverUFS, NewHints(), 400, 1)
	if bw < 0.75*313 || bw > 1.25*313 {
		t.Errorf("default config bandwidth = %.0f MB/s, want ≈313", bw)
	}
}

// TestTunedConfigAnchor: ad_lustre with 160 × 128 MB must land near
// 15,609 MB/s, a ~49× improvement.
func TestTunedConfigAnchor(t *testing.T) {
	eng, sys := testSys(t, 2)
	hints := NewHints()
	hints.StripingFactor = 160
	hints.StripingUnitMB = 128
	bw := runJob(t, eng, sys, 1024, DriverLustre, hints, 400, 1)
	if bw < 0.8*15609 || bw > 1.2*15609 {
		t.Errorf("tuned bandwidth = %.0f MB/s, want ≈15609", bw)
	}

	eng2, sys2 := testSys(t, 3)
	defBW := runJob(t, eng2, sys2, 1024, DriverUFS, NewHints(), 400, 1)
	if factor := bw / defBW; factor < 35 || factor > 65 {
		t.Errorf("improvement factor = %.1f×, want ≈49×", factor)
	}
}

// TestUFSIgnoresHints: ad_ufs with tuning hints must behave like the
// default — the paper's motivating observation that without the Lustre
// driver the file system is underused.
func TestUFSIgnoresHints(t *testing.T) {
	eng, sys := testSys(t, 4)
	hints := NewHints()
	hints.StripingFactor = 160
	hints.StripingUnitMB = 128
	bw := runJob(t, eng, sys, 256, DriverUFS, hints, 400, 1)
	eng2, sys2 := testSys(t, 4)
	defBW := runJob(t, eng2, sys2, 256, DriverUFS, NewHints(), 400, 1)
	if math.Abs(bw-defBW) > 0.05*defBW {
		t.Errorf("ad_ufs with hints %.0f != without %.0f; hints must be ignored", bw, defBW)
	}
}

// TestStripeCountScaling: more OSTs, more bandwidth (until aggregators
// saturate) — the stripe-count axis of Figure 1.
func TestStripeCountScaling(t *testing.T) {
	prev := 0.0
	for _, count := range []int{8, 32, 64, 160} {
		eng, sys := testSys(t, 5)
		hints := NewHints()
		hints.StripingFactor = count
		hints.StripingUnitMB = 128
		bw := runJob(t, eng, sys, 1024, DriverLustre, hints, 400, 1)
		if bw <= prev {
			t.Errorf("count=%d: bandwidth %.0f not above previous %.0f", count, bw, prev)
		}
		prev = bw
	}
}

// TestStripeSizeMatters: 1 MB stripes at count 160 must reach only ~4 GB/s
// (the paper's stripe-size-only limit at max count).
func TestStripeSizeMatters(t *testing.T) {
	eng, sys := testSys(t, 6)
	hints := NewHints()
	hints.StripingFactor = 160
	hints.StripingUnitMB = 1
	bw := runJob(t, eng, sys, 1024, DriverLustre, hints, 400, 1)
	if bw < 0.7*4075 || bw > 1.3*4075 {
		t.Errorf("160×1MB bandwidth = %.0f, want ≈4075", bw)
	}
}

// TestPLFSWriteAll: PLFS at 64 ranks should beat the default ad_ufs (the
// paper's small-scale PLFS win).
func TestPLFSWriteAll(t *testing.T) {
	eng, sys := testSys(t, 7)
	plfsBW := runJob(t, eng, sys, 64, DriverPLFS, NewHints(), 400, 1)
	eng2, sys2 := testSys(t, 7)
	ufsBW := runJob(t, eng2, sys2, 64, DriverUFS, NewHints(), 400, 1)
	if plfsBW <= ufsBW {
		t.Errorf("PLFS (%.0f) should beat default ad_ufs (%.0f) at small scale", plfsBW, ufsBW)
	}
	// And the container must hold one log per rank.
	// (Re-run to inspect: runJob closed over the file internally.)
}

func TestPLFSContainerState(t *testing.T) {
	eng, sys := testSys(t, 8)
	w := mpi.NewWorld(eng, 32, 16, 0)
	f := NewFile(sys, w.Comm(), "plfsfile", DriverPLFS, NewHints())
	w.Launch(func(r *mpi.Rank) {
		if err := f.Open(r); err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if err := f.WriteAll(r, 50, 1); err != nil {
			t.Errorf("write: %v", err)
		}
		f.Close(r)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	c := f.Container()
	if c == nil || c.Ranks() != 32 {
		t.Fatalf("container missing or wrong rank count")
	}
	if c.IndexRecords() != 32*50 {
		t.Errorf("index records = %d, want 1600", c.IndexRecords())
	}
	a := c.Assignment()
	if len(a.JobOSTs) != 32 {
		t.Errorf("assignment ranks = %d", len(a.JobOSTs))
	}
	if f.Layout() != nil {
		t.Error("PLFS file should have no shared layout")
	}
}

func TestWriteBeforeOpenFails(t *testing.T) {
	eng, sys := testSys(t, 9)
	w := mpi.NewWorld(eng, 4, 16, 0)
	f := NewFile(sys, w.Comm(), "x", DriverLustre, NewHints())
	w.Launch(func(r *mpi.Rank) {
		if err := f.WriteAll(r, 10, 1); err == nil {
			t.Error("WriteAll before Open accepted")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBadSizesFail(t *testing.T) {
	eng, sys := testSys(t, 10)
	w := mpi.NewWorld(eng, 2, 16, 0)
	f := NewFile(sys, w.Comm(), "x", DriverLustre, NewHints())
	w.Launch(func(r *mpi.Rank) {
		if err := f.Open(r); err != nil {
			t.Errorf("open: %v", err)
		}
		if err := f.WriteAll(r, -1, 1); err == nil {
			t.Error("negative size accepted")
		}
		w.Comm().Barrier(r)
		if err := f.WriteAll(r, 10, 0); err == nil {
			t.Error("zero transfer accepted")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStripeOffsetPinning(t *testing.T) {
	eng, sys := testSys(t, 11)
	w := mpi.NewWorld(eng, 2, 16, 0)
	hints := NewHints()
	hints.StripingFactor = 1
	hints.StripingUnitMB = 1
	hints.StripeOffset = 77
	f := NewFile(sys, w.Comm(), "pinned", DriverLustre, hints)
	w.Launch(func(r *mpi.Rank) {
		if err := f.Open(r); err != nil {
			t.Errorf("open: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := f.Layout().OSTs[0]; got != 77 {
		t.Errorf("pinned OST = %d, want 77", got)
	}
}

func TestCBNodesHint(t *testing.T) {
	// Limiting aggregators must cut tuned bandwidth roughly linearly.
	eng, sys := testSys(t, 12)
	hints := NewHints()
	hints.StripingFactor = 160
	hints.StripingUnitMB = 128
	hints.CBNodes = 8
	bw := runJob(t, eng, sys, 1024, DriverLustre, hints, 400, 1)
	want := 8 * sys.Platform().AggregatorMBs // ≈ dispatch-bound
	if bw < 0.7*want || bw > 1.2*want {
		t.Errorf("cb_nodes=8 bandwidth = %.0f, want ≈%.0f", bw, want)
	}
}

func TestIndependentSlowerThanCollective(t *testing.T) {
	// Independent shared-file writes create per-rank lock domains and must
	// underperform collective buffering at the same layout.
	hints := NewHints()
	hints.StripingFactor = 64
	hints.StripingUnitMB = 16

	eng, sys := testSys(t, 13)
	w := mpi.NewWorld(eng, 128, 16, 0)
	f := NewFile(sys, w.Comm(), "ind", DriverLustre, hints)
	var indEnd float64
	w.Launch(func(r *mpi.Rank) {
		if err := f.Open(r); err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if err := f.WriteIndependent(r, 100, 1); err != nil {
			t.Errorf("independent write: %v", err)
		}
		f.Close(r)
		indEnd = w.Comm().AllreduceMax(r, r.Proc().Now())
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	eng2, sys2 := testSys(t, 13)
	collBW := runJob(t, eng2, sys2, 128, DriverLustre, hints, 100, 1)
	indBW := 128 * 100 / indEnd
	if indBW >= collBW {
		t.Errorf("independent (%.0f) should be slower than collective (%.0f)", indBW, collBW)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		eng, sys := testSys(t, 99)
		hints := NewHints()
		hints.StripingFactor = 96
		hints.StripingUnitMB = 64
		return runJob(t, eng, sys, 256, DriverLustre, hints, 200, 1)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same-seed runs differ: %v vs %v", a, b)
	}
}

func TestReadAllMirrorsWritePath(t *testing.T) {
	eng, sys := testSys(t, 20)
	w := mpi.NewWorld(eng, 64, 16, 0)
	hints := NewHints()
	hints.StripingFactor = 64
	hints.StripingUnitMB = 64
	f := NewFile(sys, w.Comm(), "rw", DriverLustre, hints)
	var writeTime, readTime float64
	w.Launch(func(r *mpi.Rank) {
		if err := f.Open(r); err != nil {
			t.Errorf("open: %v", err)
			return
		}
		t0 := r.Proc().Now()
		if err := f.WriteAll(r, 100, 1); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		writeTime = w.Comm().AllreduceMax(r, r.Proc().Now()) - t0
		t1 := r.Proc().Now()
		if err := f.ReadAll(r, 100, 1); err != nil {
			t.Errorf("read: %v", err)
			return
		}
		readTime = w.Comm().AllreduceMax(r, r.Proc().Now()) - t1
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Fluid model is direction-agnostic: read and write phases should take
	// nearly identical time on an otherwise idle system.
	if math.Abs(readTime-writeTime) > 0.1*writeTime {
		t.Errorf("read %.3fs vs write %.3fs: phases should match", readTime, writeTime)
	}
}

func TestReadBeforeOpenFails(t *testing.T) {
	eng, sys := testSys(t, 21)
	w := mpi.NewWorld(eng, 2, 16, 0)
	f := NewFile(sys, w.Comm(), "x", DriverLustre, NewHints())
	w.Launch(func(r *mpi.Rank) {
		if err := f.ReadAll(r, 10, 1); err == nil {
			t.Error("ReadAll before Open accepted")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCBBufferHintCapsRPC(t *testing.T) {
	// A small cb_buffer_size forces small RPCs even with large stripes,
	// hurting OST efficiency exactly like small stripes do.
	run := func(cbMB float64) float64 {
		eng, sys := testSys(t, 22)
		hints := NewHints()
		hints.StripingFactor = 2 // OST-bound regime exposes RPC efficiency
		hints.StripingUnitMB = 128
		hints.CBBufferMB = cbMB
		return runJob(t, eng, sys, 64, DriverLustre, hints, 100, 1)
	}
	big := run(16)
	small := run(1)
	if small >= big {
		t.Errorf("1MB cb buffer (%.0f) should underperform 16MB (%.0f)", small, big)
	}
}

func TestPLFSFileIDZero(t *testing.T) {
	eng, sys := testSys(t, 23)
	w := mpi.NewWorld(eng, 4, 16, 0)
	f := NewFile(sys, w.Comm(), "pl", DriverPLFS, NewHints())
	w.Launch(func(r *mpi.Rank) {
		if err := f.Open(r); err != nil {
			t.Errorf("open: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if f.FileID() != 0 {
		t.Errorf("PLFS FileID = %d, want 0", f.FileID())
	}
	if f.Driver() != DriverPLFS || f.Name() != "pl" {
		t.Error("accessors wrong")
	}
}
