package flow

import (
	"fmt"
	"math"
	"testing"

	"pfsim/internal/sim"
)

// TestComponentLifecycle walks the three component transitions: disjoint
// admissions create components, a shared-link admission merges them, and a
// bridging flow's completion splits them again.
func TestComponentLifecycle(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	la := n.NewLink("la", Const(100))
	lb := n.NewLink("lb", Const(100))
	lc := n.NewLink("lc", Const(100))
	a := n.Start("a", 2000, 0, la)
	b := n.Start("b", 2000, 0, lb)
	n.Recompute()
	if got := n.Components(); got != 2 {
		t.Fatalf("disjoint flows: %d components, want 2", got)
	}
	bridge := n.Start("bridge", 500, 0, la, lb)
	n.Recompute()
	if got := n.Components(); got != 1 {
		t.Fatalf("after bridge admission: %d components, want 1 (merged)", got)
	}
	if a.comp != bridge.comp || b.comp != bridge.comp {
		t.Fatal("bridge did not unify the components")
	}
	n.Start("c", 3000, 0, lc)
	n.Recompute()
	if got := n.Components(); got != 2 {
		t.Fatalf("after disjoint third flow: %d components, want 2", got)
	}
	// bridge shares both links (50 MB/s each side): done at t=10, after
	// which a and b must fall back into separate components.
	e.Schedule(11, func() {
		if !bridge.Finished() {
			t.Error("bridge still running at t=11")
		}
		if got := n.Components(); got != 3 {
			t.Errorf("after bridge completion: %d components, want 3 (split)", got)
		}
		if a.comp == b.comp {
			t.Error("a and b still share a component after the bridge retired")
		}
		if err := n.CheckInvariants(); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Components(); got != 0 {
		t.Fatalf("drained net still has %d components", got)
	}
}

// TestSetModelMarksComponentDirty exercises the SetModel paths: with no
// manual Recompute the change takes effect through the coalesced zero-delay
// solve — re-solving only the touched component — and an explicit Recompute
// still forces an immediate full settle. Both solver modes agree.
func TestSetModelMarksComponentDirty(t *testing.T) {
	for _, reference := range []bool{false, true} {
		e := sim.NewEngine()
		n := NewNet(e)
		n.UseReferenceSolver(reference)
		la := n.NewLink("la", Const(100))
		lb := n.NewLink("lb", Const(100))
		f1 := n.Start("f1", 1000, 0, la)
		f2 := n.Start("f2", 1000, 0, lb)
		e.Schedule(5, func() {
			la.SetModel(Const(50)) // no Recompute: coalesced event applies it
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		// f1: 500 MB by t=5, the rest at 50 MB/s -> t=15. f2 untouched: t=10.
		if math.Abs(f1.FinishedAt()-15) > 1e-9 {
			t.Errorf("reference=%v: f1 finished at %v, want 15", reference, f1.FinishedAt())
		}
		if math.Abs(f2.FinishedAt()-10) > 1e-9 {
			t.Errorf("reference=%v: f2 finished at %v, want 10", reference, f2.FinishedAt())
		}
	}
}

// TestSetModelComponentIsolation counts component solves: a capacity
// change in one component must not re-solve (or settle) the other.
func TestSetModelComponentIsolation(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	la := n.NewLink("la", Const(100))
	lb := n.NewLink("lb", Const(100))
	n.Start("f1", 1000, 0, la)
	f2 := n.Start("f2", 1000, 0, lb)
	e.Schedule(5, func() { la.SetModel(Const(50)) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Component solves: 2 at admission (one per component), 1 at the t=5
	// capacity change (la's component only), 0 at the two completion
	// instants (each drains its component). A leak of the t=5 change into
	// f2's component would show up as a third admission-era solve.
	st := n.Stats()
	if st.ComponentsSolved != 3 {
		t.Errorf("components solved = %d, want 3 (f2's component re-solved?)", st.ComponentsSolved)
	}
	// Settles: f1 re-rated at t=5, and each flow settles once at its
	// completion. f2 must never be settled by f1's capacity change.
	if st.FlowsSettled != 3 {
		t.Errorf("flows settled = %d, want 3", st.FlowsSettled)
	}
	if f2.FinishedAt() != 10 {
		t.Errorf("f2 finished at %v, want 10", f2.FinishedAt())
	}
}

// TestSetModelIdleLink: changing an idle link's model is free and applies
// when a flow later crosses it.
func TestSetModelIdleLink(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	l := n.NewLink("idle", Const(100))
	l.SetModel(Const(25))
	f := n.Start("x", 100, 0, l)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.FinishedAt()-4) > 1e-9 {
		t.Errorf("finished at %v, want 4 (new model)", f.FinishedAt())
	}
}

// TestSetModelThenRecompute: an explicit Recompute right after SetModel
// makes the new rates visible immediately, mid-instant.
func TestSetModelThenRecompute(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	l := n.NewLink("pipe", Const(100))
	f := n.Start("x", 1000, 0, l)
	n.Recompute()
	if f.Rate() != 100 {
		t.Fatalf("rate %v, want 100", f.Rate())
	}
	l.SetModel(Const(40))
	n.Recompute()
	if f.Rate() != 40 {
		t.Errorf("rate after SetModel+Recompute = %v, want 40", f.Rate())
	}
	e.Stop()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestLazyAccrualAnchors verifies the accrual contract: flows in untouched
// components are not settled by foreign churn, while telemetry reads
// (Link.Carried, Flow.Remaining) observe exact mid-run values on demand.
func TestLazyAccrualAnchors(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	la := n.NewLink("la", Const(100))
	lb := n.NewLink("lb", Const(100))
	f1 := n.Start("steady", 10000, 0, la)
	// Churn in the other component: a completion every second.
	for i := 0; i < 8; i++ {
		fi := float64(i)
		e.Schedule(fi, func() { n.Start("churn", 100, 0, lb) })
	}
	e.Schedule(5.5, func() {
		if f1.settledAt != 0 {
			t.Errorf("steady flow settled at %v by foreign churn; anchor should still be 0", f1.settledAt)
		}
		if got := f1.Remaining(); math.Abs(got-(10000-550)) > 1e-6 {
			t.Errorf("Remaining() = %v, want 9450", got)
		}
		if got := la.Carried(); math.Abs(got-550) > 1e-6 {
			t.Errorf("Carried() = %v, want 550", got)
		}
		// The read itself settled the flow.
		if f1.settledAt != 5.5 {
			t.Errorf("telemetry read left anchor at %v, want 5.5", f1.settledAt)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := la.Carried(); math.Abs(got-10000) > 1e-6 {
		t.Errorf("final carried %v, want 10000", got)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedComponentCounters: K disjoint star file systems under one
// net. Every component solve must scan only its own shard's flows (~N per
// solve), never the whole population.
func TestShardedComponentCounters(t *testing.T) {
	const shards, flowsPer = 8, 16
	e := sim.NewEngine()
	n := NewNet(e)
	for s := 0; s < shards; s++ {
		bb := n.NewLink(fmt.Sprintf("bb%d", s), Const(500))
		specs := make([]FlowSpec, flowsPer)
		for i := range specs {
			nic := n.NewLink(fmt.Sprintf("nic%d_%d", s, i), Const(100))
			specs[i] = FlowSpec{Name: "f", SizeMB: float64(100 + 10*i + s), Path: []*Link{nic, bb}}
		}
		n.StartBatch(specs)
	}
	n.Recompute()
	if got := n.Components(); got != shards {
		t.Fatalf("%d components, want %d", got, shards)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	perSolve := float64(st.ComponentFlowsScanned) / float64(st.ComponentsSolved)
	if perSolve > flowsPer {
		t.Errorf("component solves scan %.1f flows on average; want <= shard size %d (population %d)",
			perSolve, flowsPer, shards*flowsPer)
	}
}
