// Package flow implements a fluid network model on top of the sim engine,
// in the style of SimGrid: transfers are flows over a path of links, every
// link has a (possibly stream-count-dependent) capacity in MB/s, and active
// flows receive max-min fair rates computed by progressive filling. When
// the set of flows or a capacity changes, rates are recomputed and the next
// completion event is rescheduled. Contention between I/O jobs — the
// subject of the reproduced paper — is exactly the sharing of OST, server
// and network links between concurrent flows.
//
// # Solver cost
//
// The solver is the hot path of every experiment, so it avoids two
// superlinear costs the naive formulation pays:
//
//   - Same-instant coalescing: flow arrivals and completions do not solve
//     immediately. They update the admission state eagerly and schedule one
//     zero-delay "solver dirty" event, so a 1,024-rank collective that opens
//     all its stripe streams in one virtual instant triggers a single
//     progressive-filling pass instead of 1,024. Rates are only ever *read*
//     across a positive time interval, and the dirty event fires before
//     virtual time advances, so trajectories are byte-identical to solving
//     on every change.
//
//   - Active-link tracking: progressive filling touches only links that
//     currently carry flows (Net.activeLinks, maintained incrementally as
//     flows start and finish). Idle links — the common case: most NICs and
//     OSTs are untouched by a given change — are never scanned. Links with
//     no crossing flows cannot constrain any rate, so the allocation is
//     identical to a full scan.
//
//   - Unfixed-flow lists: each progressive-filling round walks an explicit
//     list of still-unfixed flows (compacted in admission order as rates
//     are pinned) instead of rescanning the whole active population, so a
//     solve with many rate-fixing rounds costs the sum of the shrinking
//     round sizes rather than rounds × flows.
//
//   - Completion heap: the next completion event comes from an indexed
//     min-heap of flow completion times, re-keyed only when a solve
//     assigns a flow a different finish time and rebuilt wholesale when
//     most keys move. Scheduling the next event is a peek at the root
//     instead of a scan over every active flow, and the engine event is
//     moved in place (sim.Engine.Reschedule) rather than cancelled and
//     reposted.
//
// UseReferenceSolver restores the naive behaviour (full link scans, one
// solve per change, linear completion scans); the property tests use it as
// the oracle and the benchmarks as the before/after baseline. Stats
// reports solver work for both modes.
package flow

import (
	"container/heap"
	"fmt"
	"math"

	"pfsim/internal/sim"
)

// epsilonMB is the residual byte count (in MB) below which a flow is
// considered complete.
const epsilonMB = 1e-9

// CapacityModel yields a link's total capacity in MB/s given the number of
// concurrent flows crossing it. Implementations model effects such as disk
// seek thrash, where aggregate throughput degrades as streams are added.
type CapacityModel interface {
	Capacity(streams int) float64
}

// Const is a stream-count-independent capacity in MB/s.
type Const float64

// Capacity implements CapacityModel.
func (c Const) Capacity(int) float64 { return float64(c) }

// Thrash models a resource whose aggregate throughput degrades with
// concurrent streams: Capacity(k) = Base / (1 + Gamma*(k-1)). Gamma = 0 is
// a constant-capacity link; disks under competing streams have Gamma > 0.
type Thrash struct {
	Base  float64 // MB/s with a single stream
	Gamma float64 // degradation per additional stream
}

// Capacity implements CapacityModel.
func (t Thrash) Capacity(streams int) float64 {
	if streams <= 1 {
		return t.Base
	}
	return t.Base / (1 + t.Gamma*float64(streams-1))
}

// Link is a shared resource flows traverse.
type Link struct {
	name  string
	model CapacityModel

	active    int     // flows currently crossing the link
	activeIdx int     // position in Net.activeLinks; -1 while idle
	carried   float64 // MB carried so far (telemetry)

	// scratch used during rate computation
	residual  float64
	unfixed   int
	saturated bool
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Active reports the number of flows currently crossing the link.
func (l *Link) Active() int { return l.active }

// Carried reports the cumulative MB transported over the link.
func (l *Link) Carried() float64 { return l.carried }

// SetModel replaces the capacity model. Callers must invoke Net.Recompute
// afterwards for the change to take effect immediately.
func (l *Link) SetModel(m CapacityModel) { l.model = m }

// Model returns the current capacity model.
func (l *Link) Model() CapacityModel { return l.model }

// Flow is an in-progress transfer.
type Flow struct {
	name      string
	remaining float64 // MB
	size      float64 // MB, original
	path      []*Link
	maxRate   float64 // MB/s; <= 0 means unlimited
	rate      float64
	started   float64
	finishAt  float64
	finished  bool

	// Completion-heap bookkeeping (incremental mode only).
	due     float64 // absolute time the flow drains at its current rate; +Inf when stalled
	heapIdx int     // position in Net.completions; -1 while not queued
	seq     int64   // admission order, tie-break for equal due times

	// Done fires when the transfer completes.
	Done *sim.Signal
	// onDone, if set, runs synchronously at completion before Done fires —
	// used to deregister streams from capacity models so the post-completion
	// rate recomputation sees the updated state.
	onDone func()
}

// Name returns the flow's name.
func (f *Flow) Name() string { return f.name }

// Rate returns the current allocated rate in MB/s. Within a virtual
// instant the value may be stale until the coalesced solve fires; call
// Net.Recompute first when reading rates outside the engine loop.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the MB left to transfer.
func (f *Flow) Remaining() float64 { return f.remaining }

// Size returns the original transfer size in MB.
func (f *Flow) Size() float64 { return f.size }

// Finished reports completion.
func (f *Flow) Finished() bool { return f.finished }

// Started returns the virtual time the flow was started.
func (f *Flow) Started() float64 { return f.started }

// FinishedAt returns the completion time (0 until finished).
func (f *Flow) FinishedAt() float64 { return f.finishAt }

// Observer receives flow lifecycle callbacks; see Net.Observe. Callbacks
// run synchronously inside the engine, so implementations must not block.
type Observer interface {
	// FlowStarted fires when a flow is admitted (before its first rate
	// assignment; zero-sized flows report with their completion).
	FlowStarted(f *Flow)
	// FlowFinished fires when a flow drains.
	FlowFinished(f *Flow)
}

// Stats counts solver work; see Net.Stats. The visit counters are the
// machine-independent cost metric the solver benchmarks report.
type Stats struct {
	// Solves is the number of progressive-filling passes performed.
	Solves int64
	// LinkVisits is the number of link records examined across all passes
	// (initialisation, share search and saturation marking).
	LinkVisits int64
	// Coalesced is the number of recompute requests absorbed by an
	// already-pending solve event.
	Coalesced int64
	// Rounds is the number of rate-fixing rounds across all passes.
	Rounds int64
	// FlowsScanned is the number of flow records examined across
	// rate-fixing rounds. The incremental solver touches only still-unfixed
	// flows per round (the sum of the shrinking unfixed-list lengths); the
	// reference solver rescans the whole active population every round
	// (Rounds × active flows), which is the cost the benchmarks compare
	// against.
	FlowsScanned int64
	// HeapOps is the number of completion-heap element operations: pushes,
	// removals, per-flow re-keys and per-entry rebuild work. Zero in
	// reference mode, which scans every active flow to find the next
	// completion instead.
	HeapOps int64
}

// FlowSpec describes one flow for StartBatch.
type FlowSpec struct {
	// Name labels the flow.
	Name string
	// SizeMB is the transfer volume; zero-sized flows complete immediately.
	SizeMB float64
	// MaxRate optionally caps the flow (MB/s); <= 0 means unlimited.
	MaxRate float64
	// OnDone, if set, runs synchronously at completion before Done fires.
	OnDone func()
	// Path is the link path the flow traverses.
	Path []*Link
}

// Net is a fluid network bound to a sim engine.
type Net struct {
	eng         *sim.Engine
	links       []*Link
	activeLinks []*Link // links with at least one crossing flow
	active      []*Flow
	lastUpdate  float64
	nextEv      *sim.Event
	dirtyEv     *sim.Event // pending coalesced solve at the current instant
	observer    Observer
	reference   bool    // solve eagerly with full link scans (oracle mode)
	satScratch  []*Link // reused saturation list, avoids per-round scans
	stats       Stats

	completions    compHeap    // active flows ordered by (due, seq); incremental mode only
	dueChanged     []dueChange // completion keys moved by the in-progress solve
	unfixedScratch []*Flow     // reused unfixed-flow list for progressive filling
	flowSeq        int64       // admission counter feeding Flow.seq
}

// dueChange stages one completion-heap re-key. Keys are applied one at a
// time (or in bulk via a rebuild) after the solve, never mid-heap-repair,
// so every heap.Fix sees a heap that was valid before its single change.
type dueChange struct {
	f   *Flow
	due float64
}

// compHeap is an indexed min-heap of active flows ordered by completion
// time, ties broken by admission order. It implements container/heap.
type compHeap []*Flow

func (h compHeap) Len() int { return len(h) }
func (h compHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}
func (h compHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *compHeap) Push(x any) {
	f := x.(*Flow)
	f.heapIdx = len(*h)
	*h = append(*h, f)
}
func (h *compHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = nil
	f.heapIdx = -1
	*h = old[:n-1]
	return f
}

// Observe installs an observer (nil to remove).
func (n *Net) Observe(o Observer) { n.observer = o }

// NewNet creates an empty network on eng.
func NewNet(eng *sim.Engine) *Net {
	return &Net{eng: eng}
}

// Engine returns the engine the network is bound to.
func (n *Net) Engine() *sim.Engine { return n.eng }

// NewLink adds a link with the given capacity model.
func (n *Net) NewLink(name string, model CapacityModel) *Link {
	l := &Link{name: name, model: model, activeIdx: -1}
	n.links = append(n.links, l)
	return l
}

// ActiveFlows reports the number of unfinished flows.
func (n *Net) ActiveFlows() int { return len(n.active) }

// ActiveLinks reports the number of links currently carrying flows.
func (n *Net) ActiveLinks() int { return len(n.activeLinks) }

// Stats returns the accumulated solver work counters.
func (n *Net) Stats() Stats { return n.stats }

// ResetStats zeroes the solver work counters.
func (n *Net) ResetStats() { n.stats = Stats{} }

// UseReferenceSolver switches the network to the naive solver: one full
// progressive-filling pass over every link on every flow arrival,
// completion and capacity change, with no same-instant coalescing and a
// linear scan for the next completion. It exists as the correctness
// oracle for the incremental solver and as the baseline the solver
// benchmarks measure against; simulations produce byte-identical results
// in either mode. Switching with flows in flight rebuilds the completion
// heap and recomputes, so the mode change is safe at any instant.
func (n *Net) UseReferenceSolver(on bool) {
	if on == n.reference {
		return
	}
	n.reference = on
	n.dueChanged = n.dueChanged[:0]
	for i := range n.completions {
		n.completions[i].heapIdx = -1
		n.completions[i] = nil
	}
	n.completions = n.completions[:0]
	if !on {
		for _, f := range n.active {
			f.due = math.Inf(1)
			f.heapIdx = len(n.completions)
			n.completions = append(n.completions, f)
		}
		if len(n.active) > 0 {
			n.Recompute() // refresh completion keys and reschedule off the heap
		}
	}
}

// Start launches a transfer of sizeMB over path with an optional per-flow
// rate cap (maxRate <= 0 means unlimited). Zero-sized flows complete at the
// current instant. The returned flow's Done signal fires on completion.
func (n *Net) Start(name string, sizeMB, maxRate float64, path ...*Link) *Flow {
	return n.StartFunc(name, sizeMB, maxRate, nil, path...)
}

// StartFunc is Start with a completion callback, invoked synchronously when
// the flow drains (immediately for zero-sized flows), before Done fires and
// before rates are recomputed.
func (n *Net) StartFunc(name string, sizeMB, maxRate float64, onDone func(), path ...*Link) *Flow {
	if sizeMB > epsilonMB {
		// Zero-sized flows never advance accounting: they existed for no
		// interval, and charging the elapsed time here would split the
		// integration interval other flows see.
		n.advance()
	}
	return n.admit(FlowSpec{Name: name, SizeMB: sizeMB, MaxRate: maxRate, OnDone: onDone, Path: path})
}

// StartBatch admits a set of flows in one operation — the entry point for
// collectives that open all their stripe streams at once (two-phase
// writes, PLFS log storms, file-per-process fans). The batch charges
// elapsed time once and requests a single coalesced solve, so its cost is
// O(flows) bookkeeping plus one progressive-filling pass regardless of
// batch width. Flows are admitted (and observers notified) in spec order,
// exactly as the equivalent StartFunc sequence would.
func (n *Net) StartBatch(specs []FlowSpec) []*Flow {
	for i := range specs {
		if specs[i].SizeMB > epsilonMB {
			n.advance() // once: later calls in this instant see dt == 0
			break
		}
	}
	out := make([]*Flow, len(specs))
	for i := range specs {
		out[i] = n.admit(specs[i])
	}
	return out
}

// admit adds one flow at the current instant: accounting is applied
// eagerly, the rate solve is deferred to the coalesced dirty event.
// Callers must advance() first.
func (n *Net) admit(sp FlowSpec) *Flow {
	if sp.SizeMB < 0 || math.IsNaN(sp.SizeMB) {
		panic(fmt.Sprintf("flow: bad size %v for %q", sp.SizeMB, sp.Name))
	}
	n.flowSeq++
	f := &Flow{
		name:      sp.Name,
		remaining: sp.SizeMB,
		size:      sp.SizeMB,
		path:      sp.Path,
		maxRate:   sp.MaxRate,
		started:   n.eng.Now(),
		Done:      n.eng.NewSignal("flow:" + sp.Name),
		onDone:    sp.OnDone,
		due:       math.Inf(1),
		heapIdx:   -1,
		seq:       n.flowSeq,
	}
	if sp.SizeMB <= epsilonMB {
		f.finished = true
		f.finishAt = n.eng.Now()
		if f.onDone != nil {
			f.onDone()
		}
		if n.observer != nil {
			n.observer.FlowStarted(f)
			n.observer.FlowFinished(f)
		}
		f.Done.Fire()
		return f
	}
	if len(sp.Path) == 0 && sp.MaxRate <= 0 {
		panic(fmt.Sprintf("flow: %q has no path and no rate cap; would complete instantaneously", sp.Name))
	}
	n.active = append(n.active, f)
	for _, l := range f.path {
		if l.active == 0 {
			l.activeIdx = len(n.activeLinks)
			n.activeLinks = append(n.activeLinks, l)
		}
		l.active++
	}
	if !n.reference {
		// A +Inf key sinks to the heap's bottom for free; the coalesced
		// solve assigns the real completion time.
		heap.Push(&n.completions, f)
		n.stats.HeapOps++
	}
	n.markDirty()
	if n.observer != nil {
		n.observer.FlowStarted(f)
	}
	return f
}

// retire removes a drained flow from its links and the completion heap,
// maintaining the active-link set.
func (n *Net) retire(f *Flow) {
	if f.heapIdx >= 0 {
		heap.Remove(&n.completions, f.heapIdx)
		n.stats.HeapOps++
	}
	for _, l := range f.path {
		l.active--
		if l.active == 0 {
			last := len(n.activeLinks) - 1
			moved := n.activeLinks[last]
			n.activeLinks[l.activeIdx] = moved
			moved.activeIdx = l.activeIdx
			n.activeLinks[last] = nil
			n.activeLinks = n.activeLinks[:last]
			l.activeIdx = -1
		}
	}
}

// markDirty requests a rate solve for the current virtual instant. In
// reference mode the solve happens immediately; otherwise one zero-delay
// event per instant performs it after all same-instant changes have been
// applied, which is what collapses a 1,024-stream open storm into a
// single progressive-filling pass.
func (n *Net) markDirty() {
	if n.reference {
		n.Recompute()
		return
	}
	if n.dirtyEv != nil {
		n.stats.Coalesced++
		return
	}
	n.dirtyEv = n.eng.Schedule(0, func() {
		n.dirtyEv = nil
		n.advance() // same instant: dt == 0
		n.assignRates()
		n.scheduleNext()
	})
}

// advance applies the current rates over the elapsed interval, decrementing
// each flow's remaining volume and accumulating link telemetry.
func (n *Net) advance() {
	now := n.eng.Now()
	dt := now - n.lastUpdate
	n.lastUpdate = now
	if dt <= 0 {
		return
	}
	for _, f := range n.active {
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		for _, l := range f.path {
			l.carried += moved
		}
	}
}

// Recompute advances transfer accounting at the old rates, re-runs max-min
// progressive filling and reschedules the next completion event, absorbing
// any pending coalesced solve. Call it after changing a link's capacity
// model; flow arrival and completion recompute automatically.
func (n *Net) Recompute() {
	if n.dirtyEv != nil {
		n.eng.Cancel(n.dirtyEv)
		n.dirtyEv = nil
	}
	n.advance()
	n.assignRates()
	n.scheduleNext()
}

// assignRates performs progressive filling:
//  1. every carrying link's residual capacity is its model capacity for the
//     current stream count;
//  2. repeatedly find the tightest constraint — either a link's fair share
//     (residual / unfixed flows) or a flow's own rate cap — and fix the
//     affected flows at that rate;
//  3. continue until every flow's rate is fixed.
//
// Only the active-link set is scanned (idle links cannot constrain any
// flow), and every round walks the explicit unfixed-flow list, which is
// compacted — in admission order, so the residual arithmetic is identical
// to a full rescan — as rates are pinned. Reference mode dispatches to
// assignRatesReference, which shares none of these optimisations: it is
// the oracle, so a defect in the unfixed-list bookkeeping cannot cancel
// out of the inc-vs-ref property tests.
func (n *Net) assignRates() {
	if n.reference {
		n.assignRatesReference()
		return
	}
	links := n.activeLinks
	n.stats.Solves++
	n.stats.LinkVisits += int64(len(links))
	for _, l := range links {
		l.residual = l.model.Capacity(l.active)
		l.unfixed = 0
		l.saturated = false
	}
	unfixed := n.unfixedScratch[:0]
	for _, f := range n.active {
		if f.finished {
			continue
		}
		f.rate = -1
		unfixed = append(unfixed, f)
		for _, l := range f.path {
			l.unfixed++
		}
	}
	sat := n.satScratch[:0]
	for len(unfixed) > 0 {
		n.stats.Rounds++
		n.stats.FlowsScanned += int64(len(unfixed))
		minShare := math.Inf(1)
		n.stats.LinkVisits += int64(len(links))
		for _, l := range links {
			if l.unfixed == 0 {
				continue
			}
			res := l.residual
			if res < 0 {
				res = 0
			}
			if share := res / float64(l.unfixed); share < minShare {
				minShare = share
			}
		}
		// Fix rate-capped flows whose cap is at or below the share.
		cappedFixed := false
		for _, f := range unfixed {
			if f.maxRate <= 0 || f.maxRate > minShare {
				continue
			}
			n.fix(f, f.maxRate)
			cappedFixed = true
		}
		if cappedFixed {
			unfixed = compactUnfixed(unfixed)
			continue
		}
		if math.IsInf(minShare, 1) {
			// Only path-less capped flows remain; their caps exceeded every
			// share constraint — fix them at their cap.
			for i, f := range unfixed {
				r := f.maxRate
				if r <= 0 {
					panic("flow: unconstrained flow in rate assignment")
				}
				n.fix(f, r)
				unfixed[i] = nil
			}
			unfixed = unfixed[:0]
			break
		}
		// Saturate bottleneck links and fix their flows at the fair share.
		n.stats.LinkVisits += int64(len(links))
		for _, l := range links {
			if l.unfixed == 0 {
				continue
			}
			res := l.residual
			if res < 0 {
				res = 0
			}
			if res/float64(l.unfixed) <= minShare*(1+1e-12)+1e-15 {
				l.saturated = true
				sat = append(sat, l)
			}
		}
		progressed := false
		for _, f := range unfixed {
			onBottleneck := false
			for _, l := range f.path {
				if l.saturated {
					onBottleneck = true
					break
				}
			}
			if onBottleneck {
				n.fix(f, minShare)
				progressed = true
			}
		}
		for _, l := range sat {
			l.saturated = false
		}
		sat = sat[:0]
		if !progressed {
			panic("flow: progressive filling made no progress")
		}
		unfixed = compactUnfixed(unfixed)
	}
	n.satScratch = sat[:0]
	n.unfixedScratch = unfixed[:0]
}

// assignRatesReference is the naive progressive-filling pass, preserved
// verbatim as the correctness oracle and cost baseline: every link is
// scanned (idle ones included) and every round rescans the whole active
// population instead of an unfixed-flow list. The rate-fixing order is
// identical to the incremental path — active flows in admission order,
// skipping already-fixed ones — so results are bit-identical while the
// implementations stay independent.
func (n *Net) assignRatesReference() {
	links := n.links
	n.stats.Solves++
	n.stats.LinkVisits += int64(len(links))
	for _, l := range links {
		l.residual = l.model.Capacity(l.active)
		l.unfixed = 0
		l.saturated = false
	}
	unfixedCount := 0
	for _, f := range n.active {
		if f.finished {
			continue
		}
		f.rate = -1
		unfixedCount++
		for _, l := range f.path {
			l.unfixed++
		}
	}
	sat := n.satScratch[:0]
	for unfixedCount > 0 {
		n.stats.Rounds++
		n.stats.FlowsScanned += int64(len(n.active))
		minShare := math.Inf(1)
		n.stats.LinkVisits += int64(len(links))
		for _, l := range links {
			if l.unfixed == 0 {
				continue
			}
			res := l.residual
			if res < 0 {
				res = 0
			}
			if share := res / float64(l.unfixed); share < minShare {
				minShare = share
			}
		}
		// Fix rate-capped flows whose cap is at or below the share.
		cappedFixed := false
		for _, f := range n.active {
			if f.finished || f.rate >= 0 || f.maxRate <= 0 || f.maxRate > minShare {
				continue
			}
			n.fix(f, f.maxRate)
			unfixedCount--
			cappedFixed = true
		}
		if cappedFixed {
			continue
		}
		if math.IsInf(minShare, 1) {
			// Only path-less capped flows remain; their caps exceeded every
			// share constraint — fix them at their cap.
			for _, f := range n.active {
				if f.finished || f.rate >= 0 {
					continue
				}
				r := f.maxRate
				if r <= 0 {
					panic("flow: unconstrained flow in rate assignment")
				}
				n.fix(f, r)
				unfixedCount--
			}
			n.satScratch = sat[:0]
			return
		}
		// Saturate bottleneck links and fix their flows at the fair share.
		n.stats.LinkVisits += int64(len(links))
		for _, l := range links {
			if l.unfixed == 0 {
				continue
			}
			res := l.residual
			if res < 0 {
				res = 0
			}
			if res/float64(l.unfixed) <= minShare*(1+1e-12)+1e-15 {
				l.saturated = true
				sat = append(sat, l)
			}
		}
		progressed := false
		for _, f := range n.active {
			if f.finished || f.rate >= 0 {
				continue
			}
			onBottleneck := false
			for _, l := range f.path {
				if l.saturated {
					onBottleneck = true
					break
				}
			}
			if onBottleneck {
				n.fix(f, minShare)
				unfixedCount--
				progressed = true
			}
		}
		for _, l := range sat {
			l.saturated = false
		}
		sat = sat[:0]
		if !progressed {
			panic("flow: progressive filling made no progress")
		}
	}
	n.satScratch = sat[:0]
}

// compactUnfixed drops just-fixed flows from the unfixed list in place,
// preserving admission order (which determines the order residuals are
// charged, and therefore bit-exactness against a full rescan).
func compactUnfixed(fs []*Flow) []*Flow {
	w := 0
	for _, f := range fs {
		if f.rate < 0 {
			fs[w] = f
			w++
		}
	}
	for i := w; i < len(fs); i++ {
		fs[i] = nil
	}
	return fs[:w]
}

// fix pins a flow's rate, charges it against its path's residuals, and
// stages the flow's completion-heap re-key when its finish time moved.
// Every solve re-fixes every active flow, so after a solve each key holds
// the freshly computed now + remaining/rate — never a stale value from an
// earlier instant, which is what keeps the heap's minimum bit-identical
// to the reference solver's linear scan.
func (n *Net) fix(f *Flow, rate float64) {
	f.rate = rate
	for _, l := range f.path {
		l.residual -= rate
		l.unfixed--
	}
	if !n.reference {
		due := math.Inf(1)
		if rate > 1e-12 {
			due = n.eng.Now() + f.remaining/rate
		}
		if due != f.due {
			n.dueChanged = append(n.dueChanged, dueChange{f, due})
		}
	}
}

// scheduleNext arranges the next completion event at the earliest time any
// active flow drains. Stalled flows (rate ~ 0) never complete on their own;
// if every flow stalls the engine's deadlock detector reports the hang.
//
// Incremental mode applies the solve's staged re-keys to the completion
// heap (one heap.Fix per moved flow, or a single rebuild when at least
// half the keys moved) and peeks the root; the engine event is moved in
// place via Reschedule. min over (now + dt_i) equals now + min over dt_i
// — addition of a constant is monotone, so the event time is bit-identical
// to the reference scan's Schedule(minDt). Reference mode keeps the naive
// linear scan with cancel-and-repost.
func (n *Net) scheduleNext() {
	if n.reference {
		if n.nextEv != nil {
			n.eng.Cancel(n.nextEv)
			n.nextEv = nil
		}
		minDt := math.Inf(1)
		for _, f := range n.active {
			if f.finished || f.rate <= 1e-12 {
				continue
			}
			if dt := f.remaining / f.rate; dt < minDt {
				minDt = dt
			}
		}
		if math.IsInf(minDt, 1) {
			return
		}
		n.nextEv = n.eng.Schedule(minDt, n.onCompletion)
		return
	}
	if k := len(n.dueChanged); k > 0 {
		if k*2 >= len(n.completions) {
			for _, dc := range n.dueChanged {
				dc.f.due = dc.due
			}
			heap.Init(&n.completions)
			n.stats.HeapOps += int64(len(n.completions))
		} else {
			for _, dc := range n.dueChanged {
				dc.f.due = dc.due
				heap.Fix(&n.completions, dc.f.heapIdx)
				n.stats.HeapOps++
			}
		}
		for i := range n.dueChanged {
			n.dueChanged[i] = dueChange{}
		}
		n.dueChanged = n.dueChanged[:0]
	}
	if len(n.completions) == 0 || math.IsInf(n.completions[0].due, 1) {
		if n.nextEv != nil {
			n.eng.Cancel(n.nextEv)
			n.nextEv = nil
		}
		return
	}
	// Re-sequence every solve, exactly as cancel-and-repost would: the
	// completion event's order among same-instant events must not depend
	// on the solver mode, or downstream admission order — and with it the
	// residual arithmetic — could diverge.
	at := n.completions[0].due
	if !n.eng.Reschedule(n.nextEv, at) {
		n.nextEv = n.eng.ScheduleAt(at, n.onCompletion)
	}
}

// onCompletion retires every flow that has drained (batching simultaneous
// completions), fires their Done signals, and requests a recompute for the
// survivors — coalesced with any same-instant arrivals the completions
// trigger.
func (n *Net) onCompletion() {
	n.nextEv = nil
	n.advance()
	var still []*Flow
	var done []*Flow
	for _, f := range n.active {
		if f.remaining <= epsilonMB*math.Max(1, f.size) {
			f.remaining = 0
			f.finished = true
			f.finishAt = n.eng.Now()
			n.retire(f)
			done = append(done, f)
		} else {
			still = append(still, f)
		}
	}
	n.active = still
	for _, f := range done {
		if f.onDone != nil {
			f.onDone()
		}
	}
	if n.observer != nil {
		for _, f := range done {
			n.observer.FlowFinished(f)
		}
	}
	for _, f := range done {
		f.Done.Fire()
	}
	n.markDirty()
}

// CheckInvariants verifies the current rate allocation: every active flow
// has a non-negative fixed rate no greater than its cap, no link carries
// more than its capacity (within tolerance), and the active-link set
// matches the links the active flows actually cross. Any pending coalesced
// solve is flushed first so the settled allocation is checked. It returns
// nil when consistent; tests call it after topology changes.
func (n *Net) CheckInvariants() error {
	if n.dirtyEv != nil {
		n.Recompute()
	}
	loads := make(map[*Link]float64)
	for _, f := range n.active {
		if f.finished {
			continue
		}
		if f.rate < 0 {
			return fmt.Errorf("flow: %q has unassigned rate", f.name)
		}
		if f.maxRate > 0 && f.rate > f.maxRate*(1+1e-9) {
			return fmt.Errorf("flow: %q rate %v exceeds cap %v", f.name, f.rate, f.maxRate)
		}
		for _, l := range f.path {
			loads[l] += f.rate
		}
	}
	for _, l := range n.links {
		cap := l.model.Capacity(l.active)
		if load := loads[l]; load > cap*(1+1e-6)+1e-9 {
			return fmt.Errorf("flow: link %q oversubscribed: %v > %v", l.name, load, cap)
		}
		inSet := l.activeIdx >= 0 && l.activeIdx < len(n.activeLinks) && n.activeLinks[l.activeIdx] == l
		if (l.active > 0) != inSet {
			return fmt.Errorf("flow: link %q active=%d but activeIdx=%d (set membership %v)",
				l.name, l.active, l.activeIdx, inSet)
		}
	}
	return n.checkHeap()
}

// checkHeap verifies the completion heap in incremental mode: it holds
// exactly the active flows, every entry knows its own index, the heap
// property holds under (due, seq), and each key matches the flow's
// settled rate — lastUpdate + remaining/rate as computed by the most
// recent solve, or +Inf when stalled.
func (n *Net) checkHeap() error {
	if n.reference {
		if len(n.completions) != 0 {
			return fmt.Errorf("flow: reference solver holds %d completion-heap entries", len(n.completions))
		}
		return nil
	}
	if len(n.completions) != len(n.active) {
		return fmt.Errorf("flow: completion heap has %d entries for %d active flows",
			len(n.completions), len(n.active))
	}
	for i, f := range n.completions {
		if f.heapIdx != i {
			return fmt.Errorf("flow: %q at heap position %d claims heapIdx %d", f.name, i, f.heapIdx)
		}
		if i > 0 {
			p := n.completions[(i-1)/2]
			if f.due < p.due || (f.due == p.due && f.seq < p.seq) {
				return fmt.Errorf("flow: heap order violated at position %d (%q due %v under %q due %v)",
					i, f.name, f.due, p.name, p.due)
			}
		}
		want := math.Inf(1)
		if f.rate > 1e-12 {
			want = n.lastUpdate + f.remaining/f.rate
		}
		if f.due != want {
			return fmt.Errorf("flow: %q completion key %v, want %v (rate %v, remaining %v)",
				f.name, f.due, want, f.rate, f.remaining)
		}
	}
	return nil
}

// Dones collects the completion signals of a flow batch, ready for
// Proc.WaitAll — the usual coda to StartBatch.
func Dones(flows []*Flow) []*sim.Signal {
	out := make([]*sim.Signal, len(flows))
	for i, f := range flows {
		out[i] = f.Done
	}
	return out
}

// TransferAndWait starts a flow and blocks the calling process until it
// completes; it returns the flow for inspection.
func (n *Net) TransferAndWait(p *sim.Proc, name string, sizeMB, maxRate float64, path ...*Link) *Flow {
	f := n.Start(name, sizeMB, maxRate, path...)
	p.Wait(f.Done)
	return f
}
