// Package flow implements a fluid network model on top of the sim engine,
// in the style of SimGrid: transfers are flows over a path of links, every
// link has a (possibly stream-count-dependent) capacity in MB/s, and active
// flows receive max-min fair rates computed by progressive filling. When
// the set of flows or a capacity changes, rates are recomputed and the next
// completion event is rescheduled. Contention between I/O jobs — the
// subject of the reproduced paper — is exactly the sharing of OST, server
// and network links between concurrent flows.
package flow

import (
	"fmt"
	"math"

	"pfsim/internal/sim"
)

// epsilonMB is the residual byte count (in MB) below which a flow is
// considered complete.
const epsilonMB = 1e-9

// CapacityModel yields a link's total capacity in MB/s given the number of
// concurrent flows crossing it. Implementations model effects such as disk
// seek thrash, where aggregate throughput degrades as streams are added.
type CapacityModel interface {
	Capacity(streams int) float64
}

// Const is a stream-count-independent capacity in MB/s.
type Const float64

// Capacity implements CapacityModel.
func (c Const) Capacity(int) float64 { return float64(c) }

// Thrash models a resource whose aggregate throughput degrades with
// concurrent streams: Capacity(k) = Base / (1 + Gamma*(k-1)). Gamma = 0 is
// a constant-capacity link; disks under competing streams have Gamma > 0.
type Thrash struct {
	Base  float64 // MB/s with a single stream
	Gamma float64 // degradation per additional stream
}

// Capacity implements CapacityModel.
func (t Thrash) Capacity(streams int) float64 {
	if streams <= 1 {
		return t.Base
	}
	return t.Base / (1 + t.Gamma*float64(streams-1))
}

// Link is a shared resource flows traverse.
type Link struct {
	name  string
	model CapacityModel

	active  int     // flows currently crossing the link
	carried float64 // MB carried so far (telemetry)

	// scratch used during rate computation
	residual  float64
	unfixed   int
	saturated bool
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Active reports the number of flows currently crossing the link.
func (l *Link) Active() int { return l.active }

// Carried reports the cumulative MB transported over the link.
func (l *Link) Carried() float64 { return l.carried }

// SetModel replaces the capacity model. Callers must invoke Net.Recompute
// afterwards for the change to take effect immediately.
func (l *Link) SetModel(m CapacityModel) { l.model = m }

// Model returns the current capacity model.
func (l *Link) Model() CapacityModel { return l.model }

// Flow is an in-progress transfer.
type Flow struct {
	name      string
	remaining float64 // MB
	size      float64 // MB, original
	path      []*Link
	maxRate   float64 // MB/s; <= 0 means unlimited
	rate      float64
	started   float64
	finishAt  float64
	finished  bool

	// Done fires when the transfer completes.
	Done *sim.Signal
	// onDone, if set, runs synchronously at completion before Done fires —
	// used to deregister streams from capacity models so the post-completion
	// rate recomputation sees the updated state.
	onDone func()
}

// Name returns the flow's name.
func (f *Flow) Name() string { return f.name }

// Rate returns the current allocated rate in MB/s.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the MB left to transfer.
func (f *Flow) Remaining() float64 { return f.remaining }

// Size returns the original transfer size in MB.
func (f *Flow) Size() float64 { return f.size }

// Finished reports completion.
func (f *Flow) Finished() bool { return f.finished }

// Started returns the virtual time the flow was started.
func (f *Flow) Started() float64 { return f.started }

// FinishedAt returns the completion time (0 until finished).
func (f *Flow) FinishedAt() float64 { return f.finishAt }

// Observer receives flow lifecycle callbacks; see Net.Observe. Callbacks
// run synchronously inside the engine, so implementations must not block.
type Observer interface {
	// FlowStarted fires when a flow is admitted (after the initial rate
	// assignment; zero-sized flows report with their completion).
	FlowStarted(f *Flow)
	// FlowFinished fires when a flow drains.
	FlowFinished(f *Flow)
}

// Net is a fluid network bound to a sim engine.
type Net struct {
	eng        *sim.Engine
	links      []*Link
	active     []*Flow
	lastUpdate float64
	nextEv     *sim.Event
	observer   Observer
}

// Observe installs an observer (nil to remove).
func (n *Net) Observe(o Observer) { n.observer = o }

// NewNet creates an empty network on eng.
func NewNet(eng *sim.Engine) *Net {
	return &Net{eng: eng}
}

// Engine returns the engine the network is bound to.
func (n *Net) Engine() *sim.Engine { return n.eng }

// NewLink adds a link with the given capacity model.
func (n *Net) NewLink(name string, model CapacityModel) *Link {
	l := &Link{name: name, model: model}
	n.links = append(n.links, l)
	return l
}

// ActiveFlows reports the number of unfinished flows.
func (n *Net) ActiveFlows() int { return len(n.active) }

// Start launches a transfer of sizeMB over path with an optional per-flow
// rate cap (maxRate <= 0 means unlimited). Zero-sized flows complete at the
// current instant. The returned flow's Done signal fires on completion.
func (n *Net) Start(name string, sizeMB, maxRate float64, path ...*Link) *Flow {
	return n.StartFunc(name, sizeMB, maxRate, nil, path...)
}

// StartFunc is Start with a completion callback, invoked synchronously when
// the flow drains (immediately for zero-sized flows), before Done fires and
// before rates are recomputed.
func (n *Net) StartFunc(name string, sizeMB, maxRate float64, onDone func(), path ...*Link) *Flow {
	if sizeMB < 0 || math.IsNaN(sizeMB) {
		panic(fmt.Sprintf("flow: bad size %v for %q", sizeMB, name))
	}
	f := &Flow{
		name:      name,
		remaining: sizeMB,
		size:      sizeMB,
		path:      path,
		maxRate:   maxRate,
		started:   n.eng.Now(),
		Done:      n.eng.NewSignal("flow:" + name),
		onDone:    onDone,
	}
	if sizeMB <= epsilonMB {
		f.finished = true
		f.finishAt = n.eng.Now()
		if f.onDone != nil {
			f.onDone()
		}
		if n.observer != nil {
			n.observer.FlowStarted(f)
			n.observer.FlowFinished(f)
		}
		f.Done.Fire()
		return f
	}
	if len(path) == 0 && maxRate <= 0 {
		panic(fmt.Sprintf("flow: %q has no path and no rate cap; would complete instantaneously", name))
	}
	n.advance()
	n.active = append(n.active, f)
	for _, l := range f.path {
		l.active++
	}
	n.Recompute()
	if n.observer != nil {
		n.observer.FlowStarted(f)
	}
	return f
}

// advance applies the current rates over the elapsed interval, decrementing
// each flow's remaining volume and accumulating link telemetry.
func (n *Net) advance() {
	now := n.eng.Now()
	dt := now - n.lastUpdate
	n.lastUpdate = now
	if dt <= 0 {
		return
	}
	for _, f := range n.active {
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		for _, l := range f.path {
			l.carried += moved
		}
	}
}

// Recompute advances transfer accounting at the old rates, re-runs max-min
// progressive filling and reschedules the next completion event. Call it
// after changing a link's capacity model; flow arrival and completion
// recompute automatically.
func (n *Net) Recompute() {
	n.advance()
	n.assignRates()
	n.scheduleNext()
}

// assignRates performs progressive filling:
//  1. every link's residual capacity is its model capacity for the current
//     stream count;
//  2. repeatedly find the tightest constraint — either a link's fair share
//     (residual / unfixed flows) or a flow's own rate cap — and fix the
//     affected flows at that rate;
//  3. continue until every flow's rate is fixed.
func (n *Net) assignRates() {
	for _, l := range n.links {
		l.residual = l.model.Capacity(l.active)
		l.unfixed = 0
		l.saturated = false
	}
	unfixedCount := 0
	for _, f := range n.active {
		if f.finished {
			continue
		}
		f.rate = -1
		unfixedCount++
		for _, l := range f.path {
			l.unfixed++
		}
	}
	for unfixedCount > 0 {
		minShare := math.Inf(1)
		for _, l := range n.links {
			if l.unfixed == 0 {
				continue
			}
			res := l.residual
			if res < 0 {
				res = 0
			}
			if share := res / float64(l.unfixed); share < minShare {
				minShare = share
			}
		}
		// Fix rate-capped flows whose cap is at or below the share.
		cappedFixed := false
		for _, f := range n.active {
			if f.finished || f.rate >= 0 || f.maxRate <= 0 || f.maxRate > minShare {
				continue
			}
			n.fix(f, f.maxRate)
			unfixedCount--
			cappedFixed = true
		}
		if cappedFixed {
			continue
		}
		if math.IsInf(minShare, 1) {
			// Only path-less capped flows remain; their caps exceeded every
			// share constraint — fix them at their cap.
			for _, f := range n.active {
				if f.finished || f.rate >= 0 {
					continue
				}
				r := f.maxRate
				if r <= 0 {
					panic("flow: unconstrained flow in rate assignment")
				}
				n.fix(f, r)
				unfixedCount--
			}
			return
		}
		// Saturate bottleneck links and fix their flows at the fair share.
		for _, l := range n.links {
			if l.unfixed == 0 {
				continue
			}
			res := l.residual
			if res < 0 {
				res = 0
			}
			if res/float64(l.unfixed) <= minShare*(1+1e-12)+1e-15 {
				l.saturated = true
			}
		}
		progressed := false
		for _, f := range n.active {
			if f.finished || f.rate >= 0 {
				continue
			}
			onBottleneck := false
			for _, l := range f.path {
				if l.saturated {
					onBottleneck = true
					break
				}
			}
			if onBottleneck {
				n.fix(f, minShare)
				unfixedCount--
				progressed = true
			}
		}
		for _, l := range n.links {
			l.saturated = false
		}
		if !progressed {
			panic("flow: progressive filling made no progress")
		}
	}
}

// fix pins a flow's rate and charges it against its path's residuals.
func (n *Net) fix(f *Flow, rate float64) {
	f.rate = rate
	for _, l := range f.path {
		l.residual -= rate
		l.unfixed--
	}
}

// scheduleNext arranges the next completion event at the earliest time any
// active flow drains. Stalled flows (rate ~ 0) never complete on their own;
// if every flow stalls the engine's deadlock detector reports the hang.
func (n *Net) scheduleNext() {
	if n.nextEv != nil {
		n.eng.Cancel(n.nextEv)
		n.nextEv = nil
	}
	minDt := math.Inf(1)
	for _, f := range n.active {
		if f.finished || f.rate <= 1e-12 {
			continue
		}
		if dt := f.remaining / f.rate; dt < minDt {
			minDt = dt
		}
	}
	if math.IsInf(minDt, 1) {
		return
	}
	n.nextEv = n.eng.Schedule(minDt, n.onCompletion)
}

// onCompletion retires every flow that has drained (batching simultaneous
// completions), fires their Done signals, and recomputes rates for the
// survivors.
func (n *Net) onCompletion() {
	n.nextEv = nil
	n.advance()
	var still []*Flow
	var done []*Flow
	for _, f := range n.active {
		if f.remaining <= epsilonMB*math.Max(1, f.size) {
			f.remaining = 0
			f.finished = true
			f.finishAt = n.eng.Now()
			for _, l := range f.path {
				l.active--
			}
			done = append(done, f)
		} else {
			still = append(still, f)
		}
	}
	n.active = still
	for _, f := range done {
		if f.onDone != nil {
			f.onDone()
		}
	}
	if n.observer != nil {
		for _, f := range done {
			n.observer.FlowFinished(f)
		}
	}
	for _, f := range done {
		f.Done.Fire()
	}
	n.Recompute()
}

// CheckInvariants verifies the current rate allocation: every active flow
// has a non-negative fixed rate no greater than its cap, and no link
// carries more than its capacity (within tolerance). It returns nil when
// consistent; tests call it after topology changes.
func (n *Net) CheckInvariants() error {
	loads := make(map[*Link]float64)
	for _, f := range n.active {
		if f.finished {
			continue
		}
		if f.rate < 0 {
			return fmt.Errorf("flow: %q has unassigned rate", f.name)
		}
		if f.maxRate > 0 && f.rate > f.maxRate*(1+1e-9) {
			return fmt.Errorf("flow: %q rate %v exceeds cap %v", f.name, f.rate, f.maxRate)
		}
		for _, l := range f.path {
			loads[l] += f.rate
		}
	}
	for _, l := range n.links {
		cap := l.model.Capacity(l.active)
		if load := loads[l]; load > cap*(1+1e-6)+1e-9 {
			return fmt.Errorf("flow: link %q oversubscribed: %v > %v", l.name, load, cap)
		}
	}
	return nil
}

// TransferAndWait starts a flow and blocks the calling process until it
// completes; it returns the flow for inspection.
func (n *Net) TransferAndWait(p *sim.Proc, name string, sizeMB, maxRate float64, path ...*Link) *Flow {
	f := n.Start(name, sizeMB, maxRate, path...)
	p.Wait(f.Done)
	return f
}
