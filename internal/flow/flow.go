// Package flow implements a fluid network model on top of the sim engine,
// in the style of SimGrid: transfers are flows over a path of links, every
// link has a (possibly stream-count-dependent) capacity in MB/s, and active
// flows receive max-min fair rates computed by progressive filling. When
// the set of flows or a capacity changes, rates are recomputed and the next
// completion event is rescheduled. Contention between I/O jobs — the
// subject of the reproduced paper — is exactly the sharing of OST, server
// and network links between concurrent flows.
//
// # Solver cost
//
// The solver is the hot path of every experiment, so it avoids every
// superlinear cost the naive formulation pays:
//
//   - Component partitioning: max-min fairness only couples flows that
//     share a link, directly or transitively. The network maintains the
//     link-connectivity components of the active flows — union on admit,
//     lazy split/rebuild when a completion may disconnect one — and tracks
//     dirtiness per component, so a change in one file system's traffic
//     re-solves and re-scans only that file system's component, never the
//     whole population. Disjoint components have independent max-min
//     allocations, so the partitioned solve is exact.
//
//   - Per-flow accrual anchors: volume accounting is lazy. Each flow
//     carries an anchor (settledAt, remaining, rate); its remaining volume
//     and its links' carried telemetry are settled only when its rate
//     actually changes, when it completes, or when link telemetry
//     (Link.Carried) is read — never merely because virtual time advanced
//     somewhere else. Flow.Remaining computes its instantaneous value on
//     the fly without touching the anchor. An instant that touches one
//     component settles only the flows whose rates moved, instead of
//     charging every active flow in the network.
//
//   - Same-instant coalescing: flow arrivals and completions do not solve
//     immediately. They update the admission state eagerly and schedule one
//     zero-delay "solver dirty" event, so a 1,024-rank collective that opens
//     all its stripe streams in one virtual instant triggers a single
//     progressive-filling pass per touched component instead of 1,024.
//     Rates are only ever *read* across a positive time interval, and the
//     dirty event fires before virtual time advances, so trajectories are
//     byte-identical to solving on every change.
//
//   - Unfixed-flow lists: each progressive-filling round walks an explicit
//     list of still-unfixed flows (compacted in admission order as rates
//     are pinned) instead of rescanning the whole component, so a solve
//     with many rate-fixing rounds costs the sum of the shrinking round
//     sizes rather than rounds × flows.
//
//   - Completion heap: the next completion event comes from an indexed
//     min-heap of flow completion times, re-keyed only when a solve
//     assigns a flow a different finish time and rebuilt wholesale when
//     most keys move. Scheduling the next event is a peek at the root
//     instead of a scan over every active flow, and the engine event is
//     moved in place (sim.Engine.Reschedule) rather than cancelled and
//     reposted.
//
//   - Parallel component solves: disjoint components have disjoint flows
//     and links, so the per-instant flush may solve its dirty components
//     on concurrent workers (SetSolveParallelism). Each worker owns a
//     solveCtx — the progressive-filling scratch and a local Stats
//     accumulator — solve epochs come from one atomic counter, and the
//     sequential commit pass then runs in work-queue order, so results,
//     telemetry and counters are byte-identical at any parallelism.
//
// UseReferenceSolver restores the naive behaviour (full link scans over
// the whole network, one solve per change, linear completion scans); the
// property tests use it as the oracle and the benchmarks as the
// before/after baseline. Stats reports solver work for both modes.
//
// Capacity models must depend only on their own link's traffic (as every
// model in this repository does): the partitioned solver re-reads a
// link's capacity only when its component is re-solved. With parallel
// solving, Capacity must additionally be safe to call concurrently from
// distinct components' links — true of every model here, whose Capacity
// is a pure read of state mutated only between solves.
package flow

import (
	"container/heap"
	"fmt"
	"math"
	"sync/atomic"

	"pfsim/internal/pool"
	"pfsim/internal/sim"
)

// epsilonMB is the residual byte count (in MB) below which a freshly
// admitted flow is considered instantaneous.
const epsilonMB = 1e-9

// CapacityModel yields a link's total capacity in MB/s given the number of
// concurrent flows crossing it. Implementations model effects such as disk
// seek thrash, where aggregate throughput degrades as streams are added.
type CapacityModel interface {
	Capacity(streams int) float64
}

// Const is a stream-count-independent capacity in MB/s.
type Const float64

// Capacity implements CapacityModel.
func (c Const) Capacity(int) float64 { return float64(c) }

// Thrash models a resource whose aggregate throughput degrades with
// concurrent streams: Capacity(k) = Base / (1 + Gamma*(k-1)). Gamma = 0 is
// a constant-capacity link; disks under competing streams have Gamma > 0.
type Thrash struct {
	Base  float64 // MB/s with a single stream
	Gamma float64 // degradation per additional stream
}

// Capacity implements CapacityModel.
func (t Thrash) Capacity(streams int) float64 {
	if streams <= 1 {
		return t.Base
	}
	return t.Base / (1 + t.Gamma*float64(streams-1))
}

// component is one link-connectivity equivalence class of the active
// flows: every flow in it shares a link — directly or through a chain of
// other flows — with the rest, and no flow outside it crosses any of its
// links. Rate solves, dirtiness and accrual settling operate per
// component. Flows are kept in admission (seq) order, which is the order
// progressive filling charges residuals in; link order is numerically
// irrelevant (the solver only takes minima over links and per-link sums).
type component struct {
	flows []*Flow // active flows in admission order (finished ones linger until rebuild)
	links []*Link // links currently carrying this component's flows

	dirty   bool // needs a re-solve at the next flush
	rebuild bool // lost a flow; connectivity must be recomputed before solving
	queued  bool // already on Net.work
	dead    bool // merged away, split, or emptied
}

// Link is a shared resource flows traverse.
type Link struct {
	name  string
	model CapacityModel
	net   *Net

	active  int        // flows currently crossing the link
	comp    *component // owning component; nil while idle
	compIdx int        // position in comp.links
	carried float64    // MB settled so far (telemetry; see Carried)

	// scratch used during rate computation
	residual  float64
	unfixed   int
	saturated bool

	// scratch used during component rebuilds (union-find over links)
	dsuParent *Link
	dsuEpoch  int64
	child     *component
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Active reports the number of flows currently crossing the link.
func (l *Link) Active() int { return l.active }

// Carried reports the cumulative MB transported over the link. Accrual is
// lazy, so the read settles the link's in-flight flows up to the current
// instant first; the settle points are driven by rate changes and reads,
// never by the solver mode, so the value is identical in both modes.
func (l *Link) Carried() float64 {
	if l.net != nil {
		l.net.settleLink(l)
	}
	return l.carried
}

// SetModel replaces the capacity model. The link's component is marked
// dirty, so the change takes effect through the coalesced zero-delay solve
// of the current instant (immediately in reference mode); call
// Net.Recompute to force an immediate full settle instead. Changing an
// idle link's model costs nothing until a flow crosses it. Passing the
// model already installed signals an in-place parameter mutation (e.g. an
// OST health change) and triggers the same component-local re-solve.
func (l *Link) SetModel(m CapacityModel) {
	l.model = m
	if l.net == nil || l.comp == nil {
		return
	}
	l.net.markDirty(l.comp)
}

// Model returns the current capacity model.
func (l *Link) Model() CapacityModel { return l.model }

// Flow is an in-progress transfer.
type Flow struct {
	name      string
	remaining float64 // MB, settled as of settledAt
	size      float64 // MB, original
	path      []*Link
	maxRate   float64 // MB/s; <= 0 means unlimited
	rate      float64 // allocation assigned by the most recent solve
	committed float64 // rate in force across real time: the last per-instant commit
	started   float64
	settledAt float64 // accrual anchor: remaining/carried are exact as of this instant
	finishAt  float64
	finished  bool

	net        *Net
	comp       *component
	fixedEpoch int64 // solve epoch that last pinned this flow's rate

	// Completion bookkeeping. due is the absolute time the flow drains at
	// its current rate (+Inf when stalled), computed when the rate last
	// changed; it doubles as the completion-heap key in incremental mode.
	due     float64
	heapIdx int   // position in Net.completions; -1 while not queued
	seq     int64 // admission order, tie-break for equal due times

	// Done fires when the transfer completes.
	Done *sim.Signal
	// onDone, if set, runs synchronously at completion before Done fires —
	// used to deregister streams from capacity models so the post-completion
	// rate recomputation sees the updated state.
	onDone func()
}

// Name returns the flow's name.
func (f *Flow) Name() string { return f.name }

// Rate returns the current allocated rate in MB/s. Within a virtual
// instant the value may be stale until the coalesced solve fires; call
// Net.Recompute first when reading rates outside the engine loop.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the MB left to transfer at the current instant,
// including volume accrued at the committed rate since the flow's last
// settle (the read does not perturb the accrual anchor).
func (f *Flow) Remaining() float64 {
	if f.finished || f.net == nil {
		return f.remaining
	}
	left := f.remaining - f.committed*(f.net.eng.Now()-f.settledAt)
	if left < 0 {
		return 0
	}
	return left
}

// Size returns the original transfer size in MB.
func (f *Flow) Size() float64 { return f.size }

// Finished reports completion.
func (f *Flow) Finished() bool { return f.finished }

// Started returns the virtual time the flow was started.
func (f *Flow) Started() float64 { return f.started }

// FinishedAt returns the completion time (0 until finished).
func (f *Flow) FinishedAt() float64 { return f.finishAt }

// Observer receives flow lifecycle callbacks; see Net.Observe. Callbacks
// run synchronously inside the engine, so implementations must not block.
type Observer interface {
	// FlowStarted fires when a flow is admitted (before its first rate
	// assignment; zero-sized flows report with their completion).
	FlowStarted(f *Flow)
	// FlowFinished fires when a flow drains.
	FlowFinished(f *Flow)
}

// Stats counts solver work; see Net.Stats. The visit counters are the
// machine-independent cost metric the solver benchmarks report.
type Stats struct {
	// Solves is the number of solver activations: coalesced per-instant
	// flushes (plus forced Recomputes) in incremental mode, one per change
	// in reference mode.
	Solves int64
	// ComponentsSolved is the number of per-component progressive-filling
	// passes. The reference solver counts each of its global passes as one
	// component — it treats the whole network as a single component.
	ComponentsSolved int64
	// ComponentFlowsScanned is the number of active flows handed to
	// progressive-filling passes (the population each pass initialises and
	// re-fixes). ComponentFlowsScanned/ComponentsSolved is the average
	// population a solve touches: ~the component size under partitioning,
	// the whole active population without it.
	ComponentFlowsScanned int64
	// LinkVisits is the number of link records examined across all passes
	// (initialisation, share search and saturation marking).
	LinkVisits int64
	// Coalesced is the number of recompute requests absorbed by an
	// already-pending solve event.
	Coalesced int64
	// Rounds is the number of rate-fixing rounds across all passes.
	Rounds int64
	// FlowsScanned is the number of flow records examined across
	// rate-fixing rounds. The incremental solver touches only the
	// still-unfixed flows of the dirty component per round; the reference
	// solver rescans the whole active population every round
	// (Rounds × active flows), which is the cost the benchmarks compare
	// against.
	FlowsScanned int64
	// FlowsSettled is the number of accrual settles: flows whose remaining
	// volume and link telemetry were advanced to the current instant
	// because their committed rate changed, they completed, or a link's
	// carried telemetry was read (Flow.Remaining reads do not settle).
	// The pre-anchor accounting charged every active flow at every
	// positive-dt instant instead; settles are identical in both solver
	// modes (rate trajectories are identical), so the counter measures the
	// accounting cost of the physics, not of the solver mode.
	FlowsSettled int64
	// HeapOps is the number of completion-heap element operations: pushes,
	// pops, removals, per-flow re-keys and per-entry rebuild work. Zero in
	// reference mode, which scans every active flow to find the next
	// completion instead.
	HeapOps int64
}

// FlowSpec describes one flow for StartBatch.
type FlowSpec struct {
	// Name labels the flow.
	Name string
	// SizeMB is the transfer volume; zero-sized flows complete immediately.
	SizeMB float64
	// MaxRate optionally caps the flow (MB/s); <= 0 means unlimited.
	MaxRate float64
	// OnDone, if set, runs synchronously at completion before Done fires.
	OnDone func()
	// Path is the link path the flow traverses.
	Path []*Link
}

// Net is a fluid network bound to a sim engine.
type Net struct {
	eng       *sim.Engine
	links     []*Link
	linkNames map[string]bool // NewLink rejects duplicates: names key telemetry

	// activeFlows holds flows in admission order; completed flows linger
	// as tombstones (finished == true) and are compacted once they are
	// half the slice, so retiring stays amortised O(1) without disturbing
	// the admission order the reference solver iterates in.
	activeFlows      []*Flow
	activeCount      int
	finishedInActive int
	activeLinkCount  int

	comps     []*component // live components (dead ones compacted lazily)
	deadComps int
	work      []*component // components queued for the pending flush

	nextEv    *sim.Event
	dirtyEv   *sim.Event // pending coalesced solve at the current instant
	observer  Observer
	reference bool // solve eagerly with full link scans (oracle mode)

	// flushFn and completionFn are the bound-method closures for flushWork
	// and onCompletion, built once in NewNet: the solver schedules them
	// every instant, and a per-schedule method value would put one closure
	// allocation on the zero-alloc steady-state path.
	flushFn      func()
	completionFn func()

	// Per-solve state lives in solveCtx values, one per solver worker;
	// ctxs[0] is the serial path's context. par is the configured worker
	// count (see SetSolveParallelism); parFloor gates the fan-out by the
	// flush's flow population so tiny flushes never pay goroutine handoff.
	ctxs          []*solveCtx
	par           int
	parFloor      int
	solvedScratch []*component
	stats         Stats
	solveEpoch    atomic.Int64 // globally unique solve stamps, any worker
	dsuEpoch      int64

	completions compHeap    // active flows ordered by (due, seq); incremental mode only
	dueChanged  []dueChange // completion keys moved by the in-progress flush
	doneScratch []*Flow     // onCompletion's batch scratch, reused across instants
	flowSeq     int64       // admission counter feeding Flow.seq
}

// solveCtx is the state one progressive-filling pass needs: the scratch
// slices the rounds walk and a local Stats accumulator. Each solver
// worker owns one, so concurrent component solves share nothing but the
// components themselves (disjoint by construction) and the atomic epoch
// counter; the local stats merge into Net.stats after the fan-in. All
// Stats fields are integer counts, so the merged totals are identical
// regardless of which worker solved which component.
type solveCtx struct {
	unfixed []*Flow
	sat     []*Link
	capped  []*Flow
	epoch   int64 // epoch of the in-progress solve (stamped on fixed flows)
	stats   Stats
}

// merge folds o into s and zeroes o. Integer sums only — order-free.
func (s *Stats) merge(o *Stats) {
	s.Solves += o.Solves
	s.ComponentsSolved += o.ComponentsSolved
	s.ComponentFlowsScanned += o.ComponentFlowsScanned
	s.LinkVisits += o.LinkVisits
	s.Coalesced += o.Coalesced
	s.Rounds += o.Rounds
	s.FlowsScanned += o.FlowsScanned
	s.FlowsSettled += o.FlowsSettled
	s.HeapOps += o.HeapOps
	*o = Stats{}
}

// defaultParFloor is the flush flow population below which dirty
// components are solved serially even when SetSolveParallelism enabled
// workers: such solves finish faster than the goroutine handoff they
// would buy. Results are byte-identical either way; tests lower the
// floor to force the parallel path onto small populations.
const defaultParFloor = 192

// dueChange stages one completion-heap re-key. Keys are applied one at a
// time (or in bulk via a rebuild) after the flush, never mid-heap-repair,
// so every heap.Fix sees a heap that was valid before its single change.
type dueChange struct {
	f   *Flow
	due float64
}

// compHeap is an indexed min-heap of active flows ordered by completion
// time, ties broken by admission order. It implements container/heap.
type compHeap []*Flow

func (h compHeap) Len() int { return len(h) }
func (h compHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}
func (h compHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *compHeap) Push(x any) {
	f := x.(*Flow)
	f.heapIdx = len(*h)
	*h = append(*h, f) //pfsim:allocok heap growth is bounded by the peak active-flow population, then reuses capacity
}
func (h *compHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = nil
	f.heapIdx = -1
	*h = old[:n-1]
	return f
}

// Observe installs an observer (nil to remove).
func (n *Net) Observe(o Observer) { n.observer = o }

// NewNet creates an empty network on eng.
func NewNet(eng *sim.Engine) *Net {
	n := &Net{
		eng:       eng,
		linkNames: map[string]bool{},
		par:       1,
		parFloor:  defaultParFloor,
		ctxs:      []*solveCtx{{}},
	}
	n.flushFn = n.flushWork
	n.completionFn = n.onCompletion
	return n
}

// Engine returns the engine the network is bound to.
func (n *Net) Engine() *sim.Engine { return n.eng }

// NewLink adds a link with the given capacity model. Link names key
// telemetry and error reporting, so duplicates are a caller bug: two
// shards built with the same prefix would silently alias each other's
// carried-volume labels. NewLink panics on a duplicate; callers that can
// see a clash coming check HasLink first and surface an error
// (lustre.NewSharedSystem validates its prefix this way).
func (n *Net) NewLink(name string, model CapacityModel) *Link {
	if n.linkNames[name] {
		panic(fmt.Sprintf("flow: duplicate link name %q", name))
	}
	n.linkNames[name] = true
	l := &Link{name: name, model: model, net: n, compIdx: -1}
	n.links = append(n.links, l)
	return l
}

// HasLink reports whether a link with the given name exists on the net.
func (n *Net) HasLink(name string) bool { return n.linkNames[name] }

// SetSolveParallelism sets how many workers the per-instant flush may
// use to solve independent dirty components concurrently: 1 (the
// default) is fully serial, values below one select GOMAXPROCS.
// Components are disjoint by construction — no shared flows, links or
// scratch — worker-local stats are integer counts merged after the
// fan-in, and the commit pass stays sequential in work-queue order, so
// simulations are byte-identical at any setting; only wall-clock time
// changes. Flushes whose dirty components hold few flows in total are
// solved serially regardless (the fan-out would cost more than the
// solves). Reference mode always solves serially: it is the oracle.
func (n *Net) SetSolveParallelism(p int) { n.par = pool.Workers(p) }

// SolveParallelism reports the configured solver worker count.
func (n *Net) SolveParallelism() int { return n.par }

// ActiveFlows reports the number of unfinished flows.
func (n *Net) ActiveFlows() int { return n.activeCount }

// ActiveLinks reports the number of links currently carrying flows.
func (n *Net) ActiveLinks() int { return n.activeLinkCount }

// Components reports the number of live link-connectivity components.
func (n *Net) Components() int { return len(n.comps) - n.deadComps }

// Stats returns the accumulated solver work counters.
func (n *Net) Stats() Stats { return n.stats }

// ResetStats zeroes the solver work counters.
func (n *Net) ResetStats() { n.stats = Stats{} }

// UseReferenceSolver switches the network to the naive solver: one full
// progressive-filling pass over every link in the network on every flow
// arrival, completion and capacity change, with no same-instant coalescing,
// no component partitioning and a linear scan for the next completion. It
// exists as the correctness oracle for the partitioned solver and as the
// baseline the solver benchmarks measure against; simulations produce
// byte-identical results in either mode. Switching with flows in flight
// settles pending work under the outgoing mode and rebuilds the completion
// heap, so the mode change is safe at any instant.
func (n *Net) UseReferenceSolver(on bool) {
	if on == n.reference {
		return
	}
	if n.dirtyEv != nil || len(n.work) > 0 {
		n.Recompute()
	}
	n.reference = on
	n.dueChanged = n.dueChanged[:0]
	for i := range n.completions {
		n.completions[i].heapIdx = -1
		n.completions[i] = nil
	}
	n.completions = n.completions[:0]
	if !on {
		// Completion keys are maintained in both modes (fix updates due on
		// every rate change), so the heap rebuilds directly from them.
		for _, f := range n.activeFlows {
			if f.finished {
				continue
			}
			f.heapIdx = len(n.completions)
			n.completions = append(n.completions, f)
		}
		heap.Init(&n.completions)
		n.stats.HeapOps += int64(len(n.completions))
		n.scheduleNext()
	}
}

// Start launches a transfer of sizeMB over path with an optional per-flow
// rate cap (maxRate <= 0 means unlimited). Zero-sized flows complete at the
// current instant. The returned flow's Done signal fires on completion.
func (n *Net) Start(name string, sizeMB, maxRate float64, path ...*Link) *Flow {
	return n.StartFunc(name, sizeMB, maxRate, nil, path...)
}

// StartFunc is Start with a completion callback, invoked synchronously when
// the flow drains (immediately for zero-sized flows), before Done fires and
// before rates are recomputed.
func (n *Net) StartFunc(name string, sizeMB, maxRate float64, onDone func(), path ...*Link) *Flow {
	return n.admit(FlowSpec{Name: name, SizeMB: sizeMB, MaxRate: maxRate, OnDone: onDone, Path: path})
}

// StartBatch admits a set of flows in one operation — the entry point for
// collectives that open all their stripe streams at once (two-phase
// writes, PLFS log storms, file-per-process fans). The batch requests a
// single coalesced solve per touched component, so its cost is O(flows)
// bookkeeping plus one progressive-filling pass per component regardless
// of batch width. Flows are admitted (and observers notified) in spec
// order, exactly as the equivalent StartFunc sequence would.
func (n *Net) StartBatch(specs []FlowSpec) []*Flow {
	out := make([]*Flow, len(specs))
	for i := range specs {
		out[i] = n.admit(specs[i])
	}
	return out
}

// admit adds one flow at the current instant: component membership is
// unioned eagerly, the rate solve is deferred to the coalesced dirty event
// (performed immediately in reference mode).
func (n *Net) admit(sp FlowSpec) *Flow {
	if sp.SizeMB < 0 || math.IsNaN(sp.SizeMB) {
		panic(fmt.Sprintf("flow: bad size %v for %q", sp.SizeMB, sp.Name))
	}
	n.flowSeq++
	f := &Flow{
		name:      sp.Name,
		remaining: sp.SizeMB,
		size:      sp.SizeMB,
		path:      sp.Path,
		maxRate:   sp.MaxRate,
		started:   n.eng.Now(),
		settledAt: n.eng.Now(),
		net:       n,
		Done:      n.eng.NewSignal("flow:" + sp.Name),
		onDone:    sp.OnDone,
		due:       math.Inf(1),
		heapIdx:   -1,
		seq:       n.flowSeq,
	}
	if sp.SizeMB <= epsilonMB {
		f.finished = true
		f.finishAt = n.eng.Now()
		if f.onDone != nil {
			f.onDone()
		}
		if n.observer != nil {
			n.observer.FlowStarted(f)
			n.observer.FlowFinished(f)
		}
		f.Done.Fire()
		return f
	}
	if len(sp.Path) == 0 && sp.MaxRate <= 0 {
		panic(fmt.Sprintf("flow: %q has no path and no rate cap; would complete instantaneously", sp.Name))
	}
	n.activeFlows = append(n.activeFlows, f)
	n.activeCount++
	for _, l := range f.path {
		if l.active == 0 {
			n.activeLinkCount++
		}
		l.active++
	}
	n.attach(f)
	if !n.reference {
		// A +Inf key sinks to the heap's bottom for free; the coalesced
		// solve assigns the real completion time.
		heap.Push(&n.completions, f)
		n.stats.HeapOps++
	}
	n.markDirty(f.comp)
	if n.observer != nil {
		n.observer.FlowStarted(f)
	}
	return f
}

// attach places a freshly admitted flow in a component: the union of its
// path links' components, merged if the flow bridges several, or a new
// component when all its links were idle. Path-less capped flows get a
// singleton component of their own.
func (n *Net) attach(f *Flow) {
	var target *component
	for _, l := range f.path {
		c := l.comp
		if c == nil || c == target {
			continue
		}
		if target == nil {
			target = c
			continue
		}
		target = n.merge(target, c)
	}
	if target == nil {
		target = &component{}
		n.addComp(target)
	}
	f.comp = target
	target.flows = append(target.flows, f) // f.seq is the largest: order kept
	for _, l := range f.path {
		if l.comp == nil {
			l.comp = target
			l.compIdx = len(target.links)
			target.links = append(target.links, l)
		}
	}
}

// merge folds the smaller component into the larger, keeping the flow list
// in admission order (a sorted merge on seq) so progressive filling
// charges residuals in exactly the order a monolithic solve would.
func (n *Net) merge(a, b *component) *component {
	if len(a.flows) < len(b.flows) {
		a, b = b, a
	}
	merged := make([]*Flow, 0, len(a.flows)+len(b.flows))
	i, j := 0, 0
	for i < len(a.flows) && j < len(b.flows) {
		if a.flows[i].seq < b.flows[j].seq {
			merged = append(merged, a.flows[i])
			i++
		} else {
			merged = append(merged, b.flows[j])
			j++
		}
	}
	merged = append(merged, a.flows[i:]...)
	merged = append(merged, b.flows[j:]...)
	a.flows = merged
	for _, f := range b.flows {
		f.comp = a
	}
	for _, l := range b.links {
		l.comp = a
		l.compIdx = len(a.links)
		a.links = append(a.links, l)
	}
	if b.dirty {
		a.dirty = true
	}
	if b.rebuild {
		a.rebuild = true
	}
	b.dead = true
	b.flows, b.links = nil, nil
	n.deadComps++
	return a
}

// addComp registers a new live component, compacting the dead entries out
// of the registry once they dominate it.
func (n *Net) addComp(c *component) {
	if n.deadComps > 32 && n.deadComps*2 >= len(n.comps) {
		w := 0
		for _, old := range n.comps {
			if !old.dead {
				n.comps[w] = old
				w++
			}
		}
		for i := w; i < len(n.comps); i++ {
			n.comps[i] = nil
		}
		n.comps = n.comps[:w]
		n.deadComps = 0
	}
	n.comps = append(n.comps, c)
}

// markDirty requests a rate solve for the component at the current virtual
// instant. In reference mode the rates re-solve immediately (and
// globally); in incremental mode the solve waits for the flush. Either
// way, one zero-delay event per instant commits accounting — settles,
// completion keys, the next completion event — after all same-instant
// changes have been applied. Committing once per instant (against the
// final rates) is what keeps the lazily accrued volume arithmetic, and
// with it every completion time, bit-identical across modes: the eager
// reference solves assign transient mid-instant rates, but no real time
// passes under them, so they must not move accrual anchors.
func (n *Net) markDirty(c *component) {
	c.dirty = true
	n.queueWork(c)
	if n.reference {
		n.assignRatesReference()
	}
}

// queueWork puts a component on the pending-flush queue and arms the
// coalesced zero-delay flush event.
func (n *Net) queueWork(c *component) {
	if !c.queued {
		c.queued = true
		n.work = append(n.work, c) //pfsim:allocok work queue grows to the peak dirty-component count, then reuses capacity
	}
	if n.dirtyEv != nil {
		if !n.reference {
			n.stats.Coalesced++
		}
		return
	}
	n.dirtyEv = n.eng.Schedule(0, n.flushFn)
}

// flushWork is the coalesced per-instant flush: split components that lost
// flows, re-solve every dirty component (incremental mode; reference mode
// solved eagerly at each change), commit the accounting against the
// instant's final rates, then reschedule the completion event.
//
//pfsim:hotpath
func (n *Net) flushWork() {
	n.dirtyEv = nil
	n.flushRebuilds()
	if n.reference {
		for _, c := range n.work {
			c.queued = false
			c.dirty = false
		}
		n.work = n.work[:0]
		n.commitReference()
		n.scheduleNext()
		return
	}
	n.stats.Solves++
	solved := n.solvedScratch[:0]
	for i := 0; i < len(n.work); i++ {
		c := n.work[i]
		c.queued = false
		if c.dead || !c.dirty {
			continue
		}
		c.dirty = false
		solved = append(solved, c) //pfsim:allocok solved scratch grows to the peak dirty-component count, then reuses capacity
	}
	n.work = n.work[:0]
	n.solveAll(solved)
	// Commit after every solve, sequentially and in work-queue order:
	// within each component flows commit in admission order, so per-link
	// carried accrual, completion re-keys and telemetry sum in the same
	// order as the reference pass over the whole population — regardless
	// of which worker solved which component.
	for _, c := range solved {
		for _, f := range c.flows {
			n.commit(f)
		}
	}
	for i := range solved {
		solved[i] = nil
	}
	n.solvedScratch = solved[:0]
	n.scheduleNext()
}

// solveAll runs one progressive-filling pass per component, fanning the
// passes across solver workers when both the configured parallelism and
// the flush's population warrant it. Components are disjoint, each
// worker solves with its own solveCtx, and solve epochs come from one
// atomic counter (globally unique, so a stale fixedEpoch stamp can never
// collide with a fresh solve), so concurrent passes share no mutable
// state; worker-local stats merge after the fan-in.
func (n *Net) solveAll(cs []*component) {
	par := n.par
	if par > len(cs) {
		par = len(cs)
	}
	if par > 1 && n.parFloor > 0 {
		flows := 0
		for _, c := range cs {
			flows += len(c.flows)
		}
		if flows < n.parFloor {
			par = 1
		}
	}
	if par <= 1 {
		for _, c := range cs {
			n.solveComponent(n.ctxs[0], c)
		}
	} else {
		for len(n.ctxs) < par {
			n.ctxs = append(n.ctxs, &solveCtx{}) //pfsim:allocok one ctx per worker, allocated once on the first parallel flush
		}
		ctxs := n.ctxs
		//pfsim:allocok parallel fan-out closure: the fan path's per-flush floor; the serial path stays allocation-free
		pool.Fan(par, len(cs), func(worker, i int) {
			n.solveComponent(ctxs[worker], cs[i])
		})
	}
	for _, ctx := range n.ctxs {
		n.stats.merge(&ctx.stats)
	}
}

// commitReference is the reference solver's per-instant accounting pass:
// every active flow whose allocation ended the instant at a new rate is
// settled and re-keyed. O(active flows) by design — the naive baseline.
func (n *Net) commitReference() {
	for _, f := range n.activeFlows {
		if !f.finished {
			n.commit(f)
		}
	}
}

// commit finalises one flow's instant: if the rate the solver assigned
// differs from the rate that was in force, the flow settles (charging the
// elapsed interval at the old rate), adopts the new rate for the time
// ahead, and recomputes its completion time. Flows whose allocation ended
// an instant where it began — including those a transient mid-instant
// reference solve wobbled — are untouched, anchors and keys intact.
func (n *Net) commit(f *Flow) {
	if f.rate == f.committed || f.finished {
		return
	}
	n.settle(f)
	f.committed = f.rate
	due := math.Inf(1)
	if f.rate > 1e-12 {
		due = n.eng.Now() + f.remaining/f.rate
	}
	if due == f.due {
		return
	}
	if n.reference {
		f.due = due
		return
	}
	n.dueChanged = append(n.dueChanged, dueChange{f, due}) //pfsim:allocok staged re-key list grows to the peak per-flush churn, then reuses capacity
}

// flushRebuilds recomputes connectivity for every queued component that
// lost a flow, splitting it into its surviving components; children join
// the work queue dirty. Appending while iterating is deliberate — children
// never carry the rebuild flag, so the loop terminates.
func (n *Net) flushRebuilds() {
	for i := 0; i < len(n.work); i++ {
		c := n.work[i]
		if !c.dead && c.rebuild {
			n.rebuildComponent(c)
		}
	}
}

// rebuildComponent splits a component after retirements: a union-find pass
// over the surviving flows' links rediscovers connectivity, and each
// resulting class becomes a fresh dirty component. Every child is dirty by
// construction — a retired flow freed capacity on its links, and (by
// connectivity of the original component) every surviving class contains
// at least one such link.
//
//pfsim:allocok connectivity rebuilds run on flow retirement, amortised over the retired flow's lifetime — not steady-state work
func (n *Net) rebuildComponent(c *component) {
	c.rebuild = false
	c.dirty = false
	c.dead = true
	n.deadComps++
	n.dsuEpoch++
	epoch := n.dsuEpoch
	for _, f := range c.flows {
		if f.finished {
			continue
		}
		var root *Link
		for _, l := range f.path {
			if l.dsuEpoch != epoch {
				l.dsuEpoch = epoch
				l.dsuParent = l
				l.child = nil
			}
			r := findRoot(l)
			if root == nil {
				root = r
			} else if r != root {
				r.dsuParent = root
			}
		}
	}
	for _, f := range c.flows {
		if f.finished {
			continue
		}
		var child *component
		if len(f.path) > 0 {
			root := findRoot(f.path[0])
			if root.child == nil {
				root.child = n.newDirtyChild()
			}
			child = root.child
		} else {
			child = n.newDirtyChild()
		}
		f.comp = child
		child.flows = append(child.flows, f) // c.flows order = admission order
		for _, l := range f.path {
			if l.comp != child {
				l.comp = child
				l.compIdx = len(child.links)
				child.links = append(child.links, l)
			}
		}
	}
	c.flows, c.links = nil, nil
}

// newDirtyChild allocates a rebuilt component, pre-queued and dirty.
//
//pfsim:allocok component records are born on rebuilds, which retirement pays for — not steady-state work
func (n *Net) newDirtyChild() *component {
	child := &component{dirty: true, queued: true}
	n.addComp(child)
	n.work = append(n.work, child)
	return child
}

// findRoot is union-find lookup with path halving.
func findRoot(l *Link) *Link {
	for l.dsuParent != l {
		l.dsuParent = l.dsuParent.dsuParent
		l = l.dsuParent
	}
	return l
}

// settle advances one flow's accrual anchor to the current instant,
// charging its volume at the committed rate in force since the last settle
// and accruing its links' carried telemetry. Settle points are committed
// rate changes, completions and telemetry reads — all independent of the
// solver mode, so the chunking of the floating-point accrual arithmetic
// (and therefore remaining, carried and every derived completion time) is
// bit-identical across modes.
func (n *Net) settle(f *Flow) {
	now := n.eng.Now()
	if now == f.settledAt {
		return
	}
	n.stats.FlowsSettled++
	moved := f.committed * (now - f.settledAt)
	f.settledAt = now
	if moved <= 0 {
		return
	}
	if moved > f.remaining {
		moved = f.remaining
	}
	f.remaining -= moved
	for _, l := range f.path {
		l.carried += moved
	}
}

// settleLink settles every in-flight flow crossing the link, bringing its
// carried telemetry up to the current instant.
func (n *Net) settleLink(link *Link) {
	c := link.comp
	if c == nil {
		return
	}
	for _, f := range c.flows {
		if f.finished {
			continue
		}
		for _, l := range f.path {
			if l == link {
				n.settle(f)
				break
			}
		}
	}
}

// Recompute forces a full settle at the current instant: pending component
// rebuilds are applied, every live component is re-solved (the whole
// network, in reference mode), the accounting commits against the fresh
// rates, and the next completion event is rescheduled, absorbing any
// pending coalesced flush. Flow arrival, completion and capacity changes
// recompute automatically; Recompute remains for callers that mutate
// capacity-model state in place (e.g. OST health) or need fresh rates
// mid-instant.
func (n *Net) Recompute() {
	if n.dirtyEv != nil {
		n.eng.Cancel(n.dirtyEv)
		n.dirtyEv = nil
	}
	n.flushRebuilds()
	for _, c := range n.work {
		c.queued = false
		c.dirty = false
	}
	n.work = n.work[:0]
	if n.reference {
		n.assignRatesReference()
		n.commitReference()
	} else {
		n.stats.Solves++
		live := n.solvedScratch[:0]
		for _, c := range n.comps {
			if c.dead {
				continue
			}
			c.dirty = false
			live = append(live, c)
		}
		n.solveAll(live)
		for _, c := range live {
			for _, f := range c.flows {
				n.commit(f)
			}
		}
		for i := range live {
			live[i] = nil
		}
		n.solvedScratch = live[:0]
	}
	n.scheduleNext()
}

// solveComponent performs progressive filling over one component:
//  1. every carrying link's residual capacity is its model capacity for the
//     current stream count;
//  2. repeatedly find the tightest constraint — either a link's fair share
//     (residual / unfixed flows) or a flow's own rate cap — and fix the
//     affected flows at that rate;
//  3. continue until every flow's rate is fixed.
//
// Only the component's links and flows are touched: flows elsewhere keep
// the rates (and completion keys) of their last solve, which is exact
// because disjoint components cannot constrain each other. Rate-capped
// flows are fixed in (cap, admission) order — see fixCapped — and every
// round walks the explicit unfixed-flow list, compacted in admission
// order, so the residual arithmetic is identical to the reference solver's
// monolithic pass restricted to this component. Reference mode shares none
// of this machinery (assignRatesReference): it is the oracle, so a defect
// in the component or unfixed-list bookkeeping cannot cancel out of the
// inc-vs-ref property tests. All mutable state is the component's own,
// the ctx's own, or the atomic epoch counter, so distinct components may
// solve on concurrent workers (solveAll).
//
//pfsim:hotpath
func (n *Net) solveComponent(ctx *solveCtx, c *component) {
	ctx.epoch = n.solveEpoch.Add(1)
	links := c.links
	ctx.stats.ComponentsSolved++
	ctx.stats.LinkVisits += int64(len(links))
	for _, l := range links {
		l.residual = l.model.Capacity(l.active)
		l.unfixed = 0
		l.saturated = false
	}
	unfixed := ctx.unfixed[:0]
	for _, f := range c.flows {
		if f.finished {
			continue
		}
		unfixed = append(unfixed, f) //pfsim:allocok unfixed scratch grows to the peak component population, then reuses capacity
		for _, l := range f.path {
			l.unfixed++
		}
	}
	ctx.stats.ComponentFlowsScanned += int64(len(unfixed))
	sat := ctx.sat[:0]
	for len(unfixed) > 0 {
		ctx.stats.Rounds++
		ctx.stats.FlowsScanned += int64(len(unfixed))
		minShare := math.Inf(1)
		ctx.stats.LinkVisits += int64(len(links))
		for _, l := range links {
			if l.unfixed == 0 {
				continue
			}
			res := l.residual
			if res < 0 {
				res = 0
			}
			if share := res / float64(l.unfixed); share < minShare {
				minShare = share
			}
		}
		// Fix rate-capped flows whose cap is at or below the share.
		if fixCapped(ctx, unfixed, minShare) {
			unfixed = compactUnfixed(unfixed, ctx.epoch)
			continue
		}
		if math.IsInf(minShare, 1) {
			// Only path-less capped flows remain; their caps exceeded every
			// share constraint — fix them at their cap.
			for i, f := range unfixed {
				r := f.maxRate
				if r <= 0 {
					panic("flow: unconstrained flow in rate assignment") //pfsim:allocok crash path: the boxed panic message never allocates on a live run
				}
				fixFlow(f, r, ctx.epoch)
				unfixed[i] = nil
			}
			unfixed = unfixed[:0]
			break
		}
		// Saturate bottleneck links and fix their flows at the fair share.
		ctx.stats.LinkVisits += int64(len(links))
		for _, l := range links {
			if l.unfixed == 0 {
				continue
			}
			res := l.residual
			if res < 0 {
				res = 0
			}
			if res/float64(l.unfixed) <= minShare*(1+1e-12)+1e-15 {
				l.saturated = true
				sat = append(sat, l) //pfsim:allocok saturated-link scratch grows to the peak link count, then reuses capacity
			}
		}
		progressed := false
		for _, f := range unfixed {
			onBottleneck := false
			for _, l := range f.path {
				if l.saturated {
					onBottleneck = true
					break
				}
			}
			if onBottleneck {
				fixFlow(f, minShare, ctx.epoch)
				progressed = true
			}
		}
		for _, l := range sat {
			l.saturated = false
		}
		sat = sat[:0]
		if !progressed {
			panic("flow: progressive filling made no progress") //pfsim:allocok crash path: the boxed panic message never allocates on a live run
		}
		unfixed = compactUnfixed(unfixed, ctx.epoch)
	}
	ctx.sat = sat[:0]
	ctx.unfixed = unfixed[:0]
}

// fixCapped pins every unfixed flow whose rate cap is at or below the
// round's fair share, in ascending (cap, admission) order. The ordering
// matters for bit-exactness: fair shares are non-decreasing across rounds,
// so fixing each round's capped batch in cap order makes the overall
// capped sequence globally cap-sorted — invariant under how rounds
// partition it, and therefore identical between a component-local solve
// and the reference solver's monolithic rounds (whose share milestones
// interleave other components'). Fixing in raw admission order would make
// the residual subtraction order — and with it the last ulps of later
// shares — depend on the round structure. It reports whether any flow was
// fixed.
//
//pfsim:hotpath
func fixCapped(ctx *solveCtx, unfixed []*Flow, minShare float64) bool {
	capped := ctx.capped[:0]
	for _, f := range unfixed {
		if f.maxRate > 0 && f.maxRate <= minShare {
			capped = append(capped, f) //pfsim:allocok capped scratch grows to the peak capped population, then reuses capacity
		}
	}
	if len(capped) > 0 {
		sortCapped(capped)
		for _, f := range capped {
			fixFlow(f, f.maxRate, ctx.epoch)
		}
	}
	fixed := len(capped) > 0
	for i := range capped {
		capped[i] = nil
	}
	ctx.capped = capped[:0]
	return fixed
}

// sortCapped orders a round's capped batch by ascending (maxRate, seq) —
// a strict total order (seq is unique), so the result is identical to any
// other correct sort of the same keys. An in-place insertion sort replaces
// sort.Slice here because the latter allocates its comparison closure (and
// boxes the interface header) on every call, and fixCapped runs once per
// solver round on the zero-alloc steady-state path; capped batches are
// small (often 0–2 flows), where insertion sort also wins on time.
func sortCapped(fs []*Flow) {
	for i := 1; i < len(fs); i++ {
		f := fs[i]
		j := i - 1
		for j >= 0 && (fs[j].maxRate > f.maxRate || (fs[j].maxRate == f.maxRate && fs[j].seq > f.seq)) {
			fs[j+1] = fs[j]
			j--
		}
		fs[j+1] = f
	}
}

// assignRatesReference is the naive progressive-filling pass, preserved as
// the correctness oracle and cost baseline: every link in the network is
// scanned (idle ones and other components' included) and every round
// rescans the whole active population instead of an unfixed-flow list. The
// rate-fixing order matches the partitioned path — capped flows in
// (cap, admission) order, bottleneck flows in admission order — so results
// are bit-identical while the implementations stay independent.
func (n *Net) assignRatesReference() {
	links := n.links
	ctx := n.ctxs[0]
	epoch := n.solveEpoch.Add(1)
	n.stats.Solves++
	n.stats.ComponentsSolved++
	n.stats.ComponentFlowsScanned += int64(n.activeCount)
	n.stats.LinkVisits += int64(len(links))
	for _, l := range links {
		l.residual = l.model.Capacity(l.active)
		l.unfixed = 0
		l.saturated = false
	}
	unfixedCount := 0
	for _, f := range n.activeFlows {
		if f.finished {
			continue
		}
		unfixedCount++
		for _, l := range f.path {
			l.unfixed++
		}
	}
	sat := ctx.sat[:0]
	for unfixedCount > 0 {
		n.stats.Rounds++
		n.stats.FlowsScanned += int64(n.activeCount)
		minShare := math.Inf(1)
		n.stats.LinkVisits += int64(len(links))
		for _, l := range links {
			if l.unfixed == 0 {
				continue
			}
			res := l.residual
			if res < 0 {
				res = 0
			}
			if share := res / float64(l.unfixed); share < minShare {
				minShare = share
			}
		}
		// Fix rate-capped flows whose cap is at or below the share, in
		// (cap, admission) order — see fixCapped for why the order matters.
		capped := ctx.capped[:0]
		for _, f := range n.activeFlows {
			if f.finished || f.fixedEpoch == epoch || f.maxRate <= 0 || f.maxRate > minShare {
				continue
			}
			capped = append(capped, f) //pfsim:allocok capped scratch grows to the peak capped population, then reuses capacity
		}
		if len(capped) > 0 {
			sortCapped(capped)
			for _, f := range capped {
				fixFlow(f, f.maxRate, epoch)
				unfixedCount--
			}
			for i := range capped {
				capped[i] = nil
			}
			ctx.capped = capped[:0]
			continue
		}
		ctx.capped = capped[:0]
		if math.IsInf(minShare, 1) {
			// Only path-less capped flows remain; their caps exceeded every
			// share constraint — fix them at their cap.
			for _, f := range n.activeFlows {
				if f.finished || f.fixedEpoch == epoch {
					continue
				}
				r := f.maxRate
				if r <= 0 {
					panic("flow: unconstrained flow in rate assignment") //pfsim:allocok crash path: the boxed panic message never allocates on a live run
				}
				fixFlow(f, r, epoch)
				unfixedCount--
			}
			ctx.sat = sat[:0]
			return
		}
		// Saturate bottleneck links and fix their flows at the fair share.
		n.stats.LinkVisits += int64(len(links))
		for _, l := range links {
			if l.unfixed == 0 {
				continue
			}
			res := l.residual
			if res < 0 {
				res = 0
			}
			if res/float64(l.unfixed) <= minShare*(1+1e-12)+1e-15 {
				l.saturated = true
				sat = append(sat, l) //pfsim:allocok saturated-link scratch grows to the peak link count, then reuses capacity
			}
		}
		progressed := false
		for _, f := range n.activeFlows {
			if f.finished || f.fixedEpoch == epoch {
				continue
			}
			onBottleneck := false
			for _, l := range f.path {
				if l.saturated {
					onBottleneck = true
					break
				}
			}
			if onBottleneck {
				fixFlow(f, minShare, epoch)
				unfixedCount--
				progressed = true
			}
		}
		for _, l := range sat {
			l.saturated = false
		}
		sat = sat[:0]
		if !progressed {
			panic("flow: progressive filling made no progress") //pfsim:allocok crash path: the boxed panic message never allocates on a live run
		}
	}
	ctx.sat = sat[:0]
}

// compactUnfixed drops flows fixed in the given solve epoch from the
// unfixed list in place, preserving admission order (which determines the
// order residuals are charged, and therefore bit-exactness against a full
// rescan).
func compactUnfixed(fs []*Flow, epoch int64) []*Flow {
	w := 0
	for _, f := range fs {
		if f.fixedEpoch != epoch {
			fs[w] = f
			w++
		}
	}
	for i := w; i < len(fs); i++ {
		fs[i] = nil
	}
	return fs[:w]
}

// fixFlow pins a flow's rate for the solve identified by epoch and
// charges it against its path's residuals. Accounting is untouched here:
// the per-instant commit settles the flow and re-keys its completion only
// if the rate it ends the instant with differs from the one in force, so
// flows whose allocation is unmoved — untouched components, or transient
// mid-instant wobbles — keep their anchors and heap keys bit-for-bit.
// Epochs are drawn from one atomic counter and never reused, so a stamp
// left by an earlier solve (on any worker) can never masquerade as this
// one's.
func fixFlow(f *Flow, rate float64, epoch int64) {
	f.fixedEpoch = epoch
	for _, l := range f.path {
		l.residual -= rate
		l.unfixed--
	}
	f.rate = rate
}

// scheduleNext arranges the next completion event at the earliest time any
// active flow drains. Stalled flows (rate ~ 0) never complete on their own;
// if every flow stalls the engine's deadlock detector reports the hang.
//
// Incremental mode applies the flush's staged re-keys to the completion
// heap (one heap.Fix per moved flow, or a single rebuild when at least
// half the keys moved) and peeks the root; the engine event is moved in
// place via Reschedule. Completion times are absolute anchors
// (settle time + remaining/rate), identical in both modes, so the event
// time is bit-identical to the reference scan. Reference mode keeps the
// naive linear scan with cancel-and-repost.
func (n *Net) scheduleNext() {
	if n.reference {
		if n.nextEv != nil {
			n.eng.Cancel(n.nextEv)
			n.nextEv = nil
		}
		at := math.Inf(1)
		for _, f := range n.activeFlows {
			if f.finished {
				continue
			}
			if f.due < at {
				at = f.due
			}
		}
		if math.IsInf(at, 1) {
			return
		}
		n.nextEv = n.eng.ScheduleAt(at, n.completionFn)
		return
	}
	if k := len(n.dueChanged); k > 0 {
		if k*2 >= len(n.completions) {
			for _, dc := range n.dueChanged {
				dc.f.due = dc.due
			}
			heap.Init(&n.completions)
			n.stats.HeapOps += int64(len(n.completions))
		} else {
			for _, dc := range n.dueChanged {
				dc.f.due = dc.due
				heap.Fix(&n.completions, dc.f.heapIdx)
				n.stats.HeapOps++
			}
		}
		for i := range n.dueChanged {
			n.dueChanged[i] = dueChange{}
		}
		n.dueChanged = n.dueChanged[:0]
	}
	if len(n.completions) == 0 || math.IsInf(n.completions[0].due, 1) {
		if n.nextEv != nil {
			n.eng.Cancel(n.nextEv)
			n.nextEv = nil
		}
		return
	}
	// Re-sequence every flush, exactly as cancel-and-repost would: the
	// completion event's order among same-instant events must not depend
	// on the solver mode, or downstream admission order — and with it the
	// residual arithmetic — could diverge.
	at := n.completions[0].due
	if !n.eng.Reschedule(n.nextEv, at) {
		n.nextEv = n.eng.ScheduleAt(at, n.completionFn)
	}
}

// onCompletion retires every flow whose completion time has arrived
// (batching simultaneous completions, in admission order), fires their
// Done signals, and requests a recompute for the touched components —
// coalesced with any same-instant arrivals the completions trigger.
//
//pfsim:hotpath
func (n *Net) onCompletion() {
	n.nextEv = nil
	now := n.eng.Now()
	done := n.doneScratch[:0]
	if n.reference {
		for _, f := range n.activeFlows {
			if !f.finished && f.due <= now {
				done = append(done, f) //pfsim:allocok completion-batch scratch grows to the peak batch, then reuses capacity
			}
		}
	} else {
		// Equal dues pop in admission (seq) order — the same order the
		// reference scan collects them in.
		for len(n.completions) > 0 && n.completions[0].due <= now {
			f := heap.Pop(&n.completions).(*Flow)
			n.stats.HeapOps++
			done = append(done, f) //pfsim:allocok completion-batch scratch grows to the peak batch, then reuses capacity
		}
	}
	if len(done) == 0 {
		n.scheduleNext()
		return
	}
	for _, f := range done {
		// Final settle: the flow carries exactly its residual volume, so
		// cumulative link telemetry sums to the exact flow sizes.
		n.stats.FlowsSettled++
		if f.remaining > 0 {
			for _, l := range f.path {
				l.carried += f.remaining
			}
			f.remaining = 0
		}
		f.settledAt = now
		f.finished = true
		f.finishAt = now
		n.retire(f)
	}
	n.compactActive()
	for _, f := range done {
		if f.onDone != nil {
			f.onDone()
		}
	}
	if n.observer != nil {
		for _, f := range done {
			n.observer.FlowFinished(f)
		}
	}
	for _, f := range done {
		f.Done.Fire()
	}
	// retire queued each touched component for rebuild, which armed the
	// coalesced flush event; reference mode additionally re-solves the
	// survivors' rates eagerly, as it does for every change.
	if n.reference {
		n.assignRatesReference()
	}
	for i := range done {
		done[i] = nil
	}
	n.doneScratch = done[:0]
}

// retire removes a drained flow from its links, the completion heap and
// the active set, and marks its component for a lazy connectivity rebuild.
func (n *Net) retire(f *Flow) {
	if f.heapIdx >= 0 {
		heap.Remove(&n.completions, f.heapIdx)
		n.stats.HeapOps++
	}
	for _, l := range f.path {
		l.active--
		if l.active == 0 {
			n.activeLinkCount--
			n.detachLink(l)
		}
	}
	if c := f.comp; c != nil {
		f.comp = nil
		c.rebuild = true
		n.queueWork(c)
	}
	n.activeCount--
	n.finishedInActive++
}

// detachLink removes an idle link from its component (order-insensitive
// swap remove; link order never affects the solve numerically).
func (n *Net) detachLink(l *Link) {
	c := l.comp
	if c == nil {
		return
	}
	last := len(c.links) - 1
	moved := c.links[last]
	c.links[l.compIdx] = moved
	moved.compIdx = l.compIdx
	c.links[last] = nil
	c.links = c.links[:last]
	l.comp = nil
	l.compIdx = -1
}

// compactActive drops completed-flow tombstones from the admission-ordered
// active list once they are half of it, keeping retirement amortised O(1).
func (n *Net) compactActive() {
	if n.finishedInActive < 16 || n.finishedInActive*2 < len(n.activeFlows) {
		return
	}
	w := 0
	for _, f := range n.activeFlows {
		if !f.finished {
			n.activeFlows[w] = f
			w++
		}
	}
	for i := w; i < len(n.activeFlows); i++ {
		n.activeFlows[i] = nil
	}
	n.activeFlows = n.activeFlows[:w]
	n.finishedInActive = 0
}

// CheckInvariants verifies the current rate allocation and solver state:
// every active flow has a non-negative fixed rate no greater than its cap,
// no link carries more than its capacity (within tolerance), the component
// partition matches the links the active flows actually cross, accrual
// anchors are consistent, and (in incremental mode) the completion heap is
// coherent. Any pending coalesced work is flushed first so the settled
// allocation is checked. It returns nil when consistent; tests call it
// after topology changes.
func (n *Net) CheckInvariants() error {
	if n.dirtyEv != nil || len(n.work) > 0 {
		n.Recompute()
	}
	now := n.eng.Now()
	// loads is order-safe as long as it is never ranged: it is filled in
	// admission order and read only by direct indexing from the n.links
	// slice loop below (maporder would flag any future range over it).
	loads := make(map[*Link]float64)
	live := 0
	for _, f := range n.activeFlows {
		if f.finished {
			continue
		}
		live++
		if f.fixedEpoch == 0 {
			// fix stamps the solve epoch (always >= 1) on every flow it
			// pins; an unstamped active flow means a dirty-flag bug skipped
			// its component's solve entirely.
			return fmt.Errorf("flow: %q was never solved", f.name)
		}
		if f.rate != f.committed {
			return fmt.Errorf("flow: %q rate %v not committed (accrual rate %v) after flush",
				f.name, f.rate, f.committed)
		}
		if f.maxRate > 0 && f.rate > f.maxRate*(1+1e-9) {
			return fmt.Errorf("flow: %q rate %v exceeds cap %v", f.name, f.rate, f.maxRate)
		}
		if f.settledAt > now || f.remaining < 0 {
			return fmt.Errorf("flow: %q accrual anchor inconsistent (settledAt %v, now %v, remaining %v)",
				f.name, f.settledAt, now, f.remaining)
		}
		if c := f.comp; c == nil || c.dead {
			return fmt.Errorf("flow: %q has no live component", f.name)
		}
		for _, l := range f.path {
			loads[l] += f.rate
			if l.comp != f.comp {
				return fmt.Errorf("flow: %q crosses link %q outside its component", f.name, l.name)
			}
		}
	}
	if live != n.activeCount {
		return fmt.Errorf("flow: active count %d but %d live flows listed", n.activeCount, live)
	}
	activeLinks := 0
	for _, l := range n.links {
		cap := l.model.Capacity(l.active)
		if load := loads[l]; load > cap*(1+1e-6)+1e-9 {
			return fmt.Errorf("flow: link %q oversubscribed: %v > %v", l.name, load, cap)
		}
		inComp := l.comp != nil && !l.comp.dead &&
			l.compIdx >= 0 && l.compIdx < len(l.comp.links) && l.comp.links[l.compIdx] == l
		if (l.active > 0) != inComp {
			return fmt.Errorf("flow: link %q active=%d but component membership %v", l.name, l.active, inComp)
		}
		if l.active > 0 {
			activeLinks++
		}
	}
	if activeLinks != n.activeLinkCount {
		return fmt.Errorf("flow: active-link count %d, counted %d", n.activeLinkCount, activeLinks)
	}
	if err := n.checkComponents(); err != nil {
		return err
	}
	return n.checkHeap()
}

// checkComponents verifies the component partition: live components hold
// exactly the live flows (each once, in admission order), their links
// point back at them, and no settled component is left dirty or pending
// rebuild.
func (n *Net) checkComponents() error {
	seen := 0
	dead := 0
	for _, c := range n.comps {
		if c.dead {
			dead++
			continue
		}
		if c.dirty || c.rebuild || c.queued {
			return fmt.Errorf("flow: component with %d flows still dirty/rebuild/queued after flush", len(c.flows))
		}
		if len(c.flows) == 0 {
			return fmt.Errorf("flow: empty live component")
		}
		var prev int64 = -1
		for _, f := range c.flows {
			if f.finished {
				return fmt.Errorf("flow: finished flow %q lingers in a settled component", f.name)
			}
			if f.comp != c {
				return fmt.Errorf("flow: %q listed in a component it does not claim", f.name)
			}
			if f.seq <= prev {
				return fmt.Errorf("flow: component flows out of admission order at %q", f.name)
			}
			prev = f.seq
			seen++
		}
		for _, l := range c.links {
			if l.comp != c {
				return fmt.Errorf("flow: link %q listed in a component it does not claim", l.name)
			}
			if l.active == 0 {
				return fmt.Errorf("flow: idle link %q lingers in a component", l.name)
			}
		}
	}
	if dead != n.deadComps {
		return fmt.Errorf("flow: dead-component count %d, counted %d", n.deadComps, dead)
	}
	if seen != n.activeCount {
		return fmt.Errorf("flow: components hold %d flows for %d active", seen, n.activeCount)
	}
	return nil
}

// checkHeap verifies the completion heap in incremental mode: it holds
// exactly the active flows, every entry knows its own index, the heap
// property holds under (due, seq), and each key is consistent with the
// flow's accrual anchor — settledAt + remaining/rate within floating-point
// tolerance (telemetry settles may re-anchor a flow without re-keying it,
// shifting the reconstruction by ulps), or +Inf when stalled.
func (n *Net) checkHeap() error {
	if n.reference {
		if len(n.completions) != 0 {
			return fmt.Errorf("flow: reference solver holds %d completion-heap entries", len(n.completions))
		}
		return nil
	}
	if len(n.completions) != n.activeCount {
		return fmt.Errorf("flow: completion heap has %d entries for %d active flows",
			len(n.completions), n.activeCount)
	}
	for i, f := range n.completions {
		if f.heapIdx != i {
			return fmt.Errorf("flow: %q at heap position %d claims heapIdx %d", f.name, i, f.heapIdx)
		}
		if i > 0 {
			p := n.completions[(i-1)/2]
			if f.due < p.due || (f.due == p.due && f.seq < p.seq) {
				return fmt.Errorf("flow: heap order violated at position %d (%q due %v under %q due %v)",
					i, f.name, f.due, p.name, p.due)
			}
		}
		want := math.Inf(1)
		if f.committed > 1e-12 {
			want = f.settledAt + f.remaining/f.committed
		}
		if math.IsInf(want, 1) != math.IsInf(f.due, 1) ||
			(!math.IsInf(want, 1) && math.Abs(f.due-want) > 1e-6*(1+math.Abs(want))) {
			return fmt.Errorf("flow: %q completion key %v, want ~%v (rate %v, remaining %v, settledAt %v)",
				f.name, f.due, want, f.committed, f.remaining, f.settledAt)
		}
	}
	return nil
}

// Dones collects the completion signals of a flow batch, ready for
// Proc.WaitAll — the usual coda to StartBatch.
func Dones(flows []*Flow) []*sim.Signal {
	out := make([]*sim.Signal, len(flows))
	for i, f := range flows {
		out[i] = f.Done
	}
	return out
}

// TransferThen starts a flow and runs k with it on completion — the
// continuation form of "transfer and wait". (Shim-mode callers start the
// flow and Wait on its Done signal inline; the proc convenience wrapper
// was deleted when the procshim ratchet landed.)
//
//pfsim:taskctx
func (n *Net) TransferThen(t *sim.Task, name string, sizeMB, maxRate float64, k func(*Flow), path ...*Link) *Flow {
	f := n.Start(name, sizeMB, maxRate, path...)
	f.Done.Await(t, func() { k(f) })
	return f
}
