package flow

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"pfsim/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFlow(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	l := n.NewLink("pipe", Const(100))
	f := n.Start("xfer", 1000, 0, l)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !f.Finished() {
		t.Fatal("flow did not finish")
	}
	if !almost(f.FinishedAt(), 10, 1e-9) {
		t.Errorf("finished at %v, want 10", f.FinishedAt())
	}
	if !almost(l.Carried(), 1000, 1e-6) {
		t.Errorf("carried %v, want 1000", l.Carried())
	}
	if l.Active() != 0 {
		t.Errorf("link still has %d active flows", l.Active())
	}
}

func TestFairSharing(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	l := n.NewLink("pipe", Const(100))
	f1 := n.Start("a", 1000, 0, l)
	f2 := n.Start("b", 500, 0, l)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Both share 50 MB/s; b finishes at t=10 having moved 500; a then gets
	// 100 MB/s for its remaining 500: t = 10 + 5 = 15.
	if !almost(f2.FinishedAt(), 10, 1e-9) {
		t.Errorf("b finished at %v, want 10", f2.FinishedAt())
	}
	if !almost(f1.FinishedAt(), 15, 1e-9) {
		t.Errorf("a finished at %v, want 15", f1.FinishedAt())
	}
}

func TestMaxRateCap(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	l := n.NewLink("pipe", Const(100))
	slow := n.Start("slow", 100, 10, l) // capped at 10
	fast := n.Start("fast", 900, 0, l)  // gets the residual 90
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(slow.FinishedAt(), 10, 1e-9) {
		t.Errorf("slow finished at %v, want 10", slow.FinishedAt())
	}
	if !almost(fast.FinishedAt(), 10, 1e-9) {
		t.Errorf("fast finished at %v, want 10", fast.FinishedAt())
	}
}

func TestMultiLinkBottleneck(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	wide := n.NewLink("wide", Const(1000))
	narrow := n.NewLink("narrow", Const(10))
	f := n.Start("x", 100, 0, wide, narrow)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(f.FinishedAt(), 10, 1e-9) {
		t.Errorf("finished at %v, want 10 (narrow-bound)", f.FinishedAt())
	}
}

func TestMaxMinAcrossLinks(t *testing.T) {
	// Classic max-min: flows A (l1), B (l1,l2), C (l2).
	// l1 cap 100, l2 cap 40. B is bottlenecked on l2: B=C=20.
	// A then gets l1's residual: 80.
	e := sim.NewEngine()
	n := NewNet(e)
	l1 := n.NewLink("l1", Const(100))
	l2 := n.NewLink("l2", Const(40))
	a := n.Start("A", 1e6, 0, l1)
	b := n.Start("B", 1e6, 0, l1, l2)
	c := n.Start("C", 1e6, 0, l2)
	n.Recompute()
	if !almost(b.Rate(), 20, 1e-9) || !almost(c.Rate(), 20, 1e-9) {
		t.Errorf("B,C rates = %v,%v, want 20,20", b.Rate(), c.Rate())
	}
	if !almost(a.Rate(), 80, 1e-9) {
		t.Errorf("A rate = %v, want 80", a.Rate())
	}
	e.Stop()
}

func TestZeroSizeFlowCompletesImmediately(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	l := n.NewLink("pipe", Const(100))
	f := n.Start("empty", 0, 0, l)
	if !f.Finished() || !f.Done.Fired() {
		t.Error("zero-size flow should finish immediately")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPathlessCappedFlow(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	f := n.Start("direct", 100, 25)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(f.FinishedAt(), 4, 1e-9) {
		t.Errorf("finished at %v, want 4", f.FinishedAt())
	}
}

func TestPathlessUncappedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for pathless uncapped flow")
		}
	}()
	e := sim.NewEngine()
	NewNet(e).Start("bad", 100, 0)
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for negative size")
		}
	}()
	e := sim.NewEngine()
	n := NewNet(e)
	l := n.NewLink("pipe", Const(1))
	n.Start("bad", -5, 0, l)
}

func TestThrashModel(t *testing.T) {
	th := Thrash{Base: 288, Gamma: 0.01}
	if got := th.Capacity(1); got != 288 {
		t.Errorf("k=1: %v", got)
	}
	if got := th.Capacity(16); !almost(got, 288/1.15, 1e-9) {
		t.Errorf("k=16: %v, want %v", got, 288/1.15)
	}
	if got := th.Capacity(0); got != 288 {
		t.Errorf("k=0: %v", got)
	}
}

func TestThrashLinkDegradation(t *testing.T) {
	// Two streams on a thrashing link: each gets Base/(1+g) / 2.
	e := sim.NewEngine()
	n := NewNet(e)
	l := n.NewLink("ost", Thrash{Base: 100, Gamma: 0.5})
	a := n.Start("a", 1e6, 0, l)
	b := n.Start("b", 1e6, 0, l)
	n.Recompute()
	want := 100 / 1.5 / 2
	if !almost(a.Rate(), want, 1e-9) || !almost(b.Rate(), want, 1e-9) {
		t.Errorf("rates %v,%v want %v", a.Rate(), b.Rate(), want)
	}
	e.Stop()
}

func TestDynamicCapacityChange(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	l := n.NewLink("pipe", Const(100))
	f := n.Start("x", 1000, 0, l)
	e.Schedule(5, func() {
		// After 500 MB at 100 MB/s, throttle to 25 MB/s.
		l.SetModel(Const(25))
		n.Recompute()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The flow moved 500 MB by t=5, then drains 500 MB at 25 MB/s: t=25.
	if !almost(f.FinishedAt(), 25, 1e-6) {
		t.Errorf("finished at %v, want 25", f.FinishedAt())
	}
}

func TestSimultaneousCompletionsBatch(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	l := n.NewLink("pipe", Const(100))
	var flows []*Flow
	for i := 0; i < 10; i++ {
		flows = append(flows, n.Start(fmt.Sprintf("f%d", i), 100, 0, l))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		if !almost(f.FinishedAt(), 10, 1e-9) {
			t.Errorf("%s finished at %v, want 10", f.Name(), f.FinishedAt())
		}
	}
	if n.ActiveFlows() != 0 {
		t.Errorf("%d flows still active", n.ActiveFlows())
	}
}

func TestTransferAndWait(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	l := n.NewLink("pipe", Const(50))
	var took float64
	e.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		f := n.Start("xfer", 500, 0, l)
		p.Wait(f.Done)
		took = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(took, 10, 1e-9) {
		t.Errorf("transfer took %v, want 10", took)
	}
}

// TestConservation: total bytes carried equals sum of flow sizes, and no
// link ever exceeds its capacity (checked via completion times).
func TestConservationProperty(t *testing.T) {
	f := func(sizes []uint16, capRaw uint16) bool {
		if len(sizes) == 0 || len(sizes) > 24 {
			return true
		}
		capacity := float64(capRaw%1000) + 1
		e := sim.NewEngine()
		n := NewNet(e)
		l := n.NewLink("pipe", Const(capacity))
		total := 0.0
		var flows []*Flow
		for i, s := range sizes {
			size := float64(s%5000) + 1
			total += size
			flows = append(flows, n.Start(fmt.Sprintf("f%d", i), size, 0, l))
		}
		if err := e.Run(); err != nil {
			return false
		}
		// Link can't move data faster than capacity: last completion must be
		// at or after total/capacity (within tolerance).
		last := 0.0
		for _, fl := range flows {
			if !fl.Finished() {
				return false
			}
			if fl.FinishedAt() > last {
				last = fl.FinishedAt()
			}
		}
		if last < total/capacity-1e-6 {
			return false
		}
		return almost(l.Carried(), total, 1e-3*total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestWorkConservingProperty: a single uncapped flow on one link always
// finishes in exactly size/capacity.
func TestWorkConservingProperty(t *testing.T) {
	f := func(sizeRaw, capRaw uint16) bool {
		size := float64(sizeRaw%10000) + 1
		capacity := float64(capRaw%2000) + 1
		e := sim.NewEngine()
		n := NewNet(e)
		l := n.NewLink("pipe", Const(capacity))
		fl := n.Start("x", size, 0, l)
		if err := e.Run(); err != nil {
			return false
		}
		return almost(fl.FinishedAt(), size/capacity, 1e-6*(size/capacity))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStaggeredArrivals(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	l := n.NewLink("pipe", Const(100))
	var f1, f2 *Flow
	f1 = n.Start("first", 1000, 0, l)
	e.Schedule(5, func() { f2 = n.Start("second", 250, 0, l) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// f1 runs alone [0,5] moving 500. Then shares 50/50: f2 needs 5s
	// (finishes t=10, moving 250), f1 has 250 left at t=10, finishes t=12.5.
	if !almost(f2.FinishedAt(), 10, 1e-6) {
		t.Errorf("second finished at %v, want 10", f2.FinishedAt())
	}
	if !almost(f1.FinishedAt(), 12.5, 1e-6) {
		t.Errorf("first finished at %v, want 12.5", f1.FinishedAt())
	}
}

func TestManyFlowsAcrossTopology(t *testing.T) {
	// Star topology: per-client NIC 100, shared backbone 250, 4 clients.
	// Backbone is the bottleneck: each client gets 62.5.
	e := sim.NewEngine()
	n := NewNet(e)
	backbone := n.NewLink("backbone", Const(250))
	var flows []*Flow
	for i := 0; i < 4; i++ {
		nic := n.NewLink(fmt.Sprintf("nic%d", i), Const(100))
		flows = append(flows, n.Start(fmt.Sprintf("c%d", i), 625, 0, nic, backbone))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		if !almost(f.FinishedAt(), 10, 1e-6) {
			t.Errorf("%s finished at %v, want 10", f.Name(), f.FinishedAt())
		}
	}
}

func TestHeterogeneousFairness(t *testing.T) {
	// 2 clients with NIC 30 (capped below fair share) + 2 with NIC 200 on a
	// backbone of 260: capped pair gets 30 each, the rest split 200/2=100.
	e := sim.NewEngine()
	n := NewNet(e)
	backbone := n.NewLink("bb", Const(260))
	rates := map[string]float64{}
	var flows []*Flow
	for i := 0; i < 4; i++ {
		capc := 200.0
		if i < 2 {
			capc = 30
		}
		nic := n.NewLink(fmt.Sprintf("nic%d", i), Const(capc))
		flows = append(flows, n.Start(fmt.Sprintf("c%d", i), 1e6, 0, nic, backbone))
	}
	n.Recompute()
	for _, f := range flows {
		rates[f.Name()] = f.Rate()
	}
	if !almost(rates["c0"], 30, 1e-9) || !almost(rates["c1"], 30, 1e-9) {
		t.Errorf("capped rates = %v,%v want 30", rates["c0"], rates["c1"])
	}
	if !almost(rates["c2"], 100, 1e-9) || !almost(rates["c3"], 100, 1e-9) {
		t.Errorf("uncapped rates = %v,%v want 100", rates["c2"], rates["c3"])
	}
	e.Stop()
}

func TestFlowAccessors(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	l := n.NewLink("pipe", Const(10))
	f := n.Start("x", 100, 0, l)
	if f.Name() != "x" || f.Size() != 100 || f.Remaining() != 100 {
		t.Errorf("accessors wrong: %s %v %v", f.Name(), f.Size(), f.Remaining())
	}
	if f.Started() != 0 {
		t.Errorf("started = %v", f.Started())
	}
	if l.Name() != "pipe" {
		t.Errorf("link name = %s", l.Name())
	}
	if _, ok := l.Model().(Const); !ok {
		t.Errorf("model type unexpected")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckInvariants(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	l1 := n.NewLink("l1", Const(100))
	l2 := n.NewLink("l2", Const(40))
	n.Start("A", 1e6, 0, l1)
	n.Start("B", 1e6, 0, l1, l2)
	n.Start("C", 1e6, 25, l2)
	n.Recompute()
	if err := n.CheckInvariants(); err != nil {
		t.Errorf("consistent allocation flagged: %v", err)
	}
	e.Stop()
}

func TestCheckInvariantsRandomised(t *testing.T) {
	// Random star topologies must always satisfy the allocation
	// invariants after progressive filling.
	for seed := 0; seed < 25; seed++ {
		e := sim.NewEngine()
		n := NewNet(e)
		backbone := n.NewLink("bb", Const(float64(50+seed*37%400)))
		nFlows := 3 + seed%9
		for i := 0; i < nFlows; i++ {
			nic := n.NewLink(fmt.Sprintf("nic%d", i), Const(float64(20+(seed*i)%150)))
			cap := 0.0
			if i%3 == 0 {
				cap = float64(5 + i*7)
			}
			n.Start(fmt.Sprintf("f%d", i), 1e5, cap, nic, backbone)
		}
		n.Recompute()
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e.Stop()
	}
}
