package flow

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pfsim/internal/sim"
)

// opKind discriminates the steps of a randomized schedule.
type opKind int

const (
	opStart   opKind = iota // start one flow
	opBatch                 // admit several flows via StartBatch
	opCap                   // change a link's capacity model (with an explicit Recompute)
	opCapLazy               // change a link's capacity model, letting the coalesced solve apply it
	opChain                 // start a flow at the instant an earlier op's first flow completes
)

// specTmpl describes one flow over link indices, resolved per net at
// replay time. A zero size is an instantaneous flow; a zero maxRate means
// uncapped; an empty path with a positive maxRate is a path-less capped
// flow.
type specTmpl struct {
	path    []int
	size    float64
	maxRate float64
	name    string
}

// solverOp is one step of a randomized schedule, replayable on any net.
type solverOp struct {
	at     float64
	kind   opKind
	specs  []specTmpl // opStart/opChain: one entry; opBatch: all entries
	link   int        // opCap: target link
	mbs    float64    // opCap: new capacity
	target int        // opChain: index of the earlier flow-creating op to chain on
}

// randomSpec draws one flow description. Zero-duration flows and path-less
// capped flows appear with small probability so the heap path sees both.
func randomSpec(rng *rand.Rand, nLinks int, name string) specTmpl {
	if rng.Intn(10) == 0 { // path-less capped flow
		return specTmpl{size: 1 + rng.Float64()*500, maxRate: 1 + rng.Float64()*100, name: name}
	}
	pathLen := 1 + rng.Intn(3)
	seen := map[int]bool{}
	var path []int
	for len(path) < pathLen {
		k := rng.Intn(nLinks)
		if !seen[k] {
			seen[k] = true
			path = append(path, k)
		}
	}
	size := 1 + rng.Float64()*2000
	if rng.Intn(8) == 0 {
		size = 0 // zero-duration flow: completes at its admission instant
	}
	cap := 0.0
	if rng.Intn(3) == 0 {
		cap = 1 + rng.Float64()*100
	}
	return specTmpl{path: path, size: size, maxRate: cap, name: name}
}

// randomSchedule draws a churny schedule of single starts, batch
// admissions, capacity changes and completion-chained arrivals over
// nLinks links. Several ops share instants on purpose, to exercise
// same-instant coalescing; chained ops land exactly on completion
// instants, interleaving arrivals with completions.
func randomSchedule(rng *rand.Rand, nLinks int) []solverOp {
	var ops []solverOp
	var starters []int // op indices that create at least one flow
	at := 0.0
	nOps := 8 + rng.Intn(50)
	for i := 0; i < nOps; i++ {
		if rng.Intn(3) > 0 { // bursts: 1/3 of ops land on a fresh instant
			at += rng.Float64() * 3
		}
		switch r := rng.Intn(10); {
		case r == 0 && i > 0:
			kind := opCap
			if rng.Intn(2) == 0 {
				kind = opCapLazy
			}
			ops = append(ops, solverOp{
				at:   at,
				kind: kind,
				link: rng.Intn(nLinks),
				mbs:  5 + rng.Float64()*400,
			})
		case r == 1 && len(starters) > 0:
			ops = append(ops, solverOp{
				at:     at, // unused: the chain fires on completion
				kind:   opChain,
				specs:  []specTmpl{randomSpec(rng, nLinks, fmt.Sprintf("c%d", i))},
				target: starters[rng.Intn(len(starters))],
			})
		case r <= 4:
			width := 2 + rng.Intn(24)
			specs := make([]specTmpl, width)
			for j := range specs {
				specs[j] = randomSpec(rng, nLinks, fmt.Sprintf("b%d_%d", i, j))
			}
			starters = append(starters, len(ops))
			ops = append(ops, solverOp{at: at, kind: opBatch, specs: specs})
		default:
			starters = append(starters, len(ops))
			ops = append(ops, solverOp{
				at:    at,
				kind:  opStart,
				specs: []specTmpl{randomSpec(rng, nLinks, fmt.Sprintf("f%d", i))},
			})
		}
	}
	return ops
}

// replay builds a star of nLinks Const links with the given capacities,
// schedules ops, runs the engine, and returns the flows (in creation
// order), links and net. With invariants set, CheckInvariants runs inside
// every op event. par > 1 solves dirty components on concurrent workers,
// with the population floor removed so even tiny flushes take the
// parallel path.
func replay(t *testing.T, ops []solverOp, caps []float64, reference bool, par int, invariants bool) ([]*Flow, []*Link, *Net) {
	t.Helper()
	e := sim.NewEngine()
	n := NewNet(e)
	n.UseReferenceSolver(reference)
	if par > 1 {
		n.SetSolveParallelism(par)
		n.parFloor = 0
	}
	links := make([]*Link, len(caps))
	for i, c := range caps {
		links[i] = n.NewLink(fmt.Sprintf("l%d", i), Const(c))
	}
	resolve := func(sp specTmpl) FlowSpec {
		path := make([]*Link, len(sp.path))
		for i, k := range sp.path {
			path[i] = links[k]
		}
		return FlowSpec{Name: sp.name, SizeMB: sp.size, MaxRate: sp.maxRate, Path: path}
	}
	check := func(where string) {
		if invariants {
			if err := n.CheckInvariants(); err != nil {
				t.Errorf("invariants after %s: %v", where, err)
			}
		}
	}
	var flows []*Flow
	firstFlow := make([]*Flow, len(ops)) // first flow created by each op, for chains
	chainsOn := make(map[int][]solverOp) // target op index -> chained ops
	for _, op := range ops {
		if op.kind == opChain {
			chainsOn[op.target] = append(chainsOn[op.target], op)
		}
	}
	var armChains func(opIdx int)
	armChains = func(opIdx int) {
		target := firstFlow[opIdx]
		for ci, chain := range chainsOn[opIdx] {
			chain := chain
			e.Spawn(fmt.Sprintf("chain%d_%d", opIdx, ci), func(p *sim.Proc) {
				p.Wait(target.Done)
				sp := resolve(chain.specs[0])
				flows = append(flows, n.StartFunc(sp.Name, sp.SizeMB, sp.MaxRate, nil, sp.Path...))
				check("chained start " + sp.Name)
			})
		}
	}
	for opIdx, op := range ops {
		opIdx, op := opIdx, op
		switch op.kind {
		case opChain:
			continue
		case opCap:
			e.Schedule(op.at, func() {
				links[op.link].SetModel(Const(op.mbs))
				n.Recompute()
				check(fmt.Sprintf("capacity change at t=%v", op.at))
			})
		case opCapLazy:
			e.Schedule(op.at, func() {
				// No Recompute: the coalesced zero-delay solve applies it.
				links[op.link].SetModel(Const(op.mbs))
			})
		case opStart:
			e.Schedule(op.at, func() {
				sp := resolve(op.specs[0])
				f := n.StartFunc(sp.Name, sp.SizeMB, sp.MaxRate, nil, sp.Path...)
				flows = append(flows, f)
				firstFlow[opIdx] = f
				armChains(opIdx)
				check("start " + sp.Name)
			})
		case opBatch:
			e.Schedule(op.at, func() {
				specs := make([]FlowSpec, len(op.specs))
				for i, sp := range op.specs {
					specs[i] = resolve(sp)
				}
				batch := n.StartBatch(specs)
				flows = append(flows, batch...)
				firstFlow[opIdx] = batch[0]
				armChains(opIdx)
				check(fmt.Sprintf("batch of %d at t=%v", len(specs), op.at))
			})
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return flows, links, n
}

// TestIncrementalMatchesReferenceProperty drives randomized sequences of
// single starts, batch admissions (StartBatch), zero-duration flows,
// capacity changes and completion-chained arrivals through the
// incremental heap solver and the from-scratch reference solver on
// identical topologies. Start times, completion times and carried volumes
// must match bit for bit, and the incremental net must satisfy
// CheckInvariants — including completion-heap consistency — inside every
// event and after the run drains.
func TestIncrementalMatchesReferenceProperty(t *testing.T) {
	sawBatch, sawChain, sawZero := false, false, false
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nLinks := 4 + rng.Intn(12)
			caps := make([]float64, nLinks)
			for i := range caps {
				caps[i] = 10 + rng.Float64()*500
			}
			ops := randomSchedule(rng, nLinks)
			for _, op := range ops {
				switch op.kind {
				case opBatch:
					sawBatch = true
				case opChain:
					sawChain = true
				}
				for _, sp := range op.specs {
					if sp.size == 0 {
						sawZero = true
					}
				}
			}
			// Invariants are checked inside every op event in BOTH modes:
			// CheckInvariants flushes pending solver work, and with lazy
			// accrual a flush is itself a settle point, so the two replays
			// must perform the same call sequence to stay bit-identical —
			// exactly as any real caller does, since the same program runs
			// unmodified under either solver. As a bonus the reference run
			// now exercises the component-partition invariants too.
			incFlows, incLinks, inc := replay(t, ops, caps, false, 1, true)
			refFlows, refLinks, _ := replay(t, ops, caps, true, 1, true)
			if err := inc.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if inc.ActiveFlows() != 0 || inc.ActiveLinks() != 0 {
				t.Fatalf("incremental net not drained: %d flows, %d active links",
					inc.ActiveFlows(), inc.ActiveLinks())
			}
			if len(incFlows) != len(refFlows) {
				t.Fatalf("flow counts diverged: %d vs %d", len(incFlows), len(refFlows))
			}
			for i := range incFlows {
				fi, fr := incFlows[i], refFlows[i]
				if fi.Name() != fr.Name() {
					t.Fatalf("flow order diverged at %d: %s vs %s", i, fi.Name(), fr.Name())
				}
				if fi.Finished() != fr.Finished() {
					t.Fatalf("flow %s: finished %v vs %v", fi.Name(), fi.Finished(), fr.Finished())
				}
				if math.Float64bits(fi.Started()) != math.Float64bits(fr.Started()) {
					t.Errorf("flow %s: start %v vs reference %v (not bit-identical)",
						fi.Name(), fi.Started(), fr.Started())
				}
				if math.Float64bits(fi.FinishedAt()) != math.Float64bits(fr.FinishedAt()) {
					t.Errorf("flow %s: finish %v vs reference %v (not bit-identical)",
						fi.Name(), fi.FinishedAt(), fr.FinishedAt())
				}
			}
			for i := range incLinks {
				if math.Float64bits(incLinks[i].Carried()) != math.Float64bits(refLinks[i].Carried()) {
					t.Errorf("link %s: carried %v vs reference %v",
						incLinks[i].Name(), incLinks[i].Carried(), refLinks[i].Carried())
				}
			}
		})
	}
	if !sawBatch || !sawChain || !sawZero {
		t.Errorf("schedule generator lost coverage: batch=%v chain=%v zero=%v",
			sawBatch, sawChain, sawZero)
	}
}

// TestStartBatchMatchesSequentialStarts verifies a batch admission is
// indistinguishable from the equivalent StartFunc sequence, including
// zero-sized and path-less capped members.
func TestStartBatchMatchesSequentialStarts(t *testing.T) {
	build := func(batch bool) ([]*Flow, *Net, *sim.Engine) {
		e := sim.NewEngine()
		n := NewNet(e)
		shared := n.NewLink("shared", Const(300))
		var specs []FlowSpec
		for i := 0; i < 16; i++ {
			nic := n.NewLink(fmt.Sprintf("nic%d", i), Const(100))
			specs = append(specs, FlowSpec{
				Name:   fmt.Sprintf("f%d", i),
				SizeMB: float64(100 + 37*i),
				Path:   []*Link{nic, shared},
			})
		}
		specs = append(specs, FlowSpec{Name: "zero", SizeMB: 0, Path: []*Link{shared}})
		specs = append(specs, FlowSpec{Name: "capped", SizeMB: 50, MaxRate: 5})
		var flows []*Flow
		if batch {
			flows = n.StartBatch(specs)
		} else {
			for _, sp := range specs {
				flows = append(flows, n.StartFunc(sp.Name, sp.SizeMB, sp.MaxRate, sp.OnDone, sp.Path...))
			}
		}
		return flows, n, e
	}
	seqFlows, _, seqEng := build(false)
	batchFlows, bn, batchEng := build(true)
	if err := seqEng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := batchEng.Run(); err != nil {
		t.Fatal(err)
	}
	if !batchFlows[16].Finished() {
		t.Error("zero-sized batch member did not complete immediately")
	}
	for i := range seqFlows {
		a, b := seqFlows[i], batchFlows[i]
		if math.Float64bits(a.FinishedAt()) != math.Float64bits(b.FinishedAt()) {
			t.Errorf("flow %s: sequential %v vs batch %v", a.Name(), a.FinishedAt(), b.FinishedAt())
		}
	}
	if err := bn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCoalescingReducesSolves: a 256-wide same-instant admission must cost
// one solve, not 256, and far fewer link visits than the reference solver
// pays for the same schedule — even more so with idle links around, which
// the incremental solver never scans.
func TestCoalescingReducesSolves(t *testing.T) {
	run := func(reference bool) Stats {
		e := sim.NewEngine()
		n := NewNet(e)
		n.UseReferenceSolver(reference)
		shared := n.NewLink("bb", Const(1000))
		var specs []FlowSpec
		for i := 0; i < 256; i++ {
			nic := n.NewLink(fmt.Sprintf("nic%d", i), Const(100))
			specs = append(specs, FlowSpec{
				Name:   fmt.Sprintf("f%d", i),
				SizeMB: 100,
				Path:   []*Link{nic, shared},
			})
		}
		// Plenty of idle links the incremental solver must never scan.
		for i := 0; i < 1000; i++ {
			n.NewLink(fmt.Sprintf("idle%d", i), Const(100))
		}
		n.ResetStats()
		n.StartBatch(specs)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return n.Stats()
	}
	inc := run(false)
	ref := run(true)
	if inc.Solves != 2 { // one coalesced admission solve + one completion solve
		t.Errorf("incremental solves = %d, want 2", inc.Solves)
	}
	if ref.Solves < 256 {
		t.Errorf("reference solves = %d, want >= 256", ref.Solves)
	}
	if inc.LinkVisits*3 > ref.LinkVisits {
		t.Errorf("link visits not >=3x better: incremental %d vs reference %d",
			inc.LinkVisits, ref.LinkVisits)
	}
	if inc.Coalesced == 0 {
		t.Error("no coalesced recomputes recorded")
	}
}

// TestRecomputeFlushesPendingSolve: reading rates right after a start
// works when Recompute is called explicitly, even though the coalesced
// solve event has not fired yet.
func TestRecomputeFlushesPendingSolve(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	l := n.NewLink("pipe", Const(100))
	a := n.Start("a", 1000, 0, l)
	b := n.Start("b", 1000, 0, l)
	n.Recompute()
	if a.Rate() != 50 || b.Rate() != 50 {
		t.Errorf("rates after flush = %v, %v; want 50, 50", a.Rate(), b.Rate())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !a.Finished() || !b.Finished() {
		t.Error("flows did not finish")
	}
}

// TestHeapCountersAndDisjointRekeys: on disjoint paths (each flow alone on
// its own link) an arrival or completion changes no other flow's rate, so
// the completion heap absorbs each event with O(log F) re-keys instead of
// a full-population rescan. The reference solver must report zero heap
// work, and the incremental per-round flow scans must stay bounded by the
// work actually available.
func TestHeapCountersAndDisjointRekeys(t *testing.T) {
	const nFlows = 64
	run := func(reference bool) Stats {
		e := sim.NewEngine()
		n := NewNet(e)
		n.UseReferenceSolver(reference)
		for i := 0; i < nFlows; i++ {
			i := i
			l := n.NewLink(fmt.Sprintf("pipe%d", i), Const(10))
			// Staggered arrivals, staggered completions: sizes grow so no
			// two flows complete at the same instant.
			e.Schedule(float64(i)*0.25, func() {
				n.Start(fmt.Sprintf("d%d", i), 100+float64(i), 0, l)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if err := n.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return n.Stats()
	}
	inc := run(false)
	ref := run(true)
	if ref.HeapOps != 0 {
		t.Errorf("reference heap ops = %d, want 0", ref.HeapOps)
	}
	if inc.HeapOps == 0 {
		t.Error("incremental solver recorded no heap ops")
	}
	if inc.Rounds == 0 || inc.FlowsScanned == 0 {
		t.Errorf("round counters empty: rounds=%d flowsScanned=%d", inc.Rounds, inc.FlowsScanned)
	}
	// Disjoint flows all fix in one round per solve, so the flow scans per
	// solve are the active population, never rounds x population.
	if inc.FlowsScanned > inc.Solves*nFlows {
		t.Errorf("flows scanned %d exceeds solves x flows (%d x %d)",
			inc.FlowsScanned, inc.Solves, nFlows)
	}
	// Each event re-keys O(1) flows plus the event's own push/remove; far
	// fewer total heap element operations than a per-event full rescan
	// (which would be ~solves x flows).
	if inc.HeapOps > inc.Solves*8 {
		t.Errorf("heap ops %d not O(1) per solve (%d solves)", inc.HeapOps, inc.Solves)
	}
}

// TestUseReferenceSolverToggleMidRun: switching modes with flows in
// flight rebuilds the completion heap (incremental) or drops it
// (reference) and the simulation still drains to the same completions.
func TestUseReferenceSolverToggleMidRun(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	l := n.NewLink("pipe", Const(100))
	a := n.Start("a", 1000, 0, l)
	b := n.Start("b", 500, 0, l)
	e.Schedule(2, func() {
		n.UseReferenceSolver(true)
		if err := n.CheckInvariants(); err != nil {
			t.Errorf("after switch to reference: %v", err)
		}
	})
	e.Schedule(4, func() {
		n.UseReferenceSolver(false)
		if err := n.CheckInvariants(); err != nil {
			t.Errorf("after switch back: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !a.Finished() || !b.Finished() {
		t.Fatal("flows did not finish after mode toggles")
	}
	// Same loads either way: b (500 MB at 50 MB/s) then a alone.
	if math.Abs(b.FinishedAt()-10) > 1e-9 || math.Abs(a.FinishedAt()-15) > 1e-9 {
		t.Errorf("finish times = %v, %v; want 10, 15", b.FinishedAt(), a.FinishedAt())
	}
}

// TestZeroDurationFlowsAtCompletionInstant: zero-sized flows admitted at
// the exact instant another flow completes never enter the heap and never
// perturb the survivors' schedule.
func TestZeroDurationFlowsAtCompletionInstant(t *testing.T) {
	for _, reference := range []bool{false, true} {
		e := sim.NewEngine()
		n := NewNet(e)
		n.UseReferenceSolver(reference)
		l := n.NewLink("pipe", Const(100))
		short := n.Start("short", 100, 0, l) // done at t=2 under fair sharing
		long := n.Start("long", 1000, 0, l)
		var zero *Flow
		e.Spawn("chain", func(p *sim.Proc) {
			p.Wait(short.Done)
			zero = n.Start("zero", 0, 0, l)
			if !zero.Finished() {
				t.Error("zero-sized flow did not complete at admission")
			}
			if err := n.CheckInvariants(); err != nil {
				t.Errorf("reference=%v: %v", reference, err)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if zero == nil || zero.FinishedAt() != short.FinishedAt() {
			t.Fatalf("reference=%v: zero flow not admitted at completion instant", reference)
		}
		if !long.Finished() {
			t.Fatal("long flow did not drain")
		}
	}
}

// groupedSpec draws a flow whose path stays inside one link group, or —
// with probability 1/bridgeOdds — bridges two groups, merging their
// components; when the bridge later drains, the merged component must
// split again. Groups are contiguous index ranges of size groupLinks.
func groupedSpec(rng *rand.Rand, groups, groupLinks, bridgeOdds int, name string) specTmpl {
	pick := func(g, n int) []int {
		if n > groupLinks {
			n = groupLinks
		}
		seen := map[int]bool{}
		var path []int
		for len(path) < n {
			k := g*groupLinks + rng.Intn(groupLinks)
			if !seen[k] {
				seen[k] = true
				path = append(path, k)
			}
		}
		return path
	}
	g := rng.Intn(groups)
	var path []int
	if rng.Intn(bridgeOdds) == 0 && groups > 1 {
		g2 := (g + 1 + rng.Intn(groups-1)) % groups
		path = append(pick(g, 1+rng.Intn(2)), pick(g2, 1)...)
	} else {
		path = pick(g, 1+rng.Intn(3))
	}
	size := 1 + rng.Float64()*2000
	if rng.Intn(10) == 0 {
		size = 0
	}
	cap := 0.0
	if rng.Intn(3) == 0 {
		cap = 1 + rng.Float64()*100
	}
	return specTmpl{path: path, size: size, maxRate: cap, name: name}
}

// randomGroupedSchedule is randomSchedule over a grouped topology: mostly
// intra-group traffic (disjoint components), with occasional bridges that
// merge components on admission and split them again on completion, plus
// lazy and eager capacity changes.
func randomGroupedSchedule(rng *rand.Rand, groups, groupLinks int) []solverOp {
	var ops []solverOp
	var starters []int
	at := 0.0
	nLinks := groups * groupLinks
	nOps := 10 + rng.Intn(50)
	for i := 0; i < nOps; i++ {
		if rng.Intn(3) > 0 {
			at += rng.Float64() * 3
		}
		switch r := rng.Intn(10); {
		case r == 0 && i > 0:
			kind := opCapLazy
			if rng.Intn(3) == 0 {
				kind = opCap
			}
			ops = append(ops, solverOp{at: at, kind: kind, link: rng.Intn(nLinks), mbs: 5 + rng.Float64()*400})
		case r == 1 && len(starters) > 0:
			ops = append(ops, solverOp{
				at:     at,
				kind:   opChain,
				specs:  []specTmpl{groupedSpec(rng, groups, groupLinks, 4, fmt.Sprintf("c%d", i))},
				target: starters[rng.Intn(len(starters))],
			})
		case r <= 4:
			width := 2 + rng.Intn(16)
			specs := make([]specTmpl, width)
			for j := range specs {
				specs[j] = groupedSpec(rng, groups, groupLinks, 8, fmt.Sprintf("b%d_%d", i, j))
			}
			starters = append(starters, len(ops))
			ops = append(ops, solverOp{at: at, kind: opBatch, specs: specs})
		default:
			starters = append(starters, len(ops))
			ops = append(ops, solverOp{
				at:    at,
				kind:  opStart,
				specs: []specTmpl{groupedSpec(rng, groups, groupLinks, 6, fmt.Sprintf("f%d", i))},
			})
		}
	}
	return ops
}

// TestMultiComponentMatchesReferenceProperty drives randomized
// multi-component schedules — disjoint link groups, flows migrating a
// component merge via shared-link (bridge) admission, component splits
// when bridges retire, and lazy SetModel changes — through the partitioned
// solver and the monolithic reference solver. Trajectories and carried
// volumes must match bit for bit, with the component-partition invariants
// checked inside every event in both modes.
func TestMultiComponentMatchesReferenceProperty(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			groups := 2 + rng.Intn(5)
			groupLinks := 2 + rng.Intn(4)
			caps := make([]float64, groups*groupLinks)
			for i := range caps {
				caps[i] = 10 + rng.Float64()*500
			}
			ops := randomGroupedSchedule(rng, groups, groupLinks)
			incFlows, incLinks, inc := replay(t, ops, caps, false, 1, true)
			refFlows, refLinks, _ := replay(t, ops, caps, true, 1, true)
			if err := inc.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if inc.ActiveFlows() != 0 || inc.Components() != 0 {
				t.Fatalf("incremental net not drained: %d flows, %d components",
					inc.ActiveFlows(), inc.Components())
			}
			if len(incFlows) != len(refFlows) {
				t.Fatalf("flow counts diverged: %d vs %d", len(incFlows), len(refFlows))
			}
			for i := range incFlows {
				fi, fr := incFlows[i], refFlows[i]
				if math.Float64bits(fi.Started()) != math.Float64bits(fr.Started()) {
					t.Errorf("flow %s: start %v vs reference %v (not bit-identical)",
						fi.Name(), fi.Started(), fr.Started())
				}
				if math.Float64bits(fi.FinishedAt()) != math.Float64bits(fr.FinishedAt()) {
					t.Errorf("flow %s: finish %v vs reference %v (not bit-identical)",
						fi.Name(), fi.FinishedAt(), fr.FinishedAt())
				}
			}
			for i := range incLinks {
				if math.Float64bits(incLinks[i].Carried()) != math.Float64bits(refLinks[i].Carried()) {
					t.Errorf("link %s: carried %v vs reference %v",
						incLinks[i].Name(), incLinks[i].Carried(), refLinks[i].Carried())
				}
			}
			// The partitioned solver must actually have partitioned: with
			// mostly intra-group traffic, the average population per
			// component solve stays below the whole-network population the
			// reference pays.
			ist := inc.Stats()
			if ist.ComponentsSolved > 0 && len(incFlows) >= 16 {
				perSolve := float64(ist.ComponentFlowsScanned) / float64(ist.ComponentsSolved)
				if perSolve >= float64(len(incFlows)) {
					t.Errorf("component solves scan %.1f flows on average over %d total — no partitioning happened",
						perSolve, len(incFlows))
				}
			}
		})
	}
}

// TestParallelSolveMatchesSerialProperty drives randomized multi-shard
// schedules — a randomized number of link groups (shard counts), mixed
// lazy/eager SetModel churn, batch admissions and completion-chained
// retire churn — through the partitioned solver at parallelism 1..8 with
// the population floor removed, so even two-flow flushes fan out. Every
// parallel replay must match the serial replay AND the reference oracle
// bit for bit: start times, finish times, carried volumes and the
// deterministic solver counters. Run under -race this also proves the
// concurrent component solves share no mutable state.
func TestParallelSolveMatchesSerialProperty(t *testing.T) {
	for seed := int64(500); seed < 515; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			groups := 2 + rng.Intn(7) // randomized shard count
			groupLinks := 2 + rng.Intn(4)
			caps := make([]float64, groups*groupLinks)
			for i := range caps {
				caps[i] = 10 + rng.Float64()*500
			}
			ops := randomGroupedSchedule(rng, groups, groupLinks)
			serialFlows, serialLinks, serial := replay(t, ops, caps, false, 1, true)
			refFlows, _, _ := replay(t, ops, caps, true, 1, true)
			serialStats := serial.Stats()
			for par := 2; par <= 8; par += 3 { // 2, 5, 8
				parFlows, parLinks, pn := replay(t, ops, caps, false, par, true)
				if err := pn.CheckInvariants(); err != nil {
					t.Fatalf("par=%d: %v", par, err)
				}
				if len(parFlows) != len(serialFlows) {
					t.Fatalf("par=%d: flow counts diverged: %d vs %d", par, len(parFlows), len(serialFlows))
				}
				for i := range parFlows {
					fp, fs, fr := parFlows[i], serialFlows[i], refFlows[i]
					if math.Float64bits(fp.Started()) != math.Float64bits(fs.Started()) {
						t.Errorf("par=%d flow %s: start %v vs serial %v", par, fp.Name(), fp.Started(), fs.Started())
					}
					if math.Float64bits(fp.FinishedAt()) != math.Float64bits(fs.FinishedAt()) {
						t.Errorf("par=%d flow %s: finish %v vs serial %v", par, fp.Name(), fp.FinishedAt(), fs.FinishedAt())
					}
					if math.Float64bits(fp.FinishedAt()) != math.Float64bits(fr.FinishedAt()) {
						t.Errorf("par=%d flow %s: finish %v vs reference %v", par, fp.Name(), fp.FinishedAt(), fr.FinishedAt())
					}
				}
				for i := range parLinks {
					if math.Float64bits(parLinks[i].Carried()) != math.Float64bits(serialLinks[i].Carried()) {
						t.Errorf("par=%d link %s: carried %v vs serial %v",
							par, parLinks[i].Name(), parLinks[i].Carried(), serialLinks[i].Carried())
					}
				}
				// The deterministic work counters are integer sums over the
				// same set of component solves, so they are identical too.
				if ps := pn.Stats(); ps != serialStats {
					t.Errorf("par=%d: stats diverged:\nparallel %+v\nserial   %+v", par, ps, serialStats)
				}
			}
		})
	}
}

// TestSolveParallelismKnob covers the setter semantics: default serial,
// explicit widths, and GOMAXPROCS selection for values below one.
func TestSolveParallelismKnob(t *testing.T) {
	n := NewNet(sim.NewEngine())
	if got := n.SolveParallelism(); got != 1 {
		t.Errorf("default parallelism = %d, want 1", got)
	}
	n.SetSolveParallelism(4)
	if got := n.SolveParallelism(); got != 4 {
		t.Errorf("parallelism = %d, want 4", got)
	}
	n.SetSolveParallelism(0)
	if got := n.SolveParallelism(); got < 1 {
		t.Errorf("parallelism = %d, want GOMAXPROCS (>= 1)", got)
	}
}

// TestNewLinkRejectsDuplicateNames: link names key telemetry, so reusing
// one is a caller bug — NewLink must panic rather than silently alias,
// and HasLink lets builders validate a namespace up front.
func TestNewLinkRejectsDuplicateNames(t *testing.T) {
	n := NewNet(sim.NewEngine())
	n.NewLink("ost0", Const(100))
	if !n.HasLink("ost0") {
		t.Error("HasLink(ost0) = false after NewLink")
	}
	if n.HasLink("ost1") {
		t.Error("HasLink(ost1) = true for an absent link")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate NewLink did not panic")
		}
	}()
	n.NewLink("ost0", Const(100))
}
