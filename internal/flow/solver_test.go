package flow

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pfsim/internal/sim"
)

// solverOp is one step of a randomized schedule, replayable on any net.
type solverOp struct {
	at      float64
	start   bool  // true: start a flow; false: change a link capacity
	path    []int // link indices (start)
	size    float64
	maxRate float64
	link    int     // target link (capacity change)
	mbs     float64 // new capacity (capacity change)
	name    string
}

// randomSchedule draws a churny schedule of flow starts and capacity
// changes over nLinks links. Several ops share instants on purpose, to
// exercise same-instant coalescing.
func randomSchedule(rng *rand.Rand, nLinks int) []solverOp {
	var ops []solverOp
	at := 0.0
	nOps := 8 + rng.Intn(50)
	for i := 0; i < nOps; i++ {
		if rng.Intn(3) > 0 { // bursts: 1/3 of ops land on a fresh instant
			at += rng.Float64() * 3
		}
		if rng.Intn(4) == 3 && i > 0 {
			ops = append(ops, solverOp{
				at:   at,
				link: rng.Intn(nLinks),
				mbs:  5 + rng.Float64()*400,
			})
			continue
		}
		pathLen := 1 + rng.Intn(3)
		seen := map[int]bool{}
		var path []int
		for len(path) < pathLen {
			k := rng.Intn(nLinks)
			if !seen[k] {
				seen[k] = true
				path = append(path, k)
			}
		}
		cap := 0.0
		if rng.Intn(3) == 0 {
			cap = 1 + rng.Float64()*100
		}
		ops = append(ops, solverOp{
			at:      at,
			start:   true,
			path:    path,
			size:    1 + rng.Float64()*2000,
			maxRate: cap,
			name:    fmt.Sprintf("f%d", i),
		})
	}
	return ops
}

// replay builds a star of nLinks Const links with the given capacities,
// schedules ops, runs the engine, and returns the flows, links and net.
// With invariants set, CheckInvariants runs inside every op event.
func replay(t *testing.T, ops []solverOp, caps []float64, reference, invariants bool) ([]*Flow, []*Link, *Net) {
	t.Helper()
	e := sim.NewEngine()
	n := NewNet(e)
	n.UseReferenceSolver(reference)
	links := make([]*Link, len(caps))
	for i, c := range caps {
		links[i] = n.NewLink(fmt.Sprintf("l%d", i), Const(c))
	}
	flows := make([]*Flow, 0, len(ops))
	for _, op := range ops {
		op := op
		e.Schedule(op.at, func() {
			if op.start {
				path := make([]*Link, len(op.path))
				for i, k := range op.path {
					path[i] = links[k]
				}
				flows = append(flows, n.Start(op.name, op.size, op.maxRate, path...))
			} else {
				links[op.link].SetModel(Const(op.mbs))
				n.Recompute()
			}
			if invariants {
				if err := n.CheckInvariants(); err != nil {
					t.Errorf("invariants after op at t=%v: %v", op.at, err)
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return flows, links, n
}

// TestIncrementalMatchesReferenceProperty drives randomized sequences of
// flow starts, completions and capacity changes through the incremental
// coalescing solver and the from-scratch reference solver on identical
// topologies. Completion times and carried volumes must match bit for
// bit, and the incremental net must satisfy CheckInvariants inside every
// event and after the run drains.
func TestIncrementalMatchesReferenceProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nLinks := 4 + rng.Intn(12)
			caps := make([]float64, nLinks)
			for i := range caps {
				caps[i] = 10 + rng.Float64()*500
			}
			ops := randomSchedule(rng, nLinks)
			incFlows, incLinks, inc := replay(t, ops, caps, false, true)
			refFlows, refLinks, _ := replay(t, ops, caps, true, false)
			if err := inc.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if inc.ActiveFlows() != 0 || inc.ActiveLinks() != 0 {
				t.Fatalf("incremental net not drained: %d flows, %d active links",
					inc.ActiveFlows(), inc.ActiveLinks())
			}
			if len(incFlows) != len(refFlows) {
				t.Fatalf("flow counts diverged: %d vs %d", len(incFlows), len(refFlows))
			}
			for i := range incFlows {
				fi, fr := incFlows[i], refFlows[i]
				if fi.Finished() != fr.Finished() {
					t.Fatalf("flow %s: finished %v vs %v", fi.Name(), fi.Finished(), fr.Finished())
				}
				if math.Float64bits(fi.FinishedAt()) != math.Float64bits(fr.FinishedAt()) {
					t.Errorf("flow %s: finish %v vs reference %v (not bit-identical)",
						fi.Name(), fi.FinishedAt(), fr.FinishedAt())
				}
			}
			for i := range incLinks {
				if math.Float64bits(incLinks[i].Carried()) != math.Float64bits(refLinks[i].Carried()) {
					t.Errorf("link %s: carried %v vs reference %v",
						incLinks[i].Name(), incLinks[i].Carried(), refLinks[i].Carried())
				}
			}
		})
	}
}

// TestStartBatchMatchesSequentialStarts verifies a batch admission is
// indistinguishable from the equivalent StartFunc sequence, including
// zero-sized and path-less capped members.
func TestStartBatchMatchesSequentialStarts(t *testing.T) {
	build := func(batch bool) ([]*Flow, *Net, *sim.Engine) {
		e := sim.NewEngine()
		n := NewNet(e)
		shared := n.NewLink("shared", Const(300))
		var specs []FlowSpec
		for i := 0; i < 16; i++ {
			nic := n.NewLink(fmt.Sprintf("nic%d", i), Const(100))
			specs = append(specs, FlowSpec{
				Name:   fmt.Sprintf("f%d", i),
				SizeMB: float64(100 + 37*i),
				Path:   []*Link{nic, shared},
			})
		}
		specs = append(specs, FlowSpec{Name: "zero", SizeMB: 0, Path: []*Link{shared}})
		specs = append(specs, FlowSpec{Name: "capped", SizeMB: 50, MaxRate: 5})
		var flows []*Flow
		if batch {
			flows = n.StartBatch(specs)
		} else {
			for _, sp := range specs {
				flows = append(flows, n.StartFunc(sp.Name, sp.SizeMB, sp.MaxRate, sp.OnDone, sp.Path...))
			}
		}
		return flows, n, e
	}
	seqFlows, _, seqEng := build(false)
	batchFlows, bn, batchEng := build(true)
	if err := seqEng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := batchEng.Run(); err != nil {
		t.Fatal(err)
	}
	if !batchFlows[16].Finished() {
		t.Error("zero-sized batch member did not complete immediately")
	}
	for i := range seqFlows {
		a, b := seqFlows[i], batchFlows[i]
		if math.Float64bits(a.FinishedAt()) != math.Float64bits(b.FinishedAt()) {
			t.Errorf("flow %s: sequential %v vs batch %v", a.Name(), a.FinishedAt(), b.FinishedAt())
		}
	}
	if err := bn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCoalescingReducesSolves: a 256-wide same-instant admission must cost
// one solve, not 256, and far fewer link visits than the reference solver
// pays for the same schedule — even more so with idle links around, which
// the incremental solver never scans.
func TestCoalescingReducesSolves(t *testing.T) {
	run := func(reference bool) Stats {
		e := sim.NewEngine()
		n := NewNet(e)
		n.UseReferenceSolver(reference)
		shared := n.NewLink("bb", Const(1000))
		var specs []FlowSpec
		for i := 0; i < 256; i++ {
			nic := n.NewLink(fmt.Sprintf("nic%d", i), Const(100))
			specs = append(specs, FlowSpec{
				Name:   fmt.Sprintf("f%d", i),
				SizeMB: 100,
				Path:   []*Link{nic, shared},
			})
		}
		// Plenty of idle links the incremental solver must never scan.
		for i := 0; i < 1000; i++ {
			n.NewLink(fmt.Sprintf("idle%d", i), Const(100))
		}
		n.ResetStats()
		n.StartBatch(specs)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return n.Stats()
	}
	inc := run(false)
	ref := run(true)
	if inc.Solves != 2 { // one coalesced admission solve + one completion solve
		t.Errorf("incremental solves = %d, want 2", inc.Solves)
	}
	if ref.Solves < 256 {
		t.Errorf("reference solves = %d, want >= 256", ref.Solves)
	}
	if inc.LinkVisits*3 > ref.LinkVisits {
		t.Errorf("link visits not >=3x better: incremental %d vs reference %d",
			inc.LinkVisits, ref.LinkVisits)
	}
	if inc.Coalesced == 0 {
		t.Error("no coalesced recomputes recorded")
	}
}

// TestRecomputeFlushesPendingSolve: reading rates right after a start
// works when Recompute is called explicitly, even though the coalesced
// solve event has not fired yet.
func TestRecomputeFlushesPendingSolve(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	l := n.NewLink("pipe", Const(100))
	a := n.Start("a", 1000, 0, l)
	b := n.Start("b", 1000, 0, l)
	n.Recompute()
	if a.Rate() != 50 || b.Rate() != 50 {
		t.Errorf("rates after flush = %v, %v; want 50, 50", a.Rate(), b.Rate())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !a.Finished() || !b.Finished() {
		t.Error("flows did not finish")
	}
}
