//go:build race

package flow

// raceEnabled reports whether the race detector instruments this build;
// allocation-count tests skip under it (the instrumentation allocates).
const raceEnabled = true
