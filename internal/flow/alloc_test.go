package flow

import (
	"testing"

	"pfsim/internal/sim"
)

// allocNet builds a warmed net: nLinks disjoint single-link components,
// one long-running flow each (sizes far beyond the test horizon, so the
// steady state is pure re-solve/commit/reschedule with no completions),
// plus enough model toggles to grow every scratch slice and the event
// pool to their steady capacity.
func allocNet(par int, nLinks int) (*sim.Engine, *Net, []*Link) {
	eng := sim.NewEngine()
	n := NewNet(eng)
	if par > 1 {
		n.SetSolveParallelism(par)
		n.parFloor = 0
	}
	links := make([]*Link, nLinks)
	for i := range links {
		links[i] = n.NewLink("l"+string(rune('a'+i)), Const(100))
	}
	for i, l := range links {
		n.Start("f"+string(rune('a'+i)), 1e12, 80, l)
	}
	fast, slow := CapacityModel(Const(100)), CapacityModel(Const(60))
	for i := 0; i < 16; i++ {
		m := fast
		if i%2 == 0 {
			m = slow
		}
		for _, l := range links {
			l.SetModel(m)
		}
		if err := eng.RunUntil(eng.Now()); err != nil {
			panic(err)
		}
	}
	return eng, n, links
}

// TestSolverSteadyStateAllocs pins the hot-path discipline end to end:
// after warm-up, a model-shift -> flush -> re-solve -> commit ->
// reschedule cycle must not touch the heap allocator at all on the
// serial path. This is the runtime counterpart of the hotalloc lint and
// the pfsim-escape compiler cross-check.
func TestSolverSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	eng, _, links := allocNet(1, 4)
	fast, slow := CapacityModel(Const(100)), CapacityModel(Const(60))
	cur := fast
	allocs := testing.AllocsPerRun(200, func() {
		if cur == fast {
			cur = slow
		} else {
			cur = fast
		}
		for _, l := range links {
			l.SetModel(cur)
		}
		if err := eng.RunUntil(eng.Now()); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Errorf("serial steady-state solve allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestSolverSteadyStateAllocsParallel documents the parallel fan's
// fixed per-flush floor: one fan-out closure plus pool.Fan's per-call
// machinery (WaitGroup, shared atomic cursor, one spawn closure and
// goroutine per worker). The floor is independent of flow population —
// it must not scale with load — and is annotated //pfsim:allocok at the
// source level for the same reason it is tolerated here.
func TestSolverSteadyStateAllocsParallel(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	eng, _, links := allocNet(4, 4)
	fast, slow := CapacityModel(Const(100)), CapacityModel(Const(60))
	cur := fast
	allocs := testing.AllocsPerRun(200, func() {
		if cur == fast {
			cur = slow
		} else {
			cur = fast
		}
		for _, l := range links {
			l.SetModel(cur)
		}
		if err := eng.RunUntil(eng.Now()); err != nil {
			panic(err)
		}
	})
	const parallelFanFloor = 16
	if allocs > parallelFanFloor {
		t.Errorf("parallel steady-state solve allocated %.1f allocs/op, want <= %d (the fan's fixed floor)", allocs, parallelFanFloor)
	}
}
