package experiments

import (
	"fmt"

	"pfsim/internal/ior"
	"pfsim/internal/mpiio"
	"pfsim/internal/refdata"
	"pfsim/internal/report"
	"pfsim/internal/sweep"
)

// Figure1 regenerates the Section IV parameter sweep: write bandwidth over
// 1,024 processes for every stripe count × stripe size combination, plus
// the default-configuration baseline and the headline speed-up.
func Figure1(opt Options) (*Outcome, error) {
	plat := opt.platform()
	counts := sweep.CountsUpTo(plat)
	sizes := []float64{1, 32, 64, 128, 256}
	base := ior.PaperConfig(1024)
	base.SegmentCount = opt.segments(100)
	base.Reps = opt.reps(3)
	grid, err := sweep.Exhaustive(plat, counts, sizes, sweep.Options{
		Tasks: 1024, Reps: base.Reps, Base: &base, Parallelism: opt.Parallelism,
	})
	if err != nil {
		return nil, err
	}

	// Default configuration: ad_ufs, system default layout.
	defCfg := base
	defCfg.Label = "figure1-default"
	defCfg.API = mpiio.DriverUFS
	defRes, err := ior.Run(plat, defCfg)
	if err != nil {
		return nil, err
	}
	defBW := defRes.Write.Mean()

	t := report.NewTable("Figure 1: write bandwidth (MB/s) over 1,024 processes",
		append([]string{"OSTs"}, sizeHeaders(sizes)...)...)
	for i, c := range grid.Counts {
		row := make([]any, 0, len(sizes)+1)
		row = append(row, c)
		for j := range grid.SizesMB {
			row = append(row, grid.MBs[i][j])
		}
		t.AddRow(row...)
	}
	best := grid.Best()
	o := &Outcome{
		ID:     "figure1",
		Title:  "Parameter sweep for an optimal Lustre configuration",
		Tables: []*report.Table{t},
		Comparisons: []Comparison{
			{"default config MB/s (2×1MB)", refdata.Figure1.DefaultMBs, defBW},
			{"best MB/s", refdata.Figure1.BestMBs, best.MBs},
			{"best stripe count", float64(refdata.Figure1.BestCount), float64(best.StripeCount)},
			{"best stripe size MB", refdata.Figure1.BestSizeMB, best.StripeSizeMB},
			{"speed-up over default", refdata.Figure1.SpeedupFactor, best.MBs / defBW},
		},
	}
	oneMB, _ := grid.At(plat.MaxStripeCount, 1)
	o.Comparisons = append(o.Comparisons,
		Comparison{"160×1MB MB/s (count-only tuning)", refdata.Figure1.CountTunedMBs, oneMB})
	o.Notes = append(o.Notes,
		fmt.Sprintf("Optimum found at %d stripes × %g MB; paper: 160 × 128 MB.",
			best.StripeCount, best.StripeSizeMB))
	return o, nil
}

func sizeHeaders(sizes []float64) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = fmt.Sprintf("%gM", s)
	}
	return out
}

// Figure2 regenerates the single-OST contention benchmark: k processes,
// each with a private single-stripe file pinned to the same OST, for
// k = 1..16. The ideal band scales the single-writer 95% CI by 1/k.
func Figure2(opt Options) (*Outcome, error) {
	plat := opt.platform()
	reps := opt.reps(5)
	maxJobs := refdata.Figure2.MaxJobs
	// Every writer count is an independent simulation: fan them out.
	results := make([]*ior.Result, maxJobs)
	err := opt.each(maxJobs, func(i int) error {
		k := i + 1
		cfg := ior.Config{
			Label:          fmt.Sprintf("figure2-k%d", k),
			API:            mpiio.DriverLustre,
			BlockSizeMB:    4,
			TransferSizeMB: 1,
			SegmentCount:   opt.segments(100),
			NumTasks:       k,
			WriteFile:      true,
			FilePerProc:    true,
			Hints:          mpiio.Hints{StripingFactor: 1, StripingUnitMB: 1, StripeOffset: 7},
			Reps:           reps,
		}
		res, err := ior.Run(plat, cfg)
		results[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	perProc := make([]float64, 0, maxJobs)
	var lo1, hi1 float64
	t := report.NewTable("Figure 2: per-process bandwidth on one contended OST (MB/s)",
		"Jobs", "Per-proc BW", "Ideal lower", "Ideal upper", "Within band")
	for k := 1; k <= maxJobs; k++ {
		pp := results[k-1].PerProcWrite()
		if k == 1 {
			lo1, hi1 = pp.CI95()
			if lo1 <= 0 {
				lo1 = pp.Mean() * 0.95
				hi1 = pp.Mean() * 1.05
			}
		}
		mean := pp.Mean()
		perProc = append(perProc, mean)
		idealLo, idealHi := lo1/float64(k), hi1/float64(k)
		t.AddRow(k, mean, idealLo, idealHi, mean >= idealLo && mean <= idealHi)
	}
	o := &Outcome{
		ID:     "figure2",
		Title:  "Per-processor bandwidth of lscratchc under forced OST contention",
		Tables: []*report.Table{t},
		Comparisons: []Comparison{
			{"single-writer MB/s", refdata.Figure2.SingleWriterMBs, perProc[0]},
			{"16-writer per-proc MB/s (≈288/16, minus thrash)",
				refdata.Figure2.SingleWriterMBs / 16, perProc[len(perProc)-1]},
		},
		Notes: []string{
			"As contention rises the measured curve diverges below the scaled ideal band, as in the paper.",
		},
	}
	return o, nil
}

// Figure3 regenerates the four simultaneous tuned IOR tasks, five
// repetitions each: per-task, per-repetition bandwidth.
func Figure3(opt Options) (*Outcome, error) {
	reps := opt.reps(5)
	results, err := runContendedSweep(opt, 160, reps)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 3: four contended tuned IOR tasks (MB/s)",
		"Rep", "Task 1", "Task 2", "Task 3", "Task 4")
	for rep := 0; rep < reps; rep++ {
		row := []any{rep + 1}
		for _, res := range results {
			vals := res.Write.Values()
			if rep < len(vals) {
				row = append(row, vals[rep])
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	var all []float64
	for _, res := range results {
		all = append(all, res.Write.Values()...)
	}
	mean := meanOf(all)
	o := &Outcome{
		ID:     "figure3",
		Title:  "Performance of 4 tasks × 5 repetitions contending for the file system",
		Tables: []*report.Table{t},
		Comparisons: []Comparison{
			{"per-task MB/s", refdata.Figure3MBs, mean},
			{"reduction from solo peak", refdata.Figure3ReductionFactor, refdata.Figure1.BestMBs / mean},
		},
	}
	return o, nil
}

// Figure5 regenerates the Lustre-vs-PLFS scaling study (and with Table7
// shares its data): tuned ad_lustre against ad_plfs from 16 to 4,096
// processes.
func Figure5(opt Options) (*Outcome, error) {
	rows, err := figure5Rows(opt)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 5: IOR write bandwidth, tuned Lustre vs PLFS (MB/s)",
		"Tasks", "Lustre", "PLFS", "paper Lustre", "paper PLFS")
	var comps []Comparison
	var crossSim, crossPaper int
	for _, r := range rows {
		t.AddRow(r.procs, r.lustre, r.plfs, r.paperLustre, r.paperPLFS)
		if r.procs == 512 || r.procs == 4096 {
			comps = append(comps,
				Comparison{fmt.Sprintf("PLFS MB/s at %d", r.procs), r.paperPLFS, r.plfs},
				Comparison{fmt.Sprintf("Lustre MB/s at %d", r.procs), r.paperLustre, r.lustre})
		}
		if crossSim == 0 && r.lustre > r.plfs {
			crossSim = r.procs
		}
		if crossPaper == 0 && r.paperLustre > r.paperPLFS {
			crossPaper = r.procs
		}
	}
	o := &Outcome{
		ID:     "figure5",
		Title:  "Achieved write bandwidth through ad_lustre (tuned) and ad_plfs",
		Tables: []*report.Table{t},
		Comparisons: append(comps,
			Comparison{"Lustre/PLFS crossover (procs)", float64(crossPaper), float64(crossSim)}),
		Notes: []string{
			"PLFS wins at small scale, peaks around 512 processes, then self-contends and collapses.",
		},
	}
	return o, nil
}

type f5row struct {
	procs                      int
	lustre, lustreLo, lustreHi float64
	plfs, plfsLo, plfsHi       float64
	paperLustre, paperPLFS     float64
}

func figure5Rows(opt Options) ([]f5row, error) {
	plat := opt.platform()
	// Each scale's Lustre and PLFS runs are independent simulations; the
	// 2×len(TableVII) of them fan across the worker pool.
	rows := make([]f5row, len(refdata.TableVII))
	err := opt.each(2*len(refdata.TableVII), func(k int) error {
		i, half := k/2, k%2
		ref := refdata.TableVII[i]
		procs := ref.Procs
		if half == 0 {
			rows[i].procs = procs
			rows[i].paperLustre = ref.LustreMBs
			rows[i].paperPLFS = ref.PLFSMBs
		}
		if opt.Quick && procs < 64 {
			// tiny runs contribute little and the quick mode trims them
			if half == 0 {
				rows[i].lustre, rows[i].plfs = -1, -1
			}
			return nil
		}
		if half == 0 {
			lc := ior.PaperConfig(procs)
			lc.Label = fmt.Sprintf("figure5-lustre-%d", procs)
			lc.Hints = ior.TunedHints()
			lc.Reps = opt.reps(5)
			lres, err := ior.Run(plat, lc)
			if err != nil {
				return err
			}
			rows[i].lustre = lres.Write.Mean()
			rows[i].lustreLo, rows[i].lustreHi = lres.Write.CI95()
			return nil
		}
		pc := ior.PaperConfig(procs)
		pc.Label = fmt.Sprintf("figure5-plfs-%d", procs)
		pc.API = mpiio.DriverPLFS
		pc.Reps = opt.reps(5)
		if procs >= 2048 {
			pc.Reps = opt.reps(3)
		}
		pres, err := ior.Run(plat, pc)
		if err != nil {
			return err
		}
		rows[i].plfs = pres.Write.Mean()
		rows[i].plfsLo, rows[i].plfsHi = pres.Write.CI95()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table7 renders the Figure 5 data in the paper's tabular form with 95%
// confidence intervals.
func Table7(opt Options) (*Outcome, error) {
	rows, err := figure5Rows(opt)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table VII: IOR through Lustre and PLFS (MB/s, 95% CI)",
		"Procs", "Lustre", "Lustre CI", "PLFS", "PLFS CI")
	for _, r := range rows {
		if r.lustre < 0 {
			t.AddRow(r.procs, "(skipped: quick)", "", "", "")
			continue
		}
		t.AddRow(r.procs,
			r.lustre, fmt.Sprintf("(%.0f, %.0f)", r.lustreLo, r.lustreHi),
			r.plfs, fmt.Sprintf("(%.0f, %.0f)", r.plfsLo, r.plfsHi))
	}
	var comps []Comparison
	for _, r := range rows {
		if r.lustre < 0 {
			continue
		}
		comps = append(comps,
			Comparison{fmt.Sprintf("Lustre@%d", r.procs), r.paperLustre, r.lustre},
			Comparison{fmt.Sprintf("PLFS@%d", r.procs), r.paperPLFS, r.plfs})
	}
	return &Outcome{
		ID:          "table7",
		Title:       "Numeric data for Figure 5",
		Tables:      []*report.Table{t},
		Comparisons: comps,
	}, nil
}
