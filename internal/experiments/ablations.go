package experiments

import (
	"fmt"

	"pfsim/internal/core"
	"pfsim/internal/ior"
	"pfsim/internal/mpiio"
	"pfsim/internal/report"
	"pfsim/internal/sweep"
)

// Ablations are not paper artefacts: they probe the calibrated design
// choices DESIGN.md calls out, so readers can see how sensitive each
// reproduced shape is to its model constant.

// AblationAggregatorCap sweeps the aggregator dispatch rate and reports
// the tuned-configuration bandwidth: the Figure 1 optimum is
// aggregator-bound, so it must scale with this constant while the default
// configuration (OST-bound) must not.
func AblationAggregatorCap(opt Options) (*Outcome, error) {
	base := opt.platform()
	t := report.NewTable("Ablation: aggregator dispatch rate",
		"AggregatorMBs", "Tuned BW", "Default BW")
	scales := []float64{0.5, 1.0, 1.5}
	tunedBW := make([]float64, len(scales))
	defBW := make([]float64, len(scales))
	err := opt.each(2*len(scales), func(k int) error {
		i, half := k/2, k%2
		scale := scales[i]
		plat := *base
		plat.AggregatorMBs = base.AggregatorMBs * scale
		cfg := ior.PaperConfig(1024)
		cfg.SegmentCount = opt.segments(100)
		cfg.Reps = opt.reps(2)
		if half == 0 {
			cfg.Label = fmt.Sprintf("abl-agg-%g-tuned", scale)
			cfg.Hints = ior.TunedHints()
		} else {
			cfg.Label = fmt.Sprintf("abl-agg-%g-def", scale)
			cfg.API = mpiio.DriverUFS
		}
		res, err := ior.Run(&plat, cfg)
		if err != nil {
			return err
		}
		if half == 0 {
			tunedBW[i] = res.Write.Mean()
		} else {
			defBW[i] = res.Write.Mean()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var tunedAtBase, defaultAtBase, tunedAtHalf float64
	for i, scale := range scales {
		t.AddRow(base.AggregatorMBs*scale, tunedBW[i], defBW[i])
		switch scale {
		case 1.0:
			tunedAtBase, defaultAtBase = tunedBW[i], defBW[i]
		case 0.5:
			tunedAtHalf = tunedBW[i]
		}
	}
	return &Outcome{
		ID:     "ablation-aggcap",
		Title:  "Sensitivity of the Figure 1 optimum to aggregator dispatch capacity",
		Tables: []*report.Table{t},
		Comparisons: []Comparison{
			{"tuned BW halves when dispatch halves (ratio)", 0.5, tunedAtHalf / tunedAtBase},
			{"default BW (OST-bound, insensitive)", defaultAtBase, defaultAtBase},
		},
	}, nil
}

// AblationThrash disables the log-append thrash term and reruns the
// 4,096-process PLFS point: without thrash, PLFS should not collapse,
// demonstrating that the modelled seek interference—not the open storm
// alone—drives the paper's Figure 5 downturn.
func AblationThrash(opt Options) (*Outcome, error) {
	base := opt.platform()
	t := report.NewTable("Ablation: PLFS log-append thrash",
		"ThrashGamma", "PLFS BW at 4096 procs")
	run := func(gamma float64) (float64, error) {
		plat := *base
		plat.Class[2].ThrashGamma = gamma // ClassLogAppend
		cfg := ior.PaperConfig(4096)
		cfg.Label = fmt.Sprintf("abl-thrash-%g", gamma)
		cfg.API = mpiio.DriverPLFS
		cfg.SegmentCount = opt.segments(100)
		cfg.Reps = opt.reps(2)
		res, err := ior.Run(&plat, cfg)
		if err != nil {
			return 0, err
		}
		return res.Write.Mean(), nil
	}
	gammas := []float64{base.Class[2].ThrashGamma, 0}
	bws := make([]float64, len(gammas))
	err := opt.each(len(gammas), func(i int) error {
		bw, err := run(gammas[i])
		bws[i] = bw
		return err
	})
	if err != nil {
		return nil, err
	}
	withThrash, noThrash := bws[0], bws[1]
	t.AddRow(gammas[0], withThrash)
	t.AddRow(0.0, noThrash)
	return &Outcome{
		ID:     "ablation-thrash",
		Title:  "PLFS collapse requires OST log thrash, not just the open storm",
		Tables: []*report.Table{t},
		Comparisons: []Comparison{
			{"no-thrash/with-thrash BW ratio (>1.5 expected)", 2, noThrash / withThrash},
		},
	}, nil
}

// ExtensionReadback checks the read-back claim of Polte et al. [23] that
// the paper cites: because PLFS multiplies file streams, data written
// through PLFS reads back faster (at matching scale) than a shared file
// read collectively — the log-structure trade-off in the other direction.
func ExtensionReadback(opt Options) (*Outcome, error) {
	plat := opt.platform()
	const procs = 256
	run := func(api mpiio.Driver, hints mpiio.Hints, label string) (write, read float64, err error) {
		cfg := ior.PaperConfig(procs)
		cfg.Label = label
		cfg.API = api
		cfg.Hints = hints
		cfg.ReadFile = true
		cfg.SegmentCount = opt.segments(100)
		cfg.Reps = opt.reps(3)
		res, err := ior.Run(plat, cfg)
		if err != nil {
			return 0, 0, err
		}
		return res.Write.Mean(), res.Read.Mean(), nil
	}
	var lw, lr, pw, pr float64
	err := opt.each(2, func(i int) error {
		if i == 0 {
			w, rd, err := run(mpiio.DriverLustre, ior.TunedHints(), "ext-rb-lustre")
			lw, lr = w, rd
			return err
		}
		w, rd, err := run(mpiio.DriverPLFS, mpiio.NewHints(), "ext-rb-plfs")
		pw, pr = w, rd
		return err
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Extension: read-back bandwidth at 256 processes (MB/s)",
		"Driver", "Write", "Read", "Read/Write")
	t.AddRow("ad_lustre (tuned)", lw, lr, lr/lw)
	t.AddRow("ad_plfs", pw, pr, pr/pw)
	return &Outcome{
		ID:     "extension-readback",
		Title:  "PLFS log structure favours read-back (Polte et al. [23])",
		Tables: []*report.Table{t},
		Comparisons: []Comparison{
			{"PLFS read gain over tuned Lustre read (>1 expected)", 1, pr / lr},
		},
		Notes: []string{
			"PLFS reads recover data from per-rank logs as independent streams; the shared file reads through the same aggregator bottleneck it wrote through.",
		},
	}, nil
}

// ExtensionWideStriping lifts the Lustre 2.4.2 stripe limit (the paper's
// conclusion: "particular versions of Lustre already scale beyond this
// OST limit [24], but they are not currently being used") and asks what
// the tuned configuration would achieve striping over up to all 480
// OSTs, for single jobs and for four contending jobs.
func ExtensionWideStriping(opt Options) (*Outcome, error) {
	plat := *opt.platform()
	plat.MaxStripeCount = plat.OSTs // a Lustre without the 160-stripe cap
	t := report.NewTable("Extension: striping beyond the 160-OST limit",
		"Stripes", "Solo BW", "4-job avg BW", "4-job Dload")
	stripeCounts := []int{160, 320, 480}
	solo := make([]float64, len(stripeCounts))
	avg4 := make([]float64, len(stripeCounts))
	err := opt.each(2*len(stripeCounts), func(k int) error {
		i, half := k/2, k%2
		r := stripeCounts[i]
		cfg := ior.PaperConfig(1024)
		cfg.Label = fmt.Sprintf("ext-wide-%d", r)
		cfg.SegmentCount = opt.segments(100)
		cfg.Reps = opt.reps(3)
		cfg.Hints.StripingFactor = r
		cfg.Hints.StripingUnitMB = 128
		if half == 0 {
			res, err := ior.Run(&plat, cfg)
			if err != nil {
				return err
			}
			solo[i] = res.Write.Mean()
			return nil
		}
		contended, err := ior.RunContended(&plat, cfg, 4)
		if err != nil {
			return err
		}
		for _, c := range contended {
			avg4[i] += c.Write.Mean()
		}
		avg4[i] /= 4
		return nil
	})
	if err != nil {
		return nil, err
	}
	var solo160, solo480 float64
	for i, r := range stripeCounts {
		t.AddRow(r, solo[i], avg4[i], core.Dload(plat.OSTs, r, 4))
		switch r {
		case 160:
			solo160 = solo[i]
		case 480:
			solo480 = solo[i]
		}
	}
	return &Outcome{
		ID:     "extension-widestriping",
		Title:  "Lifting the stripe limit (Drokin [24]): no solo gain, amplified QoS cost",
		Tables: []*report.Table{t},
		Comparisons: []Comparison{
			{"solo 480-stripe gain over 160 (ratio)", 1, solo480 / solo160},
		},
		Notes: []string{
			"A single job gains almost nothing from striping past 160 — its aggregators are already saturated — while four contending 480-stripe jobs drive every OST to load ~4: all QoS cost, no benefit (Section V, amplified).",
		},
	}, nil
}

// ExtensionGATuner compares the Behzad-style genetic autotuner with the
// exhaustive sweep: it should find a near-optimal configuration with far
// fewer simulated runs.
func ExtensionGATuner(opt Options) (*Outcome, error) {
	plat := opt.platform()
	base := ior.PaperConfig(1024)
	base.SegmentCount = opt.segments(100)
	base.Reps = 1
	counts := sweep.CountsUpTo(plat)
	sizes := []float64{1, 32, 64, 128, 256}
	grid, err := sweep.Exhaustive(plat, counts, sizes, sweep.Options{
		Tasks: 1024, Reps: 1, Base: &base, Parallelism: opt.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	ga, err := sweep.Genetic(plat, sweep.GAOptions{
		Options:     sweep.Options{Tasks: 1024, Reps: 1, Base: &base, Parallelism: opt.Parallelism},
		Population:  8,
		Generations: 5,
		Seed:        plat.Seed,
		Counts:      counts,
		SizesMB:     sizes,
	})
	if err != nil {
		return nil, err
	}
	best := grid.Best()
	t := report.NewTable("Extension: GA autotuner vs exhaustive sweep",
		"Method", "Best config", "BW", "Evaluations")
	t.AddRow("exhaustive",
		fmt.Sprintf("%d × %gMB", best.StripeCount, best.StripeSizeMB),
		best.MBs, len(counts)*len(sizes))
	t.AddRow("genetic",
		fmt.Sprintf("%d × %gMB", ga.Best.StripeCount, ga.Best.StripeSizeMB),
		ga.Best.MBs, ga.Evaluations)
	return &Outcome{
		ID:     "extension-ga",
		Title:  "Genetic autotuning (Behzad et al.) against the exhaustive search",
		Tables: []*report.Table{t},
		Comparisons: []Comparison{
			{"GA best vs exhaustive best (ratio)", 1, ga.Best.MBs / best.MBs},
			{"GA evaluation fraction", 0.5, float64(ga.Evaluations) / float64(len(counts)*len(sizes))},
		},
	}, nil
}
