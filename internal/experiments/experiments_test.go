package experiments

import (
	"strings"
	"testing"

	"pfsim/internal/cluster"
)

func quick(t *testing.T) Options {
	t.Helper()
	return Options{Plat: cluster.Cab(), Quick: true}
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"figure1", "table3", "table4", "figure2", "figure3",
		"table5", "table6", "figure5", "table7", "table8", "table9"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("registry[%d] = %s, want %s", i, ids[i], id)
		}
	}
	for _, id := range append(want, ExtraIDs()...) {
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%q) failed", id)
		}
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Error("Lookup of unknown id succeeded")
	}
}

func TestAnalyticTables(t *testing.T) {
	for _, id := range []string{"table3", "table4", "table6"} {
		run, _ := Lookup(id)
		o, err := run(quick(t))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if o.ID != id {
			t.Errorf("%s: outcome id = %s", id, o.ID)
		}
		if len(o.Tables) == 0 || o.Tables[0].NumRows() != 10 {
			t.Errorf("%s: expected 10-row table", id)
		}
		// Analytic tables must match the paper essentially exactly.
		for _, c := range o.Comparisons {
			if !within(c.Measured, c.Paper, 0.01) {
				t.Errorf("%s: %s = %v, paper %v", id, c.Metric, c.Measured, c.Paper)
			}
		}
	}
}

func TestFigure1Quick(t *testing.T) {
	o, err := Figure1(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	byMetric := comparisonMap(o)
	if v := byMetric["best stripe count"]; v.Measured != 160 {
		t.Errorf("best stripe count = %v, want 160", v.Measured)
	}
	if v := byMetric["best stripe size MB"]; v.Measured != 128 {
		t.Errorf("best stripe size = %v, want 128", v.Measured)
	}
	if v := byMetric["speed-up over default"]; v.Measured < 35 || v.Measured > 65 {
		t.Errorf("speed-up = %v, want ≈49", v.Measured)
	}
	if v := byMetric["default config MB/s (2×1MB)"]; !within(v.Measured, v.Paper, 0.3) {
		t.Errorf("default = %v, paper %v", v.Measured, v.Paper)
	}
}

func TestFigure2Quick(t *testing.T) {
	o, err := Figure2(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	if o.Tables[0].NumRows() != 16 {
		t.Fatalf("figure2 rows = %d, want 16", o.Tables[0].NumRows())
	}
	byMetric := comparisonMap(o)
	if v := byMetric["single-writer MB/s"]; !within(v.Measured, 288, 0.1) {
		t.Errorf("single writer = %v, want ≈288", v.Measured)
	}
}

func TestFigure3Quick(t *testing.T) {
	o, err := Figure3(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	byMetric := comparisonMap(o)
	v := byMetric["per-task MB/s"]
	if !within(v.Measured, v.Paper, 0.35) {
		t.Errorf("per-task = %v, paper %v", v.Measured, v.Paper)
	}
	red := byMetric["reduction from solo peak"]
	if red.Measured < 2.5 || red.Measured > 5 {
		t.Errorf("reduction factor = %v, paper 3.44", red.Measured)
	}
}

func TestTable5Quick(t *testing.T) {
	o, err := Table5(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	if o.Tables[0].NumRows() != 5 {
		t.Fatalf("table5 rows = %d", o.Tables[0].NumRows())
	}
	for _, c := range o.Comparisons {
		if strings.HasPrefix(c.Metric, "actual Dinuse") && !within(c.Measured, c.Paper, 0.1) {
			t.Errorf("%s = %v, paper %v", c.Metric, c.Measured, c.Paper)
		}
		if strings.HasPrefix(c.Metric, "avg BW") && !within(c.Measured, c.Paper, 0.4) {
			t.Errorf("%s = %v, paper %v", c.Metric, c.Measured, c.Paper)
		}
	}
}

func TestTable8Quick(t *testing.T) {
	o, err := Table8(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	byMetric := comparisonMap(o)
	if v := byMetric["mean Dload"]; !within(v.Measured, 2.4, 0.06) {
		t.Errorf("Dload = %v, want ≈2.4", v.Measured)
	}
	if v := byMetric["analytic Dload (Eq. 6)"]; !within(v.Measured, 2.4, 0.05) {
		t.Errorf("analytic Dload = %v", v.Measured)
	}
}

func TestTable9Quick(t *testing.T) {
	o, err := Table9(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	byMetric := comparisonMap(o)
	if v := byMetric["mean Dload"]; !within(v.Measured, 17.07, 0.01) {
		t.Errorf("Dload = %v, want 17.07", v.Measured)
	}
}

func TestFigure5Quick(t *testing.T) {
	o, err := Figure5(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	byMetric := comparisonMap(o)
	cross := byMetric["Lustre/PLFS crossover (procs)"]
	if cross.Measured < 512 || cross.Measured > 2048 {
		t.Errorf("crossover at %v procs, paper at %v", cross.Measured, cross.Paper)
	}
	p4096 := byMetric["PLFS MB/s at 4096"]
	if !within(p4096.Measured, p4096.Paper, 0.35) {
		t.Errorf("PLFS@4096 = %v, paper %v", p4096.Measured, p4096.Paper)
	}
}

func TestOutcomeComparisonTable(t *testing.T) {
	o := &Outcome{Comparisons: []Comparison{{"m", 10, 9}}}
	tab := o.ComparisonTable()
	if tab.NumRows() != 1 {
		t.Errorf("comparison table rows = %d", tab.NumRows())
	}
	if got := (Comparison{"x", 0, 5}).Ratio(); got != 0 {
		t.Errorf("zero-paper ratio = %v", got)
	}
}

func comparisonMap(o *Outcome) map[string]Comparison {
	m := map[string]Comparison{}
	for _, c := range o.Comparisons {
		m[c.Metric] = c
	}
	return m
}

func TestExtrasQuick(t *testing.T) {
	// Ablations/extensions are exercised end-to-end by the benchmarks;
	// here just verify the cheap ones run and produce coherent outcomes.
	for _, id := range []string{"ablation-aggcap", "extension-readback"} {
		run, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		o, err := run(quick(t))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if o.ID != id || len(o.Tables) == 0 || len(o.Comparisons) == 0 {
			t.Errorf("%s: malformed outcome", id)
		}
	}
}

func TestAblationAggCapScaling(t *testing.T) {
	o, err := AblationAggregatorCap(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	c := comparisonMap(o)["tuned BW halves when dispatch halves (ratio)"]
	if !within(c.Measured, 0.5, 0.15) {
		t.Errorf("dispatch-halving ratio = %v, want ≈0.5 (aggregator-bound)", c.Measured)
	}
}

func TestExtensionReadbackGain(t *testing.T) {
	o, err := ExtensionReadback(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	c := comparisonMap(o)["PLFS read gain over tuned Lustre read (>1 expected)"]
	if c.Measured <= 1 {
		t.Errorf("PLFS read gain = %v, want > 1 (Polte et al.)", c.Measured)
	}
}
