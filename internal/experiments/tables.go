package experiments

import (
	"fmt"

	"pfsim/internal/core"
	"pfsim/internal/ior"
	"pfsim/internal/mpiio"
	"pfsim/internal/refdata"
	"pfsim/internal/report"
)

// Table5 regenerates Table V / Figure 4: four contending jobs while the
// per-job stripe request shrinks from 160 to 32 — bandwidth, the OST
// sharing histogram, and predicted vs realised Dinuse/Dload.
func Table5(opt Options) (*Outcome, error) {
	plat := opt.platform()
	reps := opt.reps(5)
	t := report.NewTable("Table V: four contended jobs, varying stripe request",
		"R", "Avg BW", "Total BW", "Dreq", "x1", "x2", "x3", "x4",
		"Pred Dinuse", "Pred Dload", "Actual Dinuse", "Actual Dload")
	var comps []Comparison
	var avg32, avg160 float64
	// One contended four-job simulation per stripe request: independent
	// systems, so the requests fan across the worker pool.
	perR := make([][]*ior.Result, len(refdata.TableV))
	err := opt.each(len(refdata.TableV), func(i int) error {
		results, err := runContendedSweep(opt, refdata.TableV[i].R, reps)
		perR[i] = results
		return err
	})
	if err != nil {
		return nil, err
	}
	for ri, ref := range refdata.TableV {
		results := perR[ri]
		var jobMeans []float64
		for _, res := range results {
			jobMeans = append(jobMeans, res.Write.Mean())
		}
		avg := meanOf(jobMeans)
		// Per-repetition sharing histogram across the four jobs' layouts.
		var sumCounts [5]float64
		var sumInUse, sumLoad float64
		for rep := 0; rep < reps; rep++ {
			var layouts [][]int
			for _, res := range results {
				if rep < len(res.LayoutOSTs) {
					layouts = append(layouts, res.LayoutOSTs[rep])
				}
			}
			counts, inUse, load := usageFromLayouts(plat.OSTs, layouts)
			for m := 1; m <= 4 && m < len(counts); m++ {
				sumCounts[m] += float64(counts[m])
			}
			sumInUse += float64(inUse)
			sumLoad += load
		}
		f := float64(reps)
		pred := core.Dinuse(plat.OSTs, ref.R, 4)
		predLoad := core.Dload(plat.OSTs, ref.R, 4)
		t.AddRow(ref.R, avg, avg*4, 4*ref.R,
			sumCounts[1]/f, sumCounts[2]/f, sumCounts[3]/f, sumCounts[4]/f,
			pred, predLoad, sumInUse/f, sumLoad/f)
		comps = append(comps,
			Comparison{fmt.Sprintf("avg BW at R=%d", ref.R), ref.AvgMBs, avg},
			Comparison{fmt.Sprintf("actual Dinuse at R=%d", ref.R), ref.ActualInUse, sumInUse / f})
		switch ref.R {
		case 32:
			avg32 = avg
		case 160:
			avg160 = avg
		}
	}
	o := &Outcome{
		ID:          "table5",
		Title:       "Bandwidth/availability trade-off under contention (Figure 4 data)",
		Tables:      []*report.Table{t},
		Comparisons: comps,
	}
	if avg160 > 0 {
		o.Notes = append(o.Notes, fmt.Sprintf(
			"Dropping each job's request from 160 to 32 stripes costs %.0f%% bandwidth while freeing ~%.0f%% of in-use OSTs.",
			100*(1-avg32/avg160),
			100*(1-core.Dinuse(plat.OSTs, 32, 4)/core.Dinuse(plat.OSTs, 160, 4))))
	}
	return o, nil
}

// plfsCollisions runs an n-rank PLFS IOR workload and renders the
// backend collision statistics the way Tables VIII and IX do: for each
// repetition, the number of in-use OSTs experiencing c collisions.
func plfsCollisions(opt Options, id string, procs, fullReps int, paperDload float64, paperMBs []float64) (*Outcome, error) {
	plat := opt.platform()
	cfg := ior.PaperConfig(procs)
	cfg.Label = fmt.Sprintf("%s-plfs-%d", id, procs)
	cfg.API = mpiio.DriverPLFS
	cfg.SegmentCount = opt.segments(100)
	cfg.Reps = opt.reps(fullReps)
	res, err := ior.Run(plat, cfg)
	if err != nil {
		return nil, err
	}
	reps := len(res.PLFS)
	headers := []string{"Collisions"}
	for e := 1; e <= reps; e++ {
		headers = append(headers, fmt.Sprintf("Exp %d", e))
	}
	t := report.NewTable(
		fmt.Sprintf("PLFS backend stripe collisions, %d processes", procs), headers...)
	maxC := 0
	hists := make([][]int, reps)
	for i, a := range res.PLFS {
		hists[i] = a.CollisionHistogram().Counts()
		if len(hists[i])-1 > maxC {
			maxC = len(hists[i]) - 1
		}
	}
	for c := 0; c <= maxC; c++ {
		row := []any{c}
		for _, h := range hists {
			if c < len(h) {
				row = append(row, h[c])
			} else {
				row = append(row, 0)
			}
		}
		t.AddRow(row...)
	}
	inUseRow := []any{"Dinuse"}
	loadRow := []any{"Dload"}
	bwRow := []any{"BW (MB/s)"}
	var meanLoad float64
	for i, a := range res.PLFS {
		inUseRow = append(inUseRow, a.InUse())
		loadRow = append(loadRow, a.Load())
		meanLoad += a.Load()
		vals := res.Write.Values()
		if i < len(vals) {
			bwRow = append(bwRow, vals[i])
		}
	}
	meanLoad /= float64(reps)
	t.AddRow(inUseRow...)
	t.AddRow(loadRow...)
	t.AddRow(bwRow...)

	o := &Outcome{
		ID:     id,
		Title:  fmt.Sprintf("PLFS self-contention statistics at %d processes", procs),
		Tables: []*report.Table{t},
		Comparisons: []Comparison{
			{"mean Dload", paperDload, meanLoad},
			{"mean BW MB/s", meanOf(paperMBs), res.Write.Mean()},
			{"analytic Dload (Eq. 6)", paperDload, core.PLFSLoad(plat.OSTs, procs)},
		},
	}
	return o, nil
}

// Table8 regenerates Table VIII: collision statistics for the PLFS backend
// directory at 512 processes.
func Table8(opt Options) (*Outcome, error) {
	var paperMean float64
	for _, l := range refdata.TableVIII.Dload {
		paperMean += l
	}
	paperMean /= float64(len(refdata.TableVIII.Dload))
	return plfsCollisions(opt, "table8", 512, 5, paperMean, refdata.TableVIII.MBs)
}

// Table9 regenerates Table IX: collision statistics at 4,096 processes,
// where every OST is in use and the load reaches 17.07.
func Table9(opt Options) (*Outcome, error) {
	reps := 5
	if opt.Quick {
		reps = 1
	}
	return plfsCollisions(opt, "table9", 4096, reps, refdata.TableIXDload, refdata.TableIXMBs)
}
