// Package experiments regenerates every table and figure of the
// reproduced paper on the simulated platform. Each experiment returns an
// Outcome holding the rendered table, paper-vs-measured comparisons and
// notes; the cmd tools, the root benchmark harness and EXPERIMENTS.md all
// share these implementations.
package experiments

import (
	"context"
	"fmt"
	"math"

	"pfsim/internal/cluster"
	"pfsim/internal/core"
	"pfsim/internal/ior"
	"pfsim/internal/pool"
	"pfsim/internal/refdata"
	"pfsim/internal/report"
)

// Options configures an experiment run.
type Options struct {
	// Plat is the simulated platform (nil selects cluster.Cab()).
	Plat *cluster.Platform
	// Quick trades repetitions and written volume for speed; shapes are
	// preserved. Benchmarks use Quick, cmd/experiments the full setting.
	Quick bool
	// Parallelism fans an experiment's independent simulations across
	// this many workers (1 = serial; values below one select GOMAXPROCS,
	// the default). Every simulation is deterministic in isolation, so
	// regenerated artefacts are byte-identical at any parallelism.
	Parallelism int
}

// each runs fn(0..n-1) across the experiment's worker pool. Callers keep
// per-index state and render tables serially afterwards, so outputs do
// not depend on completion order.
func (o Options) each(n int, fn func(i int) error) error {
	return pool.Run(context.Background(), o.Parallelism, n, fn)
}

func (o Options) platform() *cluster.Platform {
	if o.Plat != nil {
		return o.Plat
	}
	return cluster.Cab()
}

func (o Options) reps(full int) int {
	if o.Quick && full > 2 {
		return 2
	}
	return full
}

func (o Options) segments(full int) int {
	if o.Quick {
		return full / 4
	}
	return full
}

// Comparison pairs a paper value with the simulator's measurement.
type Comparison struct {
	Metric   string
	Paper    float64
	Measured float64
}

// Ratio returns measured/paper (0 when the paper value is 0).
func (c Comparison) Ratio() float64 {
	if c.Paper == 0 {
		return 0
	}
	return c.Measured / c.Paper
}

// Outcome is the result of one experiment.
type Outcome struct {
	// ID is the paper artefact ("figure1", "table5", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Tables hold the regenerated content.
	Tables []*report.Table
	// Comparisons summarise paper-vs-measured for the headline values.
	Comparisons []Comparison
	// Notes document deviations and modelling caveats.
	Notes []string
}

// ComparisonTable renders the outcome's comparisons.
func (o *Outcome) ComparisonTable() *report.Table {
	t := report.NewTable("Paper vs measured", "Metric", "Paper", "Measured", "Ratio")
	for _, c := range o.Comparisons {
		t.AddRow(c.Metric, c.Paper, c.Measured, fmt.Sprintf("%.2f", c.Ratio()))
	}
	return t
}

// Runner regenerates one paper artefact.
type Runner func(Options) (*Outcome, error)

// registryEntry orders the catalogue as the artefacts appear in the paper.
type registryEntry struct {
	id string
	fn Runner
}

var registry = []registryEntry{
	{"figure1", Figure1},
	{"table3", Table3},
	{"table4", Table4},
	{"figure2", Figure2},
	{"figure3", Figure3},
	{"table5", Table5},
	{"table6", Table6},
	{"figure5", Figure5},
	{"table7", Table7},
	{"table8", Table8},
	{"table9", Table9},
}

// extras are ablations and extensions beyond the paper's artefacts.
var extras = []registryEntry{
	{"ablation-aggcap", AblationAggregatorCap},
	{"ablation-thrash", AblationThrash},
	{"extension-ga", ExtensionGATuner},
	{"extension-readback", ExtensionReadback},
	{"extension-widestriping", ExtensionWideStriping},
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// ExtraIDs lists the ablation/extension identifiers.
func ExtraIDs() []string {
	out := make([]string, len(extras))
	for i, e := range extras {
		out[i] = e.id
	}
	return out
}

// Lookup returns the runner for an artefact or extra id.
func Lookup(id string) (Runner, bool) {
	for _, e := range registry {
		if e.id == id {
			return e.fn, true
		}
	}
	for _, e := range extras {
		if e.id == id {
			return e.fn, true
		}
	}
	return nil, false
}

// loadTable renders an analytic load table against its paper counterpart.
func loadTable(title string, fs core.FileSystem, r int, paper []refdata.LoadRow) (*report.Table, []Comparison) {
	t := report.NewTable(title, "Jobs", "Dinuse", "Dreq", "Dload", "paper Dinuse", "paper Dload")
	rows := core.LoadTable(fs, r, len(paper))
	var comps []Comparison
	for i, row := range rows {
		p := paper[i]
		t.AddRow(row.Jobs, row.Dinuse, row.Dreq, row.Dload, p.Dinuse, p.Dload)
		if row.Jobs == len(paper) {
			comps = append(comps,
				Comparison{fmt.Sprintf("Dinuse at n=%d", row.Jobs), p.Dinuse, row.Dinuse},
				Comparison{fmt.Sprintf("Dload at n=%d", row.Jobs), p.Dload, row.Dload})
		}
	}
	return t, comps
}

// Table3 regenerates Table III: OST usage and load on lscratchc with each
// job requesting 160 stripes (Equations 2-4).
func Table3(opt Options) (*Outcome, error) {
	fs := coreFS(opt.platform())
	t, comps := loadTable("Table III: Dtotal=480, R=160", fs, 160, refdata.TableIII)
	return &Outcome{
		ID:          "table3",
		Title:       "OST load for n jobs × 160 stripes (lscratchc)",
		Tables:      []*report.Table{t},
		Comparisons: comps,
	}, nil
}

// Table4 regenerates Table IV (R = 64).
func Table4(opt Options) (*Outcome, error) {
	fs := coreFS(opt.platform())
	t, comps := loadTable("Table IV: Dtotal=480, R=64", fs, 64, refdata.TableIV)
	return &Outcome{
		ID:          "table4",
		Title:       "OST load for n jobs × 64 stripes (lscratchc)",
		Tables:      []*report.Table{t},
		Comparisons: comps,
	}, nil
}

// Table6 regenerates Table VI: the Stampede prediction (Dtotal=160,
// R=128).
func Table6(Options) (*Outcome, error) {
	fs := core.Stampede()
	t, comps := loadTable("Table VI: Stampede, Dtotal=160, R=128", fs, 128, refdata.TableVI)
	o := &Outcome{
		ID:          "table6",
		Title:       "Predicted OST load on Stampede (Behzad et al. tuning)",
		Tables:      []*report.Table{t},
		Comparisons: comps,
	}
	o.Notes = append(o.Notes,
		"With only 3 simultaneous tuned tasks, Stampede's OSTs serve 2-3 jobs each on average.")
	return o, nil
}

func coreFS(plat *cluster.Platform) core.FileSystem {
	return core.FileSystem{
		Name:           plat.Name,
		TotalOSTs:      plat.OSTs,
		MaxStripeCount: plat.MaxStripeCount,
	}
}

// meanOf averages a float slice (0 for empty).
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// usageFromLayouts counts, for one repetition, how many OSTs are used by
// exactly m of the jobs (m = 1..n) plus the realised in-use count and
// load.
func usageFromLayouts(dtotal int, layouts [][]int) (counts []int, inUse int, load float64) {
	n := len(layouts)
	sharers := make([]int, dtotal)
	stripes := 0
	for _, l := range layouts {
		for _, o := range l {
			sharers[o]++
			stripes++
		}
	}
	counts = make([]int, n+1)
	for _, s := range sharers {
		if s > 0 {
			if s > n {
				s = n
			}
			counts[s]++
			inUse++
		}
	}
	if inUse > 0 {
		load = float64(stripes) / float64(inUse)
	}
	return counts, inUse, load
}

// within reports |a-b| <= frac*|b|.
func within(a, b, frac float64) bool {
	return math.Abs(a-b) <= frac*math.Abs(b)
}

func runContendedSweep(opt Options, r int, reps int) ([]*ior.Result, error) {
	plat := opt.platform()
	base := ior.PaperConfig(1024)
	base.Label = fmt.Sprintf("contend-r%d", r)
	base.SegmentCount = opt.segments(100)
	base.Reps = reps
	base.Hints.StripingFactor = r
	base.Hints.StripingUnitMB = 128
	return ior.RunContended(plat, base, 4)
}
