// Package plfs simulates the Parallel Log-structured File System (Bent et
// al., SC'09) as layered over Lustre: an N-to-1 shared-file write becomes N
// per-rank write streams, each appending to a private data log plus an
// index log inside a container directory hashed into subdirectories. Every
// data log is created with the system-default Lustre layout (two 1 MB
// stripes on lscratchc), which is precisely why PLFS self-contends at
// scale: n ranks behave like n jobs with R = 2 (Equations 5-6 of the
// paper).
package plfs

import (
	"fmt"

	"pfsim/internal/cluster"
	"pfsim/internal/core"
	"pfsim/internal/flow"
	"pfsim/internal/lustre"
	"pfsim/internal/sim"
)

// Container is one PLFS file: a backend directory tree holding per-rank
// data and index logs.
type Container struct {
	sys     *lustre.System
	name    string
	subdirs int

	createRes *sim.Resource
	ready     *sim.Signal

	logs  map[int]*RankLog
	order []int
}

// NewContainer prepares a container shell for the given backend file
// system. Call CreateMeta from exactly one rank, then OpenRank from every
// writing rank.
func NewContainer(sys *lustre.System, name string) *Container {
	return &Container{
		sys:       sys,
		name:      name,
		subdirs:   sys.Platform().PLFSSubdirs,
		createRes: sys.Engine().NewResource("plfs-create:"+name, 1),
		ready:     sys.Engine().NewSignal("plfs-ready:" + name),
		logs:      make(map[int]*RankLog),
	}
}

// Name returns the container name.
func (c *Container) Name() string { return c.name }

// Subdir returns the hashed backend subdirectory for a rank.
func (c *Container) Subdir(rank int) int {
	if rank < 0 {
		rank = -rank
	}
	return rank % c.subdirs
}

// CreateMeta creates the container skeleton (top-level directory, metadata
// and the hashed subdirectories) and unblocks OpenRank callers. PLFS
// creates subdirectories lazily in batches; we charge one metadata
// operation per subdirectory plus one for the container itself.
func (c *Container) CreateMeta(p *sim.Proc) {
	for i := 0; i <= c.subdirs; i++ {
		c.sys.MDS().Stat(p)
	}
	c.ready.Fire()
}

// CreateMetaK is CreateMeta for task-mode callers: the same subdirs+1
// sequential metadata operations, expressed as a self-continuing chain,
// then ready fires and k runs.
func (c *Container) CreateMetaK(t *sim.Task, k func()) {
	i := 0
	var step func()
	step = func() {
		if i > c.subdirs {
			c.ready.Fire()
			k()
			return
		}
		i++
		c.sys.MDS().StatK(t, step)
	}
	step()
}

// RankLog is one rank's pair of backend logs.
type RankLog struct {
	c      *Container
	rank   int
	subdir int
	data   *lustre.File
	index  *lustre.File

	writtenMB float64
	records   int
	closed    bool
}

// OpenRank creates the rank's data and index logs. Creates serialize on
// the container's backend-directory lock — the effective cost calibrated
// by Platform.PLFSCreateTime — reproducing the open storm that dominates
// large PLFS runs.
func (c *Container) OpenRank(p *sim.Proc, rank int) (*RankLog, error) {
	if _, dup := c.logs[rank]; dup {
		return nil, fmt.Errorf("plfs: rank %d already open in %q", rank, c.name)
	}
	p.Wait(c.ready)
	// Two creates (data + index) under the shared subdir DLM lock.
	c.createRes.Use(p, 2*c.sys.Platform().PLFSCreateTime)
	prefix := fmt.Sprintf("%s/hostdir.%d", c.name, c.Subdir(rank))
	data, err := c.sys.MDS().Create(p, fmt.Sprintf("%s/dropping.data.%d", prefix, rank), lustre.DefaultSpec())
	if err != nil {
		return nil, err
	}
	index, err := c.sys.MDS().Create(p, fmt.Sprintf("%s/dropping.index.%d", prefix, rank), c.indexSpec())
	if err != nil {
		return nil, err
	}
	return c.adoptLog(rank, data, index), nil
}

// OpenRankK is OpenRank for task-mode callers: wait for the container
// skeleton, serialize the two creates under the subdir lock, deliver the
// log to k.
func (c *Container) OpenRankK(t *sim.Task, rank int, k func(*RankLog, error)) {
	if _, dup := c.logs[rank]; dup {
		k(nil, fmt.Errorf("plfs: rank %d already open in %q", rank, c.name))
		return
	}
	c.ready.Await(t, func() {
		c.createRes.UseTask(t, 2*c.sys.Platform().PLFSCreateTime, func() {
			prefix := fmt.Sprintf("%s/hostdir.%d", c.name, c.Subdir(rank))
			c.sys.MDS().CreateK(t, fmt.Sprintf("%s/dropping.data.%d", prefix, rank), lustre.DefaultSpec(),
				func(data *lustre.File, err error) {
					if err != nil {
						k(nil, err)
						return
					}
					c.sys.MDS().CreateK(t, fmt.Sprintf("%s/dropping.index.%d", prefix, rank), c.indexSpec(),
						func(index *lustre.File, err error) {
							if err != nil {
								k(nil, err)
								return
							}
							k(c.adoptLog(rank, data, index), nil)
						})
				})
		})
	})
}

// indexSpec is the single-stripe layout index logs are created with.
func (c *Container) indexSpec() lustre.StripeSpec {
	return lustre.StripeSpec{Count: 1, SizeMB: c.sys.Platform().DefaultStripeSizeMB, OffsetOST: -1}
}

// adoptLog registers a freshly created rank log in the container.
func (c *Container) adoptLog(rank int, data, index *lustre.File) *RankLog {
	rl := &RankLog{c: c, rank: rank, subdir: c.Subdir(rank), data: data, index: index}
	c.logs[rank] = rl
	c.order = append(c.order, rank)
	return rl
}

// Data returns the rank's data log file.
func (rl *RankLog) Data() *lustre.File { return rl.data }

// Records returns the number of index records written.
func (rl *RankLog) Records() int { return rl.records }

// WrittenMB returns the volume appended to the data log.
func (rl *RankLog) WrittenMB() float64 { return rl.writtenMB }

// Write appends sizeMB from a rank on the given node as transfers of
// transferMB each. The append stream is striped over the data log's
// (default, 2-OST) layout; each stripe stream is rate-capped so the whole
// rank sustains at most Platform.PLFSRankMBs, the calibrated per-rank PLFS
// write path cost. Write blocks until the data is on the OSTs.
func (rl *RankLog) Write(p *sim.Proc, node int, sizeMB, transferMB float64) error {
	if err := rl.checkWrite(sizeMB, transferMB); err != nil || sizeMB == 0 {
		return err
	}
	reqs := rl.writeReqs(node, sizeMB, transferMB)
	p.WaitAll(flow.Dones(rl.c.sys.StartWrites(reqs))...)
	rl.accountWrite(sizeMB, transferMB)
	return nil
}

// WriteK is Write for task-mode callers: k runs (with any validation
// error) once the data is on the OSTs.
func (rl *RankLog) WriteK(t *sim.Task, node int, sizeMB, transferMB float64, k func(error)) {
	if err := rl.checkWrite(sizeMB, transferMB); err != nil || sizeMB == 0 {
		k(err)
		return
	}
	reqs := rl.writeReqs(node, sizeMB, transferMB)
	sim.AwaitAll(t, flow.Dones(rl.c.sys.StartWrites(reqs)), func() {
		rl.accountWrite(sizeMB, transferMB)
		k(nil)
	})
}

func (rl *RankLog) checkWrite(sizeMB, transferMB float64) error {
	if rl.closed {
		return fmt.Errorf("plfs: write to closed log (rank %d)", rl.rank)
	}
	if sizeMB < 0 || transferMB <= 0 {
		return fmt.Errorf("plfs: bad write size=%v transfer=%v", sizeMB, transferMB)
	}
	return nil
}

// writeReqs builds the per-OST append streams for one rank write.
func (rl *RankLog) writeReqs(node int, sizeMB, transferMB float64) []lustre.WriteReq {
	plat := rl.c.sys.Platform()
	shares := rl.data.Layout.BytesPerOST(sizeMB)
	perStream := plat.PLFSRankMBs / float64(len(shares))
	var reqs []lustre.WriteReq
	for i, mb := range shares {
		if mb <= 0 {
			continue
		}
		ost := rl.c.sys.OST(rl.data.Layout.OSTs[i])
		reqs = append(reqs, lustre.WriteReq{
			Name:   fmt.Sprintf("plfs:%s:r%d:o%d", rl.c.name, rl.rank, ost.ID()),
			SizeMB: mb,
			OST:    ost,
			Opts: lustre.WriteOpts{
				Node:    node,
				Class:   cluster.ClassLogAppend,
				FileID:  rl.data.ID,
				RPCMB:   transferMB,
				MaxRate: perStream,
			},
		})
	}
	return reqs
}

// accountWrite records a completed append in the log's telemetry.
func (rl *RankLog) accountWrite(sizeMB, transferMB float64) {
	rl.writtenMB += sizeMB
	rl.records += int(sizeMB / transferMB)
}

// BatchWrite appends perRankMB to every opened rank log in one collective
// operation. Same-OST log streams are symmetric for uniform writes — equal
// volume, equal rate cap, fair-shared service — so they complete
// simultaneously and can be merged exactly into a single fluid flow per
// OST. This keeps the flow population at O(OSTs) instead of O(ranks),
// which is what makes 4,096-rank PLFS simulations tractable. Per-node NIC
// links are omitted from the merged paths: PLFS rank streams never
// approach NIC capacity (16 ranks × ~47 MB/s ≪ 1.6 GB/s).
//
// BatchWrite blocks until the slowest OST drains — exactly when the
// slowest rank would finish under per-rank flows.
func (c *Container) BatchWrite(p *sim.Proc, perRankMB, transferMB float64) error {
	specs, err := c.batchSpecs(perRankMB, transferMB)
	if err != nil || specs == nil {
		return err
	}
	p.WaitAll(flow.Dones(c.sys.Net().StartBatch(specs))...)
	return nil
}

// BatchWriteK is BatchWrite for task-mode callers: k runs (with any
// validation error) once the slowest merged OST stream drains.
func (c *Container) BatchWriteK(t *sim.Task, perRankMB, transferMB float64, k func(error)) {
	specs, err := c.batchSpecs(perRankMB, transferMB)
	if err != nil || specs == nil {
		k(err)
		return
	}
	sim.AwaitAll(t, flow.Dones(c.sys.Net().StartBatch(specs)), func() { k(nil) })
}

// batchSpecs merges the per-rank log streams into one flow spec per OST
// and accounts the written volume — the synchronous body shared by
// BatchWrite and BatchWriteK. A nil, nil return means nothing to write.
func (c *Container) batchSpecs(perRankMB, transferMB float64) ([]flow.FlowSpec, error) {
	if perRankMB < 0 || transferMB <= 0 {
		return nil, fmt.Errorf("plfs: bad batch write size=%v transfer=%v", perRankMB, transferMB)
	}
	if perRankMB == 0 || len(c.order) == 0 {
		return nil, nil
	}
	plat := c.sys.Platform()
	type ostShare struct {
		totalMB float64
		maxRate float64
		streams []*lustre.Stream
	}
	shares := make(map[int]*ostShare)
	var ostOrder []int
	for _, rank := range c.order {
		rl := c.logs[rank]
		if rl.closed {
			return nil, fmt.Errorf("plfs: batch write with closed log (rank %d)", rank)
		}
		perOST := rl.data.Layout.BytesPerOST(perRankMB)
		perStream := plat.PLFSRankMBs / float64(len(perOST))
		for i, mb := range perOST {
			if mb <= 0 {
				continue
			}
			id := rl.data.Layout.OSTs[i]
			sh := shares[id]
			if sh == nil {
				sh = &ostShare{}
				shares[id] = sh
				ostOrder = append(ostOrder, id)
			}
			sh.totalMB += mb
			sh.maxRate += perStream
			sh.streams = append(sh.streams,
				c.sys.OST(id).AddStream(cluster.ClassLogAppend, rl.data.ID, transferMB))
		}
		rl.writtenMB += perRankMB
		rl.records += int(perRankMB / transferMB)
	}
	specs := make([]flow.FlowSpec, 0, len(ostOrder))
	for _, id := range ostOrder {
		sh := shares[id]
		ost := c.sys.OST(id)
		streams := sh.streams
		specs = append(specs, flow.FlowSpec{
			Name:    fmt.Sprintf("plfs-batch:%s:o%d", c.name, id),
			SizeMB:  sh.totalMB,
			MaxRate: sh.maxRate,
			OnDone: func() {
				for _, st := range streams {
					st.Remove()
				}
			},
			Path: []*flow.Link{c.sys.Backbone(), c.sys.OSSLink(ost.OSS()), ost.Link()},
		})
	}
	return specs, nil
}

// Read plays the data back: an index merge (in-memory, charged per record)
// followed by sequential reads from the data log's OSTs. The paper's
// experiments are write-only; Read exists for API completeness and the
// read-back examples.
func (rl *RankLog) Read(p *sim.Proc, node int, sizeMB float64) error {
	if sizeMB <= 0 {
		return nil
	}
	// Index record lookup: ~1 µs per record, linear merge.
	p.Sleep(float64(rl.records) * 1e-6)
	p.WaitAll(flow.Dones(rl.c.sys.StartWrites(rl.readReqs(node, sizeMB)))...)
	return nil
}

// ReadK is Read for task-mode callers: the index merge charge, then the
// sequential reads, then k.
func (rl *RankLog) ReadK(t *sim.Task, node int, sizeMB float64, k func(error)) {
	if sizeMB <= 0 {
		k(nil)
		return
	}
	t.Sleep(float64(rl.records)*1e-6, func() {
		sim.AwaitAll(t, flow.Dones(rl.c.sys.StartWrites(rl.readReqs(node, sizeMB))), func() { k(nil) })
	})
}

// readReqs builds the per-OST sequential read streams for a log replay.
func (rl *RankLog) readReqs(node int, sizeMB float64) []lustre.WriteReq {
	shares := rl.data.Layout.BytesPerOST(sizeMB)
	var reqs []lustre.WriteReq
	for i, mb := range shares {
		if mb <= 0 {
			continue
		}
		ost := rl.c.sys.OST(rl.data.Layout.OSTs[i])
		reqs = append(reqs, lustre.WriteReq{
			Name:   fmt.Sprintf("plfs-read:%s:r%d:o%d", rl.c.name, rl.rank, ost.ID()),
			SizeMB: mb,
			OST:    ost,
			Opts: lustre.WriteOpts{
				Node:   node,
				Class:  cluster.ClassSequential,
				FileID: rl.data.ID,
				RPCMB:  rl.data.Layout.SizeMB,
			},
		})
	}
	return reqs
}

// Close flushes the rank's index log (one metadata operation).
func (rl *RankLog) Close(p *sim.Proc) {
	if rl.closed {
		return
	}
	rl.closed = true
	rl.c.sys.MDS().Stat(p)
}

// CloseK is Close for task-mode callers: k runs after the index flush
// (immediately for an already-closed log).
func (rl *RankLog) CloseK(t *sim.Task, k func()) {
	if rl.closed {
		k()
		return
	}
	rl.closed = true
	rl.c.sys.MDS().StatK(t, k)
}

// Ranks returns the number of opened rank logs.
func (c *Container) Ranks() int { return len(c.logs) }

// IndexRecords sums index records across ranks.
func (c *Container) IndexRecords() int {
	total := 0
	for _, rl := range c.logs {
		total += rl.records
	}
	return total
}

// Assignment exposes the realised backend layout as a core.Assignment so
// the paper's collision statistics (Tables VIII and IX) can be computed
// from an actual simulated run: entry j holds the OSTs of the j-th opened
// rank's data log.
func (c *Container) Assignment() core.Assignment {
	a := core.Assignment{
		Dtotal:  c.sys.NumOSTs(),
		JobOSTs: make([][]int, 0, len(c.order)),
	}
	for _, rank := range c.order {
		layout := c.logs[rank].data.Layout
		osts := make([]int, len(layout.OSTs))
		copy(osts, layout.OSTs)
		a.JobOSTs = append(a.JobOSTs, osts)
	}
	return a
}
