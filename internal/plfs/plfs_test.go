package plfs

import (
	"fmt"
	"math"
	"testing"

	"pfsim/internal/cluster"
	"pfsim/internal/lustre"
	"pfsim/internal/sim"
	"pfsim/internal/stats"
)

func testSys(t *testing.T) (*sim.Engine, *lustre.System) {
	t.Helper()
	plat := cluster.Cab()
	plat.JitterCV = 0
	eng := sim.NewEngine()
	sys, err := lustre.NewSystem(eng, plat, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	return eng, sys
}

func TestContainerLifecycle(t *testing.T) {
	eng, sys := testSys(t)
	c := NewContainer(sys, "checkpoint")
	const ranks = 8
	var logs [ranks]*RankLog
	eng.Spawn("rank0-meta", func(p *sim.Proc) { c.CreateMeta(p) })
	for r := 0; r < ranks; r++ {
		r := r
		eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			rl, err := c.OpenRank(p, r)
			if err != nil {
				t.Errorf("OpenRank(%d): %v", r, err)
				return
			}
			logs[r] = rl
			if err := rl.Write(p, r/16, 100, 1); err != nil {
				t.Errorf("Write(%d): %v", r, err)
			}
			rl.Close(p)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Ranks() != ranks {
		t.Errorf("Ranks = %d, want %d", c.Ranks(), ranks)
	}
	for r, rl := range logs {
		if rl.WrittenMB() != 100 {
			t.Errorf("rank %d wrote %v MB", r, rl.WrittenMB())
		}
		if rl.Records() != 100 {
			t.Errorf("rank %d has %d records, want 100", r, rl.Records())
		}
		if got := rl.Data().Layout.StripeCount(); got != 2 {
			t.Errorf("rank %d data log has %d stripes, want system default 2", r, got)
		}
	}
	if c.IndexRecords() != ranks*100 {
		t.Errorf("index records = %d", c.IndexRecords())
	}
}

func TestOpenStormSerializes(t *testing.T) {
	eng, sys := testSys(t)
	c := NewContainer(sys, "storm")
	const ranks = 32
	var lastOpen float64
	eng.Spawn("meta", func(p *sim.Proc) { c.CreateMeta(p) })
	for r := 0; r < ranks; r++ {
		r := r
		eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			if _, err := c.OpenRank(p, r); err != nil {
				t.Errorf("open %d: %v", r, err)
			}
			if p.Now() > lastOpen {
				lastOpen = p.Now()
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 32 ranks × 2 creates × PLFSCreateTime serialized, plus MDS ops.
	minExpected := float64(ranks) * 2 * sys.Platform().PLFSCreateTime
	if lastOpen < minExpected {
		t.Errorf("open storm finished at %v, want >= %v (serialized)", lastOpen, minExpected)
	}
	if lastOpen > 2*minExpected {
		t.Errorf("open storm took %v, suspiciously long vs %v", lastOpen, minExpected)
	}
}

func TestDuplicateOpenRejected(t *testing.T) {
	eng, sys := testSys(t)
	c := NewContainer(sys, "dup")
	eng.Spawn("meta", func(p *sim.Proc) { c.CreateMeta(p) })
	eng.Spawn("rank", func(p *sim.Proc) {
		if _, err := c.OpenRank(p, 3); err != nil {
			t.Errorf("first open: %v", err)
		}
		if _, err := c.OpenRank(p, 3); err == nil {
			t.Error("duplicate open accepted")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteValidation(t *testing.T) {
	eng, sys := testSys(t)
	c := NewContainer(sys, "val")
	eng.Spawn("meta", func(p *sim.Proc) { c.CreateMeta(p) })
	eng.Spawn("rank", func(p *sim.Proc) {
		rl, _ := c.OpenRank(p, 0)
		if err := rl.Write(p, 0, -1, 1); err == nil {
			t.Error("negative size accepted")
		}
		if err := rl.Write(p, 0, 10, 0); err == nil {
			t.Error("zero transfer accepted")
		}
		if err := rl.Write(p, 0, 0, 1); err != nil {
			t.Errorf("zero-size write should be a no-op: %v", err)
		}
		rl.Close(p)
		rl.Close(p) // idempotent
		if err := rl.Write(p, 0, 10, 1); err == nil {
			t.Error("write after close accepted")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRankRateCap(t *testing.T) {
	// A single rank writing alone must sustain ~PLFSRankMBs, not the full
	// OST bandwidth.
	eng, sys := testSys(t)
	c := NewContainer(sys, "solo")
	var bw float64
	eng.Spawn("meta", func(p *sim.Proc) { c.CreateMeta(p) })
	eng.Spawn("rank", func(p *sim.Proc) {
		rl, _ := c.OpenRank(p, 0)
		start := p.Now()
		if err := rl.Write(p, 0, 470, 1); err != nil {
			t.Fatal(err)
		}
		bw = 470 / (p.Now() - start)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := sys.Platform().PLFSRankMBs
	if math.Abs(bw-want) > 0.02*want {
		t.Errorf("solo rank bandwidth = %.1f, want ~%.1f", bw, want)
	}
}

func TestSubdirHashing(t *testing.T) {
	_, sys := testSys(t)
	c := NewContainer(sys, "hash")
	counts := make([]int, c.subdirs)
	for r := 0; r < 320; r++ {
		d := c.Subdir(r)
		if d < 0 || d >= c.subdirs {
			t.Fatalf("subdir %d out of range", d)
		}
		counts[d]++
	}
	for d, n := range counts {
		if n != 10 {
			t.Errorf("subdir %d holds %d ranks, want 10 (uniform)", d, n)
		}
	}
	if c.Subdir(-5) < 0 {
		t.Error("negative rank must still hash to a valid subdir")
	}
}

func TestAssignmentMatchesEquation5(t *testing.T) {
	// The realised container layout must track PLFSDinuse/PLFSLoad.
	eng, sys := testSys(t)
	c := NewContainer(sys, "eq5")
	const ranks = 512
	eng.Spawn("meta", func(p *sim.Proc) { c.CreateMeta(p) })
	for r := 0; r < ranks; r++ {
		r := r
		eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			if _, err := c.OpenRank(p, r); err != nil {
				t.Errorf("open: %v", err)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	a := c.Assignment()
	if len(a.JobOSTs) != ranks {
		t.Fatalf("assignment has %d ranks", len(a.JobOSTs))
	}
	// Paper Table VIII: Dinuse 418-433, Dload 2.36-2.45 across experiments.
	inUse := float64(a.InUse())
	if inUse < 410 || inUse > 440 {
		t.Errorf("realised Dinuse = %v, want ~427", inUse)
	}
	if l := a.Load(); l < 2.3 || l > 2.5 {
		t.Errorf("realised Dload = %v, want ~2.4", l)
	}
}

func TestReadBack(t *testing.T) {
	eng, sys := testSys(t)
	c := NewContainer(sys, "rb")
	eng.Spawn("meta", func(p *sim.Proc) { c.CreateMeta(p) })
	var readTime float64
	eng.Spawn("rank", func(p *sim.Proc) {
		rl, _ := c.OpenRank(p, 0)
		if err := rl.Write(p, 0, 94, 1); err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		if err := rl.Read(p, 0, 94); err != nil {
			t.Fatal(err)
		}
		readTime = p.Now() - start
		if err := rl.Read(p, 0, 0); err != nil {
			t.Errorf("zero read: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Read path is sequential-class and index-merge-dominated; it must be
	// faster than the rank-capped write (94/47 = 2s).
	if readTime <= 0 || readTime > 2 {
		t.Errorf("read took %v, want (0, 2)", readTime)
	}
}
