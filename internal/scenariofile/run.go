package scenariofile

import (
	"context"
	"fmt"
	"strings"

	"pfsim/internal/cluster"
	"pfsim/internal/flow"
	"pfsim/internal/ior"
	"pfsim/internal/lustre"
	"pfsim/internal/pool"
	"pfsim/internal/workload"
)

// RunOptions configures one scenario-file execution.
type RunOptions struct {
	// Seed overrides the platform seed (0 keeps the file's choice).
	Seed uint64
	// Parallelism is spent inside the fluid solver during the contended
	// run and across the worker pool for solo baselines — byte-identical
	// results at any width.
	Parallelism int
	// Reference forces the reference solver (the incremental solver's
	// byte-identical oracle); used by equivalence tests.
	Reference bool
	// Ctx cancels the run mid-simulation.
	Ctx context.Context
}

// Result is the outcome of running one scenario file: the simulation
// results plus the assertion verdict.
type Result struct {
	// File is the executed scenario.
	File *File
	// Platform is the resolved cluster description.
	Platform *cluster.Platform
	// Mono holds the monolithic run's result (nil for sharded files).
	Mono *workload.Result
	// Sharded holds the sharded run's result (nil for monolithic files).
	Sharded *workload.ShardedResult
	// Failures lists every assertion that did not hold, in assertion
	// block order. Empty means the file passed.
	Failures []string
}

// Passed reports whether every assertion held.
func (r *Result) Passed() bool { return len(r.Failures) == 0 }

// Makespan returns the run's makespan.
func (r *Result) Makespan() float64 {
	if r.Mono != nil {
		return r.Mono.Makespan
	}
	return r.Sharded.Makespan
}

// Solver returns the run's solver work counters.
func (r *Result) Solver() flow.Stats {
	if r.Mono != nil {
		return r.Mono.Solver
	}
	return r.Sharded.Solver
}

// Aggregate returns the run's cross-job bandwidth summary.
func (r *Result) Aggregate() workload.Aggregate {
	if r.Mono != nil {
		return r.Mono.Aggregate()
	}
	return r.Sharded.Aggregate()
}

// EachJob visits every job result in deterministic order (shard by
// shard, jobs in scenario order) with its shard index (-1 monolithic).
func (r *Result) EachJob(fn func(shard int, jr *workload.JobResult)) {
	if r.Mono != nil {
		for i := range r.Mono.Jobs {
			fn(-1, &r.Mono.Jobs[i])
		}
		return
	}
	for s, sh := range r.Sharded.Shards {
		for i := range sh.Jobs {
			fn(s, &sh.Jobs[i])
		}
	}
}

// Run executes the scenario file: validate, build the platform, expand
// the fleet, run the simulation with the timeline compiled onto engine
// hooks, compute solo baselines when an assertion needs slowdowns, and
// evaluate the assertion block. The returned Result carries the
// assertion verdict; err is reserved for files that fail to validate or
// simulate at all.
func Run(f *File, opts RunOptions) (*Result, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	plat, err := f.BuildPlatform()
	if err != nil {
		return nil, err
	}
	scens, err := f.BuildScenarios()
	if err != nil {
		return nil, err
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	wopts := workload.RunOptions{Seed: opts.Seed, Parallelism: opts.Parallelism, Ctx: ctx}
	out := &Result{File: f, Platform: plat}
	if !f.Sharded() {
		res, err := workload.RunScenarioWith(plat, scens[0], wopts, func(sys *lustre.System) {
			if opts.Reference {
				sys.Net().UseReferenceSolver(true)
			}
			f.InstrumentShard(-1)(sys)
		})
		if err != nil {
			return nil, err
		}
		out.Mono = res
	} else {
		res, err := workload.RunShardedWith(plat, scens, wopts, func(i int, sys *lustre.System) {
			if opts.Reference {
				sys.Net().UseReferenceSolver(true)
			}
			f.InstrumentShard(i)(sys)
		})
		if err != nil {
			return nil, err
		}
		out.Sharded = res
	}
	if f.needsBaselines() {
		if err := applyBaselines(ctx, plat, opts, out); err != nil {
			return nil, err
		}
	}
	out.Failures = f.evaluate(out)
	return out, nil
}

// applyBaselines runs one clean solo simulation per distinct job shape
// (no timeline — a baseline measures the job alone on a healthy system)
// and fills in slowdown figures.
func applyBaselines(ctx context.Context, plat *cluster.Platform, opts RunOptions, r *Result) error {
	type holder interface {
		SoloConfigs() []ior.Config
		ApplySolo(map[ior.Config]*ior.Result)
	}
	var holders []holder
	if r.Mono != nil {
		holders = append(holders, r.Mono)
	} else {
		for _, sh := range r.Sharded.Shards {
			holders = append(holders, sh)
		}
	}
	var units []ior.Config
	offsets := make([][]ior.Config, len(holders))
	for i, h := range holders {
		offsets[i] = h.SoloConfigs()
		units = append(units, offsets[i]...)
	}
	baselines := make([]*ior.Result, len(units))
	err := pool.Run(ctx, opts.Parallelism, len(units), func(k int) error {
		res, err := workload.RunScenario(plat, workload.Scenario{
			Jobs: []workload.Job{{Workload: workload.IORJob{Cfg: units[k]}}},
		}, opts.Seed)
		if err != nil {
			return fmt.Errorf("solo baseline for %q: %w", units[k].Label, err)
		}
		baselines[k] = res.Jobs[0].IOR
		return nil
	})
	if err != nil {
		return err
	}
	k := 0
	for i, h := range holders {
		byCfg := make(map[ior.Config]*ior.Result, len(offsets[i]))
		for range offsets[i] {
			byCfg[units[k]] = baselines[k]
			k++
		}
		h.ApplySolo(byCfg)
	}
	return nil
}

// counterValue maps an assertable counter name to its Stats field.
func counterValue(s flow.Stats, name string) int64 {
	switch name {
	case "solves":
		return s.Solves
	case "components_solved":
		return s.ComponentsSolved
	case "component_flows_scanned":
		return s.ComponentFlowsScanned
	case "link_visits":
		return s.LinkVisits
	case "coalesced":
		return s.Coalesced
	case "rounds":
		return s.Rounds
	case "flows_scanned":
		return s.FlowsScanned
	case "flows_settled":
		return s.FlowsSettled
	case "heap_ops":
		return s.HeapOps
	}
	panic(fmt.Sprintf("scenariofile: unknown solver counter %q", name))
}

// evaluate checks the assertion block against the run, returning one
// message per failed assertion.
func (f *File) evaluate(r *Result) []string {
	var fails []string
	add := func(msg string) {
		if msg != "" {
			fails = append(fails, msg)
		}
	}
	agg := r.Aggregate()
	a := &f.Assert
	add(prefixFail("assert.makespan", a.Makespan.check("makespan", r.Makespan())))
	add(prefixFail("assert.total_mbs", a.TotalMBs.check("total bandwidth", agg.TotalMBs)))
	add(prefixFail("assert.mean_mbs", a.MeanMBs.check("mean job bandwidth", agg.MeanMBs)))
	add(prefixFail("assert.min_job_mbs", a.MinJobMBs.check("slowest job bandwidth", agg.MinMBs)))
	add(prefixFail("assert.max_job_mbs", a.MaxJobMBs.check("fastest job bandwidth", agg.MaxMBs)))
	if a.MeanSlowdown.set() {
		add(prefixFail("assert.mean_slowdown", a.MeanSlowdown.check("mean slowdown", agg.MeanSlowdown)))
	}
	if a.MaxSlowdown.set() {
		add(prefixFail("assert.max_slowdown", a.MaxSlowdown.check("max slowdown", agg.MaxSlowdown)))
	}
	solver := r.Solver()
	for _, ca := range a.Solver {
		add(prefixFail("assert.solver."+ca.Name,
			ca.Bound.check(ca.Name, float64(counterValue(solver, ca.Name)))))
	}
	for i := range a.Jobs {
		ja := &a.Jobs[i]
		where := fmt.Sprintf("assert.jobs[%d] (%s)", i, ja.Job)
		matched := 0
		r.EachJob(func(shard int, jr *workload.JobResult) {
			if ja.Shard >= 0 && shard != ja.Shard {
				return
			}
			if !labelMatches(ja.Job, jr.Label) {
				return
			}
			matched++
			add(prefixFail(where, ja.MBs.check(fmt.Sprintf("job %q bandwidth", jr.Label), jr.WriteMBs())))
			if ja.Slowdown.set() {
				if jr.Slowdown == 0 {
					add(fmt.Sprintf("%s: job %q has no slowdown baseline", where, jr.Label))
				} else {
					add(prefixFail(where, ja.Slowdown.check(fmt.Sprintf("job %q slowdown", jr.Label), jr.Slowdown)))
				}
			}
			if ja.Finished.set() {
				add(prefixFail(where, ja.Finished.check(fmt.Sprintf("job %q finish time", jr.Label), jr.FinishedAt)))
			}
		})
		if matched == 0 {
			add(fmt.Sprintf("%s: no job matches", where))
		}
	}
	for i := range a.Shards {
		sa := &a.Shards[i]
		where := fmt.Sprintf("assert.shards[%d]", i)
		sh := r.Sharded.Shards[sa.Shard]
		sagg := sh.Aggregate()
		add(prefixFail(where, sa.TotalMBs.check(fmt.Sprintf("shard %d total bandwidth", sa.Shard), sagg.TotalMBs)))
		add(prefixFail(where, sa.MeanMBs.check(fmt.Sprintf("shard %d mean job bandwidth", sa.Shard), sagg.MeanMBs)))
		add(prefixFail(where, sa.Makespan.check(fmt.Sprintf("shard %d makespan", sa.Shard), sh.Makespan)))
	}
	return fails
}

// prefixFail prepends the assertion's location to a non-empty failure.
func prefixFail(where, msg string) string {
	if msg == "" {
		return ""
	}
	return where + ": " + msg
}

// labelMatches matches a job label against an assertion pattern: exact,
// or prefix when the pattern ends in '*'.
func labelMatches(pattern, label string) bool {
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(label, pattern[:len(pattern)-1])
	}
	return pattern == label
}
