package scenariofile

import (
	"fmt"
	"math"
	"strings"
)

// dec decodes the generic parse tree into the typed schema with strict
// unknown-key rejection and positioned error messages. path strings name
// the location being decoded (e.g. "fleet[2].ior").
type dec struct {
	name string // file name for errors
}

// errf builds a decode error anchored at the file and schema path.
func (d *dec) errf(path, format string, args ...any) error {
	return fmt.Errorf("%s: %s: %s", d.name, path, fmt.Sprintf(format, args...))
}

// mapAt asserts v is a mapping.
func (d *dec) mapAt(v any, path string) (*Map, error) {
	m, ok := v.(*Map)
	if !ok {
		return nil, d.errf(path, "expected a mapping, got %s", typeName(v))
	}
	return m, nil
}

// listAt asserts v is a list.
func (d *dec) listAt(v any, path string) ([]any, error) {
	l, ok := v.([]any)
	if !ok {
		return nil, d.errf(path, "expected a list, got %s", typeName(v))
	}
	return l, nil
}

// strict rejects keys outside allowed, naming the offender and the legal
// set — typos in scenario files fail loudly instead of being ignored.
func (d *dec) strict(m *Map, path string, allowed ...string) error {
	for _, k := range m.Keys() {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			return d.errf(path, "unknown key %q (allowed: %s)", k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// str reads an optional string field.
func (d *dec) str(m *Map, path, key, def string) (string, error) {
	v, ok := m.Get(key)
	if !ok || v == nil {
		return def, nil
	}
	s, ok := v.(string)
	if !ok {
		return "", d.errf(path+"."+key, "expected a string, got %s", typeName(v))
	}
	return s, nil
}

// f64 reads an optional float field (ints coerce).
func (d *dec) f64(m *Map, path, key string, def float64) (float64, error) {
	v, ok := m.Get(key)
	if !ok || v == nil {
		return def, nil
	}
	f, err := asFloat(v)
	if err != nil {
		return 0, d.errf(path+"."+key, "%v", err)
	}
	return f, nil
}

// integer reads an optional integer field (integral floats coerce).
func (d *dec) integer(m *Map, path, key string, def int) (int, error) {
	v, ok := m.Get(key)
	if !ok || v == nil {
		return def, nil
	}
	i, err := asInt(v)
	if err != nil {
		return 0, d.errf(path+"."+key, "%v", err)
	}
	return i, nil
}

// boolean reads an optional bool field.
func (d *dec) boolean(m *Map, path, key string, def bool) (bool, error) {
	v, ok := m.Get(key)
	if !ok || v == nil {
		return def, nil
	}
	b, ok := v.(bool)
	if !ok {
		return false, d.errf(path+"."+key, "expected a bool, got %s", typeName(v))
	}
	return b, nil
}

// intList reads an optional list of integers.
func (d *dec) intList(m *Map, path, key string) ([]int, error) {
	v, ok := m.Get(key)
	if !ok || v == nil {
		return nil, nil
	}
	l, err := d.listAt(v, path+"."+key)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(l))
	for i, e := range l {
		n, err := asInt(e)
		if err != nil {
			return nil, d.errf(fmt.Sprintf("%s.%s[%d]", path, key, i), "%v", err)
		}
		out[i] = n
	}
	return out, nil
}

// asFloat coerces a scalar to float64.
func asFloat(v any) (float64, error) {
	switch t := v.(type) {
	case float64:
		if math.IsNaN(t) {
			return 0, fmt.Errorf("NaN is not a valid number")
		}
		return t, nil
	case int64:
		return float64(t), nil
	default:
		return 0, fmt.Errorf("expected a number, got %s", typeName(v))
	}
}

// asInt coerces a scalar to int, rejecting fractional floats.
func asInt(v any) (int, error) {
	switch t := v.(type) {
	case int64:
		return int(t), nil
	case float64:
		if t != math.Trunc(t) || math.IsNaN(t) || math.IsInf(t, 0) {
			return 0, fmt.Errorf("expected an integer, got %v", t)
		}
		return int(t), nil
	default:
		return 0, fmt.Errorf("expected an integer, got %s", typeName(v))
	}
}

// typeName names a tree value for error messages.
func typeName(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case *Map:
		return "mapping"
	case []any:
		return "list"
	case string:
		return "string"
	case bool:
		return "bool"
	case int64, float64:
		return "number"
	default:
		return fmt.Sprintf("%T", v)
	}
}
