package scenariofile

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// File is one parsed declarative scenario: a platform, a fleet of
// workloads (hand-listed and/or generator-expanded), an optional fault
// timeline, and an assertion block evaluated against the run's result.
type File struct {
	// Name titles the scenario and seeds its RNG stream.
	Name string
	// Description documents the study the file encodes.
	Description string
	// Path is the source file ("" for in-memory documents).
	Path string
	// Platform selects and optionally overrides a platform preset.
	Platform PlatformSpec
	// Horizon bounds the timeline: events after it are rejected at
	// validate time. 0 means unbounded.
	Horizon float64
	// Baselines forces solo-baseline runs on (slowdown figures) or off;
	// nil auto-enables them exactly when an assertion needs slowdowns.
	Baselines *bool
	// Fleet is the monolithic job list. Mutually exclusive with Shards.
	Fleet []FleetEntry
	// Shards describes a sharded multi-file-system run.
	Shards []ShardSpec
	// Timeline is the timed fault/chaos event list.
	Timeline []Event
	// Assert is the file's self-check block.
	Assert AssertBlock
}

// PlatformSpec selects a preset and optional overrides. Zero-valued
// override fields keep the preset's value (JitterCV is a pointer since
// zero — jitter off — is meaningful).
type PlatformSpec struct {
	Preset      string // "cab" (default) or "stampede"
	Seed        uint64
	Nodes       int
	OSTs        int
	OSSs        int
	BackboneMBs float64
	NICMBs      float64
	OSSMBs      float64
	JitterCV    *float64
}

// FleetEntry is one fleet item: exactly one of IOR, PLFS, Checkpoint or
// Gen is set. Count stamps replicas (start times staggered by
// StartStagger); placement and stripe hints ride on the workload.Job.
type FleetEntry struct {
	IOR        *IORSpec
	PLFS       *PLFSSpec
	Checkpoint *CheckpointSpec
	Gen        *GeneratorSpec

	Count        int
	StartAt      float64
	StartStagger float64
	FirstNode    int
	Stripes      int
	StripeSizeMB float64
}

// kindName names the entry's workload kind for errors.
func (e *FleetEntry) kindName() string {
	switch {
	case e.IOR != nil:
		return "ior"
	case e.PLFS != nil:
		return "plfs"
	case e.Checkpoint != nil:
		return "checkpoint"
	case e.Gen != nil:
		return "generator"
	}
	return "?"
}

// IORSpec declares a striped IOR job (the paper's Sections IV/V shape).
type IORSpec struct {
	Label          string
	API            string // "" (= lustre), "ufs", "lustre", or "plfs"
	Tasks          int
	BlockMB        float64
	TransferMB     float64
	Segments       int
	Reps           int
	Collective     bool
	FilePerProc    bool
	ComputeSeconds float64
}

// PLFSSpec declares an n-rank PLFS logging job (Section VI shape).
type PLFSSpec struct {
	Label      string
	Ranks      int
	MBPerRank  float64
	TransferMB float64
	Reps       int
}

// CheckpointSpec declares a periodically checkpointing application.
type CheckpointSpec struct {
	Label          string
	Ranks          int
	StateMBPerRank float64
	ComputeSeconds float64
	Checkpoints    int
}

// GeneratorSpec expands a seeded distribution template into Count jobs —
// fleets of hundreds of writers from a few lines instead of hand-listed
// entries. Numeric fields accept either a constant or a distribution
// (`uniform: [lo, hi]`, `choice: [a, b, c]`, `normal: [mean, std]`);
// integer-valued fields round the draw.
type GeneratorSpec struct {
	Kind  string // "ior", "plfs" or "checkpoint"
	Count int
	Seed  uint64 // 0 derives a stream from the scenario name and entry index
	Label string // label prefix; jobs are "<label>-g<i>"

	Tasks          *Dist // ior tasks / plfs+checkpoint ranks
	BlockMB        *Dist
	TransferMB     *Dist
	Segments       *Dist
	Reps           *Dist
	MBPerRank      *Dist
	StateMB        *Dist
	ComputeSeconds *Dist
	Checkpoints    *Dist
	Collective     *bool
	FilePerProc    *bool

	StartAt      *Dist
	Stripes      *Dist
	StripeSizeMB *Dist
}

// Dist is a numeric distribution spec.
type Dist struct {
	Kind    string // "const", "uniform", "choice", "normal"
	A, B    float64
	Choices []float64
}

// ShardSpec is one file system of a sharded run.
type ShardSpec struct {
	// Name labels the shard ("fs<i>" when empty); replicas get "-r<j>".
	Name string
	// Replicate stamps this many copies (default 1).
	Replicate int
	// Fleet is the shard's job list.
	Fleet []FleetEntry
}

// Event kinds understood by the timeline compiler.
const (
	EvOSTHealth    = "ost_health"
	EvOSTFail      = "ost_fail"
	EvOSTRecover   = "ost_recover"
	EvLinkCapacity = "link_capacity"
	EvRebuild      = "rebuild"
	EvShardOutage  = "shard_outage"
)

// Event is one timed fault/chaos action. At is virtual seconds from
// scenario start; which other fields are meaningful depends on Kind.
type Event struct {
	At   float64
	Kind string
	// Shard targets one shard of a sharded run (-1: the monolithic
	// system; required for every event in sharded files).
	Shard int
	// OST is the target index for ost_* and rebuild events.
	OST int
	// Factor is the health factor for ost_health/ost_recover and the
	// outage level for shard_outage.
	Factor float64
	// Link names a capacity-swap target: "backbone", "nic<i>" or
	// "oss<i>" (OST links carry the health-managed service model and are
	// addressed through ost_health instead).
	Link string
	// MBs is the replacement capacity for link_capacity.
	MBs float64
	// RebuildMB / Streams / RateMBs / Sources shape rebuild traffic.
	RebuildMB float64
	Streams   int
	RateMBs   float64
	Sources   []int
	// Until / RestoreFactor bound a shard_outage window.
	Until         float64
	RestoreFactor float64
}

// Bound is a [Min, Max] assertion on one scalar; either side optional.
type Bound struct {
	Min, Max       float64
	HasMin, HasMax bool
}

// set reports whether the bound constrains anything.
func (b Bound) set() bool { return b.HasMin || b.HasMax }

// check returns "" when v satisfies the bound, else a failure clause.
func (b Bound) check(what string, v float64) string {
	if b.HasMin && v < b.Min {
		return fmt.Sprintf("%s = %.4g below min %.4g", what, v, b.Min)
	}
	if b.HasMax && v > b.Max {
		return fmt.Sprintf("%s = %.4g above max %.4g", what, v, b.Max)
	}
	return ""
}

// AssertBlock is a scenario's self-check: bounds on aggregate bandwidth,
// timing, slowdown, solver counters, and per-job / per-shard figures.
type AssertBlock struct {
	Makespan     Bound
	TotalMBs     Bound
	MeanMBs      Bound
	MinJobMBs    Bound // bound on the slowest job's mean bandwidth
	MaxJobMBs    Bound
	MeanSlowdown Bound
	MaxSlowdown  Bound
	Solver       []CounterAssert
	Jobs         []JobAssert
	Shards       []ShardAssert
}

// CounterAssert bounds one flow.Stats solver counter by name.
type CounterAssert struct {
	Name  string
	Bound Bound
}

// solverCounters lists the assertable flow.Stats counters, in the order
// they are reported.
var solverCounters = []string{
	"solves", "components_solved", "component_flows_scanned",
	"link_visits", "coalesced", "rounds", "flows_scanned",
	"flows_settled", "heap_ops",
}

// JobAssert bounds one or more jobs' figures. Job matches a label
// exactly, or a label prefix when it ends in '*'; at least one job must
// match or the assertion fails.
type JobAssert struct {
	Job      string
	Shard    int // -1: all shards
	MBs      Bound
	Slowdown Bound
	Finished Bound // bound on the job's finish time
}

// Count returns the number of declared assertions: set scalar bounds
// plus solver, per-job and per-shard entries. Zero means the file is
// informational only.
func (a *AssertBlock) Count() int {
	n := 0
	for _, b := range []Bound{
		a.Makespan, a.TotalMBs, a.MeanMBs, a.MinJobMBs, a.MaxJobMBs,
		a.MeanSlowdown, a.MaxSlowdown,
	} {
		if b.set() {
			n++
		}
	}
	return n + len(a.Solver) + len(a.Jobs) + len(a.Shards)
}

// ShardAssert bounds one shard's aggregate figures.
type ShardAssert struct {
	Shard    int
	TotalMBs Bound
	MeanMBs  Bound
	Makespan Bound
}

// Sharded reports whether the file declares a sharded run.
func (f *File) Sharded() bool { return len(f.Shards) > 0 }

// ShardCount returns the expanded shard population.
func (f *File) ShardCount() int {
	n := 0
	for i := range f.Shards {
		r := f.Shards[i].Replicate
		if r < 1 {
			r = 1
		}
		n += r
	}
	return n
}

// needsBaselines reports whether any assertion reads slowdown figures.
func (f *File) needsBaselines() bool {
	if f.Baselines != nil {
		return *f.Baselines
	}
	if f.Assert.MeanSlowdown.set() || f.Assert.MaxSlowdown.set() {
		return true
	}
	for i := range f.Assert.Jobs {
		if f.Assert.Jobs[i].Slowdown.set() {
			return true
		}
	}
	return false
}

// Load reads and parses a scenario file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Parse(data, filepath.ToSlash(path))
	if err != nil {
		return nil, err
	}
	f.Path = path
	return f, nil
}

// Parse decodes a scenario document (YAML subset or JSON) with strict
// unknown-key checking, then statically validates it: malformed event
// times (negative, NaN, past the horizon), out-of-range health factors
// and distribution specs are rejected here, not mid-run. Platform-
// dependent checks (OST indices, node capacity) happen in Validate.
func Parse(data []byte, name string) (*File, error) {
	root, err := parseAny(data, name)
	if err != nil {
		return nil, err
	}
	d := &dec{name: name}
	m, err := d.mapAt(root, "document")
	if err != nil {
		return nil, err
	}
	if err := d.strict(m, "document",
		"name", "description", "platform", "horizon", "baselines",
		"fleet", "shards", "timeline", "assert"); err != nil {
		return nil, err
	}
	f := &File{}
	if f.Name, err = d.str(m, "document", "name", ""); err != nil {
		return nil, err
	}
	if f.Name == "" {
		return nil, d.errf("document", "missing required key \"name\"")
	}
	if f.Description, err = d.str(m, "document", "description", ""); err != nil {
		return nil, err
	}
	if f.Horizon, err = d.f64(m, "document", "horizon", 0); err != nil {
		return nil, err
	}
	if f.Horizon < 0 || math.IsInf(f.Horizon, 0) {
		return nil, d.errf("document.horizon", "must be a finite value >= 0, got %v", f.Horizon)
	}
	if v, ok := m.Get("baselines"); ok && v != nil {
		b, ok := v.(bool)
		if !ok {
			return nil, d.errf("document.baselines", "expected a bool, got %s", typeName(v))
		}
		f.Baselines = &b
	}
	if v, ok := m.Get("platform"); ok && v != nil {
		if f.Platform, err = d.platform(v); err != nil {
			return nil, err
		}
	}
	if f.Platform.Preset == "" {
		f.Platform.Preset = "cab"
	}
	hasFleet, hasShards := false, false
	if v, ok := m.Get("fleet"); ok && v != nil {
		hasFleet = true
		if f.Fleet, err = d.fleet(v, "fleet"); err != nil {
			return nil, err
		}
	}
	if v, ok := m.Get("shards"); ok && v != nil {
		hasShards = true
		if f.Shards, err = d.shards(v); err != nil {
			return nil, err
		}
	}
	if hasFleet == hasShards {
		return nil, d.errf("document", "exactly one of \"fleet\" and \"shards\" must be set")
	}
	if v, ok := m.Get("timeline"); ok && v != nil {
		if f.Timeline, err = d.timeline(v, f); err != nil {
			return nil, err
		}
	}
	if v, ok := m.Get("assert"); ok && v != nil {
		if f.Assert, err = d.assert(v, f); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// platform decodes the platform section.
func (d *dec) platform(v any) (PlatformSpec, error) {
	var out PlatformSpec
	m, err := d.mapAt(v, "platform")
	if err != nil {
		return out, err
	}
	if err := d.strict(m, "platform",
		"preset", "seed", "nodes", "osts", "osss",
		"backbone_mbs", "nic_mbs", "oss_mbs", "jitter_cv"); err != nil {
		return out, err
	}
	if out.Preset, err = d.str(m, "platform", "preset", "cab"); err != nil {
		return out, err
	}
	if out.Preset != "cab" && out.Preset != "stampede" {
		return out, d.errf("platform.preset", "unknown preset %q (cab, stampede)", out.Preset)
	}
	seed, err := d.integer(m, "platform", "seed", 0)
	if err != nil {
		return out, err
	}
	if seed < 0 {
		return out, d.errf("platform.seed", "must be >= 0, got %d", seed)
	}
	out.Seed = uint64(seed)
	if out.Nodes, err = d.integer(m, "platform", "nodes", 0); err != nil {
		return out, err
	}
	if out.OSTs, err = d.integer(m, "platform", "osts", 0); err != nil {
		return out, err
	}
	if out.OSSs, err = d.integer(m, "platform", "osss", 0); err != nil {
		return out, err
	}
	if out.BackboneMBs, err = d.f64(m, "platform", "backbone_mbs", 0); err != nil {
		return out, err
	}
	if out.NICMBs, err = d.f64(m, "platform", "nic_mbs", 0); err != nil {
		return out, err
	}
	if out.OSSMBs, err = d.f64(m, "platform", "oss_mbs", 0); err != nil {
		return out, err
	}
	if v, ok := m.Get("jitter_cv"); ok && v != nil {
		cv, err := asFloat(v)
		if err != nil {
			return out, d.errf("platform.jitter_cv", "%v", err)
		}
		out.JitterCV = &cv
	}
	return out, nil
}

// shards decodes the shards section.
func (d *dec) shards(v any) ([]ShardSpec, error) {
	list, err := d.listAt(v, "shards")
	if err != nil {
		return nil, err
	}
	if len(list) == 0 {
		return nil, d.errf("shards", "must list at least one shard")
	}
	out := make([]ShardSpec, len(list))
	for i, e := range list {
		path := fmt.Sprintf("shards[%d]", i)
		m, err := d.mapAt(e, path)
		if err != nil {
			return nil, err
		}
		if err := d.strict(m, path, "name", "replicate", "fleet"); err != nil {
			return nil, err
		}
		if out[i].Name, err = d.str(m, path, "name", ""); err != nil {
			return nil, err
		}
		if out[i].Replicate, err = d.integer(m, path, "replicate", 1); err != nil {
			return nil, err
		}
		if out[i].Replicate < 1 {
			return nil, d.errf(path+".replicate", "must be >= 1, got %d", out[i].Replicate)
		}
		fv, ok := m.Get("fleet")
		if !ok || fv == nil {
			return nil, d.errf(path, "missing required key \"fleet\"")
		}
		if out[i].Fleet, err = d.fleet(fv, path+".fleet"); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// fleet decodes one fleet section.
func (d *dec) fleet(v any, path string) ([]FleetEntry, error) {
	list, err := d.listAt(v, path)
	if err != nil {
		return nil, err
	}
	if len(list) == 0 {
		return nil, d.errf(path, "must list at least one entry")
	}
	out := make([]FleetEntry, len(list))
	for i, e := range list {
		p := fmt.Sprintf("%s[%d]", path, i)
		if err := d.fleetEntry(e, p, &out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// fleetEntry decodes one fleet item.
func (d *dec) fleetEntry(v any, path string, out *FleetEntry) error {
	m, err := d.mapAt(v, path)
	if err != nil {
		return err
	}
	if err := d.strict(m, path,
		"ior", "plfs", "checkpoint", "generator",
		"count", "start_at", "start_stagger", "first_node",
		"stripes", "stripe_size_mb"); err != nil {
		return err
	}
	kinds := 0
	for _, k := range []string{"ior", "plfs", "checkpoint", "generator"} {
		if _, ok := m.Get(k); ok {
			kinds++
		}
	}
	if kinds != 1 {
		return d.errf(path, "exactly one workload kind (ior, plfs, checkpoint, generator) per entry, got %d", kinds)
	}
	if v, ok := m.Get("ior"); ok {
		if out.IOR, err = d.iorSpec(v, path+".ior"); err != nil {
			return err
		}
	}
	if v, ok := m.Get("plfs"); ok {
		if out.PLFS, err = d.plfsSpec(v, path+".plfs"); err != nil {
			return err
		}
	}
	if v, ok := m.Get("checkpoint"); ok {
		if out.Checkpoint, err = d.checkpointSpec(v, path+".checkpoint"); err != nil {
			return err
		}
	}
	if v, ok := m.Get("generator"); ok {
		if out.Gen, err = d.generatorSpec(v, path+".generator"); err != nil {
			return err
		}
	}
	if out.Count, err = d.integer(m, path, "count", 1); err != nil {
		return err
	}
	if out.Count < 1 {
		return d.errf(path+".count", "must be >= 1, got %d", out.Count)
	}
	if out.Gen != nil && out.Count != 1 {
		return d.errf(path+".count", "generators expand via generator.count; entry count must stay 1")
	}
	if out.StartAt, err = d.f64(m, path, "start_at", 0); err != nil {
		return err
	}
	if out.StartAt < 0 {
		return d.errf(path+".start_at", "must be >= 0, got %v", out.StartAt)
	}
	if out.StartStagger, err = d.f64(m, path, "start_stagger", 0); err != nil {
		return err
	}
	if out.StartStagger < 0 {
		return d.errf(path+".start_stagger", "must be >= 0, got %v", out.StartStagger)
	}
	if out.FirstNode, err = d.integer(m, path, "first_node", 0); err != nil {
		return err
	}
	if out.FirstNode < 0 {
		return d.errf(path+".first_node", "must be >= 0, got %d", out.FirstNode)
	}
	if out.Stripes, err = d.integer(m, path, "stripes", 0); err != nil {
		return err
	}
	if out.StripeSizeMB, err = d.f64(m, path, "stripe_size_mb", 0); err != nil {
		return err
	}
	if out.Gen != nil {
		forbidden := []struct {
			set bool
			key string
		}{
			{out.StartAt != 0, "start_at"},
			{out.StartStagger != 0, "start_stagger"},
			{out.FirstNode != 0, "first_node"},
			{out.Stripes != 0, "stripes"},
			{out.StripeSizeMB != 0, "stripe_size_mb"},
		}
		for _, f := range forbidden {
			if f.set {
				return d.errf(path+"."+f.key, "set %s inside the generator block (as a distribution) instead", f.key)
			}
		}
	}
	return nil
}

// iorSpec decodes an ior workload block.
func (d *dec) iorSpec(v any, path string) (*IORSpec, error) {
	m, err := d.mapAt(v, path)
	if err != nil {
		return nil, err
	}
	if err := d.strict(m, path,
		"label", "api", "tasks", "block_mb", "transfer_mb", "segments", "reps",
		"collective", "file_per_proc", "compute_seconds"); err != nil {
		return nil, err
	}
	out := &IORSpec{}
	if out.Label, err = d.str(m, path, "label", ""); err != nil {
		return nil, err
	}
	if out.API, err = d.str(m, path, "api", ""); err != nil {
		return nil, err
	}
	switch out.API {
	case "", "ufs", "lustre", "plfs":
	default:
		return nil, d.errf(path+".api", "must be ufs, lustre, or plfs, got %q", out.API)
	}
	if out.Tasks, err = d.integer(m, path, "tasks", 0); err != nil {
		return nil, err
	}
	if out.Tasks < 1 {
		return nil, d.errf(path+".tasks", "must be >= 1, got %d", out.Tasks)
	}
	if out.BlockMB, err = d.f64(m, path, "block_mb", 4); err != nil {
		return nil, err
	}
	if out.TransferMB, err = d.f64(m, path, "transfer_mb", 1); err != nil {
		return nil, err
	}
	if out.Segments, err = d.integer(m, path, "segments", 10); err != nil {
		return nil, err
	}
	if out.Reps, err = d.integer(m, path, "reps", 1); err != nil {
		return nil, err
	}
	if out.Collective, err = d.boolean(m, path, "collective", true); err != nil {
		return nil, err
	}
	if out.FilePerProc, err = d.boolean(m, path, "file_per_proc", false); err != nil {
		return nil, err
	}
	if out.ComputeSeconds, err = d.f64(m, path, "compute_seconds", 0); err != nil {
		return nil, err
	}
	return out, nil
}

// plfsSpec decodes a plfs workload block.
func (d *dec) plfsSpec(v any, path string) (*PLFSSpec, error) {
	m, err := d.mapAt(v, path)
	if err != nil {
		return nil, err
	}
	if err := d.strict(m, path, "label", "ranks", "mb_per_rank", "transfer_mb", "reps"); err != nil {
		return nil, err
	}
	out := &PLFSSpec{}
	if out.Label, err = d.str(m, path, "label", ""); err != nil {
		return nil, err
	}
	if out.Ranks, err = d.integer(m, path, "ranks", 0); err != nil {
		return nil, err
	}
	if out.Ranks < 1 {
		return nil, d.errf(path+".ranks", "must be >= 1, got %d", out.Ranks)
	}
	if out.MBPerRank, err = d.f64(m, path, "mb_per_rank", 0); err != nil {
		return nil, err
	}
	if out.TransferMB, err = d.f64(m, path, "transfer_mb", 0); err != nil {
		return nil, err
	}
	if out.Reps, err = d.integer(m, path, "reps", 1); err != nil {
		return nil, err
	}
	return out, nil
}

// checkpointSpec decodes a checkpoint workload block.
func (d *dec) checkpointSpec(v any, path string) (*CheckpointSpec, error) {
	m, err := d.mapAt(v, path)
	if err != nil {
		return nil, err
	}
	if err := d.strict(m, path,
		"label", "ranks", "state_mb_per_rank", "compute_seconds", "checkpoints"); err != nil {
		return nil, err
	}
	out := &CheckpointSpec{}
	if out.Label, err = d.str(m, path, "label", ""); err != nil {
		return nil, err
	}
	if out.Ranks, err = d.integer(m, path, "ranks", 0); err != nil {
		return nil, err
	}
	if out.Ranks < 1 {
		return nil, d.errf(path+".ranks", "must be >= 1, got %d", out.Ranks)
	}
	if out.StateMBPerRank, err = d.f64(m, path, "state_mb_per_rank", 0); err != nil {
		return nil, err
	}
	if out.StateMBPerRank <= 0 {
		return nil, d.errf(path+".state_mb_per_rank", "must be > 0, got %v", out.StateMBPerRank)
	}
	if out.ComputeSeconds, err = d.f64(m, path, "compute_seconds", 0); err != nil {
		return nil, err
	}
	if out.ComputeSeconds < 0 {
		return nil, d.errf(path+".compute_seconds", "must be >= 0, got %v", out.ComputeSeconds)
	}
	if out.Checkpoints, err = d.integer(m, path, "checkpoints", 1); err != nil {
		return nil, err
	}
	if out.Checkpoints < 1 {
		return nil, d.errf(path+".checkpoints", "must be >= 1, got %d", out.Checkpoints)
	}
	return out, nil
}

// generatorSpec decodes a generator block.
func (d *dec) generatorSpec(v any, path string) (*GeneratorSpec, error) {
	m, err := d.mapAt(v, path)
	if err != nil {
		return nil, err
	}
	if err := d.strict(m, path,
		"kind", "count", "seed", "label",
		"tasks", "ranks", "block_mb", "transfer_mb", "segments", "reps",
		"mb_per_rank", "state_mb_per_rank", "compute_seconds", "checkpoints",
		"collective", "file_per_proc",
		"start_at", "stripes", "stripe_size_mb"); err != nil {
		return nil, err
	}
	out := &GeneratorSpec{}
	if out.Kind, err = d.str(m, path, "kind", "ior"); err != nil {
		return nil, err
	}
	if out.Kind != "ior" && out.Kind != "plfs" && out.Kind != "checkpoint" {
		return nil, d.errf(path+".kind", "unknown kind %q (ior, plfs, checkpoint)", out.Kind)
	}
	if out.Count, err = d.integer(m, path, "count", 0); err != nil {
		return nil, err
	}
	if out.Count < 1 {
		return nil, d.errf(path+".count", "must be >= 1, got %d", out.Count)
	}
	seed, err := d.integer(m, path, "seed", 0)
	if err != nil {
		return nil, err
	}
	if seed < 0 {
		return nil, d.errf(path+".seed", "must be >= 0, got %d", seed)
	}
	out.Seed = uint64(seed)
	if out.Label, err = d.str(m, path, "label", out.Kind); err != nil {
		return nil, err
	}
	dists := []struct {
		key  string
		dst  **Dist
		kind string // restricted to one workload kind, "" = any
	}{
		{"tasks", &out.Tasks, "ior"},
		{"ranks", &out.Tasks, "plfs|checkpoint"},
		{"block_mb", &out.BlockMB, "ior"},
		{"transfer_mb", &out.TransferMB, "ior|plfs"},
		{"segments", &out.Segments, "ior"},
		{"reps", &out.Reps, "ior|plfs"},
		{"mb_per_rank", &out.MBPerRank, "plfs"},
		{"state_mb_per_rank", &out.StateMB, "checkpoint"},
		{"compute_seconds", &out.ComputeSeconds, "ior|checkpoint"},
		{"checkpoints", &out.Checkpoints, "checkpoint"},
		{"start_at", &out.StartAt, ""},
		{"stripes", &out.Stripes, ""},
		{"stripe_size_mb", &out.StripeSizeMB, ""},
	}
	for _, spec := range dists {
		v, ok := m.Get(spec.key)
		if !ok || v == nil {
			continue
		}
		if spec.kind != "" && !kindMatches(spec.kind, out.Kind) {
			return nil, d.errf(path+"."+spec.key, "not a %s generator field", out.Kind)
		}
		dv, err := d.dist(v, path+"."+spec.key)
		if err != nil {
			return nil, err
		}
		*spec.dst = dv
	}
	for _, bkey := range []string{"collective", "file_per_proc"} {
		if v, ok := m.Get(bkey); ok && v != nil {
			if out.Kind != "ior" {
				return nil, d.errf(path+"."+bkey, "not a %s generator field", out.Kind)
			}
			b, ok := v.(bool)
			if !ok {
				return nil, d.errf(path+"."+bkey, "expected a bool, got %s", typeName(v))
			}
			if bkey == "collective" {
				out.Collective = &b
			} else {
				out.FilePerProc = &b
			}
		}
	}
	if out.Tasks == nil {
		need := "tasks"
		if out.Kind != "ior" {
			need = "ranks"
		}
		return nil, d.errf(path, "missing required key %q", need)
	}
	if out.Kind == "checkpoint" && out.StateMB == nil {
		return nil, d.errf(path, "missing required key \"state_mb_per_rank\"")
	}
	return out, nil
}

// kindMatches reports whether kind is one of the '|'-separated allowed
// kinds.
func kindMatches(allowed, kind string) bool {
	for _, a := range strings.Split(allowed, "|") {
		if a == kind {
			return true
		}
	}
	return false
}

// dist decodes a constant or a distribution block.
func (d *dec) dist(v any, path string) (*Dist, error) {
	switch t := v.(type) {
	case int64:
		return &Dist{Kind: "const", A: float64(t)}, nil
	case float64:
		if math.IsNaN(t) {
			return nil, d.errf(path, "NaN is not a valid number")
		}
		return &Dist{Kind: "const", A: t}, nil
	case *Map:
		if t.Len() != 1 {
			return nil, d.errf(path, "a distribution takes exactly one of uniform, choice, normal")
		}
		key := t.Keys()[0]
		raw, _ := t.Get(key)
		list, err := d.listAt(raw, path+"."+key)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(list))
		for i, e := range list {
			f, err := asFloat(e)
			if err != nil {
				return nil, d.errf(fmt.Sprintf("%s.%s[%d]", path, key, i), "%v", err)
			}
			vals[i] = f
		}
		switch key {
		case "uniform":
			if len(vals) != 2 || vals[0] > vals[1] {
				return nil, d.errf(path+".uniform", "takes [lo, hi] with lo <= hi")
			}
			return &Dist{Kind: "uniform", A: vals[0], B: vals[1]}, nil
		case "choice":
			if len(vals) == 0 {
				return nil, d.errf(path+".choice", "takes at least one value")
			}
			return &Dist{Kind: "choice", Choices: vals}, nil
		case "normal":
			if len(vals) != 2 || vals[1] < 0 {
				return nil, d.errf(path+".normal", "takes [mean, std] with std >= 0")
			}
			return &Dist{Kind: "normal", A: vals[0], B: vals[1]}, nil
		default:
			return nil, d.errf(path, "unknown distribution %q (uniform, choice, normal)", key)
		}
	default:
		return nil, d.errf(path, "expected a number or a distribution block, got %s", typeName(v))
	}
}

// timeline decodes and statically validates the event list.
func (d *dec) timeline(v any, f *File) ([]Event, error) {
	list, err := d.listAt(v, "timeline")
	if err != nil {
		return nil, err
	}
	out := make([]Event, len(list))
	for i, e := range list {
		path := fmt.Sprintf("timeline[%d]", i)
		if err := d.event(e, path, f, &out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// event decodes one timeline entry: an `at` time plus exactly one action
// key. Every malformed time, factor or index this rejects would
// otherwise surface as a mid-run panic or a silently wrong simulation.
func (d *dec) event(v any, path string, f *File, out *Event) error {
	m, err := d.mapAt(v, path)
	if err != nil {
		return err
	}
	if err := d.strict(m, path,
		"at", EvOSTHealth, EvOSTFail, EvOSTRecover, EvLinkCapacity, EvRebuild, EvShardOutage); err != nil {
		return err
	}
	if _, ok := m.Get("at"); !ok {
		return d.errf(path, "missing required key \"at\"")
	}
	if out.At, err = d.f64(m, path, "at", 0); err != nil {
		return err
	}
	if out.At < 0 || math.IsInf(out.At, 0) {
		return d.errf(path+".at", "event time must be finite and >= 0, got %v", out.At)
	}
	if f.Horizon > 0 && out.At > f.Horizon {
		return d.errf(path+".at", "event time %v is past the scenario horizon %v", out.At, f.Horizon)
	}
	actions := 0
	for _, k := range []string{EvOSTHealth, EvOSTFail, EvOSTRecover, EvLinkCapacity, EvRebuild, EvShardOutage} {
		if _, ok := m.Get(k); ok {
			out.Kind = k
			actions++
		}
	}
	if actions != 1 {
		return d.errf(path, "exactly one action per event, got %d", actions)
	}
	av, _ := m.Get(out.Kind)
	am, err := d.mapAt(av, path+"."+out.Kind)
	if err != nil {
		return err
	}
	apath := path + "." + out.Kind
	out.Shard = -1
	readShard := func() error {
		s, err := d.integer(am, apath, "shard", -1)
		if err != nil {
			return err
		}
		if f.Sharded() {
			if s < 0 {
				return d.errf(apath, "sharded scenarios must name the target shard")
			}
			if s >= f.ShardCount() {
				return d.errf(apath+".shard", "shard %d out of range [0,%d)", s, f.ShardCount())
			}
		} else if s >= 0 {
			return d.errf(apath+".shard", "scenario has no shards")
		}
		out.Shard = s
		return nil
	}
	readOST := func() error {
		ost, err := d.integer(am, apath, "ost", -1)
		if err != nil {
			return err
		}
		if ost < 0 {
			return d.errf(apath, "missing required key \"ost\"")
		}
		out.OST = ost
		return nil
	}
	readFactor := func(key string, def float64, dst *float64) error {
		v, err := d.f64(am, apath, key, def)
		if err != nil {
			return err
		}
		if v < 0 || v > 1 || math.IsNaN(v) {
			return d.errf(apath+"."+key, "health factor must be in [0, 1], got %v", v)
		}
		*dst = v
		return nil
	}
	switch out.Kind {
	case EvOSTHealth:
		if err := d.strict(am, apath, "shard", "ost", "factor"); err != nil {
			return err
		}
		if err := readShard(); err != nil {
			return err
		}
		if err := readOST(); err != nil {
			return err
		}
		if _, ok := am.Get("factor"); !ok {
			return d.errf(apath, "missing required key \"factor\"")
		}
		return readFactor("factor", 0, &out.Factor)
	case EvOSTFail:
		if err := d.strict(am, apath, "shard", "ost"); err != nil {
			return err
		}
		if err := readShard(); err != nil {
			return err
		}
		return readOST()
	case EvOSTRecover:
		if err := d.strict(am, apath, "shard", "ost", "factor"); err != nil {
			return err
		}
		if err := readShard(); err != nil {
			return err
		}
		if err := readOST(); err != nil {
			return err
		}
		return readFactor("factor", 1, &out.Factor)
	case EvLinkCapacity:
		if err := d.strict(am, apath, "shard", "link", "mbs"); err != nil {
			return err
		}
		if err := readShard(); err != nil {
			return err
		}
		if out.Link, err = d.str(am, apath, "link", ""); err != nil {
			return err
		}
		if out.Link == "" {
			return d.errf(apath, "missing required key \"link\"")
		}
		if out.MBs, err = d.f64(am, apath, "mbs", 0); err != nil {
			return err
		}
		if out.MBs <= 0 || math.IsInf(out.MBs, 0) {
			return d.errf(apath+".mbs", "capacity must be finite and > 0, got %v", out.MBs)
		}
		return nil
	case EvRebuild:
		if err := d.strict(am, apath, "shard", "ost", "mb", "streams", "rate_mbs", "from"); err != nil {
			return err
		}
		if err := readShard(); err != nil {
			return err
		}
		if err := readOST(); err != nil {
			return err
		}
		if out.RebuildMB, err = d.f64(am, apath, "mb", 0); err != nil {
			return err
		}
		if out.RebuildMB <= 0 {
			return d.errf(apath+".mb", "rebuild volume must be > 0, got %v", out.RebuildMB)
		}
		if out.Streams, err = d.integer(am, apath, "streams", 4); err != nil {
			return err
		}
		if out.Streams < 1 {
			return d.errf(apath+".streams", "must be >= 1, got %d", out.Streams)
		}
		if out.RateMBs, err = d.f64(am, apath, "rate_mbs", 0); err != nil {
			return err
		}
		if out.RateMBs < 0 {
			return d.errf(apath+".rate_mbs", "must be >= 0 (0 = uncapped), got %v", out.RateMBs)
		}
		if out.Sources, err = d.intList(am, apath, "from"); err != nil {
			return err
		}
		for _, s := range out.Sources {
			if s < 0 {
				return d.errf(apath+".from", "OST index must be >= 0, got %d", s)
			}
			if s == out.OST {
				return d.errf(apath+".from", "source OST %d is the rebuild target", s)
			}
		}
		return nil
	case EvShardOutage:
		if err := d.strict(am, apath, "shard", "until", "factor", "restore_factor"); err != nil {
			return err
		}
		if !f.Sharded() {
			return d.errf(apath, "shard_outage requires a sharded scenario")
		}
		if err := readShard(); err != nil {
			return err
		}
		if _, ok := am.Get("until"); !ok {
			return d.errf(apath, "missing required key \"until\"")
		}
		if out.Until, err = d.f64(am, apath, "until", 0); err != nil {
			return err
		}
		if out.Until <= out.At || math.IsInf(out.Until, 0) {
			return d.errf(apath+".until", "must be finite and after the event time %v, got %v", out.At, out.Until)
		}
		if f.Horizon > 0 && out.Until > f.Horizon {
			return d.errf(apath+".until", "recovery time %v is past the scenario horizon %v", out.Until, f.Horizon)
		}
		if err := readFactor("factor", 0, &out.Factor); err != nil {
			return err
		}
		return readFactor("restore_factor", 1, &out.RestoreFactor)
	}
	return d.errf(path, "unreachable event kind %q", out.Kind)
}

// assert decodes the assertion block.
func (d *dec) assert(v any, f *File) (AssertBlock, error) {
	var out AssertBlock
	m, err := d.mapAt(v, "assert")
	if err != nil {
		return out, err
	}
	if err := d.strict(m, "assert",
		"makespan", "total_mbs", "mean_mbs", "min_job_mbs", "max_job_mbs",
		"mean_slowdown", "max_slowdown", "solver", "jobs", "shards"); err != nil {
		return out, err
	}
	scalars := []struct {
		key string
		dst *Bound
	}{
		{"makespan", &out.Makespan},
		{"total_mbs", &out.TotalMBs},
		{"mean_mbs", &out.MeanMBs},
		{"min_job_mbs", &out.MinJobMBs},
		{"max_job_mbs", &out.MaxJobMBs},
		{"mean_slowdown", &out.MeanSlowdown},
		{"max_slowdown", &out.MaxSlowdown},
	}
	for _, s := range scalars {
		if v, ok := m.Get(s.key); ok && v != nil {
			b, err := d.bound(v, "assert."+s.key)
			if err != nil {
				return out, err
			}
			*s.dst = b
		}
	}
	if v, ok := m.Get("solver"); ok && v != nil {
		sm, err := d.mapAt(v, "assert.solver")
		if err != nil {
			return out, err
		}
		if err := d.strict(sm, "assert.solver", solverCounters...); err != nil {
			return out, err
		}
		for _, name := range solverCounters {
			cv, ok := sm.Get(name)
			if !ok || cv == nil {
				continue
			}
			b, err := d.bound(cv, "assert.solver."+name)
			if err != nil {
				return out, err
			}
			out.Solver = append(out.Solver, CounterAssert{Name: name, Bound: b})
		}
	}
	if v, ok := m.Get("jobs"); ok && v != nil {
		list, err := d.listAt(v, "assert.jobs")
		if err != nil {
			return out, err
		}
		for i, e := range list {
			path := fmt.Sprintf("assert.jobs[%d]", i)
			jm, err := d.mapAt(e, path)
			if err != nil {
				return out, err
			}
			if err := d.strict(jm, path, "job", "shard", "mbs", "slowdown", "finished"); err != nil {
				return out, err
			}
			var ja JobAssert
			if ja.Job, err = d.str(jm, path, "job", ""); err != nil {
				return out, err
			}
			if ja.Job == "" {
				return out, d.errf(path, "missing required key \"job\"")
			}
			if ja.Shard, err = d.integer(jm, path, "shard", -1); err != nil {
				return out, err
			}
			if ja.Shard >= 0 && !f.Sharded() {
				return out, d.errf(path+".shard", "scenario has no shards")
			}
			if ja.Shard >= f.ShardCount() && f.Sharded() {
				return out, d.errf(path+".shard", "shard %d out of range [0,%d)", ja.Shard, f.ShardCount())
			}
			for _, bs := range []struct {
				key string
				dst *Bound
			}{{"mbs", &ja.MBs}, {"slowdown", &ja.Slowdown}, {"finished", &ja.Finished}} {
				if bv, ok := jm.Get(bs.key); ok && bv != nil {
					b, err := d.bound(bv, path+"."+bs.key)
					if err != nil {
						return out, err
					}
					*bs.dst = b
				}
			}
			if !ja.MBs.set() && !ja.Slowdown.set() && !ja.Finished.set() {
				return out, d.errf(path, "asserts nothing (set mbs, slowdown or finished)")
			}
			out.Jobs = append(out.Jobs, ja)
		}
	}
	if v, ok := m.Get("shards"); ok && v != nil {
		if !f.Sharded() {
			return out, d.errf("assert.shards", "scenario has no shards")
		}
		list, err := d.listAt(v, "assert.shards")
		if err != nil {
			return out, err
		}
		for i, e := range list {
			path := fmt.Sprintf("assert.shards[%d]", i)
			sm, err := d.mapAt(e, path)
			if err != nil {
				return out, err
			}
			if err := d.strict(sm, path, "shard", "total_mbs", "mean_mbs", "makespan"); err != nil {
				return out, err
			}
			var sa ShardAssert
			if sa.Shard, err = d.integer(sm, path, "shard", -1); err != nil {
				return out, err
			}
			if sa.Shard < 0 || sa.Shard >= f.ShardCount() {
				return out, d.errf(path+".shard", "shard index out of range [0,%d)", f.ShardCount())
			}
			for _, bs := range []struct {
				key string
				dst *Bound
			}{{"total_mbs", &sa.TotalMBs}, {"mean_mbs", &sa.MeanMBs}, {"makespan", &sa.Makespan}} {
				if bv, ok := sm.Get(bs.key); ok && bv != nil {
					b, err := d.bound(bv, path+"."+bs.key)
					if err != nil {
						return out, err
					}
					*bs.dst = b
				}
			}
			out.Shards = append(out.Shards, sa)
		}
	}
	return out, nil
}

// bound decodes a {min, max} block.
func (d *dec) bound(v any, path string) (Bound, error) {
	var out Bound
	m, err := d.mapAt(v, path)
	if err != nil {
		return out, err
	}
	if err := d.strict(m, path, "min", "max"); err != nil {
		return out, err
	}
	if v, ok := m.Get("min"); ok && v != nil {
		f, err := asFloat(v)
		if err != nil {
			return out, d.errf(path+".min", "%v", err)
		}
		out.Min, out.HasMin = f, true
	}
	if v, ok := m.Get("max"); ok && v != nil {
		f, err := asFloat(v)
		if err != nil {
			return out, d.errf(path+".max", "%v", err)
		}
		out.Max, out.HasMax = f, true
	}
	if !out.set() {
		return out, d.errf(path, "bound needs min, max or both")
	}
	if out.HasMin && out.HasMax && out.Min > out.Max {
		return out, d.errf(path, "min %v exceeds max %v", out.Min, out.Max)
	}
	return out, nil
}
