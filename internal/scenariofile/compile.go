package scenariofile

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"pfsim/internal/cluster"
	"pfsim/internal/flow"
	"pfsim/internal/ior"
	"pfsim/internal/lustre"
	"pfsim/internal/mpiio"
	"pfsim/internal/stats"
	"pfsim/internal/workload"
)

// BuildPlatform resolves the file's platform section to a validated
// cluster description: the named preset with the file's overrides
// applied on top.
func (f *File) BuildPlatform() (*cluster.Platform, error) {
	var plat *cluster.Platform
	switch f.Platform.Preset {
	case "", "cab":
		plat = cluster.Cab()
	case "stampede":
		plat = cluster.Stampede()
	default:
		return nil, fmt.Errorf("%s: unknown platform preset %q", f.errName(), f.Platform.Preset)
	}
	if f.Platform.Seed != 0 {
		plat.Seed = f.Platform.Seed
	}
	if f.Platform.Nodes > 0 {
		plat.Nodes = f.Platform.Nodes
	}
	if f.Platform.OSTs > 0 {
		plat.OSTs = f.Platform.OSTs
		if plat.MaxStripeCount > plat.OSTs {
			// Shrunken test topologies keep the preset's wide default stripe
			// ceiling otherwise, which no file could satisfy.
			plat.MaxStripeCount = plat.OSTs
		}
	}
	if f.Platform.OSSs > 0 {
		plat.OSSs = f.Platform.OSSs
	}
	if f.Platform.BackboneMBs > 0 {
		plat.BackboneMBs = f.Platform.BackboneMBs
	}
	if f.Platform.NICMBs > 0 {
		plat.NICMBs = f.Platform.NICMBs
	}
	if f.Platform.OSSMBs > 0 {
		plat.OSSMBs = f.Platform.OSSMBs
	}
	if f.Platform.JitterCV != nil {
		plat.JitterCV = *f.Platform.JitterCV
	}
	if err := plat.Validate(); err != nil {
		return nil, fmt.Errorf("%s: platform: %w", f.errName(), err)
	}
	return plat, nil
}

// errName names the file in errors.
func (f *File) errName() string {
	if f.Path != "" {
		return f.Path
	}
	return f.Name
}

// BuildScenarios expands the fleet (or every shard's fleet) into
// concrete workload scenarios: generator entries draw their jobs from
// their seeded distribution streams, plain entries stamp Count staggered
// copies. Monolithic files return exactly one scenario; sharded files
// return one per expanded shard. The expansion is deterministic for a
// fixed file.
func (f *File) BuildScenarios() ([]workload.Scenario, error) {
	if !f.Sharded() {
		jobs, err := f.expandFleet(f.Fleet, "fleet")
		if err != nil {
			return nil, err
		}
		return []workload.Scenario{{Name: f.Name, Jobs: jobs}}, nil
	}
	out := make([]workload.Scenario, 0, f.ShardCount())
	for si := range f.Shards {
		spec := &f.Shards[si]
		reps := spec.Replicate
		if reps < 1 {
			reps = 1
		}
		for j := 0; j < reps; j++ {
			name := spec.Name
			if name == "" {
				name = fmt.Sprintf("fs%d", len(out))
			}
			if reps > 1 {
				name = fmt.Sprintf("%s-r%d", name, j)
			}
			scope := fmt.Sprintf("shards[%d].fleet", si)
			if reps > 1 {
				// Replicas draw from distinct generator streams so a
				// replicated shard spec yields varied, not cloned, fleets.
				scope = fmt.Sprintf("%s#r%d", scope, j)
			}
			jobs, err := f.expandFleet(spec.Fleet, scope)
			if err != nil {
				return nil, err
			}
			out = append(out, workload.Scenario{Name: f.Name + "/" + name, Jobs: jobs})
		}
	}
	return out, nil
}

// expandFleet turns one fleet section into placed workload jobs.
func (f *File) expandFleet(fleet []FleetEntry, scope string) ([]workload.Job, error) {
	var jobs []workload.Job
	for i := range fleet {
		e := &fleet[i]
		if e.Gen != nil {
			gjobs, err := f.expandGenerator(e.Gen, fmt.Sprintf("%s[%d]", scope, i))
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, gjobs...)
			continue
		}
		w, err := f.entryWorkload(e)
		if err != nil {
			return nil, err
		}
		for c := 0; c < e.Count; c++ {
			j := workload.Job{
				Workload:     w,
				StartAt:      e.StartAt + float64(c)*e.StartStagger,
				Stripes:      e.Stripes,
				StripeSizeMB: e.StripeSizeMB,
			}
			if c == 0 {
				// Later copies auto-place after the pinned first copy; pinning
				// them all to one node range would always overlap.
				j.FirstNode = e.FirstNode
			}
			jobs = append(jobs, j)
		}
	}
	return jobs, nil
}

// entryWorkload materialises a hand-listed (non-generator) entry.
func (f *File) entryWorkload(e *FleetEntry) (workload.Workload, error) {
	switch {
	case e.IOR != nil:
		s := e.IOR
		label := s.Label
		if label == "" {
			label = "ior"
		}
		api := mpiio.DriverLustre
		switch s.API {
		case "ufs":
			api = mpiio.DriverUFS
		case "plfs":
			api = mpiio.DriverPLFS
		}
		return workload.IORJob{Cfg: ior.Config{
			Label:          label,
			API:            api,
			BlockSizeMB:    s.BlockMB,
			TransferSizeMB: s.TransferMB,
			SegmentCount:   s.Segments,
			NumTasks:       s.Tasks,
			WriteFile:      true,
			FilePerProc:    s.FilePerProc,
			Collective:     s.Collective,
			Hints:          mpiio.NewHints(),
			Reps:           s.Reps,
			ComputeSeconds: s.ComputeSeconds,
		}}, nil
	case e.PLFS != nil:
		s := e.PLFS
		return workload.PLFSLogger{
			Name:       s.Label,
			Ranks:      s.Ranks,
			MBPerRank:  s.MBPerRank,
			TransferMB: s.TransferMB,
			Reps:       s.Reps,
		}, nil
	case e.Checkpoint != nil:
		s := e.Checkpoint
		return workload.Checkpointer{
			Name: s.Label,
			App: workload.Checkpoint{
				Ranks:          s.Ranks,
				StateMBPerRank: s.StateMBPerRank,
				ComputeSeconds: s.ComputeSeconds,
			},
			Checkpoints: s.Checkpoints,
		}, nil
	}
	return nil, fmt.Errorf("%s: fleet entry has no workload", f.errName())
}

// expandGenerator draws the generator's jobs from its seeded stream. The
// stream seed is the generator's own, or one derived from the scenario
// name and the entry's position — so two generators in one file, or one
// generator in two files, never share draws.
func (f *File) expandGenerator(g *GeneratorSpec, scope string) ([]workload.Job, error) {
	seed := g.Seed
	if seed == 0 {
		seed = ior.HashLabel(f.Name) ^ ior.HashLabel(scope)
	}
	rng := stats.NewRNG(seed)
	jobs := make([]workload.Job, 0, g.Count)
	for j := 0; j < g.Count; j++ {
		label := fmt.Sprintf("%s-g%d", g.Label, j)
		var w workload.Workload
		// Draw order is fixed per kind; adding a field draws after the
		// existing ones so older files keep their fleets.
		switch g.Kind {
		case "ior":
			block := sampleF(g.BlockMB, rng, 4, 0.001)
			transfer := sampleF(g.TransferMB, rng, 1, 0.001)
			if transfer > block {
				transfer = block
			}
			collective := true
			if g.Collective != nil {
				collective = *g.Collective
			}
			fpp := false
			if g.FilePerProc != nil {
				fpp = *g.FilePerProc
			}
			w = workload.IORJob{Cfg: ior.Config{
				Label:          label,
				API:            mpiio.DriverLustre,
				BlockSizeMB:    block,
				TransferSizeMB: transfer,
				SegmentCount:   sampleInt(g.Segments, rng, 10, 1),
				NumTasks:       sampleInt(g.Tasks, rng, 1, 1),
				WriteFile:      true,
				FilePerProc:    fpp,
				Collective:     collective,
				Hints:          mpiio.NewHints(),
				Reps:           sampleInt(g.Reps, rng, 1, 1),
				ComputeSeconds: sampleF(g.ComputeSeconds, rng, 0, 0),
			}}
		case "plfs":
			w = workload.PLFSLogger{
				Name:       label,
				Ranks:      sampleInt(g.Tasks, rng, 1, 1),
				MBPerRank:  sampleF(g.MBPerRank, rng, 400, 0.001),
				TransferMB: sampleF(g.TransferMB, rng, 0, 0),
				Reps:       sampleInt(g.Reps, rng, 1, 1),
			}
		case "checkpoint":
			w = workload.Checkpointer{
				Name: label,
				App: workload.Checkpoint{
					Ranks:          sampleInt(g.Tasks, rng, 1, 1),
					StateMBPerRank: sampleF(g.StateMB, rng, 1, 0.001),
					ComputeSeconds: sampleF(g.ComputeSeconds, rng, 0, 0),
				},
				Checkpoints: sampleInt(g.Checkpoints, rng, 1, 1),
			}
		default:
			return nil, fmt.Errorf("%s: %s: unknown generator kind %q", f.errName(), scope, g.Kind)
		}
		jobs = append(jobs, workload.Job{
			Workload:     w,
			StartAt:      sampleF(g.StartAt, rng, 0, 0),
			Stripes:      sampleInt(g.Stripes, rng, 0, 0),
			StripeSizeMB: sampleF(g.StripeSizeMB, rng, 0, 0),
		})
	}
	return jobs, nil
}

// sample draws one value from the distribution.
func (d *Dist) sample(rng *stats.RNG) float64 {
	switch d.Kind {
	case "const":
		return d.A
	case "uniform":
		return d.A + rng.Float64()*(d.B-d.A)
	case "choice":
		return d.Choices[rng.IntN(len(d.Choices))]
	case "normal":
		return rng.Normal(d.A, d.B)
	}
	panic(fmt.Sprintf("scenariofile: unknown distribution %q", d.Kind))
}

// sampleF draws a float with a default for nil specs and a floor for
// out-of-range draws (a wide normal can land below physical minimums).
func sampleF(d *Dist, rng *stats.RNG, def, floor float64) float64 {
	if d == nil {
		return def
	}
	v := d.sample(rng)
	if v < floor {
		v = floor
	}
	return v
}

// sampleInt draws an integer (rounding) with a default and a floor.
func sampleInt(d *Dist, rng *stats.RNG, def, floor int) int {
	if d == nil {
		return def
	}
	v := int(math.Round(d.sample(rng)))
	if v < floor {
		v = floor
	}
	return v
}

// Validate fully checks the file against its resolved platform: the
// fleet must expand, place and validate (node capacity, stripe hints),
// and every timeline reference (OST index, link name, shard) must exist
// on the platform. This is `pfsim-scenario validate`: a passing file
// cannot fail to launch, though its assertions may still fail.
func (f *File) Validate() error {
	plat, err := f.BuildPlatform()
	if err != nil {
		return err
	}
	scens, err := f.BuildScenarios()
	if err != nil {
		return err
	}
	for i := range scens {
		if err := scens[i].Validate(plat); err != nil {
			if f.Sharded() {
				return fmt.Errorf("%s: shard %d: %w", f.errName(), i, err)
			}
			return fmt.Errorf("%s: %w", f.errName(), err)
		}
	}
	for i := range f.Timeline {
		ev := &f.Timeline[i]
		where := fmt.Sprintf("%s: timeline[%d]", f.errName(), i)
		switch ev.Kind {
		case EvOSTHealth, EvOSTFail, EvOSTRecover:
			if ev.OST >= plat.OSTs {
				return fmt.Errorf("%s: OST %d out of range [0,%d)", where, ev.OST, plat.OSTs)
			}
		case EvLinkCapacity:
			if err := checkLinkName(plat, ev.Link); err != nil {
				return fmt.Errorf("%s: %w", where, err)
			}
		case EvRebuild:
			if ev.OST >= plat.OSTs {
				return fmt.Errorf("%s: OST %d out of range [0,%d)", where, ev.OST, plat.OSTs)
			}
			for _, s := range ev.Sources {
				if s >= plat.OSTs {
					return fmt.Errorf("%s: source OST %d out of range [0,%d)", where, s, plat.OSTs)
				}
			}
		}
	}
	return nil
}

// checkLinkName validates a scenario link name against the platform's
// topology without building a system; it mirrors lustre.System.LinkByName.
func checkLinkName(plat *cluster.Platform, name string) error {
	if name == "backbone" {
		return nil
	}
	for _, g := range []struct {
		prefix string
		limit  int
	}{{"nic", plat.Nodes}, {"oss", plat.OSSs}} {
		if !strings.HasPrefix(name, g.prefix) {
			continue
		}
		i, err := strconv.Atoi(name[len(g.prefix):])
		if err != nil {
			return fmt.Errorf("bad link name %q", name)
		}
		if i < 0 || i >= g.limit {
			return fmt.Errorf("link %q out of range [0,%d)", name, g.limit)
		}
		return nil
	}
	if strings.HasPrefix(name, "ost") {
		return fmt.Errorf("OST links carry the service model; use ost_health, not link_capacity, for %q", name)
	}
	return fmt.Errorf("unknown link %q (backbone, nic<i>, oss<i>)", name)
}

// InstrumentShard returns the instrument hook that schedules the file's
// timeline events targeting shard onto a freshly built system. Pass
// shard -1 for a monolithic run. Events schedule in file order at
// engine-build time, so two equal event times fire in file order — the
// same determinism contract as hand-written eng.ScheduleAt calls.
func (f *File) InstrumentShard(shard int) func(*lustre.System) {
	return func(sys *lustre.System) {
		eng := sys.Engine()
		for i := range f.Timeline {
			ev := &f.Timeline[i]
			if ev.Shard != shard {
				continue
			}
			switch ev.Kind {
			case EvOSTHealth:
				ost, factor := ev.OST, ev.Factor
				eng.ScheduleAt(ev.At, func() { sys.OST(ost).SetHealth(factor) })
			case EvOSTFail:
				ost := ev.OST
				eng.ScheduleAt(ev.At, func() { sys.OST(ost).SetHealth(0) })
			case EvOSTRecover:
				ost, factor := ev.OST, ev.Factor
				eng.ScheduleAt(ev.At, func() { sys.OST(ost).SetHealth(factor) })
			case EvLinkCapacity:
				name, mbs := ev.Link, ev.MBs
				eng.ScheduleAt(ev.At, func() {
					link, err := sys.LinkByName(name)
					if err != nil {
						// Validate checked the name against the platform; only
						// a Validate-skipping caller can reach this.
						panic(err)
					}
					link.SetModel(flow.Const(mbs))
				})
			case EvRebuild:
				ev := ev
				eng.ScheduleAt(ev.At, func() {
					sys.StartRebuild(ev.OST, lustre.RebuildOpts{
						SizeMB:  ev.RebuildMB,
						Streams: ev.Streams,
						RateMBs: ev.RateMBs,
						Sources: ev.Sources,
					})
				})
			case EvShardOutage:
				factor, restore := ev.Factor, ev.RestoreFactor
				eng.ScheduleAt(ev.At, func() { sys.SetAllOSTHealth(factor) })
				eng.ScheduleAt(ev.Until, func() { sys.SetAllOSTHealth(restore) })
			}
		}
	}
}
