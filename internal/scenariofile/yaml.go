// Package scenariofile implements pfsim's declarative scenario format:
// YAML (a strict, self-contained subset — the module has no dependencies)
// or JSON files describing a platform, a fleet of workloads (hand-listed
// or expanded from seeded generators), a timed fault/chaos event
// timeline compiled onto the simulation engine's hooks, and an assertion
// block that turns every file into a self-checking regression test. See
// the repository README ("Declarative scenarios") for the schema
// walkthrough and scenarios/ for the corpus CI regression-runs.
package scenariofile

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Map is a parsed mapping with stable key order (file order for YAML,
// sorted for JSON), so error messages and strict-key checks are
// deterministic.
type Map struct {
	keys []string
	vals map[string]any
}

// newMap returns an empty mapping.
func newMap() *Map {
	return &Map{vals: map[string]any{}}
}

// set adds a key; duplicate keys are a parse error handled by callers.
func (m *Map) set(key string, val any) bool {
	if _, dup := m.vals[key]; dup {
		return false
	}
	m.keys = append(m.keys, key)
	m.vals[key] = val
	return true
}

// Keys returns the mapping's keys in stable order.
func (m *Map) Keys() []string { return m.keys }

// Get returns the value for key and whether it is present.
func (m *Map) Get(key string) (any, bool) {
	v, ok := m.vals[key]
	return v, ok
}

// Len returns the number of keys.
func (m *Map) Len() int { return len(m.keys) }

// parseAny parses a scenario document: JSON when the first non-space
// byte is '{', the YAML subset otherwise. The result tree contains
// *Map, []any, string, float64, int64, bool and nil values.
func parseAny(data []byte, name string) (any, error) {
	trimmed := strings.TrimLeftFunc(string(data), func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	if strings.HasPrefix(trimmed, "{") {
		var v any
		dec := json.NewDecoder(strings.NewReader(trimmed))
		dec.UseNumber()
		if err := dec.Decode(&v); err != nil {
			return nil, fmt.Errorf("%s: invalid JSON: %w", name, err)
		}
		return fromJSON(v), nil
	}
	return parseYAML(data, name)
}

// fromJSON converts encoding/json's generic tree into the parser's:
// maps become *Map with sorted keys, json.Number becomes int64 when it
// fits and float64 otherwise.
func fromJSON(v any) any {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		//pfsim:orderok — keys are sorted below before any use
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		m := newMap()
		for _, k := range keys {
			m.set(k, fromJSON(t[k]))
		}
		return m
	case []any:
		out := make([]any, len(t))
		for i := range t {
			out[i] = fromJSON(t[i])
		}
		return out
	case json.Number:
		if i, err := strconv.ParseInt(string(t), 10, 64); err == nil {
			return i
		}
		f, _ := t.Float64()
		return f
	default:
		return v
	}
}

// yamlLine is one significant (non-blank, non-comment) line of a YAML
// document.
type yamlLine struct {
	num    int    // 1-based line number
	indent int    // leading spaces
	text   string // content with indent stripped, comments removed
}

// yamlParser walks the significant lines of one document.
type yamlParser struct {
	name  string
	lines []yamlLine
	pos   int
}

// parseYAML parses the supported YAML subset: nested mappings and block
// lists by indentation, `- ` list items (including inline `- key: val`
// compact mappings), flow sequences `[a, b]` of scalars, quoted and
// plain scalars, and `#` comments. Anchors, aliases, block scalars,
// multi-document streams and tabs are rejected with a line-numbered
// error rather than misparsed.
func parseYAML(data []byte, name string) (any, error) {
	p := &yamlParser{name: name}
	for i, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, " \r")
		if line == "" {
			continue
		}
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		text := line[indent:]
		if strings.HasPrefix(text, "\t") || strings.Contains(line[:indent], "\t") {
			return nil, fmt.Errorf("%s:%d: tabs are not allowed for indentation", name, i+1)
		}
		text = stripComment(text)
		if text == "" {
			continue
		}
		if text == "---" && len(p.lines) > 0 {
			return nil, fmt.Errorf("%s:%d: multi-document YAML streams are not supported", name, i+1)
		}
		if text == "---" {
			continue // leading document marker
		}
		p.lines = append(p.lines, yamlLine{num: i + 1, indent: indent, text: text})
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("%s: empty document", name)
	}
	v, err := p.parseBlock(p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("%s:%d: unexpected content %q (bad indentation?)", name, l.num, l.text)
	}
	return v, nil
}

// stripComment removes a trailing ` #` comment, respecting quotes. A
// line starting with '#' is entirely a comment.
func stripComment(text string) string {
	if strings.HasPrefix(text, "#") {
		return ""
	}
	inSingle, inDouble := false, false
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && i > 0 && text[i-1] == ' ' {
				return strings.TrimRight(text[:i], " ")
			}
		}
	}
	return text
}

// errf builds a positioned parse error.
func (p *yamlParser) errf(l yamlLine, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.name, l.num, fmt.Sprintf(format, args...))
}

// parseBlock parses a mapping or list whose lines sit at exactly indent.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, fmt.Errorf("%s: unexpected end of document", p.name)
	}
	if strings.HasPrefix(p.lines[p.pos].text, "- ") || p.lines[p.pos].text == "-" {
		return p.parseList(indent)
	}
	return p.parseMap(indent)
}

// parseMap parses `key: value` lines at indent into a *Map.
func (p *yamlParser) parseMap(indent int) (any, error) {
	m := newMap()
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, p.errf(l, "unexpected indentation")
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, p.errf(l, "list item inside a mapping")
		}
		key, rest, err := p.splitKey(l)
		if err != nil {
			return nil, err
		}
		p.pos++
		var val any
		if rest == "" {
			// Value is the following indented block (or null when the
			// document ends / dedents immediately).
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				val, err = p.parseBlock(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
			}
		} else {
			val, err = p.parseScalar(rest, l)
			if err != nil {
				return nil, err
			}
		}
		if !m.set(key, val) {
			return nil, p.errf(l, "duplicate key %q", key)
		}
	}
	return m, nil
}

// parseList parses `- item` lines at indent into a []any.
func (p *yamlParser) parseList(indent int) (any, error) {
	var out []any
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || (!strings.HasPrefix(l.text, "- ") && l.text != "-") {
			if l.indent > indent {
				return nil, p.errf(l, "unexpected indentation")
			}
			break
		}
		if l.text == "-" {
			// Item is the following indented block.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				out = append(out, nil)
				continue
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		rest := l.text[2:]
		// `- key: value` compact mapping: the dash acts as indentation for
		// a mapping whose first line is rest and whose later keys sit at
		// indent+2.
		if _, _, ok := tryKey(rest); ok {
			p.lines[p.pos] = yamlLine{num: l.num, indent: indent + 2, text: rest}
			v, err := p.parseMap(indent + 2)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		p.pos++
		v, err := p.parseScalar(rest, l)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// splitKey splits a `key: rest` line; rest is "" for block values.
func (p *yamlParser) splitKey(l yamlLine) (key, rest string, err error) {
	key, rest, ok := tryKey(l.text)
	if !ok {
		return "", "", p.errf(l, "expected `key: value`, got %q", l.text)
	}
	return key, rest, nil
}

// tryKey reports whether text starts with an unquoted `key:` prefix.
// Keys are plain scalars (letters, digits, _, -, .): quoted keys and
// keys containing ':' are not needed by the schema and stay unsupported.
func tryKey(text string) (key, rest string, ok bool) {
	i := strings.Index(text, ":")
	if i <= 0 {
		return "", "", false
	}
	key = text[:i]
	for _, r := range key {
		if !(r == '_' || r == '-' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			return "", "", false
		}
	}
	rest = text[i+1:]
	if rest != "" && !strings.HasPrefix(rest, " ") {
		return "", "", false // e.g. a timestamp scalar "12:30"
	}
	return key, strings.TrimLeft(rest, " "), true
}

// parseScalar interprets one inline value.
func (p *yamlParser) parseScalar(s string, l yamlLine) (any, error) {
	switch {
	case s == "":
		return nil, nil
	case strings.HasPrefix(s, "["):
		return p.parseFlowSeq(s, l)
	case strings.HasPrefix(s, "\""):
		out, err := strconv.Unquote(s)
		if err != nil {
			return nil, p.errf(l, "bad quoted string %s", s)
		}
		return out, nil
	case strings.HasPrefix(s, "'"):
		if !strings.HasSuffix(s, "'") || len(s) < 2 {
			return nil, p.errf(l, "bad quoted string %s", s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	case strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") ||
		strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">") ||
		strings.HasPrefix(s, "{"):
		return nil, p.errf(l, "unsupported YAML feature in %q (anchors, aliases, block scalars and flow mappings are not part of the subset)", s)
	}
	return plainScalar(s), nil
}

// plainScalar types an unquoted scalar: null, bool, int, float or string.
func plainScalar(s string) any {
	switch s {
	case "null", "~", "Null", "NULL":
		return nil
	case "true", "True", "TRUE":
		return true
	case "false", "False", "FALSE":
		return false
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

// parseFlowSeq parses a single-line `[a, b, c]` sequence of scalars.
func (p *yamlParser) parseFlowSeq(s string, l yamlLine) (any, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, p.errf(l, "unterminated flow sequence %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return []any{}, nil
	}
	parts := strings.Split(inner, ",")
	out := make([]any, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, p.errf(l, "empty element in flow sequence %q", s)
		}
		if strings.ContainsAny(part, "[]{}") {
			return nil, p.errf(l, "nested flow collections are not supported in %q", s)
		}
		v, err := p.parseScalar(part, l)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
