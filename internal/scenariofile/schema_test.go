package scenariofile

import (
	"strings"
	"testing"
)

// goodDoc is a representative full-featured scenario document.
const goodDoc = `
name: brownout-study
description: OST brownout under a small fleet
platform:
  preset: cab
  osts: 32
  osss: 4
  nodes: 128
horizon: 4000
fleet:
  - ior:
      label: writer
      tasks: 32
      block_mb: 4
      transfer_mb: 1
      segments: 20
    count: 2
    start_stagger: 5
    stripes: 8
  - plfs:
      label: logger
      ranks: 16
      mb_per_rank: 64
  - generator:
      kind: ior
      count: 4
      label: bg
      tasks:
        choice: [8, 16]
      segments: 5
      start_at:
        uniform: [0, 60]
timeline:
  - at: 30
    ost_health:
      ost: 3
      factor: 0.25
  - at: 60
    ost_fail:
      ost: 3
  - at: 61
    rebuild:
      ost: 4
      mb: 2048
      streams: 2
      from: [1, 2]
  - at: 200
    ost_recover:
      ost: 3
  - at: 100
    link_capacity:
      link: backbone
      mbs: 9000
assert:
  makespan:
    max: 4000
  total_mbs:
    min: 100
  solver:
    solves:
      max: 100000
  jobs:
    - job: writer*
      mbs:
        min: 1
`

func TestParseGood(t *testing.T) {
	f, err := Parse([]byte(goodDoc), "good.yaml")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Name != "brownout-study" {
		t.Errorf("Name = %q", f.Name)
	}
	if f.Platform.Preset != "cab" || f.Platform.OSTs != 32 {
		t.Errorf("Platform = %+v", f.Platform)
	}
	if len(f.Fleet) != 3 {
		t.Fatalf("Fleet len = %d", len(f.Fleet))
	}
	if f.Fleet[0].IOR == nil || f.Fleet[0].IOR.Tasks != 32 || f.Fleet[0].Count != 2 {
		t.Errorf("Fleet[0] = %+v", f.Fleet[0])
	}
	if f.Fleet[2].Gen == nil || f.Fleet[2].Gen.Count != 4 {
		t.Fatalf("Fleet[2] = %+v", f.Fleet[2])
	}
	if g := f.Fleet[2].Gen; g.Tasks.Kind != "choice" || len(g.Tasks.Choices) != 2 {
		t.Errorf("gen tasks dist = %+v", g.Tasks)
	}
	if g := f.Fleet[2].Gen; g.Segments.Kind != "const" || g.Segments.A != 5 {
		t.Errorf("gen segments dist = %+v", g.Segments)
	}
	if len(f.Timeline) != 5 {
		t.Fatalf("Timeline len = %d", len(f.Timeline))
	}
	if ev := f.Timeline[0]; ev.Kind != EvOSTHealth || ev.OST != 3 || ev.Factor != 0.25 {
		t.Errorf("Timeline[0] = %+v", ev)
	}
	if ev := f.Timeline[2]; ev.Kind != EvRebuild || ev.RebuildMB != 2048 || len(ev.Sources) != 2 {
		t.Errorf("Timeline[2] = %+v", ev)
	}
	if ev := f.Timeline[3]; ev.Kind != EvOSTRecover || ev.Factor != 1 {
		t.Errorf("Timeline[3] = %+v (want default recover factor 1)", ev)
	}
	if !f.Assert.Makespan.HasMax || f.Assert.Makespan.Max != 4000 {
		t.Errorf("Assert.Makespan = %+v", f.Assert.Makespan)
	}
	if len(f.Assert.Solver) != 1 || f.Assert.Solver[0].Name != "solves" {
		t.Errorf("Assert.Solver = %+v", f.Assert.Solver)
	}
	if len(f.Assert.Jobs) != 1 || f.Assert.Jobs[0].Job != "writer*" {
		t.Errorf("Assert.Jobs = %+v", f.Assert.Jobs)
	}
	if f.needsBaselines() {
		t.Errorf("needsBaselines = true with no slowdown asserts")
	}
}

func TestParseSharded(t *testing.T) {
	doc := `
name: sharded
horizon: 1000
shards:
  - name: prod
    fleet:
      - ior:
          tasks: 8
  - replicate: 2
    fleet:
      - ior:
          tasks: 4
timeline:
  - at: 10
    shard_outage:
      shard: 2
      until: 50
      factor: 0.1
assert:
  shards:
    - shard: 0
      total_mbs:
        min: 1
`
	f, err := Parse([]byte(doc), "sharded.yaml")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !f.Sharded() || f.ShardCount() != 3 {
		t.Fatalf("ShardCount = %d, want 3", f.ShardCount())
	}
	if ev := f.Timeline[0]; ev.Kind != EvShardOutage || ev.Shard != 2 || ev.Until != 50 || ev.RestoreFactor != 1 {
		t.Errorf("Timeline[0] = %+v", ev)
	}
}

func TestNeedsBaselines(t *testing.T) {
	doc := `
name: sd
fleet:
  - ior:
      tasks: 4
assert:
  max_slowdown:
    max: 3
`
	f, err := Parse([]byte(doc), "sd.yaml")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !f.needsBaselines() {
		t.Errorf("needsBaselines = false with a slowdown assert")
	}
	off := false
	f.Baselines = &off
	if f.needsBaselines() {
		t.Errorf("explicit baselines: false not honoured")
	}
}

// TestParseErrors drives satellite 3: malformed times, factors and
// structure must be rejected at parse/validate time with positioned
// errors, never mid-run.
func TestParseErrors(t *testing.T) {
	fleet := "fleet:\n  - ior:\n      tasks: 4\n"
	cases := []struct {
		name, doc, want string
	}{
		{"no name", fleet, `missing required key "name"`},
		{"unknown top key", "name: x\nbogus: 1\n" + fleet, `unknown key "bogus"`},
		{"fleet and shards", "name: x\n" + fleet + "shards:\n  - fleet:\n      - ior:\n          tasks: 2\n",
			`exactly one of "fleet" and "shards"`},
		{"neither fleet nor shards", "name: x\n", `exactly one of "fleet" and "shards"`},
		{"two kinds", "name: x\nfleet:\n  - ior:\n      tasks: 4\n    plfs:\n      ranks: 2\n",
			"exactly one workload kind"},
		{"bad ior api", "name: x\nfleet:\n  - ior:\n      tasks: 4\n      api: nfs\n",
			"must be ufs, lustre, or plfs"},
		{"negative event time", "name: x\n" + fleet +
			"timeline:\n  - at: -5\n    ost_fail:\n      ost: 1\n",
			"must be finite and >= 0"},
		{"nan event time", "name: x\n" + fleet +
			"timeline:\n  - at: nan\n    ost_fail:\n      ost: 1\n",
			"NaN"},
		{"past horizon", "name: x\nhorizon: 100\n" + fleet +
			"timeline:\n  - at: 200\n    ost_fail:\n      ost: 1\n",
			"past the scenario horizon"},
		{"factor too big", "name: x\n" + fleet +
			"timeline:\n  - at: 5\n    ost_health:\n      ost: 1\n      factor: 1.5\n",
			"health factor must be in [0, 1]"},
		{"factor negative", "name: x\n" + fleet +
			"timeline:\n  - at: 5\n    ost_health:\n      ost: 1\n      factor: -0.1\n",
			"health factor must be in [0, 1]"},
		{"missing factor", "name: x\n" + fleet +
			"timeline:\n  - at: 5\n    ost_health:\n      ost: 1\n",
			`missing required key "factor"`},
		{"missing at", "name: x\n" + fleet +
			"timeline:\n  - ost_fail:\n      ost: 1\n",
			`missing required key "at"`},
		{"two actions", "name: x\n" + fleet +
			"timeline:\n  - at: 5\n    ost_fail:\n      ost: 1\n    ost_recover:\n      ost: 1\n",
			"exactly one action"},
		{"shard on monolithic", "name: x\n" + fleet +
			"timeline:\n  - at: 5\n    ost_fail:\n      ost: 1\n      shard: 0\n",
			"scenario has no shards"},
		{"outage on monolithic", "name: x\n" + fleet +
			"timeline:\n  - at: 5\n    shard_outage:\n      until: 10\n",
			"requires a sharded scenario"},
		{"outage until before at", "name: x\nshards:\n  - fleet:\n      - ior:\n          tasks: 2\n" +
			"timeline:\n  - at: 50\n    shard_outage:\n      shard: 0\n      until: 40\n",
			"after the event time"},
		{"shard out of range", "name: x\nshards:\n  - fleet:\n      - ior:\n          tasks: 2\n" +
			"timeline:\n  - at: 5\n    ost_fail:\n      shard: 3\n      ost: 1\n",
			"out of range"},
		{"rebuild self-source", "name: x\n" + fleet +
			"timeline:\n  - at: 5\n    rebuild:\n      ost: 2\n      mb: 100\n      from: [2]\n",
			"is the rebuild target"},
		{"bad dist", "name: x\nfleet:\n  - generator:\n      kind: ior\n      count: 2\n      tasks:\n        uniform: [9, 3]\n",
			"lo <= hi"},
		{"gen missing tasks", "name: x\nfleet:\n  - generator:\n      kind: ior\n      count: 2\n",
			`missing required key "tasks"`},
		{"gen wrong field", "name: x\nfleet:\n  - generator:\n      kind: plfs\n      count: 2\n      ranks: 4\n      segments: 3\n",
			"not a plfs generator field"},
		{"bound inverted", "name: x\n" + fleet + "assert:\n  makespan:\n    min: 10\n    max: 5\n",
			"min 10 exceeds max 5"},
		{"empty bound", "name: x\n" + fleet + "assert:\n  makespan: {}\n",
			""}, // flow mappings unsupported: any error is fine
		{"bad solver counter", "name: x\n" + fleet + "assert:\n  solver:\n    bogus:\n      max: 1\n",
			`unknown key "bogus"`},
		{"bad preset", "name: x\nplatform:\n  preset: mira\n" + fleet,
			"unknown preset"},
		{"horizon inf", "name: x\nhorizon: inf\n" + fleet,
			"finite"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.doc), tc.name+".yaml")
		if err == nil {
			t.Errorf("%s: expected error, got none", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}
