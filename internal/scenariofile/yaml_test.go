package scenariofile

import (
	"reflect"
	"strings"
	"testing"
)

// mustParse parses or fails the test.
func mustParse(t *testing.T, doc string) any {
	t.Helper()
	v, err := parseAny([]byte(doc), "test.yaml")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return v
}

// get digs a key out of a *Map or fails.
func get(t *testing.T, v any, key string) any {
	t.Helper()
	m, ok := v.(*Map)
	if !ok {
		t.Fatalf("expected mapping, got %T", v)
	}
	out, ok := m.Get(key)
	if !ok {
		t.Fatalf("key %q missing (have %v)", key, m.Keys())
	}
	return out
}

func TestYAMLScalars(t *testing.T) {
	v := mustParse(t, `
name: brownout
count: 12
factor: 0.25
neg: -3
enabled: true
disabled: false
empty: null
tilde: ~
quoted: "a: b # not a comment"
single: 'it''s'
bare: hello world
`)
	want := map[string]any{
		"name": "brownout", "count": int64(12), "factor": 0.25,
		"neg": int64(-3), "enabled": true, "disabled": false,
		"empty": nil, "tilde": nil,
		"quoted": "a: b # not a comment", "single": "it's",
		"bare": "hello world",
	}
	for k, w := range want {
		if g := get(t, v, k); !reflect.DeepEqual(g, w) {
			t.Errorf("%s = %#v, want %#v", k, g, w)
		}
	}
}

func TestYAMLNesting(t *testing.T) {
	v := mustParse(t, `
platform:
  preset: cab
  seed: 7
fleet:
  - ior:
      tasks: 64
      label: a
    count: 2
  - plfs:
      ranks: 128
timeline:
  - at: 30
    ost_health:
      ost: 12
      factor: 0.2
sources: [1, 2, 3]
`)
	plat := get(t, v, "platform")
	if got := get(t, plat, "preset"); got != "cab" {
		t.Errorf("preset = %v", got)
	}
	fleet, ok := get(t, v, "fleet").([]any)
	if !ok || len(fleet) != 2 {
		t.Fatalf("fleet = %#v", get(t, v, "fleet"))
	}
	iorSpec := get(t, fleet[0], "ior")
	if got := get(t, iorSpec, "tasks"); got != int64(64) {
		t.Errorf("tasks = %v", got)
	}
	if got := get(t, fleet[0], "count"); got != int64(2) {
		t.Errorf("count = %v", got)
	}
	tl, _ := get(t, v, "timeline").([]any)
	if len(tl) != 1 {
		t.Fatalf("timeline = %#v", tl)
	}
	ev := get(t, tl[0], "ost_health")
	if got := get(t, ev, "factor"); got != 0.2 {
		t.Errorf("factor = %v", got)
	}
	src, _ := get(t, v, "sources").([]any)
	if !reflect.DeepEqual(src, []any{int64(1), int64(2), int64(3)}) {
		t.Errorf("sources = %#v", src)
	}
}

func TestYAMLComments(t *testing.T) {
	v := mustParse(t, `
# leading comment
name: x  # trailing comment
list:    # here too
  - 1
  - 2
`)
	if got := get(t, v, "name"); got != "x" {
		t.Errorf("name = %v", got)
	}
	if got, _ := get(t, v, "list").([]any); len(got) != 2 {
		t.Errorf("list = %#v", got)
	}
}

func TestYAMLKeyOrderStable(t *testing.T) {
	v := mustParse(t, "b: 1\na: 2\nc: 3\n")
	m := v.(*Map)
	if !reflect.DeepEqual(m.Keys(), []string{"b", "a", "c"}) {
		t.Errorf("keys = %v (want file order)", m.Keys())
	}
}

func TestYAMLErrors(t *testing.T) {
	cases := []struct {
		doc, want string
	}{
		{"a: 1\na: 2\n", "duplicate key"},
		{"\tname: x\n", "tabs"},
		{"a: &anchor\n", "unsupported YAML feature"},
		{"a: *ref\n", "unsupported YAML feature"},
		{"a: |\n  text\n", "unsupported YAML feature"},
		{"a: [1, 2\n", "unterminated flow sequence"},
		{"a: 1\n---\nb: 2\n", "multi-document"},
		{"", "empty document"},
		{"- a\nb: 1\n", "unexpected content"},
		{"a:\n  - 1\n b: 2\n", "unexpected"},
	}
	for _, tc := range cases {
		_, err := parseAny([]byte(tc.doc), "bad.yaml")
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("doc %q: err = %v, want containing %q", tc.doc, err, tc.want)
		}
	}
}

func TestJSONInput(t *testing.T) {
	v := mustParse(t, `{"name": "js", "platform": {"preset": "cab"}, "n": 3, "f": 1.5}`)
	if got := get(t, v, "name"); got != "js" {
		t.Errorf("name = %v", got)
	}
	if got := get(t, v, "n"); got != int64(3) {
		t.Errorf("n = %#v", got)
	}
	if got := get(t, v, "f"); got != 1.5 {
		t.Errorf("f = %#v", got)
	}
	if got := get(t, get(t, v, "platform"), "preset"); got != "cab" {
		t.Errorf("preset = %v", got)
	}
	// JSON maps get sorted, deterministic key order.
	m := v.(*Map)
	if !sortedStrings(m.Keys()) {
		t.Errorf("JSON keys not sorted: %v", m.Keys())
	}
}

func sortedStrings(ss []string) bool {
	for i := 1; i < len(ss); i++ {
		if ss[i] < ss[i-1] {
			return false
		}
	}
	return true
}
