package scenariofile

import (
	"strings"
	"testing"

	"pfsim/internal/flow"
	"pfsim/internal/lustre"
	"pfsim/internal/workload"
)

// runDoc is a small monolithic scenario with a full chaos timeline.
const runDoc = `
name: run-test
platform:
  preset: cab
  nodes: 64
  osts: 16
  osss: 4
horizon: 10000
fleet:
  - ior:
      label: a
      tasks: 8
      segments: 5
    stripes: 4
  - ior:
      label: b
      tasks: 8
      segments: 5
    start_at: 2
    stripes: 4
timeline:
  - at: 3
    ost_health:
      ost: 2
      factor: 0.3
  - at: 5
    link_capacity:
      link: backbone
      mbs: 4000
  - at: 6
    rebuild:
      ost: 5
      mb: 256
      streams: 2
      from: [6, 7]
  - at: 9
    ost_recover:
      ost: 2
assert:
  makespan:
    max: 10000
  total_mbs:
    min: 1
`

func mustParseFile(t *testing.T, doc string) *File {
	t.Helper()
	f, err := Parse([]byte(doc), "test.yaml")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRunMonolithic(t *testing.T) {
	f := mustParseFile(t, runDoc)
	res, err := Run(f, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("assertions failed: %v", res.Failures)
	}
	if res.Mono == nil || len(res.Mono.Jobs) != 2 {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	if res.Makespan() <= 0 {
		t.Errorf("makespan = %v", res.Makespan())
	}
}

func TestAssertionFailureIsNotAnError(t *testing.T) {
	doc := strings.Replace(runDoc, "total_mbs:\n    min: 1", "total_mbs:\n    min: 1e12", 1)
	f := mustParseFile(t, doc)
	res, err := Run(f, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() || len(res.Failures) != 1 {
		t.Fatalf("Failures = %v, want exactly one", res.Failures)
	}
	if !strings.Contains(res.Failures[0], "assert.total_mbs") {
		t.Errorf("failure = %q", res.Failures[0])
	}
}

// jobsEqual asserts two runs are byte-identical: every per-repetition
// bandwidth sample, finish time, the makespan and the solver counters.
func jobsEqual(t *testing.T, label string, a, b *workload.Result, wantSameStats bool) {
	t.Helper()
	if a.Makespan != b.Makespan {
		t.Errorf("%s: makespan %v != %v", label, a.Makespan, b.Makespan)
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("%s: job count %d != %d", label, len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		ja, jb := &a.Jobs[i], &b.Jobs[i]
		if ja.Label != jb.Label {
			t.Fatalf("%s: job %d label %q != %q", label, i, ja.Label, jb.Label)
		}
		if ja.FinishedAt != jb.FinishedAt {
			t.Errorf("%s: job %q finished %v != %v", label, ja.Label, ja.FinishedAt, jb.FinishedAt)
		}
		va, vb := ja.IOR.Write.Values(), jb.IOR.Write.Values()
		if len(va) != len(vb) {
			t.Fatalf("%s: job %q sample count %d != %d", label, ja.Label, len(va), len(vb))
		}
		for k := range va {
			if va[k] != vb[k] {
				t.Errorf("%s: job %q rep %d: %v != %v", label, ja.Label, k, va[k], vb[k])
			}
		}
	}
	if wantSameStats && a.Solver != b.Solver {
		t.Errorf("%s: solver stats differ:\n%+v\n%+v", label, a.Solver, b.Solver)
	}
}

// TestTimelineEquivalence is the chaos-hook property test: the compiled
// timeline must be byte-identical to the same faults hand-scheduled as
// raw eng.ScheduleAt calls — for both solver modes and serial/parallel
// solve widths.
func TestTimelineEquivalence(t *testing.T) {
	f := mustParseFile(t, runDoc)
	plat, err := f.BuildPlatform()
	if err != nil {
		t.Fatal(err)
	}
	scens, err := f.BuildScenarios()
	if err != nil {
		t.Fatal(err)
	}
	// The hand-written equivalent of runDoc's timeline, driving the same
	// lustre primitives through raw engine scheduling.
	hand := func(sys *lustre.System) {
		eng := sys.Engine()
		eng.ScheduleAt(3, func() { sys.OST(2).SetHealth(0.3) })
		eng.ScheduleAt(5, func() {
			link, err := sys.LinkByName("backbone")
			if err != nil {
				panic(err)
			}
			link.SetModel(flow.Const(4000))
		})
		eng.ScheduleAt(6, func() {
			sys.StartRebuild(5, lustre.RebuildOpts{SizeMB: 256, Streams: 2, Sources: []int{6, 7}})
		})
		eng.ScheduleAt(9, func() { sys.OST(2).SetHealth(1) })
	}
	for _, mode := range []struct {
		name string
		ref  bool
	}{{"incremental", false}, {"reference", true}} {
		var base *workload.Result
		for _, width := range []int{1, 2, 4} {
			opts := workload.RunOptions{Parallelism: width}
			handRes, err := workload.RunScenarioWith(plat, scens[0], opts, func(sys *lustre.System) {
				if mode.ref {
					sys.Net().UseReferenceSolver(true)
				}
				hand(sys)
			})
			if err != nil {
				t.Fatal(err)
			}
			fileRes, err := Run(f, RunOptions{Parallelism: width, Reference: mode.ref})
			if err != nil {
				t.Fatal(err)
			}
			label := mode.name + "/w" + string(rune('0'+width))
			jobsEqual(t, label+" file-vs-hand", fileRes.Mono, handRes, true)
			if base == nil {
				base = fileRes.Mono
			} else {
				jobsEqual(t, label+" vs-width1", fileRes.Mono, base, true)
			}
		}
	}
}

// shardedDoc exercises shard expansion, replication and a shard outage.
const shardedDoc = `
name: sharded-run
platform:
  preset: cab
  nodes: 64
  osts: 8
  osss: 2
horizon: 10000
shards:
  - name: prod
    fleet:
      - ior:
          label: p
          tasks: 8
          segments: 4
        stripes: 4
  - name: scratch
    replicate: 2
    fleet:
      - ior:
          label: s
          tasks: 4
          segments: 4
        stripes: 2
timeline:
  - at: 2
    shard_outage:
      shard: 1
      until: 6
      factor: 0.05
assert:
  makespan:
    max: 10000
  shards:
    - shard: 0
      total_mbs:
        min: 1
`

func TestRunSharded(t *testing.T) {
	f := mustParseFile(t, shardedDoc)
	var base *Result
	for _, width := range []int{1, 3} {
		res, err := Run(f, RunOptions{Parallelism: width})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Passed() {
			t.Fatalf("assertions failed: %v", res.Failures)
		}
		if res.Sharded == nil || len(res.Sharded.Shards) != 3 {
			t.Fatalf("want 3 shards, got %+v", res.Sharded)
		}
		// The outage must actually bite: shard 1's job finishes later than
		// shard 2's (its replica twin with identical workload but no outage).
		// Replicas draw from distinct generator streams but these fleets are
		// literal, so the two scratch shards are identical up to jitter.
		if base == nil {
			base = res
		} else {
			for i := range res.Sharded.Shards {
				jobsEqual(t, "sharded width", res.Sharded.Shards[i], base.Sharded.Shards[i], false)
			}
			if res.Sharded.Solver != base.Sharded.Solver {
				t.Errorf("sharded solver stats differ across widths")
			}
		}
	}
	out1 := base.Sharded.Shards[1].Jobs[0].FinishedAt
	out2 := base.Sharded.Shards[2].Jobs[0].FinishedAt
	if out1 <= out2 {
		t.Errorf("shard outage did not slow shard 1: finished %v vs twin %v", out1, out2)
	}
}

func TestGeneratorExpansionDeterministic(t *testing.T) {
	doc := `
name: genfleet
platform:
  nodes: 256
  osts: 16
  osss: 4
fleet:
  - generator:
      kind: ior
      count: 6
      label: bg
      tasks:
        choice: [4, 8]
      segments: 2
      start_at:
        uniform: [0, 10]
`
	f := mustParseFile(t, doc)
	s1, err := f.BuildScenarios()
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := f.BuildScenarios()
	if len(s1[0].Jobs) != 6 {
		t.Fatalf("jobs = %d", len(s1[0].Jobs))
	}
	varied := false
	for i := range s1[0].Jobs {
		a, b := s1[0].Jobs[i], s2[0].Jobs[i]
		if a.StartAt != b.StartAt {
			t.Fatalf("job %d StartAt %v != %v across expansions", i, a.StartAt, b.StartAt)
		}
		ca := a.Workload.Config(nil)
		cb := b.Workload.Config(nil)
		if ca != cb {
			t.Fatalf("job %d config differs across expansions", i)
		}
		if a.StartAt != s1[0].Jobs[0].StartAt || ca.NumTasks != s1[0].Jobs[0].Workload.Config(nil).NumTasks {
			varied = true
		}
	}
	if !varied {
		t.Errorf("generator produced 6 identical jobs; distributions never varied")
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSlowdownBaselines(t *testing.T) {
	doc := `
name: slowdowns
platform:
  nodes: 64
  osts: 8
  osss: 2
fleet:
  - ior:
      label: j
      tasks: 8
      segments: 4
    count: 2
    stripes: 4
assert:
  max_slowdown:
    min: 0.5
    max: 100
  jobs:
    - job: j*
      slowdown:
        min: 0.5
`
	f := mustParseFile(t, doc)
	res, err := Run(f, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("assertions failed: %v", res.Failures)
	}
	for i := range res.Mono.Jobs {
		if res.Mono.Jobs[i].Slowdown == 0 {
			t.Errorf("job %d has no slowdown despite needsBaselines", i)
		}
	}
}

func TestValidateCatchesPlatformRangeErrors(t *testing.T) {
	cases := []struct{ name, doc, want string }{
		{"ost range", `
name: x
platform:
  nodes: 16
  osts: 4
  osss: 2
fleet:
  - ior:
      tasks: 4
timeline:
  - at: 1
    ost_fail:
      ost: 7
`, "out of range"},
		{"link range", `
name: x
platform:
  nodes: 16
  osts: 4
  osss: 2
fleet:
  - ior:
      tasks: 4
timeline:
  - at: 1
    link_capacity:
      link: oss9
      mbs: 100
`, "out of range"},
		{"ost link swap", `
name: x
platform:
  nodes: 16
  osts: 4
  osss: 2
fleet:
  - ior:
      tasks: 4
timeline:
  - at: 1
    link_capacity:
      link: ost1
      mbs: 100
`, "ost_health"},
		{"node capacity", `
name: x
platform:
  nodes: 4
  osts: 4
  osss: 2
fleet:
  - ior:
      tasks: 4096
`, ""},
	}
	for _, tc := range cases {
		f := mustParseFile(t, tc.doc)
		err := f.Validate()
		if err == nil {
			t.Errorf("%s: Validate passed, want error", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}
