// Package report renders experiment output: aligned text tables, Markdown
// tables, CSV series and simple ASCII charts. Every table and figure of
// the reproduced paper is printed through this package so that cmd tools,
// benchmarks and EXPERIMENTS.md share one formatting path.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells render with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat renders floats compactly: integers without decimals, small
// values with two.
func formatFloat(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table as text.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Markdown writes the table as GitHub-flavoured Markdown.
func (t *Table) Markdown(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values (quoting cells that need
// it).
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.Headers)
	for _, row := range t.rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		out[i] = c
	}
	fmt.Fprintln(w, strings.Join(out, ","))
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// Bars renders a horizontal ASCII bar chart: one bar per (label, value),
// scaled to maxWidth characters — a terminal rendition of the paper's bar
// figures.
func Bars(w io.Writer, title string, labels []string, values []float64, maxWidth int) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	if len(labels) != len(values) || len(values) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	if maxWidth <= 0 {
		maxWidth = 50
	}
	maxLabel, maxVal := 0, 0.0
	for i, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if values[i] > maxVal {
			maxVal = values[i]
		}
	}
	for i, l := range labels {
		n := 0
		if maxVal > 0 {
			n = int(math.Round(values[i] / maxVal * float64(maxWidth)))
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "  %s  %s %s\n", pad(l, maxLabel), strings.Repeat("#", n), formatFloat(values[i]))
	}
}

// Series renders an x/y line as "x y" pairs suitable for plotting tools,
// one per line, prefixed by a # header — the figure-series export format.
func Series(w io.Writer, name string, xs, ys []float64) {
	fmt.Fprintf(w, "# %s\n", name)
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%g %g\n", xs[i], ys[i])
	}
}

// Ratio formats a/b as "N.N×", guarding division by zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "∞×"
	}
	return fmt.Sprintf("%.1f×", a/b)
}
