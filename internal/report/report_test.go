package report

import (
	"strings"
	"testing"
)

func TestTableFprint(t *testing.T) {
	tab := NewTable("Demo", "Jobs", "Dinuse", "Dload")
	tab.AddRow(1, 160.0, 1.0)
	tab.AddRow(10, 471.68, 3.39)
	out := tab.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "471.68") {
		t.Errorf("missing float cell:\n%s", out)
	}
	if !strings.Contains(out, "160") || strings.Contains(out, "160.00") {
		t.Errorf("whole floats should render without decimals:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, headers, separator, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := NewTable("T", "A", "B")
	tab.AddRow("x", 1.5)
	var b strings.Builder
	tab.Markdown(&b)
	out := b.String()
	if !strings.Contains(out, "### T") || !strings.Contains(out, "| A | B |") ||
		!strings.Contains(out, "| --- | --- |") || !strings.Contains(out, "| x | 1.50 |") {
		t.Errorf("markdown malformed:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "name", "value")
	tab.AddRow("plain", 1)
	tab.AddRow("with,comma", 2)
	tab.AddRow(`with"quote`, 3)
	var b strings.Builder
	tab.CSV(&b)
	out := b.String()
	if !strings.Contains(out, "name,value") {
		t.Error("missing header row")
	}
	if !strings.Contains(out, `"with,comma",2`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"with""quote",3`) {
		t.Errorf("quote cell not escaped:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	var b strings.Builder
	Bars(&b, "BW", []string{"a", "bb"}, []float64{50, 100}, 10)
	out := b.String()
	if !strings.Contains(out, "##########") {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "#####") {
		t.Errorf("half bar missing:\n%s", out)
	}
	var empty strings.Builder
	Bars(&empty, "x", nil, nil, 10)
	if !strings.Contains(empty.String(), "no data") {
		t.Error("empty chart should say so")
	}
	var mismatched strings.Builder
	Bars(&mismatched, "x", []string{"a"}, []float64{1, 2}, 10)
	if !strings.Contains(mismatched.String(), "no data") {
		t.Error("mismatched lengths should be rejected")
	}
}

func TestSeries(t *testing.T) {
	var b strings.Builder
	Series(&b, "lustre", []float64{16, 32}, []float64{403.75, 404.71})
	out := b.String()
	if !strings.Contains(out, "# lustre") || !strings.Contains(out, "16 403.75") {
		t.Errorf("series malformed:\n%s", out)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(49, 1); got != "49.0×" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Ratio(1, 0); got != "∞×" {
		t.Errorf("Ratio by zero = %q", got)
	}
}
