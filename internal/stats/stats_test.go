package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSampleBasics(t *testing.T) {
	s := NewSample(2, 4, 4, 4, 5, 5, 7, 9)
	if got := s.Mean(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Std(); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("Std = %v, want %v", got, math.Sqrt(32.0/7.0))
	}
	if got := s.Min(); got != 2 {
		t.Errorf("Min = %v, want 2", got)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("Max = %v, want 9", got)
	}
	if got := s.N(); got != 8 {
		t.Errorf("N = %v, want 8", got)
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Var() != 0 || s.N() != 0 {
		t.Errorf("empty sample should be all-zero: mean=%v var=%v n=%v", s.Mean(), s.Var(), s.N())
	}
	lo, hi := s.CI95()
	if lo != 0 || hi != 0 {
		t.Errorf("empty CI = (%v,%v), want (0,0)", lo, hi)
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Errorf("empty Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestPercentile(t *testing.T) {
	s := NewSample(1, 2, 3, 4, 5)
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestCI95KnownValue(t *testing.T) {
	// n=5, mean=10, std=1 -> half width = 2.776/sqrt(5).
	s := NewSample(9, 9.5, 10, 10.5, 11)
	lo, hi := s.CI95()
	wantHalf := 2.776 * s.Std() / math.Sqrt(5)
	if !almostEqual(hi-lo, 2*wantHalf, 1e-9) {
		t.Errorf("CI width = %v, want %v", hi-lo, 2*wantHalf)
	}
	if !almostEqual((hi+lo)/2, 10, 1e-9) {
		t.Errorf("CI centre = %v, want 10", (hi+lo)/2)
	}
}

func TestTCritical95(t *testing.T) {
	if got := TCritical95(1); got != 12.706 {
		t.Errorf("t(1) = %v", got)
	}
	if got := TCritical95(30); got != 2.042 {
		t.Errorf("t(30) = %v", got)
	}
	if got := TCritical95(2000); got != 1.960 {
		t.Errorf("t(2000) = %v", got)
	}
	// Monotone non-increasing between table end and asymptote.
	prev := TCritical95(30)
	for df := 31; df < 200; df += 7 {
		cur := TCritical95(df)
		if cur > prev+1e-9 {
			t.Errorf("t(%d)=%v > t(prev)=%v; should decay", df, cur, prev)
		}
		prev = cur
	}
	if !math.IsNaN(TCritical95(0)) {
		t.Errorf("t(0) should be NaN")
	}
}

func TestOnlineMatchesSample(t *testing.T) {
	rng := NewRNG(7)
	var o Online
	var s Sample
	for i := 0; i < 1000; i++ {
		x := rng.Normal(42, 13)
		o.Add(x)
		s.Add(x)
	}
	if !almostEqual(o.Mean(), s.Mean(), 1e-9) {
		t.Errorf("online mean %v != sample mean %v", o.Mean(), s.Mean())
	}
	if !almostEqual(o.Var(), s.Var(), 1e-6) {
		t.Errorf("online var %v != sample var %v", o.Var(), s.Var())
	}
	if o.Min() != s.Min() || o.Max() != s.Max() {
		t.Errorf("online min/max %v/%v != %v/%v", o.Min(), o.Max(), s.Min(), s.Max())
	}
}

func TestIntHistogram(t *testing.T) {
	var h IntHistogram
	h.Add(0)
	h.Add(2)
	h.Add(2)
	h.AddN(5, 3)
	h.Add(-1) // ignored
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
	if h.Count(2) != 2 || h.Count(5) != 3 || h.Count(1) != 0 || h.Count(99) != 0 {
		t.Errorf("unexpected counts: %v", h.Counts())
	}
	if h.MaxValue() != 5 {
		t.Errorf("MaxValue = %d, want 5", h.MaxValue())
	}
	want := (0.0 + 2 + 2 + 15) / 6
	if !almostEqual(h.Mean(), want, 1e-12) {
		t.Errorf("Mean = %v, want %v", h.Mean(), want)
	}
}

func TestIntHistogramEmpty(t *testing.T) {
	var h IntHistogram
	if h.MaxValue() != -1 || h.Mean() != 0 || h.Total() != 0 {
		t.Errorf("empty histogram misbehaves: %d %v %d", h.MaxValue(), h.Mean(), h.Total())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
	c := NewRNG(124)
	same := 0
	a2 := NewRNG(123)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 equal values", same)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(9)
	f1 := r.Fork(1)
	r2 := NewRNG(9)
	f2 := r2.Fork(1)
	for i := 0; i < 50; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatalf("forks with same lineage diverged at %d", i)
		}
	}
}

func TestJitterPositiveAndCentred(t *testing.T) {
	r := NewRNG(5)
	var o Online
	for i := 0; i < 20000; i++ {
		j := r.Jitter(0.05)
		if j <= 0 {
			t.Fatalf("jitter produced non-positive factor %v", j)
		}
		o.Add(j)
	}
	if !almostEqual(o.Mean(), 1, 0.01) {
		t.Errorf("jitter mean = %v, want ~1", o.Mean())
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRNG(11)
	got := r.SampleWithoutReplacement(480, 160)
	if len(got) != 160 {
		t.Fatalf("len = %d, want 160", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 480 {
			t.Fatalf("value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacementFull(t *testing.T) {
	r := NewRNG(3)
	got := r.SampleWithoutReplacement(10, 10)
	seen := map[int]bool{}
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("full sample not a permutation: %v", got)
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for k > n")
		}
	}()
	NewRNG(1).SampleWithoutReplacement(3, 4)
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Each of n items should appear with probability k/n.
	r := NewRNG(17)
	const n, k, trials = 20, 5, 20000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleWithoutReplacement(n, k) {
			counts[v]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 0.06*want {
			t.Errorf("item %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestPercentileQuickProperties(t *testing.T) {
	// Percentile must be within [min,max] and monotone in p.
	f := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		s := &Sample{}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		p1 = math.Mod(math.Abs(p1), 1)
		p2 = math.Mod(math.Abs(p2), 1)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		q1, q2 := s.Percentile(p1), s.Percentile(p2)
		return q1 <= q2+1e-9 && q1 >= s.Min()-1e-9 && q2 <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCIContainsMeanProperty(t *testing.T) {
	f := func(raw []float64) bool {
		s := &Sample{}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
			s.Add(x)
		}
		lo, hi := s.CI95()
		m := s.Mean()
		return lo <= m+1e-6 && m <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntHistogramAddNConstantTime(t *testing.T) {
	var h IntHistogram
	h.AddN(3, 1_000_000) // O(1): grows the slice once, bumps the bucket
	h.AddN(0, 2)
	h.AddN(-4, 7) // ignored: negative value
	h.AddN(9, 0)  // ignored: non-positive count
	h.AddN(9, -1) // ignored: non-positive count
	if h.Total() != 1_000_002 {
		t.Errorf("Total = %d, want 1000002", h.Total())
	}
	if h.Count(3) != 1_000_000 || h.Count(0) != 2 || h.Count(9) != 0 {
		t.Errorf("unexpected counts: 3->%d 0->%d 9->%d", h.Count(3), h.Count(0), h.Count(9))
	}
	if h.MaxValue() != 3 {
		t.Errorf("MaxValue = %d, want 3", h.MaxValue())
	}
}
