// Package stats provides the statistical utilities used throughout pfsim:
// online summary statistics, Student-t 95% confidence intervals (the paper
// reports 95% CIs for every measured bandwidth), integer histograms for
// OST-collision counts, and a deterministic, seedable random number
// generator so that every simulated experiment is reproducible.
package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Sample accumulates observations and answers summary queries. The zero
// value is an empty sample ready for use.
type Sample struct {
	xs []float64
}

// NewSample returns a sample pre-populated with xs.
func NewSample(xs ...float64) *Sample {
	s := &Sample{}
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

// Add appends one observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns a copy of the observations in insertion order.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Var returns the unbiased sample variance (n-1 denominator).
func (s *Sample) Var() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or +Inf for an empty sample.
func (s *Sample) Min() float64 {
	min := math.Inf(1)
	for _, x := range s.xs {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest observation, or -Inf for an empty sample.
func (s *Sample) Max() float64 {
	max := math.Inf(-1)
	for _, x := range s.xs {
		if x > max {
			max = x
		}
	}
	return max
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) using linear interpolation
// between closest ranks. It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	sorted := s.Values()
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI95 returns the 95% confidence interval for the mean using the Student-t
// distribution, matching the intervals reported in Table VII of the paper.
// For n < 2 the interval collapses to (mean, mean).
func (s *Sample) CI95() (lo, hi float64) {
	n := s.N()
	m := s.Mean()
	if n < 2 {
		return m, m
	}
	half := TCritical95(n-1) * s.Std() / math.Sqrt(float64(n))
	return m - half, m + half
}

// String formats the sample as "mean ± half-width (n=N)".
func (s *Sample) String() string {
	lo, hi := s.CI95()
	return fmt.Sprintf("%.2f ± %.2f (n=%d)", s.Mean(), (hi-lo)/2, s.N())
}

// tTable95 holds two-sided 95% critical values of the Student-t
// distribution for 1..30 degrees of freedom.
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom. Beyond df=30 it decays toward the normal z=1.960.
func TCritical95(df int) float64 {
	if df < 1 {
		return math.NaN()
	}
	if df <= len(tTable95) {
		return tTable95[df-1]
	}
	if df >= 1000 {
		return 1.960
	}
	// Smooth interpolation between t(30)=2.042 and z=1.960 using 1/df,
	// accurate to ~0.005 over the range.
	f := (1.0/30.0 - 1.0/float64(df)) / (1.0 / 30.0)
	return 2.042 - f*(2.042-1.960)
}

// Online tracks count/mean/variance incrementally (Welford's algorithm)
// without retaining observations; used for high-volume simulator telemetry.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N reports the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean.
func (o *Online) Mean() float64 { return o.mean }

// Var returns the unbiased running variance.
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the running standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation seen (0 if none).
func (o *Online) Min() float64 {
	if o.n == 0 {
		return 0
	}
	return o.min
}

// Max returns the largest observation seen (0 if none).
func (o *Online) Max() float64 {
	if o.n == 0 {
		return 0
	}
	return o.max
}

// IntHistogram counts occurrences of small non-negative integers; it backs
// the OST collision tables (Tables V, VIII and IX in the paper).
type IntHistogram struct {
	counts []int
	total  int
}

// Add increments the bucket for value v (v < 0 is ignored).
func (h *IntHistogram) Add(v int) { h.AddN(v, 1) }

// AddN increments the bucket for v by n in O(1): the bucket slice grows
// once and the count bumps directly (an earlier revision looped n times
// over Add). Non-positive n and negative v are ignored.
func (h *IntHistogram) AddN(v, n int) {
	if v < 0 || n <= 0 {
		return
	}
	if len(h.counts) <= v {
		h.counts = append(h.counts, make([]int, v+1-len(h.counts))...)
	}
	h.counts[v] += n
	h.total += n
}

// Count returns the number of observations equal to v.
func (h *IntHistogram) Count(v int) int {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// MaxValue returns the largest value with a non-zero count (-1 if empty).
func (h *IntHistogram) MaxValue() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return -1
}

// Total returns the number of observations.
func (h *IntHistogram) Total() int { return h.total }

// Counts returns a copy of the bucket counts indexed by value.
func (h *IntHistogram) Counts() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// Mean returns the mean observed value.
func (h *IntHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0.0
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// RNG is a deterministic random source. Two RNGs built from the same seed
// produce identical streams on every platform, which keeps all simulated
// experiments reproducible.
type RNG struct {
	*rand.Rand
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Fork derives an independent deterministic stream from this generator,
// labelled by id so that forks are order-independent.
func (r *RNG) Fork(id uint64) *RNG {
	return &RNG{rand.New(rand.NewPCG(r.Uint64()^id, id*0xbf58476d1ce4e5b9+1))}
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (r *RNG) Normal(mean, std float64) float64 {
	return mean + std*r.NormFloat64()
}

// Jitter returns a multiplicative noise factor with unit mean and the given
// coefficient of variation, clamped to stay positive.
func (r *RNG) Jitter(cv float64) float64 {
	f := r.Normal(1, cv)
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// SampleWithoutReplacement returns k distinct integers drawn uniformly from
// [0, n). It panics if k > n. The result is in random order.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic(fmt.Sprintf("stats: cannot sample %d from %d", k, n))
	}
	// Partial Fisher-Yates over an index table.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = idx[i]
	}
	return out
}
