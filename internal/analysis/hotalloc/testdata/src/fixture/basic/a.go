// Package basic exercises every allocating construct hotalloc flags,
// plus the three exemptions: //pfsim:allocok line directives, doc-level
// pruning, and panic arguments.
package basic

import "fmt"

var scratch []int

type record struct{ n int }

func sink(v any) { _ = v }

// Flush is the fixture's hot entry point.
//
//pfsim:hotpath
func Flush(n int) string {
	buf := make([]int, n)           // want `make allocates`
	p := new(int)                   // want `new allocates`
	scratch = append(scratch, n)    // want `append may grow its backing array`
	pairs := []int{n, n}            // want `composite literal allocates its backing store`
	rec := &record{n: n}            // want `composite literal allocates`
	name := "flow-" + fmt.Sprint(n) // want `string concatenation allocates` `fmt call allocates`
	sink(record{n: n})              // want `passing a concrete value to an interface parameter boxes`
	sink(rec)                       // pointer: boxing-exempt
	if n < 0 {
		// Crash-path allocations are free: nothing below is flagged.
		panic(fmt.Sprintf("basic: bad n %d (%v)", n, pairs))
	}
	grow(n)
	audited(n)
	*p = len(buf)
	return name
}

// grow is reached from Flush, so its allocations are hot too; the
// second append carries an audited suppression.
func grow(n int) {
	scratch = append(scratch, n) // want `append may grow its backing array on the hot path \(reached from //pfsim:hotpath Flush\)`
	scratch = append(scratch, n) //pfsim:allocok audited warm-up growth of reused scratch
}

// audited is pruned from the closure wholesale — the cold-error-path
// escape hatch.
//
//pfsim:allocok cold reporting path, runs once per failure
func audited(n int) {
	_ = fmt.Sprintf("audited %d", n)
}

// cold is not reachable from any hot root: untouched.
func cold() {
	scratch = append(scratch, 1)
	_ = fmt.Sprintln("cold")
}

var _ = cold
