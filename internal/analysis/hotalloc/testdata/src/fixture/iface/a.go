// Package iface exercises the call graph's two indirect-edge kinds:
// interface dispatch (a call through an interface-typed receiver
// reaches every in-package implementation) and method sets (handing a
// concrete value to an interface parameter makes its methods hot even
// if no call is visible).
package iface

// Model is dispatched through an interface on the hot path.
type Model interface{ Capacity(streams int) float64 }

// Flat is a clean implementation: in the closure, nothing to report.
type Flat float64

// Capacity implements Model without allocating.
func (f Flat) Capacity(int) float64 { return float64(f) }

// Wobbly keeps a history — allocating on every call.
type Wobbly struct{ hist []float64 }

// Capacity implements Model, badly.
func (w *Wobbly) Capacity(streams int) float64 {
	w.hist = append(w.hist, float64(streams)) // want `append may grow its backing array on the hot path \(reached from //pfsim:hotpath Solve\)`
	return 1
}

// Solve dispatches through the interface: every in-package
// implementation joins the closure.
//
//pfsim:hotpath
func Solve(ms []Model) float64 {
	t := 0.0
	for _, m := range ms {
		t += m.Capacity(3)
	}
	return t
}

// runner/exec model the method-set edge: exec never visibly calls
// run, but handing it a concrete *job makes (*job).run reachable.
type runner interface{ run() }

var pending runner

func exec(r runner) { pending = r }

type job struct{ out []int }

func (j *job) run() {
	j.out = append(j.out, 1) // want `append may grow its backing array on the hot path \(reached from //pfsim:hotpath Dispatch\)`
}

// Dispatch hands a concrete value to an interface parameter.
//
//pfsim:hotpath
func Dispatch(j *job) {
	exec(j)
}
