// Package fan exercises closures handed to an executor: a function
// literal folds into its lexically enclosing declaration, so work
// dispatched through a pool.Fan-style fan-out stays on the hot path
// even though the executor calls it through a plain func value.
package fan

var scratch []int

// fan is a minimal executor, calling fn through a func-typed value the
// graph cannot resolve.
func fan(workers int, fn func(worker int)) {
	for w := 0; w < workers; w++ {
		fn(w)
	}
}

// Flush fans work out — the closure bodies and everything they call
// stay on the hot path; the literal itself is an allocation.
//
//pfsim:hotpath
func Flush(items []int) {
	//pfsim:allocok audited fan-out closure: fixed per-flush floor
	fan(2, func(w int) {
		for range items {
			grow(w)
		}
	})
	fan(2, func(w int) { // want `function literal allocates a closure`
		_ = w
	})
}

// grow runs inside the (suppressed) closure: still hot.
func grow(w int) {
	scratch = append(scratch, w) // want `append may grow its backing array on the hot path \(reached from //pfsim:hotpath Flush\)`
}
