// Package directives exercises directive placement on methods versus
// functions: a //pfsim:hotpath doc directive roots a method exactly
// like a function, a //pfsim:allocok doc directive prunes a method and
// everything only it reaches, and a bound-method value is itself a
// closure allocation.
package directives

// Engine is the fixture's stand-in for the simulator engine.
type Engine struct {
	buf  []int
	hook func()
}

// Tick is a hot method root (the directive sits on a method's doc
// comment, not a function's).
//
//pfsim:hotpath
func (e *Engine) Tick() {
	e.buf = append(e.buf, 1) // want `append may grow its backing array on the hot path \(reached from //pfsim:hotpath Engine.Tick\)`
	e.report()
	e.install()
}

// report is audited cold: the doc-level directive prunes the method —
// and everything only it reaches — from the closure.
//
//pfsim:allocok audited cold reporting path
func (e *Engine) report() {
	e.buf = append(e.buf, len(e.buf))
	e.deep()
}

// deep is reached only through the pruned method: untouched.
func (e *Engine) deep() {
	e.buf = make([]int, 8)
}

// install caches a bound-method closure — the method value allocates.
func (e *Engine) install() {
	e.hook = e.flush // want `method value allocates a closure`
}

func (e *Engine) flush() {}

// Reset is an ordinary cold method: allocations outside the closure
// are not the analyzer's business.
func (e *Engine) Reset() {
	e.buf = make([]int, 0, 16)
}
