// Package hotalloc flags allocating constructs on annotated hot paths.
//
// ROADMAP item 2's scale target (about a million concurrent flows over
// week-long horizons) requires the solver's steady state — re-solving
// rates, committing accrual, moving the completion event — to run
// without touching the heap allocator: per-event allocation churn turns
// into GC pauses that dominate wall-clock on exactly the long shifting
// workloads the contention studies model. The analyzer enforces that
// discipline at the source level, before a benchmark can regress.
//
// A function whose doc comment carries //pfsim:hotpath is a hot entry
// point. The analyzer takes the package's static call-graph closure of
// those roots (direct calls and references, interface dispatch resolved
// to in-package implementations, method sets of values handed to
// interface parameters — see framework.CallGraph) and reports every
// construct inside it that allocates or may allocate:
//
//   - make and new
//   - append (may grow its backing array)
//   - composite literals that escape (&T{...}) or carry slice/map
//     backing stores
//   - function literals and method values (closure allocation)
//   - string concatenation
//   - fmt.* calls
//   - passing a concrete non-pointer value to an interface parameter
//     (boxing)
//
// The graph is per-package and does not resolve calls through plain
// func-typed fields or variables, so hot code reached only dynamically
// — an event callback fired by the engine loop, for example — must
// carry its own //pfsim:hotpath root.
//
// Two escape hatches, both requiring a written justification by
// convention: a //pfsim:allocok line directive (on or directly above
// the construct) accepts one audited allocation — warm-up growth of a
// reused scratch slice, a bounded pool fill; a //pfsim:allocok doc
// directive on a function prunes the whole function from the closure —
// for audited-cold paths like error reporting that share a caller with
// hot code. panic(...) arguments are exempt: a crash path's allocations
// are free.
//
// The AST view is heuristic in both directions (a flagged composite
// literal may stay on the stack; a clean-looking call may still
// allocate), so cmd/pfsim-escape cross-checks the same //pfsim:hotpath
// regions against the compiler's own escape analysis.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"pfsim/internal/analysis/framework"
)

// Analyzer flags allocating constructs reachable from //pfsim:hotpath
// roots.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocating constructs in the call-graph closure of //pfsim:hotpath functions; suppress audited allocations with //pfsim:allocok <why>",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	cg := pass.CallGraph()
	var roots []*types.Func
	for _, fn := range cg.Funcs() {
		if len(framework.DocDirectives(cg.DeclOf(fn).Doc, "hotpath")) > 0 {
			roots = append(roots, fn)
		}
	}
	if len(roots) == 0 {
		return nil, nil
	}
	dirs := framework.NewDirectives(pass.Fset, pass.Files)
	prune := func(fn *types.Func) bool {
		d := cg.DeclOf(fn)
		return d != nil && len(framework.DocDirectives(d.Doc, "allocok")) > 0
	}
	reached := cg.Reachable(roots, prune)
	for _, fn := range cg.Funcs() {
		root, ok := reached[fn]
		if !ok {
			continue
		}
		checkBody(pass, dirs, cg.DeclOf(fn), root)
	}
	return nil, nil
}

// checkBody reports every allocating construct in one reached
// function's body.
func checkBody(pass *framework.Pass, dirs *framework.Directives, decl *ast.FuncDecl, root *types.Func) {
	if decl.Body == nil {
		return
	}
	from := framework.FuncName(root)
	report := func(pos token.Pos, what, fix string) {
		if dirs.Has(pos, "allocok") {
			return
		}
		pass.Reportf(pos, "%s on the hot path (reached from //pfsim:hotpath %s); %s, or annotate //pfsim:allocok <why>",
			what, from, fix)
	}
	reported := map[ast.Node]bool{} // composite literals already covered by an enclosing &
	callFuns := map[ast.Expr]bool{} // call Fun positions: method uses there are calls, not method values
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callFuns[n.Fun] = true
			if isBuiltin(pass, n.Fun, "panic") {
				return false // crash-path allocations are free
			}
			switch {
			case isBuiltin(pass, n.Fun, "make"):
				report(n.Pos(), "make allocates", "preallocate or reuse scratch")
			case isBuiltin(pass, n.Fun, "new"):
				report(n.Pos(), "new allocates", "preallocate or pool the record")
			case isBuiltin(pass, n.Fun, "append"):
				report(n.Pos(), "append may grow its backing array", "reuse capacity ([:0] scratch)")
			case isFmtCall(pass, n):
				report(n.Pos(), "fmt call allocates", "format off the hot path")
			default:
				checkBoxing(pass, n, report)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := n.X.(*ast.CompositeLit); ok {
					reported[lit] = true
					report(n.Pos(), "composite literal allocates", "hoist or pool the record")
				}
			}
		case *ast.CompositeLit:
			if reported[n] {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n.Pos(), "composite literal allocates its backing store", "hoist or reuse scratch")
				}
			}
		case *ast.FuncLit:
			report(n.Pos(), "function literal allocates a closure", "hoist it to a named function or cached field")
		case *ast.SelectorExpr:
			if callFuns[n] {
				return true
			}
			if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.MethodVal {
				report(n.Pos(), "method value allocates a closure", "cache the bound closure once")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.TypesInfo.Types[n]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n.Pos(), "string concatenation allocates", "build strings off the hot path")
					}
				}
			}
		}
		return true
	})
}

// checkBoxing reports call arguments whose concrete non-pointer values
// convert to interface parameters. Pointer, function, channel and map
// values fit an interface word without allocating and are exempt.
func checkBoxing(pass *framework.Pass, call *ast.CallExpr, report func(token.Pos, string, string)) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, len(call.Args), call.Ellipsis.IsValid())
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		atv, ok := pass.TypesInfo.Types[arg]
		if !ok || atv.Type == nil || atv.IsNil() {
			continue
		}
		switch atv.Type.Underlying().(type) {
		case *types.Pointer, *types.Interface, *types.Signature, *types.Chan, *types.Map:
			continue
		}
		report(arg.Pos(), "passing a concrete value to an interface parameter boxes (allocates)", "pass a pointer")
	}
}

// paramType resolves parameter i's type, unrolling the variadic tail
// (unless the call spreads a slice with ...).
func paramType(sig *types.Signature, i, nargs int, ellipsis bool) types.Type {
	params := sig.Params()
	if sig.Variadic() && !ellipsis && i >= params.Len()-1 {
		if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
	}
	if i < params.Len() {
		return params.At(i).Type()
	}
	return nil
}

// isBuiltin reports whether the call target is the named builtin.
func isBuiltin(pass *framework.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isFmtCall reports whether the call targets the fmt package.
func isFmtCall(pass *framework.Pass, call *ast.CallExpr) bool {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := se.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "fmt"
}
