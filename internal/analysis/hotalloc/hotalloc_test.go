package hotalloc_test

import (
	"testing"

	"pfsim/internal/analysis/analysistest"
	"pfsim/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer,
		"fixture/basic", "fixture/iface", "fixture/fan", "fixture/directives")
}
