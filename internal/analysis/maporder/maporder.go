// Package maporder flags `range` over a map in sim-critical packages.
//
// Go randomises map iteration order per range, so any map range whose
// body can influence simulated state, event ordering or emitted
// telemetry breaks the byte-identical determinism every result in this
// repo depends on. That includes loops that "only" sum floats: float
// addition is not associative, so even a commutative-looking
// accumulation is order-sensitive in the last bits. The analyzer is
// therefore conservative — every map range in a protected package is
// flagged — and order-insensitive loops a human has audited (integer
// counting, set membership, writes into another map under distinct
// keys) carry a //pfsim:orderok annotation on or directly above the
// range statement.
package maporder

import (
	"go/ast"
	"go/types"

	"pfsim/internal/analysis/framework"
)

// Analyzer flags nondeterministic map iteration in sim-critical
// packages.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc:  "flags range over a map in sim-critical packages; iteration order is nondeterministic and must not reach simulated state (suppress audited loops with //pfsim:orderok)",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	if !framework.SimCritical(pass.Pkg.Path()) {
		return nil, nil
	}
	dirs := framework.NewDirectives(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if dirs.Has(rs.Pos(), "orderok") {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s iterates in nondeterministic order inside a sim-critical package; iterate sorted keys, or audit the loop as order-insensitive and annotate //pfsim:orderok",
				types.ExprString(rs.X))
			return true
		})
	}
	return nil, nil
}
