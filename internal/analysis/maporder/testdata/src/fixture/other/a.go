// Package other is outside the sim-critical set: map ranges here are
// not the determinism linter's business.
package other

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
