// Package flow is a maporder fixture shaped like the sim-critical
// packages: map ranges are flagged unless audited, and the
// non-map ranges the real code uses (slices, arrays of maps) stay
// silent.
package flow

import "sort"

type link struct{ name string }

type loadMap map[*link]float64

func sumLoads(loads map[*link]float64) float64 {
	total := 0.0
	for _, v := range loads { // want `range over map loads iterates in nondeterministic order`
		total += v
	}
	return total
}

func sumNamed(loads loadMap) float64 {
	total := 0.0
	for _, v := range loads { // want `range over map loads`
		total += v
	}
	return total
}

func sortedNames(loads map[string]float64) []string {
	names := make([]string, 0, len(loads))
	//pfsim:orderok — keys are collected then sorted before any use
	for name := range loads {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func countJobs(classJobs [3]map[int]int) int {
	n := 0
	for c := range classJobs { // array range, not a map range
		n += len(classJobs[c])
	}
	return n
}

func slices(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

func trailing(m map[int]int) int {
	n := 0
	for range m { //pfsim:orderok — pure cardinality count
		n++
	}
	return n
}
