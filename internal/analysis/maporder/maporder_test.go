package maporder_test

import (
	"testing"

	"pfsim/internal/analysis/analysistest"
	"pfsim/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maporder.Analyzer,
		"fixture/internal/flow", "fixture/other")
}
