// Package tool shows barego applies outside internal/ too: cmd tools
// must not detach goroutines the engine cannot unwind.
package tool

func progress(tick func()) {
	go tick() // want `bare go statement outside internal/pool and internal/sim`
}
