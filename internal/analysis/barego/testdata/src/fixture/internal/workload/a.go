// Package workload is a barego fixture: goroutines spawned outside the
// pool/engine machinery are flagged unless audited.
package workload

func launch(jobs []func()) {
	for _, j := range jobs {
		go j() // want `bare go statement outside internal/pool and internal/sim`
	}
}

func spawnAudited(j func()) chan struct{} {
	done := make(chan struct{})
	//pfsim:goroutineok — joined by the caller via done before any sim state is read
	go func() {
		j()
		close(done)
	}()
	return done
}
