// Package pool owns concurrency: bare go statements are its job.
package pool

func fan(work []func()) {
	done := make(chan struct{})
	for _, w := range work {
		w := w
		go func() { // concurrency owner: legal
			w()
			done <- struct{}{}
		}()
	}
	for range work {
		<-done
	}
}
