package barego_test

import (
	"testing"

	"pfsim/internal/analysis/analysistest"
	"pfsim/internal/analysis/barego"
)

func TestBareGo(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), barego.Analyzer,
		"fixture/internal/pool", "fixture/internal/workload", "fixture/cmd/tool")
}
