// Package barego forbids bare `go` statements outside the two packages
// that own concurrency: internal/pool (the deterministic fan-out
// worker pool) and internal/sim (the engine's process machinery).
//
// Every goroutine in the simulator must be reachable by
// Engine.Drain/cancellation or owned by pool.Fan's bounded workers;
// PR 5's stop/cancel hardening exists precisely because stray
// goroutines parked on channels pinned whole engine runs. A goroutine
// spawned anywhere else — a cmd tool, an example, a future tuning
// controller — escapes that machinery, so it must either go through
// the pool or carry a //pfsim:goroutineok annotation recording the
// audit (e.g. "joined before return, no sim state touched").
//
// Since PR 9 the allowlist is tighter in practice than in policy:
// workloads dispatch as inline engine tasks (sim.Task continuations on
// the event heap), so a steady-state simulation's only goroutines are
// the solver pool's workers and whatever still runs on the sim.Proc
// compatibility shim — the one remaining `go` statement in internal/sim.
// The allowlist keeps both packages because the shim is property-tested
// against task dispatch and stays until the last Proc caller converts.
package barego

import (
	"go/ast"
	"strings"

	"pfsim/internal/analysis/framework"
)

// Analyzer flags go statements outside the concurrency-owning packages.
var Analyzer = &framework.Analyzer{
	Name: "barego",
	Doc:  "forbids bare go statements outside internal/pool and internal/sim; goroutines elsewhere escape Engine.Drain and pool ownership (suppress audited spawns with //pfsim:goroutineok)",
	Run:  run,
}

// concurrencyOwners are the package-path tails allowed to spawn
// goroutines directly.
var concurrencyOwners = []string{"internal/pool", "internal/sim"}

func run(pass *framework.Pass) (any, error) {
	path := pass.Pkg.Path()
	for _, tail := range concurrencyOwners {
		if path == tail || strings.HasSuffix(path, "/"+tail) {
			return nil, nil
		}
	}
	dirs := framework.NewDirectives(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if dirs.Has(gs.Pos(), "goroutineok") {
				return true
			}
			pass.Reportf(gs.Pos(),
				"bare go statement outside internal/pool and internal/sim escapes Engine.Drain and pool ownership; use pool.Fan, or audit the spawn and annotate //pfsim:goroutineok")
			return true
		})
	}
	return nil, nil
}
