package statsmerge_test

import (
	"testing"

	"pfsim/internal/analysis/analysistest"
	"pfsim/internal/analysis/statsmerge"
)

func TestStatsMerge(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), statsmerge.Analyzer,
		"fixture/internal/flow", "fixture/internal/workload", "fixture/other")
}
