// Package flow is a statsmerge fixture shaped like the real solver
// package: per-worker counter structs with merge methods.
package flow

// Stats counts solver work.
type Stats struct {
	Solves  int64
	Rounds  int64
	HeapOps int64
	scratch int //pfsim:nomerge — per-solve scratch, reset not folded
}

// merge folds o into s but forgets HeapOps; the exempt scratch field
// must not be reported.
func (s *Stats) merge(o *Stats) { // want `merge method "merge" does not touch field\(s\) HeapOps of flow.Stats`
	s.Solves += o.Solves
	s.Rounds += o.Rounds
	*o = Stats{}
}

// Counters is the well-merged sibling.
type Counters struct {
	Visits int64
	Scans  int64
}

// Merge folds every field: clean.
func (c *Counters) Merge(o *Counters) {
	c.Visits += o.Visits
	c.Scans += o.Scans
}

// merge on a non-matching shape (no same-type parameter) is not a
// fold; the solver's component merge has this shape.
type net struct{ comps int }

type component struct{ flows int }

func (n *net) merge(a, b *component) *component {
	n.comps--
	a.flows += b.flows
	return a
}
