// Package workload is a statsmerge fixture for the cross-package and
// aggregate rules: folds of an imported counter struct and Aggregate
// methods that summarise per-shard results.
package workload

import "fixture/internal/flow"

// Agg summarises jobs across shards.
type Agg struct {
	MeanMBs      float64
	MaxMBs       float64
	MeanSlowdown float64
}

// Result is one shard's outcome.
type Result struct{ mbs []float64 }

// Aggregate drops MeanSlowdown — the exact PR 5 bug shape.
func (r *Result) Aggregate() Agg { // want `aggregate function "Aggregate" does not touch field\(s\) MeanSlowdown of workload.Agg`
	var a Agg
	for _, v := range r.mbs {
		a.MeanMBs += v
		if v > a.MaxMBs {
			a.MaxMBs = v
		}
	}
	return a
}

// Sharded is many shards.
type Sharded struct{ shards []*Result }

// Aggregate via composite literal touches every field: clean.
func (s *Sharded) Aggregate() Agg {
	var mean, max, slow float64
	for range s.shards {
		mean, max, slow = mean+1, max+1, slow+1
	}
	return Agg{MeanMBs: mean, MaxMBs: max, MeanSlowdown: slow}
}

// foldStats accumulates an imported counter struct but forgets
// HeapOps; flow's unexported scratch field is out of reach here and
// must not be reported.
//
//pfsim:mergeall flow.Stats
func foldStats(dst, src *flow.Stats) { // want `annotated fold "foldStats" does not touch field\(s\) HeapOps of flow.Stats`
	dst.Solves += src.Solves
	dst.Rounds += src.Rounds
}

// foldAll is the clean cross-package fold.
//
//pfsim:mergeall flow.Stats
func foldAll(dst, src *flow.Stats) {
	dst.Solves += src.Solves
	dst.Rounds += src.Rounds
	dst.HeapOps += src.HeapOps
}
