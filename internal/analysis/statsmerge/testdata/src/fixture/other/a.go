// Package other is outside the sim-critical set: merge methods here
// are not auto-checked, but an explicit //pfsim:mergeall annotation
// still binds.
package other

type tally struct {
	hits   int
	misses int
}

// merge outside the critical set: not auto-checked even though it
// forgets misses.
func (t *tally) merge(o *tally) {
	t.hits += o.hits
}

// foldTally opts in via the directive and is held to it.
//
//pfsim:mergeall tally
func foldTally(dst, src *tally) { // want `annotated fold "foldTally" does not touch field\(s\) misses of other.tally`
	dst.hits += src.hits
}
