// Package statsmerge makes "a new counter silently dropped at
// parallelism > 1 or in shard aggregation" a lint failure instead of a
// parity-debugging session.
//
// The hazard class is real: PR 5 shipped two fixes of exactly this
// shape (per-shard slowdown fields dropped by ShardedResult.Aggregate,
// solver counters lost across the per-worker merge). The analyzer
// checks that designated fold functions touch every field of the
// struct they fold. A function is checked when it matches one of:
//
//   - auto-merge: a method named merge/Merge in a sim-critical package
//     whose receiver base type T is a struct and which takes another T
//     (or *T) parameter — the per-worker stats merge shape
//     (flow.Stats.merge);
//   - auto-aggregate: a function named Aggregate in a sim-critical
//     package returning exactly one struct value — the cross-shard
//     summary shape (Result.Aggregate, ShardedResult.Aggregate);
//   - annotated: any function whose doc comment carries
//     `//pfsim:mergeall T` (or `pkg.T` for an imported type).
//
// "Touch" means a field selection on a value of the target type or a
// keyed entry in a composite literal of it. Fields that are genuinely
// not foldable carry //pfsim:nomerge on their declaration (honoured
// when the struct is declared in the analyzed package).
package statsmerge

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"pfsim/internal/analysis/framework"
)

// Analyzer enforces exhaustive field coverage in merge/aggregate
// functions.
var Analyzer = &framework.Analyzer{
	Name: "statsmerge",
	Doc:  "requires merge/Merge and Aggregate functions (and any function annotated //pfsim:mergeall T) to touch every field of the folded struct, so new counters cannot be silently dropped at parallelism > 1 or in shard aggregation (exempt fields with //pfsim:nomerge)",
	Run:  run,
}

// target is one function obligated to cover every field of typ.
type target struct {
	fn   *ast.FuncDecl
	typ  *types.Named
	rule string // rule noun for the diagnostic message
}

func run(pass *framework.Pass) (any, error) {
	critical := framework.SimCritical(pass.Pkg.Path())
	var targets []target
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if critical {
				if typ := mergeTarget(pass, fn); typ != nil {
					targets = append(targets, target{fn, typ, "merge method"})
				}
				if typ := aggregateTarget(pass, fn); typ != nil {
					targets = append(targets, target{fn, typ, "aggregate function"})
				}
			}
			for _, arg := range framework.DocDirectives(fn.Doc, "mergeall") {
				typ, err := resolveType(pass, arg)
				if err != nil {
					pass.Reportf(fn.Name.Pos(), "//pfsim:mergeall %s: %v", arg, err)
					continue
				}
				targets = append(targets, target{fn, typ, "annotated fold"})
			}
		}
	}
	for _, tg := range targets {
		checkTarget(pass, tg)
	}
	return nil, nil
}

// mergeTarget reports the struct a merge-shaped method folds: receiver
// base type T (a struct) with a parameter of type T or *T.
func mergeTarget(pass *framework.Pass, fn *ast.FuncDecl) *types.Named {
	if fn.Name.Name != "merge" && fn.Name.Name != "Merge" || fn.Recv == nil {
		return nil
	}
	sig := signature(pass, fn)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	recv := namedStruct(sig.Recv().Type())
	if recv == nil {
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if p := namedStruct(sig.Params().At(i).Type()); p != nil && types.Identical(p, recv) {
			return recv
		}
	}
	return nil
}

// aggregateTarget reports the struct an Aggregate-shaped function
// produces: exactly one result, a named struct.
func aggregateTarget(pass *framework.Pass, fn *ast.FuncDecl) *types.Named {
	if fn.Name.Name != "Aggregate" {
		return nil
	}
	sig := signature(pass, fn)
	if sig == nil || sig.Results().Len() != 1 {
		return nil
	}
	return namedStruct(sig.Results().At(0).Type())
}

func signature(pass *framework.Pass, fn *ast.FuncDecl) *types.Signature {
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return nil
	}
	return obj.Type().(*types.Signature)
}

// namedStruct unwraps pointers and reports the named struct type, or
// nil if t is anything else.
func namedStruct(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// resolveType resolves a //pfsim:mergeall argument: "T" in the package
// scope, or "pkg.T" through the package's imports (matched by package
// name).
func resolveType(pass *framework.Pass, arg string) (*types.Named, error) {
	var obj types.Object
	if pkgName, typeName, ok := strings.Cut(arg, "."); ok {
		for _, imp := range pass.Pkg.Imports() {
			if imp.Name() == pkgName {
				obj = imp.Scope().Lookup(typeName)
				break
			}
		}
	} else {
		obj = pass.Pkg.Scope().Lookup(arg)
	}
	if obj == nil {
		return nil, fmt.Errorf("type not found")
	}
	named := namedStruct(obj.Type())
	if named == nil {
		return nil, fmt.Errorf("%s is not a struct type", arg)
	}
	return named, nil
}

// checkTarget verifies the function touches every required field of
// the target struct.
func checkTarget(pass *framework.Pass, tg target) {
	st := tg.typ.Underlying().(*types.Struct)
	exempt := exemptFields(pass, tg.typ)
	foreign := tg.typ.Obj().Pkg() != pass.Pkg
	touched := touchedFields(pass, tg.fn, tg.typ)
	var missing []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		// Unexported fields of an imported struct cannot be folded from
		// here; their coverage is the defining package's obligation.
		if f.Name() == "_" || exempt[f.Name()] || touched[f] || (foreign && !f.Exported()) {
			continue
		}
		missing = append(missing, f.Name())
	}
	if len(missing) == 0 {
		return
	}
	pass.Reportf(tg.fn.Name.Pos(),
		"%s %q does not touch field(s) %s of %s; a field missing from the fold is silently dropped at parallelism > 1 or in shard aggregation — merge it, or annotate the field //pfsim:nomerge",
		tg.rule, tg.fn.Name.Name, strings.Join(missing, ", "), typeLabel(tg.typ))
}

func typeLabel(typ *types.Named) string {
	if p := typ.Obj().Pkg(); p != nil {
		return p.Name() + "." + typ.Obj().Name()
	}
	return typ.Obj().Name()
}

// exemptFields collects //pfsim:nomerge annotations from the struct's
// declaration when it lives in the analyzed package. For imported
// targets the declaration is not in this pass, so no exemptions apply.
func exemptFields(pass *framework.Pass, typ *types.Named) map[string]bool {
	exempt := map[string]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			if pass.TypesInfo.Defs[ts.Name] != typ.Obj() {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return false
			}
			for _, field := range st.Fields.List {
				if len(framework.DocDirectives(field.Doc, "nomerge")) == 0 &&
					len(framework.DocDirectives(field.Comment, "nomerge")) == 0 {
					continue
				}
				for _, name := range field.Names {
					exempt[name.Name] = true
				}
			}
			return false
		})
	}
	return exempt
}

// touchedFields collects the fields of typ the function body mentions,
// via field selection or keyed composite literal entries.
func touchedFields(pass *framework.Pass, fn *ast.FuncDecl, typ *types.Named) map[*types.Var]bool {
	st := typ.Underlying().(*types.Struct)
	owns := map[types.Object]*types.Var{}
	for i := 0; i < st.NumFields(); i++ {
		owns[st.Field(i)] = st.Field(i)
	}
	touched := map[*types.Var]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel := pass.TypesInfo.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
				if f, ok := owns[sel.Obj()]; ok {
					touched[f] = true
				}
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok || namedStruct(tv.Type) == nil || !types.Identical(namedStruct(tv.Type), typ) {
				return true
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok {
					if f, ok := owns[pass.TypesInfo.Uses[key]]; ok {
						touched[f] = true
					}
				}
			}
		}
		return true
	})
	return touched
}
