// Package sim is the shim's home: declaring and implementing the Proc
// API here is allowed, so this package must produce no findings.
package sim

type Engine struct{ procs int }

type Proc struct{ eng *Engine }

type Task struct{ eng *Engine }

type Signal struct{ fired bool }

type Resource struct{ inUse int }

// Spawn starts a goroutine-backed shim process.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{eng: e}
	e.procs++
	return p
}

// StartTask begins an inline task.
func (e *Engine) StartTask(delay float64, label string, id int, body func(*Task)) *Task {
	return &Task{eng: e}
}

// Wait blocks the shim process until the signal fires.
func (p *Proc) Wait(s *Signal) {}

// Sleep blocks the shim process for d seconds.
func (p *Proc) Sleep(d float64) {}

// Use acquires, holds for service seconds, and releases (shim form).
func (r *Resource) Use(p *Proc, service float64) { r.inUse++ }

// UseTask is the inline-task form of Use.
func (r *Resource) UseTask(t *Task, service float64, k func()) { k() }
