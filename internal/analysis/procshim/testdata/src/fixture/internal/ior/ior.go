// Package ior exercises every shim-surface class the procshim analyzer
// counts: the spawn entry point, Proc type references, Proc methods,
// blocking resource forms, and cross-package proc-mode calls — next to
// a task-mode driver that must stay silent.
package ior

import (
	"fixture/internal/plfs"
	"fixture/internal/sim"
)

// Legacy drives the workload through the goroutine-backed shim.
func Legacy(e *sim.Engine, r *sim.Resource, s *sim.Signal) {
	e.Spawn("w", func(p *sim.Proc) { // want `shim Proc API call sim\.Engine\.Spawn outside internal/sim` `shim type sim\.Proc referenced outside internal/sim`
		plfs.Write(p, s) // want `call to proc-mode function Write \(takes \*sim\.Proc\) outside internal/sim`
		r.Use(p, 1)      // want `shim Proc API call sim\.Resource\.Use outside internal/sim`
		p.Sleep(2)       // want `shim Proc API call sim\.Proc\.Sleep outside internal/sim`
	})
}

// Modern drives the same workload as an inline task: clean.
func Modern(e *sim.Engine, r *sim.Resource) {
	e.StartTask(0, "w", 1, func(t *sim.Task) {
		plfs.WriteK(t, r, func() {})
	})
}
