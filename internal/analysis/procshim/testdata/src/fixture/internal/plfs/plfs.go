// Package plfs carries a proc-mode API surface: the *sim.Proc
// parameter makes every declaration and call part of the ratcheted
// shim inventory.
package plfs

import "fixture/internal/sim"

// Write is the proc-mode form of a log append.
func Write(p *sim.Proc, s *sim.Signal) { // want `shim type sim\.Proc referenced outside internal/sim`
	p.Wait(s) // want `shim Proc API call sim\.Proc\.Wait outside internal/sim`
}

// WriteK is the inline-task form: no shim surface, no findings.
func WriteK(t *sim.Task, r *sim.Resource, k func()) {
	r.UseTask(t, 1, k)
}
