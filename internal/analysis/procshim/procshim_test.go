package procshim_test

import (
	"testing"

	"pfsim/internal/analysis/analysistest"
	"pfsim/internal/analysis/procshim"
)

// TestProcshim checks every counted shim-surface class (type
// references, spawn entry points, Proc methods, blocking resource
// forms, cross-package *sim.Proc-taking calls), that task-mode code
// stays silent, and that the shim's home package is exempt.
func TestProcshim(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), procshim.Analyzer,
		"fixture/internal/ior", "fixture/internal/plfs", "fixture/internal/sim")
}
