// Package procshim defines an analyzer inventorying callers of the
// goroutine-backed Proc compatibility shim outside internal/sim.
//
// PR 9 rewrote workload dispatch onto inline resumable tasks; the
// channel-rendezvous Proc API survives only as a property-tested
// compatibility shim, and ROADMAP item 2 defers its deletion until the
// remaining callers are converted. This analyzer makes that deferral a
// monotone budget: every reference to the shim surface outside
// internal/sim is a finding, and pfsim-lint's ratchet mechanism
// (-ratchet ratchet.json) compares per-package finding counts against a
// committed baseline, failing only when a count grows. New code
// therefore cannot reach for the shim, while existing audited callers
// keep building until their conversion PR shrinks the budget.
//
// The shim surface is:
//
//   - any mention of the sim.Proc type (parameters, fields, variables);
//   - the spawn entry points Engine.Spawn/SpawnAfter/SpawnIndexed and
//     every method on *sim.Proc;
//   - the blocking resource forms Resource.Acquire and Resource.Use;
//   - calls to any function taking a *sim.Proc parameter (the
//     cross-package proc-mode surface, e.g. an MDS.Create proc form).
//
// There is deliberately no directive escape hatch: the committed
// ratchet baseline is the audit trail, updated with -ratchet-update.
package procshim

import (
	"go/ast"
	"go/types"

	"pfsim/internal/analysis/framework"
)

// Analyzer flags shim Proc API usage outside internal/sim.
var Analyzer = &framework.Analyzer{
	Name: "procshim",
	Doc: "inventory goroutine-backed Proc shim usage outside internal/sim\n\n" +
		"Every reference to the sim.Proc type, spawn/blocking shim primitive, or\n" +
		"*sim.Proc-taking function is a finding. pfsim-lint's ratchet compares\n" +
		"per-package counts to the committed ratchet.json baseline and fails\n" +
		"only on growth, so the shim's caller set can only shrink.",
	Run: run,
}

const simTail = "internal/sim"

func run(pass *framework.Pass) (any, error) {
	if framework.HasPathTail(pass.Pkg.Path(), simTail) {
		return nil, nil // the shim's home is allowed to implement it
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if isProcTypeName(info.Uses[n]) {
					pass.Reportf(n.Pos(), "shim type sim.Proc referenced outside internal/sim; new code must use the inline task forms (budgeted by the procshim ratchet)")
				}
			case *ast.CallExpr:
				callee := framework.StaticCallee(n, info)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				if desc, ok := shimPrimitive(callee); ok {
					pass.Reportf(n.Pos(), "shim Proc API call %s outside internal/sim; new code must use the inline task forms (budgeted by the procshim ratchet)", desc)
					return true
				}
				if takesProc(callee) {
					pass.Reportf(n.Pos(), "call to proc-mode function %s (takes *sim.Proc) outside internal/sim; new code must use the inline task forms (budgeted by the procshim ratchet)", framework.FuncName(callee))
				}
			}
			return true
		})
	}
	return nil, nil
}

// isProcTypeName reports whether obj is the Proc type name declared in
// an internal/sim package.
func isProcTypeName(obj types.Object) bool {
	tn, ok := obj.(*types.TypeName)
	return ok && tn.Name() == "Proc" && tn.Pkg() != nil &&
		framework.HasPathTail(tn.Pkg().Path(), simTail)
}

// shimPrimitive classifies direct calls into the shim API declared by
// internal/sim: the spawn entry points, every *Proc method, and the
// blocking resource forms.
func shimPrimitive(fn *types.Func) (string, bool) {
	if !framework.HasPathTail(fn.Pkg().Path(), simTail) {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	switch named.Obj().Name() {
	case "Proc":
		return "sim.Proc." + fn.Name(), true
	case "Engine":
		switch fn.Name() {
		case "Spawn", "SpawnAfter", "SpawnIndexed":
			return "sim.Engine." + fn.Name(), true
		}
	case "Resource":
		switch fn.Name() {
		case "Acquire", "Use":
			return "sim.Resource." + fn.Name(), true
		}
	}
	return "", false
}

// takesProc reports whether any parameter of fn is *sim.Proc — the
// cross-package proc-mode surface.
func takesProc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		pt := params.At(i).Type()
		p, ok := pt.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := p.Elem().(*types.Named)
		if !ok {
			continue
		}
		if isProcTypeName(named.Obj()) {
			return true
		}
	}
	return false
}
