package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the slice of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") with the go command from dir,
// then parses and type-checks every matched package. Only GoFiles are
// analyzed: _test.go files intentionally exercise wall-clock waits and
// ad-hoc goroutines, so the determinism invariants bind shipped
// simulator code only.
//
// Imports between matched packages resolve to the loaded packages
// themselves (memoized, dependency-first), so every *types.Object is
// shared program-wide: a use of lustre.MDS.CreateK inside internal/mpiio
// is the same *types.Func the lustre package declares. That identity is
// what lets Program.CallGraph stitch per-package graphs into one
// cross-package reachability structure. Imports outside the matched set
// (the standard library) fall back to the source importer, so no
// pre-built export data is required. Packages return sorted by import
// path for deterministic output.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })

	fset := token.NewFileSet()
	ld := &setImporter{
		fset:     fset,
		listed:   map[string]*listedPackage{},
		loaded:   map[string]*Package{},
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		ld.listed[lp.ImportPath] = lp
	}
	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := ld.load(lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// setImporter type-checks the listed package set with shared object
// identity: an import of a listed package resolves to the checked
// package itself (loading it on first demand, dependency-first), and
// everything else — in practice the standard library — falls back to
// the source importer. Go forbids import cycles, so the recursion
// terminates.
type setImporter struct {
	fset     *token.FileSet
	listed   map[string]*listedPackage
	loaded   map[string]*Package
	fallback types.Importer
}

// Import implements types.Importer.
func (si *setImporter) Import(path string) (*types.Package, error) {
	if lp, ok := si.listed[path]; ok && len(lp.GoFiles) > 0 {
		pkg, err := si.load(lp)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return si.fallback.Import(path)
}

// load parses and type-checks one listed package (memoized).
func (si *setImporter) load(lp *listedPackage) (*Package, error) {
	if pkg, ok := si.loaded[lp.ImportPath]; ok {
		return pkg, nil
	}
	var files []string
	for _, f := range lp.GoFiles {
		files = append(files, filepath.Join(lp.Dir, f))
	}
	pkg, err := Check(si.fset, si, lp.ImportPath, lp.Dir, files)
	if err != nil {
		return nil, err
	}
	si.loaded[lp.ImportPath] = pkg
	return pkg, nil
}

// Check parses and type-checks one package from explicit file paths.
// It is the single type-checking entry point shared by Load and the
// analysistest harness (which supplies its own importer chain).
func Check(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	var parsed []*ast.File
	for _, fn := range files {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", fn, err)
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      parsed,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// goList shells out to `go list -json` in dir. The go command is the
// only authority on module-aware package resolution, and it works
// offline for a dependency-free module like this one.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var listed []*listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: go list output: %w", err)
		}
		listed = append(listed, &lp)
	}
	return listed, nil
}

// A Finding pairs a diagnostic with the analyzer and package that
// produced it.
type Finding struct {
	Analyzer *Analyzer
	Package  *Package
	Position token.Position
	Message  string
}

// Run applies every analyzer to every package and returns the findings
// sorted by file, line, column, then analyzer name — a stable order for
// golden-tested CLI output.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Finding, error) {
	return RunOn(NewProgram(pkgs), analyzers, pkgs)
}

// RunOn is Run with the program supplied by the caller, for drivers
// that analyze a subset of targets but need interprocedural analyzers
// to see the whole loaded set (analysistest checks one fixture package
// at a time against a program spanning all of them). Every target must
// be a package of prog.
func RunOn(prog *Program, analyzers []*Analyzer, targets []*Package) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range targets {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Prog:      prog,
			}
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a,
					Package:  pkg,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		pi, pj := findings[i].Position, findings[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return findings[i].Analyzer.Name < findings[j].Analyzer.Name
	})
	return findings, nil
}
