package framework

import (
	"go/ast"
	"go/types"
)

// CallGraph is a conservative static call graph over one package's own
// function and method declarations. Nodes are the package's *types.Func
// declarations; function literals are folded into the lexically
// enclosing declaration (a closure runs on whatever path its maker
// runs on). Edges cover:
//
//   - direct calls and references: any use of an in-package function or
//     method object inside a body — a call, a method value, a function
//     passed as an argument — is an edge, so work handed to an executor
//     (pool.Fan, go statements) stays in the graph;
//   - interface dispatch: a call through an interface-typed receiver
//     adds edges to every in-package method that implements it, found
//     by checking the package's named types against the interface;
//   - method sets: passing or converting a value of an in-package named
//     type to an interface parameter adds edges to the methods the
//     interface demands of it (e.g. handing &eventHeap to
//     container/heap reaches Push/Pop/Less/Swap/Len).
//
// Dynamic calls through plain func-typed fields and variables are not
// resolved; hot paths reached only that way carry their own
// //pfsim:hotpath roots (the convention the hotalloc analyzer
// documents). The graph is per-package: cross-package callees are not
// nodes, so each package annotates its own hot entry points.
type CallGraph struct {
	pkg   *types.Package
	funcs []*types.Func                 // declared functions, declaration order
	decls map[*types.Func]*ast.FuncDecl // declaration of each node
	edges map[*types.Func][]*types.Func // deduped callees, first-use order
}

// NewCallGraph builds the call graph for one type-checked package.
func NewCallGraph(files []*ast.File, pkg *types.Package, info *types.Info) *CallGraph {
	cg := &CallGraph{
		pkg:   pkg,
		decls: map[*types.Func]*ast.FuncDecl{},
		edges: map[*types.Func][]*types.Func{},
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			cg.funcs = append(cg.funcs, fn)
			cg.decls[fn] = fd
		}
	}
	ifaces := packageNamedTypes(pkg)
	for _, fn := range cg.funcs {
		cg.collectEdges(fn, cg.decls[fn], info, ifaces)
	}
	return cg
}

// packageNamedTypes lists the package-scope named types in scope order —
// the candidate implementers for interface-dispatch resolution.
func packageNamedTypes(pkg *types.Package) []*types.Named {
	var named []*types.Named
	scope := pkg.Scope()
	for _, name := range scope.Names() { // Names is sorted: deterministic
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if ok && !tn.IsAlias() {
			if nt, ok := tn.Type().(*types.Named); ok {
				named = append(named, nt)
			}
		}
	}
	return named
}

// collectEdges walks one declaration's body (function literals included)
// and records every reachable in-package function.
func (cg *CallGraph) collectEdges(fn *types.Func, decl *ast.FuncDecl, info *types.Info, named []*types.Named) {
	if decl.Body == nil {
		return
	}
	seen := map[*types.Func]bool{}
	add := func(callee *types.Func) {
		if callee == nil || callee == fn || seen[callee] {
			return
		}
		if _, inPkg := cg.decls[callee]; !inPkg {
			return
		}
		seen[callee] = true
		cg.edges[fn] = append(cg.edges[fn], callee)
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if callee, ok := info.Uses[n].(*types.Func); ok {
				add(callee)
			}
		case *ast.CallExpr:
			// Interface dispatch: x.M() with interface-typed x reaches
			// every in-package implementation of M.
			if se, ok := n.Fun.(*ast.SelectorExpr); ok {
				if callee, ok := info.Uses[se.Sel].(*types.Func); ok {
					if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
						if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
							for _, impl := range implementations(iface, callee.Name(), named, cg.pkg) {
								add(impl)
							}
						}
					}
				}
			}
			// Method sets: a concrete in-package value passed where an
			// interface is expected makes the interface's methods on
			// that type callable by the callee.
			if sig := callSignature(n, info); sig != nil {
				for i, arg := range n.Args {
					pt := paramType(sig, i)
					iface, ok := pt.Underlying().(*types.Interface)
					if !ok || iface.NumMethods() == 0 {
						continue
					}
					at := info.Types[arg].Type
					if at == nil {
						continue
					}
					for _, m := range methodSetIn(at, iface, cg.pkg) {
						add(m)
					}
				}
			}
		}
		return true
	})
}

// callSignature resolves a call expression's signature, nil for builtins
// and type conversions.
func callSignature(call *ast.CallExpr, info *types.Info) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramType returns the type of parameter i, unrolling the variadic tail.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return last
	}
	if i < params.Len() {
		return params.At(i).Type()
	}
	return types.Typ[types.Invalid]
}

// implementations finds the in-package concrete methods named name on
// types satisfying iface.
func implementations(iface *types.Interface, name string, named []*types.Named, pkg *types.Package) []*types.Func {
	var impls []*types.Func
	for _, nt := range named {
		if types.IsInterface(nt) {
			continue
		}
		if !types.Implements(nt, iface) && !types.Implements(types.NewPointer(nt), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(nt), true, pkg, name)
		if m, ok := obj.(*types.Func); ok {
			impls = append(impls, m)
		}
	}
	return impls
}

// methodSetIn returns t's in-package methods that iface demands, for a
// concrete (non-interface) t handed to an interface parameter.
func methodSetIn(t types.Type, iface *types.Interface, pkg *types.Package) []*types.Func {
	if types.IsInterface(t) {
		return nil
	}
	var ms []*types.Func
	for i := 0; i < iface.NumMethods(); i++ {
		obj, _, _ := types.LookupFieldOrMethod(t, true, pkg, iface.Method(i).Name())
		if m, ok := obj.(*types.Func); ok && m.Pkg() == pkg {
			ms = append(ms, m)
		}
	}
	return ms
}

// FuncName renders a function or method the way diagnostics name them:
// "fixCapped", "Net.flushWork".
func FuncName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// Funcs returns the package's declared functions in declaration order.
func (cg *CallGraph) Funcs() []*types.Func { return cg.funcs }

// DeclOf returns the declaration node of an in-package function, nil for
// functions outside the graph.
func (cg *CallGraph) DeclOf(fn *types.Func) *ast.FuncDecl { return cg.decls[fn] }

// Callees returns fn's in-package callees in first-use order.
func (cg *CallGraph) Callees(fn *types.Func) []*types.Func { return cg.edges[fn] }

// Reachable computes the closure of roots over the edges, skipping any
// function prune reports true for (pruned functions are neither visited
// nor traversed). The result maps each reached function to the root it
// was first reached from — BFS over roots in order, so attribution is
// deterministic — roots included, mapped to themselves.
func (cg *CallGraph) Reachable(roots []*types.Func, prune func(*types.Func) bool) map[*types.Func]*types.Func {
	reached := map[*types.Func]*types.Func{}
	type item struct{ fn, root *types.Func }
	var queue []item
	for _, r := range roots {
		if prune != nil && prune(r) {
			continue
		}
		if _, ok := reached[r]; ok {
			continue
		}
		reached[r] = r
		queue = append(queue, item{r, r})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, callee := range cg.edges[it.fn] {
			if _, ok := reached[callee]; ok {
				continue
			}
			if prune != nil && prune(callee) {
				continue
			}
			reached[callee] = it.root
			queue = append(queue, item{callee, it.root})
		}
	}
	return reached
}
