// Package framework is a self-contained miniature of the
// golang.org/x/tools/go/analysis API, built only on the standard
// library's go/ast, go/types and go/importer. The container this repo
// grows in has no module proxy access, so vendoring x/tools is not an
// option; the types here keep the same names and shapes (Analyzer,
// Pass, Diagnostic, Pass.Reportf) so the analyzers under
// internal/analysis can be ported to the real framework by swapping an
// import path if the dependency ever becomes available.
//
// The framework exists for one purpose: the determinism lint suite run
// by cmd/pfsim-lint. Every simulated result in this repo is required to
// be byte-identical across runs, platforms and solver parallelism
// settings, and the analyzers enforce the source-level invariants that
// property tests can only spot-check (see the "Determinism rules"
// section of the README).
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check. It is the unit cmd/pfsim-lint
// selects with -run and the unit analysistest exercises.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flag values. By
	// convention it is a single lowercase word.
	Name string
	// Doc is the analyzer's help text; the first line is shown by
	// pfsim-lint -list.
	Doc string
	// Run applies the analyzer to one package. Diagnostics go through
	// pass.Report; the result value is unused by this framework (kept
	// for x/tools signature compatibility).
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	// Analyzer is the check being applied.
	Analyzer *Analyzer
	// Fset maps token positions for Files.
	Fset *token.FileSet
	// Files are the package's parsed source files (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds type and object resolution for Files.
	TypesInfo *types.Info
	// Prog is the whole loaded package set, for interprocedural
	// analyzers that stitch reachability across packages (taskctx).
	// Per-package analyzers can ignore it.
	Prog *Program
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	cg *CallGraph // lazily built by CallGraph
}

// CallGraph returns the package's static call graph, built on first use
// and cached for the rest of the pass.
func (p *Pass) CallGraph() *CallGraph {
	if p.cg == nil {
		p.cg = NewCallGraph(p.Files, p.Pkg, p.TypesInfo)
	}
	return p.cg
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// simCritical lists the package-path tails whose source must stay
// deterministic: any map-iteration order, wall-clock read or unmanaged
// goroutine in these packages can leak into simulated state, event
// ordering or emitted telemetry. cmd tools, examples and the analysis
// packages themselves are deliberately outside the set (barego has its
// own, stricter applicability — see its doc).
var simCritical = []string{
	"internal/flow",
	"internal/sim",
	"internal/lustre",
	"internal/workload",
	"internal/stats",
}

// SimCritical reports whether the import path names one of the
// packages the determinism invariants apply to. Matching is by path
// tail so that analysistest fixtures (fixture/internal/flow) classify
// the same way as the real module (pfsim/internal/flow).
func SimCritical(path string) bool {
	for _, tail := range simCritical {
		if HasPathTail(path, tail) {
			return true
		}
	}
	return false
}

// HasPathTail reports whether the import path is tail or ends in
// "/"+tail — the fixture-friendly package matching every analyzer in
// this suite uses (pfsim/internal/sim and fixture/internal/sim both
// match "internal/sim").
func HasPathTail(path, tail string) bool {
	return path == tail || strings.HasSuffix(path, "/"+tail)
}

// SimCriticalList returns the protected path tails (for documentation
// output; callers must not mutate it).
func SimCriticalList() []string { return simCritical }
