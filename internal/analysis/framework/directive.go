package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces every suppression/instruction comment the
// lint suite understands: //pfsim:orderok, //pfsim:wallclockok,
// //pfsim:goroutineok, //pfsim:mergeall T, //pfsim:nomerge. Like go:
// directives they must be line comments with no space after the slashes.
const directivePrefix = "//pfsim:"

// Directives indexes every //pfsim: comment of a package by file and
// line, so analyzers can answer "is this statement annotated?" without
// rescanning comment lists per node.
type Directives struct {
	fset *token.FileSet
	// byLine maps file name → line → directives on that line. A
	// directive suppresses a node on its own line or on the line
	// directly below it (the usual "comment above the statement" form).
	byLine map[string]map[int][]string
}

// NewDirectives scans the files' comments for //pfsim: directives.
func NewDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{fset: fset, byLine: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					d.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], text)
			}
		}
	}
	return d
}

// Has reports whether directive name (without the //pfsim: prefix)
// annotates the node at pos: on the same line (trailing comment) or on
// the line immediately above (leading comment).
func (d *Directives) Has(pos token.Pos, name string) bool {
	p := d.fset.Position(pos)
	return d.HasAt(p.Filename, p.Line, name)
}

// HasAt is Has for callers holding a plain file/line position instead
// of a token.Pos — the escape cross-checker matches compiler
// diagnostics, which arrive as file:line:col text.
func (d *Directives) HasAt(filename string, line int, name string) bool {
	for _, l := range [2]int{line, line - 1} {
		for _, text := range d.byLine[filename][l] {
			if text == name || strings.HasPrefix(text, name+" ") {
				return true
			}
		}
	}
	return false
}

// DocDirectives returns the arguments of every directive named name in
// a declaration's doc comment group (nil cg is fine). A bare directive
// contributes an empty-string argument.
func DocDirectives(cg *ast.CommentGroup, name string) []string {
	if cg == nil {
		return nil
	}
	var args []string
	for _, c := range cg.List {
		text, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		if text == name {
			args = append(args, "")
		} else if rest, ok := strings.CutPrefix(text, name+" "); ok {
			args = append(args, strings.TrimSpace(rest))
		}
	}
	return args
}
