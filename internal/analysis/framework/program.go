package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Program is the whole loaded package set viewed as one unit. Load
// type-checks the set with shared object identity (see setImporter), so
// a *types.Func declared in internal/sim is the same object at its use
// sites in internal/ior — which is what makes a program-wide call graph
// well-defined. Interprocedural analyzers (taskctx) reach it through
// Pass.Prog; per-package analyzers ignore it.
type Program struct {
	pkgs    []*Package
	byPath  map[string]*Package
	byTypes map[*types.Package]*Package
	dirs    map[*Package]*Directives
	cg      *ProgramCallGraph
	memo    map[string]any
}

// NewProgram assembles a program from packages that were type-checked
// together (one Load call, or one analysistest importer tree).
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		byPath:  map[string]*Package{},
		byTypes: map[*types.Package]*Package{},
		dirs:    map[*Package]*Directives{},
		memo:    map[string]any{},
	}
	p.pkgs = append(p.pkgs, pkgs...)
	for _, pkg := range pkgs {
		p.byPath[pkg.ImportPath] = pkg
		p.byTypes[pkg.Types] = pkg
	}
	return p
}

// Packages returns the loaded packages sorted by import path.
func (p *Program) Packages() []*Package { return p.pkgs }

// Package returns the loaded package with the given import path, nil if
// it is not part of the program.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// PackageFor maps a type-checker package back to its loaded Package,
// nil for packages outside the program (the standard library).
func (p *Program) PackageFor(t *types.Package) *Package { return p.byTypes[t] }

// Directives returns the //pfsim: directive index for one package,
// built on first use and shared by every analyzer in the run.
func (p *Program) Directives(pkg *Package) *Directives {
	d := p.dirs[pkg]
	if d == nil {
		d = NewDirectives(pkg.Fset, pkg.Files)
		p.dirs[pkg] = d
	}
	return d
}

// CallGraph returns the program-wide call graph, built on first use.
func (p *Program) CallGraph() *ProgramCallGraph {
	if p.cg == nil {
		p.cg = newProgramCallGraph(p)
	}
	return p.cg
}

// Memo returns the cached value for key, calling build once on first
// use. Interprocedural analyzers run once per package but compute
// program-wide results; Memo lets the first pass pay and the rest read.
// The driver is sequential, so no locking is needed.
func (p *Program) Memo(key string, build func() any) any {
	if v, ok := p.memo[key]; ok {
		return v
	}
	v := build()
	p.memo[key] = v
	return v
}

// A Node is one function body in the program call graph: either a
// declared function/method (Fn, Decl set) or a function literal (Lit,
// Parent set). Literals are first-class nodes — unlike the per-package
// CallGraph, which folds them into the enclosing declaration — because
// context-sensitivity lives exactly there: ior.StartJob contains both a
// shim-mode literal handed to World.Launch and a task-mode literal
// handed to World.LaunchTasks, and only the latter runs in task context.
type Node struct {
	Fn   *types.Func   // declared functions; nil for literals
	Decl *ast.FuncDecl // declaration; nil for literals
	Lit  *ast.FuncLit  // literals; nil for declarations
	Pkg  *Package      // the package the body lives in

	// Literal placement metadata, set for Lit nodes only.
	Parent *Node // lexically enclosing node
	// GoCall marks a literal launched directly by a go statement
	// (go func(){...}()): its body runs on the new goroutine, not on
	// the path that spawned it.
	GoCall bool
	// ArgCallee is the declared function this literal is passed to as a
	// direct call argument (Await(t, func(){...}) → Signal.Await), nil
	// when the literal is not a direct argument. Policy layers use it to
	// decide whether the literal escapes the caller's context.
	ArgCallee *types.Func
}

// Body returns the node's function body.
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the node's source position.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Name renders the node for diagnostics: "Net.flushWork" for
// declarations, "func literal in Net.flushWork" for literals.
func (n *Node) Name() string {
	if n.Fn != nil {
		return FuncName(n.Fn)
	}
	top := n
	for top.Parent != nil {
		top = top.Parent
	}
	if top.Fn != nil {
		return "func literal in " + FuncName(top.Fn)
	}
	return "func literal"
}

// ProgramCallGraph is the conservative static call graph over every
// function body in the program, literals included. Edges cover the same
// constructs as the per-package CallGraph — direct calls and
// references, interface dispatch, method-set escapes to interface
// parameters — but resolve across package boundaries, and nested
// function literals are linked to their enclosing node as containment
// edges carrying placement metadata (GoCall, ArgCallee) so analyzers
// can choose which closures share their maker's execution context.
// Dynamic calls through func-typed fields and variables remain
// unresolved, the same conservatism the per-package graph documents.
type ProgramCallGraph struct {
	prog    *Program
	nodes   []*Node
	byFn    map[*types.Func]*Node
	byLit   map[*ast.FuncLit]*Node
	callees map[*Node][]*Node // edges to declared-function nodes
	lits    map[*Node][]*Node // containment edges to literal nodes
}

func newProgramCallGraph(prog *Program) *ProgramCallGraph {
	cg := &ProgramCallGraph{
		prog:    prog,
		byFn:    map[*types.Func]*Node{},
		byLit:   map[*ast.FuncLit]*Node{},
		callees: map[*Node][]*Node{},
		lits:    map[*Node][]*Node{},
	}
	// Pass 1: declared nodes, so cross-package references resolve no
	// matter the package order.
	var decls []*Node
	for _, pkg := range prog.pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Fn: fn, Decl: fd, Pkg: pkg}
				cg.nodes = append(cg.nodes, n)
				cg.byFn[fn] = n
				decls = append(decls, n)
			}
		}
	}
	// Candidate implementers for interface dispatch, program-wide.
	named := cg.programNamedTypes()
	// Pass 2: edges (creating literal nodes as they are encountered).
	for _, n := range decls {
		if n.Decl.Body != nil {
			cg.walkBody(n, n.Decl.Body, named)
		}
	}
	return cg
}

// programNamedTypes lists package-scope named types across the program
// in (package, scope) order — deterministic because packages are sorted
// by import path and scope names are sorted.
func (cg *ProgramCallGraph) programNamedTypes() []*types.Named {
	var named []*types.Named
	for _, pkg := range cg.prog.pkgs {
		named = append(named, packageNamedTypes(pkg.Types)...)
	}
	return named
}

// walkBody records node's edges: declared-function references (direct
// calls, method values, functions passed as arguments), interface
// dispatch, method-set escapes, and containment edges to nested
// literals. Nested literals are walked recursively as their own nodes.
func (cg *ProgramCallGraph) walkBody(node *Node, body *ast.BlockStmt, named []*types.Named) {
	info := node.Pkg.Info
	seen := map[*Node]bool{}
	add := func(callee *types.Func) {
		target := cg.byFn[callee]
		if target == nil || target == node || seen[target] {
			return
		}
		seen[target] = true
		cg.callees[node] = append(cg.callees[node], target)
	}
	// Placement metadata is discovered on the way down (preorder visits
	// a go statement or call before the literal it launches or carries).
	goCall := map[*ast.FuncLit]bool{}
	argCallee := map[*ast.FuncLit]*types.Func{}
	skipIdent := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := &Node{
				Lit:       n,
				Pkg:       node.Pkg,
				Parent:    node,
				GoCall:    goCall[n],
				ArgCallee: argCallee[n],
			}
			cg.nodes = append(cg.nodes, lit)
			cg.byLit[n] = lit
			cg.lits[node] = append(cg.lits[node], lit)
			cg.walkBody(lit, n.Body, named)
			return false // the literal owns its body
		case *ast.GoStmt:
			switch fun := ast.Unparen(n.Call.Fun).(type) {
			case *ast.FuncLit:
				goCall[fun] = true
			case *ast.Ident:
				// go namedFunc(...): the body runs on the new goroutine,
				// not on this node's path — the go statement itself is
				// what context-discipline analyzers flag.
				skipIdent[fun] = true
			case *ast.SelectorExpr:
				skipIdent[fun.Sel] = true
			}
		case *ast.Ident:
			if skipIdent[n] {
				return true
			}
			if callee, ok := info.Uses[n].(*types.Func); ok {
				add(callee)
			}
		case *ast.CallExpr:
			if callee := StaticCallee(n, info); callee != nil {
				for _, arg := range n.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						argCallee[lit] = callee
					}
				}
			}
			// Interface dispatch: x.M() with interface-typed x reaches
			// every implementation of M in the program.
			if se, ok := n.Fun.(*ast.SelectorExpr); ok {
				if callee, ok := info.Uses[se.Sel].(*types.Func); ok {
					if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
						if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
							for _, impl := range cg.implementationsIn(iface, callee.Name(), named) {
								add(impl)
							}
						}
					}
				}
			}
			// Method sets: a concrete program value passed where an
			// interface is expected makes the interface's methods on
			// that type callable by the callee.
			if sig := callSignature(n, info); sig != nil {
				for i, arg := range n.Args {
					pt := paramType(sig, i)
					iface, ok := pt.Underlying().(*types.Interface)
					if !ok || iface.NumMethods() == 0 {
						continue
					}
					at := info.Types[arg].Type
					if at == nil {
						continue
					}
					for _, m := range cg.methodSet(at, iface) {
						add(m)
					}
				}
			}
		}
		return true
	})
}

// implementationsIn finds the concrete methods named name on program
// types satisfying iface.
func (cg *ProgramCallGraph) implementationsIn(iface *types.Interface, name string, named []*types.Named) []*types.Func {
	var impls []*types.Func
	for _, nt := range named {
		if types.IsInterface(nt) {
			continue
		}
		if !types.Implements(nt, iface) && !types.Implements(types.NewPointer(nt), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(nt), true, nt.Obj().Pkg(), name)
		if m, ok := obj.(*types.Func); ok {
			impls = append(impls, m)
		}
	}
	return impls
}

// methodSet returns t's program-declared methods that iface demands,
// for a concrete t handed to an interface parameter.
func (cg *ProgramCallGraph) methodSet(t types.Type, iface *types.Interface) []*types.Func {
	if types.IsInterface(t) {
		return nil
	}
	var ms []*types.Func
	for i := 0; i < iface.NumMethods(); i++ {
		obj, _, _ := types.LookupFieldOrMethod(t, true, iface.Method(i).Pkg(), iface.Method(i).Name())
		if m, ok := obj.(*types.Func); ok && cg.byFn[m] != nil {
			ms = append(ms, m)
		}
	}
	return ms
}

// StaticCallee resolves a call expression to the declared function or
// method it statically invokes — through a plain identifier or a
// selector — nil for builtins, conversions, and dynamic calls through
// func values.
func StaticCallee(call *ast.CallExpr, info *types.Info) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Nodes returns every node — declarations in (package, file, order)
// position, literals appended as encountered — a deterministic order.
func (cg *ProgramCallGraph) Nodes() []*Node { return cg.nodes }

// NodeOf returns the node of a declared function, nil for functions
// outside the program.
func (cg *ProgramCallGraph) NodeOf(fn *types.Func) *Node { return cg.byFn[fn] }

// NodeOfLit returns the node of a function literal, nil for literals
// outside the program's walked bodies.
func (cg *ProgramCallGraph) NodeOfLit(lit *ast.FuncLit) *Node { return cg.byLit[lit] }

// Callees returns the declared-function nodes the body references, in
// first-use order.
func (cg *ProgramCallGraph) Callees(n *Node) []*Node { return cg.callees[n] }

// Lits returns the function literals nested directly in the body, in
// source order. Whether a literal shares its maker's execution context
// is policy — callers consult GoCall/ArgCallee.
func (cg *ProgramCallGraph) Lits(n *Node) []*Node { return cg.lits[n] }
