package taskctx_test

import (
	"testing"

	"pfsim/internal/analysis/analysistest"
	"pfsim/internal/analysis/taskctx"
)

// TestTaskctx checks root discovery (literal and function-value
// continuations), cross-package reachability (ior → flow), every
// flagged construct class, the go-launched-closure exemption, and both
// escape hatches. fixture/internal/sim is listed to assert the
// annotated engine miniature itself stays clean.
func TestTaskctx(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), taskctx.Analyzer,
		"fixture/internal/flow", "fixture/internal/ior", "fixture/internal/sim")
}
