// Package flow holds helpers reached cross-package from task
// continuations declared in fixture/internal/ior — the call-graph
// stitching the taskctx analyzer exists for.
package flow

// Blocky drains one element. Blocking on its own is fine; it becomes a
// finding only because ior reaches it from a Signal.Await continuation.
func Blocky(ch chan int) {
	<-ch // want `channel receive in task context \(reachable from Signal\.Await continuation at ior\.go:\d+\)`
}

// Clean is reachable from the same continuation but does nothing
// blocking.
func Clean(x int) int { return x + 1 }

// AuditedDrain is reached from task context too, but its audit
// directive prunes the traversal: nothing inside is reported.
//
//pfsim:taskctxok fixture audit: pretend this was proven safe
func AuditedDrain(ch chan int) {
	<-ch
	for range ch {
	}
}
