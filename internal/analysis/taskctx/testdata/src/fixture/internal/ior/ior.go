// Package ior exercises the taskctx analyzer: continuations handed to
// the annotated sim primitives, blocking constructs at every depth,
// cross-package reachability into fixture/internal/flow, and both
// escape-hatch forms.
package ior

import (
	"sync"

	"fixture/internal/flow"
	"fixture/internal/sim"
)

// Drive hands continuations to the CPS entry points; everything
// reachable from them is task context.
func Drive(e *sim.Engine, s *sim.Signal, r *sim.Resource, shim *sim.Proc, ch chan int, mu *sync.Mutex) {
	e.StartTask(0, "w", 1, func(t *sim.Task) {
		go drain(ch) // want `goroutine spawn in task context \(reachable from Engine\.StartTask continuation at ior\.go:\d+\)`
		ch <- 1      // want `channel send in task context`
		s.Await(t, func() {
			flow.Clean(1)
			flow.Blocky(ch) // reported inside flow, attributed to this Await
			flow.AuditedDrain(ch)
			mu.Lock() // want `blocking sync\.Mutex\.Lock call in task context \(reachable from Signal\.Await continuation`
		})
		r.AcquireTask(t, func() {
			shim.Wait(s) // want `blocking shim sim\.Proc\.Wait call in task context \(reachable from Resource\.AcquireTask continuation`
		})
	})
	eng, events = e, ch
	e.Schedule(0, pump)
}

// Package state so pump can be a plain func() — the method-value root
// shape Schedule accepts.
var (
	eng    *sim.Engine
	events chan int
)

// drain is launched by a go statement: the spawn itself is the finding,
// and the body runs on the new goroutine — its receive is legal there
// and must not be reported.
func drain(ch chan int) {
	<-ch
}

// pump enters task context as a function-value continuation (passed to
// Engine.Schedule by name, not as a literal).
func pump() {
	select { // want `select statement in task context \(reachable from Engine\.Schedule continuation`
	case <-events: // want `channel receive in task context`
	default:
	}
	for range events { // want `range over channel in task context`
	}
	_ = eng.Run() // want `re-entrant sim\.Engine\.Run call in task context`
	<-events      //pfsim:taskctxok fixture audit: line-level suppression of this one receive
}

// Escape runs the same shapes outside task context: literals handed to
// the audited shim spawn escape to goroutines, so nothing here is
// reported.
func Escape(e *sim.Engine, s *sim.Signal, r *sim.Resource, ch chan int) {
	e.Spawn("legacy", func(p *sim.Proc) {
		p.Wait(s)
		r.Acquire(p)
		<-ch
	})
}
