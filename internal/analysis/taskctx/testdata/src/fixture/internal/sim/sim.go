// Package sim is a miniature of the real engine surface: annotated CPS
// entry points, the blocking shim primitives, and an audited spawn
// path. It must stay clean under taskctx — the escape hatches on the
// shim machinery are part of what the fixture exercises.
package sim

type Engine struct{ tasks int }

type Task struct{ eng *Engine }

type Proc struct{ eng *Engine }

type Signal struct{ fired bool }

type Resource struct{ inUse int }

func NewEngine() *Engine { return &Engine{} }

// Schedule queues fn to run on the event loop after delay seconds.
//
//pfsim:taskctx
func (e *Engine) Schedule(delay float64, fn func()) {}

// StartTask begins an inline task; body runs on the event loop.
//
//pfsim:taskctx
func (e *Engine) StartTask(delay float64, label string, id int, body func(*Task)) *Task {
	t := &Task{eng: e}
	e.Schedule(delay, func() { body(t) })
	return t
}

// Run drives the event loop to completion.
func (e *Engine) Run() error { return nil }

// Spawn starts a goroutine-backed shim process.
//
//pfsim:taskctxok audited shim entry: the body escapes to an engine-managed goroutine
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	return &Proc{eng: e}
}

// Await runs k once the signal fires.
//
//pfsim:taskctx
func (s *Signal) Await(t *Task, k func()) {
	if s.fired {
		k()
	}
}

// Fire marks the signal fired.
func (s *Signal) Fire() { s.fired = true }

// Sleep runs k after d seconds of virtual time.
//
//pfsim:taskctx
func (t *Task) Sleep(d float64, k func()) { t.eng.Schedule(d, k) }

// AcquireTask grants the task a slot, running k once one is free.
//
//pfsim:taskctx
func (r *Resource) AcquireTask(t *Task, k func()) { k() }

// Wait blocks the shim process until the signal fires.
func (p *Proc) Wait(s *Signal) {}

// Sleep blocks the shim process for d seconds.
func (p *Proc) Sleep(d float64) {}

// Acquire blocks the shim process until a slot is free.
func (r *Resource) Acquire(p *Proc) { r.inUse++ }
