// Package taskctx defines an interprocedural analyzer enforcing the
// task-context discipline the PR 9 engine rewrite rests on.
//
// Workloads execute as inline resumable tasks: the event loop calls
// each parked continuation directly on its own goroutine (see
// sim.Task). That dispatch model is correct only under an invariant the
// compiler cannot see — code reachable from a task continuation must
// never block the calling goroutine or hand work to another one. A
// blocking Proc primitive (Signal.Wait, Resource.Acquire), a channel
// operation, a sync.Mutex held across events, or a re-entrant
// Engine.Run inside a continuation deadlocks or diverges the simulation
// silently; a go statement forks simulated state off the deterministic
// event order.
//
// The analyzer machine-checks the invariant. CPS entry points carry a
// //pfsim:taskctx doc directive (Task.Sleep, Signal.Await, AwaitAll,
// Resource.AcquireTask/UseTask, Engine.Schedule, flow.TransferThen, …);
// every function value passed to an annotated entry point is a task
// continuation, and the closure of bodies reachable from those
// continuations — across package boundaries, through the program call
// graph's literal-level nodes — must be free of:
//
//   - go statements;
//   - channel sends, receives, selects, and ranges over channels;
//   - blocking shim primitives (sim.Proc.Sleep/Wait/WaitAll,
//     sim.Resource.Acquire/Use);
//   - blocking sync operations (Mutex.Lock, RWMutex.Lock/RLock,
//     WaitGroup.Wait, Cond.Wait);
//   - re-entrant sim.Engine.Run/RunUntil.
//
// Escape hatch: //pfsim:taskctxok with an audited justification. As a
// doc directive it marks the whole function safe — the traversal stops
// there, and function literals passed to it as arguments are understood
// to escape task context (the audited shim spawn paths use this). As a
// line directive it suppresses one finding.
//
// Closures launched by a go statement are not traversed (the statement
// itself is the finding), and dynamic calls through func-typed fields
// stay invisible — the same conservatism the call graph documents, so
// continuations handed around via variables should be passed directly
// to the primitives where possible.
package taskctx

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"pfsim/internal/analysis/framework"
)

// Analyzer flags blocking constructs reachable from task continuations.
var Analyzer = &framework.Analyzer{
	Name: "taskctx",
	Doc: "flag blocking constructs reachable from inline task continuations\n\n" +
		"Function values passed to //pfsim:taskctx-annotated CPS entry points run\n" +
		"inline on the event loop; anything reachable from them (cross-package)\n" +
		"must not spawn goroutines, touch channels, call blocking Proc/sync\n" +
		"primitives, or re-enter Engine.Run. //pfsim:taskctxok escapes with audit.",
	Run: run,
}

const (
	dirTaskctx   = "taskctx"
	dirTaskctxOK = "taskctxok"
)

// finding is one violation, computed program-wide and reported by the
// pass whose package it lands in.
type finding struct {
	pkg *framework.Package
	pos token.Pos
	msg string
}

func run(pass *framework.Pass) (any, error) {
	if pass.Prog == nil {
		return nil, fmt.Errorf("taskctx requires a Program (run through framework.Run/RunOn)")
	}
	findings := pass.Prog.Memo("taskctx.findings", func() any {
		return compute(pass.Prog)
	}).([]finding)
	for _, f := range findings {
		if f.pkg.Types == pass.Pkg {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil, nil
}

// root records how a node entered task context: the annotated primitive
// its continuation was passed to, and where.
type root struct {
	prim *types.Func
	pos  token.Position
}

func compute(prog *framework.Program) []finding {
	cg := prog.CallGraph()

	// Directive lookup on declared functions, memoized.
	docHas := func(fn *types.Func, dir string) bool {
		n := cg.NodeOf(fn)
		return n != nil && n.Decl != nil && len(framework.DocDirectives(n.Decl.Doc, dir)) > 0
	}

	// Root discovery: function values at argument positions of calls to
	// //pfsim:taskctx entry points. Nodes() walks declarations and
	// literals in deterministic program order, and each body is scanned
	// without descending into nested literals (they are their own nodes).
	reached := map[*framework.Node]root{}
	type item struct {
		n *framework.Node
		r root
	}
	var queue []item
	visit := func(n *framework.Node, r root) {
		if _, ok := reached[n]; ok {
			return
		}
		if n.Decl != nil && docHas(n.Fn, dirTaskctxOK) {
			return
		}
		reached[n] = r
		queue = append(queue, item{n, r})
	}
	for _, n := range cg.Nodes() {
		body := n.Body()
		if body == nil {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(body, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := framework.StaticCallee(call, info)
			if callee == nil || !docHas(callee, dirTaskctx) {
				return true
			}
			r := root{prim: callee, pos: n.Pkg.Fset.Position(call.Pos())}
			for _, arg := range call.Args {
				switch arg := ast.Unparen(arg).(type) {
				case *ast.FuncLit:
					if ln := cg.NodeOfLit(arg); ln != nil {
						visit(ln, r)
					}
				case *ast.Ident:
					if fn, ok := info.Uses[arg].(*types.Func); ok {
						if dn := cg.NodeOf(fn); dn != nil {
							visit(dn, r)
						}
					}
				case *ast.SelectorExpr:
					if fn, ok := info.Uses[arg.Sel].(*types.Func); ok {
						if dn := cg.NodeOf(fn); dn != nil {
							visit(dn, r)
						}
					}
				}
			}
			return true
		})
	}

	// Closure over call edges and context-sharing literal containment.
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, callee := range cg.Callees(it.n) {
			visit(callee, it.r)
		}
		for _, lit := range cg.Lits(it.n) {
			if lit.GoCall {
				continue // runs on its own goroutine; the go statement is the finding
			}
			if lit.ArgCallee != nil && docHas(lit.ArgCallee, dirTaskctxOK) {
				continue // escapes into an audited sink (shim spawn paths)
			}
			visit(lit, it.r)
		}
	}

	// Scan reached bodies for violations, in deterministic node order.
	var out []finding
	for _, n := range cg.Nodes() {
		r, ok := reached[n]
		if !ok {
			continue
		}
		body := n.Body()
		if body == nil {
			continue
		}
		info := n.Pkg.Info
		dirs := prog.Directives(n.Pkg)
		report := func(pos token.Pos, desc string) {
			if dirs.Has(pos, dirTaskctxOK) {
				return
			}
			out = append(out, finding{
				pkg: n.Pkg,
				pos: pos,
				msg: fmt.Sprintf("%s in task context (reachable from %s continuation at %s:%d); the event loop must not block — restructure in continuation-passing style or annotate //pfsim:taskctxok with an audit note",
					desc, framework.FuncName(r.prim), filepath.Base(r.pos.Filename), r.pos.Line),
			})
		}
		ast.Inspect(body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false // its own node
			case *ast.GoStmt:
				report(x.Pos(), "goroutine spawn")
			case *ast.SendStmt:
				report(x.Arrow, "channel send")
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					report(x.OpPos, "channel receive")
				}
			case *ast.SelectStmt:
				report(x.Select, "select statement")
			case *ast.RangeStmt:
				if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						report(x.For, "range over channel")
					}
				}
			case *ast.CallExpr:
				if callee := framework.StaticCallee(x, info); callee != nil {
					if desc, bad := blockingCall(callee); bad {
						report(x.Pos(), desc)
					}
				}
			}
			return true
		})
	}
	return out
}

// blockingCall classifies calls that must not appear in task context:
// the goroutine-parking shim primitives, re-entrant engine runs, and
// blocking sync operations.
func blockingCall(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	recv := recvTypeName(fn)
	switch {
	case framework.HasPathTail(pkg.Path(), "internal/sim"):
		switch recv + "." + fn.Name() {
		case "Proc.Sleep", "Proc.Wait", "Proc.WaitAll":
			return "blocking shim sim." + recv + "." + fn.Name() + " call", true
		case "Resource.Acquire", "Resource.Use":
			return "blocking shim sim." + recv + "." + fn.Name() + " call", true
		case "Engine.Run", "Engine.RunUntil":
			return "re-entrant sim.Engine." + fn.Name() + " call", true
		}
	case pkg.Path() == "sync":
		switch recv + "." + fn.Name() {
		case "Mutex.Lock", "RWMutex.Lock", "RWMutex.RLock", "WaitGroup.Wait", "Cond.Wait":
			return "blocking sync." + recv + "." + fn.Name() + " call", true
		}
	}
	return "", false
}

// recvTypeName returns the name of the receiver's base type, "" for
// plain functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
