// Package sim is a wallclock fixture: wall-clock reads and global RNG
// draws are flagged, explicitly seeded sources and pure time values
// are not.
package sim

import (
	"math/rand/v2"
	mrand "math/rand/v2"
	"time"
)

func clock() float64 {
	t := time.Now() // want `time.Now reads or waits on the wall clock`
	return float64(t.Unix())
}

func wait() {
	time.Sleep(time.Millisecond) // want `time.Sleep reads or waits on the wall clock`
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `time.Since reads or waits on the wall clock`
}

func pureValues() time.Duration {
	// Duration arithmetic and epoch construction are pure values: legal.
	return 3 * time.Second
}

func globalDraw() float64 {
	return rand.Float64() // want `math/rand/v2.Float64 draws from the globally-seeded RNG`
}

func renamedDraw() int {
	return mrand.IntN(10) // want `math/rand/v2.IntN draws from the globally-seeded RNG`
}

func seeded(seed uint64) float64 {
	r := rand.New(rand.NewPCG(seed, seed^1)) // explicit source: legal
	return r.Float64()
}

func audited() int64 {
	//pfsim:wallclockok — coarse log timestamp, never reaches sim state
	return time.Now().UnixNano()
}
