// Package other is outside the sim-critical set: cmd tools may time
// themselves.
package other

import "time"

func stopwatch() time.Time { return time.Now() }
