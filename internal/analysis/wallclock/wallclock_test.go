package wallclock_test

import (
	"testing"

	"pfsim/internal/analysis/analysistest"
	"pfsim/internal/analysis/wallclock"
)

func TestWallClock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), wallclock.Analyzer,
		"fixture/internal/sim", "fixture/other")
}
