// Package wallclock forbids wall-clock time and globally-seeded
// randomness in sim-critical packages.
//
// Simulation time advances only through the engine's virtual clock
// (sim.Engine.Now), and every random draw comes from the seeded,
// forkable RNG in internal/stats. A time.Now or global rand.Float64
// smuggled into a protected package ties results to the host machine
// and the run instant, silently breaking reproducibility. Explicitly
// seeded sources stay legal: rand.New, rand.NewPCG and friends are how
// internal/stats builds its deterministic generators.
package wallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"pfsim/internal/analysis/framework"
)

// Analyzer flags wall-clock reads and global RNG use in sim-critical
// packages.
var Analyzer = &framework.Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now/Sleep-style wall-clock access and globally-seeded math/rand in sim-critical packages; the virtual clock and the seeded RNG in internal/stats are the only legal sources (suppress audited uses with //pfsim:wallclockok)",
	Run:  run,
}

// forbiddenTime lists the time package functions that read or wait on
// the host clock. Pure-value helpers (time.Duration arithmetic,
// time.Unix construction) stay legal.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func run(pass *framework.Pass) (any, error) {
	if !framework.SimCritical(pass.Pkg.Path()) {
		return nil, nil
	}
	dirs := framework.NewDirectives(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			imported := pkgName.Imported().Path()
			name := sel.Sel.Name
			var why string
			switch {
			case imported == "time" && forbiddenTime[name]:
				why = "reads or waits on the wall clock; simulated time must come from the engine's virtual clock"
			case (imported == "math/rand" || imported == "math/rand/v2") && isGlobalRandFunc(pass, sel):
				why = "draws from the globally-seeded RNG; use the seeded RNG in internal/stats (explicit rand.New/NewPCG sources are fine)"
			default:
				return true
			}
			if dirs.Has(sel.Pos(), "wallclockok") {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s %s in a sim-critical package; annotate //pfsim:wallclockok only for audited non-semantic uses",
				imported, name, why)
			return true
		})
	}
	return nil, nil
}

// isGlobalRandFunc reports whether the selector names a package-level
// math/rand function that draws from the shared global source. The
// New* constructors (rand.New, rand.NewSource, rand.NewPCG,
// rand.NewChaCha8, rand.NewZipf) build explicitly seeded generators
// and are allowed; type names (rand.Rand) are not functions at all.
func isGlobalRandFunc(pass *framework.Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return !strings.HasPrefix(fn.Name(), "New")
}
