// Package analysistest runs an analyzer over packages laid out under a
// testdata/src tree and checks its diagnostics against `// want`
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest
// so the analyzer tests read like stock go/analysis tests.
//
// Layout: testdata/src/<importpath>/*.go, one directory per package.
// Fixture packages may import each other by those paths (resolved from
// the tree) and the standard library (resolved from GOROOT source), so
// cross-package checks — e.g. statsmerge reading struct fields from an
// imported fixture package — work without export data.
//
// Expectations annotate the offending line:
//
//	for k := range m { // want `range over map`
//
// Each backquoted or double-quoted string after `want` is a regular
// expression that must match one diagnostic reported on that line;
// diagnostics with no matching expectation, and expectations with no
// matching diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"pfsim/internal/analysis/framework"
)

// TestData returns the absolute path of the calling test's ./testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each package path from testdata/src, applies the analyzer,
// and checks diagnostics against the packages' // want comments. All
// listed packages (plus their fixture imports) form one Program, so an
// interprocedural analyzer sees the whole fixture set while each
// package's diagnostics are checked against its own want comments —
// list both ends of a cross-package fixture so every diagnostic lands
// in a checked package.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &treeImporter{
		root:     filepath.Join(testdata, "src"),
		fset:     fset,
		loaded:   map[string]*framework.Package{},
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	var targets []*framework.Package
	for _, path := range pkgPaths {
		pkg, err := imp.load(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		targets = append(targets, pkg)
	}
	// The program spans every package the loads pulled in, imports
	// included, sorted by path for deterministic node order.
	var all []*framework.Package
	for _, pkg := range imp.loaded {
		all = append(all, pkg)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ImportPath < all[j].ImportPath })
	prog := framework.NewProgram(all)
	for _, pkg := range targets {
		check(t, a, prog, pkg)
	}
}

// check runs the analyzer on one package and diffs diagnostics against
// expectations.
func check(t *testing.T, a *framework.Analyzer, prog *framework.Program, pkg *framework.Package) {
	t.Helper()
	findings, err := framework.RunOn(prog, []*framework.Analyzer{a}, []*framework.Package{pkg})
	if err != nil {
		t.Errorf("%s: %v", pkg.ImportPath, err)
		return
	}
	wants, err := parseWants(pkg)
	if err != nil {
		t.Errorf("%s: %v", pkg.ImportPath, err)
		return
	}
	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("%s:%d: unexpected diagnostic: %s",
				filepath.Base(f.Position.Filename), f.Position.Line, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				filepath.Base(w.file), w.line, w.re.String())
		}
	}
}

// A want is one expectation parsed from a `// want` comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// claim marks the first unmatched expectation that covers the finding.
func claim(wants []*want, f framework.Finding) bool {
	for _, w := range wants {
		if !w.matched && w.file == f.Position.Filename && w.line == f.Position.Line &&
			w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts expectations from the package's comments, sorted
// by position so failure output is stable.
func parseWants(pkg *framework.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want: %w", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %w", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants, nil
}

// splitPatterns parses the expectation list: whitespace-separated
// backquoted or double-quoted strings.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			q, err := strconv.QuotedPrefix(s)
			if err != nil {
				return nil, fmt.Errorf("bad quoted pattern in %q", s)
			}
			u, err := strconv.Unquote(q)
			if err != nil {
				return nil, err
			}
			out = append(out, u)
			s = strings.TrimSpace(s[len(q):])
		default:
			return nil, fmt.Errorf("pattern must be quoted or backquoted: %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want")
	}
	return out, nil
}

// treeImporter resolves import paths from the testdata/src tree first
// (memoized, so fixture packages importing each other share one
// types.Package identity) and falls back to compiling the standard
// library from GOROOT source.
type treeImporter struct {
	root     string
	fset     *token.FileSet
	loaded   map[string]*framework.Package
	fallback types.Importer
}

// Import implements types.Importer.
func (ti *treeImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(ti.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := ti.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ti.fallback.Import(path)
}

// load parses and type-checks one fixture package (memoized).
func (ti *treeImporter) load(path string) (*framework.Package, error) {
	if pkg, ok := ti.loaded[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ti.root, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg, err := framework.Check(ti.fset, ti, path, dir, files)
	if err != nil {
		return nil, err
	}
	ti.loaded[path] = pkg
	return pkg, nil
}
