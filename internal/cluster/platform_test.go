package cluster

import (
	"math"
	"testing"
)

func TestCabMatchesTableI(t *testing.T) {
	p := Cab()
	if err := p.Validate(); err != nil {
		t.Fatalf("Cab invalid: %v", err)
	}
	if p.Nodes != 1200 || p.CoresPerNode != 16 {
		t.Errorf("Cab compute = %d nodes × %d cores", p.Nodes, p.CoresPerNode)
	}
	if p.OSTs != 480 || p.OSSs != 32 {
		t.Errorf("Cab storage = %d OSTs / %d OSSs", p.OSTs, p.OSSs)
	}
	if p.MaxStripeCount != 160 {
		t.Errorf("stripe limit = %d, want 160 (Lustre 2.4.2)", p.MaxStripeCount)
	}
	if p.DefaultStripeCount != 2 || p.DefaultStripeSizeMB != 1 {
		t.Errorf("defaults = %d × %v MB, want 2 × 1 MB", p.DefaultStripeCount, p.DefaultStripeSizeMB)
	}
	if p.OSTsPerOSS() != 15 {
		t.Errorf("OSTs per OSS = %d, want 15", p.OSTsPerOSS())
	}
	if p.TotalCores() != 19200 {
		t.Errorf("total cores = %d, want 19200", p.TotalCores())
	}
}

func TestStampedeMatchesTableVI(t *testing.T) {
	p := Stampede()
	if err := p.Validate(); err != nil {
		t.Fatalf("Stampede invalid: %v", err)
	}
	if p.OSTs != 160 || p.OSSs != 58 {
		t.Errorf("Stampede storage = %d OSTs / %d OSSs, want 160/58", p.OSTs, p.OSSs)
	}
}

func TestNodesFor(t *testing.T) {
	p := Cab()
	cases := []struct{ procs, nodes int }{
		{1, 1}, {16, 1}, {17, 2}, {1024, 64}, {4096, 256}, {0, 1},
	}
	for _, c := range cases {
		if got := p.NodesFor(c.procs); got != c.nodes {
			t.Errorf("NodesFor(%d) = %d, want %d", c.procs, got, c.nodes)
		}
	}
}

func TestClassEfficiency(t *testing.T) {
	cp := ClassParams{BaseMBs: 100, RPCOverheadMB: 1}
	if got := cp.Efficiency(1); got != 0.5 {
		t.Errorf("eff(1) = %v, want 0.5", got)
	}
	if got := cp.Efficiency(0); got != 1 {
		t.Errorf("eff(0) = %v, want 1", got)
	}
	noOverhead := ClassParams{BaseMBs: 100}
	if got := noOverhead.Efficiency(0.1); got != 1 {
		t.Errorf("no-overhead eff = %v, want 1", got)
	}
	// Monotone increasing in RPC size.
	prev := 0.0
	for _, s := range []float64{0.5, 1, 4, 16, 64, 256} {
		e := cp.Efficiency(s)
		if e <= prev {
			t.Errorf("efficiency not increasing at %v MB: %v <= %v", s, e, prev)
		}
		prev = e
	}
}

func TestAggregatorEfficiencyPeaksNear128(t *testing.T) {
	// The dirty-window term must make 128 MB stripes the best of the
	// paper's Figure 1 series {32, 64, 128, 256}.
	p := Cab()
	sizes := []float64{32, 64, 128, 256}
	best, bestEff := 0.0, 0.0
	for _, s := range sizes {
		if e := p.AggregatorEfficiency(s); e > bestEff {
			best, bestEff = s, e
		}
	}
	if best != 128 {
		t.Errorf("aggregator efficiency argmax = %v MB, want 128", best)
	}
	// 1 MB stripes should be crippled (anchor: 4,075/15,609 ≈ 0.26).
	ratio := p.AggregatorEfficiency(1) / p.AggregatorEfficiency(128)
	if ratio < 0.2 || ratio > 0.35 {
		t.Errorf("1MB/128MB efficiency ratio = %v, want ~0.26", ratio)
	}
	if got := p.AggregatorEfficiency(0); got != 1 {
		t.Errorf("eff(0) = %v, want 1", got)
	}
}

func TestCalibrationAnchors(t *testing.T) {
	// Keep the headline calibration honest: these identities underpin the
	// experiment reproductions and must not drift silently.
	p := Cab()

	// Default config: 2 OSTs × 1 MB stripes ≈ 313 MB/s (OST-bound).
	coll := p.Class[ClassCollective]
	defaultBW := 2 * coll.BaseMBs * coll.Efficiency(1)
	if defaultBW < 280 || defaultBW < 0.8*313 || defaultBW > 1.2*313 {
		t.Errorf("default-config anchor = %.0f MB/s, want ≈313", defaultBW)
	}

	// Tuned config: 64 aggregators ≈ 15.6 GB/s (aggregator-bound).
	tuned := 64 * p.AggregatorMBs * p.AggregatorEfficiency(128)
	if tuned < 0.85*15609 || tuned > 1.15*15609 {
		t.Errorf("tuned anchor = %.0f MB/s, want ≈15609", tuned)
	}

	// Improvement factor ≈ 49×.
	if f := tuned / defaultBW; f < 40 || f > 60 {
		t.Errorf("improvement factor = %.1f×, want ≈49×", f)
	}

	// 1 MB stripes across 160 OSTs ≈ 4,075 MB/s.
	oneMB := 64 * p.AggregatorMBs * p.AggregatorEfficiency(1)
	if oneMB < 0.75*4075 || oneMB > 1.25*4075 {
		t.Errorf("1MB-stripe anchor = %.0f MB/s, want ≈4075", oneMB)
	}

	// PLFS small scale: 16 ranks × PLFSRankMBs ≈ 753 MB/s.
	if got := 16 * p.PLFSRankMBs; got < 0.8*753 || got > 1.2*753 {
		t.Errorf("PLFS 16-rank anchor = %.0f, want ≈753", got)
	}

	// PLFS 4,096 ranks (Table VII): the run is tail-dominated — the
	// hottest OST holds ~30 logs (Table IX observes up to 35). Tail time =
	// 200 MB per stream at A(30)/30, plus the serialized open storm,
	// should land near the paper's 3,069 MB/s.
	logc := p.Class[ClassLogAppend]
	a30 := logc.BaseMBs / logc.Penalty(30)
	tail := 200.0 / (a30 / 30.0)
	create := 4096 * 2 * p.PLFSCreateTime
	bw := 4096 * 400.0 / (tail + create)
	if bw < 0.6*3069 || bw > 1.6*3069 {
		t.Errorf("PLFS 4096-rank tail anchor = %.0f MB/s, want ≈3069", bw)
	}

	// PLFS 512 ranks: hottest OST ~8 logs — still nearly rank-rate-bound,
	// so the job is limited by PLFSRankMBs and the create storm
	// (paper: 10,723 MB/s).
	a8 := logc.BaseMBs / logc.Penalty(8)
	perStream := a8 / 8
	rankStream := p.PLFSRankMBs / 2
	if perStream < 0.9*rankStream {
		t.Errorf("512-rank hottest OST per-stream %.1f should stay near the rank cap %.1f", perStream, rankStream)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []func(*Platform){
		func(p *Platform) { p.Nodes = 0 },
		func(p *Platform) { p.CoresPerNode = -1 },
		func(p *Platform) { p.NICMBs = 0 },
		func(p *Platform) { p.BackboneMBs = -5 },
		func(p *Platform) { p.OSTs = 0 },
		func(p *Platform) { p.OSTs = 31 }, // fewer OSTs than OSSs
		func(p *Platform) { p.MaxStripeCount = 0 },
		func(p *Platform) { p.MaxStripeCount = 9999 },
		func(p *Platform) { p.DefaultStripeCount = 0 },
		func(p *Platform) { p.DefaultStripeSizeMB = 0 },
		func(p *Platform) { p.MDSOpTime = -1 },
		func(p *Platform) { p.AggregatorMBs = 0 },
		func(p *Platform) { p.PLFSRankMBs = 0 },
		func(p *Platform) { p.CollBufferMB = 0 },
		func(p *Platform) { p.PLFSSubdirs = 0 },
		func(p *Platform) { p.JitterCV = 0.9 },
		func(p *Platform) { p.Class[ClassCollective].BaseMBs = 0 },
		func(p *Platform) { p.Class[ClassLogAppend].ThrashGamma = -1 },
	}
	for i, mut := range mutations {
		p := Cab()
		mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassCollective.String() != "collective" ||
		ClassSequential.String() != "sequential" ||
		ClassLogAppend.String() != "log-append" {
		t.Errorf("class names wrong: %v %v %v", ClassCollective, ClassSequential, ClassLogAppend)
	}
	if s := StreamClass(9).String(); s != "class(9)" {
		t.Errorf("unknown class = %q", s)
	}
}

func TestThrashOrdering(t *testing.T) {
	// Log-append must thrash far harder than collective, which must thrash
	// harder than coordinated sequential streams — the paper's qualitative
	// ranking.
	p := Cab()
	// Compare realised penalties at high sharing (k = 17, the 4,096-rank
	// PLFS load): log-append must degrade hardest, coordinated sequential
	// streams least.
	if !(p.Class[ClassLogAppend].Penalty(17) > p.Class[ClassCollective].Penalty(17)) {
		t.Error("log-append should thrash more than collective at high load")
	}
	if !(p.Class[ClassCollective].Penalty(17) > p.Class[ClassSequential].Penalty(17)) {
		t.Error("collective should thrash more than sequential")
	}
	// Below its onset, log-append behaves like an unshared stream.
	if got := p.Class[ClassLogAppend].Penalty(3); got != 1 {
		t.Errorf("log-append penalty below onset = %v, want 1", got)
	}
	if math.Abs(p.Class[ClassSequential].BaseMBs-288) > 1 {
		t.Errorf("sequential base = %v, want 288 (Fig 2 anchor)", p.Class[ClassSequential].BaseMBs)
	}
}

func TestOSSOf(t *testing.T) {
	p := Cab()
	// Evenly divisible: OST 0 -> OSS 0, OST 479 -> OSS 31, 15 per OSS.
	counts := make([]int, p.OSSs)
	prev := 0
	for o := 0; o < p.OSTs; o++ {
		s := p.OSSOf(o)
		if s < prev {
			t.Fatalf("OSSOf not monotone at OST %d", o)
		}
		prev = s
		counts[s]++
	}
	for s, c := range counts {
		if c != 15 {
			t.Errorf("OSS %d hosts %d OSTs, want 15", s, c)
		}
	}
	// Uneven case (Stampede): every OSS hosts 2 or 3 of the 160 OSTs.
	sp := Stampede()
	sc := make([]int, sp.OSSs)
	for o := 0; o < sp.OSTs; o++ {
		sc[sp.OSSOf(o)]++
	}
	for s, c := range sc {
		if c < 2 || c > 3 {
			t.Errorf("Stampede OSS %d hosts %d OSTs, want 2-3", s, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic for out-of-range OST")
		}
	}()
	p.OSSOf(480)
}
