// Package cluster describes simulated computing platforms: node counts,
// network capacities, Lustre server populations and the calibrated service
// constants of the performance model. The Cab preset reproduces the
// environment of the paper (Table I: Cab + the lscratchc Lustre file
// system at LLNL); the Stampede preset covers the system from Behzad et
// al. [5] analysed in Table VI.
//
// Calibration: the paper publishes absolute bandwidths, so the model
// constants below were fitted to its headline numbers — see each field's
// comment for the anchor. The simulator aims to match the *shape* of every
// figure (who wins, by what factor, where crossovers fall), not to
// replicate the authors' testbed exactly.
package cluster

import (
	"errors"
	"fmt"
	"math"
)

// StreamClass identifies how an I/O stream exercises an OST. OST service
// capacity depends on the class and on how many independent jobs contend
// for the target.
type StreamClass int

const (
	// ClassCollective marks shared-file writes issued through collective
	// buffering (ad_lustre two-phase I/O): stripe-aligned, coordinated, so
	// streams of the same job do not self-interfere.
	ClassCollective StreamClass = iota
	// ClassSequential marks dedicated file-per-process streams writing
	// sequentially to their own file (the Figure 2 benchmark).
	ClassSequential
	// ClassLogAppend marks PLFS-style log appends: per-rank data+index
	// files producing interleaved small appends that thrash the target
	// when many logs share it.
	ClassLogAppend
	numClasses = 3
)

// String names the class for reports.
func (c StreamClass) String() string {
	switch c {
	case ClassCollective:
		return "collective"
	case ClassSequential:
		return "sequential"
	case ClassLogAppend:
		return "log-append"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ClassParams is the OST service model for one stream class.
type ClassParams struct {
	// BaseMBs is the aggregate OST bandwidth in MB/s for a single job of
	// this class at the ideal request size.
	BaseMBs float64
	// RPCOverheadMB shapes the request-size efficiency s/(s+RPCOverheadMB):
	// small RPCs waste service time on per-request costs. Zero disables the
	// penalty (sequential streams are already ideal).
	RPCOverheadMB float64
	// ThrashGamma, ThrashOnset and ThrashExponent degrade aggregate
	// capacity when k independent jobs share the target:
	//
	//	capacity /= 1 + ThrashGamma * max(0, k-ThrashOnset)^ThrashExponent
	//
	// Coordinated streams interfere mildly and linearly (onset 1,
	// exponent 1). Log-structured appends tolerate a handful of
	// co-resident logs (the disk scheduler absorbs them) and then thrash
	// superlinearly — the regime change behind PLFS's collapse between 512
	// and 4,096 ranks.
	ThrashGamma    float64
	ThrashOnset    float64
	ThrashExponent float64
}

// Penalty returns the thrash denominator for k concurrent jobs.
func (cp ClassParams) Penalty(k float64) float64 {
	if k <= cp.ThrashOnset {
		return 1
	}
	x := k - cp.ThrashOnset
	switch cp.ThrashExponent {
	case 1:
		return 1 + cp.ThrashGamma*x
	case 0:
		return 1 + cp.ThrashGamma
	default:
		return 1 + cp.ThrashGamma*math.Pow(x, cp.ThrashExponent)
	}
}

// Efficiency returns the request-size efficiency factor for an RPC of
// rpcMB megabytes.
func (cp ClassParams) Efficiency(rpcMB float64) float64 {
	if cp.RPCOverheadMB <= 0 || rpcMB <= 0 {
		return 1
	}
	return rpcMB / (rpcMB + cp.RPCOverheadMB)
}

// Platform is a full machine description. All bandwidths are MB/s, all
// times seconds.
type Platform struct {
	Name         string
	Nodes        int
	CoresPerNode int

	// NICMBs is the injection bandwidth of one compute node.
	NICMBs float64
	// BackboneMBs is the shared capacity between the compute interconnect
	// and the I/O network ("islanded I/O" on Cab). Anchor: four contending
	// jobs total 18,165 MB/s in Table V.
	BackboneMBs float64

	// OSTs is the number of object storage targets (Dtotal).
	OSTs int
	// OSSs is the number of object storage servers; OSTs spread evenly.
	OSSs int
	// OSSMBs is the per-OSS bandwidth cap.
	OSSMBs float64
	// MaxStripeCount is Lustre's per-file stripe limit (160 in v2.4.2).
	MaxStripeCount int
	// DefaultStripeCount/DefaultStripeSizeMB are the file system defaults
	// applied when a file is created without explicit hints (2 × 1 MB on
	// lscratchc).
	DefaultStripeCount  int
	DefaultStripeSizeMB float64

	// MDSOpTime is the metadata service time per namespace operation.
	MDSOpTime float64

	// Class holds the OST service model per stream class.
	Class [numClasses]ClassParams

	// AggregatorMBs is the sustained dispatch rate of one collective
	// buffering aggregator (client-side gather + RPC issue). Anchor: the
	// 64-node tuned IOR run peaks at 15,609 MB/s = 64 × ~244 MB/s.
	AggregatorMBs float64
	// AggRPCOverheadMB shapes aggregator dispatch efficiency with stripe
	// size: s/(s+AggRPCOverheadMB). Anchor: 160 stripes of 1 MB reach only
	// 4,075 MB/s (≈64 × 64 MB/s).
	AggRPCOverheadMB float64
	// AggDirtyLimitMB models Lustre client write-back cache pressure for
	// very large stripes: dispatch efficiency /= 1 + (s/AggDirtyLimitMB)^2.
	// This reproduces the mild drop from 128 MB to 256 MB stripes in Fig 1.
	AggDirtyLimitMB float64
	// AggPipelineOSTs models RPC pipelining in the stripe-aware ad_lustre
	// driver: an aggregator whose file domain spans more OSTs keeps more
	// server-side RPC windows in flight, so dispatch efficiency scales by
	// R/(R+AggPipelineOSTs) for a stripe count of R. This is why Figure 1
	// keeps improving (mildly) from 96 to 160 stripes even after the
	// aggregators saturate.
	AggPipelineOSTs float64
	// CollBufferMB is the collective buffer (cb_buffer_size hint) and the
	// largest contiguous chunk an aggregator sends per OST per round.
	CollBufferMB float64

	// PLFSRankMBs is the sustained log-append rate of one PLFS rank
	// (data + index streams through the PLFS library). Anchor: 16-proc
	// PLFS IOR reaches 753 MB/s ≈ 16 × 47.
	PLFSRankMBs float64
	// PLFSCreateTime is the effective serialized cost of creating one
	// backend file (container subdir DLM lock ping-pong across clients).
	// Anchor: the 4,096-proc PLFS run spends ~90 s in the open storm.
	PLFSCreateTime float64
	// PLFSSubdirs is the number of hashed backend subdirectories per
	// container (PLFS default 32).
	PLFSSubdirs int

	// JitterCV is the coefficient of variation of run-to-run multiplicative
	// noise applied to service rates, giving the simulator realistic
	// confidence intervals.
	JitterCV float64

	// Seed is the base RNG seed for simulations on this platform.
	Seed uint64
}

// Cab returns the calibrated model of Cab + lscratchc (Table I of the
// paper): 1,200 nodes of 2× 8-core Xeon E5-2670, InfiniBand fat-tree,
// Lustre 2.4.2 with 480 OSTs behind 32 I/O servers, ~30 GB/s theoretical.
func Cab() *Platform {
	return &Platform{
		Name:         "cab-lscratchc",
		Nodes:        1200,
		CoresPerNode: 16,

		NICMBs:      1600,
		BackboneMBs: 18500,

		OSTs:                480,
		OSSs:                32,
		OSSMBs:              950,
		MaxStripeCount:      160,
		DefaultStripeCount:  2,
		DefaultStripeSizeMB: 1,

		MDSOpTime: 0.0005,

		Class: [numClasses]ClassParams{
			// Anchors: default config (2 OSTs × 1 MB stripes) = 313 MB/s;
			// stripe-size-only tuning at 2 OSTs = 395 MB/s.
			ClassCollective: {BaseMBs: 210, RPCOverheadMB: 0.34,
				ThrashGamma: 0.10, ThrashOnset: 1, ThrashExponent: 1},
			// Anchor: Figure 2 single-writer per-process bandwidth ≈ 288 MB/s
			// with mild degradation at 16 contended writers.
			ClassSequential: {BaseMBs: 288, RPCOverheadMB: 0,
				ThrashGamma: 0.01, ThrashOnset: 1, ThrashExponent: 1},
			// Anchors (Table VII, tail-dominated): a handful of logs per
			// OST behave like sequential streams (512-rank PLFS stays
			// rank-rate/backbone-bound near 10 GB/s); past ~6 logs seek
			// thrash grows superlinearly, so the ~30-log hottest OST of a
			// 4,096-rank run drains at ~12 MB/s and pins the job at
			// ~3 GB/s while 2,048 ranks land near 6 GB/s.
			ClassLogAppend: {BaseMBs: 288, RPCOverheadMB: 0,
				ThrashGamma: 0.008, ThrashOnset: 6, ThrashExponent: 2.5},
		},

		AggregatorMBs:    262,
		AggRPCOverheadMB: 3,
		AggDirtyLimitMB:  900,
		AggPipelineOSTs:  12,
		CollBufferMB:     16,

		PLFSRankMBs:    47,
		PLFSCreateTime: 0.0114,
		PLFSSubdirs:    32,

		JitterCV: 0.035,
		Seed:     0x5eed,
	}
}

// Stampede returns the I/O configuration of the Stampede system analysed
// in Table VI (from Behzad et al. [5]): 160 OSTs across 58 OSSs. Compute
// constants reuse the Cab calibration; only the storage population differs,
// which is all Table VI depends on.
func Stampede() *Platform {
	p := Cab()
	p.Name = "stampede"
	p.Nodes = 6400
	p.OSTs = 160
	p.OSSs = 58
	p.Seed = 0x57a3
	return p
}

// Validate reports the first inconsistency in the platform description.
func (p *Platform) Validate() error {
	switch {
	case p.Nodes <= 0:
		return errors.New("cluster: Nodes must be positive")
	case p.CoresPerNode <= 0:
		return errors.New("cluster: CoresPerNode must be positive")
	case p.NICMBs <= 0 || p.BackboneMBs <= 0:
		return errors.New("cluster: network bandwidths must be positive")
	case p.OSTs <= 0 || p.OSSs <= 0 || p.OSTs < p.OSSs:
		return fmt.Errorf("cluster: need at least one OST per OSS (%d OSTs, %d OSSs)", p.OSTs, p.OSSs)
	case p.MaxStripeCount <= 0 || p.MaxStripeCount > p.OSTs:
		return fmt.Errorf("cluster: MaxStripeCount %d out of range (1..%d)", p.MaxStripeCount, p.OSTs)
	case p.DefaultStripeCount <= 0 || p.DefaultStripeCount > p.MaxStripeCount:
		return fmt.Errorf("cluster: DefaultStripeCount %d out of range", p.DefaultStripeCount)
	case p.DefaultStripeSizeMB <= 0:
		return errors.New("cluster: DefaultStripeSizeMB must be positive")
	case p.MDSOpTime < 0 || p.PLFSCreateTime < 0:
		return errors.New("cluster: service times must be non-negative")
	case p.AggregatorMBs <= 0 || p.PLFSRankMBs <= 0:
		return errors.New("cluster: dispatch rates must be positive")
	case p.CollBufferMB <= 0:
		return errors.New("cluster: CollBufferMB must be positive")
	case p.PLFSSubdirs <= 0:
		return errors.New("cluster: PLFSSubdirs must be positive")
	case p.JitterCV < 0 || p.JitterCV > 0.5:
		return fmt.Errorf("cluster: JitterCV %v out of range [0, 0.5]", p.JitterCV)
	}
	for c := 0; c < numClasses; c++ {
		if p.Class[c].BaseMBs <= 0 {
			return fmt.Errorf("cluster: class %v has non-positive base bandwidth", StreamClass(c))
		}
		if p.Class[c].ThrashGamma < 0 {
			return fmt.Errorf("cluster: class %v has negative thrash", StreamClass(c))
		}
	}
	return nil
}

// OSTsPerOSS returns how many OSTs each object storage server hosts,
// rounded up when the population does not divide evenly.
func (p *Platform) OSTsPerOSS() int { return (p.OSTs + p.OSSs - 1) / p.OSSs }

// OSSOf maps an OST index to its hosting OSS, spreading OSTs evenly.
func (p *Platform) OSSOf(ost int) int {
	if ost < 0 || ost >= p.OSTs {
		panic(fmt.Sprintf("cluster: OST %d out of range [0,%d)", ost, p.OSTs))
	}
	return ost * p.OSSs / p.OSTs
}

// TotalCores returns the machine's core count.
func (p *Platform) TotalCores() int { return p.Nodes * p.CoresPerNode }

// NodesFor returns the number of nodes a job of procs processes occupies
// (CoresPerNode ranks per node, as on Cab).
func (p *Platform) NodesFor(procs int) int {
	n := (procs + p.CoresPerNode - 1) / p.CoresPerNode
	if n < 1 {
		n = 1
	}
	return n
}

// AggregatorEfficiency returns the dispatch efficiency of an aggregator
// writing stripes of stripeMB: small stripes pay per-RPC cost, very large
// stripes stall on the client dirty-page window.
func (p *Platform) AggregatorEfficiency(stripeMB float64) float64 {
	if stripeMB <= 0 {
		return 1
	}
	eff := stripeMB / (stripeMB + p.AggRPCOverheadMB)
	if p.AggDirtyLimitMB > 0 {
		r := stripeMB / p.AggDirtyLimitMB
		eff /= 1 + r*r
	}
	return eff
}

// AggregatorPipelineFactor returns the stripe-aware driver's dispatch
// efficiency for a file striped over R OSTs (see AggPipelineOSTs). The
// +16 floor keeps narrow layouts from being over-penalised: an aggregator
// owning a single OST still pipelines within that stream.
func (p *Platform) AggregatorPipelineFactor(r int) float64 {
	if p.AggPipelineOSTs <= 0 || r <= 0 {
		return 1
	}
	x := float64(r) + 16
	return x / (x + p.AggPipelineOSTs)
}
