package sim

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(2.0, func() { order = append(order, 3) })
	e.Schedule(1.0, func() { order = append(order, 1) })
	e.Schedule(1.0, func() { order = append(order, 2) }) // same time: FIFO by seq
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 2.0 {
		t.Errorf("final time = %v, want 2", e.Now())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(5, func() {
		e.Schedule(-3, func() { fired = true })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired || e.Now() != 5 {
		t.Errorf("fired=%v now=%v", fired, e.Now())
	}
}

func TestNaNDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on NaN delay")
		}
	}()
	NewEngine().Schedule(math.NaN(), func() {})
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel is fine
	e.Cancel(nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestPendingTracksQueue(t *testing.T) {
	e := NewEngine()
	a := e.Schedule(1, func() {})
	b := e.Schedule(2, func() {})
	e.Schedule(3, func() {})
	if e.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", e.Pending())
	}
	e.Cancel(b)
	if e.Pending() != 2 {
		t.Fatalf("pending after cancel = %d, want 2", e.Pending())
	}
	e.Cancel(b) // double cancel must not decrement again
	if e.Pending() != 2 {
		t.Fatalf("pending after double cancel = %d, want 2", e.Pending())
	}
	if err := e.RunUntil(1.5); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending after firing one = %d, want 1", e.Pending())
	}
	e.Cancel(a) // cancelling a fired event is a no-op
	if e.Pending() != 1 {
		t.Fatalf("pending after cancelling fired = %d, want 1", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending after run = %d, want 0", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	if err := e.RunUntil(2.5); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || e.Now() != 2.5 {
		t.Errorf("fired=%v now=%v", fired, e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Errorf("after full run fired=%v", fired)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(float64(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Spawn("sleeper", func(p *Proc) {
		times = append(times, p.Now())
		p.Sleep(1.5)
		times = append(times, p.Now())
		p.Sleep(0.5)
		times = append(times, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1.5, 2.0}
	for i, w := range want {
		if times[i] != w {
			t.Errorf("times[%d] = %v, want %v", i, times[i], w)
		}
	}
	if e.LiveProcs() != 0 {
		t.Errorf("live procs = %d", e.LiveProcs())
	}
}

func TestSpawnAfter(t *testing.T) {
	e := NewEngine()
	start := -1.0
	e.SpawnAfter(3, "late", func(p *Proc) { start = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if start != 3 {
		t.Errorf("start = %v, want 3", start)
	}
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for i := 0; i < 20; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(float64(i % 5))
				log = append(log, fmt.Sprintf("%s@%v", p.Name(), p.Now()))
				p.Sleep(float64(i % 3))
				log = append(log, fmt.Sprintf("%s@%v", p.Name(), p.Now()))
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Error("two identical runs diverged")
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("go")
	var woke []string
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Wait(s)
			woke = append(woke, fmt.Sprintf("%s@%v", p.Name(), p.Now()))
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(2)
		s.Fire()
		s.Fire() // double fire ok
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke = %v", woke)
	}
	for _, w := range woke {
		if !strings.HasSuffix(w, "@2") {
			t.Errorf("waiter woke at wrong time: %s", w)
		}
	}
	// Waiting on an already-fired signal returns immediately.
	late := false
	e.Spawn("late", func(p *Proc) {
		p.Wait(s)
		late = true
		if p.Now() != 2 {
			t.Errorf("late waiter at %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !late {
		t.Error("late waiter never ran")
	}
}

func TestWaitAll(t *testing.T) {
	e := NewEngine()
	s1, s2 := e.NewSignal("a"), e.NewSignal("b")
	done := -1.0
	e.Spawn("waiter", func(p *Proc) {
		p.WaitAll(s1, s2)
		done = p.Now()
	})
	e.Spawn("f1", func(p *Proc) { p.Sleep(1); s1.Fire() })
	e.Spawn("f2", func(p *Proc) { p.Sleep(3); s2.Fire() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Errorf("WaitAll completed at %v, want 3", done)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("never")
	e.Spawn("stuck", func(p *Proc) { p.Wait(s) })
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Errorf("deadlock error should name the process: %v", err)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("disk", 1)
	var order []string
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("c%d", i), func(p *Proc) {
			p.Sleep(float64(i) * 0.001) // stagger arrivals
			r.Acquire(p)
			order = append(order, fmt.Sprintf("%s@%.3f", p.Name(), p.Now()))
			p.Sleep(1)
			r.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	want := []string{"c0@0.000", "c1@1.000", "c2@2.000"}
	for i, w := range want {
		if order[i] != w {
			t.Errorf("order[%d] = %s, want %s", i, order[i], w)
		}
	}
	if r.InUse() != 0 || r.QueueLen() != 0 {
		t.Errorf("resource not drained: inUse=%d queue=%d", r.InUse(), r.QueueLen())
	}
}

func TestResourceConcurrency(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("server", 3)
	finish := map[string]float64{}
	for i := 0; i < 6; i++ {
		i := i
		e.Spawn(fmt.Sprintf("c%d", i), func(p *Proc) {
			r.Use(p, 1)
			finish[p.Name()] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// First three run [0,1], second three [1,2].
	for i := 0; i < 6; i++ {
		want := 1.0
		if i >= 3 {
			want = 2.0
		}
		if got := finish[fmt.Sprintf("c%d", i)]; got != want {
			t.Errorf("c%d finished at %v, want %v", i, got, want)
		}
	}
}

func TestResourcePanics(t *testing.T) {
	e := NewEngine()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("want panic for capacity 0")
			}
		}()
		e.NewResource("bad", 0)
	}()
	r := e.NewResource("ok", 1)
	defer func() {
		if recover() == nil {
			t.Error("want panic for idle release")
		}
	}()
	r.Release()
}

func TestNestedSpawn(t *testing.T) {
	e := NewEngine()
	var childTime float64
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(1)
		done := e.NewSignal("child-done")
		e.Spawn("child", func(c *Proc) {
			c.Sleep(2)
			childTime = c.Now()
			done.Fire()
		})
		p.Wait(done)
		if p.Now() != 3 {
			t.Errorf("parent resumed at %v, want 3", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 3 {
		t.Errorf("child finished at %v, want 3", childTime)
	}
}

func TestProcDone(t *testing.T) {
	e := NewEngine()
	p := e.Spawn("quick", func(p *Proc) {})
	if p.Done() {
		t.Error("done before run")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Error("not done after run")
	}
	if p.Engine() != e {
		t.Error("Engine() mismatch")
	}
}

func TestStopBeforeRunIsHonoured(t *testing.T) {
	// A Stop issued before Run starts — e.g. by a failed synchronous job
	// launch — must prevent the run entirely. An earlier revision reset
	// the flag on entry, silently running the whole simulation and
	// delaying the launch error until completion.
	e := NewEngine()
	count := 0
	for i := 0; i < 5; i++ {
		e.Schedule(float64(i), func() { count++ })
	}
	e.Stop()
	if !e.Stopped() {
		t.Fatal("Stopped() false after Stop()")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("stopped engine fired %d events, want 0", count)
	}
	if e.Stopped() {
		t.Error("stop request not consumed by Run")
	}
}

func TestResumeAfterStop(t *testing.T) {
	// Each Run consumes one stop request, so a stopped engine can resume.
	e := NewEngine()
	count := 0
	for i := 0; i < 6; i++ {
		e.Schedule(float64(i), func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("first run fired %d events, want 2", count)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Errorf("after resume count = %d, want 6", count)
	}
}

func TestRescheduleMovesEvent(t *testing.T) {
	e := NewEngine()
	var fired []string
	ev := e.Schedule(5, func() { fired = append(fired, "moved") })
	e.Schedule(3, func() { fired = append(fired, "fixed") })
	if !e.Reschedule(ev, 1) {
		t.Fatal("Reschedule on a pending event returned false")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != "moved" || fired[1] != "fixed" {
		t.Errorf("fire order = %v, want [moved fixed]", fired)
	}
	if e.Now() != 3 {
		t.Errorf("now = %v, want 3", e.Now())
	}
}

// TestRescheduleResequences: a rescheduled event behaves exactly like a
// cancelled-and-reposted one — at its new instant it fires after events
// that were already queued there, even if it was created first.
func TestRescheduleResequences(t *testing.T) {
	e := NewEngine()
	var fired []string
	ev := e.Schedule(3, func() { fired = append(fired, "rescheduled") })
	e.Schedule(4, func() { fired = append(fired, "earlier-queued") })
	e.Schedule(2, func() {
		if !e.Reschedule(ev, 4) {
			t.Error("Reschedule failed")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"earlier-queued", "rescheduled"}
	if len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Errorf("fire order = %v, want %v", fired, want)
	}
}

func TestReschedulePastClampsToNow(t *testing.T) {
	e := NewEngine()
	ran := false
	var ev *Event
	ev = e.Schedule(10, func() { ran = true })
	e.Schedule(5, func() {
		if !e.Reschedule(ev, 1) {
			t.Error("Reschedule failed")
		}
		if ev.Time() != 5 {
			t.Errorf("event time = %v, want clamped to 5", ev.Time())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("rescheduled event never fired")
	}
	if e.Now() != 5 {
		t.Errorf("now = %v, want 5", e.Now())
	}
}

func TestRescheduleDeadEventsRefused(t *testing.T) {
	e := NewEngine()
	if e.Reschedule(nil, 1) {
		t.Error("Reschedule(nil) returned true")
	}
	cancelled := e.Schedule(1, func() {})
	e.Cancel(cancelled)
	if e.Reschedule(cancelled, 2) {
		t.Error("Reschedule on a cancelled event returned true")
	}
	fired := e.Schedule(1, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Reschedule(fired, 2) {
		t.Error("Reschedule on a fired event returned true")
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d after refused reschedules", e.Pending())
	}
}

func TestRescheduleNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on NaN reschedule")
		}
	}()
	e := NewEngine()
	ev := e.Schedule(1, func() {})
	e.Reschedule(ev, math.NaN())
}

// TestDrainKillsParkedProcs: a stopped run leaves processes parked on
// their resume channels (sleepers, signal waiters, resource queuers, and
// spawns whose start event never fired); Drain must unwind every one so
// no goroutine outlives the engine, and a completed run's Drain is a
// no-op.
func TestDrainKillsParkedProcs(t *testing.T) {
	before := runtime.NumGoroutine()
	e := NewEngine()
	sig := e.NewSignal("never")
	res := e.NewResource("gate", 1)
	e.Spawn("sleeper", func(p *Proc) { p.Sleep(100) })
	e.Spawn("waiter", func(p *Proc) { p.Wait(sig) })
	e.Spawn("holder", func(p *Proc) { res.Use(p, 100) })
	e.Spawn("queuer", func(p *Proc) { res.Use(p, 1) })
	e.SpawnAfter(50, "late", func(p *Proc) { p.Sleep(1) })
	e.Schedule(5, e.Stop)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.LiveProcs() != 5 {
		t.Fatalf("live procs after stop = %d, want 5", e.LiveProcs())
	}
	e.Drain()
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs after drain = %d, want 0", e.LiveProcs())
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("drain leaked goroutines: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	// Drain abandons the simulation wholesale: the killed sleepers' wake
	// events and the retired spawn's start event are cancelled, so
	// resuming the drained engine is a harmless no-op rather than a hang
	// (a wake event would block forever handing a token to an unwound
	// goroutine) or a double-spawn.
	if e.Pending() != 0 {
		t.Fatalf("drained engine still has %d queued events", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatalf("resuming a drained engine: %v", err)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("resumed drained engine revived procs: %d", e.LiveProcs())
	}

	// A drained engine can still be inspected and a fresh run on a new
	// engine is unaffected; Drain on a cleanly finished engine is a no-op.
	e2 := NewEngine()
	done := false
	e2.Spawn("ok", func(p *Proc) { p.Sleep(1); done = true })
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	e2.Drain()
	if !done || e2.LiveProcs() != 0 {
		t.Fatal("normal run perturbed by no-op drain")
	}
}

// TestSetPollFiresPerEventBatch: the poll hook runs every n fired
// events, injects nothing, and can stop the engine mid-run; removal
// works.
func TestSetPollFiresPerEventBatch(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 0; i < 10; i++ {
		e.Schedule(float64(i), func() { fired++ })
	}
	polls := 0
	e.SetPoll(3, func() { polls++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 10 || polls != 3 { // after events 3, 6, 9
		t.Errorf("fired %d events with %d polls, want 10 and 3", fired, polls)
	}
	e.SetPoll(0, nil)
	e.Schedule(1, func() { fired++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if polls != 3 {
		t.Errorf("removed poll hook still ran (%d polls)", polls)
	}

	// A poll that calls Stop halts the run at the batch boundary.
	e2 := NewEngine()
	ran := 0
	for i := 0; i < 100; i++ {
		e2.Schedule(float64(i), func() { ran++ })
	}
	e2.SetPoll(5, func() {
		if ran >= 10 {
			e2.Stop()
		}
	})
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 10 {
		t.Errorf("stop via poll ran %d events, want 10", ran)
	}
}

// TestDrainSurvivesBlockingDefer: a process body whose defer calls a
// blocking method must still unwind cleanly under Drain — the deferred
// Sleep re-panics the kill sentinel instead of yielding for real, which
// would hand Drain a token it would misread as the goroutine's exit.
func TestDrainSurvivesBlockingDefer(t *testing.T) {
	before := runtime.NumGoroutine()
	e := NewEngine()
	e.Spawn("deferred-sleeper", func(p *Proc) {
		defer func() { p.Sleep(1) }() // blocking cleanup: must not wedge Drain
		p.Sleep(100)
	})
	e.Schedule(5, e.Stop)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs after drain = %d, want 0", e.LiveProcs())
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("blocking defer leaked a goroutine: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}
