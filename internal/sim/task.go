package sim

import "strconv"

// Task is a simulated process dispatched inline by the event loop: a
// resumable state machine whose blocking points are expressed as scheduled
// continuations instead of channel rendezvous. Where a Proc parks a real
// goroutine at every Sleep/Wait/Acquire (two channel handoffs and a
// scheduler context switch per blocking op, a stack per process, and
// Drain's panic-unwind machinery to tear it all down), a Task is plain
// data: suspending is appending a continuation to a waiter list or the
// event heap, resuming is an ordinary function call from RunUntil, and a
// drained task is simply forgotten. A steady-state fleet of tasks
// therefore holds O(pool-width) goroutines regardless of fleet size.
//
// The cost is shape: a Task body cannot block mid-function, so workloads
// are written in continuation-passing style — each blocking primitive
// takes the rest of the computation as a func(). The Proc API remains as
// a compatibility shim, property-tested byte-identical to task dispatch:
// both sides map each primitive onto the same Schedule calls and the same
// shared waiter lists, so event order, RNG draw positions, and every
// solver counter are unchanged by the dispatch mode.
type Task struct {
	eng   *Engine
	label string
	id    int // >= 0: appended to label on demand (lazy spawn names)
	done  bool
}

// StartTask begins an inline task after delay seconds of virtual time.
// The body runs when the engine reaches the start event; it receives the
// task and must arrange for t.Finish() to be called exactly once when the
// workload is complete (typically as the final continuation). Like
// SpawnIndexed, the name is label+id formatted lazily — fleet launchers
// start tens of thousands of tasks and the name is only ever read by
// deadlock reports and diagnostics. A negative id names the task label
// alone.
//
//pfsim:taskctx
func (e *Engine) StartTask(delay float64, label string, id int, body func(t *Task)) *Task {
	t := &Task{eng: e, label: label, id: id}
	e.tasks++
	e.Schedule(delay, func() { body(t) })
	return t
}

// Finish retires the task. It must be called exactly once, as the final
// step of the task's continuation chain. Unlike a finished Proc there is
// nothing to unwind: the task was never more than its parked
// continuations.
func (t *Task) Finish() {
	if t.done {
		panic("sim: task " + t.Name() + " finished twice")
	}
	t.done = true
	t.eng.tasks--
}

// Name returns the task name (used in deadlock reports), formatted on
// demand — see StartTask.
func (t *Task) Name() string {
	if t.id < 0 {
		return t.label
	}
	return t.label + strconv.Itoa(t.id)
}

// Engine returns the engine this task runs on.
func (t *Task) Engine() *Engine { return t.eng }

// Now returns the current virtual time.
func (t *Task) Now() float64 { return t.eng.now }

// Done reports whether Finish has been called.
func (t *Task) Done() bool { return t.done }

// Sleep suspends the task for d seconds of virtual time, then runs k.
// This is exactly Proc.Sleep with the continuation explicit: one event,
// same Schedule call, no goroutine handoff.
//
//pfsim:hotpath
//pfsim:taskctx
func (t *Task) Sleep(d float64, k func()) {
	t.eng.Schedule(d, k)
}

// Await runs k once the signal has fired. If the signal already fired, k
// runs synchronously — mirroring Proc.Wait's no-yield fast path, which
// returns without scheduling when the signal is up. Otherwise the task
// parks on the signal's waiter list in FIFO position, identical to a
// waiting Proc.
//
//pfsim:hotpath
//pfsim:taskctx
func (s *Signal) Await(t *Task, k func()) {
	if s.fired {
		k()
		return
	}
	t.eng.blockedT[t] = blockedOn{verb: "waiting", what: s.name}
	s.waiters = append(s.waiters, waiter{t: t, k: k}) //pfsim:allocok waiter-list growth is bounded by the peak blocked population
}

// OnFired runs k once the signal fires, without tying the subscription to
// a task: the self-rescheduling form of a watcher process. If the signal
// already fired, k is scheduled at the current instant (a watcher that
// subscribes late must still observe, not miss, the edge); otherwise k
// joins the waiter list like any other waiter. A subscription is not
// tracked for deadlock detection — a watcher that never fires is not a
// stuck workload.
//
//pfsim:taskctx
func (s *Signal) OnFired(k func()) {
	if s.fired {
		s.eng.Schedule(0, k)
		return
	}
	s.waiters = append(s.waiters, waiter{k: k})
}

// AwaitAll runs k once every signal in sigs has fired, visiting them in
// order exactly as Proc.WaitAll does: park on the first unfired signal,
// and when it fires re-examine the rest from there. Signals already fired
// are skipped synchronously, so a task whose signals are all up proceeds
// without touching the event queue — byte-identical to the shim's
// sequential Wait loop.
//
//pfsim:hotpath
//pfsim:taskctx
func AwaitAll(t *Task, sigs []*Signal, k func()) {
	awaitFrom(t, sigs, 0, k)
}

func awaitFrom(t *Task, sigs []*Signal, i int, k func()) {
	for ; i < len(sigs); i++ {
		if !sigs[i].fired {
			s, next := sigs[i], i+1
			s.Await(t, func() { awaitFrom(t, sigs, next, k) }) //pfsim:allocok one resume closure per actually-blocking signal, exactly the shim's park count
			return
		}
	}
	k()
}

// AcquireTask grants the task a slot, running k once one is free, FIFO
// order — the continuation form of Resource.Acquire. An uncontended
// acquire runs k synchronously, matching the shim's no-yield fast path.
//
//pfsim:hotpath
//pfsim:taskctx
func (r *Resource) AcquireTask(t *Task, k func()) {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.inUse++
		k()
		return
	}
	r.queue = append(r.queue, waiter{t: t, k: k}) //pfsim:allocok queue growth is bounded by the peak contention depth
	r.eng.blockedT[t] = blockedOn{verb: "queued on", what: r.name}
}

// UseTask acquires the resource, holds it for service seconds, releases,
// and then runs k — the continuation form of Resource.Use, the
// fixed-cost-server pattern on the MDS hot path.
//
//pfsim:hotpath
//pfsim:taskctx
func (r *Resource) UseTask(t *Task, service float64, k func()) {
	r.AcquireTask(t, func() { //pfsim:allocok one continuation per Use — the CPS form of the call frame the shim parks a whole goroutine stack for
		t.Sleep(service, func() { //pfsim:allocok one continuation per Use (see above)
			r.Release()
			k()
		})
	})
}
