package sim

import "fmt"

// Proc is a simulated process: a goroutine whose execution interleaves
// deterministically with the engine. Inside the body function, the blocking
// methods (Sleep, Wait, Acquire via Resource) advance virtual time.
type Proc struct {
	eng     *Engine
	name    string
	resume  chan struct{}
	done    bool
	started bool // the start event fired: a goroutine exists

	// transferFn is the bound-method closure for transfer, built once at
	// spawn so the wake paths (Sleep, Signal.Fire, Resource.Release) can
	// schedule it without allocating a fresh closure per wake.
	transferFn func()
}

// procKilled is the Drain sentinel: resuming a parked process while the
// engine is draining panics with it, unwinding the goroutine; the spawn
// wrapper recovers it (and only it) so the goroutine exits cleanly.
type procKilled struct{}

// Spawn starts a new process at the current virtual time. The body runs
// when the engine reaches the start event. Spawn may be called before Run
// or from inside events and other processes.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	return e.SpawnAfter(0, name, body)
}

// SpawnAfter starts a process after delay seconds of virtual time.
func (e *Engine) SpawnAfter(delay float64, name string, body func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	p.transferFn = p.transfer
	e.procs++
	// Compact finished procs out of the drain worklist once they dominate
	// it, so engines that churn through many short-lived processes keep
	// the list proportional to the live population (order preserved).
	if len(e.live) > 64 && len(e.live) >= 2*e.procs {
		w := 0
		for _, q := range e.live {
			if !q.done {
				e.live[w] = q
				w++
			}
		}
		for i := w; i < len(e.live); i++ {
			e.live[i] = nil
		}
		e.live = e.live[:w]
	}
	e.live = append(e.live, p)
	e.Schedule(delay, func() {
		p.started = true
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(procKilled); !ok {
						panic(r)
					}
				}
				p.done = true
				e.procs--
				e.yield <- struct{}{}
			}()
			<-p.resume
			if e.killing {
				panic(procKilled{})
			}
			body(p)
		}()
		p.transfer()
	})
	return p
}

// transfer hands control to the process and blocks the engine until the
// process yields (by sleeping, waiting, or finishing).
func (p *Proc) transfer() {
	p.resume <- struct{}{}
	<-p.eng.yield
}

// yieldToEngine returns control to the engine and blocks the process until
// it is resumed. A process resumed by Drain unwinds instead of returning
// to its body. The pre-send kill check matters for process bodies whose
// defers call blocking methods: during a drain unwind such a call must
// re-panic immediately — yielding for real would hand Drain a token it
// would misread as the goroutine's exit, leaking the goroutine.
func (p *Proc) yieldToEngine() {
	if p.eng.killing {
		panic(procKilled{})
	}
	p.eng.yield <- struct{}{}
	<-p.resume
	if p.eng.killing {
		panic(procKilled{})
	}
}

// Drain terminates every live process. Between events every started
// process goroutine is parked awaiting its resume token, so Drain resumes
// each in spawn order with the kill flag set: the process panics with the
// procKilled sentinel, its goroutine unwinds and exits, and the engine
// waits for the exit before moving to the next. Processes whose start
// event never fired have no goroutine yet and are simply retired.
//
// Draining abandons the simulation: every still-queued event is
// cancelled too, because the queue is full of traps once the processes
// are gone — a killed sleeper's wake event would hand a resume token to
// a goroutine that no longer exists (hanging the engine), and a retired
// process's unfired start event would spawn its body on a later Run
// after its bookkeeping was already torn down. A drained engine is
// therefore inert: Run returns immediately and harmlessly.
//
// A run that completes normally leaves no live processes and Drain is a
// no-op. It exists for runs stopped early — a cancelled context, a launch
// failure — whose parked goroutines (and the engine, network and results
// their stacks pin) would otherwise leak for the life of the program.
// Call it only after Run has returned; the engine must not be mid-event.
func (e *Engine) Drain() {
	if e.procs > 0 {
		e.killing = true
		for _, p := range e.live {
			switch {
			case p.done:
			case !p.started:
				// The start event never fired (engine stopped first): there
				// is no goroutine to unwind.
				p.done = true
				e.procs--
			default:
				p.resume <- struct{}{}
				<-e.yield
			}
		}
		e.killing = false
		e.blocked = map[*Proc]string{}
	}
	e.live = nil
	// Cancel the abandoned queue even when no process was live: the inert
	// guarantee must not depend on which side of its last instant the run
	// was stopped on. (After a normal completion the queue is empty and
	// this is a no-op.)
	for i := range e.events {
		ev := e.events[i]
		ev.index = -1
		e.events[i] = nil
		e.recycle(ev)
	}
	e.events = e.events[:0]
}

// Name returns the process name (used in deadlock reports).
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// Sleep suspends the process for d seconds of virtual time (non-positive
// durations yield to other events at the current time).
func (p *Proc) Sleep(d float64) {
	p.eng.Schedule(d, p.transferFn)
	p.yieldToEngine()
}

// Wait suspends the process until the signal fires. If the signal has
// already fired it returns immediately without yielding.
func (p *Proc) Wait(s *Signal) {
	if s.fired {
		return
	}
	key := fmt.Sprintf("%s (waiting %s)", p.name, s.name)
	p.eng.blocked[p] = key
	s.waiters = append(s.waiters, p)
	p.yieldToEngine()
}

// WaitAll suspends the process until every signal has fired.
func (p *Proc) WaitAll(sigs ...*Signal) {
	for _, s := range sigs {
		p.Wait(s)
	}
}

// Signal is a one-shot broadcast: processes Wait on it, Fire wakes them all
// at the current virtual time (in deterministic order). Waiting on an
// already-fired signal does not block.
type Signal struct {
	eng     *Engine
	name    string
	fired   bool
	waiters []*Proc
}

// NewSignal creates a named signal on the engine.
func (e *Engine) NewSignal(name string) *Signal {
	return &Signal{eng: e, name: name}
}

// Fired reports whether Fire has been called.
func (s *Signal) Fired() bool { return s.fired }

// Fire marks the signal fired and schedules every waiter to resume at the
// current time. Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	waiters := s.waiters
	s.waiters = nil
	for _, p := range waiters {
		delete(s.eng.blocked, p)
		s.eng.Schedule(0, p.transferFn)
	}
}

// Resource is a counted resource with a FIFO wait queue — used for servers
// that admit a bounded number of concurrent operations (e.g. the Lustre
// metadata server).
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	queue    []*Proc
}

// NewResource creates a resource admitting capacity concurrent holders.
func (e *Engine) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{eng: e, name: name, capacity: capacity}
}

// Acquire blocks the process until a slot is free, FIFO order.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.inUse++
		return
	}
	r.queue = append(r.queue, p)
	r.eng.blocked[p] = fmt.Sprintf("%s (queued on %s)", p.name, r.name)
	p.yieldToEngine()
	// Slot was transferred to us by Release.
}

// Release frees a slot, waking the head of the queue if any. The slot
// transfers directly to the woken process, preserving FIFO fairness.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		delete(r.eng.blocked, next)
		r.eng.Schedule(0, next.transferFn)
		return // slot stays accounted to the woken proc
	}
	r.inUse--
}

// InUse reports the number of held slots.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of waiting processes.
func (r *Resource) QueueLen() int { return len(r.queue) }

// Use acquires the resource, sleeps for service seconds, and releases —
// the common pattern for a fixed-cost server operation.
func (r *Resource) Use(p *Proc, service float64) {
	r.Acquire(p)
	p.Sleep(service)
	r.Release()
}
