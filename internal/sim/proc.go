package sim

import (
	"fmt"
	"strconv"
)

// Proc is a simulated process: a goroutine whose execution interleaves
// deterministically with the engine. Inside the body function, the blocking
// methods (Sleep, Wait, Acquire via Resource) advance virtual time.
//
// Proc is the compatibility shim for workloads not yet rewritten as
// inline Tasks (see task.go): every Proc parks a real goroutine, so each
// blocking operation costs two channel handoffs and a scheduler context
// switch, and Drain must panic-unwind the stack. New workload code should
// use Task; Proc remains property-tested byte-identical to it.
type Proc struct {
	eng     *Engine
	label   string
	id      int // >= 0: appended to label on demand (lazy spawn names)
	resume  chan struct{}
	done    bool
	started bool // the start event fired: a goroutine exists

	// transferFn is the bound-method closure for transfer, built once at
	// spawn so the wake paths (Sleep, Signal.Fire, Resource.Release) can
	// schedule it without allocating a fresh closure per wake.
	transferFn func()
}

// procKilled is the Drain sentinel: resuming a parked process while the
// engine is draining panics with it, unwinding the goroutine; the spawn
// wrapper recovers it (and only it) so the goroutine exits cleanly.
type procKilled struct{}

// Spawn starts a new process at the current virtual time. The body runs
// when the engine reaches the start event. Spawn may be called before Run
// or from inside events and other processes.
//
//pfsim:taskctxok audited shim entry: the body escapes to an engine-managed goroutine, not the event loop
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	return e.SpawnAfter(0, name, body)
}

// SpawnAfter starts a process after delay seconds of virtual time.
//
//pfsim:taskctxok audited shim entry: the body escapes to an engine-managed goroutine, not the event loop
func (e *Engine) SpawnAfter(delay float64, name string, body func(p *Proc)) *Proc {
	return e.SpawnIndexed(delay, name, -1, body)
}

// SpawnIndexed starts a process named label+id (formatted lazily: fleet
// launchers spawn tens of thousands of ranks, and the name is only ever
// read by deadlock reports and diagnostics, so it must not be built per
// spawn). A negative id names the process label alone.
//
//pfsim:taskctxok audited shim entry: the body escapes to an engine-managed goroutine, not the event loop
func (e *Engine) SpawnIndexed(delay float64, label string, id int, body func(p *Proc)) *Proc {
	p := &Proc{eng: e, label: label, id: id, resume: make(chan struct{})}
	p.transferFn = p.transfer
	e.procs++
	// Compact finished procs out of the drain worklist once they dominate
	// it, so engines that churn through many short-lived processes keep
	// the list proportional to the live population (order preserved).
	if len(e.live) > 64 && len(e.live) >= 2*e.procs {
		w := 0
		for _, q := range e.live {
			if !q.done {
				e.live[w] = q
				w++
			}
		}
		for i := w; i < len(e.live); i++ {
			e.live[i] = nil
		}
		e.live = e.live[:w]
	}
	e.live = append(e.live, p)
	e.Schedule(delay, func() {
		p.started = true
		go func() { //pfsim:taskctxok the shim's one goroutine spawn; Drain unwinds it and TestEngineFleetGoroutinesO1 bounds it
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(procKilled); !ok {
						panic(r)
					}
				}
				p.done = true
				e.procs--
				e.yield <- struct{}{}
			}()
			<-p.resume
			if e.killing {
				panic(procKilled{})
			}
			body(p)
		}()
		p.transfer()
	})
	return p
}

// transfer hands control to the process and blocks the engine until the
// process yields (by sleeping, waiting, or finishing).
//
//pfsim:taskctxok audited shim rendezvous: runs only while a parked shim goroutine holds the other end
func (p *Proc) transfer() {
	p.resume <- struct{}{}
	<-p.eng.yield
}

// yieldToEngine returns control to the engine and blocks the process until
// it is resumed. A process resumed by Drain unwinds instead of returning
// to its body. The pre-send kill check matters for process bodies whose
// defers call blocking methods: during a drain unwind such a call must
// re-panic immediately — yielding for real would hand Drain a token it
// would misread as the goroutine's exit, leaking the goroutine.
func (p *Proc) yieldToEngine() {
	if p.eng.killing {
		panic(procKilled{})
	}
	p.eng.yield <- struct{}{}
	<-p.resume
	if p.eng.killing {
		panic(procKilled{})
	}
}

// Drain terminates every live process. Between events every started
// process goroutine is parked awaiting its resume token, so Drain resumes
// each in spawn order with the kill flag set: the process panics with the
// procKilled sentinel, its goroutine unwinds and exits, and the engine
// waits for the exit before moving to the next. Processes whose start
// event never fired have no goroutine yet and are simply retired.
//
// Draining abandons the simulation: every still-queued event is
// cancelled too, because the queue is full of traps once the processes
// are gone — a killed sleeper's wake event would hand a resume token to
// a goroutine that no longer exists (hanging the engine), and a retired
// process's unfired start event would spawn its body on a later Run
// after its bookkeeping was already torn down. A drained engine is
// therefore inert: Run returns immediately and harmlessly.
//
// A run that completes normally leaves no live processes and Drain is a
// no-op. It exists for runs stopped early — a cancelled context, a launch
// failure — whose parked goroutines (and the engine, network and results
// their stacks pin) would otherwise leak for the life of the program.
// Call it only after Run has returned; the engine must not be mid-event.
func (e *Engine) Drain() {
	if e.procs > 0 {
		e.killing = true
		for _, p := range e.live {
			switch {
			case p.done:
			case !p.started:
				// The start event never fired (engine stopped first): there
				// is no goroutine to unwind.
				p.done = true
				e.procs--
			default:
				p.resume <- struct{}{}
				<-e.yield
			}
		}
		e.killing = false
		e.blocked = map[*Proc]blockedOn{}
	}
	e.live = nil
	// Inline tasks retire trivially: they own no goroutine and no stack,
	// so abandoning them is just forgetting their parked continuations —
	// the waiter lists holding them die with the signals and resources
	// they sit in, and cancelling the event queue below discards any
	// already-scheduled resumption.
	e.tasks = 0
	if len(e.blockedT) > 0 {
		e.blockedT = map[*Task]blockedOn{}
	}
	// Cancel the abandoned queue even when no process was live: the inert
	// guarantee must not depend on which side of its last instant the run
	// was stopped on. (After a normal completion the queue is empty and
	// this is a no-op.)
	for i := range e.events {
		ev := e.events[i]
		ev.index = -1
		e.events[i] = nil
		e.recycle(ev)
	}
	e.events = e.events[:0]
}

// Name returns the process name (used in deadlock reports). Names are
// formatted on demand — see SpawnIndexed.
func (p *Proc) Name() string {
	if p.id < 0 {
		return p.label
	}
	return p.label + strconv.Itoa(p.id)
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// Sleep suspends the process for d seconds of virtual time (non-positive
// durations yield to other events at the current time).
func (p *Proc) Sleep(d float64) {
	p.eng.Schedule(d, p.transferFn)
	p.yieldToEngine()
}

// Wait suspends the process until the signal fires. If the signal has
// already fired it returns immediately without yielding.
func (p *Proc) Wait(s *Signal) {
	if s.fired {
		return
	}
	p.eng.blocked[p] = blockedOn{verb: "waiting", what: s.name}
	s.waiters = append(s.waiters, waiter{p: p})
	p.yieldToEngine()
}

// WaitAll suspends the process until every signal has fired.
func (p *Proc) WaitAll(sigs ...*Signal) {
	for _, s := range sigs {
		p.Wait(s)
	}
}

// waiter is one parked entry in a Signal's waiter list or a Resource's
// queue: p for a channel-shim process, otherwise the continuation k (with
// t set when it belongs to a tracked inline task; nil for a bare
// subscription — see Signal.OnFired). Shim procs and tasks share one list
// so mixed workloads wake in the same deterministic park order regardless
// of dispatch mode.
type waiter struct {
	p *Proc
	t *Task
	k func()
}

// wake schedules the parked waiter to resume at the current virtual time.
func (w waiter) wake(e *Engine) {
	if w.p != nil {
		e.Schedule(0, w.p.transferFn)
		return
	}
	e.Schedule(0, w.k)
}

// Signal is a one-shot broadcast: processes Wait on it, Fire wakes them all
// at the current virtual time (in deterministic order). Waiting on an
// already-fired signal does not block.
type Signal struct {
	eng     *Engine
	name    string
	fired   bool
	waiters []waiter
}

// NewSignal creates a named signal on the engine.
func (e *Engine) NewSignal(name string) *Signal {
	return &Signal{eng: e, name: name}
}

// Fired reports whether Fire has been called.
func (s *Signal) Fired() bool { return s.fired }

// Fire marks the signal fired and schedules every waiter to resume at the
// current time. Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	waiters := s.waiters
	s.waiters = nil
	for _, w := range waiters {
		s.eng.unblock(w)
		w.wake(s.eng)
	}
}

// unblock clears the deadlock-tracking entry for a woken waiter.
func (e *Engine) unblock(w waiter) {
	if w.p != nil {
		delete(e.blocked, w.p)
	} else if w.t != nil {
		delete(e.blockedT, w.t)
	}
}

// Resource is a counted resource with a FIFO wait queue — used for servers
// that admit a bounded number of concurrent operations (e.g. the Lustre
// metadata server).
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	queue    []waiter
}

// NewResource creates a resource admitting capacity concurrent holders.
func (e *Engine) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{eng: e, name: name, capacity: capacity}
}

// Acquire blocks the process until a slot is free, FIFO order.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.inUse++
		return
	}
	r.queue = append(r.queue, waiter{p: p})
	r.eng.blocked[p] = blockedOn{verb: "queued on", what: r.name}
	p.yieldToEngine()
	// Slot was transferred to us by Release.
}

// Release frees a slot, waking the head of the queue if any. The slot
// transfers directly to the woken waiter, preserving FIFO fairness.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name)) //pfsim:allocok crash path: the formatted panic message never allocates on a live run
	}
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		r.eng.unblock(next)
		next.wake(r.eng)
		return // slot stays accounted to the woken waiter
	}
	r.inUse--
}

// InUse reports the number of held slots.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of waiting processes.
func (r *Resource) QueueLen() int { return len(r.queue) }

// Use acquires the resource, sleeps for service seconds, and releases —
// the common pattern for a fixed-cost server operation.
func (r *Resource) Use(p *Proc, service float64) {
	r.Acquire(p)
	p.Sleep(service)
	r.Release()
}
