package sim

import (
	"math"
	"testing"
)

func TestScheduleAtNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on NaN absolute time")
		}
	}()
	NewEngine().ScheduleAt(math.NaN(), func() {})
}
