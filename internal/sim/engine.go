// Package sim provides the discrete-event simulation engine that underpins
// pfsim. Virtual time is a float64 number of seconds. Events fire in
// (time, sequence) order, so simulations are fully deterministic. On top of
// the raw event queue the package offers coroutine-style processes (Proc):
// each process is a goroutine, but exactly one goroutine — the engine or a
// single process — runs at any instant, with control transferred explicitly.
// This gives natural blocking APIs (Sleep, Wait, Acquire) without
// introducing any scheduling nondeterminism.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Event is a scheduled callback. It can be cancelled before it fires.
//
// Event records are pooled: once an event has fired or been cancelled, the
// engine may hand its record to a later Schedule call (see ScheduleAt).
// Cancelling or rescheduling an event that already fired stays a safe no-op
// only until the record is reused, so callers that retain an *Event across
// instants must drop (nil) their reference the moment the event fires —
// the discipline flow.Net follows with its dirty and completion events.
type Event struct {
	at        float64
	seq       int64
	index     int // heap index, -1 when not queued
	fn        func()
	cancelled bool
}

// Time returns the virtual time at which the event fires.
func (ev *Event) Time() float64 { return ev.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev) //pfsim:allocok queue growth is bounded by the peak event population, then reuses capacity
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     float64
	events  eventHeap
	seq     int64
	stopped bool

	yield   chan struct{} // handed a token when a proc returns control
	procs   int           // live processes
	live    []*Proc       // every spawned, unfinished process (Drain's worklist)
	blocked map[*Proc]blockedOn
	killing bool // Drain in progress: resumed procs unwind instead of running

	tasks    int // started, unfinished inline tasks
	blockedT map[*Task]blockedOn

	pollEvery int // call pollFn every this many fired events (0: never)
	pollCount int
	pollFn    func()

	// free holds fired/cancelled event records awaiting reuse, so a
	// steady-state simulation (the flow solver's flush-per-instant churn)
	// schedules events without touching the heap allocator.
	free []*Event
}

// SetPoll installs fn to run after every n fired events during Run — the
// hook cancellation watchers use to bound their wall-clock latency in
// the unit that actually passes wall-clock time (events processed), with
// zero effect on the simulation: no events are injected, virtual time
// and event order are untouched. fn must not mutate simulation state;
// reading external conditions and calling Stop is the intended use.
// n <= 0 or a nil fn removes the hook.
func (e *Engine) SetPoll(n int, fn func()) {
	if n <= 0 || fn == nil {
		e.pollEvery, e.pollFn, e.pollCount = 0, nil, 0
		return
	}
	e.pollEvery, e.pollFn, e.pollCount = n, fn, 0
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{
		yield:    make(chan struct{}),
		blocked:  map[*Proc]blockedOn{},
		blockedT: map[*Task]blockedOn{},
	}
}

// blockedOn records what a parked process or task is stalled on. The
// description string is assembled only if a deadlock report is actually
// produced — parking is on the dispatch hot path and must not format.
type blockedOn struct {
	verb string // "waiting" (signal) or "queued on" (resource)
	what string // the signal or resource name
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule queues fn to run after delay seconds (clamped at zero). It
// returns the event so callers may cancel it.
//
//pfsim:hotpath
//pfsim:taskctx
func (e *Engine) Schedule(delay float64, fn func()) *Event {
	if math.IsNaN(delay) {
		panic("sim: scheduled with NaN delay") //pfsim:allocok crash path: the boxed panic message never allocates on a live run
	}
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute virtual time at (clamped to now).
// The returned event's record comes from the engine's free list when one is
// available: scheduling allocates only while the in-flight event population
// is still growing, and a steady-state simulation runs allocation-free.
//
//pfsim:hotpath
//pfsim:taskctx
func (e *Engine) ScheduleAt(at float64, fn func()) *Event {
	if math.IsNaN(at) {
		// A NaN deadline compares false against everything, so it would
		// corrupt the event heap's ordering invariant silently instead of
		// failing here.
		panic("sim: scheduled at NaN time") //pfsim:allocok crash path: the boxed panic message never allocates on a live run
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	var ev *Event
	if k := len(e.free) - 1; k >= 0 {
		ev = e.free[k]
		e.free[k] = nil
		e.free = e.free[:k]
		*ev = Event{at: at, seq: e.seq, fn: fn, index: -1}
	} else {
		ev = &Event{at: at, seq: e.seq, fn: fn, index: -1} //pfsim:allocok event-pool growth: reused via Engine.free once fired
	}
	heap.Push(&e.events, ev)
	return ev
}

// recycle returns a fired or cancelled event record to the free list. The
// record keeps cancelled=true while pooled, so a stale Cancel or Reschedule
// through a retained pointer stays a no-op until the record is reused.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.cancelled = true
	e.free = append(e.free, ev) //pfsim:allocok free-list growth is bounded by the peak event population
}

// Reschedule moves a pending event to fire at absolute virtual time at
// (clamped to now), re-sequencing it as if it had been cancelled and
// freshly scheduled: among events at the same instant it fires after
// everything already queued, exactly like Cancel followed by ScheduleAt,
// but without allocating a new event or paying two heap operations. This
// is the decrease-key path for callers that keep one long-lived event and
// move it — the flow solver's completion event — instead of
// cancel-and-repost churn. It returns false, and does nothing, when the
// event is nil, cancelled, or has already fired; callers then fall back
// to ScheduleAt.
func (e *Engine) Reschedule(ev *Event, at float64) bool {
	if math.IsNaN(at) {
		panic("sim: rescheduled to NaN time")
	}
	if ev == nil || ev.cancelled || ev.index < 0 {
		return false
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev.at = at
	ev.seq = e.seq
	heap.Fix(&e.events, ev.index)
	return true
}

// Cancel removes a pending event; cancelling a fired or already-cancelled
// event is a no-op. The cancelled record returns to the engine's free list
// immediately — see the pooling contract on Event.
//
//pfsim:hotpath
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.index < 0 {
		if ev != nil {
			ev.cancelled = true
		}
		return
	}
	ev.cancelled = true
	heap.Remove(&e.events, ev.index)
	e.recycle(ev)
}

// Stop makes the next (or current) Run return before firing another event.
// A Stop issued before Run starts is honoured: Run returns immediately
// without executing anything. Each Run/RunUntil return consumes at most one
// stop request, so the engine can be resumed afterwards.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether a stop request is pending.
func (e *Engine) Stopped() bool { return e.stopped }

// Run executes events until the queue empties or Stop is called. It returns
// an error if processes remain blocked with no pending events (a simulation
// deadlock), listing the stuck processes.
func (e *Engine) Run() error { return e.RunUntil(math.Inf(1)) }

// RunUntil executes events with fire time <= tmax. Virtual time never
// exceeds tmax. An earlier revision reset the stop flag on entry, which
// silently discarded a Stop issued before Run — launch-error paths that
// stop the engine synchronously (before Run begins) would run the whole
// simulation anyway and delay the error until completion.
//
//pfsim:hotpath
func (e *Engine) RunUntil(tmax float64) error {
	for !e.stopped && len(e.events) > 0 {
		if e.events[0].at > tmax {
			e.now = tmax
			return nil
		}
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		fn := ev.fn
		fn()
		e.recycle(ev)
		if e.pollEvery > 0 {
			if e.pollCount++; e.pollCount >= e.pollEvery {
				e.pollCount = 0
				e.pollFn()
			}
		}
	}
	if e.stopped {
		e.stopped = false // consume the stop so the engine can be resumed
		return nil
	}
	if len(e.blocked) > 0 || len(e.blockedT) > 0 {
		return e.deadlockErr()
	}
	return nil
}

// deadlockErr builds the blocked-process report for RunUntil. It lives
// outside the event loop so the hot-path call-graph closure excludes
// this cold, allocation-heavy error path.
//
//pfsim:allocok cold error path: runs once, right before the simulation aborts
func (e *Engine) deadlockErr() error {
	names := make([]string, 0, len(e.blocked)+len(e.blockedT))
	//pfsim:orderok — names are sorted below before they reach the error
	for p, on := range e.blocked {
		names = append(names, fmt.Sprintf("%s (%s %s)", p.Name(), on.verb, on.what))
	}
	//pfsim:orderok — names are sorted below before they reach the error
	for t, on := range e.blockedT {
		names = append(names, fmt.Sprintf("%s (%s %s)", t.Name(), on.verb, on.what))
	}
	sort.Strings(names)
	return fmt.Errorf("sim: deadlock at t=%.6f: %d blocked process(es): %v",
		e.now, len(names), names)
}

// Pending reports the number of queued (uncancelled) events. Cancel
// removes events from the queue eagerly, so the queue length is exactly
// that count — O(1), where earlier revisions scanned the whole heap on
// every call.
func (e *Engine) Pending() int { return len(e.events) }

// LiveProcs reports the number of processes that have started and not yet
// finished.
func (e *Engine) LiveProcs() int { return e.procs }

// LiveTasks reports the number of inline tasks that have started and not
// yet finished.
func (e *Engine) LiveTasks() int { return e.tasks }
