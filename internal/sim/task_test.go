package sim

import (
	"strings"
	"testing"
)

// TestTaskSleepChain: a task's continuation chain advances virtual time
// exactly like a sleeping process, and Finish retires it.
func TestTaskSleepChain(t *testing.T) {
	e := NewEngine()
	var times []float64
	tk := e.StartTask(0.5, "worker", 0, func(t *Task) {
		times = append(times, t.Now())
		t.Sleep(1, func() {
			times = append(times, t.Now())
			t.Sleep(2, func() {
				times = append(times, t.Now())
				t.Finish()
			})
		})
	})
	if e.LiveTasks() != 1 {
		t.Fatalf("LiveTasks = %d before run, want 1", e.LiveTasks())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1.5, 3.5}
	if len(times) != len(want) {
		t.Fatalf("times = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %v, want %v", i, times[i], want[i])
		}
	}
	if !tk.Done() || e.LiveTasks() != 0 {
		t.Errorf("task not retired: done=%v live=%d", tk.Done(), e.LiveTasks())
	}
	if tk.Name() != "worker0" {
		t.Errorf("Name = %q, want worker0", tk.Name())
	}
}

// TestTaskAwaitFiredIsSynchronous: awaiting an already-fired signal runs
// the continuation inline without touching the event queue — the same
// no-yield fast path as Proc.Wait on a fired signal.
func TestTaskAwaitFiredIsSynchronous(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("up")
	s.Fire()
	ran := false
	e.StartTask(0, "t", -1, func(tk *Task) {
		s.Await(tk, func() { ran = true })
		if !ran {
			t.Error("Await on fired signal deferred its continuation")
		}
		tk.Finish()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSignalMixedWaitersFIFO parks shim processes and inline tasks on one
// signal in interleaved order: Fire must wake them strictly in park order,
// so the two dispatch modes compose without reordering anything.
func TestSignalMixedWaitersFIFO(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("go")
	var order []string
	e.Spawn("p0", func(p *Proc) {
		p.Wait(s)
		order = append(order, p.Name())
	})
	e.StartTask(0, "t", 1, func(tk *Task) {
		s.Await(tk, func() {
			order = append(order, tk.Name())
			tk.Finish()
		})
	})
	e.Spawn("p2", func(p *Proc) {
		p.Sleep(0) // park on the signal after t1 (spawn order alone would tie)
		p.Wait(s)
		order = append(order, p.Name())
	})
	e.Schedule(1, s.Fire)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"p0", "t1", "p2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %s, want %s", i, order[i], want[i])
		}
	}
}

// TestOnFiredSubscription: a subscription runs when the signal fires, and
// a late subscriber (after the fire) still observes the edge — via an
// event at the current instant, never synchronously inside OnFired.
func TestOnFiredSubscription(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("done")
	var at []float64
	s.OnFired(func() { at = append(at, e.Now()) })
	e.Schedule(2, s.Fire)
	e.Schedule(3, func() {
		sync := false
		s.OnFired(func() { sync = true; at = append(at, e.Now()) })
		if sync {
			t.Error("late OnFired ran synchronously; must go through the queue")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(at) != 2 || at[0] != 2 || at[1] != 3 {
		t.Errorf("subscriptions fired at %v, want [2 3]", at)
	}
}

// TestAwaitAllMatchesWaitAll runs the same scattered fire schedule against
// a task using AwaitAll and a process using WaitAll: both must resume at
// the same instant (the sequential in-order wait semantics).
func TestAwaitAllMatchesWaitAll(t *testing.T) {
	run := func(useTask bool) float64 {
		e := NewEngine()
		sigs := []*Signal{e.NewSignal("a"), e.NewSignal("b"), e.NewSignal("c")}
		// b fires first, then c, then a: the in-order scan parks on a, then
		// skips b synchronously, then parks on c only if it is still down.
		e.Schedule(1, sigs[1].Fire)
		e.Schedule(2, sigs[2].Fire)
		e.Schedule(3, sigs[0].Fire)
		var resumed float64
		if useTask {
			e.StartTask(0, "t", -1, func(tk *Task) {
				AwaitAll(tk, sigs, func() {
					resumed = tk.Now()
					tk.Finish()
				})
			})
		} else {
			e.Spawn("p", func(p *Proc) {
				p.WaitAll(sigs...)
				resumed = p.Now()
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return resumed
	}
	taskAt, procAt := run(true), run(false)
	if taskAt != procAt || taskAt != 3 {
		t.Errorf("AwaitAll resumed at %v, WaitAll at %v, want both 3", taskAt, procAt)
	}
}

// TestResourceMixedFIFO alternates shim processes and tasks through a
// capacity-1 resource: slots must be granted strictly in arrival order,
// with the uncontended first arrival taking the synchronous fast path.
func TestResourceMixedFIFO(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("mds", 1)
	var order []string
	for i := 0; i < 4; i++ {
		i := i
		if i%2 == 0 {
			e.SpawnIndexed(float64(i)*0.001, "p", i, func(p *Proc) {
				r.Use(p, 1)
				order = append(order, p.Name())
			})
		} else {
			e.StartTask(float64(i)*0.001, "t", i, func(tk *Task) {
				r.UseTask(tk, 1, func() {
					order = append(order, tk.Name())
					tk.Finish()
				})
			})
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"p0", "t1", "p2", "t3"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %s, want %s", i, order[i], want[i])
		}
	}
	if r.InUse() != 0 || r.QueueLen() != 0 {
		t.Errorf("resource not drained: inUse=%d queue=%d", r.InUse(), r.QueueLen())
	}
}

// TestTaskDeadlockReport: stuck tasks appear in the deadlock error in the
// same format as stuck processes, merged and sorted with them.
func TestTaskDeadlockReport(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("never")
	r := e.NewResource("narrow", 1)
	e.StartTask(0, "a-task", 7, func(tk *Task) {
		s.Await(tk, tk.Finish)
	})
	e.Spawn("b-proc", func(p *Proc) {
		r.Acquire(p)
		p.Wait(s) // holds the slot forever
	})
	e.StartTask(0, "c-task", -1, func(tk *Task) {
		r.AcquireTask(tk, tk.Finish)
	})
	err := e.Run()
	if err == nil {
		t.Fatal("want deadlock error")
	}
	msg := err.Error()
	for _, frag := range []string{
		"3 blocked process(es)",
		`a-task7 (waiting never)`,
		`b-proc (waiting never)`,
		`c-task (queued on narrow)`,
	} {
		if !strings.Contains(msg, frag) {
			t.Errorf("deadlock report %q missing %q", msg, frag)
		}
	}
}

// TestDrainRetiresTasks: draining a stopped engine forgets parked tasks —
// no continuation may run afterwards, the engine is inert, and the
// blocked-task tracking is cleared so a later Run does not re-report them.
func TestDrainRetiresTasks(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("never")
	r := e.NewResource("held", 1)
	resumed := 0
	for i := 0; i < 3; i++ {
		e.StartTask(0, "sig", i, func(tk *Task) {
			s.Await(tk, func() { resumed++ })
		})
		e.StartTask(0, "res", i, func(tk *Task) {
			r.AcquireTask(tk, func() { resumed++ })
		})
	}
	e.StartTask(0, "sleeper", -1, func(tk *Task) {
		tk.Sleep(1e9, func() { resumed++ })
	})
	e.Schedule(1, e.Stop)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.LiveTasks() == 0 {
		t.Fatal("tasks finished before drain; test lost its subjects")
	}
	e.Drain()
	if e.LiveTasks() != 0 {
		t.Errorf("LiveTasks = %d after Drain, want 0", e.LiveTasks())
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after Drain, want 0", e.Pending())
	}
	// The drained engine is inert: Run returns immediately without a
	// deadlock report — the blocked-task tracking died with the tasks. (The
	// resource slot was granted to the first arrival synchronously, so its
	// continuation ran before the stop; resumed counts exactly that one.)
	before := resumed
	if err := e.Run(); err != nil {
		t.Fatalf("drained engine not inert: %v", err)
	}
	if resumed != before || resumed != 1 {
		t.Errorf("resumed = %d (was %d); only the synchronous acquire may have run", resumed, before)
	}
}

// TestTaskFinishTwicePanics: double-retirement is a bug in the workload's
// continuation chain and must fail loudly.
func TestTaskFinishTwicePanics(t *testing.T) {
	e := NewEngine()
	e.StartTask(0, "t", -1, func(tk *Task) {
		tk.Finish()
		defer func() {
			if recover() == nil {
				t.Error("want panic on second Finish")
			}
		}()
		tk.Finish()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
