// Package trace records what a simulation did: every transfer's lifetime
// and achieved bandwidth, per-link carried volume, and a coarse timeline
// of aggregate throughput. It plays the role that application I/O tracing
// tools (such as the authors' RIOT framework, refs [16,17] of the paper)
// play on real systems: explaining *why* a run achieved the bandwidth it
// did. Install a Recorder on a flow network before running the engine,
// then query or export the trace.
package trace

import (
	"fmt"
	"io"
	"sort"

	"pfsim/internal/flow"
)

// Record is one completed transfer.
type Record struct {
	Name    string
	Start   float64 // virtual seconds
	End     float64
	SizeMB  float64
	MeanMBs float64 // SizeMB / (End-Start); 0 for instantaneous flows
}

// Recorder captures flow lifecycles from a network. The zero value is
// ready to use after Attach.
//
// Concurrency is sampled at instant boundaries: within one virtual
// instant the interleaving of start and finish callbacks depends on the
// solver mode (the incremental solver batches completions where the
// reference solver retires them eagerly), so the old per-callback peak
// could transiently differ between modes. The per-instant count — flows
// open at entry plus flows started during the instant, which includes
// everything that finishes at it — is order-independent, so both solvers
// report identical telemetry.
type Recorder struct {
	records []Record
	open    int     // settled open count after the last callback
	maxOpen int     // peak per-instant concurrency over committed instants
	curT    float64 // instant currently being accumulated
	atEntry int     // open count when curT began
	started int     // flows started during curT
}

// Attach installs the recorder on a network (replacing any observer).
func (r *Recorder) Attach(n *flow.Net) { n.Observe(r) }

// sample commits the finished instant's concurrency when the clock moves.
func (r *Recorder) sample(t float64) {
	if t > r.curT {
		if alive := r.atEntry + r.started; alive > r.maxOpen {
			r.maxOpen = alive
		}
		r.curT = t
		r.atEntry = r.open
		r.started = 0
	}
}

// FlowStarted implements flow.Observer.
func (r *Recorder) FlowStarted(f *flow.Flow) {
	r.sample(f.Started())
	r.open++
	r.started++
}

// FlowFinished implements flow.Observer.
func (r *Recorder) FlowFinished(f *flow.Flow) {
	r.sample(f.FinishedAt())
	r.open--
	rec := Record{
		Name:   f.Name(),
		Start:  f.Started(),
		End:    f.FinishedAt(),
		SizeMB: f.Size(),
	}
	if d := rec.End - rec.Start; d > 0 {
		rec.MeanMBs = rec.SizeMB / d
	}
	r.records = append(r.records, rec)
}

// Records returns the completed transfers in completion order.
func (r *Recorder) Records() []Record {
	out := make([]Record, len(r.records))
	copy(out, r.records)
	return out
}

// Len returns the number of completed transfers.
func (r *Recorder) Len() int { return len(r.records) }

// MaxConcurrent returns the peak number of flows alive at any virtual
// instant: flows open when the instant began plus flows started during it
// (a flow finishing at an instant was alive at it; an instantaneous flow
// counts at its one instant). The count is identical in both solver
// modes. The still-accumulating current instant is included.
func (r *Recorder) MaxConcurrent() int {
	if alive := r.atEntry + r.started; alive > r.maxOpen {
		return alive
	}
	return r.maxOpen
}

// TotalMB returns the volume moved by completed transfers.
func (r *Recorder) TotalMB() float64 {
	sum := 0.0
	for _, rec := range r.records {
		sum += rec.SizeMB
	}
	return sum
}

// Makespan returns the span from the first start to the last completion
// (0 when empty).
func (r *Recorder) Makespan() (start, end float64) {
	if len(r.records) == 0 {
		return 0, 0
	}
	start, end = r.records[0].Start, r.records[0].End
	for _, rec := range r.records[1:] {
		if rec.Start < start {
			start = rec.Start
		}
		if rec.End > end {
			end = rec.End
		}
	}
	return start, end
}

// Slowest returns the n transfers with the lowest mean bandwidth — the
// stragglers that explain a contended run's tail.
func (r *Recorder) Slowest(n int) []Record {
	out := r.Records()
	sort.Slice(out, func(i, j int) bool {
		if out[i].MeanMBs != out[j].MeanMBs {
			return out[i].MeanMBs < out[j].MeanMBs
		}
		return out[i].Name < out[j].Name
	})
	if n > len(out) {
		n = len(out)
	}
	return out[:n]
}

// Timeline integrates aggregate achieved throughput over fixed buckets of
// width dt seconds, from time 0 to the last completion. Each transfer
// contributes its mean rate across its lifetime — a fluid approximation
// consistent with the simulator itself.
func (r *Recorder) Timeline(dt float64) []float64 {
	if dt <= 0 || len(r.records) == 0 {
		return nil
	}
	_, end := r.Makespan()
	buckets := make([]float64, int(end/dt)+1)
	for _, rec := range r.records {
		if rec.End <= rec.Start {
			continue
		}
		first := int(rec.Start / dt)
		last := int(rec.End / dt)
		for b := first; b <= last && b < len(buckets); b++ {
			bStart := float64(b) * dt
			bEnd := bStart + dt
			overlap := minF(rec.End, bEnd) - maxF(rec.Start, bStart)
			if overlap > 0 {
				buckets[b] += rec.MeanMBs * overlap / dt
			}
		}
	}
	return buckets
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// WriteCSV exports the records as CSV (name,start,end,size_mb,mean_mbs).
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "name,start_s,end_s,size_mb,mean_mbs"); err != nil {
		return err
	}
	for _, rec := range r.records {
		if _, err := fmt.Fprintf(w, "%s,%.6f,%.6f,%.3f,%.3f\n",
			rec.Name, rec.Start, rec.End, rec.SizeMB, rec.MeanMBs); err != nil {
			return err
		}
	}
	return nil
}
