package trace

import (
	"math"
	"strings"
	"testing"

	"pfsim/internal/flow"
	"pfsim/internal/sim"
)

func build(t *testing.T) (*sim.Engine, *flow.Net, *Recorder) {
	t.Helper()
	e := sim.NewEngine()
	n := flow.NewNet(e)
	r := &Recorder{}
	r.Attach(n)
	return e, n, r
}

func TestRecorderCapturesFlows(t *testing.T) {
	e, n, r := build(t)
	l := n.NewLink("pipe", flow.Const(100))
	n.Start("a", 1000, 0, l)
	n.Start("b", 500, 0, l)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("records = %d", r.Len())
	}
	if r.TotalMB() != 1500 {
		t.Errorf("total = %v", r.TotalMB())
	}
	if r.MaxConcurrent() != 2 {
		t.Errorf("max concurrent = %d", r.MaxConcurrent())
	}
	start, end := r.Makespan()
	if start != 0 || math.Abs(end-15) > 1e-9 {
		t.Errorf("makespan = (%v,%v), want (0,15)", start, end)
	}
	// b finishes first (t=10, mean 50); a second (t=15, mean 66.7).
	recs := r.Records()
	if recs[0].Name != "b" || math.Abs(recs[0].MeanMBs-50) > 1e-9 {
		t.Errorf("first record = %+v", recs[0])
	}
	if recs[1].Name != "a" || math.Abs(recs[1].MeanMBs-1000.0/15) > 1e-9 {
		t.Errorf("second record = %+v", recs[1])
	}
}

func TestSlowest(t *testing.T) {
	e, n, r := build(t)
	fast := n.NewLink("fast", flow.Const(1000))
	slow := n.NewLink("slow", flow.Const(10))
	n.Start("quick", 100, 0, fast)
	n.Start("laggard", 100, 0, slow)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	worst := r.Slowest(1)
	if len(worst) != 1 || worst[0].Name != "laggard" {
		t.Errorf("slowest = %+v", worst)
	}
	all := r.Slowest(99)
	if len(all) != 2 {
		t.Errorf("Slowest(99) = %d records", len(all))
	}
}

func TestTimeline(t *testing.T) {
	e, n, r := build(t)
	l := n.NewLink("pipe", flow.Const(100))
	n.Start("x", 1000, 0, l) // runs [0,10] at 100 MB/s
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tl := r.Timeline(1)
	if len(tl) < 10 {
		t.Fatalf("timeline buckets = %d", len(tl))
	}
	for b := 0; b < 10; b++ {
		if math.Abs(tl[b]-100) > 1e-6 {
			t.Errorf("bucket %d = %v, want 100", b, tl[b])
		}
	}
	if r.Timeline(0) != nil {
		t.Error("zero-dt timeline should be nil")
	}
	empty := &Recorder{}
	if empty.Timeline(1) != nil {
		t.Error("empty timeline should be nil")
	}
}

func TestZeroSizeFlowRecorded(t *testing.T) {
	e, n, r := build(t)
	l := n.NewLink("pipe", flow.Const(100))
	n.Start("empty", 0, 0, l)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("records = %d", r.Len())
	}
	if r.Records()[0].MeanMBs != 0 {
		t.Errorf("instantaneous flow should have zero mean rate")
	}
	if r.MaxConcurrent() != 1 {
		t.Errorf("max concurrent = %d", r.MaxConcurrent())
	}
}

func TestWriteCSV(t *testing.T) {
	e, n, r := build(t)
	l := n.NewLink("pipe", flow.Const(100))
	n.Start("x", 200, 0, l)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "name,start_s,end_s,size_mb,mean_mbs\n") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "x,0.000000,2.000000,200.000,100.000") {
		t.Errorf("missing record:\n%s", out)
	}
}

func TestMakespanEmpty(t *testing.T) {
	r := &Recorder{}
	if s, e := r.Makespan(); s != 0 || e != 0 {
		t.Errorf("empty makespan = (%v,%v)", s, e)
	}
}

// TestMaxConcurrentSolverModeIdentical: at an instant where completions
// and arrivals coincide, the incremental solver delivers finish callbacks
// in a different order than the eager reference solver. Instant-boundary
// sampling must report the same peak either way: flows open at the
// instant's entry plus flows started during it.
func TestMaxConcurrentSolverModeIdentical(t *testing.T) {
	run := func(reference bool) (*Recorder, int) {
		e, n, r := build(t)
		n.UseReferenceSolver(reference)
		l := n.NewLink("pipe", flow.Const(100))
		short := n.Start("short", 100, 0, l) // drains at t=2 under fair share
		n.Start("long", 900, 0, l)
		// Two arrivals (one instantaneous) at the exact completion instant.
		e.Spawn("chain", func(p *sim.Proc) {
			p.Wait(short.Done)
			n.Start("late", 50, 0, l)
			n.Start("blip", 0, 0, l)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return r, r.MaxConcurrent()
	}
	_, inc := run(false)
	_, ref := run(true)
	if inc != ref {
		t.Fatalf("MaxConcurrent diverges between solver modes: incremental %d vs reference %d", inc, ref)
	}
	// At the completion instant: short and long are open at entry, late
	// and blip start during it -> 4 alive.
	if inc != 4 {
		t.Errorf("MaxConcurrent = %d, want 4", inc)
	}
}

// TestMaxConcurrentMidRun: the still-open current instant counts without
// waiting for the next boundary.
func TestMaxConcurrentMidRun(t *testing.T) {
	_, n, r := build(t)
	l := n.NewLink("pipe", flow.Const(100))
	n.Start("a", 1000, 0, l)
	n.Start("b", 1000, 0, l)
	if r.MaxConcurrent() != 2 {
		t.Errorf("mid-run MaxConcurrent = %d, want 2", r.MaxConcurrent())
	}
}
