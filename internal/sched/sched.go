// Package sched simulates a batch scheduler in front of the shared file
// system: jobs queue for compute nodes, run their I/O workloads on the
// simulated Lustre installation, and contend with whoever else is
// running. It turns the paper's fixed four-job scenario into a general
// multi-tenant model — the "average I/O workload" the conclusion argues
// purchasing decisions should be made against.
package sched

import (
	"fmt"
	"sort"

	"pfsim/internal/cluster"
	"pfsim/internal/ior"
	"pfsim/internal/lustre"
	"pfsim/internal/sim"
	"pfsim/internal/stats"
)

// Submission is a job entering the queue at a given virtual time.
type Submission struct {
	Cfg      ior.Config
	SubmitAt float64
}

// Completed describes one finished job.
type Completed struct {
	Cfg       ior.Config
	Result    *ior.Result
	FirstNode int
	Submit    float64
	Start     float64
	End       float64
}

// Wait is the time spent queued.
func (c Completed) Wait() float64 { return c.Start - c.Submit }

// RunTime is the execution time.
func (c Completed) RunTime() float64 { return c.End - c.Start }

// Slowdown is turnaround over run time (1 = no queueing delay).
func (c Completed) Slowdown() float64 {
	rt := c.RunTime()
	if rt <= 0 {
		return 1
	}
	return (c.End - c.Submit) / rt
}

// Options configures the scheduler.
type Options struct {
	// Backfill lets later jobs start when the queue head does not fit —
	// EASY-style without reservations (jobs here are short relative to
	// queue dynamics).
	Backfill bool
	// Seed overrides the platform seed for the underlying system.
	Seed uint64
}

// Run executes the submissions on plat under FCFS (optionally with
// backfill) and returns completions in finish order plus the makespan.
func Run(plat *cluster.Platform, subs []Submission, opt Options) ([]Completed, float64, error) {
	if len(subs) == 0 {
		return nil, 0, fmt.Errorf("sched: no submissions")
	}
	seed := plat.Seed
	if opt.Seed != 0 {
		seed = opt.Seed
	}
	eng := sim.NewEngine()
	sys, err := lustre.NewSystem(eng, plat, stats.NewRNG(seed).Fork(0x5ced))
	if err != nil {
		return nil, 0, err
	}
	s := &state{
		plat:  plat,
		eng:   eng,
		sys:   sys,
		free:  make([]bool, plat.Nodes),
		opt:   opt,
		total: len(subs),
	}
	for i := range s.free {
		s.free[i] = true
	}
	ordered := append([]Submission(nil), subs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].SubmitAt < ordered[j].SubmitAt })
	for i, sub := range ordered {
		if err := sub.Cfg.Validate(plat); err != nil {
			return nil, 0, fmt.Errorf("sched: job %d: %w", i, err)
		}
		sub := sub
		eng.Schedule(sub.SubmitAt, func() {
			s.queue = append(s.queue, &queued{sub: sub, submit: eng.Now()})
			s.dispatch()
		})
	}
	if err := eng.Run(); err != nil {
		return nil, 0, fmt.Errorf("sched: %w", err)
	}
	if s.err != nil {
		return nil, 0, s.err
	}
	if len(s.done) != s.total {
		return nil, 0, fmt.Errorf("sched: %d of %d jobs completed", len(s.done), s.total)
	}
	return s.done, eng.Now(), nil
}

type queued struct {
	sub    Submission
	submit float64
}

type state struct {
	plat  *cluster.Platform
	eng   *sim.Engine
	sys   *lustre.System
	free  []bool
	queue []*queued
	done  []Completed
	opt   Options
	total int
	err   error
}

// dispatch starts every queue entry that can run under the policy.
func (s *state) dispatch() {
	for {
		started := false
		for i, q := range s.queue {
			if i > 0 && !s.opt.Backfill {
				break // strict FCFS: only the head may start
			}
			nodes := s.plat.NodesFor(q.sub.Cfg.NumTasks)
			first, ok := s.firstFit(nodes)
			if !ok {
				if i == 0 && !s.opt.Backfill {
					return
				}
				continue
			}
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.start(q, first, nodes)
			started = true
			break
		}
		if !started {
			return
		}
	}
}

// firstFit finds the lowest contiguous block of free nodes.
func (s *state) firstFit(n int) (int, bool) {
	run := 0
	for i, f := range s.free {
		if f {
			run++
			if run == n {
				return i - n + 1, true
			}
		} else {
			run = 0
		}
	}
	return 0, false
}

func (s *state) start(q *queued, first, nodes int) {
	for i := first; i < first+nodes; i++ {
		s.free[i] = false
	}
	cfg := q.sub.Cfg
	cfg.FirstNode = first
	rj, err := ior.StartJob(s.sys, cfg)
	if err != nil {
		if s.err == nil {
			s.err = err
		}
		s.eng.Stop()
		return
	}
	startAt := s.eng.Now()
	// A completion subscription rather than a watcher process: the job's
	// Done signal reschedules the dispatcher directly, so the scheduler
	// holds no parked goroutine per running job.
	rj.Done.OnFired(func() {
		if rj.Err() != nil && s.err == nil {
			s.err = rj.Err()
		}
		for i := first; i < first+nodes; i++ {
			s.free[i] = true
		}
		s.done = append(s.done, Completed{
			Cfg:       cfg,
			Result:    rj.Result,
			FirstNode: first,
			Submit:    q.submit,
			Start:     startAt,
			End:       s.eng.Now(),
		})
		s.dispatch()
	})
}

// Summary aggregates queueing metrics for a completed schedule.
type Summary struct {
	Makespan     float64
	MeanWait     float64
	MaxWait      float64
	MeanSlowdown float64
}

// Summarise computes queue metrics over completions.
func Summarise(done []Completed, makespan float64) Summary {
	s := Summary{Makespan: makespan}
	if len(done) == 0 {
		return s
	}
	for _, c := range done {
		w := c.Wait()
		s.MeanWait += w
		if w > s.MaxWait {
			s.MaxWait = w
		}
		s.MeanSlowdown += c.Slowdown()
	}
	s.MeanWait /= float64(len(done))
	s.MeanSlowdown /= float64(len(done))
	return s
}
