package sched

import (
	"testing"

	"pfsim/internal/cluster"
	"pfsim/internal/ior"
)

func smallCfg(label string, tasks int) ior.Config {
	cfg := ior.PaperConfig(tasks)
	cfg.Label = label
	cfg.Reps = 1
	cfg.SegmentCount = 10
	cfg.Hints = ior.TunedHints()
	return cfg
}

func tinyPlat() *cluster.Platform {
	p := cluster.Cab()
	p.JitterCV = 0
	p.Nodes = 8 // small machine makes queueing observable
	return p
}

func TestParallelWhenRoomExists(t *testing.T) {
	plat := tinyPlat()
	subs := []Submission{
		{Cfg: smallCfg("a", 64), SubmitAt: 0}, // 4 nodes
		{Cfg: smallCfg("b", 64), SubmitAt: 0}, // 4 nodes
	}
	done, makespan, err := Run(plat, subs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("completed = %d", len(done))
	}
	for _, c := range done {
		if c.Wait() > 1e-9 {
			t.Errorf("job %s waited %v; machine had room", c.Cfg.Label, c.Wait())
		}
	}
	if makespan <= 0 {
		t.Error("zero makespan")
	}
	// Jobs run on disjoint node blocks.
	if done[0].FirstNode == done[1].FirstNode {
		t.Error("jobs share a node block")
	}
}

func TestFCFSQueues(t *testing.T) {
	plat := tinyPlat()
	subs := []Submission{
		{Cfg: smallCfg("big1", 96), SubmitAt: 0}, // 6 nodes
		{Cfg: smallCfg("big2", 96), SubmitAt: 0}, // 6 nodes: must wait
	}
	done, _, err := Run(plat, subs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var first, second Completed
	for _, c := range done {
		switch c.Cfg.Label {
		case "big1":
			first = c
		case "big2":
			second = c
		}
	}
	if first.Wait() > 1e-9 {
		t.Errorf("first job waited %v", first.Wait())
	}
	if second.Start < first.End-1e-9 {
		t.Errorf("second started at %v before first ended at %v", second.Start, first.End)
	}
	if second.Slowdown() <= 1 {
		t.Errorf("queued job slowdown = %v, want > 1", second.Slowdown())
	}
}

func TestBackfillLetsSmallJobsJump(t *testing.T) {
	plat := tinyPlat()
	subs := []Submission{
		{Cfg: smallCfg("big1", 96), SubmitAt: 0}, // 6 nodes, runs
		{Cfg: smallCfg("big2", 96), SubmitAt: 0}, // 6 nodes, blocked
		{Cfg: smallCfg("tiny", 16), SubmitAt: 0}, // 1 node, fits beside big1
	}
	// Without backfill the tiny job waits behind big2.
	strict, _, err := Run(plat, subs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With backfill it starts immediately.
	relaxed, _, err := Run(plat, subs, Options{Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	waitOf := func(done []Completed, label string) float64 {
		for _, c := range done {
			if c.Cfg.Label == label {
				return c.Wait()
			}
		}
		t.Fatalf("job %s not found", label)
		return 0
	}
	if w := waitOf(relaxed, "tiny"); w > 1e-9 {
		t.Errorf("backfilled tiny job waited %v", w)
	}
	if waitOf(strict, "tiny") <= waitOf(relaxed, "tiny") {
		t.Error("backfill should reduce the tiny job's wait")
	}
}

func TestContentionVisibleAcrossScheduledJobs(t *testing.T) {
	// Two tuned jobs running simultaneously through the scheduler achieve
	// less than one running alone — the queue inherits the paper's story.
	plat := cluster.Cab()
	plat.JitterCV = 0
	solo, _, err := Run(plat, []Submission{
		{Cfg: smallCfg("solo", 1024), SubmitAt: 0},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	both, _, err := Run(plat, []Submission{
		{Cfg: smallCfg("j1", 1024), SubmitAt: 0},
		{Cfg: smallCfg("j2", 1024), SubmitAt: 0},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	soloBW := solo[0].Result.Write.Mean()
	for _, c := range both {
		if bw := c.Result.Write.Mean(); bw >= soloBW {
			t.Errorf("job %s reached %v MB/s despite contention (solo %v)", c.Cfg.Label, bw, soloBW)
		}
	}
}

func TestStaggeredSubmissions(t *testing.T) {
	plat := tinyPlat()
	subs := []Submission{
		{Cfg: smallCfg("late", 32), SubmitAt: 100},
		{Cfg: smallCfg("early", 32), SubmitAt: 1},
	}
	done, makespan, err := Run(plat, subs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range done {
		if c.Cfg.Label == "late" && c.Start < 100 {
			t.Errorf("late job started at %v before submission", c.Start)
		}
		if c.Cfg.Label == "early" && c.Start < 1 {
			t.Errorf("early job started at %v", c.Start)
		}
	}
	if makespan < 100 {
		t.Errorf("makespan %v ignores the late submission", makespan)
	}
	sum := Summarise(done, makespan)
	if sum.Makespan != makespan || sum.MeanSlowdown < 1 {
		t.Errorf("summary wrong: %+v", sum)
	}
}

func TestRunValidation(t *testing.T) {
	plat := tinyPlat()
	if _, _, err := Run(plat, nil, Options{}); err == nil {
		t.Error("no submissions accepted")
	}
	bad := smallCfg("bad", 64)
	bad.Reps = 0
	if _, _, err := Run(plat, []Submission{{Cfg: bad}}, Options{}); err == nil {
		t.Error("invalid config accepted")
	}
	// A job larger than the machine can never start.
	huge := smallCfg("huge", 1024) // 64 nodes on an 8-node machine
	if _, _, err := Run(plat, []Submission{{Cfg: huge}}, Options{}); err == nil {
		t.Error("oversized job should fail")
	}
}

func TestSummariseEmpty(t *testing.T) {
	s := Summarise(nil, 5)
	if s.Makespan != 5 || s.MeanWait != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}
