package workload

import (
	"fmt"

	"pfsim/internal/cluster"
	"pfsim/internal/flow"
	"pfsim/internal/ior"
	"pfsim/internal/lustre"
	"pfsim/internal/sim"
	"pfsim/internal/stats"
)

// ShardedResult is the outcome of a RunSharded execution: one Result per
// file system, plus the shared solver's work counters.
type ShardedResult struct {
	// Shards holds one scenario result per file system, in input order.
	// Per-shard Solver counters are zero — the solver is shared; see the
	// top-level Solver field.
	Shards []*Result
	// Makespan is the virtual time at which the last job of any shard
	// finished.
	Makespan float64
	// Solver holds the shared fluid solver's work counters for the whole
	// run. With the partitioned solver each shard is its own
	// link-connectivity component, so ComponentFlowsScanned /
	// ComponentsSolved reflects per-shard, not total, population.
	Solver flow.Stats
}

// RunSharded executes several scenarios as independent file systems
// ("shards") under one engine and one shared fluid network — the
// shared-nothing deployment shape: one simulation, many installations,
// disjoint link sets. Shard i runs on its own lustre.System (own MDS,
// OSTs, jitter draws, RNG stream forked from the scenario's labels and the
// shard index); the solver partitions the population by link
// connectivity, so cross-shard interference is structurally impossible
// and a change in one shard's traffic never scans another's flows. The
// run is deterministic for a given (platform, scenarios, seed) triple;
// seed 0 selects plat.Seed. Instrument hooks run against each freshly
// built system (shard index first) before any job launches.
func RunSharded(plat *cluster.Platform, shards []Scenario, seed uint64, instrument ...func(int, *lustre.System)) (*ShardedResult, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("workload: sharded run has no scenarios")
	}
	allCfgs := make([][]ior.Config, len(shards))
	for i, s := range shards {
		cfgs, err := s.materialise(plat)
		if err != nil {
			return nil, fmt.Errorf("workload: shard %d: %w", i, err)
		}
		allCfgs[i] = cfgs
	}
	if seed == 0 {
		seed = plat.Seed
	}
	eng := sim.NewEngine()
	net := flow.NewNet(eng)
	base := stats.NewRNG(seed)
	out := &ShardedResult{Shards: make([]*Result, len(shards))}
	launches := make([]*launchState, len(shards))
	for i, s := range shards {
		fork := s.seedHash(allCfgs[i]) ^ ior.HashLabel(fmt.Sprintf("shard%d", i))
		sys, err := lustre.NewSharedSystem(eng, net, plat, base.Fork(fork), fmt.Sprintf("fs%d/", i))
		if err != nil {
			return nil, err
		}
		for _, fn := range instrument {
			fn(i, sys)
		}
		res := &Result{Scenario: s, Jobs: make([]JobResult, len(allCfgs[i]))}
		out.Shards[i] = res
		launches[i] = launchScenario(sys, s, allCfgs[i], res)
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("workload: sharded run failed: %w", err)
	}
	// Surface launch failures first: a failed shard stops the engine early,
	// leaving other shards' delayed jobs unlaunched — their finish must not
	// mask the root cause.
	for i, ls := range launches {
		if ls.err != nil {
			return nil, fmt.Errorf("workload: shard %d: %w", i, ls.err)
		}
	}
	for i, ls := range launches {
		if err := ls.finish(out.Shards[i]); err != nil {
			return nil, fmt.Errorf("workload: shard %d: %w", i, err)
		}
		if out.Shards[i].Makespan > out.Makespan {
			out.Makespan = out.Shards[i].Makespan
		}
	}
	out.Solver = net.Stats()
	return out, nil
}

// Aggregate summarises the sharded run across every shard's jobs.
func (r *ShardedResult) Aggregate() Aggregate {
	var a Aggregate
	jobs := 0
	for _, sh := range r.Shards {
		sa := sh.Aggregate()
		a.TotalMBs += sa.TotalMBs
		if jobs == 0 || sa.MinMBs < a.MinMBs {
			a.MinMBs = sa.MinMBs
		}
		if sa.MaxMBs > a.MaxMBs {
			a.MaxMBs = sa.MaxMBs
		}
		jobs += len(sh.Jobs)
	}
	if jobs > 0 {
		a.MeanMBs = a.TotalMBs / float64(jobs)
	}
	return a
}
