package workload

import (
	"fmt"
	"math"

	"pfsim/internal/cluster"
	"pfsim/internal/flow"
	"pfsim/internal/ior"
	"pfsim/internal/lustre"
	"pfsim/internal/sim"
	"pfsim/internal/stats"
)

// ShardedResult is the outcome of a RunSharded execution: one Result per
// file system, plus the shared solver's work counters.
type ShardedResult struct {
	// Shards holds one scenario result per file system, in input order.
	// Per-shard Solver counters are zero — the solver is shared; see the
	// top-level Solver field.
	Shards []*Result
	// Makespan is the virtual time at which the last job of any shard
	// finished.
	Makespan float64
	// Solver holds the shared fluid solver's work counters for the whole
	// run. With the partitioned solver each shard is its own
	// link-connectivity component, so ComponentFlowsScanned /
	// ComponentsSolved reflects per-shard, not total, population.
	Solver flow.Stats
}

// RunSharded executes several scenarios as independent file systems
// ("shards") under one engine and one shared fluid network — the
// shared-nothing deployment shape: one simulation, many installations,
// disjoint link sets. Shard i runs on its own lustre.System (own MDS,
// OSTs, jitter draws, RNG stream forked from the scenario's labels and the
// shard index); the solver partitions the population by link
// connectivity, so cross-shard interference is structurally impossible
// and a change in one shard's traffic never scans another's flows. The
// run is deterministic for a given (platform, scenarios, seed) triple;
// seed 0 selects plat.Seed. Instrument hooks run against each freshly
// built system (shard index first) before any job launches.
func RunSharded(plat *cluster.Platform, shards []Scenario, seed uint64, instrument ...func(int, *lustre.System)) (*ShardedResult, error) {
	return RunShardedWith(plat, shards, RunOptions{Seed: seed}, instrument...)
}

// RunShardedWith is RunSharded with explicit run options. Shards are
// independent link-connectivity components of the shared solver, so
// Parallelism > 1 solves the components an instant dirtied on concurrent
// workers — byte-identical results at any setting, with the wall-clock
// win growing with the number of shards an instant touches. Ctx is
// polled every few thousand fired events across the (single, long)
// engine run; on cancellation the engine stops, its processes drain,
// and the call returns ctx.Err(). Instrument hooks run after the
// options are applied and may override them.
func RunShardedWith(plat *cluster.Platform, shards []Scenario, opts RunOptions, instrument ...func(int, *lustre.System)) (*ShardedResult, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("workload: sharded run has no scenarios")
	}
	allCfgs := make([][]ior.Config, len(shards))
	for i, s := range shards {
		cfgs, err := s.materialise(plat)
		if err != nil {
			return nil, fmt.Errorf("workload: shard %d: %w", i, err)
		}
		allCfgs[i] = cfgs
	}
	seed := opts.Seed
	if seed == 0 {
		seed = plat.Seed
	}
	eng := sim.NewEngine()
	defer eng.Drain() // early-stopped runs park procs; see RunScenarioWith
	net := flow.NewNet(eng)
	if opts.Parallelism > 1 {
		net.SetSolveParallelism(opts.Parallelism)
	}
	base := stats.NewRNG(seed)
	out := &ShardedResult{Shards: make([]*Result, len(shards))}
	launches := make([]*launchState, len(shards))
	for i, s := range shards {
		fork := s.seedHash(allCfgs[i]) ^ ior.HashLabel(fmt.Sprintf("shard%d", i))
		sys, err := lustre.NewSharedSystem(eng, net, plat, base.Fork(fork), fmt.Sprintf("fs%d/", i))
		if err != nil {
			return nil, err
		}
		for _, fn := range instrument {
			fn(i, sys)
		}
		res := &Result{Scenario: s, Jobs: make([]JobResult, len(allCfgs[i]))}
		out.Shards[i] = res
		launches[i] = launchScenario(sys, s, allCfgs[i], res)
	}
	cancelled := watchContext(eng, opts.Ctx)
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("workload: sharded run failed: %w", err)
	}
	if err := cancelled(); err != nil {
		return nil, err
	}
	// Surface launch failures first: a failed shard stops the engine early,
	// leaving other shards' delayed jobs unlaunched — their finish must not
	// mask the root cause.
	for i, ls := range launches {
		if ls.err != nil {
			return nil, fmt.Errorf("workload: shard %d: %w", i, ls.err)
		}
	}
	for i, ls := range launches {
		if err := ls.finish(out.Shards[i]); err != nil {
			return nil, fmt.Errorf("workload: shard %d: %w", i, err)
		}
		if out.Shards[i].Makespan > out.Makespan {
			out.Makespan = out.Shards[i].Makespan
		}
	}
	out.Solver = net.Stats()
	return out, nil
}

// Aggregate summarises the sharded run across every shard's jobs, with
// the same semantics as Result.Aggregate over the union of the jobs:
// min/max/mean/total of per-job mean write bandwidth, and slowdown
// statistics over the jobs that have baselines (RunSharded computes
// none, but ApplySolo on the per-shard results fills them in). It
// iterates the jobs directly rather than folding per-shard aggregates —
// an earlier revision let a job-less shard's zero-valued aggregate drag
// the cross-shard MinMBs to 0, and dropped the slowdown fields entirely.
func (r *ShardedResult) Aggregate() Aggregate {
	var a Aggregate
	a.MinMBs = math.Inf(1)
	jobs, slowdowns := 0, 0
	for _, sh := range r.Shards {
		for i := range sh.Jobs {
			jr := &sh.Jobs[i]
			bw := jr.WriteMBs()
			a.TotalMBs += bw
			a.MinMBs = math.Min(a.MinMBs, bw)
			a.MaxMBs = math.Max(a.MaxMBs, bw)
			if sd := jr.Slowdown; sd > 0 {
				a.MeanSlowdown += sd
				a.MaxSlowdown = math.Max(a.MaxSlowdown, sd)
				slowdowns++
			}
			jobs++
		}
	}
	if jobs == 0 {
		return Aggregate{}
	}
	a.MeanMBs = a.TotalMBs / float64(jobs)
	if slowdowns > 0 {
		a.MeanSlowdown /= float64(slowdowns)
	}
	return a
}
