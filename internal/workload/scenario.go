package workload

import (
	"fmt"
	"math"

	"pfsim/internal/cluster"
	"pfsim/internal/flow"
	"pfsim/internal/ior"
	"pfsim/internal/lustre"
	"pfsim/internal/mpiio"
	"pfsim/internal/sim"
	"pfsim/internal/stats"
)

// Workload is one application in a contention scenario. Implementations
// materialise themselves as an execution on the simulated I/O stack; the
// scenario machinery handles placement, start times and striping hints.
type Workload interface {
	// Label names the workload in results (must be stable; the scenario
	// deduplicates clashes).
	Label() string
	// Config materialises the workload as an IOR-engine execution for the
	// given platform. FirstNode and hint overrides are applied afterwards
	// by the scenario.
	Config(plat *cluster.Platform) ior.Config
}

// IORJob wraps a raw IOR configuration as a scenario workload — the
// striped collective writers of the paper's Sections IV and V.
type IORJob struct {
	Cfg ior.Config
}

// Label returns the configuration's label.
func (w IORJob) Label() string { return w.Cfg.Label }

// Config returns the wrapped configuration.
func (w IORJob) Config(*cluster.Platform) ior.Config { return w.Cfg }

// PLFSLogger is an n-rank application writing through ad_plfs: every rank
// appends to its own two-stripe log, the self-contending pattern of the
// paper's Section VI.
type PLFSLogger struct {
	// Name labels the job ("plfs-<ranks>" when empty).
	Name string
	// Ranks is the number of logging processes.
	Ranks int
	// MBPerRank is the volume each rank logs (default 400, the Table II
	// per-rank volume).
	MBPerRank float64
	// TransferMB is the append granularity (default 1).
	TransferMB float64
	// Reps recreates the container this many times (default 1).
	Reps int
}

// Label returns the job name.
func (w PLFSLogger) Label() string {
	if w.Name != "" {
		return w.Name
	}
	return fmt.Sprintf("plfs-%d", w.Ranks)
}

// Config materialises the logger as a PLFS-driver write.
func (w PLFSLogger) Config(*cluster.Platform) ior.Config {
	mb := w.MBPerRank
	if mb <= 0 {
		mb = 400
	}
	tr := w.TransferMB
	if tr <= 0 {
		tr = math.Min(1, mb)
	}
	reps := w.Reps
	if reps <= 0 {
		reps = 1
	}
	return ior.Config{
		Label:          w.Label(),
		API:            mpiio.DriverPLFS,
		BlockSizeMB:    mb,
		TransferSizeMB: tr,
		SegmentCount:   1,
		NumTasks:       w.Ranks,
		WriteFile:      true,
		Collective:     true,
		Hints:          mpiio.NewHints(),
		Reps:           reps,
	}
}

// Checkpointer runs a Checkpoint application as a periodic writer: it
// writes Checkpoints state dumps separated by the application's compute
// phase, so its I/O bursts interleave with the other scenario jobs in
// time rather than arriving back to back.
type Checkpointer struct {
	// Name labels the job ("checkpoint-<ranks>" when empty).
	Name string
	// App describes the checkpointing application.
	App Checkpoint
	// API selects the MPI-IO driver. The zero value (ad_ufs) is treated
	// as unset and defaults to ad_lustre — a ufs checkpointer would
	// silently discard its striping hints; wrap Checkpoint.IORConfig in
	// an IORJob to express one deliberately.
	API mpiio.Driver
	// Hints are the striping hints (zero value: defaults).
	Hints mpiio.Hints
	// Checkpoints is the number of state dumps to write (default 1).
	Checkpoints int
}

// Label returns the job name.
func (w Checkpointer) Label() string {
	if w.Name != "" {
		return w.Name
	}
	return fmt.Sprintf("checkpoint-%d", w.App.Ranks)
}

// Config materialises the checkpointer as a multi-repetition write with
// compute gaps.
func (w Checkpointer) Config(*cluster.Platform) ior.Config {
	hints := w.Hints
	if hints == (mpiio.Hints{}) {
		hints = mpiio.NewHints()
	}
	api := w.API
	if api == mpiio.DriverUFS {
		api = mpiio.DriverLustre
	}
	cfg := w.App.IORConfig(api, hints)
	cfg.Label = w.Label()
	if w.Checkpoints > 1 {
		cfg.Reps = w.Checkpoints
	}
	cfg.ComputeSeconds = w.App.ComputeSeconds
	return cfg
}

// Job places one workload inside a scenario.
type Job struct {
	// Workload is the application to run.
	Workload Workload
	// StartAt delays the job's launch by this many virtual seconds after
	// scenario start.
	StartAt float64
	// FirstNode pins the job's node range when positive. Zero (the
	// default) packs the job onto the first nodes after the previously
	// placed jobs.
	FirstNode int
	// Stripes overrides the workload's striping_factor hint when positive.
	Stripes int
	// StripeSizeMB overrides the striping_unit hint when positive.
	StripeSizeMB float64
}

// Scenario composes an arbitrary heterogeneous mix of workloads sharing
// one simulated file system — the generalisation of the paper's "n
// identical striped jobs" contention shape.
type Scenario struct {
	// Name seeds the scenario's RNG stream (with the job labels) and
	// titles reports.
	Name string
	// Jobs are the concurrent applications.
	Jobs []Job
}

// NewScenario returns a named scenario over the given jobs.
func NewScenario(name string, jobs ...Job) Scenario {
	return Scenario{Name: name, Jobs: jobs}
}

// Add appends a job and returns the scenario for chaining.
func (s Scenario) Add(job Job) Scenario {
	s.Jobs = append(s.Jobs, job)
	return s
}

// UniformScenario returns n copies of one workload on disjoint
// auto-placed node ranges — the paper's Section V scenario as a special
// case.
func UniformScenario(name string, w Workload, n int) Scenario {
	s := Scenario{Name: name}
	for i := 0; i < n; i++ {
		s.Jobs = append(s.Jobs, Job{Workload: w})
	}
	return s
}

// Scenario converts the mix into a scenario of striped IOR jobs.
func (m JobMix) Scenario(name string) (Scenario, error) {
	if err := m.Validate(); err != nil {
		return Scenario{}, err
	}
	s := Scenario{Name: name}
	for i := range m.Tasks {
		cfg := ior.PaperConfig(m.Tasks[i])
		cfg.Label = fmt.Sprintf("mix-job%d", i)
		s.Jobs = append(s.Jobs, Job{
			Workload:     IORJob{Cfg: cfg},
			Stripes:      m.Requests[i],
			StripeSizeMB: m.SizesMB[i],
		})
	}
	return s, nil
}

// Validate checks the scenario against a platform without running it:
// every job must resolve to a valid configuration on non-overlapping
// node ranges with a sane start time. It is the dry-run behind
// `pfsim-scenario validate`.
func (s Scenario) Validate(plat *cluster.Platform) error {
	_, err := s.materialise(plat)
	return err
}

// title names the scenario in errors ("scenario" when unnamed).
func (s Scenario) title() string {
	if s.Name == "" {
		return "scenario"
	}
	return fmt.Sprintf("scenario %q", s.Name)
}

// materialise resolves every job to a placed, validated configuration.
func (s Scenario) materialise(plat *cluster.Platform) ([]ior.Config, error) {
	if len(s.Jobs) == 0 {
		return nil, fmt.Errorf("workload: %s has no jobs", s.title())
	}
	type span struct{ from, to int }
	var spans []span
	cursor := 0
	cfgs := make([]ior.Config, len(s.Jobs))

	// Resolve every workload first so label dedup can see all base labels
	// up front. Renaming duplicates to "<base>-jobN" must dodge both labels
	// already assigned and later literal labels: jobs ["x", "x", "x-job1"]
	// once produced two jobs named "x-job1", breaking Result.Job lookups.
	for i, job := range s.Jobs {
		if job.Workload == nil {
			return nil, fmt.Errorf("workload: %s job %d has no workload", s.title(), i)
		}
		if job.StartAt < 0 || math.IsNaN(job.StartAt) {
			return nil, fmt.Errorf("workload: %s job %d: StartAt %v must be non-negative",
				s.title(), i, job.StartAt)
		}
		cfgs[i] = job.Workload.Config(plat)
	}
	taken := make(map[string]bool, len(cfgs)) // base labels + assigned labels
	for i := range cfgs {
		taken[cfgs[i].Label] = true
	}
	assigned := make(map[string]bool, len(cfgs))
	for i := range cfgs {
		base := cfgs[i].Label
		if assigned[base] {
			n := 1
			candidate := fmt.Sprintf("%s-job%d", base, n)
			for taken[candidate] || assigned[candidate] {
				n++
				candidate = fmt.Sprintf("%s-job%d", base, n)
			}
			cfgs[i].Label = candidate
		}
		assigned[cfgs[i].Label] = true
	}

	for i, job := range s.Jobs {
		cfg := cfgs[i]
		if job.Stripes > 0 {
			cfg.Hints.StripingFactor = job.Stripes
		}
		if job.StripeSizeMB > 0 {
			cfg.Hints.StripingUnitMB = job.StripeSizeMB
		}
		if job.FirstNode > 0 {
			cfg.FirstNode = job.FirstNode
		} else {
			cfg.FirstNode = cursor
		}
		if err := cfg.Validate(plat); err != nil {
			return nil, fmt.Errorf("workload: %s job %q: %w", s.title(), cfg.Label, err)
		}
		sp := span{cfg.FirstNode, cfg.FirstNode + plat.NodesFor(cfg.NumTasks) - 1}
		for j, other := range spans {
			if sp.from <= other.to && other.from <= sp.to {
				return nil, fmt.Errorf("workload: %s: job %q overlaps job %q on nodes %d..%d",
					s.title(), cfg.Label, cfgs[j].Label, max(sp.from, other.from), min(sp.to, other.to))
			}
		}
		spans = append(spans, sp)
		if sp.to+1 > cursor {
			cursor = sp.to + 1
		}
		cfgs[i] = cfg
	}
	return cfgs, nil
}

// seedHash mixes the scenario name and job labels into the RNG-fork key.
// An unnamed single-job scenario hashes to ior.HashLabel(label), so it
// reproduces ior.Run byte for byte.
func (s Scenario) seedHash(cfgs []ior.Config) uint64 {
	var h uint64
	if s.Name != "" {
		h = ior.HashLabel(s.Name)
	}
	for _, cfg := range cfgs {
		h ^= ior.HashLabel(cfg.Label)
	}
	return h
}

// JobResult is the outcome of one scenario job.
type JobResult struct {
	// Label names the job.
	Label string
	// Config is the materialised configuration the job ran with.
	Config ior.Config
	// IOR holds the per-repetition bandwidth samples and layouts.
	IOR *ior.Result
	// StartAt and FinishedAt bound the job in virtual time.
	StartAt    float64
	FinishedAt float64
	// SoloMBs is the job's mean write bandwidth on an idle system (0
	// until a baseline pass fills it in).
	SoloMBs float64
	// Slowdown is SoloMBs over the contended mean (0 until baselines are
	// filled in; 1 means the job was unaffected by its neighbours).
	Slowdown float64
}

// WriteMBs is the job's mean aggregate write bandwidth under contention.
func (jr *JobResult) WriteMBs() float64 { return jr.IOR.Write.Mean() }

// Aggregate summarises a scenario across its jobs.
type Aggregate struct {
	// MeanMBs / MinMBs / MaxMBs summarise per-job mean write bandwidth.
	MeanMBs, MinMBs, MaxMBs float64
	// TotalMBs is the sum of per-job means — the file system's delivered
	// bandwidth.
	TotalMBs float64
	// MeanSlowdown / MaxSlowdown summarise slowdown vs solo (0 when no
	// baselines were computed).
	MeanSlowdown, MaxSlowdown float64
}

// Result is the outcome of one scenario execution.
type Result struct {
	// Scenario is the executed scenario.
	Scenario Scenario
	// Jobs holds one result per scenario job, in scenario order.
	Jobs []JobResult
	// Makespan is the virtual time at which the last job finished.
	Makespan float64
	// Solver holds the fluid solver's work counters for the run — solves,
	// link visits, rate-fixing rounds, flows scanned and completion-heap
	// operations. Machine-independent and deterministic, so progress and
	// capacity tooling can report simulation cost alongside bandwidth.
	Solver flow.Stats
}

// Aggregate computes cross-job summary statistics.
func (r *Result) Aggregate() Aggregate {
	var a Aggregate
	if len(r.Jobs) == 0 {
		return a
	}
	a.MinMBs = math.Inf(1)
	slowdowns := 0
	for i := range r.Jobs {
		bw := r.Jobs[i].WriteMBs()
		a.TotalMBs += bw
		a.MinMBs = math.Min(a.MinMBs, bw)
		a.MaxMBs = math.Max(a.MaxMBs, bw)
		if sd := r.Jobs[i].Slowdown; sd > 0 {
			a.MeanSlowdown += sd
			a.MaxSlowdown = math.Max(a.MaxSlowdown, sd)
			slowdowns++
		}
	}
	a.MeanMBs = a.TotalMBs / float64(len(r.Jobs))
	if slowdowns > 0 {
		a.MeanSlowdown /= float64(slowdowns)
	}
	return a
}

// Job returns the result labelled label (nil when absent).
func (r *Result) Job(label string) *JobResult {
	for i := range r.Jobs {
		if r.Jobs[i].Label == label {
			return &r.Jobs[i]
		}
	}
	return nil
}

// RunScenario executes the scenario on one simulated system: every job
// launches at its StartAt on its node range, sharing the MDS, network and
// OSTs. The run is deterministic for a given (platform, scenario, seed)
// triple; seed 0 selects plat.Seed. Slowdown baselines are not computed
// here — see SoloConfigs. Instrument hooks run against the freshly built
// system before any job launches (e.g. to attach a trace recorder).
func RunScenario(plat *cluster.Platform, s Scenario, seed uint64, instrument ...func(*lustre.System)) (*Result, error) {
	return RunScenarioWith(plat, s, RunOptions{Seed: seed}, instrument...)
}

// RunScenarioWith is RunScenario with explicit run options: the solver's
// component-solve parallelism (byte-identical at any setting) and a
// cancellation context polled mid-run. Instrument hooks run after the
// options are applied, so they may override them (e.g. a benchmark
// forcing a solver mode).
func RunScenarioWith(plat *cluster.Platform, s Scenario, opts RunOptions, instrument ...func(*lustre.System)) (*Result, error) {
	cfgs, err := s.materialise(plat)
	if err != nil {
		return nil, err
	}
	if opts.UseProcShim {
		for i := range cfgs {
			cfgs[i].UseProcShim = true
		}
	}
	seed := opts.Seed
	if seed == 0 {
		seed = plat.Seed
	}
	eng := sim.NewEngine()
	// A run stopped early (cancellation, launch failure) leaves simulated
	// processes parked on their resume channels; drain them on every exit
	// so nothing pins the engine. No-op after a normal completion.
	defer eng.Drain()
	sys, err := lustre.NewSystem(eng, plat, stats.NewRNG(seed).Fork(s.seedHash(cfgs)))
	if err != nil {
		return nil, err
	}
	if opts.Parallelism > 1 {
		sys.Net().SetSolveParallelism(opts.Parallelism)
	}
	for _, fn := range instrument {
		fn(sys)
	}
	res := &Result{Scenario: s, Jobs: make([]JobResult, len(cfgs))}
	launch := launchScenario(sys, s, cfgs, res)
	cancelled := watchContext(eng, opts.Ctx)
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("workload: %s failed: %w", s.title(), err)
	}
	if err := cancelled(); err != nil {
		return nil, err
	}
	if err := launch.finish(res); err != nil {
		return nil, err
	}
	res.Solver = sys.Net().Stats()
	return res, nil
}

// launchState tracks one scenario's in-flight jobs between launch and the
// end of the engine run.
type launchState struct {
	running []*ior.RunningJob
	err     error
}

// launchScenario schedules every job of the materialised scenario on sys:
// jobs with a StartAt launch via a timer, the rest immediately. A launch
// failure stops the engine and surfaces through finish.
func launchScenario(sys *lustre.System, s Scenario, cfgs []ior.Config, res *Result) *launchState {
	eng := sys.Engine()
	ls := &launchState{running: make([]*ior.RunningJob, len(cfgs))}
	for i := range cfgs {
		i := i
		res.Jobs[i] = JobResult{Label: cfgs[i].Label, Config: cfgs[i], StartAt: s.Jobs[i].StartAt}
		start := func() {
			rj, err := ior.StartJob(sys, cfgs[i])
			if err != nil {
				if ls.err == nil {
					ls.err = err
				}
				eng.Stop()
				return
			}
			ls.running[i] = rj
			res.Jobs[i].IOR = rj.Result
			// A subscription, not a watcher process: the completion stamp
			// needs no goroutine parked for the whole run.
			rj.Done.OnFired(func() {
				res.Jobs[i].FinishedAt = eng.Now()
			})
		}
		if s.Jobs[i].StartAt > 0 {
			eng.Schedule(s.Jobs[i].StartAt, start)
		} else {
			start()
		}
	}
	return ls
}

// finish surfaces launch and rank errors after the engine drained and
// fills in the result's makespan.
func (ls *launchState) finish(res *Result) error {
	if ls.err != nil {
		return ls.err
	}
	for i := range ls.running {
		if ls.running[i] == nil {
			// A StartAt timer never fired: something stopped the engine
			// before this job launched (a launch failure in a sibling shard
			// — surfaced by the caller before finish runs — or an external
			// Engine.Stop). Never report a half-run scenario as success.
			return fmt.Errorf("workload: job %q never launched (engine stopped early)",
				res.Jobs[i].Label)
		}
		if err := ls.running[i].Err(); err != nil {
			return err
		}
		if res.Jobs[i].FinishedAt > res.Makespan {
			res.Makespan = res.Jobs[i].FinishedAt
		}
	}
	return nil
}

// soloKey identifies configurations that share a baseline: placement does
// not affect a solo run, everything else does.
func soloKey(cfg ior.Config) ior.Config {
	cfg.Label = ""
	cfg.FirstNode = 0
	return cfg
}

// SoloConfigs returns one representative configuration per distinct job
// shape in the result, keyed for ApplySolo. Baselines are independent
// single-job simulations, so callers can fan them across a worker pool.
func (r *Result) SoloConfigs() []ior.Config {
	seen := map[ior.Config]bool{}
	var out []ior.Config
	for i := range r.Jobs {
		key := soloKey(r.Jobs[i].Config)
		if seen[key] {
			continue
		}
		seen[key] = true
		cfg := r.Jobs[i].Config
		cfg.FirstNode = 0
		out = append(out, cfg)
	}
	return out
}

// ApplySolo fills in SoloMBs and Slowdown from baseline results produced
// by running SoloConfigs; the map key is the baseline's config as
// returned by SoloConfigs.
func (r *Result) ApplySolo(baselines map[ior.Config]*ior.Result) {
	// Re-index by shape key so each job does one deterministic lookup.
	// SoloConfigs emits one config per distinct soloKey, so the writes
	// land under distinct keys and the index is independent of the
	// iteration order (an earlier revision scanned the map per job,
	// picking a map-order-dependent winner on duplicate shapes).
	bySolo := make(map[ior.Config]*ior.Result, len(baselines))
	//pfsim:orderok — distinct-key re-index; contents independent of order
	for cfg, base := range baselines {
		bySolo[soloKey(cfg)] = base
	}
	for i := range r.Jobs {
		jr := &r.Jobs[i]
		base, ok := bySolo[soloKey(jr.Config)]
		if !ok {
			continue
		}
		jr.SoloMBs = base.Write.Mean()
		if bw := jr.WriteMBs(); bw > 0 {
			jr.Slowdown = jr.SoloMBs / bw
		}
	}
}
