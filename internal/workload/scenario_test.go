package workload

import (
	"strings"
	"testing"

	"pfsim/internal/cluster"
	"pfsim/internal/ior"
	"pfsim/internal/mpiio"
)

func quietCab() *cluster.Platform {
	p := cluster.Cab()
	p.JitterCV = 0
	return p
}

// smallIOR is a fast tuned collective writer for scenario tests.
func smallIOR(label string, tasks int) ior.Config {
	cfg := ior.PaperConfig(tasks)
	cfg.Label = label
	cfg.SegmentCount = 5
	cfg.Reps = 1
	cfg.Hints = ior.TunedHints()
	return cfg
}

func TestSingleJobScenarioMatchesIORRun(t *testing.T) {
	plat := cluster.Cab() // jitter on: exact match must survive randomness
	cfg := smallIOR("match", 64)
	direct, err := ior.Run(plat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(plat, Scenario{Jobs: []Job{{Workload: IORJob{Cfg: cfg}}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, want := res.Jobs[0].IOR.Write.Values(), direct.Write.Values()
	if len(got) != len(want) {
		t.Fatalf("rep counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rep %d: scenario %v != ior.Run %v", i, got[i], want[i])
		}
	}
}

func TestHeterogeneousScenario(t *testing.T) {
	plat := quietCab()
	sc := NewScenario("hetero",
		Job{Workload: IORJob{Cfg: smallIOR("striped", 128)}},
		Job{Workload: PLFSLogger{Ranks: 256, MBPerRank: 20}},
	)
	res, err := RunScenario(plat, sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	if res.Jobs[0].Label != "striped" || res.Jobs[1].Label != "plfs-256" {
		t.Errorf("labels = %q, %q", res.Jobs[0].Label, res.Jobs[1].Label)
	}
	// Auto-placement: the PLFS job sits after the striped job's nodes.
	if res.Jobs[1].Config.FirstNode != plat.NodesFor(128) {
		t.Errorf("plfs FirstNode = %d, want %d", res.Jobs[1].Config.FirstNode, plat.NodesFor(128))
	}
	for i := range res.Jobs {
		if res.Jobs[i].WriteMBs() <= 0 {
			t.Errorf("job %d: no bandwidth", i)
		}
		if res.Jobs[i].FinishedAt <= 0 {
			t.Errorf("job %d: no finish time", i)
		}
	}
	if res.Makespan < res.Jobs[0].FinishedAt || res.Makespan < res.Jobs[1].FinishedAt {
		t.Error("makespan below a job finish time")
	}
	agg := res.Aggregate()
	if agg.TotalMBs <= 0 || agg.MinMBs > agg.MaxMBs || agg.MeanMBs <= 0 {
		t.Errorf("aggregate wrong: %+v", agg)
	}
	if res.Job("striped") == nil || res.Job("nope") != nil {
		t.Error("Job lookup broken")
	}
}

func TestScenarioDeterministicForSeed(t *testing.T) {
	plat := cluster.Cab() // jitter on
	run := func() *Result {
		sc := NewScenario("det",
			Job{Workload: IORJob{Cfg: smallIOR("a", 64)}},
			Job{Workload: PLFSLogger{Ranks: 128, MBPerRank: 10}},
		)
		res, err := RunScenario(plat, sc, 77)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Jobs {
		av, bv := a.Jobs[i].IOR.Write.Values(), b.Jobs[i].IOR.Write.Values()
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("job %d rep %d: %v != %v", i, j, av[j], bv[j])
			}
		}
		if a.Jobs[i].FinishedAt != b.Jobs[i].FinishedAt {
			t.Fatalf("job %d finish times differ", i)
		}
	}
	// A different seed must actually change the draw.
	c, err := RunScenario(plat, NewScenario("det",
		Job{Workload: IORJob{Cfg: smallIOR("a", 64)}},
		Job{Workload: PLFSLogger{Ranks: 128, MBPerRank: 10}},
	), 78)
	if err != nil {
		t.Fatal(err)
	}
	if c.Jobs[0].IOR.Write.Values()[0] == a.Jobs[0].IOR.Write.Values()[0] {
		t.Error("seed change did not perturb the run")
	}
}

func TestScenarioStartTimes(t *testing.T) {
	plat := quietCab()
	sc := NewScenario("staggered",
		Job{Workload: IORJob{Cfg: smallIOR("early", 64)}},
		Job{Workload: IORJob{Cfg: smallIOR("late", 64)}, StartAt: 1000},
	)
	res, err := RunScenario(plat, sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[1].FinishedAt < 1000 {
		t.Errorf("late job finished at %v, before its start time", res.Jobs[1].FinishedAt)
	}
	if res.Jobs[0].FinishedAt >= res.Jobs[1].FinishedAt {
		t.Error("early job should finish before the late one")
	}
}

func TestScenarioDuplicateLabelsRenamed(t *testing.T) {
	plat := quietCab()
	sc := UniformScenario("uniform", IORJob{Cfg: smallIOR("same", 32)}, 3)
	res, err := RunScenario(plat, sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := range res.Jobs {
		if seen[res.Jobs[i].Label] {
			t.Fatalf("duplicate label %q", res.Jobs[i].Label)
		}
		seen[res.Jobs[i].Label] = true
	}
}

func TestScenarioValidation(t *testing.T) {
	plat := quietCab()
	if _, err := RunScenario(plat, Scenario{Name: "empty"}, 0); err == nil {
		t.Error("empty scenario accepted")
	}
	if _, err := RunScenario(plat, NewScenario("nil", Job{}), 0); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := RunScenario(plat, NewScenario("neg",
		Job{Workload: IORJob{Cfg: smallIOR("x", 32)}, StartAt: -1}), 0); err == nil {
		t.Error("negative start accepted")
	}
	// Pinned overlap: both jobs claim node 4.
	_, err := RunScenario(plat, NewScenario("overlap",
		Job{Workload: IORJob{Cfg: smallIOR("p", 32)}, FirstNode: 4},
		Job{Workload: IORJob{Cfg: smallIOR("q", 32)}, FirstNode: 4},
	), 0)
	if err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Errorf("overlap not rejected: %v", err)
	}
}

func TestScenarioStripeOverrides(t *testing.T) {
	plat := quietCab()
	sc := NewScenario("hints",
		Job{Workload: IORJob{Cfg: smallIOR("j", 32)}, Stripes: 48, StripeSizeMB: 64})
	res, err := RunScenario(plat, sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Jobs[0].Config.Hints
	if h.StripingFactor != 48 || h.StripingUnitMB != 64 {
		t.Errorf("hints = %+v", h)
	}
}

func TestSoloBaselines(t *testing.T) {
	plat := quietCab()
	sc := UniformScenario("base", IORJob{Cfg: smallIOR("same", 64)}, 2)
	res, err := RunScenario(plat, sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	solos := res.SoloConfigs()
	if len(solos) != 1 {
		t.Fatalf("identical jobs should share one baseline, got %d", len(solos))
	}
	base, err := ior.Run(plat, solos[0])
	if err != nil {
		t.Fatal(err)
	}
	res.ApplySolo(map[ior.Config]*ior.Result{solos[0]: base})
	for i := range res.Jobs {
		if res.Jobs[i].SoloMBs != base.Write.Mean() {
			t.Errorf("job %d solo = %v", i, res.Jobs[i].SoloMBs)
		}
		if res.Jobs[i].Slowdown < 1 {
			t.Errorf("job %d slowdown = %v, contention should not speed jobs up",
				i, res.Jobs[i].Slowdown)
		}
	}
	agg := res.Aggregate()
	if agg.MeanSlowdown < 1 || agg.MaxSlowdown < agg.MeanSlowdown {
		t.Errorf("aggregate slowdowns wrong: %+v", agg)
	}
}

func TestCheckpointerSpacing(t *testing.T) {
	plat := quietCab()
	app := Checkpoint{Ranks: 32, StateMBPerRank: 10, ComputeSeconds: 500, MTBFSeconds: 86400}
	ck := Checkpointer{App: app, API: mpiio.DriverLustre, Hints: ior.TunedHints(), Checkpoints: 3}
	res, err := RunScenario(plat, NewScenario("", Job{Workload: ck}), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Three checkpoints with two 500 s compute phases between them: the
	// job cannot finish before 1,000 s of virtual time.
	if res.Jobs[0].FinishedAt < 1000 {
		t.Errorf("finished at %v, want >= 1000 (compute gaps missing)", res.Jobs[0].FinishedAt)
	}
	if n := res.Jobs[0].IOR.Write.N(); n != 3 {
		t.Errorf("checkpoints recorded = %d, want 3", n)
	}
}

func TestJobMixScenario(t *testing.T) {
	m := Uniform(3, 64, 96, 64)
	sc, err := m.Scenario("mix")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Jobs) != 3 {
		t.Fatalf("jobs = %d", len(sc.Jobs))
	}
	res, err := RunScenario(quietCab(), sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Jobs {
		if res.Jobs[i].Config.Hints.StripingFactor != 96 {
			t.Errorf("job %d stripes = %d", i, res.Jobs[i].Config.Hints.StripingFactor)
		}
	}
	bad := JobMix{Tasks: []int{1}, Requests: []int{1, 2}, SizesMB: []float64{1}}
	if _, err := bad.Scenario("bad"); err == nil {
		t.Error("ragged mix accepted")
	}
}

func TestScenarioLabelCollisionProof(t *testing.T) {
	// Jobs labelled ["x", "x", "x-job1"] once produced two jobs named
	// "x-job1": the second "x" was renamed into the third job's literal
	// label, breaking Result.Job lookups and report keys. Renames must
	// dodge later literal labels too.
	plat := quietCab()
	sc := NewScenario("collide",
		Job{Workload: IORJob{Cfg: smallIOR("x", 16)}},
		Job{Workload: IORJob{Cfg: smallIOR("x", 16)}},
		Job{Workload: IORJob{Cfg: smallIOR("x-job1", 16)}},
	)
	res, err := RunScenario(plat, sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i := range res.Jobs {
		seen[res.Jobs[i].Label]++
	}
	for label, n := range seen {
		if n > 1 {
			t.Fatalf("label %q assigned to %d jobs: %v", label, n, seen)
		}
	}
	// The literal label must survive untouched, and every label must
	// resolve to exactly one job via the lookup API.
	if res.Jobs[2].Label != "x-job1" {
		t.Errorf("literal label rewritten to %q", res.Jobs[2].Label)
	}
	for i := range res.Jobs {
		if jr := res.Job(res.Jobs[i].Label); jr != &res.Jobs[i] {
			t.Errorf("Result.Job(%q) resolved to the wrong job", res.Jobs[i].Label)
		}
	}
}

func TestScenarioDedupKeepsHistoricNames(t *testing.T) {
	// The common case — n identical labels — must keep the established
	// "x", "x-job1", "x-job2" naming so seeds and report keys are stable.
	plat := quietCab()
	sc := UniformScenario("uniform", IORJob{Cfg: smallIOR("x", 16)}, 3)
	cfgs, err := sc.materialise(plat)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"x", "x-job1", "x-job2"}
	for i, w := range want {
		if cfgs[i].Label != w {
			t.Errorf("job %d label = %q, want %q", i, cfgs[i].Label, w)
		}
	}
}
