package workload

import (
	"context"

	"pfsim/internal/sim"
)

// RunOptions configures RunScenarioWith and RunShardedWith beyond the
// platform: the RNG seed, the fluid solver's worker count, and an
// optional cancellation context. The zero value reproduces the plain
// RunScenario/RunSharded behaviour (platform seed, serial solver, no
// cancellation).
type RunOptions struct {
	// Seed drives OST layouts and service jitter; 0 selects plat.Seed.
	Seed uint64
	// Parallelism is the number of workers the fluid solver may use to
	// solve independent dirty components concurrently (values <= 1 solve
	// serially). Simulations are byte-identical at any setting — only
	// wall-clock time changes — so it is safe to pass the caller's pool
	// width. See flow.Net.SetSolveParallelism.
	Parallelism int
	// Ctx, when it carries a Done channel, aborts the simulation mid-run:
	// the engine polls it every few thousand fired events — bounding
	// cancellation latency in wall-clock terms however dense or sparse
	// the event schedule — stops once the context is cancelled, and the
	// run returns ctx.Err(). A nil or background context never cancels.
	Ctx context.Context
	// UseProcShim runs every job's ranks on the goroutine-backed sim.Proc
	// shim instead of inline engine tasks (see ior.Config.UseProcShim).
	// Results are byte-identical either way; the flag exists for the
	// property tests that prove it.
	UseProcShim bool
}

// ctxCheckEvents is the cancellation polling period, in fired engine
// events. Events are what consume wall-clock time — virtual time is
// free — so polling per event batch bounds cancellation latency in the
// unit that matters: a dense simulation (millions of events inside one
// virtual second) notices a cancel within one batch, and a sparse
// long-horizon one pays almost no polls at all. A context poll is two
// atomic-ish reads; at this period the overhead is unmeasurable.
const ctxCheckEvents = 4096

// watchContext arms cancellation on eng: a context already cancelled at
// arm time stops the engine before it runs at all; otherwise a poll hook
// (sim.Engine.SetPoll) checks the context every ctxCheckEvents fired
// events and stops the engine once it is done. The hook injects no
// events and touches no simulation state, so a watched run's physics —
// event order, virtual time, every result — is byte-identical to an
// unwatched one. The returned func reports the context error to surface
// after eng.Run(); it returns nil for contexts that cannot be cancelled,
// which arm nothing at all.
func watchContext(eng *sim.Engine, ctx context.Context) func() error {
	if ctx == nil || ctx.Done() == nil {
		return func() error { return nil }
	}
	if ctx.Err() != nil {
		eng.Stop() // honoured by Run even before it starts
		return func() error { return ctx.Err() }
	}
	eng.SetPoll(ctxCheckEvents, func() {
		if ctx.Err() != nil {
			eng.Stop()
		}
	})
	return func() error { return ctx.Err() }
}
