package workload

import (
	"math"
	"testing"

	"pfsim/internal/ior"
	"pfsim/internal/mpiio"
	"pfsim/internal/stats"
)

func TestCheckpointBasics(t *testing.T) {
	c := Checkpoint{Ranks: 1024, StateMBPerRank: 400, ComputeSeconds: 3600, MTBFSeconds: 86400}
	if c.TotalStateMB() != 409600 {
		t.Errorf("total state = %v", c.TotalStateMB())
	}
	// At the paper's tuned 15,609 MB/s, one checkpoint takes ~26 s.
	w := c.WriteSeconds(15609)
	if math.Abs(w-26.24) > 0.1 {
		t.Errorf("write time = %v, want ~26.24", w)
	}
	// At the 313 MB/s default it takes ~22 minutes.
	wSlow := c.WriteSeconds(313)
	if wSlow < 1200 || wSlow > 1400 {
		t.Errorf("default write time = %v, want ~1309", wSlow)
	}
	if !math.IsInf(c.WriteSeconds(0), 1) {
		t.Error("zero bandwidth must give infinite write time")
	}
}

func TestEfficiencyImprovesWithBandwidth(t *testing.T) {
	c := Checkpoint{Ranks: 1024, StateMBPerRank: 400, ComputeSeconds: 3600, MTBFSeconds: 86400}
	effTuned := c.Efficiency(15609)
	effDefault := c.Efficiency(313)
	if effTuned <= effDefault {
		t.Errorf("tuned efficiency %v should beat default %v", effTuned, effDefault)
	}
	if effTuned < 0.99 {
		t.Errorf("tuned efficiency = %v, want ≈0.993", effTuned)
	}
	if effDefault > 0.75 {
		t.Errorf("default efficiency = %v, want ≈0.73", effDefault)
	}
}

func TestYoungInterval(t *testing.T) {
	c := Checkpoint{Ranks: 1024, StateMBPerRank: 400, MTBFSeconds: 86400}
	// sqrt(2 * 26.24 * 86400) ≈ 2,130 s.
	tau := c.YoungInterval(15609)
	if math.Abs(tau-2129) > 25 {
		t.Errorf("Young interval = %v, want ~2129", tau)
	}
	// Lower bandwidth -> longer interval.
	if c.YoungInterval(313) <= tau {
		t.Error("slower I/O should lengthen the optimal interval")
	}
	if !math.IsInf(c.YoungInterval(0), 1) {
		t.Error("zero bandwidth must give infinite interval")
	}
	noFail := Checkpoint{Ranks: 1, StateMBPerRank: 1}
	if !math.IsInf(noFail.YoungInterval(100), 1) {
		t.Error("zero MTBF must give infinite interval")
	}
}

func TestGoodputMonotoneInBandwidth(t *testing.T) {
	c := Checkpoint{Ranks: 1024, StateMBPerRank: 400, ComputeSeconds: 3600, MTBFSeconds: 86400}
	prev := 0.0
	for _, bw := range []float64{313, 1000, 4000, 15609} {
		g := c.GoodputFraction(bw)
		if g <= prev {
			t.Errorf("goodput at %v MB/s = %v, not above %v", bw, g, prev)
		}
		if g <= 0 || g >= 1 {
			t.Errorf("goodput at %v MB/s = %v out of (0,1)", bw, g)
		}
		prev = g
	}
	if got := c.GoodputFraction(0); got != 0 {
		t.Errorf("goodput at 0 bandwidth = %v", got)
	}
}

func TestIORConfigConversion(t *testing.T) {
	c := Checkpoint{Ranks: 256, StateMBPerRank: 100, ComputeSeconds: 60, MTBFSeconds: 3600}
	cfg := c.IORConfig(mpiio.DriverLustre, ior.TunedHints())
	if cfg.NumTasks != 256 || cfg.PerRankMB() != 100 {
		t.Errorf("conversion wrong: tasks=%d per-rank=%v", cfg.NumTasks, cfg.PerRankMB())
	}
	if cfg.TransferSizeMB > cfg.BlockSizeMB {
		t.Error("transfer must not exceed block")
	}
	// Tiny states keep transfer <= block.
	tiny := Checkpoint{Ranks: 4, StateMBPerRank: 0.5}
	tcfg := tiny.IORConfig(mpiio.DriverUFS, mpiio.NewHints())
	if tcfg.TransferSizeMB != 0.5 {
		t.Errorf("tiny transfer = %v", tcfg.TransferSizeMB)
	}
}

func TestUniformMix(t *testing.T) {
	m := Uniform(4, 1024, 160, 128)
	if m.Len() != 4 {
		t.Fatalf("len = %d", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	cfgs, err := m.Configs(16)
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint node ranges: job j starts at j*64.
	for j, cfg := range cfgs {
		if cfg.FirstNode != j*64 {
			t.Errorf("job %d FirstNode = %d, want %d", j, cfg.FirstNode, j*64)
		}
		if cfg.Hints.StripingFactor != 160 || cfg.Hints.StripingUnitMB != 128 {
			t.Errorf("job %d hints wrong", j)
		}
	}
}

func TestRandomMixDeterministic(t *testing.T) {
	gen := func() JobMix {
		return Random(stats.NewRNG(5), 6, []int{256, 512, 1024}, []int{32, 64, 160}, 64)
	}
	a, b := gen(), gen()
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] || a.Requests[i] != b.Requests[i] {
			t.Fatal("random mix not deterministic for equal seeds")
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMixValidation(t *testing.T) {
	bad := JobMix{Tasks: []int{1}, Requests: []int{1, 2}, SizesMB: []float64{1}}
	if bad.Validate() == nil {
		t.Error("ragged mix accepted")
	}
	zero := JobMix{Tasks: []int{0}, Requests: []int{1}, SizesMB: []float64{1}}
	if zero.Validate() == nil {
		t.Error("zero tasks accepted")
	}
	if _, err := bad.Configs(16); err == nil {
		t.Error("Configs should propagate validation errors")
	}
}
