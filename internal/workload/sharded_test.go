package workload

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"pfsim/internal/cluster"
	"pfsim/internal/ior"
	"pfsim/internal/lustre"
)

func shardScenarios(n, tasks int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		cfg := ior.PaperConfig(tasks)
		cfg.Label = "shard-job"
		cfg.SegmentCount = 2
		cfg.Reps = 1
		out[i] = NewScenario("shard", Job{Workload: IORJob{Cfg: cfg}})
	}
	return out
}

func TestRunShardedBasics(t *testing.T) {
	plat := cluster.Cab()
	res, err := RunSharded(plat, shardScenarios(3, 16), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 3 {
		t.Fatalf("got %d shard results", len(res.Shards))
	}
	for i, sh := range res.Shards {
		if len(sh.Jobs) != 1 || sh.Jobs[0].WriteMBs() <= 0 {
			t.Fatalf("shard %d result malformed", i)
		}
		if sh.Makespan <= 0 || sh.Makespan > res.Makespan {
			t.Fatalf("shard %d makespan %v outside total %v", i, sh.Makespan, res.Makespan)
		}
	}
	if res.Solver.ComponentsSolved == 0 {
		t.Error("shared solver counters not collected")
	}
	agg := res.Aggregate()
	if agg.TotalMBs <= 0 || agg.MinMBs > agg.MaxMBs {
		t.Errorf("aggregate malformed: %+v", agg)
	}
}

// TestRunShardedSolverModesBitIdentical runs the same sharded scenario set
// under the partitioned and the reference solver: every job's bandwidth
// and finish time must match bit for bit.
func TestRunShardedSolverModesBitIdentical(t *testing.T) {
	plat := cluster.Cab()
	shards := shardScenarios(4, 8)
	results := map[bool]*ShardedResult{}
	for _, reference := range []bool{false, true} {
		var err error
		results[reference], err = RunSharded(plat, shards, 0, func(i int, sys *lustre.System) {
			if i == 0 {
				sys.Net().UseReferenceSolver(reference)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	inc, ref := results[false], results[true]
	if math.Float64bits(inc.Makespan) != math.Float64bits(ref.Makespan) {
		t.Fatalf("makespan diverged: %v vs %v", inc.Makespan, ref.Makespan)
	}
	for i := range inc.Shards {
		for j := range inc.Shards[i].Jobs {
			a, b := inc.Shards[i].Jobs[j], ref.Shards[i].Jobs[j]
			if math.Float64bits(a.FinishedAt) != math.Float64bits(b.FinishedAt) {
				t.Errorf("shard %d job %d finish diverged: %v vs %v", i, j, a.FinishedAt, b.FinishedAt)
			}
			if math.Float64bits(a.WriteMBs()) != math.Float64bits(b.WriteMBs()) {
				t.Errorf("shard %d job %d bandwidth diverged: %v vs %v", i, j, a.WriteMBs(), b.WriteMBs())
			}
		}
	}
	// The partitioned solver must have scanned per-shard populations: the
	// average component solve touches far fewer flows than the reference's
	// whole-population passes.
	incPer := float64(inc.Solver.ComponentFlowsScanned) / float64(inc.Solver.ComponentsSolved)
	refPer := float64(ref.Solver.ComponentFlowsScanned) / float64(ref.Solver.ComponentsSolved)
	if incPer*2 > refPer {
		t.Errorf("per-solve scan %.1f not well below reference %.1f", incPer, refPer)
	}
}

// TestRunShardedShardsAreIsolated: a shard's result must be independent of
// its neighbours — the same scenario alone or next to a heavy neighbour
// yields identical virtual-time behaviour, since shards share no links.
func TestRunShardedShardsAreIsolated(t *testing.T) {
	plat := cluster.Cab()
	alone, err := RunSharded(plat, shardScenarios(1, 16), 0)
	if err != nil {
		t.Fatal(err)
	}
	heavy := ior.PaperConfig(64)
	heavy.Label = "heavy"
	heavy.SegmentCount = 4
	heavy.Reps = 1
	both, err := RunSharded(plat, []Scenario{
		shardScenarios(1, 16)[0],
		NewScenario("noise", Job{Workload: IORJob{Cfg: heavy}}),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := alone.Shards[0].Jobs[0], both.Shards[0].Jobs[0]
	if math.Float64bits(a.FinishedAt) != math.Float64bits(b.FinishedAt) {
		t.Errorf("neighbour changed shard 0 finish: %v vs %v", a.FinishedAt, b.FinishedAt)
	}
	if math.Float64bits(a.WriteMBs()) != math.Float64bits(b.WriteMBs()) {
		t.Errorf("neighbour changed shard 0 bandwidth: %v vs %v", a.WriteMBs(), b.WriteMBs())
	}
}

func TestRunShardedErrors(t *testing.T) {
	plat := cluster.Cab()
	if _, err := RunSharded(plat, nil, 0); err == nil {
		t.Error("empty shard list accepted")
	}
	bad := Scenario{Name: "bad", Jobs: []Job{{}}}
	if _, err := RunSharded(plat, []Scenario{bad}, 0); err == nil || !strings.Contains(err.Error(), "shard 0") {
		t.Errorf("bad shard error = %v, want shard-indexed error", err)
	}
}

func TestRunShardedDeterministicForSeed(t *testing.T) {
	plat := cluster.Cab()
	shards := shardScenarios(2, 8)
	r1, err := RunSharded(plat, shards, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSharded(plat, shards, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(r1.Makespan) != math.Float64bits(r2.Makespan) {
		t.Fatalf("same seed diverged: %v vs %v", r1.Makespan, r2.Makespan)
	}
	r3, err := RunSharded(plat, shards, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan == r3.Makespan {
		t.Error("different seed produced identical makespan (suspicious)")
	}
}

// TestShardedAggregateSkipsEmptyShards: a shard without jobs must not
// contribute a zero-valued aggregate — an earlier revision let any empty
// shard past the first drag the cross-shard MinMBs to 0 — and slowdown
// statistics must aggregate across shards rather than being dropped.
func TestShardedAggregateSkipsEmptyShards(t *testing.T) {
	plat := cluster.Cab()
	res, err := RunSharded(plat, shardScenarios(2, 8), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Aggregate()
	if want.MinMBs <= 0 {
		t.Fatalf("baseline aggregate MinMBs = %v, want > 0", want.MinMBs)
	}
	// Splice an empty middle shard in; every bandwidth statistic must be
	// unaffected.
	res.Shards = []*Result{res.Shards[0], {}, res.Shards[1]}
	got := res.Aggregate()
	if got != want {
		t.Errorf("empty middle shard changed the aggregate:\ngot  %+v\nwant %+v", got, want)
	}
	// Slowdowns filled in on a subset of jobs aggregate like
	// Result.Aggregate: mean over the jobs that have one, max over all.
	res.Shards[0].Jobs[0].Slowdown = 2
	res.Shards[2].Jobs[0].Slowdown = 4
	got = res.Aggregate()
	if got.MeanSlowdown != 3 || got.MaxSlowdown != 4 {
		t.Errorf("slowdown aggregate = mean %v max %v, want mean 3 max 4",
			got.MeanSlowdown, got.MaxSlowdown)
	}
	if (&ShardedResult{Shards: []*Result{{}, {}}}).Aggregate() != (Aggregate{}) {
		t.Error("all-empty sharded result should aggregate to the zero value")
	}
}

// TestRunShardedParallelSolverBitIdentical runs one sharded deployment
// with the solver serial, at several worker counts, and in reference
// mode: every job's trajectory and the deterministic work counters must
// match bit for bit — parallelism may only change wall-clock time. The
// population (4 shards x 128 flows) comfortably clears the solver's
// fan-out floor, so the parallel path really runs.
func TestRunShardedParallelSolverBitIdentical(t *testing.T) {
	plat := cluster.Cab()
	shards := shardScenarios(4, 64)
	run := func(par int, reference bool) *ShardedResult {
		res, err := RunShardedWith(plat, shards, RunOptions{Parallelism: par},
			func(i int, sys *lustre.System) {
				if i == 0 {
					sys.Net().UseReferenceSolver(reference)
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1, false)
	ref := run(1, true)
	if math.Float64bits(serial.Makespan) != math.Float64bits(ref.Makespan) {
		t.Fatalf("serial vs reference makespan diverged: %v vs %v", serial.Makespan, ref.Makespan)
	}
	for _, par := range []int{2, 8} {
		got := run(par, false)
		if math.Float64bits(got.Makespan) != math.Float64bits(serial.Makespan) {
			t.Errorf("par=%d makespan %v, serial %v", par, got.Makespan, serial.Makespan)
		}
		for i := range got.Shards {
			for j := range got.Shards[i].Jobs {
				a, b := got.Shards[i].Jobs[j], serial.Shards[i].Jobs[j]
				if math.Float64bits(a.FinishedAt) != math.Float64bits(b.FinishedAt) {
					t.Errorf("par=%d shard %d job %d finish %v vs serial %v", par, i, j, a.FinishedAt, b.FinishedAt)
				}
				if math.Float64bits(a.WriteMBs()) != math.Float64bits(b.WriteMBs()) {
					t.Errorf("par=%d shard %d job %d bandwidth %v vs serial %v", par, i, j, a.WriteMBs(), b.WriteMBs())
				}
			}
		}
		if got.Solver != serial.Solver {
			t.Errorf("par=%d solver counters diverged:\npar    %+v\nserial %+v", par, got.Solver, serial.Solver)
		}
	}
}

// TestRunShardedContextCancelledMidRun: RunShardedWith is one long engine
// execution, so a context cancelled mid-run must stop the engine at the
// next event-count poll and surface ctx.Err(), not run the deployment to
// completion. The cancel fires from an engine event, so the test is
// fully deterministic.
func TestRunShardedContextCancelledMidRun(t *testing.T) {
	plat := cluster.Cab()
	shards := shardScenarios(2, 16)
	full, err := RunSharded(plat, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full.Makespan <= 2 {
		t.Fatalf("scenario too short (%v s) to cancel mid-run", full.Makespan)
	}
	// A context already cancelled at launch stops the engine before it
	// runs at all — no waiting for the first periodic check.
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := RunShardedWith(plat, shards, RunOptions{Ctx: pre}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: err = %v, want context.Canceled", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	goroutines := runtime.NumGoroutine()
	var stoppedAt float64
	res, err := RunShardedWith(plat, shards, RunOptions{Ctx: ctx},
		func(i int, sys *lustre.System) {
			if i == 0 {
				sys.Engine().Schedule(1, func() {
					cancel()
					stoppedAt = sys.Engine().Now()
				})
			}
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled run returned a partial result")
	}
	if stoppedAt == 0 {
		t.Error("cancel event never fired: engine did not reach t=1")
	}
	// The cancelled run's rank processes were parked mid-simulation;
	// Engine.Drain must have unwound them all — no goroutine (pinning the
	// whole engine and network) may outlive the call. Poll briefly: the
	// runtime reaps exited goroutines asynchronously.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > goroutines {
		if time.Now().After(deadline) {
			t.Fatalf("cancelled run leaked goroutines: %d before, %d after",
				goroutines, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	// An uncancelled context must not perturb the run: the poll hook
	// injects no events and touches no simulation state.
	watched, err := RunShardedWith(plat, shards, RunOptions{Ctx: ctx2(t)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(watched.Makespan) != math.Float64bits(full.Makespan) {
		t.Errorf("watcher perturbed the run: makespan %v vs %v", watched.Makespan, full.Makespan)
	}
}

// ctx2 returns a cancellable (hence watched) context that stays live for
// the duration of the test.
func ctx2(t *testing.T) context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	return ctx
}
